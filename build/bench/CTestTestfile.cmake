# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_table1 "/root/repo/build/bench/bench_table1_memgap")
set_tests_properties(bench_smoke_table1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_occupancy "/root/repo/build/bench/bench_ablate_occupancy")
set_tests_properties(bench_smoke_occupancy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_multicell "/root/repo/build/bench/bench_ablate_multicell")
set_tests_properties(bench_smoke_multicell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bankconflict "/root/repo/build/bench/bench_ablate_bankconflict")
set_tests_properties(bench_smoke_bankconflict PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_bsize "/root/repo/build/bench/bench_ablate_bsize")
set_tests_properties(bench_smoke_bsize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_energy "/root/repo/build/bench/bench_ablate_energy")
set_tests_properties(bench_smoke_energy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_scan "/root/repo/build/bench/bench_ablate_scan")
set_tests_properties(bench_smoke_scan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
