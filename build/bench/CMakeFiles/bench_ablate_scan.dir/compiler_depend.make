# Empty compiler generated dependencies file for bench_ablate_scan.
# This may be replaced when dependencies are built.
