file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_scan.dir/bench_ablate_scan.cpp.o"
  "CMakeFiles/bench_ablate_scan.dir/bench_ablate_scan.cpp.o.d"
  "bench_ablate_scan"
  "bench_ablate_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
