# Empty dependencies file for bench_ablate_multicell.
# This may be replaced when dependencies are built.
