file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_multicell.dir/bench_ablate_multicell.cpp.o"
  "CMakeFiles/bench_ablate_multicell.dir/bench_ablate_multicell.cpp.o.d"
  "bench_ablate_multicell"
  "bench_ablate_multicell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_multicell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
