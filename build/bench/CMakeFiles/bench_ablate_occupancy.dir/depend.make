# Empty dependencies file for bench_ablate_occupancy.
# This may be replaced when dependencies are built.
