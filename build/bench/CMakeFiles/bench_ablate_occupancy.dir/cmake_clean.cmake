file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_occupancy.dir/bench_ablate_occupancy.cpp.o"
  "CMakeFiles/bench_ablate_occupancy.dir/bench_ablate_occupancy.cpp.o.d"
  "bench_ablate_occupancy"
  "bench_ablate_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
