# Empty dependencies file for bench_ablate_arch.
# This may be replaced when dependencies are built.
