file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_arch.dir/bench_ablate_arch.cpp.o"
  "CMakeFiles/bench_ablate_arch.dir/bench_ablate_arch.cpp.o.d"
  "bench_ablate_arch"
  "bench_ablate_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
