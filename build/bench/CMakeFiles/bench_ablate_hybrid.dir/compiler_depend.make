# Empty compiler generated dependencies file for bench_ablate_hybrid.
# This may be replaced when dependencies are built.
