file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_hybrid.dir/bench_ablate_hybrid.cpp.o"
  "CMakeFiles/bench_ablate_hybrid.dir/bench_ablate_hybrid.cpp.o.d"
  "bench_ablate_hybrid"
  "bench_ablate_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
