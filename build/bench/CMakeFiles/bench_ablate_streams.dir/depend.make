# Empty dependencies file for bench_ablate_streams.
# This may be replaced when dependencies are built.
