file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_streams.dir/bench_ablate_streams.cpp.o"
  "CMakeFiles/bench_ablate_streams.dir/bench_ablate_streams.cpp.o.d"
  "bench_ablate_streams"
  "bench_ablate_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
