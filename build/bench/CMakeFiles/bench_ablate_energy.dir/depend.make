# Empty dependencies file for bench_ablate_energy.
# This may be replaced when dependencies are built.
