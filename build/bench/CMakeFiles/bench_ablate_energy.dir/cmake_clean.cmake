file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_energy.dir/bench_ablate_energy.cpp.o"
  "CMakeFiles/bench_ablate_energy.dir/bench_ablate_energy.cpp.o.d"
  "bench_ablate_energy"
  "bench_ablate_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
