file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_overview.dir/bench_fig9_overview.cpp.o"
  "CMakeFiles/bench_fig9_overview.dir/bench_fig9_overview.cpp.o.d"
  "bench_fig9_overview"
  "bench_fig9_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
