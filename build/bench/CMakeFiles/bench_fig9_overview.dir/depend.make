# Empty dependencies file for bench_fig9_overview.
# This may be replaced when dependencies are built.
