# Empty dependencies file for bench_table2_details.
# This may be replaced when dependencies are built.
