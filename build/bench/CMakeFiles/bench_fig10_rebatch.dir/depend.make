# Empty dependencies file for bench_fig10_rebatch.
# This may be replaced when dependencies are built.
