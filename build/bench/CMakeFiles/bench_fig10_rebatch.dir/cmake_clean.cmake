file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_rebatch.dir/bench_fig10_rebatch.cpp.o"
  "CMakeFiles/bench_fig10_rebatch.dir/bench_fig10_rebatch.cpp.o.d"
  "bench_fig10_rebatch"
  "bench_fig10_rebatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_rebatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
