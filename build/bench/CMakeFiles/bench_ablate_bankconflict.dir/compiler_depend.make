# Empty compiler generated dependencies file for bench_ablate_bankconflict.
# This may be replaced when dependencies are built.
