file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_bankconflict.dir/bench_ablate_bankconflict.cpp.o"
  "CMakeFiles/bench_ablate_bankconflict.dir/bench_ablate_bankconflict.cpp.o.d"
  "bench_ablate_bankconflict"
  "bench_ablate_bankconflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_bankconflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
