file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_bsize.dir/bench_ablate_bsize.cpp.o"
  "CMakeFiles/bench_ablate_bsize.dir/bench_ablate_bsize.cpp.o.d"
  "bench_ablate_bsize"
  "bench_ablate_bsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_bsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
