# Empty dependencies file for bench_ablate_bsize.
# This may be replaced when dependencies are built.
