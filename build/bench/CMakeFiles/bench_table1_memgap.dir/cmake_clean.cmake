file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_memgap.dir/bench_table1_memgap.cpp.o"
  "CMakeFiles/bench_table1_memgap.dir/bench_table1_memgap.cpp.o.d"
  "bench_table1_memgap"
  "bench_table1_memgap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_memgap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
