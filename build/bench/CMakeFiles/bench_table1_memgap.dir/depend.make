# Empty dependencies file for bench_table1_memgap.
# This may be replaced when dependencies are built.
