# Empty compiler generated dependencies file for bench_ablate_sensitivity.
# This may be replaced when dependencies are built.
