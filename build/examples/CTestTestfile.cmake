# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_warp_reduction "/root/repo/build/examples/warp_reduction")
set_tests_properties(example_warp_reduction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_variant_calling_pipeline "/root/repo/build/examples/variant_calling_pipeline")
set_tests_properties(example_variant_calling_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_design_advisor "/root/repo/build/examples/design_advisor")
set_tests_properties(example_design_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
