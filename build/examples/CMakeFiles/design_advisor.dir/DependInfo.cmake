
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/design_advisor.cpp" "examples/CMakeFiles/design_advisor.dir/design_advisor.cpp.o" "gcc" "examples/CMakeFiles/design_advisor.dir/design_advisor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsim_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsim_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsim_micro.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsim_align.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsim_simt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
