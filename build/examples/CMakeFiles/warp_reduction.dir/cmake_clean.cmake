file(REMOVE_RECURSE
  "CMakeFiles/warp_reduction.dir/warp_reduction.cpp.o"
  "CMakeFiles/warp_reduction.dir/warp_reduction.cpp.o.d"
  "warp_reduction"
  "warp_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warp_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
