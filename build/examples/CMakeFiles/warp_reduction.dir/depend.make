# Empty dependencies file for warp_reduction.
# This may be replaced when dependencies are built.
