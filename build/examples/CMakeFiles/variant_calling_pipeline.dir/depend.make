# Empty dependencies file for variant_calling_pipeline.
# This may be replaced when dependencies are built.
