file(REMOVE_RECURSE
  "CMakeFiles/variant_calling_pipeline.dir/variant_calling_pipeline.cpp.o"
  "CMakeFiles/variant_calling_pipeline.dir/variant_calling_pipeline.cpp.o.d"
  "variant_calling_pipeline"
  "variant_calling_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variant_calling_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
