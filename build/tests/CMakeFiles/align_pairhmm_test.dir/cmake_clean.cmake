file(REMOVE_RECURSE
  "CMakeFiles/align_pairhmm_test.dir/align_pairhmm_test.cpp.o"
  "CMakeFiles/align_pairhmm_test.dir/align_pairhmm_test.cpp.o.d"
  "align_pairhmm_test"
  "align_pairhmm_test.pdb"
  "align_pairhmm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/align_pairhmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
