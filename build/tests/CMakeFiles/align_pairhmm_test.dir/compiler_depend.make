# Empty compiler generated dependencies file for align_pairhmm_test.
# This may be replaced when dependencies are built.
