file(REMOVE_RECURSE
  "CMakeFiles/cpu_baseline_test.dir/cpu_baseline_test.cpp.o"
  "CMakeFiles/cpu_baseline_test.dir/cpu_baseline_test.cpp.o.d"
  "cpu_baseline_test"
  "cpu_baseline_test.pdb"
  "cpu_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
