# Empty compiler generated dependencies file for cpu_baseline_test.
# This may be replaced when dependencies are built.
