file(REMOVE_RECURSE
  "CMakeFiles/align_sw_test.dir/align_sw_test.cpp.o"
  "CMakeFiles/align_sw_test.dir/align_sw_test.cpp.o.d"
  "align_sw_test"
  "align_sw_test.pdb"
  "align_sw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/align_sw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
