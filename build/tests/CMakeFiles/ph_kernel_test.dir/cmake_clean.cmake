file(REMOVE_RECURSE
  "CMakeFiles/ph_kernel_test.dir/ph_kernel_test.cpp.o"
  "CMakeFiles/ph_kernel_test.dir/ph_kernel_test.cpp.o.d"
  "ph_kernel_test"
  "ph_kernel_test.pdb"
  "ph_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
