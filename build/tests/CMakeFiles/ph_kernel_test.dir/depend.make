# Empty dependencies file for ph_kernel_test.
# This may be replaced when dependencies are built.
