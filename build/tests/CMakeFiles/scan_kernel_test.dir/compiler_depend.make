# Empty compiler generated dependencies file for scan_kernel_test.
# This may be replaced when dependencies are built.
