file(REMOVE_RECURSE
  "CMakeFiles/scan_kernel_test.dir/scan_kernel_test.cpp.o"
  "CMakeFiles/scan_kernel_test.dir/scan_kernel_test.cpp.o.d"
  "scan_kernel_test"
  "scan_kernel_test.pdb"
  "scan_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
