# Empty compiler generated dependencies file for pairhmm_fallback_test.
# This may be replaced when dependencies are built.
