file(REMOVE_RECURSE
  "CMakeFiles/pairhmm_fallback_test.dir/pairhmm_fallback_test.cpp.o"
  "CMakeFiles/pairhmm_fallback_test.dir/pairhmm_fallback_test.cpp.o.d"
  "pairhmm_fallback_test"
  "pairhmm_fallback_test.pdb"
  "pairhmm_fallback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairhmm_fallback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
