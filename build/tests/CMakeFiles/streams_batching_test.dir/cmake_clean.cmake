file(REMOVE_RECURSE
  "CMakeFiles/streams_batching_test.dir/streams_batching_test.cpp.o"
  "CMakeFiles/streams_batching_test.dir/streams_batching_test.cpp.o.d"
  "streams_batching_test"
  "streams_batching_test.pdb"
  "streams_batching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streams_batching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
