# Empty compiler generated dependencies file for streams_batching_test.
# This may be replaced when dependencies are built.
