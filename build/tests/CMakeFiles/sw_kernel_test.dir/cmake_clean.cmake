file(REMOVE_RECURSE
  "CMakeFiles/sw_kernel_test.dir/sw_kernel_test.cpp.o"
  "CMakeFiles/sw_kernel_test.dir/sw_kernel_test.cpp.o.d"
  "sw_kernel_test"
  "sw_kernel_test.pdb"
  "sw_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
