# Empty dependencies file for sw_kernel_test.
# This may be replaced when dependencies are built.
