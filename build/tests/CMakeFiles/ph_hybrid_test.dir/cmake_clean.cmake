file(REMOVE_RECURSE
  "CMakeFiles/ph_hybrid_test.dir/ph_hybrid_test.cpp.o"
  "CMakeFiles/ph_hybrid_test.dir/ph_hybrid_test.cpp.o.d"
  "ph_hybrid_test"
  "ph_hybrid_test.pdb"
  "ph_hybrid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_hybrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
