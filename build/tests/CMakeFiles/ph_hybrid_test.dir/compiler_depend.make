# Empty compiler generated dependencies file for ph_hybrid_test.
# This may be replaced when dependencies are built.
