# Empty dependencies file for align_brute_force_test.
# This may be replaced when dependencies are built.
