file(REMOVE_RECURSE
  "CMakeFiles/align_brute_force_test.dir/align_brute_force_test.cpp.o"
  "CMakeFiles/align_brute_force_test.dir/align_brute_force_test.cpp.o.d"
  "align_brute_force_test"
  "align_brute_force_test.pdb"
  "align_brute_force_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/align_brute_force_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
