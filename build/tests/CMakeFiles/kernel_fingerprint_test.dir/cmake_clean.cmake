file(REMOVE_RECURSE
  "CMakeFiles/kernel_fingerprint_test.dir/kernel_fingerprint_test.cpp.o"
  "CMakeFiles/kernel_fingerprint_test.dir/kernel_fingerprint_test.cpp.o.d"
  "kernel_fingerprint_test"
  "kernel_fingerprint_test.pdb"
  "kernel_fingerprint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_fingerprint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
