file(REMOVE_RECURSE
  "CMakeFiles/nw_kernel_test.dir/nw_kernel_test.cpp.o"
  "CMakeFiles/nw_kernel_test.dir/nw_kernel_test.cpp.o.d"
  "nw_kernel_test"
  "nw_kernel_test.pdb"
  "nw_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nw_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
