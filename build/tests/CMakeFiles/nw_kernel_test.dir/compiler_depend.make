# Empty compiler generated dependencies file for nw_kernel_test.
# This may be replaced when dependencies are built.
