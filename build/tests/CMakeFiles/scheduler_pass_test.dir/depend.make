# Empty dependencies file for scheduler_pass_test.
# This may be replaced when dependencies are built.
