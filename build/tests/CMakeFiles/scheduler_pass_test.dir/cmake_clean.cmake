file(REMOVE_RECURSE
  "CMakeFiles/scheduler_pass_test.dir/scheduler_pass_test.cpp.o"
  "CMakeFiles/scheduler_pass_test.dir/scheduler_pass_test.cpp.o.d"
  "scheduler_pass_test"
  "scheduler_pass_test.pdb"
  "scheduler_pass_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_pass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
