# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_devices "/root/repo/build/tools/wsim" "devices")
set_tests_properties(cli_devices PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sw "/root/repo/build/tools/wsim" "sw" "ACGTACGT" "TTACGTACGTTT")
set_tests_properties(cli_sw PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_nw "/root/repo/build/tools/wsim" "nw" "ACGT" "AACGTT" "--mode" "shared")
set_tests_properties(cli_nw PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_pairhmm "/root/repo/build/tools/wsim" "pairhmm" "ACGTACGT" "ACGTACGTAA" "--device" "Titan X")
set_tests_properties(cli_pairhmm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_workload "/root/repo/build/tools/wsim" "workload" "--regions" "3")
set_tests_properties(cli_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_micro "/root/repo/build/tools/wsim" "micro" "--device" "K40")
set_tests_properties(cli_micro PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/wsim" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_pipeline "/root/repo/build/tools/wsim" "pipeline" "--regions" "2" "--validate" "")
set_tests_properties(cli_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_workload_roundtrip "/root/repo/build/tools/wsim" "workload" "--in" "/root/repo/data/example_dataset.txt")
set_tests_properties(cli_workload_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
