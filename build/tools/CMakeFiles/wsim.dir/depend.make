# Empty dependencies file for wsim.
# This may be replaced when dependencies are built.
