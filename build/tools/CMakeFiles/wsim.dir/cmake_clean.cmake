file(REMOVE_RECURSE
  "CMakeFiles/wsim.dir/wsim_cli.cpp.o"
  "CMakeFiles/wsim.dir/wsim_cli.cpp.o.d"
  "wsim"
  "wsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
