file(REMOVE_RECURSE
  "CMakeFiles/wsim_model.dir/wsim/model/breakdown.cpp.o"
  "CMakeFiles/wsim_model.dir/wsim/model/breakdown.cpp.o.d"
  "CMakeFiles/wsim_model.dir/wsim/model/perf_model.cpp.o"
  "CMakeFiles/wsim_model.dir/wsim/model/perf_model.cpp.o.d"
  "libwsim_model.a"
  "libwsim_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsim_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
