file(REMOVE_RECURSE
  "libwsim_model.a"
)
