# Empty dependencies file for wsim_model.
# This may be replaced when dependencies are built.
