file(REMOVE_RECURSE
  "CMakeFiles/wsim_simt.dir/wsim/simt/builder.cpp.o"
  "CMakeFiles/wsim_simt.dir/wsim/simt/builder.cpp.o.d"
  "CMakeFiles/wsim_simt.dir/wsim/simt/device.cpp.o"
  "CMakeFiles/wsim_simt.dir/wsim/simt/device.cpp.o.d"
  "CMakeFiles/wsim_simt.dir/wsim/simt/energy.cpp.o"
  "CMakeFiles/wsim_simt.dir/wsim/simt/energy.cpp.o.d"
  "CMakeFiles/wsim_simt.dir/wsim/simt/interpreter.cpp.o"
  "CMakeFiles/wsim_simt.dir/wsim/simt/interpreter.cpp.o.d"
  "CMakeFiles/wsim_simt.dir/wsim/simt/isa.cpp.o"
  "CMakeFiles/wsim_simt.dir/wsim/simt/isa.cpp.o.d"
  "CMakeFiles/wsim_simt.dir/wsim/simt/occupancy.cpp.o"
  "CMakeFiles/wsim_simt.dir/wsim/simt/occupancy.cpp.o.d"
  "CMakeFiles/wsim_simt.dir/wsim/simt/profile.cpp.o"
  "CMakeFiles/wsim_simt.dir/wsim/simt/profile.cpp.o.d"
  "CMakeFiles/wsim_simt.dir/wsim/simt/runtime.cpp.o"
  "CMakeFiles/wsim_simt.dir/wsim/simt/runtime.cpp.o.d"
  "CMakeFiles/wsim_simt.dir/wsim/simt/scheduler.cpp.o"
  "CMakeFiles/wsim_simt.dir/wsim/simt/scheduler.cpp.o.d"
  "CMakeFiles/wsim_simt.dir/wsim/simt/trace.cpp.o"
  "CMakeFiles/wsim_simt.dir/wsim/simt/trace.cpp.o.d"
  "libwsim_simt.a"
  "libwsim_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsim_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
