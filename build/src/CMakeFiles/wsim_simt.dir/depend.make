# Empty dependencies file for wsim_simt.
# This may be replaced when dependencies are built.
