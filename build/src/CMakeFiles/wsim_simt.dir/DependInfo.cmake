
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsim/simt/builder.cpp" "src/CMakeFiles/wsim_simt.dir/wsim/simt/builder.cpp.o" "gcc" "src/CMakeFiles/wsim_simt.dir/wsim/simt/builder.cpp.o.d"
  "/root/repo/src/wsim/simt/device.cpp" "src/CMakeFiles/wsim_simt.dir/wsim/simt/device.cpp.o" "gcc" "src/CMakeFiles/wsim_simt.dir/wsim/simt/device.cpp.o.d"
  "/root/repo/src/wsim/simt/energy.cpp" "src/CMakeFiles/wsim_simt.dir/wsim/simt/energy.cpp.o" "gcc" "src/CMakeFiles/wsim_simt.dir/wsim/simt/energy.cpp.o.d"
  "/root/repo/src/wsim/simt/interpreter.cpp" "src/CMakeFiles/wsim_simt.dir/wsim/simt/interpreter.cpp.o" "gcc" "src/CMakeFiles/wsim_simt.dir/wsim/simt/interpreter.cpp.o.d"
  "/root/repo/src/wsim/simt/isa.cpp" "src/CMakeFiles/wsim_simt.dir/wsim/simt/isa.cpp.o" "gcc" "src/CMakeFiles/wsim_simt.dir/wsim/simt/isa.cpp.o.d"
  "/root/repo/src/wsim/simt/occupancy.cpp" "src/CMakeFiles/wsim_simt.dir/wsim/simt/occupancy.cpp.o" "gcc" "src/CMakeFiles/wsim_simt.dir/wsim/simt/occupancy.cpp.o.d"
  "/root/repo/src/wsim/simt/profile.cpp" "src/CMakeFiles/wsim_simt.dir/wsim/simt/profile.cpp.o" "gcc" "src/CMakeFiles/wsim_simt.dir/wsim/simt/profile.cpp.o.d"
  "/root/repo/src/wsim/simt/runtime.cpp" "src/CMakeFiles/wsim_simt.dir/wsim/simt/runtime.cpp.o" "gcc" "src/CMakeFiles/wsim_simt.dir/wsim/simt/runtime.cpp.o.d"
  "/root/repo/src/wsim/simt/scheduler.cpp" "src/CMakeFiles/wsim_simt.dir/wsim/simt/scheduler.cpp.o" "gcc" "src/CMakeFiles/wsim_simt.dir/wsim/simt/scheduler.cpp.o.d"
  "/root/repo/src/wsim/simt/trace.cpp" "src/CMakeFiles/wsim_simt.dir/wsim/simt/trace.cpp.o" "gcc" "src/CMakeFiles/wsim_simt.dir/wsim/simt/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
