file(REMOVE_RECURSE
  "libwsim_simt.a"
)
