file(REMOVE_RECURSE
  "libwsim_cpu.a"
)
