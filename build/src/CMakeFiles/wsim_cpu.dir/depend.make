# Empty dependencies file for wsim_cpu.
# This may be replaced when dependencies are built.
