file(REMOVE_RECURSE
  "CMakeFiles/wsim_cpu.dir/wsim/cpu/simd_pairhmm.cpp.o"
  "CMakeFiles/wsim_cpu.dir/wsim/cpu/simd_pairhmm.cpp.o.d"
  "CMakeFiles/wsim_cpu.dir/wsim/cpu/striped_sw.cpp.o"
  "CMakeFiles/wsim_cpu.dir/wsim/cpu/striped_sw.cpp.o.d"
  "libwsim_cpu.a"
  "libwsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
