# Empty compiler generated dependencies file for wsim_kernels.
# This may be replaced when dependencies are built.
