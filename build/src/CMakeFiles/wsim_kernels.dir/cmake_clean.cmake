file(REMOVE_RECURSE
  "CMakeFiles/wsim_kernels.dir/wsim/kernels/common.cpp.o"
  "CMakeFiles/wsim_kernels.dir/wsim/kernels/common.cpp.o.d"
  "CMakeFiles/wsim_kernels.dir/wsim/kernels/nw_kernels.cpp.o"
  "CMakeFiles/wsim_kernels.dir/wsim/kernels/nw_kernels.cpp.o.d"
  "CMakeFiles/wsim_kernels.dir/wsim/kernels/ph_kernel_builder.cpp.o"
  "CMakeFiles/wsim_kernels.dir/wsim/kernels/ph_kernel_builder.cpp.o.d"
  "CMakeFiles/wsim_kernels.dir/wsim/kernels/ph_runner.cpp.o"
  "CMakeFiles/wsim_kernels.dir/wsim/kernels/ph_runner.cpp.o.d"
  "CMakeFiles/wsim_kernels.dir/wsim/kernels/scan_kernels.cpp.o"
  "CMakeFiles/wsim_kernels.dir/wsim/kernels/scan_kernels.cpp.o.d"
  "CMakeFiles/wsim_kernels.dir/wsim/kernels/sw_kernel_builder.cpp.o"
  "CMakeFiles/wsim_kernels.dir/wsim/kernels/sw_kernel_builder.cpp.o.d"
  "CMakeFiles/wsim_kernels.dir/wsim/kernels/sw_runner.cpp.o"
  "CMakeFiles/wsim_kernels.dir/wsim/kernels/sw_runner.cpp.o.d"
  "libwsim_kernels.a"
  "libwsim_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsim_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
