file(REMOVE_RECURSE
  "libwsim_kernels.a"
)
