
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsim/kernels/common.cpp" "src/CMakeFiles/wsim_kernels.dir/wsim/kernels/common.cpp.o" "gcc" "src/CMakeFiles/wsim_kernels.dir/wsim/kernels/common.cpp.o.d"
  "/root/repo/src/wsim/kernels/nw_kernels.cpp" "src/CMakeFiles/wsim_kernels.dir/wsim/kernels/nw_kernels.cpp.o" "gcc" "src/CMakeFiles/wsim_kernels.dir/wsim/kernels/nw_kernels.cpp.o.d"
  "/root/repo/src/wsim/kernels/ph_kernel_builder.cpp" "src/CMakeFiles/wsim_kernels.dir/wsim/kernels/ph_kernel_builder.cpp.o" "gcc" "src/CMakeFiles/wsim_kernels.dir/wsim/kernels/ph_kernel_builder.cpp.o.d"
  "/root/repo/src/wsim/kernels/ph_runner.cpp" "src/CMakeFiles/wsim_kernels.dir/wsim/kernels/ph_runner.cpp.o" "gcc" "src/CMakeFiles/wsim_kernels.dir/wsim/kernels/ph_runner.cpp.o.d"
  "/root/repo/src/wsim/kernels/scan_kernels.cpp" "src/CMakeFiles/wsim_kernels.dir/wsim/kernels/scan_kernels.cpp.o" "gcc" "src/CMakeFiles/wsim_kernels.dir/wsim/kernels/scan_kernels.cpp.o.d"
  "/root/repo/src/wsim/kernels/sw_kernel_builder.cpp" "src/CMakeFiles/wsim_kernels.dir/wsim/kernels/sw_kernel_builder.cpp.o" "gcc" "src/CMakeFiles/wsim_kernels.dir/wsim/kernels/sw_kernel_builder.cpp.o.d"
  "/root/repo/src/wsim/kernels/sw_runner.cpp" "src/CMakeFiles/wsim_kernels.dir/wsim/kernels/sw_runner.cpp.o" "gcc" "src/CMakeFiles/wsim_kernels.dir/wsim/kernels/sw_runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsim_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsim_align.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
