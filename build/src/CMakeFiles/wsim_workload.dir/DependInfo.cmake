
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsim/workload/batching.cpp" "src/CMakeFiles/wsim_workload.dir/wsim/workload/batching.cpp.o" "gcc" "src/CMakeFiles/wsim_workload.dir/wsim/workload/batching.cpp.o.d"
  "/root/repo/src/wsim/workload/dataset_io.cpp" "src/CMakeFiles/wsim_workload.dir/wsim/workload/dataset_io.cpp.o" "gcc" "src/CMakeFiles/wsim_workload.dir/wsim/workload/dataset_io.cpp.o.d"
  "/root/repo/src/wsim/workload/generator.cpp" "src/CMakeFiles/wsim_workload.dir/wsim/workload/generator.cpp.o" "gcc" "src/CMakeFiles/wsim_workload.dir/wsim/workload/generator.cpp.o.d"
  "/root/repo/src/wsim/workload/task.cpp" "src/CMakeFiles/wsim_workload.dir/wsim/workload/task.cpp.o" "gcc" "src/CMakeFiles/wsim_workload.dir/wsim/workload/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsim_align.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
