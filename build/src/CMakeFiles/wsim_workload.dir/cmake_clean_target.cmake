file(REMOVE_RECURSE
  "libwsim_workload.a"
)
