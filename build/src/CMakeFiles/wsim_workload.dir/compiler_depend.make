# Empty compiler generated dependencies file for wsim_workload.
# This may be replaced when dependencies are built.
