file(REMOVE_RECURSE
  "CMakeFiles/wsim_workload.dir/wsim/workload/batching.cpp.o"
  "CMakeFiles/wsim_workload.dir/wsim/workload/batching.cpp.o.d"
  "CMakeFiles/wsim_workload.dir/wsim/workload/dataset_io.cpp.o"
  "CMakeFiles/wsim_workload.dir/wsim/workload/dataset_io.cpp.o.d"
  "CMakeFiles/wsim_workload.dir/wsim/workload/generator.cpp.o"
  "CMakeFiles/wsim_workload.dir/wsim/workload/generator.cpp.o.d"
  "CMakeFiles/wsim_workload.dir/wsim/workload/task.cpp.o"
  "CMakeFiles/wsim_workload.dir/wsim/workload/task.cpp.o.d"
  "libwsim_workload.a"
  "libwsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
