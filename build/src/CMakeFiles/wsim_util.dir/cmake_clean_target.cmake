file(REMOVE_RECURSE
  "libwsim_util.a"
)
