# Empty dependencies file for wsim_util.
# This may be replaced when dependencies are built.
