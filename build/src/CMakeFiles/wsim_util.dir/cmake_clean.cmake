file(REMOVE_RECURSE
  "CMakeFiles/wsim_util.dir/wsim/util/rng.cpp.o"
  "CMakeFiles/wsim_util.dir/wsim/util/rng.cpp.o.d"
  "CMakeFiles/wsim_util.dir/wsim/util/stats.cpp.o"
  "CMakeFiles/wsim_util.dir/wsim/util/stats.cpp.o.d"
  "CMakeFiles/wsim_util.dir/wsim/util/table.cpp.o"
  "CMakeFiles/wsim_util.dir/wsim/util/table.cpp.o.d"
  "libwsim_util.a"
  "libwsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
