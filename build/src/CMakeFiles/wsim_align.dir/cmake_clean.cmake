file(REMOVE_RECURSE
  "CMakeFiles/wsim_align.dir/wsim/align/needleman_wunsch.cpp.o"
  "CMakeFiles/wsim_align.dir/wsim/align/needleman_wunsch.cpp.o.d"
  "CMakeFiles/wsim_align.dir/wsim/align/pairhmm.cpp.o"
  "CMakeFiles/wsim_align.dir/wsim/align/pairhmm.cpp.o.d"
  "CMakeFiles/wsim_align.dir/wsim/align/scoring.cpp.o"
  "CMakeFiles/wsim_align.dir/wsim/align/scoring.cpp.o.d"
  "CMakeFiles/wsim_align.dir/wsim/align/smith_waterman.cpp.o"
  "CMakeFiles/wsim_align.dir/wsim/align/smith_waterman.cpp.o.d"
  "libwsim_align.a"
  "libwsim_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsim_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
