file(REMOVE_RECURSE
  "libwsim_align.a"
)
