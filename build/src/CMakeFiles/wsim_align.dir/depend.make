# Empty dependencies file for wsim_align.
# This may be replaced when dependencies are built.
