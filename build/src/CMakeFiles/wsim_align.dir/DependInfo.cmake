
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsim/align/needleman_wunsch.cpp" "src/CMakeFiles/wsim_align.dir/wsim/align/needleman_wunsch.cpp.o" "gcc" "src/CMakeFiles/wsim_align.dir/wsim/align/needleman_wunsch.cpp.o.d"
  "/root/repo/src/wsim/align/pairhmm.cpp" "src/CMakeFiles/wsim_align.dir/wsim/align/pairhmm.cpp.o" "gcc" "src/CMakeFiles/wsim_align.dir/wsim/align/pairhmm.cpp.o.d"
  "/root/repo/src/wsim/align/scoring.cpp" "src/CMakeFiles/wsim_align.dir/wsim/align/scoring.cpp.o" "gcc" "src/CMakeFiles/wsim_align.dir/wsim/align/scoring.cpp.o.d"
  "/root/repo/src/wsim/align/smith_waterman.cpp" "src/CMakeFiles/wsim_align.dir/wsim/align/smith_waterman.cpp.o" "gcc" "src/CMakeFiles/wsim_align.dir/wsim/align/smith_waterman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
