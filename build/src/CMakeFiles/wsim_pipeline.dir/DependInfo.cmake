
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsim/pipeline/pipeline.cpp" "src/CMakeFiles/wsim_pipeline.dir/wsim/pipeline/pipeline.cpp.o" "gcc" "src/CMakeFiles/wsim_pipeline.dir/wsim/pipeline/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wsim_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsim_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsim_align.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
