# Empty compiler generated dependencies file for wsim_pipeline.
# This may be replaced when dependencies are built.
