file(REMOVE_RECURSE
  "CMakeFiles/wsim_pipeline.dir/wsim/pipeline/pipeline.cpp.o"
  "CMakeFiles/wsim_pipeline.dir/wsim/pipeline/pipeline.cpp.o.d"
  "libwsim_pipeline.a"
  "libwsim_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsim_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
