file(REMOVE_RECURSE
  "libwsim_pipeline.a"
)
