# Empty dependencies file for wsim_micro.
# This may be replaced when dependencies are built.
