file(REMOVE_RECURSE
  "libwsim_micro.a"
)
