file(REMOVE_RECURSE
  "CMakeFiles/wsim_micro.dir/wsim/micro/microbench.cpp.o"
  "CMakeFiles/wsim_micro.dir/wsim/micro/microbench.cpp.o.d"
  "libwsim_micro.a"
  "libwsim_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsim_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
