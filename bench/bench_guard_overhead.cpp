// Resilience-overhead bench: what does screening every delivered batch
// cost? Sweeps the guard's detection modes over the formed SW + PairHMM
// batches of the standard dataset on the heterogeneous two-device fleet:
//
//   * none / abft / dual at flip_prob = 0 — the pure verification tax.
//     ABFT re-reads the outputs on the host (O(output) invariants); dual
//     re-executes every batch, so its simulated device time roughly
//     doubles and the delivered-work GCUPS halves.
//   * dual at flip_prob = 3e-7 — a recovery point: injected corruptions
//     are detected, flagged batches re-execute (escalating across
//     devices), and the extra runs show up as reexecutions/cpu_fallbacks
//     and as added makespan.
//
// Besides the ASCII table (and the WSIM_CSV_DIR mirror), the sweep is
// written to BENCH_guard.json in the working directory. `--smoke` shrinks
// the dataset for CI.

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "wsim/fleet/fleet.hpp"
#include "wsim/guard/guard.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/batching.hpp"

namespace {

namespace fleet = wsim::fleet;
namespace guard = wsim::guard;
using wsim::util::format_fixed;

struct SweepPoint {
  std::string detect;
  double flip_prob = 0.0;
  std::size_t batches = 0;
  std::size_t cells = 0;
  double makespan_s = 0.0;
  double gcups = 0.0;          ///< delivered cells / simulated makespan
  double overhead = 0.0;       ///< makespan / unguarded makespan
  double host_seconds = 0.0;   ///< wall-clock cost of simulating the point
  guard::GuardStats stats;
};

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  std::ostringstream os;
  os << value;
  return os.str();
}

void write_json(const std::string& path, const std::vector<SweepPoint>& points) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  out << "{\n  \"bench\": \"guard_overhead\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    out << "    {\"detect\": \"" << p.detect
        << "\", \"flip_prob\": " << json_number(p.flip_prob)
        << ", \"batches\": " << p.batches << ", \"cells\": " << p.cells
        << ", \"makespan_s\": " << json_number(p.makespan_s)
        << ", \"gcups\": " << json_number(p.gcups)
        << ", \"overhead\": " << json_number(p.overhead)
        << ", \"host_seconds\": " << json_number(p.host_seconds)
        << ", \"sdc_flips\": " << p.stats.sdc_flips
        << ", \"sdc_detected\": " << p.stats.sdc_detected
        << ", \"sdc_corrected\": " << p.stats.sdc_corrected
        << ", \"sdc_masked\": " << p.stats.sdc_masked
        << ", \"reexecutions\": " << p.stats.reexecutions
        << ", \"cpu_fallbacks\": " << p.stats.cpu_fallbacks
        << ", \"watchdog_timeouts\": " << p.stats.watchdog_timeouts << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "(json written to " << path << ")\n";
}

SweepPoint run_point(guard::DetectMode detect, double flip_prob,
                     const std::vector<wsim::workload::SwBatch>& sw_batches,
                     const std::vector<wsim::workload::PhBatch>& ph_batches) {
  fleet::FleetConfig cfg;
  for (const auto& device : wsim::bench::evaluation_devices()) {
    fleet::WorkerConfig wc;
    wc.device = device;
    wc.max_pending_batches = static_cast<std::size_t>(1) << 20;
    cfg.workers.push_back(std::move(wc));
  }
  cfg.engine = &wsim::bench::bench_engine();
  cfg.guard.detect = detect;
  cfg.guard.sdc.seed = 7;
  cfg.guard.sdc.flip_prob = flip_prob;
  fleet::FleetExecutor executor(std::move(cfg));

  const auto wall_start = std::chrono::steady_clock::now();
  for (const auto& batch : sw_batches) {
    (void)executor.execute_sw(batch, 0.0, {});
  }
  for (const auto& batch : ph_batches) {
    (void)executor.execute_ph(batch, 0.0, {});
  }
  const auto stats = executor.stats();

  SweepPoint point;
  point.detect = std::string(guard::to_string(detect));
  point.flip_prob = flip_prob;
  point.batches = sw_batches.size() + ph_batches.size();
  // Delivered work only: stats.total_cells() also counts re-executions,
  // which are overhead, not throughput.
  point.cells = 0;
  for (const auto& batch : sw_batches) {
    point.cells += wsim::workload::batch_cells(batch);
  }
  for (const auto& batch : ph_batches) {
    point.cells += wsim::workload::batch_cells(batch);
  }
  point.makespan_s = executor.all_free_at();
  point.gcups = point.makespan_s > 0.0
                    ? static_cast<double>(point.cells) / point.makespan_s / 1e9
                    : 0.0;
  point.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  point.stats = stats.guard;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  wsim::bench::banner("Ablation", "result-verification (guard) overhead");

  auto gen = wsim::bench::standard_dataset_config();
  gen.regions = smoke ? 3 : 24;
  const auto dataset = wsim::workload::generate_dataset(gen);
  const std::size_t batch_size = smoke ? 32 : 96;
  const auto sw_batches = wsim::workload::sw_rebatch(dataset, batch_size);
  const auto ph_batches = wsim::workload::ph_rebatch(dataset, batch_size);

  struct Cell {
    guard::DetectMode detect;
    double flip_prob;
  };
  const std::vector<Cell> cells = {
      {guard::DetectMode::kNone, 0.0},
      {guard::DetectMode::kAbft, 0.0},
      {guard::DetectMode::kDual, 0.0},
      {guard::DetectMode::kDual, 3e-7},  // recovery point
  };

  std::vector<SweepPoint> points;
  for (const auto& cell : cells) {
    points.push_back(run_point(cell.detect, cell.flip_prob, sw_batches, ph_batches));
  }
  const double base_makespan = points.front().makespan_s;
  for (auto& p : points) {
    p.overhead = base_makespan > 0.0 ? p.makespan_s / base_makespan : 0.0;
  }

  wsim::util::Table table({"detect", "flip prob", "makespan", "GCUPS", "overhead",
                           "flips", "detected", "corrected", "re-exec", "cpu"});
  for (const auto& p : points) {
    table.add_row({p.detect, json_number(p.flip_prob),
                   format_fixed(p.makespan_s * 1e3, 2) + " ms",
                   format_fixed(p.gcups, 2), format_fixed(p.overhead, 2) + "x",
                   std::to_string(p.stats.sdc_flips),
                   std::to_string(p.stats.sdc_detected),
                   std::to_string(p.stats.sdc_corrected),
                   std::to_string(p.stats.reexecutions),
                   std::to_string(p.stats.cpu_fallbacks)});
  }
  table.print(std::cout);
  wsim::bench::maybe_write_csv("guard_overhead", table);
  write_json("BENCH_guard.json", points);

  std::cout << "\nExpected shape: abft verification is nearly free (host-side\n"
               "invariant checks); dual execution roughly doubles device time\n"
               "(overhead ~2x, GCUPS ~half); the injected point adds re-runs\n"
               "for flagged batches on top of the dual baseline.\n";
  return 0;
}
