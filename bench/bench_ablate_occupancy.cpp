// Ablation: the occupancy calculator (paper Eq. 8) — how registers/thread
// and shared memory/block cap the resident warps, and where each resource
// becomes the limiter. These cliffs drive the paper's shuffle trade-off.

#include <iostream>

#include "bench_common.hpp"
#include "wsim/simt/occupancy.hpp"
#include "wsim/util/table.hpp"

int main() {
  using wsim::util::format_percent;
  wsim::bench::banner("Ablation (Eq. 8)", "occupancy limiter sweep on K1200");
  const auto dev = wsim::simt::make_k1200();

  std::cout << "Register sweep (32 threads/block, no shared memory):\n";
  wsim::util::Table regs({"regs/thread", "blocks/SM", "occupancy", "limiter"});
  for (const int r : {16, 24, 32, 48, 64, 80, 96, 112, 128, 160, 200, 255}) {
    const auto occ = wsim::simt::compute_occupancy(dev, 32, r, 0);
    regs.add_row({std::to_string(r), std::to_string(occ.blocks_per_sm),
                  format_percent(occ.fraction),
                  std::string(wsim::simt::to_string(occ.limiter))});
  }
  regs.print(std::cout);

  std::cout << "\nShared-memory sweep (128 threads/block, 32 regs/thread):\n";
  wsim::util::Table smem({"smem/block (B)", "blocks/SM", "occupancy", "limiter"});
  for (const int s : {0, 1024, 2048, 4096, 6144, 8192, 12288, 16384, 24576, 32768,
                      49152}) {
    const auto occ = wsim::simt::compute_occupancy(dev, 128, 32, s);
    smem.add_row({std::to_string(s), std::to_string(occ.blocks_per_sm),
                  format_percent(occ.fraction),
                  std::string(wsim::simt::to_string(occ.limiter))});
  }
  smem.print(std::cout);

  std::cout << "\nThe paper's kernels sit on these curves: SW1 pays the\n"
               "shared-memory column (line buffers + btrack tile), SW2 rides\n"
               "the block-slot cap, PH1 is smem-limited, PH2 register-limited.\n";
  return 0;
}
