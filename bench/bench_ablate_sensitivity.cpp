// Ablation: hypothetical-hardware sensitivity, a what-if only a simulator
// can run. The paper's whole argument rests on shuffle being cheaper than
// shared memory (9 vs 21 cycles on Maxwell). How fast does the advantage
// erode if future architectures made shuffle slower? We sweep the shuffle
// latency past the shared-memory latency and watch the SW2/SW1 and
// PH2/PH1 speedups: even at parity the shuffle designs keep an edge from
// eliminated synchronization and freed shared memory — the paper's
// "benefits beyond latency" decomposition, quantified.

#include <iostream>

#include "bench_common.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/util/rng.hpp"
#include "wsim/util/table.hpp"

namespace {

using wsim::kernels::CommMode;
using wsim::util::format_fixed;

std::string random_dna(wsim::util::Rng& rng, int len) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = "ACGT"[rng.uniform_int(0, 3)];
  }
  return s;
}

}  // namespace

int main() {
  wsim::bench::banner("Ablation", "speedup sensitivity to the shuffle latency");
  wsim::util::Rng rng(3);

  // Saturated batches of identical tasks on a K1200 variant whose shuffle
  // latency we dial.
  const std::string target = random_dna(rng, 256);
  const wsim::workload::SwBatch sw_batch(128, {target.substr(16, 192), target});
  const wsim::workload::SwBatch sw_small(4, {target.substr(16, 192), target});
  wsim::align::PairHmmTask ph_task;
  ph_task.hap = random_dna(rng, 200);
  ph_task.read = ph_task.hap.substr(0, 120);
  ph_task.base_quals.assign(120, 30);
  ph_task.ins_quals.assign(120, 45);
  ph_task.del_quals.assign(120, 45);
  const wsim::workload::PhBatch ph_batch(192, ph_task);
  const wsim::workload::PhBatch ph_small(4, ph_task);

  wsim::util::Table table({"shfl latency (cy)", "vs smem (21 cy)",
                           "SW2/SW1 latency-bound", "SW2/SW1 saturated",
                           "PH2/PH1 latency-bound", "PH2/PH1 saturated"});
  for (const int shfl : {5, 9, 14, 21, 30, 42}) {
    auto dev = wsim::simt::make_k1200();
    dev.lat.shfl = shfl;
    dev.lat.shfl_up = shfl;
    dev.lat.shfl_down = shfl;
    dev.lat.shfl_xor = shfl + 3;

    wsim::kernels::SwRunOptions sw_opt;
    sw_opt.mode = wsim::simt::ExecMode::kCachedByShape;
    const wsim::kernels::SwRunner sw_shared(CommMode::kSharedMemory);
    const wsim::kernels::SwRunner sw_shuffle(CommMode::kShuffle);
    const double sw_sat = sw_shuffle.run_batch(dev, sw_batch, sw_opt).run.gcups_kernel() /
                          sw_shared.run_batch(dev, sw_batch, sw_opt).run.gcups_kernel();
    const double sw_lat = sw_shuffle.run_batch(dev, sw_small, sw_opt).run.gcups_kernel() /
                          sw_shared.run_batch(dev, sw_small, sw_opt).run.gcups_kernel();

    wsim::kernels::PhRunOptions ph_opt;
    ph_opt.mode = wsim::simt::ExecMode::kCachedByShape;
    const wsim::kernels::PhRunner ph_shared(CommMode::kSharedMemory);
    const wsim::kernels::PhRunner ph_shuffle(CommMode::kShuffle);
    const double ph_sat = ph_shuffle.run_batch(dev, ph_batch, ph_opt).run.gcups_kernel() /
                          ph_shared.run_batch(dev, ph_batch, ph_opt).run.gcups_kernel();
    const double ph_lat = ph_shuffle.run_batch(dev, ph_small, ph_opt).run.gcups_kernel() /
                          ph_shared.run_batch(dev, ph_small, ph_opt).run.gcups_kernel();

    std::string relation = shfl < 21 ? "cheaper" : (shfl == 21 ? "equal" : "dearer");
    table.add_row({std::to_string(shfl), relation, format_fixed(sw_lat, 2) + "x",
                   format_fixed(sw_sat, 2) + "x", format_fixed(ph_lat, 2) + "x",
                   format_fixed(ph_sat, 2) + "x"});
  }
  table.print(std::cout);

  std::cout <<
      "\nReading: in the latency-bound regime (few blocks, each block's\n"
      "critical path exposed) the advantage shrinks as shuffle approaches\n"
      "and passes the shared-memory latency — Eq. 7's latency term at\n"
      "work. In the saturated regime the SMs are issue/port bound, so the\n"
      "shuffle designs' structural advantages (no barriers, no smem port\n"
      "pressure, fewer instructions per cell, occupancy) persist no matter\n"
      "the latency. This is the trade-off surface the paper's model lets\n"
      "programmers explore before writing a kernel.\n";
  return 0;
}
