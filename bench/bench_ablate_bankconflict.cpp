// Ablation: shared-memory bank-conflict serialization in the interpreter —
// a strided-access kernel sweeps the conflict degree from 1 (conflict-free)
// to 32 (fully serialized), the effect that makes the paper's line-buffer
// layout (one word per lane) the right choice.

#include <iostream>

#include "bench_common.hpp"
#include "wsim/simt/builder.hpp"
#include "wsim/simt/runtime.hpp"
#include "wsim/util/table.hpp"

namespace {

long long run_stride(const wsim::simt::DeviceSpec& dev, int stride, int iterations) {
  using namespace wsim::simt;
  KernelBuilder kb("stride" + std::to_string(stride), 32);
  const int buf = kb.alloc_smem(32 * 32 * 4);
  const VReg tid = kb.tid();
  const VReg addr = kb.iadd(imm_i64(buf), kb.imul(tid, imm_i64(4L * stride)));
  const VReg acc = kb.mov(imm_i64(0));
  kb.loop(imm_i64(iterations));
  kb.assign(acc, kb.iadd(kb.lds(addr), acc));
  kb.endloop();
  kb.stg(kb.imul(tid, imm_i64(4)), acc);
  const Kernel kernel = kb.build();
  GlobalMemory gmem;
  gmem.alloc(32 * 4);
  const std::vector<BlockLaunch> blocks(1);
  return wsim::bench::bench_engine()
      .launch(kernel, dev, gmem, blocks)
      .representative.cycles;
}

}  // namespace

int main() {
  using wsim::util::format_fixed;
  wsim::bench::banner("Ablation", "shared-memory bank-conflict serialization");
  constexpr int kIterations = 256;

  for (const auto& dev : wsim::bench::evaluation_devices()) {
    std::cout << "--- " << dev.name << " ---\n";
    wsim::util::Table table({"stride (words)", "conflict degree", "cycles",
                             "cycles/iteration", "slowdown"});
    const long long base = run_stride(dev, 1, kIterations);
    for (const int stride : {1, 2, 4, 8, 16, 32}) {
      const long long cycles = run_stride(dev, stride, kIterations);
      table.add_row({std::to_string(stride), std::to_string(stride),
                     std::to_string(cycles),
                     format_fixed(static_cast<double>(cycles) / kIterations, 1),
                     format_fixed(static_cast<double>(cycles) / base, 2)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Stride-1 access (the paper's anti-diagonal line buffers) is\n"
               "conflict-free; each doubling of the stride doubles the\n"
               "transaction count until all 32 lanes hit one bank.\n";
  return 0;
}
