// Online-calibration proof bench: the silent-degradation disaster and its
// drift-aware recovery, measured end to end on the heterogeneous
// K40 + K1200 + Titan X fleet.
//
// The production-realistic kCalibrated policy never reads the simulator's
// oracle device-free times — each device's backlog is the sum of its own
// factor-corrected predicted batch seconds. Three calibration modes frame
// the story:
//
//   * off     — raw Eq. 7/8 placement. The per-device model biases spread
//               ~1.8x across this fleet, so even the healthy placement is
//               badly unbalanced: context, not the baseline.
//   * static  — calibrate-once-at-deploy (freeze_after_warmup): factors
//               seed from the warm-up mean and freeze. Healthy placement
//               is good — and a silently degraded card keeps receiving its
//               healthy-rate share to the very end. This is the honest
//               disaster every real deployment with one-shot calibration
//               ships.
//   * online  — the full ladder: EWMA factors track the residuals, the
//               CUSUM/baseline-drift detectors derate the card (snapping
//               its factor to the post-onset evidence and propagating the
//               drift to its other kernel classes), and placement steers
//               work away while probes keep requalification possible.
//
//   recovery = (M_degr_static - M_degr_online) / (M_degr_static - M_healthy_online)
//
// Contracts checked (CI runs --smoke): recovery >= 0.7, zero false
// derates/quarantines on the healthy fleet, and bit-identical SW outputs
// with calibration on vs off. Ramp (kProgressive) and flap (kFlapping)
// points prove the detectors catch step-free drift and that flapping
// devices requalify instead of dying in quarantine. Results land in
// BENCH_calib.json.

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "wsim/fleet/fleet.hpp"
#include "wsim/guard/guard.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/batching.hpp"

namespace {

namespace fleet = wsim::fleet;
using wsim::util::format_fixed;

struct CalibPoint {
  std::string scenario;
  std::string policy;
  std::string cal_mode;     ///< "off" | "static" | "online"
  std::string degradation;  ///< "none" | "stuck" | "ramp" | "flap"
  double makespan_s = 0.0;
  double gcups = 0.0;
  std::size_t drift_suspects = 0;
  std::size_t derates = 0;
  std::size_t requalifications = 0;
  std::size_t probes = 0;
  std::size_t quarantines = 0;
  std::vector<double> factors;       ///< per-device dominant factor at end
  std::vector<std::string> states;   ///< per-device drift state at end
  std::vector<double> busy_seconds;  ///< per-device (capacity-share probe)
  std::vector<std::size_t> batches;  ///< per-device dispatch counts
};

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  std::ostringstream os;
  os << value;
  return os.str();
}

void write_json(const std::string& path, const std::vector<CalibPoint>& points,
                double recovery, std::size_t false_derates,
                std::size_t false_quarantines, bool outputs_identical) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  out << "{\n  \"bench\": \"calibration\",\n"
      << "  \"recovery\": " << json_number(recovery) << ",\n"
      << "  \"false_derates_healthy\": " << false_derates << ",\n"
      << "  \"false_quarantines_healthy\": " << false_quarantines << ",\n"
      << "  \"outputs_identical_on_vs_off\": "
      << (outputs_identical ? "true" : "false") << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    out << "    {\"scenario\": \"" << p.scenario << "\", \"policy\": \""
        << p.policy << "\", \"calibration\": \"" << p.cal_mode
        << "\", \"degradation\": \""
        << p.degradation << "\", \"makespan_s\": " << json_number(p.makespan_s)
        << ", \"gcups\": " << json_number(p.gcups)
        << ", \"drift_suspects\": " << p.drift_suspects
        << ", \"derates\": " << p.derates
        << ", \"requalifications\": " << p.requalifications
        << ", \"probes\": " << p.probes
        << ", \"quarantines\": " << p.quarantines << ", \"factors\": [";
    for (std::size_t d = 0; d < p.factors.size(); ++d) {
      out << json_number(p.factors[d]) << (d + 1 < p.factors.size() ? ", " : "");
    }
    out << "], \"drift_states\": [";
    for (std::size_t d = 0; d < p.states.size(); ++d) {
      out << '"' << p.states[d] << '"' << (d + 1 < p.states.size() ? ", " : "");
    }
    out << "]}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "(json written to " << path << ")\n";
}

/// Calibration modes the scenarios sweep.
enum class CalMode { kOff, kStatic, kOnline };

std::string to_string(CalMode mode) {
  switch (mode) {
    case CalMode::kOff:
      return "off";
    case CalMode::kStatic:
      return "static";
    case CalMode::kOnline:
      return "online";
  }
  return "?";
}

/// One full offline dispatch of the dataset through a fresh fleet.
CalibPoint run_point(const std::string& scenario,
                     fleet::PlacementPolicy policy, CalMode mode,
                     const std::vector<wsim::simt::DeviceSpec>& devices,
                     const std::vector<wsim::workload::SwBatch>& sw_batches,
                     const std::vector<wsim::workload::PhBatch>& ph_batches,
                     const fleet::FaultPlan& faults,
                     const std::string& degradation) {
  fleet::FleetConfig cfg;
  for (const auto& device : devices) {
    fleet::WorkerConfig wc;
    wc.device = device;
    wc.max_pending_batches = static_cast<std::size_t>(1) << 20;
    cfg.workers.push_back(std::move(wc));
  }
  cfg.policy = policy;
  cfg.faults = faults;
  cfg.calibration.enabled = mode != CalMode::kOff;
  cfg.calibration.freeze_after_warmup = mode == CalMode::kStatic;
  cfg.engine = &wsim::bench::bench_engine();
  fleet::FleetExecutor executor(std::move(cfg));

  // Interleave the two kernels (the serving layer's steady state) instead
  // of dispatching all SW first: every device's dispatch sequence then
  // samples both calibration classes throughout the run, and a degradation
  // onset in per-device sequence space hits a representative mix of work.
  fleet::ExecOptions opt;
  opt.collect_outputs = false;
  std::size_t i_sw = 0;
  std::size_t i_ph = 0;
  while (i_sw < sw_batches.size() || i_ph < ph_batches.size()) {
    const bool want_sw =
        i_sw < sw_batches.size() &&
        (i_ph >= ph_batches.size() || (i_sw + i_ph) % 3 == 0);
    if (want_sw) {
      (void)executor.execute_sw(sw_batches[i_sw++], 0.0, opt);
    } else {
      (void)executor.execute_ph(ph_batches[i_ph++], 0.0, opt);
    }
  }

  const auto stats = executor.stats();
  CalibPoint point;
  point.scenario = scenario;
  point.policy = std::string(fleet::to_string(policy));
  point.cal_mode = to_string(mode);
  point.degradation = degradation;
  point.makespan_s = executor.all_free_at();
  point.gcups = point.makespan_s > 0.0
                    ? static_cast<double>(stats.total_cells()) /
                          point.makespan_s / 1e9
                    : 0.0;
  for (const auto& d : stats.devices) {
    point.drift_suspects += d.drift_suspects;
    point.derates += d.derates;
    point.requalifications += d.requalifications;
    point.probes += d.probes;
    point.quarantines += d.quarantines;
    point.factors.push_back(d.calibration_factor);
    point.states.emplace_back(fleet::to_string(d.drift_state));
    point.busy_seconds.push_back(d.busy_seconds);
    point.batches.push_back(d.batches);
  }
  return point;
}

/// Fingerprint of every SW batch's outputs under one configuration — the
/// bit-identity probe. Values must not depend on the calibration switch.
std::uint64_t outputs_fingerprint(
    bool calibration, const std::vector<wsim::simt::DeviceSpec>& devices,
    const std::vector<wsim::workload::SwBatch>& sw_batches) {
  fleet::FleetConfig cfg;
  for (const auto& device : devices) {
    fleet::WorkerConfig wc;
    wc.device = device;
    wc.max_pending_batches = static_cast<std::size_t>(1) << 20;
    cfg.workers.push_back(std::move(wc));
  }
  cfg.policy = fleet::PlacementPolicy::kCalibrated;
  cfg.calibration.enabled = calibration;
  cfg.engine = &wsim::bench::bench_engine();
  fleet::FleetExecutor executor(std::move(cfg));
  fleet::ExecOptions opt;
  opt.collect_outputs = true;
  std::uint64_t print = 0x9e3779b97f4a7c15ULL;
  for (const auto& batch : sw_batches) {
    const auto out = executor.execute_sw(batch, 0.0, opt);
    const std::uint64_t h = wsim::guard::fingerprint_sw(out.result.outputs);
    print ^= h + 0x9e3779b97f4a7c15ULL + (print << 6) + (print >> 2);
  }
  return print;
}

fleet::FaultPlan degrade(int device, fleet::DegradeKind kind, double factor,
                         std::uint64_t onset, std::uint64_t ramp,
                         std::uint64_t period) {
  fleet::FaultPlan plan;
  fleet::DegradeSpec spec;
  spec.device = device;
  spec.kind = kind;
  spec.factor = factor;
  spec.onset_seq = onset;
  spec.ramp_batches = ramp;
  spec.period = period;
  plan.degradations.push_back(spec);
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  wsim::bench::banner("calibration extension",
                      "online model calibration and drift-aware recovery");

  auto gen = wsim::bench::standard_dataset_config();
  // The workload is identical in --smoke (only the bit-identity probe set
  // shrinks): the drift scenarios are phase-sensitive — warm-up, onset,
  // flap periods, and requalification streaks all live in per-device
  // dispatch-sequence space — and a shrunken run would move the contracts.
  gen.regions = 32;
  // Heavier SW share and smaller batches than the fleet bench: calibration
  // needs enough observations per (device, kernel class) to warm up, drift
  // onsets to land mid-run, and windows to confirm.
  gen.sw_tasks_per_region_mean = 96.0;
  gen.sw_query_len_min = 32;
  gen.sw_query_len_max = 512;
  gen.sw_target_len_min = 64;
  gen.sw_target_len_max = 640;
  gen.hap_len_min = 32;
  gen.hap_len_max = 320;
  const auto dataset = wsim::workload::generate_dataset(gen);
  const std::size_t batch_size = 32;
  const auto sw_batches = wsim::workload::sw_rebatch(dataset, batch_size);
  const auto ph_batches = wsim::workload::ph_rebatch(dataset, batch_size);
  std::cout << "dataset: " << sw_batches.size() << " SW + " << ph_batches.size()
            << " PairHMM batches (rebatch " << batch_size << ")\n\n";

  const std::vector<wsim::simt::DeviceSpec> devices = {
      wsim::simt::make_k40(), wsim::simt::make_k1200(),
      wsim::simt::make_titan_x()};
  // The degraded card: the K40. Recovering >= 70% of the lost makespan is
  // only possible when the healthy remainder holds most of the fleet's
  // true capacity — the capacity-share probe below prints the bound. The
  // ramp/flap points reuse the same card.
  const int kSick = 0;
  // Degradation sets in after both per-class warm-ups (min_samples
  // observations each; SW is every third dispatch) so the CUSUM sees a
  // genuine step against a clean baseline, not a biased one.
  const std::uint64_t kOnset = 26;
  // Quarter-speed: the half-clocked card that also dropped a PCIe
  // generation. Harsh enough that blind spec-rate routing is a disaster.
  const double kFactor = 4.0;

  std::vector<CalibPoint> points;
  const auto record = [&](CalibPoint p) {
    points.push_back(std::move(p));
    return points.back();
  };

  // Raw Eq. 7/8 placement: context only. The healthy per-device biases are
  // large enough (about 15x, 8.5x, 10x) that this placement is unbalanced
  // even before anything degrades.
  const auto healthy_off =
      record(run_point("model-only", fleet::PlacementPolicy::kCalibrated,
                       CalMode::kOff, devices, sw_batches, ph_batches, {},
                       "none"));
  const auto healthy_static = record(
      run_point("healthy+static", fleet::PlacementPolicy::kCalibrated,
                CalMode::kStatic, devices, sw_batches, ph_batches, {}, "none"));
  const auto healthy_on = record(
      run_point("healthy+online", fleet::PlacementPolicy::kCalibrated,
                CalMode::kOnline, devices, sw_batches, ph_batches, {}, "none"));
  const fleet::FaultPlan stuck =
      degrade(kSick, fleet::DegradeKind::kStuckSlow, kFactor, kOnset, 0, 0);
  // The disaster baseline: deploy-time calibration routes well until the
  // onset, then keeps feeding the sick card its healthy-rate share forever.
  const auto degraded_static =
      record(run_point("degraded+static", fleet::PlacementPolicy::kCalibrated,
                       CalMode::kStatic, devices, sw_batches, ph_batches, stuck,
                       "stuck"));
  const auto degraded_on =
      record(run_point("degraded+online", fleet::PlacementPolicy::kCalibrated,
                       CalMode::kOnline, devices, sw_batches, ph_batches, stuck,
                       "stuck"));
  // Legacy reference: oracle-feedback model placement under the same
  // degradation — the point PR earlier benches called "model+degraded".
  const auto model_degraded = record(
      run_point("model+degraded", fleet::PlacementPolicy::kModelGuided,
                CalMode::kOff, devices, sw_batches, ph_batches, stuck, "stuck"));
  // Step-free drift: a slow thermal ramp the CUSUM cannot see — only the
  // baseline-drift check catches it.
  const auto ramp_on = record(
      run_point("ramp+online", fleet::PlacementPolicy::kCalibrated,
                CalMode::kOnline, devices, sw_batches, ph_batches,
                degrade(kSick, fleet::DegradeKind::kProgressive, kFactor,
                        kOnset, /*ramp=*/96, 0),
                "ramp"));
  // Flapping: degraded and healthy phases alternate (half-period 20
  // dispatches — the healthy phase must hold a requalification streak);
  // the ladder must derate during the sick phases and requalify during the
  // healthy ones — never hard-quarantine a card that keeps coming back.
  const auto flap_on = record(
      run_point("flap+online", fleet::PlacementPolicy::kCalibrated,
                CalMode::kOnline, devices, sw_batches, ph_batches,
                degrade(kSick, fleet::DegradeKind::kFlapping, 2.0, kOnset, 0,
                        /*period=*/20),
                "flap"));

  wsim::util::Table table({"scenario", "policy", "cal", "degrade",
                           "makespan (ms)", "suspects", "derates", "requal",
                           "quarantines", "factors"});
  for (const auto& p : points) {
    std::string factors;
    for (const double f : p.factors) {
      if (!factors.empty()) {
        factors += ' ';
      }
      factors += format_fixed(f, 2);
    }
    table.add_row({p.scenario, p.policy, p.cal_mode,
                   p.degradation, format_fixed(p.makespan_s * 1e3, 3),
                   std::to_string(p.drift_suspects),
                   std::to_string(p.derates),
                   std::to_string(p.requalifications),
                   std::to_string(p.quarantines), factors});
  }
  table.print(std::cout);

  wsim::util::Table detail(
      {"scenario", "busy (ms)", "batches", "probes", "states"});
  for (const auto& p : points) {
    std::string busy;
    std::string counts;
    std::string states;
    for (std::size_t d = 0; d < p.busy_seconds.size(); ++d) {
      if (d > 0) {
        busy += ' ';
        counts += ' ';
        states += ' ';
      }
      busy += format_fixed(p.busy_seconds[d] * 1e3, 1);
      counts += std::to_string(p.batches[d]);
      states += p.states[d];
    }
    detail.add_row({p.scenario, busy, counts, std::to_string(p.probes), states});
  }
  detail.print(std::cout);

  // Capacity-share probe (healthy, online calibration): how much of the
  // fleet's true throughput the sick card holds — the recovery bound.
  double busy_total = 0.0;
  for (const double b : healthy_on.busy_seconds) {
    busy_total += b;
  }
  std::cout << "\ncapacity shares (healthy, online-calibrated placement):";
  for (std::size_t d = 0; d < devices.size(); ++d) {
    std::cout << ' ' << devices[d].name << ' '
              << format_fixed(100.0 * healthy_on.busy_seconds[d] / busy_total,
                              1)
              << '%';
  }
  std::cout << '\n';

  const double lost = degraded_static.makespan_s - healthy_on.makespan_s;
  const double recovered = degraded_static.makespan_s - degraded_on.makespan_s;
  const double recovery = lost > 0.0 ? recovered / lost : 0.0;
  std::cout << "\nrecovery: degraded+static "
            << format_fixed(degraded_static.makespan_s * 1e3, 3)
            << " ms -> degraded+online "
            << format_fixed(degraded_on.makespan_s * 1e3, 3)
            << " ms (healthy+online "
            << format_fixed(healthy_on.makespan_s * 1e3, 3)
            << " ms): " << format_fixed(recovery * 100.0, 1)
            << "% of the lost makespan\n"
            << "legacy oracle-feedback reference (model+degraded): "
            << format_fixed(model_degraded.makespan_s * 1e3, 3) << " ms\n";

  // Bit-identity: calibration moves placement and time, never values.
  const std::size_t identity_batches = smoke ? 4 : 8;
  const std::vector<wsim::workload::SwBatch> identity_set(
      sw_batches.begin(),
      sw_batches.begin() +
          static_cast<std::ptrdiff_t>(
              std::min(identity_batches, sw_batches.size())));
  const std::uint64_t print_off =
      outputs_fingerprint(false, devices, identity_set);
  const std::uint64_t print_on =
      outputs_fingerprint(true, devices, identity_set);
  const bool outputs_identical = print_off == print_on;
  std::cout << "outputs fingerprint (cal off/on): " << std::hex << print_off
            << " / " << print_on << std::dec
            << (outputs_identical ? " (identical)" : " (MISMATCH)") << '\n';

  wsim::bench::maybe_write_csv("calibration", table);
  write_json("BENCH_calib.json", points, recovery, healthy_on.derates,
             healthy_on.quarantines, outputs_identical);

  std::cout <<
      "\nExpected shape:\n"
      "  * static (deploy-time) calibration + silent degradation: the sick\n"
      "    card keeps its healthy-rate share and the makespan balloons\n"
      "    (the honest disaster one-shot calibration ships);\n"
      "  * online calibration: the drift ladder derates the card onto its\n"
      "    true speed within a confirmation window, and most of the lost\n"
      "    makespan is recovered;\n"
      "  * the healthy fleet never derates or quarantines (no false\n"
      "    positives), and outputs are bit-identical either way;\n"
      "  * the ramp is caught by the baseline-drift check (no step for the\n"
      "    CUSUM), the flapping card requalifies instead of being\n"
      "    quarantined.\n";

  // --- Contracts -----------------------------------------------------------
  int failures = 0;
  const auto expect = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::cerr << "FAIL: " << what << '\n';
      ++failures;
    }
  };
  expect(recovery >= 0.7, "calibrated routing recovers " +
                              format_fixed(recovery * 100.0, 1) +
                              "% of the degraded makespan (need >= 70%)");
  expect(healthy_on.derates == 0 && healthy_on.quarantines == 0,
         "healthy fleet must see zero derates/quarantines (got " +
             std::to_string(healthy_on.derates) + "/" +
             std::to_string(healthy_on.quarantines) + ")");
  expect(outputs_identical, "outputs must be bit-identical on vs off");
  expect(degraded_static.makespan_s > 1.5 * healthy_static.makespan_s,
         "static calibration + degradation must inflate the makespan (got " +
             format_fixed(
                 degraded_static.makespan_s / healthy_static.makespan_s, 2) +
             "x)");
  expect(healthy_static.makespan_s < 0.8 * healthy_off.makespan_s,
         "static calibration must beat raw model placement when healthy");
  expect(degraded_on.derates >= 1,
         "stuck-slow degradation must be derated at least once");
  expect(degraded_on.quarantines == 0,
         "a 2x-slow card keeps serving derated, not quarantined");
  expect(ramp_on.drift_suspects >= 1,
         "the progressive ramp must raise a drift suspect");
  expect(flap_on.derates >= 1 && flap_on.requalifications >= 1,
         "the flapping card must derate and requalify (got " +
             std::to_string(flap_on.derates) + "/" +
             std::to_string(flap_on.requalifications) + ")");
  expect(flap_on.quarantines == 0, "flapping must not hard-quarantine");

  if (failures > 0) {
    return 1;
  }
  std::cout << "\nOK: recovery " << format_fixed(recovery * 100.0, 1)
            << "%, zero false positives, outputs identical\n";
  return 0;
}
