// Regenerates Table II: detailed kernel information on K1200 using the
// biggest original batch, compute time only (no transfer) — GCUPS,
// occupancy, registers/thread, shared memory/block, per-iteration latency
// and the latency reduction from using shuffle.
//
// The latency column follows the paper's methodology: it is derived from
// the performance model (Eq. 7 inverted, latency = parallelism x
// frequency / CUPS) with the parallelism of Eq. 8 clamped to the launched
// threads. The simulator's directly observed per-block iteration latency
// is shown alongside: the two agree when a kernel is latency-bound and
// diverge when the SM issue ports are the bottleneck.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/model/perf_model.hpp"
#include "wsim/util/stats.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/batching.hpp"

namespace {

using wsim::kernels::CommMode;
using wsim::util::format_fixed;

struct KernelRow {
  std::string name;
  double gcups = 0.0;
  wsim::simt::Occupancy occupancy;
  int regs = 0;
  int smem = 0;
  double effective_latency = 0.0;  ///< model-derived (paper's Table II method)
  double block_latency = 0.0;      ///< simulated cycles per block iteration
};

}  // namespace

int main() {
  wsim::bench::banner("Table II", "detailed kernel information (K1200, biggest batch)");
  const auto dev = wsim::simt::make_k1200();
  const auto dataset = wsim::workload::generate_dataset(
      wsim::bench::standard_dataset_config());
  const auto sw_batch = wsim::workload::sw_biggest_batch(dataset);
  const auto ph_batch = wsim::workload::ph_biggest_batch(dataset);
  std::cout << "Biggest batches: SW " << sw_batch.size() << " tasks, PairHMM "
            << ph_batch.size() << " tasks. GCUPS exclude transfers.\n\n";

  std::vector<KernelRow> rows;
  for (const auto mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
    const wsim::kernels::SwRunner runner(mode);
    wsim::kernels::SwRunOptions opt;
    opt.mode = wsim::simt::ExecMode::kCachedByShape;
    const auto result = runner.run_batch(dev, sw_batch, opt);
    KernelRow row;
    row.name = mode == CommMode::kSharedMemory ? "SW1" : "SW2";
    row.gcups = result.run.gcups_kernel();
    row.occupancy = result.run.launch.occupancy;
    row.regs = runner.kernel().vreg_count;
    row.smem = runner.kernel().smem_bytes;
    row.effective_latency = wsim::model::effective_latency_cycles(
        dev, row.occupancy, row.gcups * 1e9, sw_batch.size(),
        runner.kernel().threads_per_block);
    row.block_latency = result.run.cycles_per_iteration(wsim::kernels::sw_iterations(
        sw_batch.front().query.size(), sw_batch.front().target.size()));
    rows.push_back(row);
  }
  for (const auto mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
    const wsim::kernels::PhRunner runner(mode);
    wsim::kernels::PhRunOptions opt;
    opt.mode = wsim::simt::ExecMode::kCachedByShape;
    const auto result = runner.run_batch(dev, ph_batch, opt);
    const auto& kernel = runner.kernel_for_read_len(ph_batch.front().read.size());
    KernelRow row;
    row.name = mode == CommMode::kSharedMemory ? "PH1" : "PH2";
    row.gcups = result.run.gcups_kernel();
    row.occupancy = result.run.launch.occupancy;
    row.regs = kernel.vreg_count;
    row.smem = kernel.smem_bytes;
    row.effective_latency = wsim::model::effective_latency_cycles(
        dev, row.occupancy, row.gcups * 1e9, ph_batch.size(),
        kernel.threads_per_block);
    row.block_latency =
        result.run.cycles_per_iteration(result.representative_iterations);
    rows.push_back(row);
  }

  wsim::util::Table table({"", "GCUPS", "occupancy(%)", "#reg/thread",
                           "#sharedmem/block", "latency(cycle)",
                           "reduction(cycle)", "block latency (cy/iter)"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& r = rows[i];
    const std::string reduction =
        i % 2 == 1 ? format_fixed(rows[i - 1].effective_latency - r.effective_latency, 0)
                   : "-";
    table.add_row({r.name, format_fixed(r.gcups, 2),
                   format_fixed(r.occupancy.fraction * 100.0, 1),
                   std::to_string(r.regs), std::to_string(r.smem),
                   format_fixed(r.effective_latency, 0), reduction,
                   format_fixed(r.block_latency, 0)});
  }
  table.print(std::cout);
  wsim::bench::maybe_write_csv("table2_details", table);

  const double sw_speedup = rows[1].gcups / rows[0].gcups;
  const double ph_speedup = rows[3].gcups / rows[2].gcups;
  std::cout << "\nShuffle speedups: SW2/SW1 = " << format_fixed(sw_speedup, 2)
            << "x (paper: 1.2x), PH2/PH1 = " << format_fixed(ph_speedup, 2)
            << "x (paper: 2.1x).\n"
            << "\nReading the trade-off (paper Section V-D):\n"
               "  * SW: shuffle frees shared memory -> occupancy rises AND the\n"
               "    iteration latency falls; both factors help SW2.\n"
               "  * PairHMM: PH2's register blocking drops occupancy (register\n"
               "    limited), but the communication-latency reduction outweighs\n"
               "    the parallelism loss.\n";
  return 0;
}
