// Latency/throughput trade-off of the online serving layer: replays the
// standard dataset as an open-loop Poisson arrival process through
// wsim::serve::AlignmentService, sweeping arrival rate x batching delay.
// This is the paper's Fig. 10 re-batching result operated online — longer
// batching delays form larger launches (higher GCUPS, better device
// utilization) at the cost of per-request latency.
//
// Besides the ASCII table (and the WSIM_CSV_DIR mirror), the sweep is
// written to BENCH_serve.json in the working directory so tooling can
// track the trade-off without parsing the table.

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "wsim/serve/service.hpp"
#include "wsim/util/rng.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/batching.hpp"

namespace {

using wsim::util::format_fixed;

struct Arrival {
  bool is_sw = false;
  std::size_t index = 0;
};

struct SweepPoint {
  double rate = 0.0;      ///< offered arrival rate, requests/simulated-second
  double delay_us = 0.0;  ///< BatchPolicy::max_batch_delay, microseconds
  wsim::serve::ServiceStats stats;
};

std::string json_escape_free_number(double value) {
  // JSON has no NaN/Inf; the sweep never produces them, but guard anyway.
  if (!std::isfinite(value)) {
    return "0";
  }
  std::ostringstream os;
  os << value;
  return os.str();
}

void write_json(const std::string& path, const std::vector<SweepPoint>& points) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  out << "{\n  \"bench\": \"serve_latency\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    const auto& s = p.stats;
    out << "    {\"arrival_rate\": " << json_escape_free_number(p.rate)
        << ", \"batch_delay_us\": " << json_escape_free_number(p.delay_us)
        << ", \"submitted\": " << s.submitted()
        << ", \"completed\": " << s.completed()
        << ", \"rejected\": " << s.rejected()
        << ", \"throughput_tasks_per_s\": "
        << json_escape_free_number(s.throughput_tasks_per_second())
        << ", \"gcups\": " << json_escape_free_number(s.gcups())
        << ", \"mean_batch_size\": "
        << json_escape_free_number(s.batch_sizes.mean_size())
        << ", \"latency_p50_s\": " << json_escape_free_number(s.latency.p50)
        << ", \"latency_p95_s\": " << json_escape_free_number(s.latency.p95)
        << ", \"latency_p99_s\": " << json_escape_free_number(s.latency.p99)
        << ", \"device_utilization\": "
        << json_escape_free_number(s.device_utilization()) << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "(json written to " << path << ")\n";
}

}  // namespace

int main() {
  wsim::bench::banner("serving extension",
                      "online re-batching: arrival rate x batching delay");

  auto gen = wsim::bench::standard_dataset_config();
  gen.regions = 24;  // keep the sweep interactive
  const auto dataset = wsim::workload::generate_dataset(gen);
  const auto sw_tasks = wsim::workload::sw_all_tasks(dataset);
  const auto ph_tasks = wsim::workload::ph_all_tasks(dataset);

  // Interleaved request stream, fixed across every sweep point.
  std::vector<Arrival> arrivals;
  arrivals.reserve(sw_tasks.size() + ph_tasks.size());
  for (std::size_t i = 0; i < sw_tasks.size(); ++i) {
    arrivals.push_back({true, i});
  }
  for (std::size_t i = 0; i < ph_tasks.size(); ++i) {
    arrivals.push_back({false, i});
  }
  wsim::util::Rng shuffle_rng(7);
  shuffle_rng.shuffle(arrivals);
  std::cout << "request stream: " << sw_tasks.size() << " SW + "
            << ph_tasks.size() << " PairHMM tasks\n\n";

  const std::vector<double> rates = {5e3, 2e4, 8e4};       // requests/s
  const std::vector<double> delays_us = {50, 200, 1000};   // max batch delay

  const auto device = wsim::simt::make_k1200();
  std::vector<SweepPoint> points;
  wsim::util::Table table({"rate (req/s)", "delay (us)", "batches",
                           "mean batch", "p50 (ms)", "p95 (ms)", "p99 (ms)",
                           "tput (req/s)", "GCUPS", "device util"});
  for (const double rate : rates) {
    for (const double delay_us : delays_us) {
      wsim::serve::ServiceConfig cfg;
      cfg.device = device;
      cfg.collect_outputs = false;  // timing-only: shape-cached execution
      cfg.policy.max_batch_delay = delay_us * 1e-6;
      cfg.engine = &wsim::bench::bench_engine();
      wsim::serve::AlignmentService service(cfg);

      wsim::util::Rng rng(1234);  // identical interarrival draws per point
      double t = 0.0;
      for (const Arrival& arrival : arrivals) {
        t += -std::log(1.0 - rng.uniform01()) / rate;
        service.advance_to(t);
        if (arrival.is_sw) {
          (void)service.submit(
              wsim::serve::SwRequest{sw_tasks[arrival.index], {}, {}, {}, {}});
        } else {
          (void)service.submit(
              wsim::serve::PairHmmRequest{ph_tasks[arrival.index], {}, {}, {}, {}});
        }
      }
      service.drain();
      const auto stats = service.stats();
      points.push_back({rate, delay_us, stats});
      table.add_row({format_fixed(rate, 0), format_fixed(delay_us, 0),
                     std::to_string(stats.batch_sizes.batches),
                     format_fixed(stats.batch_sizes.mean_size(), 2),
                     format_fixed(stats.latency.p50 * 1e3, 3),
                     format_fixed(stats.latency.p95 * 1e3, 3),
                     format_fixed(stats.latency.p99 * 1e3, 3),
                     format_fixed(stats.throughput_tasks_per_second(), 0),
                     format_fixed(stats.gcups(), 2),
                     format_fixed(stats.device_utilization() * 100.0, 1) + "%"});
    }
  }
  std::cout << "--- " << device.name << " ---\n";
  table.print(std::cout);
  wsim::bench::maybe_write_csv("serve_latency", table);
  write_json("BENCH_serve.json", points);

  std::cout <<
      "\nExpected shape (Fig. 10 trade-off, operated online):\n"
      "  * at a fixed rate, longer batching delays form larger batches and\n"
      "    raise GCUPS/utilization while p50 latency grows roughly by the\n"
      "    added delay;\n"
      "  * at a fixed delay, higher arrival rates fill batches faster, so\n"
      "    the latency cost of batching shrinks as load grows.\n";
  return 0;
}
