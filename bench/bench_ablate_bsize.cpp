// Ablation: the BSIZE tuning of the paper's two-level tiling. The paper
// reports "We set BSIZE as 32 for both SW1 and SW2, which offer the best
// performance from our experiments"; this bench sweeps BSIZE for the
// shared-memory design (the shuffle design is structurally pinned to one
// warp) and shows why 32 wins: larger tiles inflate the shared-memory
// footprint (line buffers + BSIZE^2 btrack tile) and crush occupancy.

#include <iostream>

#include "bench_common.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/occupancy.hpp"
#include "wsim/util/check.hpp"
#include "wsim/util/rng.hpp"
#include "wsim/util/table.hpp"

namespace {

using wsim::kernels::CommMode;
using wsim::util::format_fixed;
using wsim::util::format_percent;

std::string random_dna(wsim::util::Rng& rng, int len) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = "ACGT"[rng.uniform_int(0, 3)];
  }
  return s;
}

}  // namespace

int main() {
  wsim::bench::banner("Ablation", "SW BSIZE sweep (design A; design B is warp-pinned)");
  const auto dev = wsim::simt::make_k1200();
  wsim::util::Rng rng(5);

  // A saturated batch of identical mid-size tasks.
  const std::string target = random_dna(rng, 256);
  const wsim::workload::SwTask task{target.substr(16, 192), target};
  const wsim::workload::SwBatch batch(128, task);

  wsim::util::Table table({"BSIZE", "threads/block", "smem/block (B)", "occupancy",
                           "limiter", "GCUPS (saturated)"});
  for (const int bsize : {32, 64, 96}) {
    const wsim::kernels::SwRunner runner(CommMode::kSharedMemory, {}, bsize);
    const auto occ = wsim::simt::compute_occupancy(dev, runner.kernel());
    wsim::kernels::SwRunOptions opt;
    opt.mode = wsim::simt::ExecMode::kCachedByShape;
    const auto result = runner.run_batch(dev, batch, opt);
    table.add_row({std::to_string(bsize), std::to_string(bsize),
                   std::to_string(runner.kernel().smem_bytes),
                   format_percent(occ.fraction),
                   std::string(wsim::simt::to_string(occ.limiter)),
                   format_fixed(result.run.gcups_kernel(), 2)});
  }
  table.print(std::cout);

  // Design B cannot follow: shuffle does not cross warps.
  try {
    wsim::kernels::build_sw_kernel(CommMode::kShuffle, {}, 64);
    std::cout << "ERROR: shuffle design accepted BSIZE 64\n";
    return 1;
  } catch (const wsim::util::CheckError&) {
    std::cout << "\nBSIZE 64 for the shuffle design correctly rejected: shuffle\n"
                 "cannot cross warp boundaries (the limitation the whole paper\n"
                 "revolves around). BSIZE 32 is the sweet spot for design A —\n"
                 "the paper's finding.\n";
  }
  return 0;
}
