// Host-side cost of the observability layer (wsim::obs) at each level:
//
//   * off     — obs disabled; measured twice (off / off2) so the reported
//     "disabled overhead" is the run-to-run delta of the guarded no-op
//     path, i.e. it must sit inside measurement noise;
//   * metrics — counters/gauges/histograms live, no event recording;
//   * trace   — full span/event recording into the sharded rings.
//
// Each case pushes the same SW and PairHMM batches through a single-device
// FleetExecutor (dispatch, guard hooks, engine launch, readback) — the
// instrumented end-to-end path a serving run exercises. Results land in
// BENCH_obs.json. Exit status is non-zero when the disabled-mode delta
// exceeds the noise gate: the whole design rests on kOff being a
// branch-predictable no-op.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "wsim/fleet/fleet.hpp"
#include "wsim/obs/metrics.hpp"
#include "wsim/obs/obs.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/batching.hpp"
#include "wsim/workload/generator.hpp"

namespace {

namespace obs = wsim::obs;
using wsim::util::format_fixed;

/// Wall time of `reps` calls to `body`.
template <typename F>
double time_once(int reps, F&& body) {
  const auto begin = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    body();
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - begin;
  return elapsed.count();
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

struct CaseResult {
  std::string name;            ///< "sw" or "pairhmm"
  double off_seconds = 0.0;    ///< median over trials, level kOff (first)
  double off2_seconds = 0.0;   ///< median over trials, level kOff (second)
  double metrics_seconds = 0.0;
  double trace_seconds = 0.0;
  /// Per-trial paired deltas vs that trial's own off measurement — the
  /// pairing cancels slow drift (thermal, scheduler) that a cross-trial
  /// min/median comparison would mistake for overhead.
  std::vector<double> disabled_deltas_pct;
  std::vector<double> metrics_deltas_pct;
  std::vector<double> trace_deltas_pct;

  /// Disabled-mode delta between two identical runs in the same trial
  /// (noise-floor proxy; clamped at 0 — a faster second run is
  /// trivially within noise).
  double disabled_overhead_pct() const {
    return std::max(0.0, median(disabled_deltas_pct));
  }
  double metrics_overhead_pct() const { return median(metrics_deltas_pct); }
  double trace_overhead_pct() const { return median(trace_deltas_pct); }
};

wsim::fleet::FleetExecutor make_executor() {
  wsim::fleet::FleetConfig cfg;
  wsim::fleet::WorkerConfig wc;
  wc.device = wsim::simt::make_k1200();
  cfg.workers = {wc};
  cfg.engine = &wsim::bench::bench_engine();
  return wsim::fleet::FleetExecutor(std::move(cfg));
}

/// One end-to-end pass: every batch dispatched back-to-back on the
/// executor's simulated timeline. The executor is rebuilt per call so each
/// rep replays the identical dispatch sequence.
double run_sw_pass(const std::vector<wsim::workload::SwBatch>& batches) {
  auto executor = make_executor();
  double t = 0.0;
  double checksum = 0.0;
  for (const auto& batch : batches) {
    obs::set_sim_time(t);
    const auto exec = executor.execute_sw(batch, t, {});
    t = exec.exec.completion_time;
    checksum += exec.exec.service_seconds;
  }
  return checksum;
}

double run_ph_pass(const std::vector<wsim::workload::PhBatch>& batches) {
  auto executor = make_executor();
  double t = 0.0;
  double checksum = 0.0;
  for (const auto& batch : batches) {
    obs::set_sim_time(t);
    const auto exec = executor.execute_ph(batch, t, {});
    t = exec.exec.completion_time;
    checksum += exec.exec.service_seconds;
  }
  return checksum;
}

volatile double g_sink = 0.0;  // defeats whole-pass elision

template <typename F>
CaseResult run_case(const std::string& name, int trials, int reps, F&& pass) {
  CaseResult result;
  result.name = name;

  // Interleave the four level measurements inside each trial and compare
  // each level against the SAME trial's off measurement: scheduler and
  // frequency drift hits the whole trial equally, so the paired deltas
  // reflect the level, not when it ran. off and off2 are the SAME
  // configuration measured at different loop positions — their delta is
  // the noise floor the gate checks.
  const auto measure = [&](obs::Level level) {
    obs::set_level(level);
    obs::reset();
    const double seconds = time_once(reps, [&] { g_sink = pass(); });
    obs::reset();
    return seconds;
  };

  obs::set_level(obs::Level::kOff);
  g_sink = pass();  // warm-up (arenas, decode cache, page-in)

  std::vector<double> off_all;
  std::vector<double> off2_all;
  std::vector<double> metrics_all;
  std::vector<double> trace_all;
  for (int t = 0; t < trials; ++t) {
    const double off = measure(obs::Level::kOff);
    const double metrics = measure(obs::Level::kMetrics);
    const double trace = measure(obs::Level::kTrace);
    const double off2 = measure(obs::Level::kOff);
    off_all.push_back(off);
    off2_all.push_back(off2);
    metrics_all.push_back(metrics);
    trace_all.push_back(trace);
    result.disabled_deltas_pct.push_back((off2 - off) / off * 100.0);
    result.metrics_deltas_pct.push_back((metrics - off) / off * 100.0);
    result.trace_deltas_pct.push_back((trace - off) / off * 100.0);
  }
  result.off_seconds = median(off_all);
  result.off2_seconds = median(off2_all);
  result.metrics_seconds = median(metrics_all);
  result.trace_seconds = median(trace_all);
  obs::set_level(obs::Level::kOff);
  return result;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  std::ostringstream os;
  os << value;
  return os.str();
}

void write_json(const std::string& path, const std::vector<CaseResult>& results,
                double disabled_gate_pct, bool smoke) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  out << "{\n  \"bench\": \"obs_overhead\",\n  \"smoke\": "
      << (smoke ? "true" : "false")
      << ",\n  \"disabled_gate_pct\": " << json_number(disabled_gate_pct)
      << ",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    out << "    {\"case\": \"" << r.name
        << "\", \"off_seconds\": " << json_number(r.off_seconds)
        << ", \"off2_seconds\": " << json_number(r.off2_seconds)
        << ", \"metrics_seconds\": " << json_number(r.metrics_seconds)
        << ", \"trace_seconds\": " << json_number(r.trace_seconds)
        << ", \"disabled_overhead_pct\": "
        << json_number(r.disabled_overhead_pct())
        << ", \"metrics_overhead_pct\": "
        << json_number(r.metrics_overhead_pct())
        << ", \"trace_overhead_pct\": " << json_number(r.trace_overhead_pct())
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  double worst = 0.0;
  for (const CaseResult& r : results) {
    worst = std::max(worst, r.disabled_overhead_pct());
  }
  out << "  ],\n  \"disabled_overhead_pct\": " << json_number(worst)
      << "\n}\n";
  std::cout << "wrote " << path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    }
  }
  wsim::bench::banner("the observability-overhead gate",
                      "wsim::obs disabled / metrics / trace levels");

  const int trials = smoke ? 3 : 7;
  const int reps = smoke ? 1 : 2;

  auto cfg = wsim::bench::standard_dataset_config();
  cfg.regions = smoke ? 2 : 4;
  const auto dataset = wsim::workload::generate_dataset(cfg);
  const auto sw_batches = wsim::workload::sw_rebatch(dataset, smoke ? 4 : 8);
  const auto ph_batches = wsim::workload::ph_rebatch(dataset, smoke ? 8 : 16);

  std::vector<CaseResult> results;
  results.push_back(
      run_case("sw", trials, reps, [&] { return run_sw_pass(sw_batches); }));
  results.push_back(
      run_case("pairhmm", trials, reps, [&] { return run_ph_pass(ph_batches); }));

  wsim::util::Table table({"case", "off (ms)", "off2 (ms)", "metrics (ms)",
                           "trace (ms)", "disabled %", "metrics %", "trace %"});
  for (const CaseResult& r : results) {
    table.add_row({r.name, format_fixed(r.off_seconds * 1e3, 2),
                   format_fixed(r.off2_seconds * 1e3, 2),
                   format_fixed(r.metrics_seconds * 1e3, 2),
                   format_fixed(r.trace_seconds * 1e3, 2),
                   format_fixed(r.disabled_overhead_pct(), 2),
                   format_fixed(r.metrics_overhead_pct(), 2),
                   format_fixed(r.trace_overhead_pct(), 2)});
  }
  table.print(std::cout);
  wsim::bench::maybe_write_csv("obs_overhead", table);

  // Gate: the disabled level must be indistinguishable from not having
  // obs at all. Best-of-N timing still jitters on shared CI runners, so
  // the gate is a small noise band rather than exactly 0.
  const double gate_pct = 3.0;
  write_json("BENCH_obs.json", results, gate_pct, smoke);

  bool ok = true;
  for (const CaseResult& r : results) {
    if (r.disabled_overhead_pct() > gate_pct) {
      std::cerr << "FAIL: " << r.name << ": obs-disabled runs differ by "
                << format_fixed(r.disabled_overhead_pct(), 2) << "% (gate "
                << format_fixed(gate_pct, 1) << "%)\n";
      ok = false;
    }
  }
  std::cout << (ok ? "obs-disabled overhead within noise\n" : "");
  return ok ? 0 : 1;
}
