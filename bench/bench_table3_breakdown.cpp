// Regenerates Table III: the static instruction breakdown of each
// kernel's hot anti-diagonal loop (LOAD / WRITE / ROTATE / SYNC in the
// paper's grouping), the latency reduction estimated from the
// microbenchmark latencies, and its relative error against the measured
// per-iteration reduction — the paper's model-validation methodology.

#include <iostream>

#include "bench_common.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/model/breakdown.hpp"
#include "wsim/model/perf_model.hpp"
#include "wsim/util/stats.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/batching.hpp"

namespace {

using wsim::kernels::CommMode;
using wsim::model::CommBreakdown;
using wsim::util::format_fixed;
using wsim::util::format_percent;

std::string fmt(const std::uint64_t n) { return std::to_string(n); }

}  // namespace

int main() {
  wsim::bench::banner("Table III", "instruction breakdown and latency-reduction estimate");
  const auto dev = wsim::simt::make_k1200();

  const auto sw1 = wsim::kernels::build_sw_kernel(CommMode::kSharedMemory, {});
  const auto sw2 = wsim::kernels::build_sw_kernel(CommMode::kShuffle, {});
  const auto ph1 = wsim::kernels::build_ph_shared_kernel(128);
  const auto ph2 = wsim::kernels::build_ph_shuffle_kernel(4);

  const CommBreakdown b_sw1 = wsim::model::hot_loop_breakdown(sw1);
  const CommBreakdown b_sw2 = wsim::model::hot_loop_breakdown(sw2);
  const CommBreakdown b_ph1 = wsim::model::hot_loop_breakdown(ph1);
  const CommBreakdown b_ph2 = wsim::model::hot_loop_breakdown(ph2);

  wsim::util::Table table({"operation", "instruction", "SW1", "SW2", "PH1", "PH2"});
  table.add_row({"LOAD", "SMEM", fmt(b_sw1.smem_loads), fmt(b_sw2.smem_loads),
                 fmt(b_ph1.smem_loads), fmt(b_ph2.smem_loads)});
  table.add_row({"LOAD", "shfl", fmt(b_sw1.shuffle_total()), fmt(b_sw2.shuffle_total()),
                 fmt(b_ph1.shuffle_total()), fmt(b_ph2.shuffle_total())});
  table.add_row({"WRITE", "SMEM", fmt(b_sw1.smem_stores), fmt(b_sw2.smem_stores),
                 fmt(b_ph1.smem_stores), fmt(b_ph2.smem_stores)});
  table.add_row({"ROTATE/state", "reg", fmt(b_sw1.reg_moves), fmt(b_sw2.reg_moves),
                 fmt(b_ph1.reg_moves), fmt(b_ph2.reg_moves)});
  table.add_row({"SYNC", "bar.sync", fmt(b_sw1.barriers), fmt(b_sw2.barriers),
                 fmt(b_ph1.barriers), fmt(b_ph2.barriers)});
  table.print(std::cout);

  const double est_sw = wsim::model::estimated_reduction(sw1, sw2, dev.lat);
  const double est_ph = wsim::model::estimated_reduction(ph1, ph2, dev.lat);

  // Measured per-iteration latency reduction on K1200 (biggest batch,
  // compute only — the Table II conditions).
  const auto dataset = wsim::workload::generate_dataset(
      wsim::bench::standard_dataset_config());
  const auto sw_batch = wsim::workload::sw_biggest_batch(dataset);
  const auto ph_batch = wsim::workload::ph_biggest_batch(dataset);

  // "Measured" reductions use the paper's own method: effective latency
  // from the performance model (Eq. 7 inverted) under Table II conditions.
  double measured_sw = 0.0;
  {
    wsim::kernels::SwRunOptions opt;
    opt.mode = wsim::simt::ExecMode::kCachedByShape;
    const wsim::kernels::SwRunner runner1(CommMode::kSharedMemory);
    const wsim::kernels::SwRunner runner2(CommMode::kShuffle);
    const auto r1 = runner1.run_batch(dev, sw_batch, opt);
    const auto r2 = runner2.run_batch(dev, sw_batch, opt);
    const double lat1 = wsim::model::effective_latency_cycles(
        dev, r1.run.launch.occupancy, r1.run.gcups_kernel() * 1e9, sw_batch.size(),
        runner1.kernel().threads_per_block);
    const double lat2 = wsim::model::effective_latency_cycles(
        dev, r2.run.launch.occupancy, r2.run.gcups_kernel() * 1e9, sw_batch.size(),
        runner2.kernel().threads_per_block);
    measured_sw = lat1 - lat2;
  }
  double measured_ph = 0.0;
  {
    wsim::kernels::PhRunOptions opt;
    opt.mode = wsim::simt::ExecMode::kCachedByShape;
    const wsim::kernels::PhRunner runner1(CommMode::kSharedMemory);
    const wsim::kernels::PhRunner runner2(CommMode::kShuffle);
    const auto r1 = runner1.run_batch(dev, ph_batch, opt);
    const auto r2 = runner2.run_batch(dev, ph_batch, opt);
    const int threads1 =
        runner1.kernel_for_read_len(ph_batch.front().read.size()).threads_per_block;
    const int threads2 =
        runner2.kernel_for_read_len(ph_batch.front().read.size()).threads_per_block;
    const double lat1 = wsim::model::effective_latency_cycles(
        dev, r1.run.launch.occupancy, r1.run.gcups_kernel() * 1e9, ph_batch.size(),
        threads1);
    const double lat2 = wsim::model::effective_latency_cycles(
        dev, r2.run.launch.occupancy, r2.run.gcups_kernel() * 1e9, ph_batch.size(),
        threads2);
    measured_ph = lat1 - lat2;
  }

  std::cout << '\n';
  wsim::util::Table summary(
      {"algorithm", "estimated reduction (cy)", "measured reduction (cy)",
       "relative error"});
  summary.add_row({"SW", format_fixed(est_sw, 0), format_fixed(measured_sw, 0),
                   format_percent(wsim::util::relative_error(est_sw, measured_sw))});
  summary.add_row({"PairHMM", format_fixed(est_ph, 0), format_fixed(measured_ph, 0),
                   format_percent(wsim::util::relative_error(est_ph, measured_ph))});
  summary.print(std::cout);

  std::cout <<
      "\nPaper Table III reference: SW estimate 161 cy vs 189 cy measured\n"
      "(-14.8% error); PairHMM estimate 1370 cy (+19.2% error). The static\n"
      "estimate ignores arithmetic overlap, so single-digit-to-~20% errors\n"
      "are the expected regime.\n";
  return 0;
}
