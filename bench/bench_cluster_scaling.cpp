// Cluster elasticity sweep: replays generated traffic traces through
// wsim::cluster::run_cluster, crossing tenant count x trace shape x
// autoscaler on/off, and records tail latency, goodput, SLO violation
// rate, device-hours, and cost per million requests. The headline result:
// on a bursty trace the queue-depth autoscaler holds p99 within the SLO
// while billing fewer device-hours than a fixed fleet provisioned for the
// peak (the fixed-max baseline) — elasticity buys the peak's tail latency
// at closer to the mean's cost.
//
// Besides the ASCII table (and the WSIM_CSV_DIR mirror), the sweep is
// written to BENCH_cluster.json in the working directory. `--smoke`
// shrinks the grid and trace length for CI and still enforces the
// headline contract.

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "wsim/cluster/cluster.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/trace.hpp"

namespace {

namespace cluster = wsim::cluster;
namespace workload = wsim::workload;
using wsim::util::format_fixed;
using wsim::util::format_percent;

constexpr double kSloSeconds = 20e-3;
constexpr double kRateHz = 20000.0;
constexpr std::size_t kMaxWorkers = 4;

struct SweepPoint {
  std::size_t tenants = 0;
  std::string shape;
  bool autoscaled = false;
  std::size_t completed = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double goodput_rps = 0.0;
  double slo_violation_rate = 0.0;
  double device_hours = 0.0;
  std::size_t peak_workers = 0;
  std::size_t joins = 0;
  std::size_t drains = 0;
  double cost_per_million = 0.0;
};

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  std::ostringstream os;
  os << value;
  return os.str();
}

void write_json(const std::string& path, const std::vector<SweepPoint>& points) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  out << "{\n  \"bench\": \"cluster_scaling\",\n  \"slo_ms\": "
      << json_number(kSloSeconds * 1e3) << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    out << "    {\"tenants\": " << p.tenants << ", \"shape\": \"" << p.shape
        << "\", \"autoscaler\": " << (p.autoscaled ? "true" : "false")
        << ", \"completed\": " << p.completed
        << ", \"latency_p50_ms\": " << json_number(p.p50_ms)
        << ", \"latency_p95_ms\": " << json_number(p.p95_ms)
        << ", \"latency_p99_ms\": " << json_number(p.p99_ms)
        << ", \"goodput_rps\": " << json_number(p.goodput_rps)
        << ", \"slo_violation_rate\": " << json_number(p.slo_violation_rate)
        << ", \"device_hours\": " << json_number(p.device_hours)
        << ", \"peak_workers\": " << p.peak_workers
        << ", \"joins\": " << p.joins << ", \"drains\": " << p.drains
        << ", \"cost_per_million_requests\": "
        << json_number(p.cost_per_million) << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "(json written to " << path << ")\n";
}

workload::Trace make_trace(std::size_t tenants, workload::TraceShape shape,
                           double duration) {
  workload::TraceConfig cfg;
  cfg.seed = 42;
  cfg.duration_seconds = duration;
  cfg.shape = shape;
  for (std::size_t i = 0; i < tenants; ++i) {
    workload::TenantTraffic traffic;
    traffic.name = "tenant-" + std::to_string(i);
    traffic.rate_hz = kRateHz / static_cast<double>(tenants);
    cfg.tenants.push_back(std::move(traffic));
  }
  return workload::generate_trace(cfg);
}

SweepPoint run_point(const workload::Dataset& dataset,
                     const workload::Trace& trace, bool autoscaled) {
  cluster::ClusterConfig cfg;
  cfg.worker.device = wsim::simt::make_k1200();
  cfg.autoscaler.enabled = autoscaled;
  cfg.autoscaler.min_workers = 1;
  cfg.autoscaler.max_workers = kMaxWorkers;
  // The fixed baseline provisions for the peak: max workers all run long.
  cfg.initial_workers = autoscaled ? 1 : kMaxWorkers;
  for (const std::string& name : trace.tenants) {
    wsim::serve::TenantConfig tenant;
    tenant.name = name;
    tenant.slo_seconds = kSloSeconds;
    cfg.tenants.push_back(std::move(tenant));
  }

  const cluster::ClusterReport report =
      cluster::run_cluster(dataset, trace, cfg);
  SweepPoint point;
  point.tenants = trace.tenants.size();
  point.autoscaled = autoscaled;
  point.completed = report.service.completed();
  point.p50_ms = report.service.latency.p50 * 1e3;
  point.p95_ms = report.service.latency.p95 * 1e3;
  point.p99_ms = report.service.latency.p99 * 1e3;
  point.goodput_rps = report.goodput_rps;
  point.slo_violation_rate = report.slo_violation_rate;
  point.device_hours = report.device_hours;
  point.peak_workers = report.peak_workers;
  point.joins = report.fleet.joins;
  point.drains = report.fleet.drains;
  point.cost_per_million = report.cost_per_million;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  wsim::bench::banner("cluster extension",
                      "autoscaled multi-tenant serving vs fixed fleets");

  auto gen = wsim::bench::standard_dataset_config();
  gen.regions = smoke ? 2 : 8;
  const auto dataset = wsim::workload::generate_dataset(gen);
  const double duration = smoke ? 0.2 : 0.5;

  const std::vector<std::size_t> tenant_counts =
      smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{1, 3};
  const std::vector<workload::TraceShape> shapes =
      smoke ? std::vector<workload::TraceShape>{workload::TraceShape::kBursty}
            : std::vector<workload::TraceShape>{workload::TraceShape::kSteady,
                                                workload::TraceShape::kDiurnal,
                                                workload::TraceShape::kBursty};

  std::cout << "K1200 scale unit x [1.." << kMaxWorkers << "], "
            << format_fixed(kRateHz, 0) << " req/s aggregate, SLO "
            << format_fixed(kSloSeconds * 1e3, 0) << " ms, "
            << format_fixed(duration * 1e3, 0) << " ms traces\n\n";

  std::vector<SweepPoint> points;
  wsim::util::Table table({"tenants", "shape", "autoscaler", "p99 (ms)",
                           "goodput (req/s)", "SLO viol.", "device-s",
                           "peak", "joins/drains"});
  // The bursty x autoscaled point and its fixed-max twin back the
  // headline contract below.
  double bursty_auto_p99 = 0.0, bursty_auto_hours = 0.0;
  double bursty_auto_viol = 1.0, bursty_fixed_hours = 0.0;
  for (const std::size_t tenants : tenant_counts) {
    for (const workload::TraceShape shape : shapes) {
      const workload::Trace trace = make_trace(tenants, shape, duration);
      for (const bool autoscaled : {false, true}) {
        SweepPoint point = run_point(dataset, trace, autoscaled);
        point.shape = std::string(workload::to_string(shape));
        table.add_row({std::to_string(point.tenants), point.shape,
                       autoscaled ? "on" : "off (max)",
                       format_fixed(point.p99_ms, 3),
                       format_fixed(point.goodput_rps, 0),
                       format_percent(point.slo_violation_rate),
                       format_fixed(point.device_hours * 3600.0, 3),
                       std::to_string(point.peak_workers),
                       std::to_string(point.joins) + "/" +
                           std::to_string(point.drains)});
        if (shape == workload::TraceShape::kBursty &&
            tenants == tenant_counts.back()) {
          if (autoscaled) {
            bursty_auto_p99 = point.p99_ms;
            bursty_auto_hours = point.device_hours;
            bursty_auto_viol = point.slo_violation_rate;
          } else {
            bursty_fixed_hours = point.device_hours;
          }
        }
        points.push_back(std::move(point));
      }
    }
  }
  table.print(std::cout);

  wsim::bench::maybe_write_csv("cluster_scaling", table);
  write_json("BENCH_cluster.json", points);

  std::cout <<
      "\nExpected shape:\n"
      "  * the fixed-max fleet buys the best tail latency at full price:\n"
      "    max workers bill for the whole run even in the valleys;\n"
      "  * the autoscaler tracks the load curve — joins on the bursts,\n"
      "    drains in the valleys — holding p99 within the SLO on the\n"
      "    bursty trace for fewer device-hours;\n"
      "  * steady traces give the autoscaler nothing to exploit, so the\n"
      "    two columns converge there.\n";

  // Headline contract, enforced in CI via --smoke: elasticity must hold
  // the SLO on the bursty trace and undercut peak provisioning.
  if (!(bursty_auto_p99 > 0.0) || bursty_auto_p99 > kSloSeconds * 1e3) {
    std::cerr << "FAIL: autoscaled bursty p99 " << bursty_auto_p99
              << " ms exceeds the " << kSloSeconds * 1e3 << " ms SLO\n";
    return 1;
  }
  if (!(bursty_auto_hours < bursty_fixed_hours)) {
    std::cerr << "FAIL: autoscaled bursty run billed " << bursty_auto_hours
              << " device-hours, not less than the fixed-max fleet's "
              << bursty_fixed_hours << "\n";
    return 1;
  }
  std::cout << "\nOK: autoscaler held bursty p99 at "
            << format_fixed(bursty_auto_p99, 3) << " ms ("
            << format_percent(bursty_auto_viol) << " SLO violations) with "
            << format_fixed(bursty_auto_hours / bursty_fixed_hours * 100.0, 1)
            << "% of the fixed-max fleet's device-hours\n";
  return 0;
}
