// Regenerates Figure 3: microbenchmark-measured latencies of the four
// shuffle variants, shared-memory access, and __syncthreads on K40
// (Kepler), K1200 and Titan X (Maxwell), using the paper's
// linear-regression methodology (Listing 1 / Eqs. 1-4).

#include <iostream>

#include "bench_common.hpp"
#include "wsim/micro/microbench.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/util/table.hpp"

int main() {
  using wsim::util::format_fixed;
  wsim::bench::banner("Figure 3", "instruction-latency microbenchmarks");

  wsim::util::Table table(
      {"device", "arch", "shfl", "shfl_up", "shfl_down", "shfl_xor",
       "sharedmem", "sync"});
  for (const auto& dev : wsim::simt::all_devices()) {
    const auto r = wsim::micro::measure_latencies(dev);
    table.add_row({dev.name, std::string(wsim::simt::to_string(dev.arch)),
                   format_fixed(r.shfl.latency, 1), format_fixed(r.shfl_up.latency, 1),
                   format_fixed(r.shfl_down.latency, 1),
                   format_fixed(r.shfl_xor.latency, 1),
                   format_fixed(r.sharedmem.latency, 1),
                   format_fixed(r.sync.latency, 1)});
  }
  table.print(std::cout);
  wsim::bench::maybe_write_csv("fig3_latencies", table);

  std::cout << "\nExpected shape (paper Section II-B):\n"
               "  * register access (1 cy) < every shuffle < shared memory;\n"
               "  * shfl_xor is the slowest variant on Maxwell but the fastest\n"
               "    on Kepler (the underlying mechanism changed across\n"
               "    generations);\n"
               "  * both Maxwell devices agree; Kepler is uniformly slower.\n"
               "\nRegression quality and raw slopes (K1200):\n";
  const auto k1200 = wsim::simt::make_k1200();
  const auto r = wsim::micro::measure_latencies(k1200);
  wsim::util::Table fits({"kernel", "slope (cy/iter)", "intercept", "r^2"});
  const auto row = [&fits](const char* name, const wsim::micro::LatencyEstimate& est) {
    fits.add_row({name, format_fixed(est.slope, 2), format_fixed(est.intercept, 1),
                  format_fixed(est.r_squared, 6)});
  };
  row("reg", r.reg);
  row("shfl", r.shfl);
  row("shfl_up", r.shfl_up);
  row("shfl_down", r.shfl_down);
  row("shfl_xor", r.shfl_xor);
  row("sharedmem", r.sharedmem);
  row("sharedmem_sync", r.sync);
  fits.print(std::cout);
  return 0;
}
