// Ablation: dynamic energy per cell update for the four kernels. The
// paper's introduction frames data movement as the bottleneck of both
// performance AND energy efficiency; this bench quantifies the energy
// side of the shuffle optimization with a standard 28 nm energy
// hierarchy (ALU < shuffle < shared memory < DRAM).

#include <iostream>

#include "bench_common.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/energy.hpp"
#include "wsim/util/rng.hpp"
#include "wsim/util/table.hpp"

namespace {

using wsim::kernels::CommMode;
using wsim::util::format_fixed;

std::string random_dna(wsim::util::Rng& rng, int len) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = "ACGT"[rng.uniform_int(0, 3)];
  }
  return s;
}

}  // namespace

int main() {
  wsim::bench::banner("Ablation", "dynamic energy per cell (K1200)");
  const auto dev = wsim::simt::make_k1200();
  const wsim::simt::EnergyTable table;
  wsim::util::Rng rng(11);

  const std::string target = random_dna(rng, 256);
  const wsim::workload::SwBatch sw_batch = {{target.substr(8, 192), target}};
  wsim::align::PairHmmTask ph_task;
  ph_task.hap = random_dna(rng, 200);
  ph_task.read = ph_task.hap.substr(4, 120);
  ph_task.base_quals.assign(120, 30);
  ph_task.ins_quals.assign(120, 45);
  ph_task.del_quals.assign(120, 45);
  const wsim::workload::PhBatch ph_batch = {ph_task};

  wsim::util::Table out({"kernel", "dynamic pJ/cell", "smem tx/block",
                         "gmem tx/block", "shuffles/block"});
  const auto add_row = [&](const char* name, const wsim::simt::BlockResult& rep,
                           std::size_t cells) {
    const auto energy = wsim::simt::block_energy(rep, table);
    out.add_row({name,
                 format_fixed(energy.dynamic_pj / static_cast<double>(cells), 1),
                 std::to_string(rep.smem_transactions),
                 std::to_string(rep.gmem_transactions),
                 std::to_string(rep.shuffle_count())});
  };

  for (const auto mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
    const wsim::kernels::SwRunner runner(mode);
    const auto r = runner.run_batch(dev, sw_batch);
    add_row(mode == CommMode::kSharedMemory ? "SW1" : "SW2",
            r.run.launch.representative, r.run.cells);
  }
  for (const auto mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
    const wsim::kernels::PhRunner runner(mode);
    const auto r = runner.run_batch(dev, ph_batch);
    add_row(mode == CommMode::kSharedMemory ? "PH1" : "PH2",
            r.run.launch.representative, r.run.cells);
  }
  out.print(std::cout);

  std::cout << "\nShuffle eliminates the shared-memory transactions whose\n"
               "energy cost sits an order of magnitude above register\n"
               "traffic — the energy counterpart of the latency argument.\n";
  return 0;
}
