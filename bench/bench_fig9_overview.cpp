// Regenerates Figure 9: average and peak GCUPS of the four kernels
// (SW1/SW2 shared-memory vs shuffle Smith-Waterman, PH1/PH2 PairHMM) on
// K1200 and Titan X under the original per-region batching, including
// host-device transfer time — the paper's Fig. 9 convention.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/util/stats.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/batching.hpp"

namespace {

using wsim::kernels::CommMode;
using wsim::util::format_fixed;

struct Series {
  double avg = 0.0;
  double peak = 0.0;
};

Series summarize(const std::vector<double>& gcups) {
  const auto s = wsim::util::summarize(gcups);
  return {s.mean, s.max};
}

Series run_sw(const wsim::simt::DeviceSpec& dev, CommMode mode,
              const std::vector<wsim::workload::SwBatch>& batches) {
  const wsim::kernels::SwRunner runner(mode);
  wsim::simt::BlockCostCache cache;
  wsim::kernels::SwRunOptions opt;
  opt.mode = wsim::simt::ExecMode::kCachedByShape;
  opt.cost_cache = &cache;
  std::vector<double> gcups;
  gcups.reserve(batches.size());
  for (const auto& batch : batches) {
    gcups.push_back(runner.run_batch(dev, batch, opt).run.gcups_total());
  }
  return summarize(gcups);
}

Series run_ph(const wsim::simt::DeviceSpec& dev, CommMode mode,
              const std::vector<wsim::workload::PhBatch>& batches) {
  const wsim::kernels::PhRunner runner(mode);
  wsim::kernels::PhCostCaches caches;
  wsim::kernels::PhRunOptions opt;
  opt.mode = wsim::simt::ExecMode::kCachedByShape;
  opt.cost_caches = &caches;
  std::vector<double> gcups;
  gcups.reserve(batches.size());
  for (const auto& batch : batches) {
    gcups.push_back(runner.run_batch(dev, batch, opt).run.gcups_total());
  }
  return summarize(gcups);
}

}  // namespace

int main() {
  wsim::bench::banner("Figure 9", "kernel performance overview (region batching)");

  const auto dataset = wsim::workload::generate_dataset(
      wsim::bench::standard_dataset_config());
  const auto stats = wsim::workload::compute_stats(dataset);
  std::cout << "Dataset: " << stats.regions << " regions, avg "
            << format_fixed(stats.avg_sw_tasks_per_region, 1) << " SW and "
            << format_fixed(stats.avg_ph_tasks_per_region, 1)
            << " PairHMM tasks per batch (paper: 4 and 189).\n"
            << "GCUPS include host-device transfer and launch overheads.\n\n";

  const auto sw_batches = wsim::workload::sw_region_batches(dataset);
  const auto ph_batches = wsim::workload::ph_region_batches(dataset);

  wsim::util::Table table({"kernel", "device", "avg GCUPS", "peak GCUPS"});
  for (const auto& dev : wsim::bench::evaluation_devices()) {
    for (const auto mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
      const Series s = run_sw(dev, mode, sw_batches);
      table.add_row({mode == CommMode::kSharedMemory ? "SW1" : "SW2", dev.name,
                     format_fixed(s.avg, 2), format_fixed(s.peak, 2)});
    }
  }
  for (const auto& dev : wsim::bench::evaluation_devices()) {
    for (const auto mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
      const Series s = run_ph(dev, mode, ph_batches);
      table.add_row({mode == CommMode::kSharedMemory ? "PH1" : "PH2", dev.name,
                     format_fixed(s.avg, 2), format_fixed(s.peak, 2)});
    }
  }
  table.print(std::cout);
  wsim::bench::maybe_write_csv("fig9_overview", table);

  std::cout <<
      "\nExpected shape (paper Fig. 9):\n"
      "  * shuffle designs beat shared-memory designs for both algorithms\n"
      "    on both devices;\n"
      "  * SW numbers are low because the original batches average only 4\n"
      "    tasks, far too few to occupy the device (see Fig. 10 re-batching);\n"
      "  * PairHMM benefits from its ~189-task batches; paper peaks at\n"
      "    34.8 GCUPS (PH2, Titan X) with a 6.0 GCUPS average.\n";
  return 0;
}
