// Fleet scaling and placement-policy comparison: dispatches the formed
// batches of a length-skewed dataset through wsim::fleet::FleetExecutor,
// sweeping fleet composition x placement policy, and records makespan,
// effective GCUPS, and per-device utilization skew. The headline result:
// on a heterogeneous K40 + K1200 + Titan X fleet the model-guided policy
// (predicted finish time from the paper's Eq. 7/8 performance model, per
// device and per kernel variant) beats round-robin, which leaves the slow
// devices busy long after the fast ones drained.
//
// A final fault-injection point re-runs the heterogeneous fleet under a
// deterministic FaultPlan (transient launch failures + slowdowns) and
// records retry/requeue accounting — same work completes, time moves.
//
// Besides the ASCII table (and the WSIM_CSV_DIR mirror), the sweep is
// written to BENCH_fleet.json in the working directory. `--smoke` shrinks
// the dataset and fleet list for CI.

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "wsim/fleet/fleet.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/batching.hpp"

namespace {

namespace fleet = wsim::fleet;
using wsim::util::format_fixed;

struct FleetSpec {
  std::string label;
  std::vector<wsim::simt::DeviceSpec> devices;
};

struct SweepPoint {
  std::string fleet;
  std::string policy;
  std::size_t devices = 0;
  std::size_t batches = 0;
  std::size_t cells = 0;
  double makespan_s = 0.0;
  double gcups = 0.0;  ///< cells / makespan
  double busy_skew = 0.0;
  std::size_t retries = 0;
  std::size_t requeues = 0;
  std::size_t launch_failures = 0;  ///< injected transient failures observed
  std::size_t slowdowns = 0;        ///< batches run under a *visible* slowdown
  std::vector<std::pair<std::string, double>> utilization;  ///< name, fraction
};

std::string json_number(double value) {
  // JSON has no NaN/Inf; the sweep never produces them, but guard anyway.
  if (!std::isfinite(value)) {
    return "0";
  }
  std::ostringstream os;
  os << value;
  return os.str();
}

void write_json(const std::string& path, const std::vector<SweepPoint>& points) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  out << "{\n  \"bench\": \"fleet_scaling\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    out << "    {\"fleet\": \"" << p.fleet << "\", \"policy\": \"" << p.policy
        << "\", \"devices\": " << p.devices
        << ", \"batches\": " << p.batches << ", \"cells\": " << p.cells
        << ", \"makespan_s\": " << json_number(p.makespan_s)
        << ", \"gcups\": " << json_number(p.gcups)
        << ", \"busy_skew\": " << json_number(p.busy_skew)
        << ", \"retries\": " << p.retries << ", \"requeues\": " << p.requeues
        << ", \"launch_failures\": " << p.launch_failures
        << ", \"slowdowns\": " << p.slowdowns << ", \"utilization\": [";
    for (std::size_t d = 0; d < p.utilization.size(); ++d) {
      out << "{\"device\": \"" << p.utilization[d].first
          << "\", \"fraction\": " << json_number(p.utilization[d].second) << "}"
          << (d + 1 < p.utilization.size() ? ", " : "");
    }
    out << "]}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "(json written to " << path << ")\n";
}

/// Runs every formed batch through a fresh fleet and reports the sweep
/// point. All work is available at time zero (an offline scheduling
/// problem), so the makespan difference is purely the placement policy.
SweepPoint run_point(const FleetSpec& spec, fleet::PlacementPolicy policy,
                     const std::vector<wsim::workload::SwBatch>& sw_batches,
                     const std::vector<wsim::workload::PhBatch>& ph_batches,
                     const fleet::FaultPlan& faults) {
  fleet::FleetConfig cfg;
  for (const auto& device : spec.devices) {
    fleet::WorkerConfig wc;
    wc.device = device;
    // Unbounded queues: the policy, not queue backpressure, decides
    // placement for the whole offline batch list.
    wc.max_pending_batches = static_cast<std::size_t>(1) << 20;
    cfg.workers.push_back(std::move(wc));
  }
  cfg.policy = policy;
  cfg.faults = faults;
  cfg.engine = &wsim::bench::bench_engine();
  fleet::FleetExecutor executor(std::move(cfg));

  fleet::ExecOptions opt;
  opt.collect_outputs = false;  // timing-only: shape-cached execution
  for (const auto& batch : sw_batches) {
    (void)executor.execute_sw(batch, 0.0, opt);
  }
  for (const auto& batch : ph_batches) {
    (void)executor.execute_ph(batch, 0.0, opt);
  }

  const auto stats = executor.stats();
  SweepPoint point;
  point.fleet = spec.label;
  point.policy = std::string(fleet::to_string(policy));
  point.devices = spec.devices.size();
  point.batches = stats.dispatches;
  point.cells = stats.total_cells();
  point.makespan_s = executor.all_free_at();
  point.gcups = point.makespan_s > 0.0
                    ? static_cast<double>(point.cells) / point.makespan_s / 1e9
                    : 0.0;
  point.busy_skew = stats.busy_skew();
  point.retries = stats.retries;
  point.requeues = stats.requeues;
  for (const auto& device : stats.devices) {
    point.launch_failures += device.launch_failures;
    point.slowdowns += device.slowdowns;
  }
  for (std::size_t d = 0; d < stats.devices.size(); ++d) {
    point.utilization.emplace_back(stats.devices[d].name,
                                   stats.utilization(d, point.makespan_s));
  }
  return point;
}

std::string utilization_string(const SweepPoint& point) {
  std::string out;
  for (const auto& [name, fraction] : point.utilization) {
    if (!out.empty()) {
      out += ' ';
    }
    out += format_fixed(fraction * 100.0, 0) + "%";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  wsim::bench::banner("fleet extension",
                      "placement policies on heterogeneous device fleets");

  // Length-skewed dataset: wide SW haplotype/window ranges so batch costs
  // vary strongly — the regime where speed-blind placement hurts most.
  auto gen = wsim::bench::standard_dataset_config();
  gen.regions = smoke ? 4 : 24;
  gen.sw_query_len_min = 32;
  gen.sw_query_len_max = 512;
  gen.sw_target_len_min = 64;
  gen.sw_target_len_max = 640;
  gen.hap_len_min = 32;
  gen.hap_len_max = 320;
  const auto dataset = wsim::workload::generate_dataset(gen);
  const std::size_t batch_size = smoke ? 64 : 96;
  const auto sw_batches = wsim::workload::sw_rebatch(dataset, batch_size);
  const auto ph_batches = wsim::workload::ph_rebatch(dataset, batch_size);
  std::cout << "dataset: " << sw_batches.size() << " SW + " << ph_batches.size()
            << " PairHMM batches (rebatch " << batch_size << ", skewed lengths)\n\n";

  const auto k40 = wsim::simt::make_k40();
  const auto k1200 = wsim::simt::make_k1200();
  const auto titan = wsim::simt::make_titan_x();
  std::vector<FleetSpec> fleets;
  fleets.push_back({"K40+K1200+TitanX", {k40, k1200, titan}});
  if (!smoke) {
    fleets.push_back({"1x TitanX", {titan}});
    fleets.push_back({"3x K1200", {k1200, k1200, k1200}});
    fleets.push_back(
        {"2x(K40+K1200+TitanX)", {k40, k1200, titan, k40, k1200, titan}});
  }
  const std::vector<fleet::PlacementPolicy> policies = {
      fleet::PlacementPolicy::kRoundRobin,
      fleet::PlacementPolicy::kLeastOutstandingCells,
      fleet::PlacementPolicy::kModelGuided,
  };

  std::vector<SweepPoint> points;
  std::map<std::string, double> rr_makespan;
  wsim::util::Table table({"fleet", "policy", "makespan (ms)", "GCUPS",
                           "busy skew", "per-device util", "vs rr"});
  for (const auto& spec : fleets) {
    for (const auto policy : policies) {
      const auto point =
          run_point(spec, policy, sw_batches, ph_batches, fleet::FaultPlan{});
      if (policy == fleet::PlacementPolicy::kRoundRobin) {
        rr_makespan[spec.label] = point.makespan_s;
      }
      const double rr = rr_makespan[spec.label];
      const double speedup = point.makespan_s > 0.0 ? rr / point.makespan_s : 0.0;
      table.add_row({spec.label, point.policy,
                     format_fixed(point.makespan_s * 1e3, 3),
                     format_fixed(point.gcups, 2),
                     format_fixed(point.busy_skew, 3), utilization_string(point),
                     format_fixed(speedup, 2) + "x"});
      points.push_back(point);
    }
  }
  table.print(std::cout);

  // Fault-injection point: deterministic transient failures + slowdowns on
  // the heterogeneous fleet; the work still completes, retries/requeues
  // are accounted, and the makespan absorbs the injected time.
  fleet::FaultPlan faults;
  faults.seed = 1;
  faults.launch_failure_prob = 0.05;
  faults.slowdown_prob = 0.05;
  faults.slowdown_factor = 4.0;
  auto faulty = run_point(fleets.front(), fleet::PlacementPolicy::kModelGuided,
                          sw_batches, ph_batches, faults);
  faulty.policy = "model+faults";
  std::cout << "\nfault injection (" << fleets.front().label
            << ", model policy, p_fail=0.05, p_slow=0.05 x4):\n"
            << "  makespan " << format_fixed(faulty.makespan_s * 1e3, 3)
            << " ms, retries " << faulty.retries << ", requeues "
            << faulty.requeues << ", batches " << faulty.batches << "\n";
  points.push_back(faulty);

  // Silent-degradation point: one device runs at ~half speed with no
  // fault signal at all — no launch failures, no slowdown counter, no
  // health trip. The failure mode fleets actually hit (thermal throttle,
  // a flaky DIMM remapping) shows up only as a makespan/skew inflation
  // the placement model did not predict.
  fleet::FaultPlan degraded;
  degraded.degraded_device = 2;  // the Titan X — the fleet's fastest member
  degraded.degraded_factor = 2.0;
  auto silent = run_point(fleets.front(), fleet::PlacementPolicy::kModelGuided,
                          sw_batches, ph_batches, degraded);
  silent.policy = "model+degraded";
  const double clean_model = points[2].makespan_s;
  const std::size_t silent_signals = silent.retries + silent.requeues +
                                     silent.launch_failures + silent.slowdowns;
  std::cout << "\nsilent degradation (" << fleets.front().label
            << ", model policy, device 2 at 0.5x, no fault signal):\n"
            << "  makespan " << format_fixed(silent.makespan_s * 1e3, 3)
            << " ms (clean model " << format_fixed(clean_model * 1e3, 3)
            << " ms, +"
            << format_fixed((silent.makespan_s / clean_model - 1.0) * 100.0, 1)
            << "%), fault signals " << silent_signals
            << " (expected 0: degradation is invisible)\n";
  points.push_back(silent);

  wsim::bench::maybe_write_csv("fleet_scaling", table);
  write_json("BENCH_fleet.json", points);

  std::cout <<
      "\nExpected shape:\n"
      "  * on heterogeneous fleets, model-guided placement finishes sooner\n"
      "    than round-robin (vs rr > 1) because Eq. 7/8 predicted finish\n"
      "    times route proportionally more cells to the faster devices;\n"
      "  * round-robin shows high per-device utilization skew there — the\n"
      "    K40 stays busy long after the Titan X drained;\n"
      "  * on homogeneous fleets the three policies roughly tie.\n";

  // Smoke contract for CI: the heterogeneous headline must hold.
  const double rr = rr_makespan[fleets.front().label];
  const double model = points[2].makespan_s;  // third policy of first fleet
  if (!(model > 0.0) || model > rr) {
    std::cerr << "FAIL: model-guided (" << model << " s) does not beat "
              << "round-robin (" << rr << " s) on " << fleets.front().label
              << "\n";
    return 1;
  }
  // The silent point must cost time (the degraded device really is slower)
  // while tripping no fault accounting (it really is silent).
  if (!(silent.makespan_s > clean_model) || silent_signals != 0) {
    std::cerr << "FAIL: silent degradation expected a longer makespan with "
              << "zero fault counters (got " << silent.makespan_s << " s vs "
              << clean_model << " s, counters " << silent_signals << ")\n";
    return 1;
  }
  std::cout << "\nOK: model-guided beats round-robin on "
            << fleets.front().label << " (" << format_fixed(rr / model, 2)
            << "x)\n";
  return 0;
}
