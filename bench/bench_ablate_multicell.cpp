// Ablation: PH2's register blocking — cells per thread from 1 to 4. More
// cells per thread cut inter-thread communication (boundary-only
// shuffles) but inflate register usage, dragging occupancy down: the
// trade-off at the heart of the paper's Section V-D analysis.

#include <iostream>

#include "bench_common.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/model/breakdown.hpp"
#include "wsim/simt/occupancy.hpp"
#include "wsim/util/table.hpp"

int main() {
  using wsim::util::format_fixed;
  using wsim::util::format_percent;
  wsim::bench::banner("Ablation", "PH2 register blocking (cells per thread)");
  const auto dev = wsim::simt::make_k1200();

  wsim::util::Table table({"cells/thread", "rows covered", "#reg/thread",
                           "occupancy", "limiter", "shuffles/iter",
                           "state moves/iter"});
  for (int cells = 1; cells <= 4; ++cells) {
    const auto kernel = wsim::kernels::build_ph_shuffle_kernel(cells);
    const auto occ = wsim::simt::compute_occupancy(dev, kernel);
    const auto breakdown = wsim::model::hot_loop_breakdown(kernel);
    table.add_row({std::to_string(cells), std::to_string(32 * cells),
                   std::to_string(kernel.vreg_count), format_percent(occ.fraction),
                   std::string(wsim::simt::to_string(occ.limiter)),
                   std::to_string(breakdown.shuffle_total()),
                   std::to_string(breakdown.reg_moves)});
  }
  table.print(std::cout);

  std::cout << "\nShuffle count stays constant (communication only between\n"
               "boundary cells) while registers grow with the blocking\n"
               "factor — the root cause of PH2's occupancy drop from PH1's\n"
               "level (paper: 56.2% -> 29.1%), which the latency reduction\n"
               "must outweigh.\n";
  return 0;
}
