#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "wsim/simt/device.hpp"
#include "wsim/simt/engine.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/generator.hpp"

namespace wsim::bench {

/// The engine every benchmark shares: the process-wide one, so the thread
/// count honors WSIM_THREADS and the worker pool is built once. Pass as
/// SwRunOptions/PhRunOptions::engine or call launch() on it directly.
inline simt::ExecutionEngine& bench_engine() { return simt::shared_engine(); }

/// Prints the standard experiment banner so every bench's output states
/// which paper artifact it regenerates.
inline void banner(std::string_view experiment, std::string_view description) {
  std::cout << "==============================================================\n"
            << "Reproduction of " << experiment << " — " << description << "\n"
            << "Paper: Communication Optimization on GPU: A Case Study of\n"
            << "       Sequence Alignment Algorithms (IPDPS 2017)\n"
            << "==============================================================\n";
}

/// The two evaluation devices of the paper's Section V.
inline std::vector<simt::DeviceSpec> evaluation_devices() {
  return {simt::make_k1200(), simt::make_titan_x()};
}

/// The standard synthetic stand-in for the paper's HCC1954 dump
/// (DESIGN.md documents the substitution). 48 regions keeps every bench
/// within interactive runtimes while preserving the batch statistics.
inline workload::GeneratorConfig standard_dataset_config() {
  workload::GeneratorConfig cfg;
  cfg.seed = 42;
  cfg.regions = 48;
  return cfg;
}

/// When WSIM_CSV_DIR is set, mirrors a result table to
/// $WSIM_CSV_DIR/<name>.csv so sweeps can be replotted without parsing
/// the ASCII output.
inline void maybe_write_csv(const std::string& name, const util::Table& table) {
  const char* dir = std::getenv("WSIM_CSV_DIR");
  if (dir == nullptr || *dir == '\0') {
    return;
  }
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  table.write_csv(out);
  std::cout << "(csv written to " << path << ")\n";
}

}  // namespace wsim::bench
