// Ablation: Kepler vs Maxwell — the same four kernels run on K40, K1200
// and Titan X. Per-iteration latency scales with each architecture's
// instruction latencies (Fig. 3), and the shuffle advantage persists
// across generations even though the variant latencies invert.

#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/util/rng.hpp"
#include "wsim/util/table.hpp"

namespace {

using wsim::kernels::CommMode;
using wsim::util::format_fixed;

std::string random_dna(wsim::util::Rng& rng, int len) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = "ACGT"[rng.uniform_int(0, 3)];
  }
  return s;
}

}  // namespace

int main() {
  wsim::bench::banner("Ablation", "architecture sweep (Kepler vs Maxwell)");
  wsim::util::Rng rng(7);

  const std::string target = random_dna(rng, 256);
  std::string query = target.substr(16, 192);
  const wsim::workload::SwBatch sw_batch = {{query, target}};
  const auto sw_iters =
      wsim::kernels::sw_iterations(query.size(), target.size());

  wsim::align::PairHmmTask ph_task;
  ph_task.hap = random_dna(rng, 200);
  ph_task.read = ph_task.hap.substr(8, 120);
  ph_task.base_quals.assign(120, 30);
  ph_task.ins_quals.assign(120, 45);
  ph_task.del_quals.assign(120, 45);
  const wsim::workload::PhBatch ph_batch = {ph_task};
  const auto ph_iters = wsim::kernels::ph_iterations(120, 200);

  wsim::util::Table table({"kernel", "K40 (Kepler)", "K1200 (Maxwell)",
                           "Titan X (Maxwell)"});
  for (const auto mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
    const wsim::kernels::SwRunner runner(mode);
    std::vector<std::string> row = {mode == CommMode::kSharedMemory ? "SW1" : "SW2"};
    for (const auto& dev : wsim::simt::all_devices()) {
      const auto r = runner.run_batch(dev, sw_batch);
      row.push_back(format_fixed(r.run.cycles_per_iteration(sw_iters), 0) + " cy/iter");
    }
    table.add_row(row);
  }
  for (const auto mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
    const wsim::kernels::PhRunner runner(mode);
    std::vector<std::string> row = {mode == CommMode::kSharedMemory ? "PH1" : "PH2"};
    for (const auto& dev : wsim::simt::all_devices()) {
      const auto r = runner.run_batch(dev, ph_batch);
      row.push_back(format_fixed(r.run.cycles_per_iteration(ph_iters), 0) + " cy/iter");
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: Kepler iterations are uniformly slower\n"
               "(larger shuffle/smem/sync latencies); both Maxwell devices\n"
               "agree per iteration (same latency table — their throughput\n"
               "difference comes from SM count and clock, not the core).\n";
  return 0;
}
