// The 2-D parallelism regime map: task length x batch size, per device.
//
// For every (length, batch) grid point this bench *measures* the simulated
// batch time of the task-per-block (inter-task) SW kernel against both
// pipelined wavefront (intra-task) variants, overlays the Eq. 7/8 regime
// model's predictions, and records which decomposition actually won and
// whether the model-guided router agreed. The headline result mirrors the
// paper's communication analysis applied across decompositions: long reads
// at small batch sizes starve the inter-task grid (batch x 32 threads total)
// and flip to the wavefront subsystem, while short reads at large batch
// sizes keep task-per-block — the wavefront's per-wave launch overhead and
// pipeline fill/drain never pay off there.
//
// One extra point measures the host-synchronized kernel-per-diagonal
// anti-pattern (wf-naive) so the cost of skipping the shuffle pipeline is
// on record next to the variant that beats it.
//
// Output: an ASCII table (and WSIM_CSV_DIR mirror) plus BENCH_regime.json
// in the working directory. `--smoke` shrinks the grid to the two contract
// corners and *enforces* the crossover: the wavefront must win the
// long-read/small-batch point and must never win the short-read/large-batch
// point — a non-zero exit fails CI if either regime boundary drifts.

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "wsim/fleet/router.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/kernels/wavefront_kernels.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/batching.hpp"

namespace {

namespace fleet = wsim::fleet;
namespace kernels = wsim::kernels;
using wsim::util::format_fixed;

/// One grid point of the regime map. Model-only rows (lengths too large to
/// interpret in bench time) carry measured = false and zeroed timings.
struct RegimePoint {
  std::string device;
  std::size_t m = 0;      ///< query length (DP rows)
  std::size_t n = 0;      ///< target length (DP cols)
  std::size_t batch = 0;  ///< tasks per launch
  bool measured = false;
  double inter_s = 0.0;      ///< task-per-block, best CommMode for the device
  double wf_shared_s = 0.0;  ///< wavefront, shared-memory diagonal
  double wf_shuffle_s = 0.0; ///< wavefront, shuffle-pipelined diagonal
  double model_inter_s = 0.0;
  double model_intra_s = 0.0;
  double cal_inter_s = 0.0;  ///< prediction after calibrate_intra_model
  double cal_intra_s = 0.0;
  std::string winner;  ///< "inter" | "intra" from measurement (empty if not)
  std::string router;  ///< "inter" | "intra" from pick_parallelism
  std::string cal_router;  ///< routing under the calibrated model
  bool router_agrees = false;
  bool cal_router_agrees = false;
};

/// The measured wf-naive anti-pattern point (one per run).
struct NaivePoint {
  std::string device;
  std::size_t m = 0;
  std::size_t n = 0;
  double naive_s = 0.0;
  double wf_shuffle_s = 0.0;
  std::size_t naive_launches = 0;
  std::size_t wf_launches = 0;
};

/// Deterministic base generator (splitmix-style) so every grid point uses
/// the same sequences across runs and machines without a Dataset round trip.
std::string make_seq(std::size_t len, std::uint64_t seed) {
  static constexpr char kBases[4] = {'A', 'C', 'G', 'T'};
  std::string s(len, 'A');
  std::uint64_t x = seed;
  for (char& c : s) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    c = kBases[(z ^ (z >> 31)) & 3U];
  }
  return s;
}

wsim::workload::SwBatch make_batch(std::size_t m, std::size_t n,
                                   std::size_t batch) {
  wsim::workload::SwBatch tasks;
  tasks.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const std::uint64_t seed = (m * 1315423911ULL) ^ (n << 20U) ^ i;
    tasks.push_back({make_seq(m, seed), make_seq(n, seed ^ 0xabcdefULL)});
  }
  return tasks;
}

double run_inter(const wsim::simt::DeviceSpec& device,
                 const kernels::SwRunner& runner,
                 const wsim::workload::SwBatch& batch) {
  kernels::SwRunOptions opt;
  opt.mode = wsim::simt::ExecMode::kCachedByShape;
  opt.use_engine_cache = true;
  opt.engine = &wsim::bench::bench_engine();
  return runner.run_batch(device, batch, opt).run.launch.total_seconds();
}

kernels::WfSwBatchResult run_wf(const wsim::simt::DeviceSpec& device,
                                const kernels::WavefrontSwRunner& runner,
                                const wsim::workload::SwBatch& batch) {
  kernels::WfRunOptions opt;
  opt.mode = wsim::simt::ExecMode::kCachedByShape;
  opt.use_engine_cache = true;
  opt.engine = &wsim::bench::bench_engine();
  return runner.run_batch(device, batch, opt);
}

std::string json_number(double value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

/// The scales calibrate_intra_model fitted for one device.
struct FitRecord {
  std::string device;
  double inter_cell_scale = 1.0;
  double intra_cell_scale = 1.0;
  double wave_overhead_scale = 1.0;
  double inter_fill_scale = 1.0;
  double intra_fill_scale = 1.0;
};

void write_json(const std::string& path, const std::vector<RegimePoint>& points,
                const std::vector<NaivePoint>& naive,
                const std::vector<FitRecord>& fits) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  out << "{\n  \"bench\": \"regime_map\",\n  \"schema_version\": 2,\n"
      << "  \"calibration\": [\n";
  for (std::size_t i = 0; i < fits.size(); ++i) {
    const auto& f = fits[i];
    out << "    {\"device\": \"" << f.device
        << "\", \"inter_cell_scale\": " << json_number(f.inter_cell_scale)
        << ", \"intra_cell_scale\": " << json_number(f.intra_cell_scale)
        << ", \"wave_overhead_scale\": " << json_number(f.wave_overhead_scale)
        << ", \"inter_fill_scale\": " << json_number(f.inter_fill_scale)
        << ", \"intra_fill_scale\": " << json_number(f.intra_fill_scale)
        << "}" << (i + 1 < fits.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"naive_points\": [\n";
  for (std::size_t i = 0; i < naive.size(); ++i) {
    const auto& p = naive[i];
    out << "    {\"device\": \"" << p.device << "\", \"m\": " << p.m
        << ", \"n\": " << p.n
        << ", \"naive_s\": " << json_number(p.naive_s)
        << ", \"wf_shuffle_s\": " << json_number(p.wf_shuffle_s)
        << ", \"naive_launches\": " << p.naive_launches
        << ", \"wf_launches\": " << p.wf_launches << "}"
        << (i + 1 < naive.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    out << "    {\"device\": \"" << p.device << "\", \"m\": " << p.m
        << ", \"n\": " << p.n << ", \"batch\": " << p.batch
        << ", \"measured\": " << (p.measured ? "true" : "false")
        << ", \"inter_s\": " << json_number(p.inter_s)
        << ", \"wf_shared_s\": " << json_number(p.wf_shared_s)
        << ", \"wf_shuffle_s\": " << json_number(p.wf_shuffle_s)
        << ", \"model_inter_s\": " << json_number(p.model_inter_s)
        << ", \"model_intra_s\": " << json_number(p.model_intra_s)
        << ", \"cal_model_inter_s\": " << json_number(p.cal_inter_s)
        << ", \"cal_model_intra_s\": " << json_number(p.cal_intra_s)
        << ", \"winner\": \"" << p.winner << "\""
        << ", \"router\": \"" << p.router << "\""
        << ", \"cal_router\": \"" << p.cal_router << "\""
        << ", \"router_agrees\": " << (p.router_agrees ? "true" : "false")
        << ", \"cal_router_agrees\": "
        << (p.cal_router_agrees ? "true" : "false")
        << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "(json written to " << path << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  wsim::bench::banner(
      "regime map (wavefront extension)",
      "inter- vs intra-task SW across task length x batch size");

  std::vector<wsim::simt::DeviceSpec> devices;
  if (smoke) {
    devices.push_back(wsim::simt::make_k1200());
  } else {
    devices.push_back(wsim::simt::make_k40());
    devices.push_back(wsim::simt::make_k1200());
    devices.push_back(wsim::simt::make_titan_x());
  }
  // The measured grid. 8192 stays model-only: a single task-per-block DP of
  // 8192 x 9216 cells is one interpreted block — minutes of host time for a
  // point the model already covers.
  // 512 stays in the smoke grid: it is the corner the static model
  // over-charges (partial tiles pipeline better than whole-tile derating
  // predicts) and the calibrated-model contract below re-checks it.
  const std::vector<std::size_t> lengths =
      smoke ? std::vector<std::size_t>{256, 512, 2048}
            : std::vector<std::size_t>{256, 512, 1024, 2048, 4096};
  const std::vector<std::size_t> batches =
      smoke ? std::vector<std::size_t>{1, 256}
            : std::vector<std::size_t>{1, 4, 16, 64, 256};
  const std::size_t model_only_length = 8192;

  std::vector<RegimePoint> points;
  std::vector<NaivePoint> naive_points;
  std::vector<FitRecord> fits;

  for (const auto& device : devices) {
    const std::size_t device_points_begin = points.size();
    std::vector<fleet::RegimeSample> samples;
    const auto model = fleet::build_intra_task_model(device);
    const kernels::SwRunner inter_runner(model.sw_design);
    const kernels::WavefrontSwRunner wf_shared(kernels::WfVariant::kSharedMemory);
    const kernels::WavefrontSwRunner wf_shuffle(kernels::WfVariant::kShuffle);
    std::cout << device.name << ": inter=" << kernels::to_string(model.sw_design)
              << " wf=" << kernels::to_string(model.wf_variant)
              << " (sw latency " << format_fixed(model.sw_latency, 1)
              << " cyc/diag, wf latency " << format_fixed(model.wf_latency, 1)
              << ")\n";

    for (std::size_t m : lengths) {
      const std::size_t n = m + m / 8;  // targets ~12% longer, as in HC windows
      for (std::size_t batch : batches) {
        RegimePoint p;
        p.device = device.name;
        p.m = m;
        p.n = n;
        p.batch = batch;
        p.measured = true;
        const auto tasks = make_batch(m, n, batch);
        p.inter_s = run_inter(device, inter_runner, tasks);
        p.wf_shared_s = run_wf(device, wf_shared, tasks).run.launch.total_seconds();
        p.wf_shuffle_s =
            run_wf(device, wf_shuffle, tasks).run.launch.total_seconds();
        p.model_inter_s = fleet::predicted_inter_batch_seconds(device, model, m,
                                                               n, batch);
        p.model_intra_s = fleet::predicted_intra_batch_seconds(device, model, m,
                                                               n, batch);
        const double wf_best = std::min(p.wf_shared_s, p.wf_shuffle_s);
        p.winner = wf_best < p.inter_s ? "intra" : "inter";
        p.router = fleet::pick_parallelism(device, model, m, n, batch) ==
                           fleet::ParallelMode::kIntraTask
                       ? "intra"
                       : "inter";
        p.router_agrees = p.winner == p.router;
        samples.push_back({m, n, batch, p.inter_s, wf_best});
        points.push_back(std::move(p));
      }
    }

    // Model-only extension to contig scale: 8192 bp per batch size.
    for (std::size_t batch : batches) {
      RegimePoint p;
      p.device = device.name;
      p.m = model_only_length;
      p.n = model_only_length + model_only_length / 8;
      p.batch = batch;
      p.measured = false;
      p.model_inter_s = fleet::predicted_inter_batch_seconds(device, model, p.m,
                                                             p.n, batch);
      p.model_intra_s = fleet::predicted_intra_batch_seconds(device, model, p.m,
                                                             p.n, batch);
      p.router = fleet::pick_parallelism(device, model, p.m, p.n, batch) ==
                         fleet::ParallelMode::kIntraTask
                     ? "intra"
                     : "inter";
      p.router_agrees = true;  // nothing measured to disagree with
      points.push_back(std::move(p));
    }

    // Offline calibration: fit the model's per-regime scales to the
    // measured grid and re-evaluate every prediction and routing decision
    // under the calibrated model — the regime-map counterpart of the
    // fleet's online Calibrator.
    const auto calibrated = fleet::calibrate_intra_model(device, model, samples);
    fits.push_back({device.name, calibrated.inter_cell_scale,
                    calibrated.intra_cell_scale,
                    calibrated.wave_overhead_scale,
                    calibrated.inter_fill_scale,
                    calibrated.intra_fill_scale});
    std::cout << "  calibrated scales: inter-cell "
              << format_fixed(calibrated.inter_cell_scale, 3) << " (fill "
              << format_fixed(calibrated.inter_fill_scale, 3)
              << "), intra-cell "
              << format_fixed(calibrated.intra_cell_scale, 3) << " (fill "
              << format_fixed(calibrated.intra_fill_scale, 3)
              << "), wave-overhead "
              << format_fixed(calibrated.wave_overhead_scale, 3) << "\n";
    for (std::size_t i = device_points_begin; i < points.size(); ++i) {
      RegimePoint& p = points[i];
      p.cal_inter_s = fleet::predicted_inter_batch_seconds(device, calibrated,
                                                           p.m, p.n, p.batch);
      p.cal_intra_s = fleet::predicted_intra_batch_seconds(device, calibrated,
                                                           p.m, p.n, p.batch);
      p.cal_router = fleet::pick_parallelism(device, calibrated, p.m, p.n,
                                             p.batch) ==
                             fleet::ParallelMode::kIntraTask
                         ? "intra"
                         : "inter";
      p.cal_router_agrees = p.measured ? p.winner == p.cal_router : true;
    }

    // The anti-pattern on record: kernel-per-diagonal with all state in
    // global memory, one host sync per anti-diagonal.
    {
      const kernels::WavefrontSwRunner wf_naive(kernels::WfVariant::kHostSyncNaive);
      const auto tasks = make_batch(1024, 1152, 1);
      NaivePoint np;
      np.device = device.name;
      np.m = 1024;
      np.n = 1152;
      const auto naive = run_wf(device, wf_naive, tasks);
      const auto pipelined = run_wf(device, wf_shuffle, tasks);
      np.naive_s = naive.run.launch.total_seconds();
      np.wf_shuffle_s = pipelined.run.launch.total_seconds();
      np.naive_launches = naive.launches;
      np.wf_launches = pipelined.launches;
      naive_points.push_back(np);
    }
  }

  wsim::util::Table table({"device", "len", "batch", "inter (ms)",
                           "wf-shared (ms)", "wf-shuffle (ms)", "model inter",
                           "model intra", "cal intra", "winner", "router",
                           "agree", "cal agree"});
  for (const auto& p : points) {
    table.add_row({p.device, std::to_string(p.m), std::to_string(p.batch),
                   p.measured ? format_fixed(p.inter_s * 1e3, 3) : "-",
                   p.measured ? format_fixed(p.wf_shared_s * 1e3, 3) : "-",
                   p.measured ? format_fixed(p.wf_shuffle_s * 1e3, 3) : "-",
                   format_fixed(p.model_inter_s * 1e3, 3),
                   format_fixed(p.model_intra_s * 1e3, 3),
                   format_fixed(p.cal_intra_s * 1e3, 3),
                   p.measured ? p.winner : "-", p.router,
                   p.measured ? (p.router_agrees ? "yes" : "NO") : "-",
                   p.measured ? (p.cal_router_agrees ? "yes" : "NO") : "-"});
  }
  table.print(std::cout);
  wsim::bench::maybe_write_csv("regime_map", table);

  std::cout << "\nwf-naive anti-pattern (1024 x 1152, batch 1):\n";
  for (const auto& np : naive_points) {
    std::cout << "  " << np.device << ": naive "
              << format_fixed(np.naive_s * 1e3, 3) << " ms ("
              << np.naive_launches << " launches) vs wf-shuffle "
              << format_fixed(np.wf_shuffle_s * 1e3, 3) << " ms ("
              << np.wf_launches << " launches) — "
              << format_fixed(np.naive_s / np.wf_shuffle_s, 1) << "x slower\n";
  }

  write_json("BENCH_regime.json", points, naive_points, fits);

  // Contract checks — these gate CI in --smoke mode and also hold on the
  // full grid. The two corners come straight from the issue: the wavefront
  // must win long-read/small-batch and must never win short-read/large-batch.
  std::size_t failures = 0;
  const std::size_t long_len = lengths.back();
  const std::size_t short_len = lengths.front();
  const std::size_t small_batch = batches.front();
  const std::size_t large_batch = batches.back();
  for (const auto& p : points) {
    if (!p.measured) {
      continue;
    }
    const bool long_small = p.m == long_len && p.batch == small_batch;
    const bool short_large = p.m == short_len && p.batch == large_batch;
    if (long_small && p.winner != "intra") {
      std::cerr << "FAIL: wavefront lost the long-read/small-batch point on "
                << p.device << " (" << p.m << " x batch " << p.batch << ")\n";
      ++failures;
    }
    if (long_small && p.router != "intra") {
      std::cerr << "FAIL: router kept inter-task on the long-read/small-batch "
                << "point on " << p.device << "\n";
      ++failures;
    }
    if (short_large && p.winner != "inter") {
      std::cerr << "FAIL: wavefront won the short-read/large-batch point on "
                << p.device << " (" << p.m << " x batch " << p.batch << ")\n";
      ++failures;
    }
    if (short_large && p.router != "inter") {
      std::cerr << "FAIL: router flipped to intra-task on the short-read/"
                << "large-batch point on " << p.device << "\n";
      ++failures;
    }
  }
  for (const auto& np : naive_points) {
    if (np.naive_s <= np.wf_shuffle_s) {
      std::cerr << "FAIL: wf-naive was not slower than wf-shuffle on "
                << np.device << "\n";
      ++failures;
    }
  }
  // The calibrated model must not lose routing accuracy anywhere, and it
  // must fix the 512 bp / small-batch corner: there the raw model's
  // per-wave overhead and fill/drain terms over-charge the wavefront so
  // the router keeps task-per-block even though the measurement says the
  // wavefront wins. Routing rides the inter/intra *ratio*, which the
  // fitted scales correct even where a global 2-parameter fit cannot pin
  // every absolute time.
  std::size_t raw_agree = 0;
  std::size_t cal_agree = 0;
  for (const auto& p : points) {
    if (!p.measured) {
      continue;
    }
    raw_agree += p.router_agrees ? 1 : 0;
    cal_agree += p.cal_router_agrees ? 1 : 0;
    if (p.m == 512 && p.batch == small_batch && !p.cal_router_agrees) {
      std::cerr << "FAIL: calibrated router still mis-routes the 512 bp/"
                << "small-batch corner on " << p.device << " (measured "
                << p.winner << ", routed " << p.cal_router << ")\n";
      ++failures;
    }
  }
  if (cal_agree < raw_agree) {
    std::cerr << "FAIL: calibrated routing agreement dropped (" << cal_agree
              << " < " << raw_agree << " of the measured grid)\n";
    ++failures;
  }
  std::cout << "router agreement: raw " << raw_agree << ", calibrated "
            << cal_agree << " of "
            << std::count_if(points.begin(), points.end(),
                             [](const RegimePoint& p) { return p.measured; })
            << " measured points\n";
  if (failures > 0) {
    std::cerr << failures << " regime contract violation(s)\n";
    return 1;
  }
  std::cout << "regime contract holds: intra wins long-read/small-batch, "
            << "inter keeps short-read/large-batch, naive loses\n";
  return 0;
}
