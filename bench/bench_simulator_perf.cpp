// Host-side performance of the simulation infrastructure itself: the
// committed interpreter-throughput trajectory of the predecoded engines.
// Every case runs the SAME work through all three interpreters
// (InterpPath::kLegacy vs kFast vs kVector) and reports the speedups:
//
//   * micro — the paper's Listing-1 dependence-chain kernels executed as
//     single blocks via run_block. Kernels are built once and predecoded
//     once OUTSIDE the timed region, so the loop measures interpreter
//     throughput and nothing else (an earlier revision mixed kernel
//     build time into these loops, flattening every reported ratio).
//     Trials interleave across the engines so thermal / scheduler drift
//     cannot systematically favor whichever column ran last.
//   * e2e — SW and PairHMM batches through the real runners (packing,
//     launch, readback): the block-throughput number a sweep actually
//     experiences.
//   * compile — kernel build + predecode cost, timed separately so the
//     one-time cost the predecoded paths add is visible and bounded.
//
// Results land in BENCH_simperf.json in the working directory. `--smoke`
// shrinks repetitions for CI. Exit status is non-zero when any case runs
// the fast path slower than legacy, or the vector path slower than fast
// on any micro chain (the CI sanity floors — by construction neither
// should ever lose). Full runs additionally enforce the committed
// vector-vs-fast micro geomean target (>= 3x).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/micro/microbench.hpp"
#include "wsim/simt/decode.hpp"
#include "wsim/simt/interpreter.hpp"
#include "wsim/simt/memory.hpp"
#include "wsim/util/rng.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/batching.hpp"
#include "wsim/workload/generator.hpp"

namespace {

namespace simt = wsim::simt;
using wsim::util::format_fixed;

struct CaseResult {
  std::string section;  ///< "micro" or "e2e"
  std::string name;
  std::string device;
  double legacy_seconds = 0.0;
  double fast_seconds = 0.0;
  double vector_seconds = 0.0;
  double work = 0.0;  ///< instructions (micro) or blocks (e2e) per rep

  double speedup() const { return legacy_seconds / fast_seconds; }
  double vector_speedup() const { return legacy_seconds / vector_seconds; }
  double vector_vs_fast() const { return fast_seconds / vector_seconds; }
  double legacy_rate() const { return work / legacy_seconds; }
  double fast_rate() const { return work / fast_seconds; }
  double vector_rate() const { return work / vector_seconds; }
};

/// Wall time of `reps` calls to `body` (one trial).
template <typename F>
double time_once(int reps, F&& body) {
  const auto begin = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    body();
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - begin;
  return elapsed.count();
}

/// Best-of-`trials` wall time — the min damps scheduler noise, which
/// matters because the CI floor compares ratios.
template <typename F>
double time_best(int trials, int reps, F&& body) {
  double best = 1e300;
  for (int t = 0; t < trials; ++t) {
    best = std::min(best, time_once(reps, body));
  }
  return best;
}

/// Best-of-`trials` for the three engines with the trials interleaved
/// (legacy, fast, vector, legacy, ...), so slow machine-state drift hits
/// every column equally instead of whichever ran last.
template <typename L, typename F, typename V>
void time_interleaved(int trials, int reps, CaseResult& result, L&& legacy,
                      F&& fast, V&& vec) {
  result.legacy_seconds = 1e300;
  result.fast_seconds = 1e300;
  result.vector_seconds = 1e300;
  for (int t = 0; t < trials; ++t) {
    result.legacy_seconds = std::min(result.legacy_seconds, time_once(reps, legacy));
    result.fast_seconds = std::min(result.fast_seconds, time_once(reps, fast));
    result.vector_seconds = std::min(result.vector_seconds, time_once(reps, vec));
  }
}

/// One micro chain: a prebuilt arena and a prebuilt (and predecoded)
/// kernel, run_block timed under each interpreter.
CaseResult run_micro_case(wsim::micro::MicroKernel which,
                          const simt::DeviceSpec& device, int iterations,
                          int trials, int reps) {
  const simt::Kernel kernel = wsim::micro::build_micro_kernel(which);

  simt::GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  gmem.write_f32(buf, std::vector<float>(32, 1.0F));
  const auto table = gmem.alloc(32 * 4);
  std::vector<std::int32_t> chase(32);
  for (int i = 0; i < 32; ++i) {
    chase[static_cast<std::size_t>(i)] = ((i * 5 + 7) % 32) * 4;
  }
  gmem.write_i32(table, chase);
  const std::vector<std::uint64_t> args = {
      static_cast<std::uint64_t>(buf), static_cast<std::uint64_t>(iterations),
      static_cast<std::uint64_t>(table)};

  // Predecode outside the timed region: steady-state throughput is the
  // claim, and every production path hits the cache.
  const auto decoded = simt::shared_decoded_cache().get(kernel, device);

  simt::BlockRunOptions legacy_opt;
  legacy_opt.interp = simt::InterpPath::kLegacy;
  simt::BlockRunOptions fast_opt;
  fast_opt.interp = simt::InterpPath::kFast;
  fast_opt.decoded = decoded.get();
  simt::BlockRunOptions vector_opt;
  vector_opt.interp = simt::InterpPath::kVector;
  vector_opt.decoded = decoded.get();

  const simt::BlockResult probe = run_block(kernel, device, gmem, args, legacy_opt);
  run_block(kernel, device, gmem, args, fast_opt);    // warm-up
  run_block(kernel, device, gmem, args, vector_opt);  // warm-up

  CaseResult result;
  result.section = "micro";
  result.name = std::string(wsim::micro::to_string(which));
  result.device = device.name;
  result.work = static_cast<double>(probe.instructions) * reps;
  time_interleaved(
      trials, reps, result,
      [&] { run_block(kernel, device, gmem, args, legacy_opt); },
      [&] { run_block(kernel, device, gmem, args, fast_opt); },
      [&] { run_block(kernel, device, gmem, args, vector_opt); });
  return result;
}

/// End-to-end block throughput through a runner (packing + launch +
/// readback), the number a reproduction sweep experiences.
template <typename Runner, typename Options, typename Batch>
CaseResult run_e2e_case(const std::string& name, const Runner& runner,
                        const simt::DeviceSpec& device, const Batch& batch,
                        Options options, int trials, int reps) {
  options.engine = &wsim::bench::bench_engine();
  Options legacy_opt = options;
  legacy_opt.interp = simt::InterpPath::kLegacy;
  Options fast_opt = options;
  fast_opt.interp = simt::InterpPath::kFast;
  Options vector_opt = options;
  vector_opt.interp = simt::InterpPath::kVector;

  runner.run_batch(device, batch, fast_opt);    // warm-up (arenas + decode)
  runner.run_batch(device, batch, vector_opt);  // warm-up

  CaseResult result;
  result.section = "e2e";
  result.name = name;
  result.device = device.name;
  result.work = static_cast<double>(batch.size()) * reps;
  time_interleaved(
      trials, reps, result,
      [&] { runner.run_batch(device, batch, legacy_opt); },
      [&] { runner.run_batch(device, batch, fast_opt); },
      [&] { runner.run_batch(device, batch, vector_opt); });
  return result;
}

double geomean(const std::vector<CaseResult>& results, const std::string& section,
               double (CaseResult::*ratio)() const) {
  double log_sum = 0.0;
  std::size_t n = 0;
  for (const CaseResult& r : results) {
    if (r.section == section) {
      log_sum += std::log((r.*ratio)());
      ++n;
    }
  }
  return n == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(n));
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  std::ostringstream os;
  os << value;
  return os.str();
}

void write_json(const std::string& path, const std::vector<CaseResult>& results,
                double micro_geomean, double e2e_geomean,
                double micro_vector_geomean, double e2e_vector_geomean,
                double micro_vector_vs_fast, double compile_seconds,
                double decode_seconds, bool smoke) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  out << "{\n  \"bench\": \"simulator_perf\",\n  \"smoke\": "
      << (smoke ? "true" : "false") << ",\n  \"vector_isa\": \""
      << simt::vector_isa_name() << "\",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    out << "    {\"section\": \"" << r.section << "\", \"case\": \"" << r.name
        << "\", \"device\": \"" << r.device
        << "\", \"legacy_per_sec\": " << json_number(r.legacy_rate())
        << ", \"fast_per_sec\": " << json_number(r.fast_rate())
        << ", \"vector_per_sec\": " << json_number(r.vector_rate())
        << ", \"speedup\": " << json_number(r.speedup())
        << ", \"vector_speedup\": " << json_number(r.vector_speedup())
        << ", \"vector_vs_fast\": " << json_number(r.vector_vs_fast()) << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"micro_geomean_speedup\": " << json_number(micro_geomean)
      << ",\n  \"e2e_geomean_speedup\": " << json_number(e2e_geomean)
      << ",\n  \"micro_geomean_vector_speedup\": "
      << json_number(micro_vector_geomean)
      << ",\n  \"e2e_geomean_vector_speedup\": "
      << json_number(e2e_vector_geomean)
      << ",\n  \"micro_geomean_vector_vs_fast\": "
      << json_number(micro_vector_vs_fast)
      << ",\n  \"sw_kernel_build_seconds\": " << json_number(compile_seconds)
      << ",\n  \"sw_kernel_decode_seconds\": " << json_number(decode_seconds)
      << "\n}\n";
  std::cout << "wrote " << path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    }
  }
  wsim::bench::banner("the simulator-perf trajectory",
                      "legacy vs predecoded fast path vs lane-vector engine");
  std::cout << "lane-vector SIMD tier: " << simt::vector_isa_name() << "\n";

  const int micro_iters = smoke ? 256 : 512;
  const int micro_trials = smoke ? 3 : 5;
  const int micro_reps = smoke ? 20 : 60;
  const int e2e_trials = smoke ? 2 : 3;
  const int e2e_reps = smoke ? 1 : 2;

  const auto devices = wsim::simt::all_devices();
  std::vector<CaseResult> results;

  // --- micro: interpreter-only dependence chains -----------------------
  const wsim::micro::MicroKernel chains[] = {
      wsim::micro::MicroKernel::kRegister, wsim::micro::MicroKernel::kShfl,
      wsim::micro::MicroKernel::kShflDown, wsim::micro::MicroKernel::kShflXor,
      wsim::micro::MicroKernel::kSharedMem,
      wsim::micro::MicroKernel::kSharedMemSync,
  };
  for (const auto& device : devices) {
    for (const auto which : chains) {
      results.push_back(
          run_micro_case(which, device, micro_iters, micro_trials, micro_reps));
    }
  }

  // --- e2e: SW and PairHMM batches through the runners -----------------
  auto cfg = wsim::bench::standard_dataset_config();
  cfg.regions = smoke ? 2 : 4;
  const auto dataset = wsim::workload::generate_dataset(cfg);
  const auto sw_batches = wsim::workload::sw_rebatch(dataset, smoke ? 4 : 8);
  const auto ph_batches = wsim::workload::ph_rebatch(dataset, smoke ? 8 : 16);

  const wsim::kernels::SwRunner sw_runner(wsim::kernels::CommMode::kShuffle);
  const wsim::kernels::PhRunner ph_runner(wsim::kernels::CommMode::kShuffle);
  for (const auto& device : devices) {
    results.push_back(run_e2e_case("sw_shuffle", sw_runner, device,
                                   sw_batches.front(),
                                   wsim::kernels::SwRunOptions{}, e2e_trials,
                                   e2e_reps));
    results.push_back(run_e2e_case("pairhmm_shuffle", ph_runner, device,
                                   ph_batches.front(),
                                   wsim::kernels::PhRunOptions{}, e2e_trials,
                                   e2e_reps));
  }

  // --- compile: one-time costs, measured apart from the throughput loops
  const double compile_seconds = time_best(3, 1, [] {
    const auto kernel =
        wsim::kernels::build_sw_kernel(wsim::kernels::CommMode::kShuffle, {});
    if (kernel.code.empty()) {
      std::abort();  // defeats whole-build elision
    }
  });
  const auto sw_kernel =
      wsim::kernels::build_sw_kernel(wsim::kernels::CommMode::kShuffle, {});
  const double decode_seconds = time_best(3, 1, [&] {
    const auto program = simt::decode_program(sw_kernel, devices.front());
    if (program->code.empty()) {
      std::abort();
    }
  });

  // --- report ----------------------------------------------------------
  wsim::util::Table table({"section", "case", "device", "legacy/s", "fast/s",
                           "vector/s", "fast", "vector", "vec/fast"});
  for (const CaseResult& r : results) {
    table.add_row({r.section, r.name, r.device,
                   format_fixed(r.legacy_rate(), 0),
                   format_fixed(r.fast_rate(), 0),
                   format_fixed(r.vector_rate(), 0),
                   format_fixed(r.speedup(), 2) + "x",
                   format_fixed(r.vector_speedup(), 2) + "x",
                   format_fixed(r.vector_vs_fast(), 2) + "x"});
  }
  table.print(std::cout);
  wsim::bench::maybe_write_csv("simulator_perf", table);

  const double micro_geomean = geomean(results, "micro", &CaseResult::speedup);
  const double e2e_geomean = geomean(results, "e2e", &CaseResult::speedup);
  const double micro_vector_geomean =
      geomean(results, "micro", &CaseResult::vector_speedup);
  const double e2e_vector_geomean =
      geomean(results, "e2e", &CaseResult::vector_speedup);
  const double micro_vector_vs_fast =
      geomean(results, "micro", &CaseResult::vector_vs_fast);
  std::cout << "micro geomean speedup:  fast " << format_fixed(micro_geomean, 2)
            << "x, vector " << format_fixed(micro_vector_geomean, 2)
            << "x over legacy (vector/fast "
            << format_fixed(micro_vector_vs_fast, 2)
            << "x)   (micro rates are warp-instructions/s; e2e rates are "
               "blocks/s)\n"
            << "e2e geomean speedup:    fast " << format_fixed(e2e_geomean, 2)
            << "x, vector " << format_fixed(e2e_vector_geomean, 2) << "x\n"
            << "SW kernel build: " << format_fixed(compile_seconds * 1e3, 2)
            << " ms, predecode: " << format_fixed(decode_seconds * 1e3, 3)
            << " ms (one-time, cached per (kernel, device))\n";

  write_json("BENCH_simperf.json", results, micro_geomean, e2e_geomean,
             micro_vector_geomean, e2e_vector_geomean, micro_vector_vs_fast,
             compile_seconds, decode_seconds, smoke);

  // CI sanity floors: the fast path must never lose to legacy, and the
  // vector path must never lose to fast on the micro chains it exists to
  // accelerate.
  bool ok = true;
  for (const CaseResult& r : results) {
    if (r.speedup() < 1.0) {
      std::cerr << "FAIL: " << r.section << "/" << r.name << " on " << r.device
                << ": fast path slower than legacy (" << format_fixed(r.speedup(), 2)
                << "x)\n";
      ok = false;
    }
    if (r.section == "micro" && r.vector_vs_fast() < 1.0) {
      std::cerr << "FAIL: " << r.section << "/" << r.name << " on " << r.device
                << ": vector path slower than fast ("
                << format_fixed(r.vector_vs_fast(), 2) << "x)\n";
      ok = false;
    }
  }
  // Full runs also hold the committed vector-vs-fast micro target; smoke
  // runs skip it (short loops are too noisy for a tight ratio gate).
  if (!smoke && micro_vector_vs_fast < 3.0) {
    std::cerr << "FAIL: micro vector-vs-fast geomean "
              << format_fixed(micro_vector_vs_fast, 2) << "x < 3.00x target\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
