// Host-side performance of the simulation infrastructure itself
// (google-benchmark): interpreter throughput, kernel compilation
// (builder + scheduler + register allocator), occupancy calculation, and
// the host reference algorithms. These numbers bound how large a
// reproduction sweep can run interactively.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <string>

#include "wsim/align/pairhmm.hpp"
#include "wsim/align/smith_waterman.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/micro/microbench.hpp"
#include "wsim/simt/engine.hpp"
#include "wsim/simt/occupancy.hpp"
#include "wsim/util/rng.hpp"
#include "wsim/util/thread_pool.hpp"

namespace {

std::string random_dna(wsim::util::Rng& rng, int len) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = "ACGT"[rng.uniform_int(0, 3)];
  }
  return s;
}

void BM_InterpreterShuffleChain(benchmark::State& state) {
  const auto kernel = wsim::micro::build_micro_kernel(wsim::micro::MicroKernel::kShflDown);
  const auto dev = wsim::simt::make_k1200();
  const auto iters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wsim::micro::run_micro(kernel, dev, iters));
  }
  state.SetItemsProcessed(state.iterations() * iters);
}
BENCHMARK(BM_InterpreterShuffleChain)->Arg(256)->Arg(1024);

void BM_BuildSwKernel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wsim::kernels::build_sw_kernel(wsim::kernels::CommMode::kShuffle, {}));
  }
}
BENCHMARK(BM_BuildSwKernel);

void BM_BuildPhShuffleKernel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wsim::kernels::build_ph_shuffle_kernel(static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_BuildPhShuffleKernel)->Arg(1)->Arg(4);

void BM_OccupancyCalculator(benchmark::State& state) {
  const auto dev = wsim::simt::make_titan_x();
  int regs = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wsim::simt::compute_occupancy(dev, 128, regs, 4096));
    regs = regs == 16 ? 96 : 16;
  }
}
BENCHMARK(BM_OccupancyCalculator);

void BM_HostSmithWaterman(benchmark::State& state) {
  wsim::util::Rng rng(3);
  const std::string target = random_dna(rng, static_cast<int>(state.range(0)));
  const std::string query = random_dna(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wsim::align::sw_align(query, target, {}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_HostSmithWaterman)->Arg(128)->Arg(256);

void BM_HostPairHmm(benchmark::State& state) {
  wsim::util::Rng rng(5);
  wsim::align::PairHmmTask task;
  task.hap = random_dna(rng, static_cast<int>(state.range(0)));
  task.read = task.hap.substr(0, task.hap.size() / 2);
  task.base_quals.assign(task.read.size(), 30);
  task.ins_quals.assign(task.read.size(), 45);
  task.del_quals.assign(task.read.size(), 45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wsim::align::pairhmm_log10(task));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(task.read.size() * task.hap.size()));
}
BENCHMARK(BM_HostPairHmm)->Arg(128)->Arg(224);

void BM_SimulateSwBlock(benchmark::State& state) {
  wsim::util::Rng rng(9);
  const wsim::kernels::SwRunner runner(wsim::kernels::CommMode::kShuffle);
  const auto dev = wsim::simt::make_k1200();
  const wsim::workload::SwBatch batch = {{random_dna(rng, 96), random_dna(rng, 128)}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run_batch(dev, batch));
  }
  state.SetItemsProcessed(state.iterations() * 96 * 128);
}
BENCHMARK(BM_SimulateSwBlock);

/// ExecutionEngine scaling: simulate a multi-block SW grid at increasing
/// thread counts and report blocks/second — the payoff of the parallel
/// engine (expected to be near-linear until hardware threads run out).
void engine_thread_sweep() {
  wsim::util::Rng rng(17);
  const wsim::kernels::SwRunner runner(wsim::kernels::CommMode::kShuffle);
  const auto dev = wsim::simt::make_k1200();
  constexpr std::size_t kBlocks = 64;
  wsim::workload::SwBatch batch;
  for (std::size_t t = 0; t < kBlocks; ++t) {
    batch.push_back({random_dna(rng, 96), random_dna(rng, 128)});
  }

  std::cout << "\n--- ExecutionEngine thread sweep (" << kBlocks
            << "-block SW grid, kFull) ---\n";
  const int hw = wsim::util::ThreadPool::resolve(0);
  for (const int threads : {1, 2, 4, 8}) {
    if (threads > hw && threads != 1) {
      // Oversubscribing a small machine tells nothing about scaling.
      std::cout << "(skipping " << threads << " threads: only " << hw
                << " hardware thread" << (hw == 1 ? "" : "s") << ")\n";
      continue;
    }
    wsim::simt::ExecutionEngine engine(
        wsim::simt::EngineOptions{.threads = threads});
    wsim::kernels::SwRunOptions opt;
    opt.engine = &engine;
    runner.run_batch(dev, batch, opt);  // warm-up (faults in the arenas)

    constexpr int kReps = 3;
    const auto begin = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kReps; ++rep) {
      benchmark::DoNotOptimize(runner.run_batch(dev, batch, opt));
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - begin;
    const double blocks_per_sec =
        static_cast<double>(kBlocks) * kReps / elapsed.count();
    std::cout << "{\"threads\": " << threads
              << ", \"blocks_per_sec\": " << blocks_per_sec << "}\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  engine_thread_sweep();
  return 0;
}
