// Ablation: two optimizations beyond the paper — CUDA-streams-style
// transfer overlap and LPT (longest-first) batch ordering — applied to
// the Fig. 9 PairHMM configuration where transfer time is a visible
// fraction of the total.

#include <iostream>

#include "bench_common.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/util/stats.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/batching.hpp"

namespace {

using wsim::kernels::CommMode;
using wsim::util::format_fixed;

double avg_gcups(const wsim::kernels::PhRunner& runner,
                 const wsim::simt::DeviceSpec& dev,
                 const std::vector<wsim::workload::PhBatch>& batches,
                 bool overlap, bool lpt, wsim::kernels::PhCostCaches& caches) {
  std::vector<double> gcups;
  gcups.reserve(batches.size());
  for (auto batch : batches) {
    if (lpt) {
      wsim::workload::sort_by_cells_desc(batch);
    }
    wsim::kernels::PhRunOptions opt;
    opt.mode = wsim::simt::ExecMode::kCachedByShape;
    opt.cost_caches = &caches;
    opt.overlap_transfers = overlap;
    gcups.push_back(runner.run_batch(dev, batch, opt).run.gcups_total());
  }
  return wsim::util::summarize(gcups).mean;
}

}  // namespace

int main() {
  wsim::bench::banner("Ablation", "transfer overlap + LPT ordering (PairHMM)");
  const auto dataset = wsim::workload::generate_dataset(
      wsim::bench::standard_dataset_config());
  const auto batches = wsim::workload::ph_region_batches(dataset);

  for (const auto& dev : wsim::bench::evaluation_devices()) {
    std::cout << "--- " << dev.name << " (PH2, region batches, avg GCUPS incl. "
                 "transfer) ---\n";
    const wsim::kernels::PhRunner runner(CommMode::kShuffle);
    wsim::kernels::PhCostCaches caches;
    wsim::util::Table table({"configuration", "avg GCUPS", "vs baseline"});
    const double base = avg_gcups(runner, dev, batches, false, false, caches);
    table.add_row({"baseline (paper setup)", format_fixed(base, 2), "1.00x"});
    const double lpt = avg_gcups(runner, dev, batches, false, true, caches);
    table.add_row({"+ LPT batch order", format_fixed(lpt, 2),
                   format_fixed(lpt / base, 2) + "x"});
    const double streams = avg_gcups(runner, dev, batches, true, false, caches);
    table.add_row({"+ transfer overlap", format_fixed(streams, 2),
                   format_fixed(streams / base, 2) + "x"});
    const double both = avg_gcups(runner, dev, batches, true, true, caches);
    table.add_row({"+ both", format_fixed(both, 2),
                   format_fixed(both / base, 2) + "x"});
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Transfer overlap reclaims the PCIe time the paper's GCUPS\n"
               "definition charges to every batch; LPT helps when task sizes\n"
               "within a batch are skewed.\n";
  return 0;
}
