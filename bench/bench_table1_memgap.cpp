// Regenerates Table I: the gap between computation throughput and the
// shared-/global-memory bandwidth on the paper's evaluation GPUs, from the
// simulator's device models.

#include <iostream>

#include "bench_common.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/util/table.hpp"

int main() {
  using wsim::util::format_fixed;
  wsim::bench::banner("Table I", "computation vs. memory-system gap");

  wsim::util::Table table({"metric", "Nvidia K1200", "Nvidia Titan X", "paper K1200",
                           "paper Titan X"});
  const auto k1200 = wsim::simt::make_k1200();
  const auto titan = wsim::simt::make_titan_x();
  table.add_row({"GFLOPs", format_fixed(k1200.peak_gflops(), 0),
                 format_fixed(titan.peak_gflops(), 0), "1057", "6611"});
  table.add_row({"shared memory BW (GB/s)", format_fixed(k1200.shared_mem_bw_gbps(), 0),
                 format_fixed(titan.shared_mem_bw_gbps(), 0), "550", "3302"});
  table.add_row({"global memory BW (GB/s)", format_fixed(k1200.global_mem_bw_gbps, 1),
                 format_fixed(titan.global_mem_bw_gbps, 1), "80", "336.5"});
  table.print(std::cout);

  std::cout << "\nGap ratios (shared : global BW): K1200 "
            << format_fixed(k1200.shared_mem_bw_gbps() / k1200.global_mem_bw_gbps, 1)
            << "x, Titan X "
            << format_fixed(titan.shared_mem_bw_gbps() / titan.global_mem_bw_gbps, 1)
            << "x — the imbalance motivating communication optimization.\n";
  return 0;
}
