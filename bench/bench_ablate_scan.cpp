// Ablation: generality beyond sequence alignment — the paper's closing
// claim is that its shuffle insights carry to "a wider class of
// applications". Block prefix scan is the canonical case: the shuffle
// design removes all log2(T) barrier stages, and its multi-warp variant
// shows the *healthy* hybrid (O(1) cross-warp smem traffic), in contrast
// to the rejected PairHMM hybrid (per-iteration traffic,
// bench_ablate_hybrid).

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "wsim/kernels/scan_kernels.hpp"
#include "wsim/util/table.hpp"

namespace {

using wsim::kernels::build_scan_kernel;
using wsim::kernels::CommMode;
using wsim::util::format_fixed;

}  // namespace

int main() {
  wsim::bench::banner("Ablation", "prefix scan: shared memory vs shuffle");

  for (const auto& dev : wsim::bench::evaluation_devices()) {
    std::cout << "--- " << dev.name << " ---\n";
    wsim::util::Table table({"design", "threads", "smem (B)", "barriers",
                             "block cycles", "speedup"});
    for (const int threads : {32, 128, 512}) {
      const std::vector<std::int32_t> input(static_cast<std::size_t>(threads), 1);
      long long shared_cycles = 0;
      long long shuffle_cycles = 0;
      wsim::kernels::run_scan(build_scan_kernel(CommMode::kSharedMemory, threads),
                              dev, input, &shared_cycles);
      wsim::kernels::run_scan(build_scan_kernel(CommMode::kShuffle, threads), dev,
                              input, &shuffle_cycles);
      const auto shared_k = build_scan_kernel(CommMode::kSharedMemory, threads);
      const auto shuffle_k = build_scan_kernel(CommMode::kShuffle, threads);
      auto bars = [](const wsim::simt::Kernel& k) {
        std::size_t n = 0;
        for (const auto& ins : k.code) {
          n += ins.op == wsim::simt::Op::kBar ? 1 : 0;
        }
        return n;
      };
      table.add_row({"shared", std::to_string(threads),
                     std::to_string(shared_k.smem_bytes),
                     std::to_string(bars(shared_k)), std::to_string(shared_cycles),
                     "1.00x"});
      table.add_row({"shuffle", std::to_string(threads),
                     std::to_string(shuffle_k.smem_bytes),
                     std::to_string(bars(shuffle_k)), std::to_string(shuffle_cycles),
                     format_fixed(static_cast<double>(shared_cycles) /
                                      static_cast<double>(shuffle_cycles),
                                  2) +
                         "x"});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "The shuffle scan eliminates every per-stage barrier; its\n"
               "multi-warp variant pays one barrier and one warp-total store\n"
               "per block — cross-warp traffic that is O(1) per element, the\n"
               "regime where mixing shuffle and shared memory pays off.\n";
  return 0;
}
