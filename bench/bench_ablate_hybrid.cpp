// Ablation: the PairHMM design space of the paper's Section IV-C2 —
// PH1 (shared memory, 4 warps), the rejected hybrid (shuffle inside each
// warp + shared memory at warp boundaries + a sync per step), and PH2
// (the paper's compromise: one warp, register blocking). The paper argues
// the hybrid's cross-warp smem traffic and synchronization "cancel the
// benefits of using shuffle"; this bench measures that argument.

#include <iostream>

#include "bench_common.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/model/breakdown.hpp"
#include "wsim/util/rng.hpp"
#include "wsim/util/table.hpp"

namespace {

using wsim::kernels::PhDesign;
using wsim::util::format_fixed;
using wsim::util::format_percent;

std::string random_dna(wsim::util::Rng& rng, int len) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = "ACGT"[rng.uniform_int(0, 3)];
  }
  return s;
}

const char* name_of(PhDesign design) {
  switch (design) {
    case PhDesign::kShared:
      return "PH1 (shared, 4 warps)";
    case PhDesign::kHybrid:
      return "hybrid (shuffle + smem)";
    case PhDesign::kShuffle:
      return "PH2 (1 warp, reg-block)";
  }
  return "?";
}

}  // namespace

int main() {
  wsim::bench::banner("Ablation", "PairHMM design space: PH1 vs hybrid vs PH2");
  const auto dev = wsim::simt::make_k1200();
  wsim::util::Rng rng(7);

  // A 4-warp-wide task (120 read rows) and a saturated batch of them.
  wsim::align::PairHmmTask task;
  task.hap = random_dna(rng, 200);
  task.read = task.hap.substr(0, 120);
  task.base_quals.assign(120, 30);
  task.ins_quals.assign(120, 45);
  task.del_quals.assign(120, 45);
  const wsim::workload::PhBatch one = {task};
  const wsim::workload::PhBatch many(192, task);
  const auto iters = wsim::kernels::ph_iterations(120, 200);

  wsim::util::Table table({"design", "occupancy", "cy/iteration",
                           "shfl+smem+sync per iter", "saturated GCUPS"});
  for (const PhDesign design :
       {PhDesign::kShared, PhDesign::kHybrid, PhDesign::kShuffle}) {
    const wsim::kernels::PhRunner runner(design);
    const auto single = runner.run_batch(dev, one);
    wsim::kernels::PhRunOptions opt;
    opt.mode = wsim::simt::ExecMode::kCachedByShape;
    const auto saturated = runner.run_batch(dev, many, opt);
    const auto breakdown = wsim::model::hot_loop_breakdown(
        runner.kernel_for_read_len(task.read.size()));
    table.add_row(
        {name_of(design), format_percent(single.run.launch.occupancy.fraction),
         format_fixed(single.run.cycles_per_iteration(iters), 0),
         std::to_string(breakdown.shuffle_total()) + " + " +
             std::to_string(breakdown.smem_total()) + " + " +
             std::to_string(breakdown.barriers),
         format_fixed(saturated.run.gcups_kernel(), 2)});
  }
  table.print(std::cout);

  std::cout <<
      "\nThe hybrid keeps PH1's barrier and adds shared-memory traffic on\n"
      "top of the shuffles, so it cannot beat the one-warp design — the\n"
      "quantitative version of the paper's Section IV-C2 compromise.\n";
  return 0;
}
