// Regenerates Figure 10: the impact of re-batching on the SW kernels —
// tasks from different HaplotypeCaller regions are merged into batches of
// 25..3200 tasks and launched together, recovering the device utilization
// the tiny original batches forfeit. GCUPS include transfer time.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/util/stats.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/batching.hpp"

namespace {

using wsim::kernels::CommMode;
using wsim::util::format_fixed;

}  // namespace

int main() {
  wsim::bench::banner("Figure 10", "re-batching impact on SW kernels");

  // A deep SW task pool (the paper re-batches up to 3200 tasks).
  auto cfg = wsim::bench::standard_dataset_config();
  cfg.regions = 840;
  cfg.ph_tasks_per_region_mean = 1.0;  // PairHMM unused here
  const auto dataset = wsim::workload::generate_dataset(cfg);
  const auto pool = wsim::workload::sw_all_tasks(dataset);
  std::cout << "SW task pool: " << pool.size() << " tasks\n\n";

  const std::vector<std::size_t> batch_sizes = {25, 50, 100, 200, 400, 800, 1600, 3200};

  for (const auto& dev : wsim::bench::evaluation_devices()) {
    std::cout << "--- " << dev.name << " ---\n";
    wsim::util::Table table({"batch size", "SW1 avg", "SW1 peak", "SW2 avg",
                             "SW2 peak", "SW2/SW1"});
    // One persistent cost cache per kernel: identical task shapes repeat
    // across the sweep.
    const wsim::kernels::SwRunner sw1(CommMode::kSharedMemory);
    const wsim::kernels::SwRunner sw2(CommMode::kShuffle);
    wsim::simt::BlockCostCache cache1;
    wsim::simt::BlockCostCache cache2;
    for (const std::size_t size : batch_sizes) {
      const auto batches = wsim::workload::sw_rebatch(dataset, size);
      std::vector<double> g1;
      std::vector<double> g2;
      for (const auto& batch : batches) {
        wsim::kernels::SwRunOptions opt;
        opt.mode = wsim::simt::ExecMode::kCachedByShape;
        opt.cost_cache = &cache1;
        g1.push_back(sw1.run_batch(dev, batch, opt).run.gcups_total());
        opt.cost_cache = &cache2;
        g2.push_back(sw2.run_batch(dev, batch, opt).run.gcups_total());
      }
      const auto s1 = wsim::util::summarize(g1);
      const auto s2 = wsim::util::summarize(g2);
      table.add_row({std::to_string(size), format_fixed(s1.mean, 2),
                     format_fixed(s1.max, 2), format_fixed(s2.mean, 2),
                     format_fixed(s2.max, 2), format_fixed(s2.mean / s1.mean, 2)});
    }
    table.print(std::cout);
    wsim::bench::maybe_write_csv(std::string("fig10_rebatch_") + (dev.sm_count == 4 ? "k1200" : "titanx"), table);
    std::cout << '\n';
  }

  std::cout <<
      "Expected shape (paper Fig. 10):\n"
      "  * GCUPS grow with batch size and saturate once the device is full;\n"
      "  * Titan X needs far larger batches than K1200 to saturate (24 vs 4\n"
      "    SMs) and reaches a much higher plateau (paper: 19.6 GCUPS peak,\n"
      "    18.5 average at 3200 tasks for SW2);\n"
      "  * SW2 stays ahead of SW1 (~1.2x at saturation).\n";
  return 0;
}
