// Related-work comparison (paper Section VI): real wall-clock GCUPS of
// CPU baselines — scalar and striped (Farrar) Smith-Waterman, scalar and
// anti-diagonal-SIMD (GKL-style) PairHMM — next to the simulated GPU
// kernels' GCUPS. The paper cites Intel GKL on CPU and a CAPI FPGA at
// 1.7 GCUPS on the same genome sample, and claims its PairHMM outperforms
// prior work.

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "wsim/align/pairhmm.hpp"
#include "wsim/cpu/simd_pairhmm.hpp"
#include "wsim/cpu/striped_sw.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/util/table.hpp"
#include "wsim/workload/batching.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using wsim::kernels::CommMode;
using wsim::util::format_fixed;

template <typename Fn>
double wall_gcups(std::size_t cells, Fn&& fn) {
  const auto start = Clock::now();
  fn();
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(cells) / seconds / 1e9;
}

}  // namespace

int main() {
  wsim::bench::banner("Related work", "CPU baselines vs simulated GPU kernels");
  auto cfg = wsim::bench::standard_dataset_config();
  cfg.regions = 8;
  const auto dataset = wsim::workload::generate_dataset(cfg);
  const auto sw_tasks = wsim::workload::sw_all_tasks(dataset);
  const auto ph_tasks = wsim::workload::ph_all_tasks(dataset);
  const std::size_t sw_cells = wsim::workload::batch_cells(sw_tasks);
  const std::size_t ph_cells = wsim::workload::batch_cells(ph_tasks);
  std::cout << "Workload: " << sw_tasks.size() << " SW tasks (" << sw_cells
            << " cells), " << ph_tasks.size() << " PairHMM tasks (" << ph_cells
            << " cells)\n\n";

  wsim::util::Table table({"implementation", "kind", "GCUPS"});

  // --- CPU, measured wall clock (single core) -----------------------------
  table.add_row({"SW scalar (1 core)", "measured",
                 format_fixed(wall_gcups(sw_cells,
                                         [&] {
                                           for (const auto& t : sw_tasks) {
                                             wsim::cpu::scalar_sw_score(
                                                 t.query, t.target, {});
                                           }
                                         }),
                              2)});
  table.add_row({"SW striped/Farrar (1 core)", "measured",
                 format_fixed(wall_gcups(sw_cells,
                                         [&] {
                                           for (const auto& t : sw_tasks) {
                                             wsim::cpu::striped_sw_score(
                                                 t.query, t.target, {});
                                           }
                                         }),
                              2)});
  table.add_row({"PairHMM scalar (1 core)", "measured",
                 format_fixed(wall_gcups(ph_cells,
                                         [&] {
                                           for (const auto& t : ph_tasks) {
                                             wsim::align::pairhmm_log10(t);
                                           }
                                         }),
                              2)});
  table.add_row({"PairHMM SIMD/GKL-style (1 core)", "measured",
                 format_fixed(wall_gcups(ph_cells,
                                         [&] {
                                           for (const auto& t : ph_tasks) {
                                             wsim::cpu::simd_pairhmm_log10(t);
                                           }
                                         }),
                              2)});

  // --- simulated GPU kernels (kernel time, saturated batches) -------------
  for (const auto& dev : wsim::bench::evaluation_devices()) {
    const wsim::kernels::SwRunner sw2(CommMode::kShuffle);
    wsim::kernels::SwRunOptions sw_opt;
    sw_opt.mode = wsim::simt::ExecMode::kCachedByShape;
    table.add_row({"SW2 shuffle on " + dev.name, "simulated",
                   format_fixed(sw2.run_batch(dev, sw_tasks, sw_opt).run.gcups_kernel(), 2)});
    const wsim::kernels::PhRunner ph2(CommMode::kShuffle);
    wsim::kernels::PhRunOptions ph_opt;
    ph_opt.mode = wsim::simt::ExecMode::kCachedByShape;
    table.add_row({"PH2 shuffle on " + dev.name, "simulated",
                   format_fixed(ph2.run_batch(dev, ph_tasks, ph_opt).run.gcups_kernel(), 2)});
  }
  table.add_row({"FPGA PairHMM (Ito et al., paper ref)", "literature", "1.70"});
  table.print(std::cout);

  std::cout <<
      "\nContext: the paper's related work cites Intel GKL (AVX PairHMM on\n"
      "CPU) and a CAPI FPGA systolic array at 1.7 GCUPS, and reports its\n"
      "GPU PairHMM outperforming both. The same ordering should hold here:\n"
      "scalar CPU < SIMD CPU < simulated GPU (per device class), with the\n"
      "caveat that CPU numbers are real silicon while GPU numbers are the\n"
      "simulator's estimate.\n";
  return 0;
}
