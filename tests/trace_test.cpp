#include <gtest/gtest.h>

#include <sstream>

#include "wsim/simt/builder.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/interpreter.hpp"
#include "wsim/simt/memory.hpp"
#include "wsim/simt/trace.hpp"

namespace {

using wsim::simt::GlobalMemory;
using wsim::simt::imm_i64;
using wsim::simt::Kernel;
using wsim::simt::KernelBuilder;
using wsim::simt::Trace;
using wsim::simt::VReg;

const wsim::simt::DeviceSpec kDev = wsim::simt::make_k1200();

Kernel two_warp_kernel() {
  KernelBuilder kb("traced", 64);
  kb.alloc_smem(64 * 4);
  const VReg t = kb.tid();
  const VReg addr = kb.imul(t, imm_i64(4));
  kb.sts(addr, t);
  kb.bar();
  const VReg v = kb.lds(addr);
  const VReg s = kb.shfl_down(v, imm_i64(1));
  kb.stg(addr, kb.iadd(v, s));
  return kb.build();
}

TEST(Trace, RecordsEveryIssuedInstruction) {
  const Kernel k = two_warp_kernel();
  GlobalMemory gmem;
  gmem.alloc(64 * 4);
  Trace trace;
  const auto result = run_block(k, kDev, gmem, {}, &trace);
  // One event per issued instruction; barriers are recorded once per warp
  // with their wait window, matching their per-warp issue count.
  EXPECT_EQ(trace.size(), result.instructions);
}

TEST(Trace, EventsAreWellFormed) {
  const Kernel k = two_warp_kernel();
  GlobalMemory gmem;
  gmem.alloc(64 * 4);
  Trace trace;
  const auto result = run_block(k, kDev, gmem, {}, &trace);
  bool saw_shuffle = false;
  bool saw_warp1 = false;
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.start, 0);
    EXPECT_GE(e.end, e.start);
    EXPECT_LE(e.end, result.cycles);
    EXPECT_TRUE(e.warp == 0 || e.warp == 1);
    saw_shuffle |= e.name == "shfl.down";
    saw_warp1 |= e.warp == 1;
  }
  EXPECT_TRUE(saw_shuffle);
  EXPECT_TRUE(saw_warp1);
}

TEST(Trace, ChromeJsonIsStructurallySound) {
  const Kernel k = two_warp_kernel();
  GlobalMemory gmem;
  gmem.alloc(64 * 4);
  Trace trace;
  run_block(k, kDev, gmem, {}, &trace);
  std::ostringstream oss;
  trace.write_chrome_json(oss);
  const std::string json = oss.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 1"), std::string::npos);
  EXPECT_NE(json.find("bar.sync"), std::string::npos);
  // Balanced braces: every event object closes.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, NullTraceCostsNothingFunctionally) {
  const Kernel k = two_warp_kernel();
  GlobalMemory gmem_a;
  gmem_a.alloc(64 * 4);
  GlobalMemory gmem_b;
  gmem_b.alloc(64 * 4);
  Trace trace;
  const auto with = run_block(k, kDev, gmem_a, {}, &trace);
  const auto without = run_block(k, kDev, gmem_b, {});
  EXPECT_EQ(with.cycles, without.cycles);
  EXPECT_EQ(gmem_a.read_i32(0, 64), gmem_b.read_i32(0, 64));
}

}  // namespace
