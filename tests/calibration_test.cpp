#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "wsim/fleet/calibrator.hpp"
#include "wsim/fleet/fault.hpp"
#include "wsim/fleet/fleet.hpp"
#include "wsim/util/check.hpp"
#include "wsim/workload/batching.hpp"
#include "wsim/workload/generator.hpp"

namespace {

namespace fleet = wsim::fleet;
using fleet::CalibrationConfig;
using fleet::Calibrator;
using fleet::DegradeKind;
using fleet::DegradeSpec;
using fleet::DriftState;
using fleet::DriftTransition;
using fleet::KernelClass;

CalibrationConfig quick_config() {
  CalibrationConfig cfg;
  cfg.enabled = true;
  cfg.min_samples = 4;
  return cfg;
}

/// Feeds `count` in-order observations of one ratio and returns every
/// transition produced.
std::vector<DriftTransition> feed(Calibrator& cal, int device,
                                  KernelClass cls, std::uint64_t& seq,
                                  double ratio, int count) {
  std::vector<DriftTransition> all;
  for (int i = 0; i < count; ++i) {
    const double t = static_cast<double>(seq + 1) * 1e-4;
    auto out = cal.observe(device, cls, seq, 1e-3, ratio * 1e-3, t);
    ++seq;
    all.insert(all.end(), out.begin(), out.end());
  }
  return all;
}

int count_transitions(const std::vector<DriftTransition>& transitions,
                      DriftState from, DriftState to) {
  int n = 0;
  for (const auto& tr : transitions) {
    if (tr.from == from && tr.to == to) {
      ++n;
    }
  }
  return n;
}

// ---------------------------------------------------------------------------
// Warm-up: the applied factor is exactly 1.0 until min_samples, then seeds
// from the warm-up mean — short replays are bit-identical with calibration
// on or off.

TEST(Calibrator, WarmupFactorStaysOneThenSeedsFromMean) {
  Calibrator cal(quick_config());
  cal.resize(1);
  std::uint64_t seq = 0;
  for (int i = 0; i < 3; ++i) {
    feed(cal, 0, KernelClass::kSwInter, seq, 2.0 + 0.2 * i, 1);
    EXPECT_DOUBLE_EQ(cal.factor(0, KernelClass::kSwInter), 1.0) << i;
  }
  feed(cal, 0, KernelClass::kSwInter, seq, 2.6, 1);
  EXPECT_EQ(cal.samples(0, KernelClass::kSwInter), 4u);
  // Mean of {2.0, 2.2, 2.4, 2.6}.
  EXPECT_NEAR(cal.factor(0, KernelClass::kSwInter), 2.3, 1e-12);
}

TEST(Calibrator, EwmaTracksAfterWarmup) {
  const CalibrationConfig cfg = quick_config();
  Calibrator cal(cfg);
  cal.resize(1);
  std::uint64_t seq = 0;
  feed(cal, 0, KernelClass::kSwInter, seq, 2.0, cfg.min_samples);
  feed(cal, 0, KernelClass::kSwInter, seq, 2.2, 1);
  EXPECT_NEAR(cal.factor(0, KernelClass::kSwInter),
              (1.0 - cfg.alpha) * 2.0 + cfg.alpha * 2.2, 1e-12);
}

TEST(Calibrator, DisabledIsInertAndFree) {
  CalibrationConfig cfg;
  cfg.enabled = false;
  Calibrator cal(cfg);
  cal.resize(1);
  const auto out = cal.observe(0, KernelClass::kSwInter, 0, 1e-3, 8e-3, 0.0);
  EXPECT_TRUE(out.empty());
  EXPECT_DOUBLE_EQ(cal.factor(0, KernelClass::kSwInter), 1.0);
  EXPECT_EQ(cal.drift_state(0), DriftState::kNominal);
}

TEST(Calibrator, FreezeAfterWarmupPinsTheFactorAndDisablesDetectors) {
  CalibrationConfig cfg = quick_config();
  cfg.freeze_after_warmup = true;
  Calibrator cal(cfg);
  cal.resize(1);
  std::uint64_t seq = 0;
  feed(cal, 0, KernelClass::kSwInter, seq, 2.0, cfg.min_samples);
  EXPECT_NEAR(cal.factor(0, KernelClass::kSwInter), 2.0, 1e-12);
  // A 4x silent degradation after the freeze: the static factor must not
  // move and no drift transition may fire — that is exactly the disaster
  // mode the online calibrator exists to fix.
  const auto transitions = feed(cal, 0, KernelClass::kSwInter, seq, 8.0, 20);
  EXPECT_TRUE(transitions.empty());
  EXPECT_NEAR(cal.factor(0, KernelClass::kSwInter), 2.0, 1e-12);
  EXPECT_EQ(cal.drift_state(0), DriftState::kNominal);
}

// ---------------------------------------------------------------------------
// Determinism: factors are a pure function of the per-device dispatch
// sequence, independent of delivery order and threading.

TEST(Calibrator, OutOfOrderDeliveryMatchesInOrder) {
  const auto ratios = [](std::uint64_t k) {
    return 1.4 + 0.04 * static_cast<double>(k % 6);
  };
  Calibrator in_order(quick_config());
  in_order.resize(1);
  for (std::uint64_t k = 0; k < 32; ++k) {
    in_order.observe(0, KernelClass::kSwInter, k, 1e-3, ratios(k) * 1e-3, 0.0);
  }
  Calibrator reversed(quick_config());
  reversed.resize(1);
  // Everything but seq 0 arrives first and must be buffered; seq 0 then
  // releases the whole backlog in one drain.
  for (std::uint64_t k = 31; k >= 1; --k) {
    reversed.observe(0, KernelClass::kSwInter, k, 1e-3, ratios(k) * 1e-3, 0.0);
    EXPECT_DOUBLE_EQ(reversed.factor(0, KernelClass::kSwInter), 1.0);
  }
  reversed.observe(0, KernelClass::kSwInter, 0, 1e-3, ratios(0) * 1e-3, 0.0);
  EXPECT_DOUBLE_EQ(in_order.factor(0, KernelClass::kSwInter),
                   reversed.factor(0, KernelClass::kSwInter));
  EXPECT_EQ(in_order.samples(0, KernelClass::kSwInter),
            reversed.samples(0, KernelClass::kSwInter));
}

TEST(Calibrator, ConcurrentDeliveryMatchesSequential) {
  const auto ratios = [](std::uint64_t k) {
    return 1.4 + 0.04 * static_cast<double>(k % 6);
  };
  constexpr std::uint64_t kObs = 128;
  Calibrator sequential(quick_config());
  sequential.resize(1);
  for (std::uint64_t k = 0; k < kObs; ++k) {
    sequential.observe(0, KernelClass::kSwInter, k, 1e-3, ratios(k) * 1e-3,
                       0.0);
  }
  Calibrator concurrent(quick_config());
  concurrent.resize(1);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Striped delivery: each thread races its stripe in; the calibrator
      // buffers whatever arrives ahead of the per-device seq cursor.
      for (std::uint64_t k = static_cast<std::uint64_t>(t); k < kObs;
           k += kThreads) {
        concurrent.observe(0, KernelClass::kSwInter, k, 1e-3,
                           ratios(k) * 1e-3, 0.0);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_DOUBLE_EQ(sequential.factor(0, KernelClass::kSwInter),
                   concurrent.factor(0, KernelClass::kSwInter));
  EXPECT_EQ(sequential.samples(0, KernelClass::kSwInter),
            concurrent.samples(0, KernelClass::kSwInter));
  EXPECT_EQ(sequential.drift_state(0), concurrent.drift_state(0));
}

TEST(Calibrator, SkipClosesGapsLikeTheObservationNeverExisted) {
  const double ratios[6] = {1.5, 1.6, 1.4, 1.7, 1.5, 1.6};
  Calibrator with_gap(quick_config());
  with_gap.resize(1);
  // Seqs 4 and 5 arrive early, then 0..2; the factor must not move until
  // skip(3) closes the gap left by a failed attempt.
  for (std::uint64_t k : {4u, 5u, 0u, 1u, 2u}) {
    with_gap.observe(0, KernelClass::kSwInter, k, 1e-3, ratios[k] * 1e-3, 0.0);
  }
  EXPECT_DOUBLE_EQ(with_gap.factor(0, KernelClass::kSwInter), 1.0);
  with_gap.skip(0, 3);
  Calibrator contiguous(quick_config());
  contiguous.resize(1);
  std::uint64_t seq = 0;
  for (std::uint64_t k : {0u, 1u, 2u, 4u, 5u}) {
    contiguous.observe(0, KernelClass::kSwInter, seq++, 1e-3,
                       ratios[k] * 1e-3, 0.0);
  }
  EXPECT_DOUBLE_EQ(with_gap.factor(0, KernelClass::kSwInter),
                   contiguous.factor(0, KernelClass::kSwInter));
}

// ---------------------------------------------------------------------------
// The drift ladder: CUSUM step -> suspect -> evidence-confirmed derate ->
// in-band requalification; quarantine only beyond quarantine_ratio.

TEST(Calibrator, StepDegradationSuspectsThenDeratesOnEvidence) {
  const CalibrationConfig cfg = quick_config();
  Calibrator cal(cfg);
  cal.resize(1);
  std::uint64_t seq = 0;
  feed(cal, 0, KernelClass::kSwInter, seq, 2.0, cfg.min_samples);
  // A 4x step: log(8.0 / 2.0) - slack > cusum_threshold, so the very
  // first post-onset observation raises suspicion.
  const auto first = feed(cal, 0, KernelClass::kSwInter, seq, 8.0, 1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].from, DriftState::kNominal);
  EXPECT_EQ(first[0].to, DriftState::kDriftSuspect);
  EXPECT_EQ(cal.drift_state(0), DriftState::kDriftSuspect);
  // The second sick observation completes the post-onset evidence; the
  // factor snaps to the evidence mean, not the pre-onset-diluted window.
  const auto second = feed(cal, 0, KernelClass::kSwInter, seq, 8.0, 1);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].to, DriftState::kDerated);
  EXPECT_FALSE(second[0].escalate_quarantine);  // 4x < quarantine_ratio
  EXPECT_TRUE(cal.derated(0));
  EXPECT_NEAR(cal.factor(0, KernelClass::kSwInter), 8.0, 1e-12);
}

TEST(Calibrator, ExtremeDegradationEscalatesToQuarantine) {
  const CalibrationConfig cfg = quick_config();
  Calibrator cal(cfg);
  cal.resize(1);
  std::uint64_t seq = 0;
  feed(cal, 0, KernelClass::kSwInter, seq, 2.0, cfg.min_samples);
  // 10x the reference, beyond quarantine_ratio = 6: the derate transition
  // carries the escalation flag for the executor's quarantine channel.
  const auto transitions = feed(cal, 0, KernelClass::kSwInter, seq, 20.0, 2);
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[1].to, DriftState::kDerated);
  EXPECT_TRUE(transitions[1].escalate_quarantine);
}

TEST(Calibrator, SlowRampTripsThePeerRelativeDetector) {
  const CalibrationConfig cfg = quick_config();
  Calibrator cal(cfg);
  cal.resize(2);
  std::uint64_t seq0 = 0;
  std::uint64_t seq1 = 0;
  feed(cal, 0, KernelClass::kSwInter, seq0, 2.0, cfg.min_samples);
  feed(cal, 1, KernelClass::kSwInter, seq1, 2.0, cfg.min_samples);
  // 2% growth per dispatch: the EWMA tracks closely enough that the
  // per-sample log residual stays under the CUSUM slack — only the
  // factor-vs-own-baseline check (normalized by the healthy peer's drift)
  // can see this.
  std::vector<DriftTransition> all;
  double ratio = 2.0;
  for (int i = 0; i < 80 && cal.drift_state(0) != DriftState::kDerated; ++i) {
    ratio *= 1.02;
    const auto out = feed(cal, 0, KernelClass::kSwInter, seq0, ratio, 1);
    all.insert(all.end(), out.begin(), out.end());
  }
  EXPECT_GE(count_transitions(all, DriftState::kNominal,
                              DriftState::kDriftSuspect), 1);
  EXPECT_EQ(cal.drift_state(0), DriftState::kDerated);
  // The healthy peer must not be dragged along.
  EXPECT_EQ(cal.drift_state(1), DriftState::kNominal);
}

TEST(Calibrator, FlappingDeratesThenRequalifies) {
  const CalibrationConfig cfg = quick_config();
  Calibrator cal(cfg);
  cal.resize(1);
  std::uint64_t seq = 0;
  feed(cal, 0, KernelClass::kSwInter, seq, 2.0, cfg.min_samples);
  std::vector<DriftTransition> all;
  for (int phase = 0; phase < 4; ++phase) {
    const double ratio = phase % 2 == 0 ? 8.0 : 2.0;
    const auto out = feed(cal, 0, KernelClass::kSwInter, seq, ratio, 10);
    all.insert(all.end(), out.begin(), out.end());
  }
  EXPECT_GE(count_transitions(all, DriftState::kDriftSuspect,
                              DriftState::kDerated), 1);
  // The healthy half-periods must win the device back — flapping is the
  // derate-then-requalify scenario, never the quarantine one.
  EXPECT_GE(count_transitions(all, DriftState::kDerated,
                              DriftState::kNominal), 1);
  for (const auto& tr : all) {
    EXPECT_FALSE(tr.escalate_quarantine);
  }
}

TEST(Calibrator, DerateRescalesTheDeviceOtherKernelClasses) {
  const CalibrationConfig cfg = quick_config();
  Calibrator cal(cfg);
  cal.resize(1);
  std::uint64_t seq = 0;
  // Warm both classes at different healthy biases (interleaved on one
  // dispatch sequence, as a real device would see them).
  for (int i = 0; i < cfg.min_samples; ++i) {
    feed(cal, 0, KernelClass::kSwInter, seq, 2.0, 1);
    feed(cal, 0, KernelClass::kPairHmm, seq, 3.0, 1);
  }
  EXPECT_NEAR(cal.factor(0, KernelClass::kPairHmm), 3.0, 1e-12);
  // Degradation is device-wide (a dropped clock), but only the SW class
  // collects direct evidence here; the derate must propagate the relative
  // drift (8/2 = 4x) onto the PairHMM factor instead of leaving it stale.
  feed(cal, 0, KernelClass::kSwInter, seq, 8.0, 2);
  ASSERT_TRUE(cal.derated(0));
  EXPECT_NEAR(cal.factor(0, KernelClass::kSwInter), 8.0, 1e-12);
  EXPECT_NEAR(cal.factor(0, KernelClass::kPairHmm), 12.0, 1e-12);
}

TEST(Calibrator, CapacityScaleAveragesInverseFactors) {
  const CalibrationConfig cfg = quick_config();
  Calibrator cal(cfg);
  cal.resize(2);
  std::uint64_t seq0 = 0;
  std::uint64_t seq1 = 0;
  feed(cal, 0, KernelClass::kPairHmm, seq0, 2.0, cfg.min_samples);
  feed(cal, 1, KernelClass::kPairHmm, seq1, 4.0, cfg.min_samples);
  // Mean of 1/2 and 1/4: the autoscaler derates its Eq. 7/8 capacity by
  // this, so a degraded pool scales out instead of missing deadlines.
  EXPECT_NEAR(cal.capacity_scale({0, 1}), 0.375, 1e-12);
  // Pre-warm-up devices contribute factor 1.0.
  Calibrator cold(quick_config());
  cold.resize(1);
  EXPECT_DOUBLE_EQ(cold.capacity_scale({0}), 1.0);
}

// ---------------------------------------------------------------------------
// DegradeSpec: the deterministic silent-degradation families.

TEST(DegradeSpec, StuckSlowStepsAtOnset) {
  DegradeSpec spec;
  spec.device = 1;
  spec.kind = DegradeKind::kStuckSlow;
  spec.factor = 4.0;
  spec.onset_seq = 10;
  EXPECT_DOUBLE_EQ(spec.multiplier_at(1, 9), 1.0);
  EXPECT_DOUBLE_EQ(spec.multiplier_at(1, 10), 4.0);
  EXPECT_DOUBLE_EQ(spec.multiplier_at(1, 1000), 4.0);
  EXPECT_DOUBLE_EQ(spec.multiplier_at(0, 50), 1.0);  // other device
}

TEST(DegradeSpec, ProgressiveRampsLinearlyToFullFactor) {
  DegradeSpec spec;
  spec.device = 0;
  spec.kind = DegradeKind::kProgressive;
  spec.factor = 5.0;
  spec.onset_seq = 0;
  spec.ramp_batches = 100;
  EXPECT_LT(spec.multiplier_at(0, 0), 1.1);
  EXPECT_NEAR(spec.multiplier_at(0, 49), 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(spec.multiplier_at(0, 99), 5.0);
  EXPECT_DOUBLE_EQ(spec.multiplier_at(0, 500), 5.0);
}

TEST(DegradeSpec, FlappingAlternatesHalfPeriods) {
  DegradeSpec spec;
  spec.device = 0;
  spec.kind = DegradeKind::kFlapping;
  spec.factor = 3.0;
  spec.onset_seq = 0;
  spec.period = 4;
  for (std::uint64_t s = 0; s < 4; ++s) {
    EXPECT_DOUBLE_EQ(spec.multiplier_at(0, s), 3.0) << s;
    EXPECT_DOUBLE_EQ(spec.multiplier_at(0, s + 4), 1.0) << s;
    EXPECT_DOUBLE_EQ(spec.multiplier_at(0, s + 8), 3.0) << s;
  }
}

TEST(DegradeSpec, CombinesMultiplicativelyInThePlan) {
  fleet::FaultPlan plan;
  DegradeSpec a;
  a.device = 0;
  a.factor = 2.0;
  DegradeSpec b;
  b.device = 0;
  b.factor = 3.0;
  plan.degradations = {a, b};
  EXPECT_TRUE(plan.enabled());
  EXPECT_DOUBLE_EQ(plan.degraded_multiplier(0, 5), 6.0);
  EXPECT_DOUBLE_EQ(plan.degraded_multiplier(1, 5), 1.0);
}

// ---------------------------------------------------------------------------
// Fleet integration: the full loop — calibrated placement, silent
// degradation, detection, derate — over real batches.

wsim::workload::Dataset fleet_dataset() {
  wsim::workload::GeneratorConfig cfg;
  cfg.seed = 23;
  cfg.regions = 32;
  cfg.ph_tasks_per_region_mean = 6.0;
  cfg.sw_query_len_min = 40;
  cfg.sw_query_len_max = 90;
  cfg.sw_target_len_min = 60;
  cfg.sw_target_len_max = 120;
  return wsim::workload::generate_dataset(cfg);
}

fleet::FleetStats run_calibrated_fleet(bool degrade) {
  fleet::FleetConfig cfg;
  cfg.workers.push_back({wsim::simt::make_k40(), {}, {}, {}, 8});
  cfg.workers.push_back({wsim::simt::make_k1200(), {}, {}, {}, 8});
  cfg.workers.push_back({wsim::simt::make_titan_x(), {}, {}, {}, 8});
  cfg.policy = fleet::PlacementPolicy::kCalibrated;
  cfg.calibration.enabled = true;
  cfg.calibration.min_samples = 4;
  if (degrade) {
    DegradeSpec spec;
    spec.device = 0;
    spec.kind = DegradeKind::kStuckSlow;
    spec.factor = 4.0;
    spec.onset_seq = 10;
    cfg.faults.degradations.push_back(spec);
  }
  fleet::FleetExecutor executor(std::move(cfg));
  const auto dataset = fleet_dataset();
  // Small batches: enough per-device dispatches for every class to warm
  // up before onset_seq and for the detectors to see the sick tail.
  const auto sw_batches = wsim::workload::sw_rebatch(dataset, 4);
  const auto ph_batches = wsim::workload::ph_rebatch(dataset, 4);
  fleet::ExecOptions opt;
  opt.collect_outputs = false;
  double t = 0.0;
  for (const auto& batch : sw_batches) {
    executor.execute_sw(batch, t, opt);
    t += 40e-6;
  }
  for (const auto& batch : ph_batches) {
    executor.execute_ph(batch, t, opt);
    t += 40e-6;
  }
  return executor.stats();
}

TEST(CalibratedFleet, HealthyFleetRaisesNoDriftAlarms) {
  const auto stats = run_calibrated_fleet(/*degrade=*/false);
  for (const auto& device : stats.devices) {
    EXPECT_EQ(device.drift_suspects, 0u) << device.name;
    EXPECT_EQ(device.derates, 0u) << device.name;
    EXPECT_EQ(device.quarantines, 0u) << device.name;
    EXPECT_EQ(device.drift_state, DriftState::kNominal) << device.name;
  }
}

TEST(CalibratedFleet, SilentlyDegradedDeviceIsDeratedNotQuarantined) {
  const auto stats = run_calibrated_fleet(/*degrade=*/true);
  ASSERT_EQ(stats.devices.size(), 3u);
  EXPECT_GE(stats.devices[0].drift_suspects, 1u);
  EXPECT_GE(stats.devices[0].derates, 1u);
  EXPECT_EQ(stats.devices[0].quarantines, 0u);
  EXPECT_TRUE(stats.devices[0].derated);
  // The learned factor reflects the 4x stretch on top of the healthy
  // model bias: it must clearly exceed every healthy peer's factor (the
  // healthy per-device biases sit within ~2x of each other, the
  // degradation adds 4x on top).
  EXPECT_GT(stats.devices[0].calibration_factor,
            2.0 * stats.devices[1].calibration_factor);
  EXPECT_GT(stats.devices[0].calibration_factor,
            2.0 * stats.devices[2].calibration_factor);
  // Healthy peers stay quiet.
  for (std::size_t d = 1; d < stats.devices.size(); ++d) {
    EXPECT_EQ(stats.devices[d].drift_suspects, 0u) << d;
    EXPECT_EQ(stats.devices[d].derates, 0u) << d;
  }
}

}  // namespace
