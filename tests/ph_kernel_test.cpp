#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "wsim/align/pairhmm.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/util/rng.hpp"
#include "wsim/workload/generator.hpp"

namespace {

using wsim::align::PairHmmTask;
using wsim::kernels::CommMode;
using wsim::kernels::PhBatchResult;
using wsim::kernels::PhRunner;
using wsim::kernels::PhRunOptions;
using wsim::workload::PhBatch;

const wsim::simt::DeviceSpec kDev = wsim::simt::make_k1200();

PhRunOptions with_outputs() {
  PhRunOptions opt;
  opt.collect_outputs = true;
  return opt;
}

PairHmmTask make_task(std::string read, std::string hap, std::uint8_t qual = 30) {
  PairHmmTask task;
  task.read = std::move(read);
  task.hap = std::move(hap);
  task.base_quals.assign(task.read.size(), qual);
  task.ins_quals.assign(task.read.size(), 45);
  task.del_quals.assign(task.read.size(), 45);
  task.gcp = 10;
  return task;
}

std::string random_dna(wsim::util::Rng& rng, int len) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = kBases[rng.uniform_int(0, 3)];
  }
  return s;
}

void expect_matches_reference(const PhBatch& batch, const PhBatchResult& result,
                              const std::string& label) {
  ASSERT_EQ(result.log10.size(), batch.size()) << label;
  for (std::size_t t = 0; t < batch.size(); ++t) {
    const double ref = wsim::align::pairhmm_log10(batch[t]);
    EXPECT_NEAR(result.log10[t], ref, 5e-3 + std::abs(ref) * 1e-3)
        << label << " task " << t;
  }
}

class PhKernelModes : public ::testing::TestWithParam<CommMode> {};

TEST_P(PhKernelModes, PerfectMatchShortRead) {
  const PhRunner runner(GetParam());
  const PhBatch batch = {make_task("ACGTACGTACGTACGT", "ACGTACGTACGTACGT", 40)};
  const PhBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  expect_matches_reference(batch, result, "perfect");
  EXPECT_GT(result.log10[0], -2.0);
}

TEST_P(PhKernelModes, MismatchesAndShifts) {
  const std::string hap = "TTTTTTTTACGTACGTACGTACGTTTTTTTTT";
  std::string read = "ACGTACGTACGTACGT";
  const PhRunner runner(GetParam());
  PhBatch batch;
  batch.push_back(make_task(read, hap, 35));
  read[7] = 'G';
  batch.push_back(make_task(read, hap, 35));
  batch.push_back(make_task("ACGT", "TGCA"));
  const PhBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  expect_matches_reference(batch, result, "shifted");
  EXPECT_GT(result.log10[0], result.log10[1]);
}

TEST_P(PhKernelModes, ReadLengthsAcrossAllVariants) {
  // One read length per kernel variant bucket, including the exact bucket
  // boundaries 32/33/64/65/96/97/127.
  wsim::util::Rng rng(5);
  const PhRunner runner(GetParam());
  PhBatch batch;
  for (const int len : {1, 2, 31, 32, 33, 64, 65, 96, 97, 127}) {
    const std::string hap = random_dna(rng, len + 30);
    std::string read = hap.substr(10, static_cast<std::size_t>(len));
    if (len > 4) {
      read[static_cast<std::size_t>(len / 2)] = 'A';
    }
    batch.push_back(make_task(std::move(read), hap));
  }
  const PhBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  expect_matches_reference(batch, result, "variants");
}

TEST_P(PhKernelModes, HapShorterThanRead) {
  const PhRunner runner(GetParam());
  const PhBatch batch = {make_task("ACGTACGTAA", "ACGTA")};
  const PhBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  expect_matches_reference(batch, result, "short-hap");
}

TEST_P(PhKernelModes, QualityTracksAffectResult) {
  wsim::util::Rng rng(7);
  const PhRunner runner(GetParam());
  const std::string hap = random_dna(rng, 60);
  std::string read = hap.substr(5, 40);
  read[10] = read[10] == 'A' ? 'T' : 'A';
  PairHmmTask varied = make_task(read, hap);
  for (std::size_t i = 0; i < varied.base_quals.size(); ++i) {
    varied.base_quals[i] = static_cast<std::uint8_t>(10 + (i * 7) % 30);
    varied.ins_quals[i] = static_cast<std::uint8_t>(30 + (i * 3) % 15);
    varied.del_quals[i] = static_cast<std::uint8_t>(30 + (i * 5) % 15);
  }
  const PhBatch batch = {varied, make_task(read, hap)};
  const PhBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  expect_matches_reference(batch, result, "qualities");
  EXPECT_NE(result.log10[0], result.log10[1]);
}

TEST_P(PhKernelModes, RandomizedPropertySweep) {
  wsim::util::Rng rng(0xBEEF);
  const PhRunner runner(GetParam());
  PhBatch batch;
  for (int t = 0; t < 10; ++t) {
    const int hap_len = static_cast<int>(rng.uniform_int(8, 140));
    const std::string hap = random_dna(rng, hap_len);
    const int read_len = static_cast<int>(
        std::min<std::int64_t>(rng.uniform_int(2, 127), hap_len));
    const auto start =
        static_cast<std::size_t>(rng.uniform_int(0, hap_len - read_len));
    std::string read = hap.substr(start, static_cast<std::size_t>(read_len));
    for (char& ch : read) {
      if (rng.uniform01() < 0.03) {
        ch = "ACGT"[rng.uniform_int(0, 3)];
      }
    }
    batch.push_back(make_task(std::move(read), hap,
                              static_cast<std::uint8_t>(rng.uniform_int(15, 40))));
  }
  const PhBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  expect_matches_reference(batch, result, "random");
}

INSTANTIATE_TEST_SUITE_P(Designs, PhKernelModes,
                         ::testing::Values(CommMode::kSharedMemory,
                                           CommMode::kShuffle),
                         [](const ::testing::TestParamInfo<CommMode>& info) {
                           return info.param == CommMode::kSharedMemory ? "PH1"
                                                                        : "PH2";
                         });

// --- design-level expectations --------------------------------------------

TEST(PhKernelDesign, BothDesignsAgreeOnWorkloadTasks) {
  wsim::workload::GeneratorConfig cfg;
  cfg.regions = 1;
  cfg.ph_tasks_per_region_mean = 12.0;
  const auto ds = wsim::workload::generate_dataset(cfg);
  PhBatch batch = ds.regions[0].ph_tasks;
  if (batch.size() > 12) {
    batch.resize(12);
  }
  const auto r1 = PhRunner(CommMode::kSharedMemory).run_batch(kDev, batch, with_outputs());
  const auto r2 = PhRunner(CommMode::kShuffle).run_batch(kDev, batch, with_outputs());
  expect_matches_reference(batch, r1, "ph1");
  expect_matches_reference(batch, r2, "ph2");
}

TEST(PhKernelDesign, ShuffleUsesNoSharedMemoryOrBarriers) {
  const PhRunner runner(CommMode::kShuffle);
  for (std::size_t len : {16U, 48U, 80U, 112U}) {
    const auto& kernel = runner.kernel_for_read_len(len);
    EXPECT_EQ(kernel.smem_bytes, 0);
    for (const auto& ins : kernel.code) {
      EXPECT_NE(ins.op, wsim::simt::Op::kBar);
    }
  }
}

TEST(PhKernelDesign, SharedVariantsScaleLineBuffers) {
  const PhRunner runner(CommMode::kSharedMemory);
  EXPECT_EQ(runner.kernel_for_read_len(16).smem_bytes, 9 * 32 * 4);
  EXPECT_EQ(runner.kernel_for_read_len(100).smem_bytes, 9 * 128 * 4);
  EXPECT_EQ(runner.kernel_for_read_len(16).threads_per_block, 32);
  EXPECT_EQ(runner.kernel_for_read_len(100).threads_per_block, 128);
}

TEST(PhKernelDesign, RegisterBlockingRaisesRegisterUse) {
  // The paper's PH2 trade-off: more cells per thread -> more registers.
  const auto c1 = wsim::kernels::build_ph_shuffle_kernel(1);
  const auto c4 = wsim::kernels::build_ph_shuffle_kernel(4);
  EXPECT_GT(c4.vreg_count, 2 * c1.vreg_count);
}

TEST(PhKernelDesign, ShuffleDropsOccupancyButWinsThroughput) {
  // Table II shape: PH2 occupancy falls below PH1 (register limited), yet
  // on a saturated device PH2 delivers higher GCUPS because it retires
  // fewer instructions per cell (the latency/parallelism trade-off the
  // paper analyzes).
  wsim::util::Rng rng(17);
  const std::string hap = random_dna(rng, 120);
  std::string read = hap.substr(0, 120);
  PhBatch batch(64, make_task(std::move(read), hap));
  const PhRunner ph1(CommMode::kSharedMemory);
  const PhRunner ph2(CommMode::kShuffle);
  PhRunOptions opt;
  opt.mode = wsim::simt::ExecMode::kCachedByShape;
  const auto r1 = ph1.run_batch(kDev, batch, opt);
  const auto r2 = ph2.run_batch(kDev, batch, opt);
  EXPECT_LT(r2.run.launch.occupancy.fraction, r1.run.launch.occupancy.fraction);
  EXPECT_EQ(r2.run.launch.occupancy.limiter,
            wsim::simt::Occupancy::Limiter::kRegisters);
  // PH2 issues fewer warp instructions for the same cells...
  EXPECT_LT(r2.run.launch.instructions, r1.run.launch.instructions);
  // ...and wins end to end once the SMs are saturated.
  EXPECT_GT(r2.run.gcups_kernel(), r1.run.gcups_kernel());
}

TEST(PhKernelDesign, VariantRouting) {
  EXPECT_EQ(PhRunner::variant_for_read_len(1), 0);
  EXPECT_EQ(PhRunner::variant_for_read_len(32), 0);
  EXPECT_EQ(PhRunner::variant_for_read_len(33), 1);
  EXPECT_EQ(PhRunner::variant_for_read_len(96), 2);
  EXPECT_EQ(PhRunner::variant_for_read_len(97), 3);
  EXPECT_EQ(PhRunner::variant_for_read_len(128), 3);
  EXPECT_THROW(PhRunner::variant_for_read_len(0), wsim::util::CheckError);
  EXPECT_THROW(PhRunner::variant_for_read_len(129), wsim::util::CheckError);
}

TEST(PhKernelDesign, MixedBatchSplitsAcrossVariants) {
  wsim::util::Rng rng(19);
  const PhRunner runner(CommMode::kShuffle);
  PhBatch batch;
  for (const int len : {20, 50, 90, 120}) {
    const std::string hap = random_dna(rng, len + 10);
    batch.push_back(make_task(hap.substr(0, static_cast<std::size_t>(len)), hap));
  }
  const PhBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  expect_matches_reference(batch, result, "mixed");
  // Four variants -> four launches -> four launch overheads.
  EXPECT_NEAR(result.run.launch.overhead_seconds,
              4 * kDev.kernel_launch_overhead_us * 1e-6, 1e-9);
}

}  // namespace
