#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "wsim/fleet/fault.hpp"
#include "wsim/fleet/fleet.hpp"
#include "wsim/fleet/router.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/serve/service.hpp"
#include "wsim/util/check.hpp"
#include "wsim/workload/batching.hpp"
#include "wsim/workload/generator.hpp"

namespace {

namespace fleet = wsim::fleet;
using fleet::FleetConfig;
using fleet::FleetExecutor;
using fleet::PlacementPolicy;
using fleet::WorkerConfig;

wsim::workload::Dataset small_dataset(std::uint64_t seed = 11) {
  wsim::workload::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.regions = 3;
  cfg.ph_tasks_per_region_mean = 6.0;
  cfg.sw_query_len_min = 40;
  cfg.sw_query_len_max = 90;
  cfg.sw_target_len_min = 60;
  cfg.sw_target_len_max = 120;
  return wsim::workload::generate_dataset(cfg);
}

FleetConfig heterogeneous_config() {
  FleetConfig cfg;
  cfg.workers.push_back({wsim::simt::make_k40(), {}, {}, {}, 8});
  cfg.workers.push_back({wsim::simt::make_k1200(), {}, {}, {}, 8});
  cfg.workers.push_back({wsim::simt::make_titan_x(), {}, {}, {}, 8});
  return cfg;
}

// ---------------------------------------------------------------------------
// Policy name lookup (CLI surface).

TEST(FleetPolicy, ByNameRoundTrips) {
  EXPECT_EQ(fleet::placement_policy_by_name("rr"), PlacementPolicy::kRoundRobin);
  EXPECT_EQ(fleet::placement_policy_by_name("round-robin"),
            PlacementPolicy::kRoundRobin);
  EXPECT_EQ(fleet::placement_policy_by_name("least-cells"),
            PlacementPolicy::kLeastOutstandingCells);
  EXPECT_EQ(fleet::placement_policy_by_name("model"),
            PlacementPolicy::kModelGuided);
  for (const auto policy :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kLeastOutstandingCells,
        PlacementPolicy::kModelGuided}) {
    EXPECT_EQ(fleet::placement_policy_by_name(fleet::to_string(policy)), policy);
  }
}

TEST(FleetPolicy, UnknownNameListsValidOnes) {
  try {
    fleet::placement_policy_by_name("speediest");
    FAIL() << "expected CheckError";
  } catch (const wsim::util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("speediest"), std::string::npos);
    EXPECT_NE(what.find("rr"), std::string::npos);
    EXPECT_NE(what.find("least-cells"), std::string::npos);
    EXPECT_NE(what.find("model"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Router: the model predicts shuffle wins on every paper device (Table II),
// and predictions order the devices by capability.

TEST(FleetRouter, PicksShuffleOnPaperDevices) {
  for (const auto& device : wsim::simt::all_devices()) {
    const auto choice = fleet::pick_variants(device);
    EXPECT_EQ(choice.sw_design, wsim::kernels::CommMode::kShuffle) << device.name;
    EXPECT_GT(choice.sw_gcups, 0.0) << device.name;
    EXPECT_GT(choice.ph_gcups, 0.0) << device.name;
  }
  const auto k1200 = fleet::pick_variants(wsim::simt::make_k1200());
  const auto titan = fleet::pick_variants(wsim::simt::make_titan_x());
  EXPECT_GT(titan.sw_gcups, k1200.sw_gcups);
  EXPECT_GT(titan.ph_gcups, k1200.ph_gcups);
}

TEST(FleetRouter, PredictedBatchSecondsScalesWithCells) {
  const auto device = wsim::simt::make_k1200();
  const double small = fleet::predicted_batch_seconds(device, 50.0, 1'000'000);
  const double large = fleet::predicted_batch_seconds(device, 50.0, 10'000'000);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
}

// ---------------------------------------------------------------------------
// Determinism: identical configuration (including an active FaultPlan)
// replays to identical placements, timings, and counters.

TEST(Fleet, DeterministicReplay) {
  const auto dataset = small_dataset();
  const auto sw_batches = wsim::workload::sw_rebatch(dataset, 8);
  const auto ph_batches = wsim::workload::ph_rebatch(dataset, 8);

  const auto run = [&](std::vector<fleet::Execution>& execs) {
    FleetConfig cfg = heterogeneous_config();
    cfg.policy = PlacementPolicy::kModelGuided;
    cfg.faults.seed = 7;
    cfg.faults.launch_failure_prob = 0.2;
    cfg.faults.slowdown_prob = 0.2;
    FleetExecutor executor(std::move(cfg));
    fleet::ExecOptions opt;
    opt.collect_outputs = false;
    double t = 0.0;
    for (const auto& batch : sw_batches) {
      execs.push_back(executor.execute_sw(batch, t, opt).exec);
      t += 40e-6;
    }
    for (const auto& batch : ph_batches) {
      execs.push_back(executor.execute_ph(batch, t, opt).exec);
      t += 40e-6;
    }
    return executor.stats();
  };

  std::vector<fleet::Execution> first_execs;
  std::vector<fleet::Execution> second_execs;
  const auto first = run(first_execs);
  const auto second = run(second_execs);

  ASSERT_EQ(first_execs.size(), second_execs.size());
  for (std::size_t i = 0; i < first_execs.size(); ++i) {
    EXPECT_EQ(first_execs[i].device_index, second_execs[i].device_index) << i;
    EXPECT_EQ(first_execs[i].attempts, second_execs[i].attempts) << i;
    EXPECT_DOUBLE_EQ(first_execs[i].start_time, second_execs[i].start_time) << i;
    EXPECT_DOUBLE_EQ(first_execs[i].completion_time,
                     second_execs[i].completion_time)
        << i;
  }
  EXPECT_EQ(first.dispatches, second.dispatches);
  EXPECT_EQ(first.retries, second.retries);
  EXPECT_EQ(first.requeues, second.requeues);
  ASSERT_EQ(first.devices.size(), second.devices.size());
  for (std::size_t d = 0; d < first.devices.size(); ++d) {
    EXPECT_EQ(first.devices[d].batches, second.devices[d].batches) << d;
    EXPECT_DOUBLE_EQ(first.devices[d].busy_seconds, second.devices[d].busy_seconds)
        << d;
  }
}

// ---------------------------------------------------------------------------
// Acceptance: fleet results are bit-identical to single-device execution —
// including under an active FaultPlan. Placement, retries, and slowdowns
// move time, not values.

TEST(Fleet, ResultsBitIdenticalToDirectExecutionUnderFaults) {
  const auto dataset = small_dataset();
  const auto sw_batches = wsim::workload::sw_rebatch(dataset, 6);
  const auto ph_batches = wsim::workload::ph_rebatch(dataset, 6);

  FleetConfig cfg = heterogeneous_config();
  cfg.policy = PlacementPolicy::kModelGuided;
  cfg.faults.seed = 3;
  cfg.faults.launch_failure_prob = 0.25;
  cfg.faults.slowdown_prob = 0.6;
  cfg.retry.max_attempts = 16;
  FleetExecutor executor(std::move(cfg));

  // Reference: one fixed device and design, no fleet, no faults.
  const auto device = wsim::simt::make_k1200();
  const wsim::kernels::SwRunner sw_runner(wsim::kernels::CommMode::kSharedMemory);
  const wsim::kernels::PhRunner ph_runner(wsim::kernels::PhDesign::kShared);

  double t = 0.0;
  for (const auto& batch : sw_batches) {
    const auto executed = executor.execute_sw(batch, t, {});
    wsim::kernels::SwRunOptions opt;
    opt.collect_outputs = true;
    const auto direct = sw_runner.run_batch(device, batch, opt);
    ASSERT_EQ(executed.result.outputs.size(), direct.outputs.size());
    for (std::size_t i = 0; i < direct.outputs.size(); ++i) {
      EXPECT_EQ(executed.result.outputs[i].best_score,
                direct.outputs[i].best_score)
          << i;
      EXPECT_EQ(executed.result.outputs[i].alignment.cigar,
                direct.outputs[i].alignment.cigar)
          << i;
    }
    t += 30e-6;
  }
  for (const auto& batch : ph_batches) {
    const auto executed = executor.execute_ph(batch, t, {});
    wsim::kernels::PhRunOptions opt;
    opt.collect_outputs = true;
    const auto direct = ph_runner.run_batch(device, batch, opt);
    ASSERT_EQ(executed.result.log10.size(), direct.log10.size());
    for (std::size_t i = 0; i < direct.log10.size(); ++i) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(executed.result.log10[i], direct.log10[i]) << i;
    }
    t += 30e-6;
  }

  // The faults were actually active: some attempts failed and retried.
  const auto stats = executor.stats();
  EXPECT_GT(stats.retries, 0U);
  std::size_t failures = 0;
  std::size_t slowdowns = 0;
  for (const auto& d : stats.devices) {
    failures += d.launch_failures;
    slowdowns += d.slowdowns;
  }
  EXPECT_EQ(failures, stats.retries);
  EXPECT_GT(slowdowns, 0U);
}

// ---------------------------------------------------------------------------
// Acceptance: on a heterogeneous fleet with skewed batch costs, the
// model-guided policy beats round-robin in makespan and leaves a smaller
// per-device busy-time skew.

TEST(Fleet, ModelGuidedBeatsRoundRobinOnHeterogeneousFleet) {
  wsim::workload::GeneratorConfig gen;
  gen.seed = 5;
  gen.regions = 6;
  gen.sw_query_len_min = 32;
  gen.sw_query_len_max = 320;
  gen.sw_target_len_min = 64;
  gen.sw_target_len_max = 512;
  gen.ph_tasks_per_region_mean = 30.0;
  const auto dataset = wsim::workload::generate_dataset(gen);
  const auto sw_batches = wsim::workload::sw_rebatch(dataset, 16);
  const auto ph_batches = wsim::workload::ph_rebatch(dataset, 16);

  const auto run = [&](PlacementPolicy policy, fleet::FleetStats& stats) {
    FleetConfig cfg = heterogeneous_config();
    for (auto& worker : cfg.workers) {
      worker.max_pending_batches = 1U << 20U;  // the policy alone decides
    }
    cfg.policy = policy;
    FleetExecutor executor(std::move(cfg));
    fleet::ExecOptions opt;
    opt.collect_outputs = false;
    for (const auto& batch : sw_batches) {
      (void)executor.execute_sw(batch, 0.0, opt);
    }
    for (const auto& batch : ph_batches) {
      (void)executor.execute_ph(batch, 0.0, opt);
    }
    stats = executor.stats();
    return executor.all_free_at();
  };

  fleet::FleetStats rr_stats;
  fleet::FleetStats model_stats;
  const double rr_makespan = run(PlacementPolicy::kRoundRobin, rr_stats);
  const double model_makespan = run(PlacementPolicy::kModelGuided, model_stats);

  EXPECT_GT(rr_makespan, 0.0);
  EXPECT_LT(model_makespan, rr_makespan);
  EXPECT_LT(model_stats.busy_skew(), rr_stats.busy_skew());
  // Both policies executed the exact same work.
  EXPECT_EQ(model_stats.total_cells(), rr_stats.total_cells());
  EXPECT_EQ(model_stats.dispatches, rr_stats.dispatches);
}

// ---------------------------------------------------------------------------
// Least-outstanding-cells keeps identical devices balanced.

TEST(Fleet, LeastCellsBalancesHomogeneousFleet) {
  const auto dataset = small_dataset(17);
  const auto ph_batches = wsim::workload::ph_rebatch(dataset, 6);
  ASSERT_GE(ph_batches.size(), 2U);

  FleetConfig cfg;
  cfg.workers.push_back({wsim::simt::make_k1200(), {}, {}, {}, 1U << 20U});
  cfg.workers.push_back({wsim::simt::make_k1200(), {}, {}, {}, 1U << 20U});
  cfg.policy = PlacementPolicy::kLeastOutstandingCells;
  FleetExecutor executor(std::move(cfg));
  fleet::ExecOptions opt;
  opt.collect_outputs = false;

  std::size_t max_batch_cells = 0;
  for (const auto& batch : ph_batches) {
    max_batch_cells = std::max(max_batch_cells, wsim::workload::batch_cells(batch));
    (void)executor.execute_ph(batch, 0.0, opt);
  }
  const auto stats = executor.stats();
  ASSERT_EQ(stats.devices.size(), 2U);
  const std::size_t a = stats.devices[0].cells;
  const std::size_t b = stats.devices[1].cells;
  // Greedy balance bound: the gap never exceeds one batch.
  EXPECT_LE(a > b ? a - b : b - a, max_batch_cells);
  EXPECT_GT(stats.devices[0].batches, 0U);
  EXPECT_GT(stats.devices[1].batches, 0U);
}

// ---------------------------------------------------------------------------
// Retry accounting and failure semantics.

TEST(Fleet, RetryAccountingAndRequeues) {
  const auto dataset = small_dataset(23);
  const auto ph_batches = wsim::workload::ph_rebatch(dataset, 4);

  FleetConfig cfg = heterogeneous_config();
  cfg.policy = PlacementPolicy::kRoundRobin;
  cfg.faults.seed = 9;
  cfg.faults.launch_failure_prob = 0.4;
  cfg.retry.max_attempts = 32;
  FleetExecutor executor(std::move(cfg));
  fleet::ExecOptions opt;
  opt.collect_outputs = false;

  std::vector<fleet::Execution> execs;
  double t = 0.0;
  for (const auto& batch : ph_batches) {
    execs.push_back(executor.execute_ph(batch, t, opt).exec);
    t += 20e-6;
  }
  const auto stats = executor.stats();
  EXPECT_EQ(stats.dispatches, ph_batches.size());
  EXPECT_GT(stats.retries, 0U);
  // A retry excludes the failed device, so with 3 devices every retried
  // batch lands elsewhere: requeues track retried batches.
  EXPECT_GT(stats.requeues, 0U);
  EXPECT_LE(stats.requeues, stats.retries);
  // Attempts reported per execution sum to dispatches + retries.
  std::size_t attempts = 0;
  for (const auto& exec : execs) {
    EXPECT_GE(exec.attempts, 1);
    EXPECT_DOUBLE_EQ(exec.completion_time,
                     exec.start_time + exec.service_seconds);
    attempts += static_cast<std::size_t>(exec.attempts);
  }
  EXPECT_EQ(attempts, stats.dispatches + stats.retries);
}

TEST(Fleet, ThrowsAfterMaxAttempts) {
  const auto dataset = small_dataset(29);
  const auto ph_batches = wsim::workload::ph_rebatch(dataset, 4);
  ASSERT_FALSE(ph_batches.empty());

  FleetConfig cfg = heterogeneous_config();
  cfg.faults.seed = 1;
  cfg.faults.launch_failure_prob = 1.0;  // every attempt fails
  cfg.retry.max_attempts = 4;
  FleetExecutor executor(std::move(cfg));
  fleet::ExecOptions opt;
  opt.collect_outputs = false;
  EXPECT_THROW((void)executor.execute_ph(ph_batches.front(), 0.0, opt),
               wsim::util::CheckError);
  EXPECT_EQ(executor.stats().dispatches, 0U);
}

TEST(Fleet, RejectsEmptyAndInvalidConfigs) {
  EXPECT_THROW(FleetExecutor(FleetConfig{}), wsim::util::CheckError);
  FleetConfig zero_retry = heterogeneous_config();
  zero_retry.retry.max_attempts = 0;
  EXPECT_THROW(FleetExecutor(std::move(zero_retry)), wsim::util::CheckError);
  FleetConfig zero_queue = heterogeneous_config();
  zero_queue.workers[0].max_pending_batches = 0;
  EXPECT_THROW(FleetExecutor(std::move(zero_queue)), wsim::util::CheckError);
}

// ---------------------------------------------------------------------------
// Serving over a fleet: the service's responses stay bit-identical to the
// single-device service, and fleet busy time feeds the service stats.

TEST(Fleet, ServiceOverFleetMatchesSingleDeviceService) {
  const auto dataset = small_dataset(31);
  const auto ph_tasks = wsim::workload::ph_all_tasks(dataset);
  ASSERT_FALSE(ph_tasks.empty());

  const auto run_service = [&](wsim::serve::ServiceConfig cfg) {
    wsim::serve::AlignmentService service(std::move(cfg));
    std::vector<wsim::serve::Ticket<wsim::serve::PairHmmResponse>> tickets;
    double t = 0.0;
    for (const auto& task : ph_tasks) {
      service.advance_to(t);
      const auto submit = service.submit(
          wsim::serve::PairHmmRequest{task, wsim::serve::Priority::kNormal,
                                      {}, {}, {}});
      EXPECT_TRUE(submit.admitted());
      tickets.push_back(submit.ticket);
      t += 25e-6;
    }
    service.drain();
    std::vector<double> log10;
    log10.reserve(tickets.size());
    for (auto& ticket : tickets) {
      EXPECT_TRUE(ticket.ready());
      log10.push_back(ticket.get().log10);
    }
    return std::make_pair(log10, service.stats());
  };

  FleetConfig fleet_cfg = heterogeneous_config();
  // Round-robin so the light trickle of batches provably spreads across
  // devices (model-guided would park it all on the always-free Titan X).
  fleet_cfg.policy = PlacementPolicy::kRoundRobin;
  fleet_cfg.faults.seed = 13;
  fleet_cfg.faults.launch_failure_prob = 0.15;
  fleet_cfg.faults.slowdown_prob = 0.15;
  FleetExecutor executor(std::move(fleet_cfg));
  wsim::serve::ServiceConfig over_fleet;
  over_fleet.fleet = &executor;
  const auto [fleet_log10, fleet_stats] = run_service(std::move(over_fleet));

  wsim::serve::ServiceConfig single;
  single.device = wsim::simt::make_k1200();
  const auto [single_log10, single_stats] = run_service(std::move(single));

  ASSERT_EQ(fleet_log10.size(), single_log10.size());
  for (std::size_t i = 0; i < fleet_log10.size(); ++i) {
    EXPECT_EQ(fleet_log10[i], single_log10[i]) << i;  // bit-identical
  }
  EXPECT_EQ(fleet_stats.completed(), single_stats.completed());

  // The service accounted the fleet's busy time, and the fleet saw work on
  // more than one device.
  const auto executor_stats = executor.stats();
  EXPECT_NEAR(fleet_stats.device_busy_seconds,
              executor_stats.total_busy_seconds(), 1e-12);
  std::size_t devices_used = 0;
  for (const auto& d : executor_stats.devices) {
    devices_used += d.batches > 0 ? 1 : 0;
  }
  EXPECT_GE(devices_used, 2U);
}

}  // namespace
