#include <gtest/gtest.h>

#include "wsim/simt/device.hpp"
#include "wsim/util/check.hpp"

namespace {

using wsim::simt::Arch;
using wsim::simt::DeviceSpec;

// Table I of the paper: computation vs. memory-system bandwidth gap.
TEST(Device, TableIGflopsK1200) {
  const DeviceSpec dev = wsim::simt::make_k1200();
  EXPECT_NEAR(dev.peak_gflops(), 1057.0, 15.0);
}

TEST(Device, TableIGflopsTitanX) {
  const DeviceSpec dev = wsim::simt::make_titan_x();
  EXPECT_NEAR(dev.peak_gflops(), 6611.0, 30.0);
}

TEST(Device, TableISharedMemBandwidth) {
  EXPECT_NEAR(wsim::simt::make_k1200().shared_mem_bw_gbps(), 550.0, 30.0);
  EXPECT_NEAR(wsim::simt::make_titan_x().shared_mem_bw_gbps(), 3302.0, 30.0);
}

TEST(Device, TableIGlobalMemBandwidth) {
  EXPECT_DOUBLE_EQ(wsim::simt::make_k1200().global_mem_bw_gbps, 80.0);
  EXPECT_DOUBLE_EQ(wsim::simt::make_titan_x().global_mem_bw_gbps, 336.5);
}

TEST(Device, SharedMemBandwidthDwarfsGlobal) {
  for (const DeviceSpec& dev : wsim::simt::all_devices()) {
    EXPECT_GT(dev.shared_mem_bw_gbps(), 1.5 * dev.global_mem_bw_gbps) << dev.name;
  }
}

// Paper Section II-B: shuffle latency sits between register and shared
// memory access on every architecture.
TEST(Device, ShuffleLatencyBetweenRegisterAndSharedMem) {
  for (const DeviceSpec& dev : wsim::simt::all_devices()) {
    for (int variant = 0; variant < 4; ++variant) {
      const int shfl = dev.shuffle_latency(variant);
      EXPECT_GT(shfl, dev.lat.reg_access) << dev.name << " variant " << variant;
      EXPECT_LT(shfl, dev.lat.smem_load) << dev.name << " variant " << variant;
    }
  }
}

// Paper Fig. 3: shfl_xor is the slowest variant on Maxwell but the fastest
// on Kepler.
TEST(Device, ShflXorInvertsAcrossArchitectures) {
  const DeviceSpec k40 = wsim::simt::make_k40();
  const DeviceSpec k1200 = wsim::simt::make_k1200();
  for (int variant = 0; variant < 3; ++variant) {
    EXPECT_LE(k40.lat.shfl_xor, k40.shuffle_latency(variant));
    EXPECT_GE(k1200.lat.shfl_xor, k1200.shuffle_latency(variant));
  }
}

TEST(Device, MaxwellLatenciesMatchPaperMeasurements) {
  const DeviceSpec dev = wsim::simt::make_k1200();
  EXPECT_EQ(dev.lat.smem_load, 21);   // "shared access takes around 21 cycles"
  EXPECT_EQ(dev.lat.sync_barrier, 57);  // "syncthreads takes 57 cycles"
  EXPECT_EQ(dev.lat.shfl, 9);  // from the 22-cycle SW2 estimate
  EXPECT_EQ(dev.lat.reg_access, 1);
}

TEST(Device, KeplerIsUniformlySlower) {
  const auto kepler = wsim::simt::make_k40().lat;
  const auto maxwell = wsim::simt::make_k1200().lat;
  EXPECT_GT(kepler.shfl, maxwell.shfl);
  EXPECT_GT(kepler.smem_load, maxwell.smem_load);
  EXPECT_GT(kepler.sync_barrier, maxwell.sync_barrier);
}

TEST(Device, BothMaxwellDevicesShareLatencyTable) {
  const auto a = wsim::simt::make_k1200().lat;
  const auto b = wsim::simt::make_titan_x().lat;
  EXPECT_EQ(a.shfl, b.shfl);
  EXPECT_EQ(a.shfl_xor, b.shfl_xor);
  EXPECT_EQ(a.smem_load, b.smem_load);
  EXPECT_EQ(a.sync_barrier, b.sync_barrier);
}

TEST(Device, LookupByName) {
  EXPECT_EQ(wsim::simt::device_by_name("K40").arch, Arch::kKepler);
  EXPECT_EQ(wsim::simt::device_by_name("Titan X").sm_count, 24);
  EXPECT_THROW(wsim::simt::device_by_name("GTX 9000"), wsim::util::CheckError);
}

// The unknown-name error names every valid device, so a CLI typo is
// self-correcting.
TEST(Device, UnknownNameErrorListsValidDevices) {
  try {
    wsim::simt::device_by_name("GTX 9000");
    FAIL() << "expected CheckError";
  } catch (const wsim::util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("GTX 9000"), std::string::npos) << what;
    for (const auto& dev : wsim::simt::all_devices()) {
      EXPECT_NE(what.find("'" + dev.name + "'"), std::string::npos)
          << dev.name << " missing from: " << what;
    }
  }
}

TEST(Device, ShuffleLatencyRejectsBadVariant) {
  const DeviceSpec dev = wsim::simt::make_k1200();
  EXPECT_THROW(dev.shuffle_latency(4), wsim::util::CheckError);
  EXPECT_THROW(dev.shuffle_latency(-1), wsim::util::CheckError);
}

TEST(Device, ArchToString) {
  EXPECT_EQ(wsim::simt::to_string(Arch::kKepler), "Kepler");
  EXPECT_EQ(wsim::simt::to_string(Arch::kMaxwell), "Maxwell");
}

}  // namespace
