#include "wsim/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

using wsim::util::ThreadPool;

TEST(ThreadPool, ResolvePicksHardwareConcurrencyForNonPositive) {
  EXPECT_GE(ThreadPool::resolve(0), 1);
  EXPECT_GE(ThreadPool::resolve(-3), 1);
  EXPECT_EQ(ThreadPool::resolve(5), 5);
  EXPECT_EQ(ThreadPool::resolve(1), 1);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool one(1);
  EXPECT_EQ(one.size(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  for (const int threads : {1, 2, 7}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << ", " << threads << " threads";
    }
  }
}

TEST(ThreadPool, ZeroIterationsIsANoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ResultsIndependentOfExecutionOrder) {
  // Slot-indexed output: any interleaving must produce the sequential
  // result bit for bit.
  constexpr std::size_t kN = 257;
  std::vector<long long> sequential(kN);
  ThreadPool one(1);
  one.parallel_for(kN, [&](std::size_t i) {
    sequential[i] = static_cast<long long>(i * i * 31 + i);
  });
  for (const int threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    for (int round = 0; round < 5; ++round) {
      std::vector<long long> parallel(kN, -1);
      pool.parallel_for(kN, [&](std::size_t i) {
        parallel[i] = static_cast<long long>(i * i * 31 + i);
      });
      EXPECT_EQ(parallel, sequential) << threads << " threads, round " << round;
    }
  }
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  ThreadPool pool(4);
  const auto run = [&]() {
    pool.parallel_for(100, [&](std::size_t i) {
      if (i == 23 || i == 71) {
        throw std::runtime_error("boom at " + std::to_string(i));
      }
    });
  };
  try {
    run();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Matches what a sequential loop would have thrown first.
    EXPECT_STREQ(e.what(), "boom at 23");
  }
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(10, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  long long total = 0;
  for (int job = 0; job < 200; ++job) {
    std::atomic<long long> sum{0};
    pool.parallel_for(16, [&](std::size_t i) {
      sum.fetch_add(static_cast<long long>(i));
    });
    total += sum.load();
  }
  EXPECT_EQ(total, 200LL * (15 * 16 / 2));
}

}  // namespace
