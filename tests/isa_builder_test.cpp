#include <gtest/gtest.h>

#include "wsim/simt/builder.hpp"
#include "wsim/simt/isa.hpp"
#include "wsim/util/check.hpp"

namespace {

using wsim::simt::imm_i64;
using wsim::simt::Kernel;
using wsim::simt::KernelBuilder;
using wsim::simt::Op;
using wsim::simt::Operand;
using wsim::simt::VReg;
using wsim::util::CheckError;

TEST(Builder, RequiresWarpMultipleThreads) {
  EXPECT_THROW(KernelBuilder("bad", 33), CheckError);
  EXPECT_THROW(KernelBuilder("bad", 0), CheckError);
  EXPECT_NO_THROW(KernelBuilder("ok", 128));
}

TEST(Builder, SmemAllocationAlignsAndAccumulates) {
  KernelBuilder kb("smem", 32);
  EXPECT_EQ(kb.alloc_smem(6, 4), 0);
  EXPECT_EQ(kb.alloc_smem(4, 4), 8);  // 6 rounded up to 8
  EXPECT_EQ(kb.alloc_smem(4, 16), 16);
  kb.mov(imm_i64(0));
  const Kernel k = kb.build();
  EXPECT_EQ(k.smem_bytes, 20);
}

TEST(Builder, SmemAllocationRejectsBadArgs) {
  KernelBuilder kb("smem", 32);
  EXPECT_THROW(kb.alloc_smem(0), CheckError);
  EXPECT_THROW(kb.alloc_smem(4, 3), CheckError);
}

TEST(Builder, ScalarParamsNumberInOrder) {
  KernelBuilder kb("params", 32);
  EXPECT_EQ(kb.param().id, 0);
  EXPECT_EQ(kb.param().id, 1);
  EXPECT_EQ(kb.sreg().id, 2);
}

TEST(Builder, UnbalancedLoopRejected) {
  KernelBuilder kb("loop", 32);
  kb.loop(imm_i64(4));
  EXPECT_THROW(kb.build(), CheckError);
}

TEST(Builder, EndLoopWithoutLoopRejected) {
  KernelBuilder kb("loop", 32);
  EXPECT_THROW(kb.endloop(), CheckError);
}

TEST(Builder, LoopTripMustBeUniform) {
  KernelBuilder kb("loop", 32);
  const VReg v = kb.tid();
  EXPECT_THROW(kb.loop(v), CheckError);
}

TEST(Builder, PredicationMustBeClosed) {
  KernelBuilder kb("pred", 32);
  const VReg p = kb.setp(wsim::simt::Cmp::kLt, wsim::simt::DType::kI64, kb.tid(),
                         imm_i64(4));
  kb.begin_pred(p);
  kb.mov(imm_i64(1));
  EXPECT_THROW(kb.build(), CheckError);
}

TEST(Builder, NestedPredicationRejected) {
  KernelBuilder kb("pred", 32);
  const VReg p = kb.setp(wsim::simt::Cmp::kLt, wsim::simt::DType::kI64, kb.tid(),
                         imm_i64(4));
  kb.begin_pred(p);
  EXPECT_THROW(kb.begin_pred(p), CheckError);
}

TEST(Builder, BuildIsSingleUse) {
  KernelBuilder kb("once", 32);
  kb.mov(imm_i64(0));
  kb.build();
  EXPECT_THROW(kb.build(), CheckError);
}

// --- register allocator behaviour ---------------------------------------

TEST(RegisterAllocator, SequentialTemporariesReuseOneRegister) {
  KernelBuilder kb("reuse", 32);
  // Ten dead-on-arrival temporaries plus a final live one: consecutive
  // disjoint live ranges must map onto very few physical registers.
  const VReg base = kb.tid();
  VReg last = base;
  for (int i = 0; i < 10; ++i) {
    last = kb.iadd(base, imm_i64(i));
  }
  kb.stg(kb.imul(last, imm_i64(4)), last);
  const Kernel k = kb.build();
  EXPECT_LE(k.vreg_count, 4);
}

TEST(RegisterAllocator, SimultaneouslyLiveValuesGetDistinctRegisters) {
  KernelBuilder kb("live", 32);
  const VReg a = kb.mov(imm_i64(1));
  const VReg b = kb.mov(imm_i64(2));
  const VReg c = kb.mov(imm_i64(3));
  const VReg sum = kb.iadd(kb.iadd(a, b), c);
  kb.stg(kb.mov(imm_i64(0)), sum);
  const Kernel k = kb.build();
  EXPECT_GE(k.vreg_count, 3);
}

TEST(RegisterAllocator, LoopCarriedValueSurvivesWholeLoop) {
  // reg2/reg3 rotation inside a loop: the rotated registers are read at
  // the top of each iteration and written at the bottom, so they must not
  // be coalesced with body temporaries.
  KernelBuilder kb("carry", 32);
  const VReg reg2 = kb.mov(imm_i64(5));
  const VReg reg3 = kb.mov(imm_i64(7));
  kb.loop(imm_i64(8));
  const VReg up = kb.shfl_up(reg2, imm_i64(1));
  const VReg diag = kb.shfl_up(reg3, imm_i64(1));
  const VReg cur = kb.iadd(up, diag);
  kb.assign(reg3, reg2);
  kb.assign(reg2, cur);
  kb.endloop();
  kb.stg(kb.mov(imm_i64(0)), reg2);
  const Kernel k = kb.build();
  // reg2, reg3, cur and the two shuffle results overlap inside the loop.
  EXPECT_GE(k.vreg_count, 3);

  // Functional spot check happens in interpreter_test; here we only check
  // that validation passes on the rewritten code.
  EXPECT_NO_THROW(wsim::simt::validate(k));
}

TEST(Isa, ValidateRejectsOutOfRangeRegisters) {
  Kernel k;
  k.name = "bad";
  k.threads_per_block = 32;
  k.vreg_count = 1;
  wsim::simt::Instr ins;
  ins.op = Op::kMov;
  ins.dst = 5;  // out of range
  ins.a = Operand::immediate(0);
  k.code.push_back(ins);
  EXPECT_THROW(wsim::simt::validate(k), CheckError);
}

TEST(Isa, DisassembleContainsOpcodesAndRegisters) {
  KernelBuilder kb("disasm", 32);
  const VReg t = kb.tid();
  const VReg v = kb.shfl_down(t, imm_i64(4));
  kb.stg(kb.imul(t, imm_i64(4)), v);
  const Kernel k = kb.build();
  const std::string text = wsim::simt::disassemble(k);
  EXPECT_NE(text.find("shfl.down"), std::string::npos);
  EXPECT_NE(text.find("stg"), std::string::npos);
  EXPECT_NE(text.find(".kernel disasm"), std::string::npos);
}

TEST(Isa, OpToStringCoversShuffleVariants) {
  EXPECT_EQ(wsim::simt::to_string(Op::kShfl), "shfl");
  EXPECT_EQ(wsim::simt::to_string(Op::kShflUp), "shfl.up");
  EXPECT_EQ(wsim::simt::to_string(Op::kShflDown), "shfl.down");
  EXPECT_EQ(wsim::simt::to_string(Op::kShflXor), "shfl.xor");
}

}  // namespace
