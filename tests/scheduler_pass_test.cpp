// Property tests for the kernel-builder compilation passes: the list
// scheduler and the register allocator must never change program
// semantics, for arbitrary random programs.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "wsim/simt/builder.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/interpreter.hpp"
#include "wsim/simt/memory.hpp"
#include "wsim/util/rng.hpp"

namespace {

using wsim::simt::Cmp;
using wsim::simt::DType;
using wsim::simt::GlobalMemory;
using wsim::simt::imm_i64;
using wsim::simt::Kernel;
using wsim::simt::KernelBuilder;
using wsim::simt::Op;
using wsim::simt::SReg;
using wsim::simt::VReg;

const wsim::simt::DeviceSpec kDev = wsim::simt::make_k1200();

/// Builds a random but well-formed program over a pool of live values,
/// including loops, predication, shuffles and shared memory, ending with
/// stores of every pool value. The scheduler and allocator must keep its
/// observable behaviour identical to the emission order's semantics,
/// which the interpreter defines; we check determinism and
/// self-consistency across two structurally identical builds.
std::vector<std::int32_t> run_random_program(std::uint64_t seed) {
  wsim::util::Rng rng(seed);
  KernelBuilder kb("random", 32);
  const SReg out = kb.param();
  const int smem = kb.alloc_smem(32 * 4);
  const VReg t = kb.tid();
  const VReg own = kb.iadd(imm_i64(smem), kb.imul(t, imm_i64(4)));

  std::vector<VReg> pool;
  pool.push_back(kb.mov(t));
  pool.push_back(kb.iadd(t, imm_i64(7)));
  pool.push_back(kb.imul(t, imm_i64(3)));

  auto pick = [&]() -> VReg {
    return pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
  };

  const int ops = static_cast<int>(rng.uniform_int(20, 60));
  int loop_depth = 0;
  for (int k = 0; k < ops; ++k) {
    switch (rng.uniform_int(0, 9)) {
      case 0:
        pool.push_back(kb.iadd(pick(), pick()));
        break;
      case 1:
        pool.push_back(kb.isub(pick(), imm_i64(rng.uniform_int(-9, 9))));
        break;
      case 2:
        pool.push_back(kb.imax(pick(), pick()));
        break;
      case 3:
        pool.push_back(kb.ixor(pick(), pick()));
        break;
      case 4:
        pool.push_back(kb.shfl_up(pick(), imm_i64(rng.uniform_int(0, 4))));
        break;
      case 5:
        pool.push_back(kb.shfl_xor(pick(), imm_i64(rng.uniform_int(0, 31))));
        break;
      case 6: {
        // Predicated in-place update.
        const VReg p = kb.setp(Cmp::kLt, DType::kI64, pick(),
                               imm_i64(rng.uniform_int(-20, 80)));
        kb.begin_pred(p);
        kb.assign(pick(), kb.iadd(pick(), imm_i64(1)));
        kb.end_pred();
        break;
      }
      case 7:
        // Shared-memory round trip.
        kb.sts(own, pick());
        pool.push_back(kb.lds(own));
        break;
      case 8:
        if (loop_depth < 2) {
          kb.loop(imm_i64(rng.uniform_int(1, 4)));
          ++loop_depth;
        }
        break;
      case 9:
        if (loop_depth > 0) {
          kb.endloop();
          --loop_depth;
        }
        break;
    }
  }
  while (loop_depth > 0) {
    kb.endloop();
    --loop_depth;
  }

  // Fold the pool into one value and store it per lane.
  VReg acc = pool[0];
  for (std::size_t i = 1; i < pool.size(); ++i) {
    acc = kb.ixor(acc, pool[i]);
  }
  kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))), acc);
  const Kernel kernel = kb.build();

  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  const std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  run_block(kernel, kDev, gmem, args);
  return gmem.read_i32(buf, 32);
}

class SchedulerPassTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerPassTest, CompilationIsDeterministic) {
  // Building the same program twice must give identical results: the
  // scheduler and allocator are pure functions of the input IR.
  const auto a = run_random_program(GetParam());
  const auto b = run_random_program(GetParam());
  EXPECT_EQ(a, b);
}

TEST_P(SchedulerPassTest, ResultsIndependentOfDeviceTimings) {
  // Timing tables must not affect functional results: run the same
  // program through Kepler and Maxwell models.
  wsim::util::Rng rng(GetParam() ^ 0xD1CEULL);
  KernelBuilder kb("crossdev", 32);
  const SReg out = kb.param();
  const VReg t = kb.tid();
  const VReg a = kb.mov(t);
  kb.loop(imm_i64(5));
  kb.assign(a, kb.iadd(kb.shfl_down(a, imm_i64(1)), imm_i64(static_cast<int>(
                                                        rng.uniform_int(1, 9)))));
  kb.endloop();
  kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))), a);
  const Kernel kernel = kb.build();

  auto run_on = [&](const wsim::simt::DeviceSpec& dev) {
    GlobalMemory gmem;
    const auto buf = gmem.alloc(32 * 4);
    const std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
    run_block(kernel, dev, gmem, args);
    return gmem.read_i32(buf, 32);
  };
  EXPECT_EQ(run_on(wsim::simt::make_k40()), run_on(kDev));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPassTest,
                         ::testing::Range<std::uint64_t>(0, 30));

// --- targeted scheduler-semantics cases -------------------------------------

TEST(SchedulerPass, StoreLoadOrderPreserved) {
  // A store followed by a load of the same address must not be reordered.
  KernelBuilder kb("ordering", 32);
  const SReg out = kb.param();
  const int smem = kb.alloc_smem(32 * 4);
  const VReg t = kb.tid();
  const VReg addr = kb.iadd(imm_i64(smem), kb.imul(t, imm_i64(4)));
  kb.sts(addr, imm_i64(11));
  const VReg first = kb.lds(addr);
  kb.sts(addr, imm_i64(22));
  const VReg second = kb.lds(addr);
  kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))),
         kb.iadd(kb.imul(first, imm_i64(100)), second));
  const Kernel kernel = kb.build();
  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  const std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  run_block(kernel, kDev, gmem, args);
  EXPECT_EQ(gmem.read_i32(buf, 1)[0], 11 * 100 + 22);
}

TEST(SchedulerPass, WarDependencePreserved) {
  // read x; write x — the read must see the old value.
  KernelBuilder kb("war", 32);
  const SReg out = kb.param();
  const VReg t = kb.tid();
  const VReg x = kb.mov(imm_i64(5));
  const VReg y = kb.iadd(x, imm_i64(1));  // reads old x
  kb.assign(x, imm_i64(50));              // overwrites x
  kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))),
         kb.iadd(kb.imul(x, imm_i64(100)), y));
  const Kernel kernel = kb.build();
  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  const std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  run_block(kernel, kDev, gmem, args);
  EXPECT_EQ(gmem.read_i32(buf, 1)[0], 50 * 100 + 6);
}

TEST(SchedulerPass, IndependentChainsOverlap) {
  // Two independent 20-deep add chains must cost much less than their
  // serial sum — the scheduler interleaves them.
  auto chain_cycles = [](int chains) {
    KernelBuilder kb("chains", 32);
    const SReg out = kb.param();
    const VReg t = kb.tid();
    std::vector<VReg> accs;
    for (int c = 0; c < chains; ++c) {
      accs.push_back(kb.mov(imm_i64(c)));
    }
    for (int step = 0; step < 20; ++step) {
      for (int c = 0; c < chains; ++c) {
        kb.assign(accs[static_cast<std::size_t>(c)],
                  kb.imax(accs[static_cast<std::size_t>(c)], imm_i64(step)));
      }
    }
    VReg total = accs[0];
    for (int c = 1; c < chains; ++c) {
      total = kb.iadd(total, accs[static_cast<std::size_t>(c)]);
    }
    kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))), total);
    const Kernel kernel = kb.build();
    GlobalMemory gmem;
    const auto buf = gmem.alloc(32 * 4);
    const std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
    return run_block(kernel, kDev, gmem, args).cycles;
  };
  const long long one = chain_cycles(1);
  const long long four = chain_cycles(4);
  // Four chains in parallel: far less than 4x one chain.
  EXPECT_LT(four, 2 * one);
}

}  // namespace
