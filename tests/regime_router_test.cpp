#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "wsim/fleet/fleet.hpp"
#include "wsim/fleet/router.hpp"
#include "wsim/kernels/wavefront_kernels.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/util/check.hpp"
#include "wsim/workload/batching.hpp"
#include "wsim/workload/generator.hpp"

namespace {

using namespace wsim;

std::vector<simt::DeviceSpec> all_devices() {
  return {simt::make_k40(), simt::make_k1200(), simt::make_titan_x()};
}

workload::SwTask sw_task_of_len(std::size_t query_len, std::size_t target_len) {
  workload::SwTask task;
  task.query.assign(query_len, 'A');
  task.target.assign(target_len, 'C');
  return task;
}

// ---------------------------------------------------------------------------
// length_bucket: ceil semantics at the bucket boundaries
// ---------------------------------------------------------------------------

TEST(LengthBucket, CeilAtBandBoundaries) {
  // The bucket must equal the number of 32-row bands the kernel runs, so
  // g*k lands in bucket k and g*k + 1 in bucket k + 1.
  const std::size_t g = 32;
  EXPECT_EQ(workload::length_bucket(sw_task_of_len(1, 64), g), 1u);
  EXPECT_EQ(workload::length_bucket(sw_task_of_len(32, 64), g), 1u);
  EXPECT_EQ(workload::length_bucket(sw_task_of_len(33, 64), g), 2u);
  EXPECT_EQ(workload::length_bucket(sw_task_of_len(96, 64), g), 3u);
  EXPECT_EQ(workload::length_bucket(sw_task_of_len(97, 64), g), 4u);
  EXPECT_EQ(workload::length_bucket(sw_task_of_len(128, 64), g), 4u);
  EXPECT_EQ(workload::length_bucket(sw_task_of_len(129, 64), g), 5u);
  EXPECT_EQ(workload::length_bucket(sw_task_of_len(8192, 64), g), 256u);
}

TEST(LengthBucket, PairHmmReadsUseSameCeil) {
  align::PairHmmTask task;
  task.hap.assign(128, 'A');
  task.read.assign(96, 'C');
  EXPECT_EQ(workload::length_bucket(task, 32), 3u);
  task.read.assign(97, 'C');
  EXPECT_EQ(workload::length_bucket(task, 32), 4u);
}

TEST(LengthBucket, GroupingSeparatesBoundaryStraddlers) {
  // 96 bp (3 bands) and 97 bp (4 bands) must not share a batch: one extra
  // band is a real cost step for every block launched with the group.
  workload::SwBatch tasks = {sw_task_of_len(96, 128), sw_task_of_len(97, 128),
                             sw_task_of_len(96, 128), sw_task_of_len(129, 128)};
  const auto batches = workload::sw_length_grouped(tasks, 32, 64);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 2u);  // both 96 bp tasks, original order
  EXPECT_EQ(batches[0][0].query.size(), 96u);
  EXPECT_EQ(batches[1].size(), 1u);
  EXPECT_EQ(batches[1][0].query.size(), 97u);
  EXPECT_EQ(batches[2][0].query.size(), 129u);
}

// ---------------------------------------------------------------------------
// Length profiles
// ---------------------------------------------------------------------------

TEST(LengthProfiles, NamesRoundTrip) {
  for (const std::string& name : workload::length_profile_names()) {
    EXPECT_EQ(to_string(workload::length_profile_by_name(name)), name);
  }
}

TEST(LengthProfiles, UnknownNameListsValidProfiles) {
  try {
    workload::length_profile_by_name("nanopore");
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("nanopore"), std::string::npos) << what;
    EXPECT_NE(what.find("short-read"), std::string::npos) << what;
    EXPECT_NE(what.find("long-read"), std::string::npos) << what;
    EXPECT_NE(what.find("contig"), std::string::npos) << what;
  }
}

TEST(LengthProfiles, GeneratedLengthsStayInsideProfileRanges) {
  auto cfg = workload::profile_config(workload::LengthProfile::kLongRead, 7);
  cfg.regions = 6;
  const auto tasks = workload::sw_all_tasks(workload::generate_dataset(cfg));
  ASSERT_FALSE(tasks.empty());
  for (const auto& task : tasks) {
    EXPECT_GE(task.query.size(), 256u);
    EXPECT_LE(task.query.size(), 2048u);
    EXPECT_GE(task.target.size(), 320u);
    EXPECT_LE(task.target.size(), 2304u);
  }

  auto contig = workload::profile_config(workload::LengthProfile::kContig, 7);
  contig.regions = 2;
  const auto big = workload::sw_all_tasks(workload::generate_dataset(contig));
  ASSERT_FALSE(big.empty());
  for (const auto& task : big) {
    EXPECT_GE(task.query.size(), 2048u);
    EXPECT_LE(task.query.size(), 8192u);
  }
}

// ---------------------------------------------------------------------------
// Router: policies, latencies, and the 2-D regime decision
// ---------------------------------------------------------------------------

TEST(RegimeRouter, PolicyNamesRoundTrip) {
  for (const std::string& name : fleet::parallelism_policy_names()) {
    EXPECT_EQ(to_string(fleet::parallelism_policy_by_name(name)), name);
  }
}

TEST(RegimeRouter, UnknownPolicyListsValidNames) {
  try {
    fleet::parallelism_policy_by_name("hybrid");
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("hybrid"), std::string::npos) << what;
    EXPECT_NE(what.find("auto"), std::string::npos) << what;
    EXPECT_NE(what.find("inter"), std::string::npos) << what;
    EXPECT_NE(what.find("intra"), std::string::npos) << what;
  }
}

TEST(RegimeRouter, NaiveLatencyDwarfsPipelinedVariants) {
  for (const auto& device : all_devices()) {
    const double shuffle =
        fleet::wf_iteration_latency(device, kernels::WfVariant::kShuffle);
    const double shared =
        fleet::wf_iteration_latency(device, kernels::WfVariant::kSharedMemory);
    const double naive =
        fleet::wf_iteration_latency(device, kernels::WfVariant::kHostSyncNaive);
    EXPECT_GT(shuffle, 0.0);
    EXPECT_GT(shared, 0.0);
    // Global-memory round trips lose to on-chip communication even with
    // every segment warm — by ~8-20x against shuffles, ~2-4x against the
    // (barrier-heavy) shared-memory tile depending on the architecture.
    EXPECT_GT(naive, 5.0 * shuffle);
    EXPECT_GT(naive, 2.0 * shared);
  }
}

TEST(RegimeRouter, ModelPicksAPipelinedWavefrontVariant) {
  for (const auto& device : all_devices()) {
    const auto model = fleet::build_intra_task_model(device);
    EXPECT_NE(model.wf_variant, kernels::WfVariant::kHostSyncNaive);
    EXPECT_GT(model.sw_latency, 0.0);
    EXPECT_GT(model.wf_latency, 0.0);
    EXPECT_GT(model.sw_occupancy.parallelism(device), 0);
    EXPECT_GT(model.wf_occupancy.parallelism(device), 0);
    EXPECT_GT(fleet::predicted_wf_gcups(device, model.wf_variant), 0.0);
  }
}

TEST(RegimeRouter, LongReadSmallBatchGoesIntraTask) {
  // A handful of 2 kbp alignments leaves a task-per-block launch with a few
  // warps of parallelism; the wavefront decomposition fills the device.
  for (const auto& device : all_devices()) {
    const auto model = fleet::build_intra_task_model(device);
    EXPECT_EQ(fleet::pick_parallelism(device, model, 2048, 2048, 1),
              fleet::ParallelMode::kIntraTask)
        << device.name;
    EXPECT_EQ(fleet::pick_parallelism(device, model, 2048, 2048, 4),
              fleet::ParallelMode::kIntraTask)
        << device.name;
    EXPECT_EQ(fleet::pick_parallelism(device, model, 8192, 4096, 1),
              fleet::ParallelMode::kIntraTask)
        << device.name;
  }
}

TEST(RegimeRouter, ShortReadLargeBatchStaysInterTask) {
  // The paper's HaplotypeCaller regime: hundreds of <320 bp tasks saturate
  // the occupancy bound on their own, and the wavefront subsystem would pay
  // a launch per wave for nothing.
  for (const auto& device : all_devices()) {
    const auto model = fleet::build_intra_task_model(device);
    EXPECT_EQ(fleet::pick_parallelism(device, model, 200, 280, 256),
              fleet::ParallelMode::kInterTask)
        << device.name;
    EXPECT_EQ(fleet::pick_parallelism(device, model, 128, 160, 1024),
              fleet::ParallelMode::kInterTask)
        << device.name;
  }
}

TEST(RegimeRouter, LargeBatchOfLongReadsStaysInterTask) {
  // Once the batch alone saturates occupancy, task-per-block's cheaper
  // per-step communication and single launch win even at long lengths.
  for (const auto& device : all_devices()) {
    const auto model = fleet::build_intra_task_model(device);
    EXPECT_EQ(fleet::pick_parallelism(device, model, 2048, 2048, 1024),
              fleet::ParallelMode::kInterTask)
        << device.name;
  }
}

TEST(RegimeRouter, PredictedSecondsReflectBatchClamping) {
  // Per-task inter-task latency should collapse as the batch grows (the
  // clamp releases); intra-task should be far less batch-sensitive.
  const auto device = simt::make_titan_x();
  const auto model = fleet::build_intra_task_model(device);
  const double inter_1 =
      fleet::predicted_inter_batch_seconds(device, model, 2048, 2048, 1);
  const double inter_64 =
      fleet::predicted_inter_batch_seconds(device, model, 2048, 2048, 64) / 64.0;
  EXPECT_GT(inter_1, 10.0 * inter_64);

  const double intra_1 =
      fleet::predicted_intra_batch_seconds(device, model, 2048, 2048, 1);
  EXPECT_LT(intra_1, inter_1);
}

// ---------------------------------------------------------------------------
// Fleet integration: the executor actually routes by the model
// ---------------------------------------------------------------------------

workload::SwBatch long_read_batch(std::size_t tasks) {
  auto cfg = workload::profile_config(workload::LengthProfile::kLongRead, 11);
  cfg.regions = static_cast<int>(tasks);
  cfg.sw_tasks_per_region_mean = 1.0;
  // Clamp lengths so the test stays fast while staying firmly long-read.
  cfg.sw_query_len_min = 700;
  cfg.sw_query_len_max = 900;
  cfg.sw_target_len_min = 700;
  cfg.sw_target_len_max = 900;
  auto batch = workload::sw_all_tasks(workload::generate_dataset(cfg));
  batch.resize(std::min(batch.size(), tasks));
  return batch;
}

fleet::FleetConfig one_device_fleet(fleet::ParallelismPolicy parallelism) {
  fleet::FleetConfig cfg;
  cfg.workers.push_back({simt::make_k1200(), {}, {}, {}, 8});
  cfg.parallelism = parallelism;
  return cfg;
}

TEST(RegimeFleet, AutoRoutesLongReadBatchIntraTask) {
  const auto batch = long_read_batch(3);
  fleet::FleetExecutor executor(
      one_device_fleet(fleet::ParallelismPolicy::kAuto));
  const auto exec = executor.execute_sw(batch, 0.0);
  const auto stats = executor.stats();
  EXPECT_EQ(stats.devices[0].intra_batches, 1u);
  EXPECT_NE(executor.wf_variant(0), kernels::WfVariant::kHostSyncNaive);
  ASSERT_EQ(exec.result.outputs.size(), batch.size());

  // Bit-identical to the inter-task pinned fleet: routing moves time only.
  fleet::FleetExecutor pinned(
      one_device_fleet(fleet::ParallelismPolicy::kInterTask));
  const auto inter = pinned.execute_sw(batch, 0.0);
  EXPECT_EQ(pinned.stats().devices[0].intra_batches, 0u);
  ASSERT_EQ(inter.result.outputs.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(exec.result.outputs[i].best_score,
              inter.result.outputs[i].best_score);
    EXPECT_EQ(exec.result.outputs[i].alignment.cigar,
              inter.result.outputs[i].alignment.cigar);
  }
}

TEST(RegimeFleet, AutoKeepsShortReadBatchInterTask) {
  auto cfg = workload::profile_config(workload::LengthProfile::kShortRead, 5);
  cfg.regions = 16;
  auto batch = workload::sw_all_tasks(workload::generate_dataset(cfg));
  ASSERT_GE(batch.size(), 32u);
  fleet::FleetExecutor executor(
      one_device_fleet(fleet::ParallelismPolicy::kAuto));
  executor.execute_sw(batch, 0.0);
  EXPECT_EQ(executor.stats().devices[0].intra_batches, 0u);
}

TEST(RegimeFleet, IntraPolicyForcesWavefrontEvenOnShortReads) {
  auto cfg = workload::profile_config(workload::LengthProfile::kShortRead, 5);
  cfg.regions = 2;
  auto batch = workload::sw_all_tasks(workload::generate_dataset(cfg));
  ASSERT_FALSE(batch.empty());
  fleet::FleetExecutor executor(
      one_device_fleet(fleet::ParallelismPolicy::kIntraTask));
  const auto exec = executor.execute_sw(batch, 0.0);
  EXPECT_EQ(executor.stats().devices[0].intra_batches, 1u);
  ASSERT_EQ(exec.result.outputs.size(), batch.size());
}

TEST(RegimeFleet, PinnedWfVariantIsHonoured) {
  fleet::FleetConfig cfg = one_device_fleet(fleet::ParallelismPolicy::kIntraTask);
  cfg.workers[0].wf_variant = kernels::WfVariant::kSharedMemory;
  fleet::FleetExecutor executor(std::move(cfg));
  EXPECT_EQ(executor.wf_variant(0), kernels::WfVariant::kSharedMemory);
  const auto batch = long_read_batch(1);
  const auto exec = executor.execute_sw(batch, 0.0);
  ASSERT_EQ(exec.result.outputs.size(), batch.size());
  EXPECT_EQ(executor.stats().devices[0].intra_batches, 1u);
}

// ---------------------------------------------------------------------------
// Kernel-name lookup shared by sw-run / fleet-sim
// ---------------------------------------------------------------------------

TEST(SwKernelNames, RoundTripAndErrorListing) {
  for (const std::string& name : kernels::sw_kernel_names()) {
    EXPECT_EQ(kernels::sw_kernel_name(kernels::sw_kernel_by_name(name)), name);
  }
  try {
    kernels::sw_kernel_by_name("diag-sync");
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("diag-sync"), std::string::npos) << what;
    for (const std::string& name : kernels::sw_kernel_names()) {
      EXPECT_NE(what.find(name), std::string::npos) << what << " missing " << name;
    }
  }
}

}  // namespace
