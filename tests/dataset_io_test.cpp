#include <gtest/gtest.h>

#include <sstream>

#include "wsim/util/check.hpp"
#include "wsim/util/rng.hpp"
#include "wsim/workload/dataset_io.hpp"
#include "wsim/workload/generator.hpp"

namespace {

using wsim::util::CheckError;
using wsim::workload::Dataset;

Dataset sample_dataset() {
  wsim::workload::GeneratorConfig cfg;
  cfg.seed = 31;
  cfg.regions = 5;
  cfg.ph_tasks_per_region_mean = 8.0;
  return wsim::workload::generate_dataset(cfg);
}

void expect_equal(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (std::size_t r = 0; r < a.regions.size(); ++r) {
    ASSERT_EQ(a.regions[r].sw_tasks.size(), b.regions[r].sw_tasks.size());
    ASSERT_EQ(a.regions[r].ph_tasks.size(), b.regions[r].ph_tasks.size());
    for (std::size_t t = 0; t < a.regions[r].sw_tasks.size(); ++t) {
      EXPECT_EQ(a.regions[r].sw_tasks[t].query, b.regions[r].sw_tasks[t].query);
      EXPECT_EQ(a.regions[r].sw_tasks[t].target, b.regions[r].sw_tasks[t].target);
    }
    for (std::size_t t = 0; t < a.regions[r].ph_tasks.size(); ++t) {
      const auto& x = a.regions[r].ph_tasks[t];
      const auto& y = b.regions[r].ph_tasks[t];
      EXPECT_EQ(x.read, y.read);
      EXPECT_EQ(x.hap, y.hap);
      EXPECT_EQ(x.gcp, y.gcp);
      EXPECT_EQ(x.base_quals, y.base_quals);
      EXPECT_EQ(x.ins_quals, y.ins_quals);
      EXPECT_EQ(x.del_quals, y.del_quals);
    }
  }
}

TEST(DatasetIo, RoundTripPreservesEverything) {
  const Dataset original = sample_dataset();
  std::stringstream buffer;
  wsim::workload::write_dataset(buffer, original);
  const Dataset restored = wsim::workload::read_dataset(buffer);
  expect_equal(original, restored);
}

TEST(DatasetIo, FileRoundTrip) {
  const Dataset original = sample_dataset();
  const std::string path = "/tmp/wsim_dataset_io_test.txt";
  wsim::workload::save_dataset(path, original);
  expect_equal(original, wsim::workload::load_dataset(path));
}

TEST(DatasetIo, HandwrittenFileParses) {
  std::stringstream in(
      "# comment\n"
      "\n"
      "region\n"
      "sw ACGT TTACGTTT\n"
      "ph 10 ACG ACGT OOO OOO OOO\n"
      "region\n"
      "sw GGGG GGGG\n");
  const Dataset ds = wsim::workload::read_dataset(in);
  ASSERT_EQ(ds.regions.size(), 2U);
  EXPECT_EQ(ds.regions[0].sw_tasks.size(), 1U);
  ASSERT_EQ(ds.regions[0].ph_tasks.size(), 1U);
  EXPECT_EQ(ds.regions[0].ph_tasks[0].base_quals[0], 'O' - 33);
  EXPECT_EQ(ds.regions[1].sw_tasks[0].query, "GGGG");
}

TEST(DatasetIo, RejectsMalformedInput) {
  const auto parse = [](const std::string& text) {
    std::stringstream in(text);
    return wsim::workload::read_dataset(in);
  };
  EXPECT_THROW(parse("sw ACGT ACGT\n"), CheckError);  // task before region
  EXPECT_THROW(parse("region\nsw ACGT\n"), CheckError);  // missing field
  EXPECT_THROW(parse("region\nsw ACXT ACGT\n"), CheckError);  // bad base
  EXPECT_THROW(parse("region\nbogus 1 2\n"), CheckError);  // unknown record
  EXPECT_THROW(parse("region\nph 10 ACG ACGT OO OOO OOO\n"), CheckError);  // short quals
  EXPECT_THROW(parse("region\nph 200 ACG ACGT OOO OOO OOO\n"), CheckError);  // bad gcp
  EXPECT_THROW(parse("region\nph 10 ACG ACGT O\x01O OOO OOO\n"), CheckError);  // bad qual char
}

TEST(DatasetIo, LoadsMissingFileThrows) {
  EXPECT_THROW(wsim::workload::load_dataset("/nonexistent/nope.txt"), CheckError);
}

}  // namespace

namespace {

class DatasetFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DatasetFuzzTest, RandomBytesNeverCrashOnlyThrow) {
  wsim::util::Rng rng(GetParam());
  std::string noise;
  const int len = static_cast<int>(rng.uniform_int(0, 400));
  for (int i = 0; i < len; ++i) {
    // Bias toward printable text with occasional keywords so parsing gets
    // past the first token sometimes.
    switch (rng.uniform_int(0, 9)) {
      case 0:
        noise += "region\n";
        break;
      case 1:
        noise += "sw ";
        break;
      case 2:
        noise += "ph ";
        break;
      case 3:
        noise += '\n';
        break;
      default:
        noise += static_cast<char>(rng.uniform_int(1, 126));
        break;
    }
  }
  std::stringstream in(noise);
  try {
    const auto ds = wsim::workload::read_dataset(in);
    (void)ds;  // valid parse is fine too
  } catch (const CheckError&) {
    // expected for malformed input
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatasetFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
