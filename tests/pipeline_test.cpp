#include <gtest/gtest.h>

#include <cmath>

#include "wsim/align/pairhmm.hpp"
#include "wsim/align/smith_waterman.hpp"
#include "wsim/pipeline/pipeline.hpp"
#include "wsim/simt/engine.hpp"
#include "wsim/workload/generator.hpp"

namespace {

using wsim::pipeline::PipelineConfig;
using wsim::pipeline::PipelineReport;
using wsim::pipeline::run_pipeline;

wsim::workload::Dataset small_dataset(std::uint64_t seed = 11) {
  wsim::workload::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.regions = 4;
  cfg.ph_tasks_per_region_mean = 10.0;
  cfg.sw_query_len_min = 40;
  cfg.sw_query_len_max = 90;
  cfg.sw_target_len_min = 60;
  cfg.sw_target_len_max = 120;
  return wsim::workload::generate_dataset(cfg);
}

PipelineConfig base_config() {
  PipelineConfig cfg;
  cfg.device = wsim::simt::make_k1200();
  return cfg;
}

TEST(Pipeline, OutputsMatchHostReferencesExactly) {
  const auto dataset = small_dataset();
  const PipelineReport report = run_pipeline(dataset, base_config());
  std::size_t sw_index = 0;
  std::size_t ph_index = 0;
  for (const auto& region : dataset.regions) {
    for (const auto& task : region.sw_tasks) {
      const auto ref = wsim::align::sw_align(task.query, task.target, {});
      EXPECT_EQ(report.sw_alignments[sw_index].score, ref.score) << sw_index;
      EXPECT_EQ(report.sw_alignments[sw_index].cigar, ref.cigar) << sw_index;
      ++sw_index;
    }
    for (const auto& task : region.ph_tasks) {
      const double ref = wsim::align::pairhmm_log10_safe(task);
      EXPECT_NEAR(report.ph_log10[ph_index], ref, 5e-3 + std::abs(ref) * 1e-3)
          << ph_index;
      ++ph_index;
    }
  }
  EXPECT_EQ(report.sw.tasks, sw_index);
  EXPECT_EQ(report.ph.tasks, ph_index);
}

TEST(Pipeline, RebatchingAndLptPreserveOutputs) {
  const auto dataset = small_dataset(13);
  const PipelineReport region_batched = run_pipeline(dataset, base_config());
  PipelineConfig cfg = base_config();
  cfg.rebatch_size = 7;
  cfg.lpt_order = true;
  const PipelineReport rebatched = run_pipeline(dataset, cfg);
  ASSERT_EQ(region_batched.sw_alignments.size(), rebatched.sw_alignments.size());
  for (std::size_t i = 0; i < rebatched.sw_alignments.size(); ++i) {
    EXPECT_EQ(rebatched.sw_alignments[i].score, region_batched.sw_alignments[i].score);
    EXPECT_EQ(rebatched.sw_alignments[i].cigar, region_batched.sw_alignments[i].cigar);
  }
  ASSERT_EQ(region_batched.ph_log10.size(), rebatched.ph_log10.size());
  for (std::size_t i = 0; i < rebatched.ph_log10.size(); ++i) {
    EXPECT_DOUBLE_EQ(rebatched.ph_log10[i], region_batched.ph_log10[i]);
  }
}

TEST(Pipeline, RebatchingImprovesSwThroughput) {
  wsim::workload::GeneratorConfig gen;
  gen.seed = 17;
  gen.regions = 24;
  gen.ph_tasks_per_region_mean = 1.0;
  const auto dataset = wsim::workload::generate_dataset(gen);
  PipelineConfig cfg = base_config();
  const PipelineReport small_batches = run_pipeline(dataset, cfg);
  cfg.rebatch_size = 48;
  const PipelineReport big_batches = run_pipeline(dataset, cfg);
  EXPECT_GT(big_batches.sw.gcups, small_batches.sw.gcups);
}

TEST(Pipeline, ValidatorReportsCleanRun) {
  PipelineConfig cfg = base_config();
  cfg.validate_sample = true;
  cfg.validate_every = 3;
  const PipelineReport report = run_pipeline(small_dataset(19), cfg);
  EXPECT_GT(report.validated, 0U);
  EXPECT_EQ(report.mismatches, 0U);
}

TEST(Pipeline, SharedMemoryDesignsProduceSameResults) {
  const auto dataset = small_dataset(23);
  PipelineConfig cfg = base_config();
  cfg.sw_design = wsim::kernels::CommMode::kSharedMemory;
  cfg.ph_design = wsim::kernels::PhDesign::kShared;
  const PipelineReport shared = run_pipeline(dataset, cfg);
  const PipelineReport shuffle = run_pipeline(dataset, base_config());
  for (std::size_t i = 0; i < shared.sw_alignments.size(); ++i) {
    EXPECT_EQ(shared.sw_alignments[i].cigar, shuffle.sw_alignments[i].cigar);
  }
  // Shuffle designs must not be slower overall.
  EXPECT_LE(shuffle.sw.seconds, shared.sw.seconds * 1.01);
  EXPECT_LE(shuffle.ph.seconds, shared.ph.seconds * 1.01);
}

TEST(Pipeline, StreamsNeverSlower) {
  const auto dataset = small_dataset(29);
  const PipelineReport serial = run_pipeline(dataset, base_config());
  PipelineConfig cfg = base_config();
  cfg.overlap_transfers = true;
  const PipelineReport overlapped = run_pipeline(dataset, cfg);
  EXPECT_LE(overlapped.sw.seconds, serial.sw.seconds + 1e-12);
  EXPECT_LE(overlapped.ph.seconds, serial.ph.seconds + 1e-12);
}

TEST(Pipeline, RejectsEmptyDataset) {
  EXPECT_THROW(run_pipeline({}, base_config()), wsim::util::CheckError);
}

}  // namespace

namespace {

TEST(Pipeline, EnergyAccountingIsPlausible) {
  const auto dataset = small_dataset(31);
  const auto report = run_pipeline(dataset, base_config());
  EXPECT_GT(report.sw.joules, 0.0);
  EXPECT_GT(report.ph.joules, 0.0);
  // pJ/cell in the range the energy ablation established (hundreds to a
  // few thousand).
  EXPECT_GT(report.ph.pj_per_cell(), 50.0);
  EXPECT_LT(report.ph.pj_per_cell(), 50000.0);
  // Shuffle designs burn less energy per cell than shared-memory designs.
  PipelineConfig shared_cfg = base_config();
  shared_cfg.sw_design = wsim::kernels::CommMode::kSharedMemory;
  shared_cfg.ph_design = wsim::kernels::PhDesign::kShared;
  const auto shared_report = run_pipeline(dataset, shared_cfg);
  EXPECT_LT(report.ph.pj_per_cell(), shared_report.ph.pj_per_cell() * 1.05);
}

// Regression for the threads <= 0 routing contract: the default pipeline
// run executes on the process-wide shared_engine() — the same engine the
// serving layer, the fleet, and the CLI share — while a positive thread
// count builds a private engine for that run only.
TEST(Pipeline, DefaultThreadsRouteThroughSharedEngine) {
  const auto dataset = small_dataset(37);
  PipelineConfig cfg = base_config();
  cfg.threads = 0;
  const auto shared_run = run_pipeline(dataset, cfg);
  EXPECT_EQ(shared_run.engine_used, &wsim::simt::shared_engine());

  cfg.threads = 1;
  const auto private_run = run_pipeline(dataset, cfg);
  EXPECT_NE(private_run.engine_used, nullptr);
  EXPECT_NE(private_run.engine_used, &wsim::simt::shared_engine());

  // Same engine or not, results are identical.
  ASSERT_EQ(shared_run.ph_log10.size(), private_run.ph_log10.size());
  for (std::size_t i = 0; i < shared_run.ph_log10.size(); ++i) {
    EXPECT_EQ(shared_run.ph_log10[i], private_run.ph_log10[i]) << i;
  }
}

}  // namespace
