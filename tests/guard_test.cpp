#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "wsim/fleet/fault.hpp"
#include "wsim/fleet/fleet.hpp"
#include "wsim/guard/guard.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/sdc.hpp"
#include "wsim/util/check.hpp"
#include "wsim/workload/batching.hpp"
#include "wsim/workload/generator.hpp"

namespace {

namespace guard = wsim::guard;
namespace align = wsim::align;
using wsim::fleet::FaultPlan;
using wsim::simt::SdcPlan;
using wsim::simt::SdcSite;

wsim::workload::Dataset small_dataset(std::uint64_t seed = 11) {
  wsim::workload::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.regions = 3;
  cfg.ph_tasks_per_region_mean = 6.0;
  cfg.sw_query_len_min = 40;
  cfg.sw_query_len_max = 90;
  cfg.sw_target_len_min = 60;
  cfg.sw_target_len_max = 120;
  return wsim::workload::generate_dataset(cfg);
}

// ---------------------------------------------------------------------------
// SdcPlan: determinism and stream structure.

TEST(SdcPlan, DecisionsAreDeterministic) {
  SdcPlan plan;
  plan.seed = 42;
  plan.flip_prob = 0.25;
  for (std::uint64_t event = 0; event < 200; ++event) {
    int bit_a = -1;
    int bit_b = -1;
    const bool a = plan.flips(7, event, SdcSite::kRegWrite, &bit_a);
    const bool b = plan.flips(7, event, SdcSite::kRegWrite, &bit_b);
    EXPECT_EQ(a, b) << event;
    if (a) {
      EXPECT_EQ(bit_a, bit_b) << event;
      EXPECT_GE(bit_a, 0) << event;
      EXPECT_LT(bit_a, 32) << event;
    }
  }
}

TEST(SdcPlan, StreamsAndSitesDrawIndependently) {
  SdcPlan plan;
  plan.seed = 42;
  plan.flip_prob = 0.5;
  int bit = 0;
  std::uint64_t stream_diff = 0;
  std::uint64_t site_diff = 0;
  for (std::uint64_t event = 0; event < 256; ++event) {
    const bool s0 = plan.flips(0, event, SdcSite::kRegWrite, &bit);
    const bool s1 = plan.flips(1, event, SdcSite::kRegWrite, &bit);
    const bool smem = plan.flips(0, event, SdcSite::kSmemStore, &bit);
    stream_diff += static_cast<std::uint64_t>(s0 != s1);
    site_diff += static_cast<std::uint64_t>(s0 != smem);
  }
  // At p=0.5 two independent 256-draw sequences agreeing everywhere has
  // probability 2^-256; a handful of disagreements proves distinct streams.
  EXPECT_GT(stream_diff, 32U);
  EXPECT_GT(site_diff, 32U);
}

TEST(SdcPlan, SiteGatesAndEnableSemantics) {
  SdcPlan plan;
  EXPECT_FALSE(plan.enabled());  // flip_prob 0
  plan.flip_prob = 1e-3;
  EXPECT_TRUE(plan.enabled());
  plan.reg_writes = false;
  plan.smem_stores = false;
  plan.shuffle_payloads = false;
  EXPECT_FALSE(plan.enabled());  // no eligible site
  plan.smem_stores = true;
  EXPECT_TRUE(plan.enabled());
  EXPECT_FALSE(plan.site_enabled(SdcSite::kRegWrite));
  EXPECT_TRUE(plan.site_enabled(SdcSite::kSmemStore));
  EXPECT_FALSE(plan.site_enabled(SdcSite::kShuffle));
}

// ---------------------------------------------------------------------------
// Satellite: FaultPlan and SdcPlan hash under distinct domain tags, so one
// seed drives uncorrelated fault and corruption streams.

TEST(DomainSeparation, ConstantsDiffer) {
  static_assert(FaultPlan::kDomain != SdcPlan::kDomain,
                "fault and SDC draws must hash under distinct domains");
  EXPECT_NE(FaultPlan::kDomain, SdcPlan::kDomain);
}

TEST(DomainSeparation, SameSeedYieldsUncorrelatedDecisionStreams) {
  const std::uint64_t seed = 1234;
  FaultPlan faults;
  faults.seed = seed;
  faults.launch_failure_prob = 0.5;
  SdcPlan sdc;
  sdc.seed = seed;
  sdc.flip_prob = 0.5;

  std::uint64_t agree = 0;
  const std::uint64_t n = 512;
  int bit = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const bool fault = faults.launch_fails(0, i);
    const bool flip = sdc.flips(0, i, SdcSite::kRegWrite, &bit);
    agree += static_cast<std::uint64_t>(fault == flip);
  }
  // Independent fair coins agree ~n/2 times; identical or complementary
  // streams would agree n or 0 times. Allow a wide deterministic margin.
  EXPECT_GT(agree, n / 4);
  EXPECT_LT(agree, 3 * n / 4);
}

// ---------------------------------------------------------------------------
// Injection reaches the outputs: a high flip rate perturbs a real kernel
// run (flips counted, fingerprint moved), and re-running with the same
// launch id replays the identical corruption.

TEST(Injection, PerturbsOutputsDeterministically) {
  const auto dataset = small_dataset();
  const auto batches = wsim::workload::sw_rebatch(dataset, 8);
  ASSERT_FALSE(batches.empty());
  const auto& batch = batches.front();

  const wsim::kernels::SwRunner runner(wsim::kernels::CommMode::kShuffle);
  const auto device = wsim::simt::make_k1200();

  wsim::kernels::SwRunOptions clean_opt;
  clean_opt.collect_outputs = true;
  const auto clean = runner.run_batch(device, batch, clean_opt);
  EXPECT_EQ(clean.run.launch.sdc_flips, 0U);

  wsim::kernels::SwRunOptions dirty_opt = clean_opt;
  dirty_opt.sdc.seed = 9;
  dirty_opt.sdc.flip_prob = 1e-4;
  dirty_opt.sdc_launch_id = 3;
  const auto run_dirty = [&]() {
    // At this rate a flip may crash the launch (an address-feeding
    // register); both outcomes prove injection is live.
    try {
      return runner.run_batch(device, batch, dirty_opt);
    } catch (const wsim::util::CheckError&) {
      return wsim::kernels::SwBatchResult{};
    }
  };
  const auto dirty_a = run_dirty();
  const auto dirty_b = run_dirty();

  if (!dirty_a.outputs.empty()) {
    EXPECT_GT(dirty_a.run.launch.sdc_flips, 0U);
    EXPECT_NE(guard::fingerprint_sw(dirty_a.outputs),
              guard::fingerprint_sw(clean.outputs));
  }
  // Same plan, same launch id: the corruption replays exactly.
  ASSERT_EQ(dirty_a.outputs.size(), dirty_b.outputs.size());
  EXPECT_EQ(dirty_a.run.launch.sdc_flips, dirty_b.run.launch.sdc_flips);
  if (!dirty_a.outputs.empty()) {
    EXPECT_EQ(guard::fingerprint_sw(dirty_a.outputs),
              guard::fingerprint_sw(dirty_b.outputs));
  }

  // A different launch id draws a different corruption stream.
  wsim::kernels::SwRunOptions other_opt = dirty_opt;
  other_opt.sdc_launch_id = 4;
  try {
    const auto other = runner.run_batch(device, batch, other_opt);
    if (!dirty_a.outputs.empty()) {
      EXPECT_NE(guard::fingerprint_sw(other.outputs),
                guard::fingerprint_sw(dirty_a.outputs));
    }
  } catch (const wsim::util::CheckError&) {
    // Crashing instead of corrupting also demonstrates a distinct stream.
  }
}

// ---------------------------------------------------------------------------
// ABFT validators: accept clean outputs, reject seeded corruptions.

TEST(Validators, SwAcceptsCleanRejectsCorrupt) {
  const auto dataset = small_dataset();
  const auto batches = wsim::workload::sw_rebatch(dataset, 8);
  const auto& batch = batches.front();
  const align::SwParams params{};
  auto outputs = guard::cpu_sw(batch, params);
  EXPECT_EQ(guard::validate_sw(batch, outputs, params), std::nullopt);

  auto bad_score = outputs;
  bad_score.front().best_score += 1;  // CIGAR re-scoring no longer matches
  EXPECT_NE(guard::validate_sw(batch, bad_score, params), std::nullopt);

  auto huge = outputs;
  huge.front().best_score = std::numeric_limits<std::int32_t>::max();
  EXPECT_NE(guard::validate_sw(batch, huge, params), std::nullopt);

  auto negative = outputs;
  negative.front().best_score = -5;  // SW scores are clamped at zero
  EXPECT_NE(guard::validate_sw(batch, negative, params), std::nullopt);
}

TEST(Validators, PhAcceptsCleanRejectsCorrupt) {
  const auto dataset = small_dataset();
  const auto batches = wsim::workload::ph_rebatch(dataset, 8);
  const auto& batch = batches.front();
  auto log10 = guard::cpu_ph(batch);
  EXPECT_EQ(guard::validate_ph(batch, log10), std::nullopt);

  auto nan = log10;
  nan.front() = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(guard::validate_ph(batch, nan), std::nullopt);

  auto positive = log10;
  positive.front() = 1.0;  // a likelihood above certainty
  EXPECT_NE(guard::validate_ph(batch, positive), std::nullopt);
}

TEST(Validators, NwAcceptsCleanRejectsOutOfBounds) {
  const auto dataset = small_dataset();
  const auto batches = wsim::workload::sw_rebatch(dataset, 8);
  const auto& batch = batches.front();
  const align::SwParams params{};
  auto scores = guard::cpu_nw(batch, params);
  EXPECT_EQ(guard::validate_nw(batch, scores, params), std::nullopt);

  auto huge = scores;
  huge.front() = std::numeric_limits<std::int32_t>::max();
  EXPECT_NE(guard::validate_nw(batch, huge, params), std::nullopt);
}

TEST(Fingerprints, SensitiveToSingleBit) {
  const auto dataset = small_dataset();
  const auto sw_batch = wsim::workload::sw_rebatch(dataset, 8).front();
  const align::SwParams params{};
  auto outputs = guard::cpu_sw(sw_batch, params);
  const auto base = guard::fingerprint_sw(outputs);
  outputs.back().best_score ^= 1;
  EXPECT_NE(guard::fingerprint_sw(outputs), base);

  std::vector<double> log10 = {-3.5, -7.25};
  const auto ph_base = guard::fingerprint_ph(log10);
  log10.back() = std::nextafter(log10.back(), 0.0);
  EXPECT_NE(guard::fingerprint_ph(log10), ph_base);
}

TEST(DetectMode, NamesRoundTrip) {
  for (const auto mode :
       {guard::DetectMode::kNone, guard::DetectMode::kAbft, guard::DetectMode::kDual}) {
    EXPECT_EQ(guard::detect_mode_by_name(guard::to_string(mode)), mode);
  }
  EXPECT_THROW(guard::detect_mode_by_name("triple"), wsim::util::CheckError);
}

// ---------------------------------------------------------------------------
// Acceptance: the fleet under injection with dual detection delivers every
// batch bit-identical to a fault-free baseline — zero escaped corruptions.
// PairHMM batches answered by the CPU reference are accurate but not
// bit-identical (different summation order) and are excluded, exactly as
// guard-sim's comparison does.

struct BaselineRun {
  std::vector<std::vector<wsim::kernels::SwTaskOutput>> sw;
  std::vector<std::vector<double>> ph;
};

wsim::fleet::FleetConfig guarded_config(guard::DetectMode detect, double flip_prob) {
  wsim::fleet::FleetConfig cfg;
  wsim::fleet::WorkerConfig a;
  a.device = wsim::simt::make_k1200();
  wsim::fleet::WorkerConfig b;
  b.device = wsim::simt::make_titan_x();
  cfg.workers = {a, b};
  cfg.guard.detect = detect;
  cfg.guard.sdc.seed = 7;
  cfg.guard.sdc.flip_prob = flip_prob;
  return cfg;
}

BaselineRun run_fleet(const wsim::fleet::FleetConfig& cfg,
                      const std::vector<wsim::workload::SwBatch>& sw_batches,
                      const std::vector<wsim::workload::PhBatch>& ph_batches,
                      guard::GuardStats* stats_out,
                      std::vector<bool>* ph_cpu_fallback) {
  wsim::fleet::FleetExecutor executor(cfg);
  BaselineRun run;
  double t = 0.0;
  for (const auto& batch : sw_batches) {
    run.sw.push_back(executor.execute_sw(batch, t, {}).result.outputs);
    t += 30e-6;
  }
  for (const auto& batch : ph_batches) {
    const auto executed = executor.execute_ph(batch, t, {});
    run.ph.push_back(executed.result.log10);
    if (ph_cpu_fallback != nullptr) {
      ph_cpu_fallback->push_back(executed.exec.cpu_fallback);
    }
    t += 30e-6;
  }
  if (stats_out != nullptr) {
    *stats_out = executor.stats().guard;
  }
  return run;
}

TEST(GuardRecovery, DualDetectionDeliversBitIdenticalResults) {
  const auto dataset = small_dataset();
  const auto sw_batches = wsim::workload::sw_rebatch(dataset, 8);
  const auto ph_batches = wsim::workload::ph_rebatch(dataset, 8);

  const auto baseline = run_fleet(guarded_config(guard::DetectMode::kNone, 0.0),
                                  sw_batches, ph_batches, nullptr, nullptr);

  guard::GuardStats stats;
  std::vector<bool> ph_cpu;
  const auto guarded = run_fleet(guarded_config(guard::DetectMode::kDual, 3e-6),
                                 sw_batches, ph_batches, &stats, &ph_cpu);

  EXPECT_GT(stats.sdc_flips, 0U) << "injection never fired; rate too low";
  EXPECT_GT(stats.verified_batches, 0U);

  ASSERT_EQ(guarded.sw.size(), baseline.sw.size());
  for (std::size_t b = 0; b < baseline.sw.size(); ++b) {
    // SW holds even through a CPU fallback: the host reference is pinned
    // bit-identical to the device kernels.
    EXPECT_EQ(guard::fingerprint_sw(guarded.sw[b]),
              guard::fingerprint_sw(baseline.sw[b]))
        << "escaped corruption in SW batch " << b;
  }
  ASSERT_EQ(guarded.ph.size(), baseline.ph.size());
  for (std::size_t b = 0; b < baseline.ph.size(); ++b) {
    if (ph_cpu[b]) {
      // CPU-answered: accurate, not bit-identical; spot-check closeness.
      ASSERT_EQ(guarded.ph[b].size(), baseline.ph[b].size());
      for (std::size_t i = 0; i < baseline.ph[b].size(); ++i) {
        EXPECT_NEAR(guarded.ph[b][i], baseline.ph[b][i],
                    1e-3 * std::abs(baseline.ph[b][i]) + 1e-3);
      }
      continue;
    }
    EXPECT_EQ(guard::fingerprint_ph(guarded.ph[b]),
              guard::fingerprint_ph(baseline.ph[b]))
        << "escaped corruption in PH batch " << b;
  }
}

TEST(GuardRecovery, AbftFlagsAndRecoversCorruptions) {
  const auto dataset = small_dataset();
  const auto sw_batches = wsim::workload::sw_rebatch(dataset, 8);
  const auto ph_batches = wsim::workload::ph_rebatch(dataset, 8);

  guard::GuardStats stats;
  std::vector<bool> ph_cpu;
  // High enough that validators see corruptions; ABFT may still miss
  // in-range flips, so this test pins the accounting, not zero escapes
  // (that guarantee is dual detection's, above).
  (void)run_fleet(guarded_config(guard::DetectMode::kAbft, 3e-6), sw_batches,
                  ph_batches, &stats, &ph_cpu);

  EXPECT_GT(stats.sdc_flips, 0U);
  EXPECT_EQ(stats.verified_batches, sw_batches.size() + ph_batches.size());
  // Every flagged batch is accounted for: recovered on device, answered by
  // the CPU reference, or (with fallback on by default) nothing dropped.
  EXPECT_GE(stats.sdc_detected, stats.sdc_corrected);
  EXPECT_GE(stats.reexecutions, stats.sdc_corrected);
}

TEST(GuardRecovery, ReplayIsDeterministic) {
  const auto dataset = small_dataset();
  const auto sw_batches = wsim::workload::sw_rebatch(dataset, 8);
  const auto ph_batches = wsim::workload::ph_rebatch(dataset, 8);

  guard::GuardStats first;
  guard::GuardStats second;
  std::vector<bool> cpu_a;
  std::vector<bool> cpu_b;
  const auto a = run_fleet(guarded_config(guard::DetectMode::kDual, 3e-6),
                           sw_batches, ph_batches, &first, &cpu_a);
  const auto b = run_fleet(guarded_config(guard::DetectMode::kDual, 3e-6),
                           sw_batches, ph_batches, &second, &cpu_b);

  EXPECT_EQ(first.sdc_flips, second.sdc_flips);
  EXPECT_EQ(first.sdc_detected, second.sdc_detected);
  EXPECT_EQ(first.sdc_corrected, second.sdc_corrected);
  EXPECT_EQ(first.cpu_fallbacks, second.cpu_fallbacks);
  EXPECT_EQ(cpu_a, cpu_b);
  ASSERT_EQ(a.sw.size(), b.sw.size());
  for (std::size_t i = 0; i < a.sw.size(); ++i) {
    EXPECT_EQ(guard::fingerprint_sw(a.sw[i]), guard::fingerprint_sw(b.sw[i])) << i;
  }
  ASSERT_EQ(a.ph.size(), b.ph.size());
  for (std::size_t i = 0; i < a.ph.size(); ++i) {
    EXPECT_EQ(guard::fingerprint_ph(a.ph[i]), guard::fingerprint_ph(b.ph[i])) << i;
  }
}

}  // namespace
