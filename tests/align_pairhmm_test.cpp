#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "wsim/align/pairhmm.hpp"
#include "wsim/util/check.hpp"
#include "wsim/util/rng.hpp"

namespace {

using wsim::align::PairHmmFill;
using wsim::align::PairHmmTask;
using wsim::align::Transitions;

PairHmmTask make_task(std::string read, std::string hap, std::uint8_t qual = 30) {
  PairHmmTask task;
  task.read = std::move(read);
  task.hap = std::move(hap);
  task.base_quals.assign(task.read.size(), qual);
  task.ins_quals.assign(task.read.size(), 45);
  task.del_quals.assign(task.read.size(), 45);
  task.gcp = 10;
  return task;
}

TEST(Scoring, QualToErrorProb) {
  EXPECT_NEAR(wsim::align::qual_to_error_prob(10), 0.1F, 1e-6F);
  EXPECT_NEAR(wsim::align::qual_to_error_prob(20), 0.01F, 1e-7F);
  EXPECT_NEAR(wsim::align::qual_to_error_prob(30), 0.001F, 1e-8F);
}

TEST(Scoring, TransitionsSumToOneFromMatchState) {
  const Transitions t = wsim::align::transitions_for(45, 45, 10);
  EXPECT_NEAR(t.mm + t.mi + t.md, 1.0F, 1e-6F);
  EXPECT_NEAR(t.ii + t.im, 1.0F, 1e-6F);
  EXPECT_NEAR(t.dd + t.im, 1.0F, 1e-6F);
}

TEST(Scoring, InitialConditionIsLargePowerOfTwo) {
  EXPECT_FLOAT_EQ(wsim::align::pairhmm_initial_condition(), std::ldexp(1.0F, 120));
}

TEST(PairHmm, ValidateRejectsMismatchedTracks) {
  PairHmmTask task = make_task("ACGT", "ACGT");
  task.base_quals.pop_back();
  EXPECT_THROW(wsim::align::validate(task), wsim::util::CheckError);
  EXPECT_THROW(wsim::align::validate(make_task("", "ACGT")), wsim::util::CheckError);
  EXPECT_THROW(wsim::align::validate(make_task("ACGT", "")), wsim::util::CheckError);
}

TEST(PairHmm, PerfectMatchNearCertain) {
  // A read identical to the haplotype with high quality: per-base
  // likelihood ~ (1-err)*t_mm, so log10 ~ R*log10(~1) + alignment-start
  // normalization (-log10 |hap| is absorbed in the initial condition).
  const PairHmmTask task = make_task("ACGTACGTACGTACGT", "ACGTACGTACGTACGT", 40);
  const double log10 = wsim::align::pairhmm_log10(task);
  EXPECT_GT(log10, -2.0);
  EXPECT_LE(log10, 0.0 + 1e-6);
}

TEST(PairHmm, MismatchesLowerTheLikelihood) {
  const std::string hap = "ACGTACGTACGTACGT";
  const double perfect = wsim::align::pairhmm_log10(make_task(hap, hap));
  std::string mismatched = hap;
  mismatched[8] = 'T';
  const double worse = wsim::align::pairhmm_log10(make_task(mismatched, hap));
  EXPECT_LT(worse, perfect - 1.0);  // one Q30 mismatch costs ~ -log10(err/3) ≈ 3.5
}

TEST(PairHmm, EachAdditionalMismatchCostsMore) {
  const std::string hap = "AAAACCCCGGGGTTTTAAAACCCC";
  double prev = wsim::align::pairhmm_log10(make_task(hap, hap));
  std::string read = hap;
  for (std::size_t k = 0; k < 3; ++k) {
    read[4 + 6 * k] = read[4 + 6 * k] == 'A' ? 'C' : 'A';
    const double cur = wsim::align::pairhmm_log10(make_task(read, hap));
    EXPECT_LT(cur, prev - 1.0);
    prev = cur;
  }
}

TEST(PairHmm, HigherQualityPunishesMismatchesHarder) {
  const std::string hap = "ACGTACGTACGTACGT";
  std::string read = hap;
  read[5] = 'A';
  const double q20 = wsim::align::pairhmm_log10(make_task(read, hap, 20));
  const double q40 = wsim::align::pairhmm_log10(make_task(read, hap, 40));
  EXPECT_GT(q20, q40);
}

TEST(PairHmm, NBaseTreatedAsMatch) {
  const std::string hap = "ACGTACGTACGTACGT";
  std::string read = hap;
  read[5] = 'N';
  const double with_n = wsim::align::pairhmm_log10(make_task(read, hap));
  const double perfect = wsim::align::pairhmm_log10(make_task(hap, hap));
  EXPECT_NEAR(with_n, perfect, 0.01);
}

TEST(PairHmm, ReadShiftedInsideLongHaplotype) {
  // The D-row initial condition makes the start position free: a read
  // matching the middle of a haplotype still scores near-perfect.
  const std::string hap = "TTTTTTTTACGTACGTACGTACGTTTTTTTTT";
  const std::string read = "ACGTACGTACGTACGT";
  const double log10 = wsim::align::pairhmm_log10(make_task(read, hap, 40));
  EXPECT_GT(log10, -3.0);
}

TEST(PairHmm, FillShapesAndBoundaries) {
  const PairHmmTask task = make_task("ACGT", "ACGTA");
  const PairHmmFill fill = wsim::align::pairhmm_fill(task);
  EXPECT_EQ(fill.m.rows(), 5U);
  EXPECT_EQ(fill.m.cols(), 6U);
  const float init = wsim::align::pairhmm_initial_condition() / 5.0F;
  for (std::size_t j = 0; j <= 5; ++j) {
    EXPECT_FLOAT_EQ(fill.d(0, j), init);
    EXPECT_FLOAT_EQ(fill.m(0, j), 0.0F);
    EXPECT_FLOAT_EQ(fill.i(0, j), 0.0F);
  }
  for (std::size_t i = 1; i <= 4; ++i) {
    EXPECT_FLOAT_EQ(fill.m(i, 0), 0.0F);
    EXPECT_FLOAT_EQ(fill.i(i, 0), 0.0F);
    EXPECT_FLOAT_EQ(fill.d(i, 0), 0.0F);
  }
}

TEST(PairHmm, MatricesStayNonNegative) {
  const PairHmmTask task = make_task("ACGTTGCA", "AGGTTACA");
  const PairHmmFill fill = wsim::align::pairhmm_fill(task);
  for (std::size_t i = 0; i < fill.m.rows(); ++i) {
    for (std::size_t j = 0; j < fill.m.cols(); ++j) {
      EXPECT_GE(fill.m(i, j), 0.0F);
      EXPECT_GE(fill.i(i, j), 0.0F);
      EXPECT_GE(fill.d(i, j), 0.0F);
    }
  }
}

class PairHmmPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

std::string random_dna(wsim::util::Rng& rng, int len) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = kBases[rng.uniform_int(0, 3)];
  }
  return s;
}

TEST_P(PairHmmPropertyTest, LikelihoodIsFiniteAndAtMostZero) {
  wsim::util::Rng rng(GetParam());
  const std::string hap = random_dna(rng, static_cast<int>(rng.uniform_int(8, 60)));
  const auto read_len =
      std::min<std::int64_t>(rng.uniform_int(4, 40), static_cast<std::int64_t>(hap.size()));
  const std::string read = random_dna(rng, static_cast<int>(read_len));
  const double log10 = wsim::align::pairhmm_log10(make_task(read, hap));
  EXPECT_TRUE(std::isfinite(log10));
  EXPECT_LE(log10, 1e-6);
}

TEST_P(PairHmmPropertyTest, TrueHaplotypeBeatsRandomOne) {
  wsim::util::Rng rng(GetParam() ^ 0x77ULL);
  const std::string hap = random_dna(rng, 50);
  const std::string decoy = random_dna(rng, 50);
  const std::string read = hap.substr(10, 25);
  const double true_ll = wsim::align::pairhmm_log10(make_task(read, hap, 35));
  const double decoy_ll = wsim::align::pairhmm_log10(make_task(read, decoy, 35));
  EXPECT_GT(true_ll, decoy_ll);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairHmmPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
