#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "wsim/align/smith_waterman.hpp"
#include "wsim/util/check.hpp"
#include "wsim/util/rng.hpp"

namespace {

using wsim::align::SwAlignment;
using wsim::align::SwFill;
using wsim::align::SwParams;

/// Small scoring scheme that keeps hand-computed examples readable.
SwParams simple_params() {
  SwParams p;
  p.match = 10;
  p.mismatch = -8;
  p.gap_open = -12;
  p.gap_extend = -2;
  return p;
}

TEST(SmithWaterman, IdenticalSequencesAlignFully) {
  const auto aln = wsim::align::sw_align("ACGTACGT", "ACGTACGT", simple_params());
  EXPECT_EQ(aln.score, 80);
  EXPECT_EQ(aln.cigar, "8M");
  EXPECT_EQ(aln.query_begin, 0U);
  EXPECT_EQ(aln.target_begin, 0U);
  EXPECT_EQ(aln.query_end, 8U);
  EXPECT_EQ(aln.target_end, 8U);
}

TEST(SmithWaterman, SubstringFoundInsideTarget) {
  const auto aln = wsim::align::sw_align("CGTA", "AACGTATT", simple_params());
  EXPECT_EQ(aln.score, 40);
  EXPECT_EQ(aln.cigar, "4M");
  EXPECT_EQ(aln.target_begin, 2U);
}

TEST(SmithWaterman, SingleMismatchTolerated) {
  // 7 matches + 1 mismatch = 70 - 8 = 62 beats splitting the alignment.
  const auto aln = wsim::align::sw_align("ACGTACGT", "ACGAACGT", simple_params());
  EXPECT_EQ(aln.score, 62);
  EXPECT_EQ(aln.cigar, "8M");
}

TEST(SmithWaterman, GapInQuery) {
  // Target has 2 extra bases; 10 matches - gap(2) = 100 - 14 = 86.
  const auto aln = wsim::align::sw_align("AAAAACCCCC", "AAAAAGGCCCCC", simple_params());
  EXPECT_EQ(aln.score, 10 * 10 - 12 - 2);
  EXPECT_EQ(aln.cigar, "5M2D5M");
}

TEST(SmithWaterman, GapInTarget) {
  const auto aln = wsim::align::sw_align("AAAAAGGCCCCC", "AAAAACCCCC", simple_params());
  EXPECT_EQ(aln.score, 86);
  EXPECT_EQ(aln.cigar, "5M2I5M");
}

TEST(SmithWaterman, AffineGapPreferredOverTwoOpens) {
  // A single 4-long gap (-12 -3*2 = -18) must beat two 2-long gaps
  // (-12-2 twice = -28); the CIGAR must show one run.
  const auto aln =
      wsim::align::sw_align("AAAAATTTTT", "AAAAAGGGGTTTTT", simple_params());
  EXPECT_EQ(aln.cigar, "5M4D5M");
  EXPECT_EQ(aln.score, 100 - 12 - 3 * 2);
}

TEST(SmithWaterman, UnrelatedSequencesGiveLocalBest) {
  const auto aln = wsim::align::sw_align("AAAA", "TTTT", simple_params());
  EXPECT_EQ(aln.score, 0);
  EXPECT_TRUE(aln.cigar.empty());
}

TEST(SmithWaterman, NBasesNeverMatch) {
  const auto aln = wsim::align::sw_align("NNNN", "NNNN", simple_params());
  EXPECT_EQ(aln.score, 0);
}

TEST(SmithWaterman, EmptyQueryYieldsEmptyAlignment) {
  const auto aln = wsim::align::sw_align("", "ACGT", simple_params());
  EXPECT_EQ(aln.score, 0);
  EXPECT_TRUE(aln.cigar.empty());
}

TEST(SmithWaterman, FillMatricesHaveDpShape) {
  const SwFill fill = wsim::align::sw_fill("ACGT", "ACG", simple_params());
  EXPECT_EQ(fill.h.rows(), 5U);
  EXPECT_EQ(fill.h.cols(), 4U);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(fill.h(0, j), 0);
  }
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(fill.h(i, 0), 0);
  }
}

TEST(SmithWaterman, BestCellOnLastRowOrColumn) {
  const SwFill fill =
      wsim::align::sw_fill("ACGTACGTAC", "TTACGTACGTACTT", simple_params());
  EXPECT_TRUE(fill.best_i == fill.h.rows() - 1 || fill.best_j == fill.h.cols() - 1);
  EXPECT_EQ(fill.best_score, fill.h(fill.best_i, fill.best_j));
}

// --- properties -----------------------------------------------------------

/// Re-scores a CIGAR against the sequences; must reproduce the DP score.
std::int32_t rescore(const SwAlignment& aln, std::string_view query,
                     std::string_view target, const SwParams& p) {
  std::int32_t score = 0;
  std::size_t qi = aln.query_begin;
  std::size_t tj = aln.target_begin;
  std::size_t pos = 0;
  while (pos < aln.cigar.size()) {
    std::size_t run = 0;
    while (pos < aln.cigar.size() && std::isdigit(aln.cigar[pos]) != 0) {
      run = run * 10 + static_cast<std::size_t>(aln.cigar[pos] - '0');
      ++pos;
    }
    const char op = aln.cigar[pos++];
    switch (op) {
      case 'M':
        for (std::size_t k = 0; k < run; ++k) {
          score += wsim::align::substitution_score(p, query[qi++], target[tj++]);
        }
        break;
      case 'I':
        score += p.gap_open + static_cast<std::int32_t>(run - 1) * p.gap_extend;
        qi += run;
        break;
      case 'D':
        score += p.gap_open + static_cast<std::int32_t>(run - 1) * p.gap_extend;
        tj += run;
        break;
      default:
        ADD_FAILURE() << "unexpected CIGAR op " << op;
    }
  }
  EXPECT_EQ(qi, aln.query_end);
  EXPECT_EQ(tj, aln.target_end);
  return score;
}

std::string random_dna(wsim::util::Rng& rng, int len) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = kBases[rng.uniform_int(0, 3)];
  }
  return s;
}

class SwPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwPropertyTest, CigarRescoresToDpScore) {
  wsim::util::Rng rng(GetParam());
  const SwParams p = simple_params();
  const std::string query = random_dna(rng, static_cast<int>(rng.uniform_int(5, 60)));
  const std::string target = random_dna(rng, static_cast<int>(rng.uniform_int(5, 80)));
  const SwAlignment aln = wsim::align::sw_align(query, target, p);
  if (!aln.cigar.empty()) {
    EXPECT_EQ(rescore(aln, query, target, p), aln.score)
        << "query=" << query << " target=" << target << " cigar=" << aln.cigar;
  } else {
    EXPECT_EQ(aln.score, 0);
  }
}

TEST_P(SwPropertyTest, ScoreNonNegativeAndBoundedByPerfect) {
  wsim::util::Rng rng(GetParam() ^ 0xabcdULL);
  const SwParams p = simple_params();
  const std::string query = random_dna(rng, static_cast<int>(rng.uniform_int(1, 50)));
  const std::string target = random_dna(rng, static_cast<int>(rng.uniform_int(1, 50)));
  const auto aln = wsim::align::sw_align(query, target, p);
  EXPECT_GE(aln.score, 0);
  const auto upper = static_cast<std::int32_t>(std::min(query.size(), target.size())) *
                     p.match;
  EXPECT_LE(aln.score, upper);
}

TEST_P(SwPropertyTest, ExactSubstringScoresFullMatch) {
  // A query cut verbatim from the target must align perfectly: the path
  // ends on the last DP row, which the HaplotypeCaller variant searches.
  wsim::util::Rng rng(GetParam() ^ 0x1234ULL);
  const SwParams p = simple_params();
  const std::string target = random_dna(rng, 60);
  const auto len = static_cast<std::size_t>(rng.uniform_int(4, 20));
  const auto start = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(target.size() - len)));
  const std::string query = target.substr(start, len);
  const auto aln = wsim::align::sw_align(query, target, p);
  EXPECT_EQ(aln.score, static_cast<std::int32_t>(len) * p.match);
  EXPECT_EQ(aln.cigar, std::to_string(len) + "M");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace

namespace {

TEST(SoftClips, EmittedForOverhangs) {
  // The query's GG prefix has no home in the target; the 7M core ends on
  // the last DP row/column so the HaplotypeCaller search finds it, and
  // the unaligned prefix becomes a soft clip.
  const auto aln = wsim::align::sw_align("GGACGTATT", "ACGTATT", simple_params());
  EXPECT_EQ(aln.cigar, "7M");
  EXPECT_EQ(aln.query_begin, 2U);
  EXPECT_EQ(wsim::align::cigar_with_softclips(aln, 9), "2S7M");
}

TEST(SoftClips, TailClipWhenTargetEndsFirst) {
  // Query runs past the target: the tail is clipped.
  const auto aln = wsim::align::sw_align("ACGTATTGG", "ACGTATT", simple_params());
  EXPECT_EQ(aln.cigar, "7M");
  EXPECT_EQ(wsim::align::cigar_with_softclips(aln, 9), "7M2S");
}

TEST(SoftClips, AbsentForFullAlignment) {
  const auto aln = wsim::align::sw_align("ACGTACGT", "ACGTACGT", simple_params());
  EXPECT_EQ(wsim::align::cigar_with_softclips(aln, 8), "8M");
}

TEST(SoftClips, RejectsInconsistentLength) {
  const auto aln = wsim::align::sw_align("ACGT", "ACGT", simple_params());
  EXPECT_THROW(wsim::align::cigar_with_softclips(aln, 2), wsim::util::CheckError);
}

}  // namespace
