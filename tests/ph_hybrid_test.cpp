// Tests for the rejected multi-warp hybrid PairHMM design: it must be
// numerically identical to PH1/PH2 (it computes the same recurrence), and
// it must lose to the one-warp shuffle design exactly as the paper's
// Section IV-C2 argues.

#include <gtest/gtest.h>

#include <string>

#include "wsim/align/pairhmm.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/model/breakdown.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/util/rng.hpp"

namespace {

using wsim::align::PairHmmTask;
using wsim::kernels::PhDesign;
using wsim::kernels::PhRunner;
using wsim::kernels::PhRunOptions;
using wsim::workload::PhBatch;

const wsim::simt::DeviceSpec kDev = wsim::simt::make_k1200();

PairHmmTask make_task(std::string read, std::string hap, std::uint8_t qual = 30) {
  PairHmmTask task;
  task.read = std::move(read);
  task.hap = std::move(hap);
  task.base_quals.assign(task.read.size(), qual);
  task.ins_quals.assign(task.read.size(), 45);
  task.del_quals.assign(task.read.size(), 45);
  return task;
}

std::string random_dna(wsim::util::Rng& rng, int len) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = "ACGT"[rng.uniform_int(0, 3)];
  }
  return s;
}

TEST(PhHybrid, MatchesReferenceAcrossWarpCounts) {
  wsim::util::Rng rng(41);
  const PhRunner runner(PhDesign::kHybrid);
  PhBatch batch;
  // One task per variant bucket: 1, 2, 3 and 4 warps on the anti-diagonal.
  for (const int len : {20, 40, 80, 120, 127}) {
    const std::string hap = random_dna(rng, len + 20);
    std::string read = hap.substr(5, static_cast<std::size_t>(len));
    if (len > 6) {
      read[static_cast<std::size_t>(len / 3)] = 'A';
    }
    batch.push_back(make_task(std::move(read), hap));
  }
  PhRunOptions opt;
  opt.collect_outputs = true;
  const auto result = runner.run_batch(kDev, batch, opt);
  for (std::size_t t = 0; t < batch.size(); ++t) {
    const double ref = wsim::align::pairhmm_log10(batch[t]);
    EXPECT_NEAR(result.log10[t], ref, 5e-3 + std::abs(ref) * 1e-3) << "task " << t;
  }
}

TEST(PhHybrid, AgreesWithOtherDesigns) {
  wsim::util::Rng rng(43);
  const std::string hap = random_dna(rng, 150);
  const PhBatch batch = {make_task(hap.substr(10, 100), hap)};
  PhRunOptions opt;
  opt.collect_outputs = true;
  const double shared =
      PhRunner(PhDesign::kShared).run_batch(kDev, batch, opt).log10[0];
  const double shuffle =
      PhRunner(PhDesign::kShuffle).run_batch(kDev, batch, opt).log10[0];
  const double hybrid =
      PhRunner(PhDesign::kHybrid).run_batch(kDev, batch, opt).log10[0];
  EXPECT_NEAR(hybrid, shared, 1e-4 + std::abs(shared) * 1e-4);
  EXPECT_NEAR(hybrid, shuffle, 1e-4 + std::abs(shuffle) * 1e-4);
}

TEST(PhHybrid, PaysShuffleAndSmemAndSync) {
  // The structural indictment: the hybrid's hot loop contains shuffles
  // AND shared-memory traffic AND a barrier — the paper's "every shuffle
  // accompanied by a shared memory access across the warps".
  const auto kernel = wsim::kernels::build_ph_hybrid_kernel(128);
  const auto b = wsim::model::hot_loop_breakdown(kernel);
  EXPECT_GT(b.shuffle_total(), 0U);
  EXPECT_GT(b.smem_total(), 0U);
  EXPECT_EQ(b.barriers, 1U);
}

TEST(PhHybrid, LosesToOneWarpShuffleDesign) {
  // Block-level latency on a 4-warp task: PH2's one-warp register
  // blocking must beat the hybrid (which pays a sync per step).
  wsim::util::Rng rng(47);
  const std::string hap = random_dna(rng, 200);
  const PhBatch batch = {make_task(hap.substr(0, 120), hap)};
  const auto hybrid = PhRunner(PhDesign::kHybrid).run_batch(kDev, batch);
  const auto shuffle = PhRunner(PhDesign::kShuffle).run_batch(kDev, batch);
  EXPECT_LT(shuffle.run.launch.representative.cycles,
            hybrid.run.launch.representative.cycles);
}

TEST(PhHybrid, DesignAccessor) {
  EXPECT_EQ(PhRunner(PhDesign::kHybrid).design(), PhDesign::kHybrid);
  EXPECT_EQ(PhRunner(wsim::kernels::CommMode::kShuffle).design(),
            PhDesign::kShuffle);
}

}  // namespace
