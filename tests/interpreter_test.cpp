#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "wsim/simt/builder.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/interpreter.hpp"
#include "wsim/simt/memory.hpp"
#include "wsim/util/check.hpp"

namespace {

using wsim::simt::BlockResult;
using wsim::simt::Cmp;
using wsim::simt::DeviceSpec;
using wsim::simt::DType;
using wsim::simt::GlobalMemory;
using wsim::simt::imm_f32;
using wsim::simt::imm_i64;
using wsim::simt::Kernel;
using wsim::simt::KernelBuilder;
using wsim::simt::MemWidth;
using wsim::simt::Op;
using wsim::simt::SReg;
using wsim::simt::VReg;
using wsim::util::CheckError;

const DeviceSpec kDev = wsim::simt::make_k1200();

/// tid*4 address helper used by most kernels below.
VReg tid_addr(KernelBuilder& kb, wsim::simt::Operand base, VReg tid) {
  return kb.iadd(base, kb.imul(tid, imm_i64(4)));
}

TEST(Interpreter, IntegerAluAndStore) {
  KernelBuilder kb("alu", 32);
  const SReg out = kb.param();
  const VReg t = kb.tid();
  const VReg v = kb.iadd(kb.imul(t, imm_i64(3)), imm_i64(7));  // 3*tid + 7
  kb.stg(tid_addr(kb, out, t), v);
  const Kernel k = kb.build();

  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  run_block(k, kDev, gmem, args);
  const auto result = gmem.read_i32(buf, 32);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(result[static_cast<std::size_t>(i)], 3 * i + 7);
  }
}

TEST(Interpreter, FloatArithmetic) {
  KernelBuilder kb("falu", 32);
  const SReg out = kb.param();
  const VReg t = kb.tid();
  // f = fma(tid, 0.5, 1.25)
  const VReg tf = kb.emit(Op::kMov, t);  // integer bits; build float from ops
  (void)tf;
  const VReg f = kb.ffma(imm_f32(2.0F), imm_f32(0.5F), imm_f32(1.25F));
  const VReg g = kb.fmax(f, imm_f32(2.0F));
  const VReg h = kb.fmin(kb.fsub(g, imm_f32(0.25F)), imm_f32(100.0F));
  kb.stg(tid_addr(kb, out, t), h);
  const Kernel k = kb.build();

  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  run_block(k, kDev, gmem, args);
  const auto result = gmem.read_f32(buf, 32);
  for (const float v : result) {
    EXPECT_FLOAT_EQ(v, 2.0F);  // fma=2.25, max=2.25, 2.25-0.25=2.0
  }
}

TEST(Interpreter, SetpSelpPredicateSemantics) {
  KernelBuilder kb("pred", 32);
  const SReg out = kb.param();
  const VReg t = kb.tid();
  const VReg p = kb.setp(Cmp::kLt, DType::kI64, t, imm_i64(10));
  const VReg v = kb.selp(p, imm_i64(111), imm_i64(222));
  kb.stg(tid_addr(kb, out, t), v);
  const Kernel k = kb.build();

  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  run_block(k, kDev, gmem, args);
  const auto result = gmem.read_i32(buf, 32);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(result[static_cast<std::size_t>(i)], i < 10 ? 111 : 222);
  }
}

TEST(Interpreter, PredicatedStoreSkipsInactiveLanes) {
  KernelBuilder kb("predst", 32);
  const SReg out = kb.param();
  const VReg t = kb.tid();
  const VReg p = kb.setp(Cmp::kGe, DType::kI64, t, imm_i64(16));
  kb.begin_pred(p);
  kb.stg(tid_addr(kb, out, t), imm_i64(9));
  kb.end_pred();
  const Kernel k = kb.build();

  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  run_block(k, kDev, gmem, args);
  const auto result = gmem.read_i32(buf, 32);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(result[static_cast<std::size_t>(i)], i >= 16 ? 9 : 0);
  }
}

TEST(Interpreter, PredicatedWritePreservesOldValue) {
  KernelBuilder kb("predmov", 32);
  const SReg out = kb.param();
  const VReg t = kb.tid();
  const VReg v = kb.mov(imm_i64(5));
  const VReg p = kb.setp(Cmp::kEq, DType::kI64, t, imm_i64(0));
  kb.begin_pred(p);
  kb.assign(v, imm_i64(42));
  kb.end_pred();
  kb.stg(tid_addr(kb, out, t), v);
  const Kernel k = kb.build();

  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  run_block(k, kDev, gmem, args);
  const auto result = gmem.read_i32(buf, 32);
  EXPECT_EQ(result[0], 42);
  for (int i = 1; i < 32; ++i) {
    EXPECT_EQ(result[static_cast<std::size_t>(i)], 5);
  }
}

TEST(Interpreter, LoopsIterateScalarTripCount) {
  KernelBuilder kb("loop", 32);
  const SReg out = kb.param();
  const SReg trips = kb.param();
  const VReg t = kb.tid();
  const VReg acc = kb.mov(imm_i64(0));
  kb.loop(trips);
  kb.assign(acc, kb.iadd(acc, imm_i64(2)));
  kb.endloop();
  kb.stg(tid_addr(kb, out, t), acc);
  const Kernel k = kb.build();

  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf), 13};
  run_block(k, kDev, gmem, args);
  EXPECT_EQ(gmem.read_i32(buf, 1)[0], 26);
}

TEST(Interpreter, ZeroTripLoopBodySkipped) {
  KernelBuilder kb("loop0", 32);
  const SReg out = kb.param();
  const SReg trips = kb.param();
  const VReg t = kb.tid();
  const VReg acc = kb.mov(imm_i64(77));
  kb.loop(trips);
  kb.assign(acc, imm_i64(0));
  kb.endloop();
  // A second loop afterwards must still work (loop-frame hygiene).
  kb.loop(imm_i64(2));
  kb.assign(acc, kb.iadd(acc, imm_i64(1)));
  kb.endloop();
  kb.stg(tid_addr(kb, out, t), acc);
  const Kernel k = kb.build();

  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf), 0};
  run_block(k, kDev, gmem, args);
  EXPECT_EQ(gmem.read_i32(buf, 1)[0], 79);
}

TEST(Interpreter, NestedLoops) {
  KernelBuilder kb("nest", 32);
  const SReg out = kb.param();
  const VReg t = kb.tid();
  const VReg acc = kb.mov(imm_i64(0));
  kb.loop(imm_i64(3));
  kb.loop(imm_i64(5));
  kb.assign(acc, kb.iadd(acc, imm_i64(1)));
  kb.endloop();
  kb.endloop();
  kb.stg(tid_addr(kb, out, t), acc);
  const Kernel k = kb.build();

  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  run_block(k, kDev, gmem, args);
  EXPECT_EQ(gmem.read_i32(buf, 1)[0], 15);
}

TEST(Interpreter, SharedMemoryRoundTrip) {
  KernelBuilder kb("smem", 32);
  const SReg out = kb.param();
  const int buf_off = kb.alloc_smem(32 * 4);
  const VReg t = kb.tid();
  const VReg addr = kb.iadd(imm_i64(buf_off), kb.imul(t, imm_i64(4)));
  kb.sts(addr, kb.imul(t, imm_i64(10)));
  kb.bar();
  // Read the neighbour's slot (tid+1 mod 32).
  const VReg nt = kb.iand(kb.iadd(t, imm_i64(1)), imm_i64(31));
  const VReg naddr = kb.iadd(imm_i64(buf_off), kb.imul(nt, imm_i64(4)));
  const VReg v = kb.lds(naddr);
  kb.stg(tid_addr(kb, out, t), v);
  const Kernel k = kb.build();

  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  run_block(k, kDev, gmem, args);
  const auto result = gmem.read_i32(buf, 32);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(result[static_cast<std::size_t>(i)], ((i + 1) % 32) * 10);
  }
}

TEST(Interpreter, ByteWidthLoadsZeroExtend) {
  KernelBuilder kb("bytes", 32);
  const SReg in = kb.param();
  const SReg out = kb.param();
  const VReg t = kb.tid();
  const VReg v = kb.ldg(kb.iadd(in, t), 0, MemWidth::kB1);
  kb.stg(tid_addr(kb, out, t), v);
  const Kernel k = kb.build();

  GlobalMemory gmem;
  const auto src = gmem.alloc(32);
  const auto dst = gmem.alloc(32 * 4);
  std::vector<std::uint8_t> bytes(32);
  for (int i = 0; i < 32; ++i) {
    bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(200 + i % 50);
  }
  gmem.write_u8(src, bytes);
  std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(src),
                                     static_cast<std::uint64_t>(dst)};
  run_block(k, kDev, gmem, args);
  const auto result = gmem.read_i32(dst, 32);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(result[static_cast<std::size_t>(i)], 200 + i % 50);
  }
}

TEST(Interpreter, SharedMemoryOutOfBoundsThrows) {
  KernelBuilder kb("oob", 32);
  kb.alloc_smem(16);
  const VReg t = kb.tid();
  kb.sts(kb.imul(t, imm_i64(4)), t);  // lanes >= 4 overflow the 16 bytes
  const Kernel k = kb.build();
  GlobalMemory gmem;
  EXPECT_THROW(run_block(k, kDev, gmem, {}), CheckError);
}

TEST(Interpreter, GlobalMemoryOutOfBoundsThrows) {
  KernelBuilder kb("oobg", 32);
  const VReg t = kb.tid();
  kb.stg(kb.imul(t, imm_i64(4)), t);
  const Kernel k = kb.build();
  GlobalMemory gmem;  // nothing allocated
  EXPECT_THROW(run_block(k, kDev, gmem, {}), CheckError);
}

TEST(Interpreter, MultiWarpBarrierCommunicatesThroughSmem) {
  KernelBuilder kb("warps", 64);
  const SReg out = kb.param();
  const int buf_off = kb.alloc_smem(64 * 4);
  const VReg t = kb.tid();
  kb.sts(kb.iadd(imm_i64(buf_off), kb.imul(t, imm_i64(4))), t);
  kb.bar();
  // Each thread reads the mirrored slot (63 - tid), crossing the warp
  // boundary for every lane.
  const VReg mirror = kb.isub(imm_i64(63), t);
  const VReg v = kb.lds(kb.iadd(imm_i64(buf_off), kb.imul(mirror, imm_i64(4))));
  kb.stg(tid_addr(kb, out, t), v);
  const Kernel k = kb.build();

  GlobalMemory gmem;
  const auto buf = gmem.alloc(64 * 4);
  std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  const BlockResult res = run_block(k, kDev, gmem, args);
  const auto result = gmem.read_i32(buf, 64);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(result[static_cast<std::size_t>(i)], 63 - i);
  }
  EXPECT_EQ(res.barriers, 1U);
}

// --- timing ---------------------------------------------------------------

TEST(InterpreterTiming, DependentChainScalesWithLatency) {
  // A loop-carried multiply chain: cycles/iteration must be close to the
  // f32 ALU latency plus loop overhead, and doubling iterations must
  // roughly double the time (Eq. 1/2 structure).
  auto run_iters = [](int iters) {
    KernelBuilder kb("chain", 32);
    const SReg out = kb.param();
    const VReg t = kb.tid();
    const VReg a = kb.mov(imm_f32(1.0F));
    kb.loop(imm_i64(iters));
    kb.assign(a, kb.fmul(a, a));
    kb.endloop();
    kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))), a);
    const Kernel k = kb.build();
    GlobalMemory gmem;
    const auto buf = gmem.alloc(32 * 4);
    std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
    return run_block(k, kDev, gmem, args).cycles;
  };
  const long long c100 = run_iters(100);
  const long long c200 = run_iters(200);
  const double per_iter = static_cast<double>(c200 - c100) / 100.0;
  EXPECT_GE(per_iter, kDev.lat.falu);
  EXPECT_LE(per_iter, kDev.lat.falu + 6);
}

TEST(InterpreterTiming, IndependentInstructionsPipeline) {
  // 100 independent adds issue back-to-back: total time must be far below
  // 100 * latency.
  KernelBuilder kb("pipe", 32);
  const SReg out = kb.param();
  const VReg t = kb.tid();
  std::vector<VReg> vals;
  for (int i = 0; i < 100; ++i) {
    vals.push_back(kb.iadd(t, imm_i64(i)));
  }
  VReg acc = vals[0];
  for (std::size_t i = 1; i < vals.size(); ++i) {
    acc = kb.imax(acc, vals[i]);
  }
  kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))), acc);
  const Kernel k = kb.build();
  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  const BlockResult res = run_block(k, kDev, gmem, args);
  // 100 independent adds ≈ 100 issue slots; the dependent max-chain then
  // costs ~100 * ialu. Fully serialized, the 200 instructions would cost
  // ~200 * ialu = 1200 cycles; pipelining must land well below that.
  EXPECT_LT(res.cycles, 900);
}

TEST(InterpreterTiming, BankConflictsSerialize) {
  auto run_stride = [](int stride) {
    KernelBuilder kb("bank", 32);
    const int buf_off = kb.alloc_smem(32 * 32 * 4);
    const VReg t = kb.tid();
    const VReg addr =
        kb.iadd(imm_i64(buf_off), kb.imul(t, imm_i64(4L * stride)));
    const VReg v = kb.mov(imm_i64(0));
    kb.loop(imm_i64(50));
    kb.assign(v, kb.iadd(kb.lds(addr), v));
    kb.endloop();
    kb.stg(kb.mov(imm_i64(0)), v);
    const Kernel k = kb.build();
    GlobalMemory gmem;
    gmem.alloc(64);
    return run_block(k, kDev, gmem, {}).cycles;
  };
  const long long stride1 = run_stride(1);   // conflict-free
  const long long stride32 = run_stride(32); // 32-way conflict
  EXPECT_GT(stride32, stride1 + 50 * 31 * kDev.lat.bank_conflict / 2);
}

TEST(InterpreterTiming, BarrierAddsSyncLatency) {
  auto run_with_bars = [](int bars) {
    KernelBuilder kb("bars", 64);
    kb.alloc_smem(64);
    for (int i = 0; i < bars; ++i) {
      kb.bar();
    }
    const Kernel k = kb.build();
    GlobalMemory gmem;
    return run_block(k, kDev, gmem, {}).cycles;
  };
  const long long c0 = run_with_bars(0);
  const long long c10 = run_with_bars(10);
  EXPECT_GE(c10 - c0, 10LL * kDev.lat.sync_barrier);
}

TEST(InterpreterTiming, SmemTransactionCountsConflictReplays) {
  KernelBuilder kb("smemtx", 32);
  const int buf_off = kb.alloc_smem(32 * 2 * 4);
  const VReg t = kb.tid();
  // stride-2: two lanes share each bank -> 2 transactions per access.
  const VReg addr = kb.iadd(imm_i64(buf_off), kb.imul(t, imm_i64(8)));
  kb.sts(addr, t);
  const Kernel k = kb.build();
  GlobalMemory gmem;
  const BlockResult res = run_block(k, kDev, gmem, {});
  EXPECT_EQ(res.smem_transactions, 2U);
}

TEST(Interpreter, OpCountsTrackShuffleAndSmem) {
  KernelBuilder kb("counts", 32);
  const VReg t = kb.tid();
  const int buf_off = kb.alloc_smem(32 * 4);
  const VReg addr = kb.iadd(imm_i64(buf_off), kb.imul(t, imm_i64(4)));
  kb.loop(imm_i64(5));
  kb.sts(addr, t);
  const VReg x = kb.lds(addr);
  const VReg y = kb.shfl_down(x, imm_i64(1));
  kb.stg(kb.mov(imm_i64(0)), kb.iadd(x, y));
  kb.endloop();
  const Kernel k = kb.build();
  GlobalMemory gmem;
  gmem.alloc(64);
  const BlockResult res = run_block(k, kDev, gmem, {});
  EXPECT_EQ(res.count(Op::kSts), 5U);
  EXPECT_EQ(res.count(Op::kLds), 5U);
  EXPECT_EQ(res.count(Op::kShflDown), 5U);
  EXPECT_EQ(res.shuffle_count(), 5U);
  EXPECT_EQ(res.smem_instr_count(), 10U);
}

}  // namespace
