#include <gtest/gtest.h>

#include <algorithm>

#include "wsim/align/pairhmm.hpp"
#include "wsim/workload/batching.hpp"
#include "wsim/workload/generator.hpp"
#include "wsim/workload/task.hpp"

namespace {

using wsim::workload::Dataset;
using wsim::workload::DatasetStats;
using wsim::workload::GeneratorConfig;

GeneratorConfig small_config() {
  GeneratorConfig cfg;
  cfg.regions = 12;
  cfg.ph_tasks_per_region_mean = 40.0;  // keep tests fast
  return cfg;
}

TEST(Generator, DeterministicForSameSeed) {
  const Dataset a = wsim::workload::generate_dataset(small_config());
  const Dataset b = wsim::workload::generate_dataset(small_config());
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (std::size_t r = 0; r < a.regions.size(); ++r) {
    ASSERT_EQ(a.regions[r].sw_tasks.size(), b.regions[r].sw_tasks.size());
    for (std::size_t t = 0; t < a.regions[r].sw_tasks.size(); ++t) {
      EXPECT_EQ(a.regions[r].sw_tasks[t].query, b.regions[r].sw_tasks[t].query);
      EXPECT_EQ(a.regions[r].sw_tasks[t].target, b.regions[r].sw_tasks[t].target);
    }
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig cfg = small_config();
  const Dataset a = wsim::workload::generate_dataset(cfg);
  cfg.seed = 777;
  const Dataset b = wsim::workload::generate_dataset(cfg);
  bool any_diff = a.regions.size() != b.regions.size();
  for (std::size_t r = 0; !any_diff && r < a.regions.size(); ++r) {
    any_diff = a.regions[r].sw_tasks.size() != b.regions[r].sw_tasks.size() ||
               (!a.regions[r].sw_tasks.empty() &&
                a.regions[r].sw_tasks[0].query != b.regions[r].sw_tasks[0].query);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, EveryTaskIsStructurallyValid) {
  const Dataset ds = wsim::workload::generate_dataset(small_config());
  const GeneratorConfig cfg = small_config();
  for (const auto& region : ds.regions) {
    EXPECT_FALSE(region.sw_tasks.empty());
    EXPECT_FALSE(region.ph_tasks.empty());
    for (const auto& task : region.sw_tasks) {
      EXPECT_GE(static_cast<int>(task.query.size()), cfg.sw_query_len_min);
      EXPECT_LE(static_cast<int>(task.query.size()), cfg.sw_query_len_max);
      EXPECT_FALSE(task.target.empty());
      EXPECT_EQ(task.query.find_first_not_of("ACGT"), std::string::npos);
    }
    for (const auto& task : region.ph_tasks) {
      EXPECT_NO_THROW(wsim::align::validate(task));
      EXPECT_LT(task.read.size(), 128U);  // PH1's 128-thread premise
      EXPECT_LE(task.read.size(), task.hap.size());
    }
  }
}

TEST(Generator, BatchSizeStatisticsMatchPaper) {
  GeneratorConfig cfg;
  cfg.regions = 64;
  const Dataset ds = wsim::workload::generate_dataset(cfg);
  const DatasetStats stats = wsim::workload::compute_stats(ds);
  // Paper: on average 4 SW tasks and 189 PairHMM tasks per region batch.
  EXPECT_NEAR(stats.avg_sw_tasks_per_region, 4.0, 1.5);
  EXPECT_NEAR(stats.avg_ph_tasks_per_region, 189.0, 15.0);
}

TEST(Generator, ReadsResembleTheirHaplotypes) {
  // Reads are sampled from haplotypes with ~1% errors, so a large
  // fraction of reads must occur nearly verbatim. Check via a crude
  // identity proxy: shared 12-mer between read and haplotype.
  const Dataset ds = wsim::workload::generate_dataset(small_config());
  int with_seed_match = 0;
  int total = 0;
  for (const auto& region : ds.regions) {
    for (const auto& task : region.ph_tasks) {
      ++total;
      bool found = false;
      for (std::size_t pos = 0; pos + 12 <= task.read.size() && !found; pos += 6) {
        found = task.hap.find(task.read.substr(pos, 12)) != std::string::npos;
      }
      with_seed_match += found ? 1 : 0;
    }
  }
  EXPECT_GT(with_seed_match, total * 3 / 4);
}

TEST(Batching, RegionBatchesMatchRegions) {
  const Dataset ds = wsim::workload::generate_dataset(small_config());
  const auto sw = wsim::workload::sw_region_batches(ds);
  const auto ph = wsim::workload::ph_region_batches(ds);
  EXPECT_EQ(sw.size(), ds.regions.size());
  EXPECT_EQ(ph.size(), ds.regions.size());
}

TEST(Batching, RebatchPreservesAllTasks) {
  const Dataset ds = wsim::workload::generate_dataset(small_config());
  const auto all = wsim::workload::sw_all_tasks(ds);
  for (const std::size_t size : {1UL, 7UL, 100UL, 100000UL}) {
    const auto batches = wsim::workload::sw_rebatch(ds, size);
    std::size_t total = 0;
    for (const auto& b : batches) {
      EXPECT_LE(b.size(), size);
      total += b.size();
    }
    EXPECT_EQ(total, all.size());
  }
}

TEST(Batching, RebatchRejectsZero) {
  const Dataset ds = wsim::workload::generate_dataset(small_config());
  EXPECT_THROW(wsim::workload::sw_rebatch(ds, 0), wsim::util::CheckError);
}

TEST(Batching, BiggestBatchIsMaximal) {
  const Dataset ds = wsim::workload::generate_dataset(small_config());
  const auto biggest = wsim::workload::ph_biggest_batch(ds);
  for (const auto& batch : wsim::workload::ph_region_batches(ds)) {
    EXPECT_GE(biggest.size(), batch.size());
  }
}

TEST(Batching, BiggestBatchThrowsOnEmptyDataset) {
  // No regions at all.
  EXPECT_THROW(wsim::workload::sw_biggest_batch({}), wsim::util::CheckError);
  EXPECT_THROW(wsim::workload::ph_biggest_batch({}), wsim::util::CheckError);
  // Regions that exist but carry no tasks are just as empty.
  Dataset hollow;
  hollow.regions.resize(3);
  EXPECT_THROW(wsim::workload::sw_biggest_batch(hollow), wsim::util::CheckError);
  EXPECT_THROW(wsim::workload::ph_biggest_batch(hollow), wsim::util::CheckError);
}

TEST(Batching, BiggestBatchTieBreaksFirstWins) {
  // Two regions with the same task count but distinguishable contents: the
  // contract (pinned in batching.cpp) is that the earliest maximum wins.
  Dataset ds;
  ds.regions.resize(2);
  ds.regions[0].sw_tasks = {{"AAAA", "AAAATTTT"}, {"CCCC", "CCCCGGGG"}};
  ds.regions[1].sw_tasks = {{"GGGG", "GGGGTTTT"}, {"TTTT", "TTTTAAAA"}};
  const auto sw = wsim::workload::sw_biggest_batch(ds);
  ASSERT_EQ(sw.size(), 2U);
  EXPECT_EQ(sw[0].query, "AAAA");

  const auto make_ph = [](const std::string& read, const std::string& hap) {
    wsim::align::PairHmmTask task;
    task.read = read;
    task.hap = hap;
    task.base_quals.assign(read.size(), 30);
    task.ins_quals.assign(read.size(), 45);
    task.del_quals.assign(read.size(), 45);
    return task;
  };
  ds.regions[0].ph_tasks = {make_ph("ACGT", "ACGTACGT")};
  ds.regions[1].ph_tasks = {make_ph("TGCA", "TGCATGCA")};
  const auto ph = wsim::workload::ph_biggest_batch(ds);
  ASSERT_EQ(ph.size(), 1U);
  EXPECT_EQ(ph[0].read, "ACGT");
}

TEST(Batching, LengthGroupingBucketsAscendingAndStable) {
  const Dataset ds = wsim::workload::generate_dataset(small_config());
  const auto all = wsim::workload::sw_all_tasks(ds);
  const std::size_t granularity = 16;
  const auto batches = wsim::workload::sw_length_grouped(all, granularity, 100000);
  // Every task survives, batches are bucket-homogeneous, buckets ascend.
  std::size_t total = 0;
  std::size_t last_bucket = 0;
  for (const auto& batch : batches) {
    ASSERT_FALSE(batch.empty());
    const auto bucket = wsim::workload::length_bucket(batch.front(), granularity);
    for (const auto& task : batch) {
      EXPECT_EQ(wsim::workload::length_bucket(task, granularity), bucket);
    }
    EXPECT_GE(bucket, last_bucket);
    last_bucket = bucket;
    total += batch.size();
  }
  EXPECT_EQ(total, all.size());
  // max_batch caps every group; granularity must be positive.
  for (const auto& batch : wsim::workload::sw_length_grouped(all, granularity, 3)) {
    EXPECT_LE(batch.size(), 3U);
  }
  EXPECT_THROW(wsim::workload::sw_length_grouped(all, 0, 8),
               wsim::util::CheckError);
  const auto ph_all = wsim::workload::ph_all_tasks(ds);
  std::size_t ph_total = 0;
  for (const auto& batch : wsim::workload::ph_length_grouped(ph_all, 8, 64)) {
    EXPECT_LE(batch.size(), 64U);
    ph_total += batch.size();
  }
  EXPECT_EQ(ph_total, ph_all.size());
}

TEST(Batching, CellCountsAreConsistent) {
  const Dataset ds = wsim::workload::generate_dataset(small_config());
  const DatasetStats stats = wsim::workload::compute_stats(ds);
  std::size_t sw_cells = 0;
  for (const auto& batch : wsim::workload::sw_region_batches(ds)) {
    sw_cells += wsim::workload::batch_cells(batch);
  }
  EXPECT_EQ(sw_cells, stats.total_sw_cells);
  std::size_t ph_cells = 0;
  for (const auto& batch : wsim::workload::ph_region_batches(ds)) {
    ph_cells += wsim::workload::batch_cells(batch);
  }
  EXPECT_EQ(ph_cells, stats.total_ph_cells);
}

}  // namespace
