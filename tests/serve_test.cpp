#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "wsim/fleet/fleet.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/serve/batch_former.hpp"
#include "wsim/serve/queue.hpp"
#include "wsim/serve/service.hpp"
#include "wsim/serve/stats.hpp"
#include "wsim/simt/engine.hpp"
#include "wsim/util/rng.hpp"
#include "wsim/workload/batching.hpp"
#include "wsim/workload/generator.hpp"

namespace {

using wsim::serve::AlignmentService;
using wsim::serve::PairHmmRequest;
using wsim::serve::Priority;
using wsim::serve::RejectReason;
using wsim::serve::ServiceConfig;
using wsim::serve::SwRequest;
using wsim::serve::SwResponse;

wsim::workload::Dataset small_dataset(std::uint64_t seed = 11) {
  wsim::workload::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.regions = 3;
  cfg.ph_tasks_per_region_mean = 6.0;
  cfg.sw_query_len_min = 40;
  cfg.sw_query_len_max = 90;
  cfg.sw_target_len_min = 60;
  cfg.sw_target_len_max = 120;
  return wsim::workload::generate_dataset(cfg);
}

ServiceConfig base_config() {
  ServiceConfig cfg;
  cfg.device = wsim::simt::make_k1200();
  return cfg;
}

// ---------------------------------------------------------------------------
// Acceptance (a): responses are bit-identical to running the same tasks
// directly through the runners — batching moves time, not values.
TEST(Serve, ResultsMatchDirectExecutionExactly) {
  const auto dataset = small_dataset();
  const auto sw_tasks = wsim::workload::sw_all_tasks(dataset);
  const auto ph_tasks = wsim::workload::ph_all_tasks(dataset);

  ServiceConfig cfg = base_config();
  cfg.collect_outputs = true;
  AlignmentService service(cfg);

  std::vector<wsim::serve::Ticket<wsim::serve::SwResponse>> sw_tickets;
  std::vector<wsim::serve::Ticket<wsim::serve::PairHmmResponse>> ph_tickets;
  double t = 0.0;
  for (const auto& task : sw_tasks) {
    service.advance_to(t);
    const auto submit = service.submit(SwRequest{task, Priority::kNormal, {}, {}, {}});
    ASSERT_TRUE(submit.admitted());
    sw_tickets.push_back(submit.ticket);
    t += 25e-6;
  }
  for (const auto& task : ph_tasks) {
    service.advance_to(t);
    const auto submit =
        service.submit(PairHmmRequest{task, Priority::kNormal, {}, {}, {}});
    ASSERT_TRUE(submit.admitted());
    ph_tickets.push_back(submit.ticket);
    t += 25e-6;
  }
  service.drain();

  // Direct execution: everything in one batch per kind, same designs.
  const wsim::kernels::SwRunner sw_runner(cfg.sw_design);
  wsim::kernels::SwRunOptions sw_opt;
  sw_opt.collect_outputs = true;
  const auto sw_direct = sw_runner.run_batch(cfg.device, sw_tasks, sw_opt);
  for (std::size_t i = 0; i < sw_tasks.size(); ++i) {
    ASSERT_TRUE(sw_tickets[i].ready()) << i;
    const SwResponse& response = sw_tickets[i].get();
    EXPECT_EQ(response.alignment.score, sw_direct.outputs[i].alignment.score) << i;
    EXPECT_EQ(response.alignment.cigar, sw_direct.outputs[i].alignment.cigar) << i;
    EXPECT_GE(response.batch_tasks, 1U);
  }

  const wsim::kernels::PhRunner ph_runner(cfg.ph_design);
  wsim::kernels::PhRunOptions ph_opt;
  ph_opt.collect_outputs = true;
  ph_opt.double_fallback = cfg.double_fallback;
  const auto ph_direct = ph_runner.run_batch(cfg.device, ph_tasks, ph_opt);
  for (std::size_t i = 0; i < ph_tasks.size(); ++i) {
    ASSERT_TRUE(ph_tickets[i].ready()) << i;
    // Bit-identical, not approximately equal.
    EXPECT_DOUBLE_EQ(ph_tickets[i].get().log10, ph_direct.log10[i]) << i;
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.completed(), sw_tasks.size() + ph_tasks.size());
  EXPECT_EQ(stats.queue_depth, 0U);
  EXPECT_EQ(stats.rejected(), 0U);
}

// ---------------------------------------------------------------------------
// Acceptance (b): a full queue answers with a backpressure reason
// immediately — submit never blocks and never silently drops.
TEST(Serve, FullQueueRejectsWithBackpressure) {
  const auto sw_tasks = wsim::workload::sw_all_tasks(small_dataset());
  ASSERT_GE(sw_tasks.size(), 4U);

  ServiceConfig cfg = base_config();
  cfg.collect_outputs = false;
  cfg.max_queue_tasks = 3;
  cfg.policy.max_batch_delay = 1.0;           // no delay flush in this test
  cfg.policy.target_batch_cells = 1u << 30;   // no cell-target flush either
  AlignmentService service(cfg);

  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(
        service.submit(SwRequest{sw_tasks[i], Priority::kNormal, {}, {}, {}})
            .admitted());
  }
  const auto overflow =
      service.submit(SwRequest{sw_tasks[3], Priority::kNormal, {}, {}, {}});
  EXPECT_FALSE(overflow.admitted());
  EXPECT_EQ(overflow.rejected, RejectReason::kQueueTasksFull);
  EXPECT_FALSE(overflow.ticket.valid());
  EXPECT_EQ(service.stats().rejected_tasks_full, 1U);

  // Draining empties the queue and re-opens admission.
  service.drain();
  EXPECT_TRUE(service.submit(SwRequest{sw_tasks[3], Priority::kNormal, {}, {}, {}})
                  .admitted());
  service.drain();
  EXPECT_EQ(service.stats().completed(), 4U);
}

TEST(Serve, CellBoundRejectsWithCellsFull) {
  const auto sw_tasks = wsim::workload::sw_all_tasks(small_dataset());
  ServiceConfig cfg = base_config();
  cfg.collect_outputs = false;
  cfg.max_queue_cells = sw_tasks[0].cells();  // room for exactly one task
  cfg.policy.max_batch_delay = 1.0;
  cfg.policy.target_batch_cells = 1u << 30;
  AlignmentService service(cfg);

  EXPECT_TRUE(service.submit(SwRequest{sw_tasks[0], Priority::kNormal, {}, {}, {}})
                  .admitted());
  const auto overflow =
      service.submit(SwRequest{sw_tasks[1], Priority::kNormal, {}, {}, {}});
  EXPECT_EQ(overflow.rejected, RejectReason::kQueueCellsFull);
  EXPECT_EQ(service.stats().rejected_cells_full, 1U);
  service.drain();
}

TEST(Serve, StoppedServiceRejectsButDrainsAdmittedWork) {
  const auto sw_tasks = wsim::workload::sw_all_tasks(small_dataset());
  ServiceConfig cfg = base_config();
  cfg.collect_outputs = false;
  AlignmentService service(cfg);

  const auto admitted =
      service.submit(SwRequest{sw_tasks[0], Priority::kNormal, {}, {}, {}});
  ASSERT_TRUE(admitted.admitted());
  service.stop();
  const auto refused =
      service.submit(SwRequest{sw_tasks[1], Priority::kNormal, {}, {}, {}});
  EXPECT_EQ(refused.rejected, RejectReason::kStopped);
  EXPECT_EQ(service.stats().rejected_stopped, 1U);

  service.drain();
  EXPECT_TRUE(admitted.ticket.ready());
  EXPECT_EQ(service.stats().completed(), 1U);
}

// ---------------------------------------------------------------------------
// Acceptance (c): the Fig. 10 trade-off operated online — a larger
// batching delay shifts the batch-size histogram up while latency rises.
TEST(Serve, LargerBatchingDelayGrowsBatchesAndLatency) {
  const auto dataset = small_dataset(13);
  const auto sw_tasks = wsim::workload::sw_all_tasks(dataset);
  const auto ph_tasks = wsim::workload::ph_all_tasks(dataset);

  // Deterministic Poisson arrivals, identical for both services.
  wsim::util::Rng rng(99);
  const double rate = 20000.0;
  std::vector<double> arrivals;
  double t = 0.0;
  for (std::size_t i = 0; i < sw_tasks.size() + ph_tasks.size(); ++i) {
    t += -std::log(1.0 - rng.uniform01()) / rate;
    arrivals.push_back(t);
  }

  const auto replay = [&](double max_batch_delay) {
    ServiceConfig cfg = base_config();
    cfg.collect_outputs = false;
    cfg.policy.max_batch_delay = max_batch_delay;
    AlignmentService service(cfg);
    std::size_t next = 0;
    for (const auto& task : sw_tasks) {
      service.advance_to(arrivals[next++]);
      EXPECT_TRUE(service.submit(SwRequest{task, Priority::kNormal, {}, {}, {}})
                      .admitted());
    }
    for (const auto& task : ph_tasks) {
      service.advance_to(arrivals[next++]);
      EXPECT_TRUE(
          service.submit(PairHmmRequest{task, Priority::kNormal, {}, {}, {}})
              .admitted());
    }
    service.drain();
    return service.stats();
  };

  const auto eager = replay(20e-6);
  const auto patient = replay(3000e-6);
  ASSERT_EQ(eager.completed(), sw_tasks.size() + ph_tasks.size());
  ASSERT_EQ(patient.completed(), eager.completed());

  // Histogram shifts up: fewer batches, larger mean size.
  EXPECT_LT(patient.batch_sizes.batches, eager.batch_sizes.batches);
  EXPECT_GT(patient.batch_sizes.mean_size(), eager.batch_sizes.mean_size());
  // ... while request latency rises (the queue-wait component grows).
  EXPECT_GT(patient.latency.mean, eager.latency.mean);
  EXPECT_GT(patient.queue_wait.mean, eager.queue_wait.mean);
}

// ---------------------------------------------------------------------------
// Flush triggers and ordering.
TEST(Serve, CellTargetFlushesWithoutAdvancingClock) {
  const auto sw_tasks = wsim::workload::sw_all_tasks(small_dataset());
  ServiceConfig cfg = base_config();
  cfg.collect_outputs = false;
  cfg.policy.target_batch_cells = sw_tasks[0].cells();  // any task saturates
  cfg.policy.max_batch_delay = 1.0;
  AlignmentService service(cfg);

  EXPECT_TRUE(service.submit(SwRequest{sw_tasks[0], Priority::kNormal, {}, {}, {}})
                  .admitted());
  const auto stats = service.stats();
  // The batch formed at submit time; it is executing, not queued.
  EXPECT_EQ(stats.queue_depth, 0U);
  EXPECT_EQ(stats.in_flight_batches, 1U);
  service.drain();
}

TEST(Serve, DeadlineAtRiskFlushesBeforeBatchDelay) {
  const auto sw_tasks = wsim::workload::sw_all_tasks(small_dataset());
  ServiceConfig cfg = base_config();
  cfg.collect_outputs = false;
  cfg.policy.max_batch_delay = 5000e-6;  // would otherwise wait 5 ms
  AlignmentService service(cfg);

  SwRequest request{sw_tasks[0], Priority::kNormal, {}, {}, {}};
  request.deadline = 300e-6;
  const auto submit = service.submit(std::move(request));
  ASSERT_TRUE(submit.admitted());
  service.drain();

  const auto& latency = submit.ticket.get().latency;
  // Flushed when the deadline came at risk, far before the 5 ms delay.
  EXPECT_LT(latency.batch_time, 1000e-6);
  EXPECT_GT(service.stats().deadlines_met + service.stats().deadlines_missed, 0U);
}

TEST(Serve, HighPriorityJumpsTheLineInCapacityLimitedBatches) {
  // Four equal-cost tasks against a cell target that fits only two per
  // batch: the over-target flush fires at the third submission, and the
  // high-priority request must take a seat in that first batch ahead of a
  // low-priority request submitted before it.
  const auto task = wsim::workload::sw_all_tasks(small_dataset())[0];
  ServiceConfig cfg = base_config();
  cfg.collect_outputs = false;
  cfg.policy.target_batch_cells = task.cells() * 5 / 2;
  cfg.policy.max_batch_delay = 100e-6;
  AlignmentService service(cfg);

  const auto low0 = service.submit(SwRequest{task, Priority::kLow, {}, {}, {}});
  const auto low1 = service.submit(SwRequest{task, Priority::kLow, {}, {}, {}});
  const auto high0 = service.submit(SwRequest{task, Priority::kHigh, {}, {}, {}});
  const auto high1 = service.submit(SwRequest{task, Priority::kHigh, {}, {}, {}});
  service.drain();

  // The first batch carried {high0, low0}; low1 was deferred even though
  // it entered the queue before high0.
  EXPECT_EQ(high0.ticket.get().batch_tasks, 2U);
  EXPECT_DOUBLE_EQ(high0.ticket.get().latency.completion_time,
                   low0.ticket.get().latency.completion_time);
  EXPECT_LT(high0.ticket.get().latency.completion_time,
            low1.ticket.get().latency.completion_time);
  EXPECT_DOUBLE_EQ(high1.ticket.get().latency.completion_time,
                   low1.ticket.get().latency.completion_time);
}

TEST(Serve, CallbackFiresOnceWithReadyResponse) {
  const auto sw_tasks = wsim::workload::sw_all_tasks(small_dataset());
  ServiceConfig cfg = base_config();
  cfg.collect_outputs = false;
  AlignmentService service(cfg);

  int calls = 0;
  SwRequest request{sw_tasks[0], Priority::kNormal, {}, {}, {}};
  request.callback = [&calls](const SwResponse& response) {
    ++calls;
    EXPECT_GT(response.latency.completion_time, response.latency.submit_time);
  };
  const auto submit = service.submit(std::move(request));
  ASSERT_TRUE(submit.admitted());
  service.drain();
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(submit.ticket.ready());
}

TEST(Serve, AdvanceIsIncrementalAndMonotonic) {
  const auto sw_tasks = wsim::workload::sw_all_tasks(small_dataset());
  ServiceConfig cfg = base_config();
  cfg.collect_outputs = false;
  cfg.policy.max_batch_delay = 100e-6;
  AlignmentService service(cfg);

  const auto submit =
      service.submit(SwRequest{sw_tasks[0], Priority::kNormal, {}, {}, {}});
  ASSERT_TRUE(submit.admitted());
  service.advance_to(50e-6);  // before the delay flush: nothing delivered
  EXPECT_FALSE(submit.ticket.ready());
  service.advance_to(10e-6);  // backwards is a no-op
  EXPECT_DOUBLE_EQ(service.now(), 50e-6);
  service.advance_to(1.0);
  EXPECT_TRUE(submit.ticket.ready());
  // Latency decomposition is internally consistent.
  const auto& latency = submit.ticket.get().latency;
  EXPECT_GE(latency.batch_time, latency.submit_time);
  EXPECT_GE(latency.start_time, latency.batch_time);
  EXPECT_GT(latency.completion_time, latency.start_time);
  EXPECT_NEAR(latency.total_seconds(),
              latency.queue_seconds() + latency.device_wait_seconds() +
                  latency.service_seconds(),
              1e-12);
}

TEST(Serve, RejectsInvalidTasks) {
  ServiceConfig cfg = base_config();
  cfg.collect_outputs = false;
  AlignmentService service(cfg);
  EXPECT_THROW(service.submit(SwRequest{{"", "ACGT"}, Priority::kNormal, {}, {}, {}}),
               wsim::util::CheckError);
  wsim::align::PairHmmTask bad;
  bad.read = "ACGT";
  bad.hap = "ACGTACGT";
  bad.base_quals.assign(2, 30);  // wrong length
  EXPECT_THROW(service.submit(PairHmmRequest{bad, Priority::kNormal, {}, {}, {}}),
               wsim::util::CheckError);
}

// ---------------------------------------------------------------------------
// Component-level coverage.
TEST(AdmissionQueue, DrainsHighestPriorityFirstFifoWithin) {
  struct Entry {
    int id = 0;
    Priority priority = Priority::kNormal;
    std::size_t cells = 1;
    wsim::serve::SimTime submit_time = 0.0;
    std::optional<wsim::serve::SimTime> deadline;
  };
  wsim::serve::AdmissionQueue<Entry> queue(8, 0);
  EXPECT_EQ(queue.try_push({1, Priority::kLow, 1, 0.0, {}}), RejectReason::kNone);
  EXPECT_EQ(queue.try_push({2, Priority::kHigh, 1, 1.0, {}}), RejectReason::kNone);
  EXPECT_EQ(queue.try_push({3, Priority::kNormal, 1, 2.0, {}}), RejectReason::kNone);
  EXPECT_EQ(queue.try_push({4, Priority::kHigh, 1, 3.0, {}}), RejectReason::kNone);
  ASSERT_TRUE(queue.oldest_submit_time().has_value());
  EXPECT_DOUBLE_EQ(*queue.oldest_submit_time(), 0.0);

  const auto batch = queue.pop_batch(3, 1u << 30);
  ASSERT_EQ(batch.size(), 3U);
  EXPECT_EQ(batch[0].id, 2);  // high, FIFO
  EXPECT_EQ(batch[1].id, 4);
  EXPECT_EQ(batch[2].id, 3);  // then normal
  EXPECT_EQ(queue.size(), 1U);
}

TEST(AdmissionQueue, CellTargetStopsBatchButTakesAtLeastOne) {
  struct Entry {
    std::size_t cells = 0;
    Priority priority = Priority::kNormal;
    wsim::serve::SimTime submit_time = 0.0;
    std::optional<wsim::serve::SimTime> deadline;
  };
  wsim::serve::AdmissionQueue<Entry> queue(8, 0);
  (void)queue.try_push({100, Priority::kNormal, 0.0, {}});
  (void)queue.try_push({100, Priority::kNormal, 0.0, {}});
  // A single over-target entry still pops (never deadlock on a huge task).
  const auto first = queue.pop_batch(8, 50);
  EXPECT_EQ(first.size(), 1U);
  // The cell target caps multi-entry batches.
  (void)queue.try_push({100, Priority::kNormal, 0.0, {}});
  const auto second = queue.pop_batch(8, 150);
  EXPECT_EQ(second.size(), 1U);
  EXPECT_TRUE(queue.empty() == false);
  EXPECT_EQ(queue.pop_batch(8, 1u << 30).size(), 1U);
}

// ---------------------------------------------------------------------------
// Multi-tenant admission: per-tenant quotas, SLO-derived lanes, and the
// per-tenant stats breakdown.

TEST(ServeTenants, TaskAndCellQuotasRejectWithTenantReasons) {
  const auto sw_tasks = wsim::workload::sw_all_tasks(small_dataset());
  ServiceConfig cfg = base_config();
  cfg.collect_outputs = false;
  wsim::serve::TenantConfig alpha;
  alpha.name = "alpha";
  alpha.max_queued_tasks = 2;
  wsim::serve::TenantConfig beta;
  beta.name = "beta";
  beta.max_queued_cells = sw_tasks[0].cells();  // one task fills it
  cfg.tenants = {alpha, beta};
  AlignmentService service(cfg);

  const auto submit_as = [&](const char* tenant, std::size_t i) {
    SwRequest request{sw_tasks[i], Priority::kNormal, {}, {}, tenant};
    return service.submit(std::move(request));
  };
  EXPECT_TRUE(submit_as("alpha", 0).admitted());
  EXPECT_TRUE(submit_as("alpha", 1).admitted());
  const auto third = submit_as("alpha", 2);
  EXPECT_FALSE(third.admitted());
  EXPECT_EQ(third.rejected, RejectReason::kTenantTasksQuota);

  EXPECT_TRUE(submit_as("beta", 0).admitted());
  const auto over_cells = submit_as("beta", 1);
  EXPECT_FALSE(over_cells.admitted());
  EXPECT_EQ(over_cells.rejected, RejectReason::kTenantCellsQuota);

  // One tenant's quota never blocks another: beta's task bound is open.
  EXPECT_TRUE(submit_as("alpha", 2).admitted() == false);  // still over
  service.drain();

  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected_tenant_quota, 3U);
  EXPECT_EQ(stats.completed(), 3U);
  ASSERT_EQ(stats.tenants.size(), 2U);
  EXPECT_EQ(stats.tenants[0].name, "alpha");
  EXPECT_EQ(stats.tenants[0].submitted, 2U);
  EXPECT_EQ(stats.tenants[0].completed, 2U);
  EXPECT_EQ(stats.tenants[0].rejected_quota, 2U);
  EXPECT_EQ(stats.tenants[1].name, "beta");
  EXPECT_EQ(stats.tenants[1].rejected_quota, 1U);
}

TEST(ServeTenants, SloDerivesDeadlineAndPriorityLane) {
  EXPECT_EQ(wsim::serve::priority_for_slo(0.0), Priority::kNormal);
  EXPECT_EQ(wsim::serve::priority_for_slo(5e-3), Priority::kHigh);
  EXPECT_EQ(wsim::serve::priority_for_slo(50e-3), Priority::kNormal);
  EXPECT_EQ(wsim::serve::priority_for_slo(1.0), Priority::kLow);

  const auto sw_tasks = wsim::workload::sw_all_tasks(small_dataset());
  ServiceConfig cfg = base_config();
  cfg.collect_outputs = false;
  wsim::serve::TenantConfig gold;
  gold.name = "gold";
  gold.slo_seconds = 10.0;  // generous: the request must meet it
  cfg.tenants = {gold};
  AlignmentService service(cfg);

  // No explicit deadline: the tenant's SLO supplies one, so the response
  // is judged against it.
  SwRequest request{sw_tasks[0], Priority::kNormal, {}, {}, "gold"};
  ASSERT_TRUE(service.submit(std::move(request)).admitted());
  service.drain();
  const auto stats = service.stats();
  EXPECT_EQ(stats.deadlines_met, 1U);
  EXPECT_EQ(stats.deadlines_missed, 0U);
  ASSERT_EQ(stats.tenants.size(), 1U);
  EXPECT_EQ(stats.tenants[0].deadlines_met, 1U);
  EXPECT_DOUBLE_EQ(stats.tenants[0].slo_violation_rate(), 0.0);
}

TEST(ServeTenants, TightSloTenantJumpsTheSharedQueue) {
  // Mirror of HighPriorityJumpsTheLine, but the lane comes from the
  // tenant's SLO class instead of an explicit Priority: a 5 ms SLO rides
  // kHigh and takes a seat in the first capacity-limited batch ahead of a
  // best-effort tenant's earlier request.
  const auto task = wsim::workload::sw_all_tasks(small_dataset())[0];
  ServiceConfig cfg = base_config();
  cfg.collect_outputs = false;
  cfg.policy.target_batch_cells = task.cells() * 5 / 2;
  cfg.policy.max_batch_delay = 100e-6;
  wsim::serve::TenantConfig effort;
  effort.name = "effort";
  effort.priority = Priority::kLow;
  wsim::serve::TenantConfig gold;
  gold.name = "gold";
  gold.slo_seconds = 5e-3;  // kHigh lane
  cfg.tenants = {effort, gold};
  AlignmentService service(cfg);

  const auto submit_as = [&](const char* tenant) {
    return service.submit(SwRequest{task, Priority::kNormal, {}, {}, tenant});
  };
  const auto effort0 = submit_as("effort");
  const auto effort1 = submit_as("effort");
  const auto gold0 = submit_as("gold");
  const auto gold1 = submit_as("gold");
  service.drain();

  EXPECT_EQ(gold0.ticket.get().batch_tasks, 2U);
  EXPECT_DOUBLE_EQ(gold0.ticket.get().latency.completion_time,
                   effort0.ticket.get().latency.completion_time);
  EXPECT_LT(gold0.ticket.get().latency.completion_time,
            effort1.ticket.get().latency.completion_time);
  EXPECT_DOUBLE_EQ(gold1.ticket.get().latency.completion_time,
                   effort1.ticket.get().latency.completion_time);
}

TEST(ServeTenants, SamePriorityTenantsStayFifoAndNeitherStarves) {
  // Two tenants at the same lane interleave FIFO: a quota-limited tenant
  // cannot be starved by a high-rate one, and within each batch the seats
  // go in submission order across tenants.
  const auto task = wsim::workload::sw_all_tasks(small_dataset())[0];
  ServiceConfig cfg = base_config();
  cfg.collect_outputs = false;
  cfg.policy.target_batch_cells = task.cells() * 5 / 2;  // two seats per batch
  cfg.policy.max_batch_delay = 100e-6;
  wsim::serve::TenantConfig small;
  small.name = "small";
  small.max_queued_tasks = 1;
  cfg.tenants = {small};
  AlignmentService service(cfg);

  const auto submit_as = [&](const char* tenant) {
    return service.submit(SwRequest{task, Priority::kNormal, {}, {}, tenant});
  };
  const auto loud0 = submit_as("loud");
  const auto small0 = submit_as("small");
  const auto rejected = submit_as("small");  // over its own quota
  EXPECT_FALSE(rejected.admitted());
  const auto loud1 = submit_as("loud");
  service.drain();

  // First batch: {loud0, small0} in submission order — the loud tenant
  // did not push the small one out.
  EXPECT_DOUBLE_EQ(loud0.ticket.get().latency.completion_time,
                   small0.ticket.get().latency.completion_time);
  EXPECT_LT(small0.ticket.get().latency.completion_time,
            loud1.ticket.get().latency.completion_time);
  const auto stats = service.stats();
  for (const auto& tenant : stats.tenants) {
    if (tenant.name == "small") {
      EXPECT_EQ(tenant.completed, 1U);
      EXPECT_EQ(tenant.rejected_quota, 1U);
    }
  }
}

TEST(BatchFormer, EstimatorLearnsFromObservations) {
  wsim::serve::ServiceTimeEstimator estimator(1e-9, 10e-6);
  const double before = estimator.estimate(1000000);
  // Feed consistently slower batches; the estimate must move up.
  for (int i = 0; i < 20; ++i) {
    estimator.observe(1000000, 10e-6 + 5e-3);
  }
  EXPECT_GT(estimator.estimate(1000000), before);
}

TEST(BatchFormer, EstimatorFirstObservationDoesNotMoveThePrior) {
  // A single early outlier must not steer deadline decisions: the prior
  // is served unchanged until the warm-up window fills.
  wsim::serve::ServiceTimeEstimator estimator(1e-9, 10e-6);
  const double before = estimator.estimate(1000000);
  estimator.observe(1000000, 10e-6 + 5e-3);  // 5000x the prior rate
  EXPECT_FALSE(estimator.warmed_up());
  EXPECT_DOUBLE_EQ(estimator.estimate(1000000), before);
  EXPECT_DOUBLE_EQ(estimator.seconds_per_cell(), 1e-9);
}

TEST(BatchFormer, EstimatorWarmupWindowSeedsFromTheMean) {
  wsim::serve::ServiceTimeEstimator estimator(1e-9, 10e-6);
  const int window = wsim::serve::ServiceTimeEstimator::kWarmupWindow;
  // Observations at 2e-9 and 4e-9 seconds/cell in equal number: the seed
  // must be their mean, not an EWMA blend with the 1e-9 prior.
  for (int i = 0; i < window; ++i) {
    const double rate = (i % 2 == 0) ? 2e-9 : 4e-9;
    EXPECT_FALSE(estimator.warmed_up());
    estimator.observe(1000000, 10e-6 + rate * 1e6);
  }
  EXPECT_TRUE(estimator.warmed_up());
  EXPECT_NEAR(estimator.seconds_per_cell(), 3e-9, 1e-15);
}

TEST(BatchFormer, EstimatorAllIdenticalSamplesConvergeExactly) {
  // A perfectly steady workload must pin the estimate to the observed
  // rate — warm-up seeds it there and the EWMA must not drift off it.
  wsim::serve::ServiceTimeEstimator estimator(1e-9, 10e-6);
  for (int i = 0; i < 50; ++i) {
    estimator.observe(500000, 10e-6 + 2e-9 * 500000);
  }
  EXPECT_TRUE(estimator.warmed_up());
  EXPECT_NEAR(estimator.seconds_per_cell(), 2e-9, 1e-15);
  // Zero-cell observations are ignored, not folded in as zero rate.
  estimator.observe(0, 123.0);
  EXPECT_NEAR(estimator.seconds_per_cell(), 2e-9, 1e-15);
}

TEST(ServeStats, HistogramAndSummaryBehave) {
  wsim::serve::BatchSizeHistogram histogram;
  histogram.record(1);
  histogram.record(3);
  histogram.record(3);
  histogram.record(9);
  EXPECT_EQ(histogram.batches, 4U);
  EXPECT_EQ(histogram.tasks, 16U);
  EXPECT_DOUBLE_EQ(histogram.mean_size(), 4.0);
  EXPECT_EQ(histogram.format(), "[1,2):1 [2,4):2 [8,16):1");

  const auto summary = wsim::serve::summarize_latency({4.0, 1.0, 2.0, 3.0});
  EXPECT_EQ(summary.count, 4U);
  EXPECT_DOUBLE_EQ(summary.mean, 2.5);
  EXPECT_DOUBLE_EQ(summary.max, 4.0);
  EXPECT_LE(summary.p50, summary.p95);
  EXPECT_LE(summary.p95, summary.p99);
  const auto empty = wsim::serve::summarize_latency({});
  EXPECT_EQ(empty.count, 0U);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

TEST(ServeStats, PercentileEdgeCases) {
  // Empty sample: every field is exactly zero, no NaNs.
  const auto empty = wsim::serve::summarize_latency({});
  EXPECT_EQ(empty.count, 0U);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.p50, 0.0);
  EXPECT_DOUBLE_EQ(empty.p95, 0.0);
  EXPECT_DOUBLE_EQ(empty.p99, 0.0);
  EXPECT_DOUBLE_EQ(empty.max, 0.0);

  // Single sample: every percentile is that sample.
  const auto single = wsim::serve::summarize_latency({0.125});
  EXPECT_EQ(single.count, 1U);
  EXPECT_DOUBLE_EQ(single.mean, 0.125);
  EXPECT_DOUBLE_EQ(single.p50, 0.125);
  EXPECT_DOUBLE_EQ(single.p95, 0.125);
  EXPECT_DOUBLE_EQ(single.p99, 0.125);
  EXPECT_DOUBLE_EQ(single.max, 0.125);

  // All-equal samples: the order statistics collapse to the common value.
  const auto equal = wsim::serve::summarize_latency({2.5, 2.5, 2.5, 2.5, 2.5});
  EXPECT_EQ(equal.count, 5U);
  EXPECT_DOUBLE_EQ(equal.p50, 2.5);
  EXPECT_DOUBLE_EQ(equal.p95, 2.5);
  EXPECT_DOUBLE_EQ(equal.p99, 2.5);
  EXPECT_DOUBLE_EQ(equal.mean, 2.5);
  EXPECT_DOUBLE_EQ(equal.max, 2.5);
}

TEST(ServeStats, WriteStatsJsonMirrorsBenchSchema) {
  wsim::serve::ServiceStats stats;
  stats.sw_submitted = 3;
  stats.ph_submitted = 4;
  stats.sw_completed = 3;
  stats.ph_completed = 4;
  stats.rejected_cells_full = 1;
  stats.first_submit_time = 0.0;
  stats.last_completion_time = 2.0;
  stats.completed_cells = 4'000'000'000ULL;
  stats.device_busy_seconds = 1.0;
  stats.batch_sizes.record(3);
  stats.batch_sizes.record(4);
  stats.latency = wsim::serve::summarize_latency({0.25, 0.25});

  std::ostringstream os;
  wsim::serve::write_stats_json(os, stats);
  const std::string json = os.str();
  // Field names mirror BENCH_serve.json's sweep points.
  for (const char* key :
       {"\"submitted\": 7", "\"completed\": 7", "\"rejected\": 1",
        "\"throughput_tasks_per_s\": 3.5", "\"gcups\": 2",
        "\"device_utilization\": 0.5", "\"mean_batch_size\": 3.5",
        "\"batch_size_histogram\"", "\"latency\"", "\"queue_wait\"",
        "\"p95_s\": 0.25", "\"deadlines_met\": 0"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
  // The "tenants" key itself contains the letters "nan"; the contract is
  // that no NaN/Inf *values* leak into the JSON.
  EXPECT_EQ(json.find(": nan"), std::string::npos);
  EXPECT_EQ(json.find(": -nan"), std::string::npos);
  EXPECT_EQ(json.find(": inf"), std::string::npos);
  EXPECT_EQ(json.find(": -inf"), std::string::npos);

  // A default (empty) snapshot serializes without NaN/Inf too.
  std::ostringstream empty_os;
  wsim::serve::write_stats_json(empty_os, wsim::serve::ServiceStats{});
  EXPECT_NE(empty_os.str().find("\"throughput_tasks_per_s\": 0"),
            std::string::npos);
  EXPECT_EQ(empty_os.str().find(": nan"), std::string::npos);
  EXPECT_EQ(empty_os.str().find(": -nan"), std::string::npos);
}

TEST(ServeStats, JsonCarriesTenantBreakdownAndSharedDeviceSchema) {
  wsim::serve::ServiceStats stats;
  stats.sw_submitted = 2;
  stats.sw_completed = 2;
  wsim::serve::TenantStats tenant;
  tenant.name = "alpha";
  tenant.submitted = 2;
  tenant.completed = 2;
  tenant.deadlines_met = 1;
  tenant.deadlines_missed = 1;
  tenant.slo_seconds = 20e-3;
  stats.tenants.push_back(tenant);

  wsim::fleet::FleetStats fleet_stats;
  wsim::fleet::DeviceStats device;
  device.name = "K1200";
  device.id = 3;
  device.state = wsim::fleet::WorkerState::kDraining;
  device.quarantines = 1;
  fleet_stats.devices.push_back(device);
  fleet_stats.joins = 2;
  fleet_stats.drains = 1;

  std::ostringstream os;
  wsim::serve::write_stats_json(os, stats, fleet_stats);
  const std::string json = os.str();
  // The per-tenant block and the device-record schema shared by
  // fleet-sim --json and cluster-sim --json.
  for (const char* key :
       {"\"tenants\"", "\"name\": \"alpha\"", "\"slo_violation_rate\": 0.5",
        "\"slo_s\": 0.02", "\"devices\"", "\"id\": 3",
        "\"device\": \"K1200\"", "\"state\": \"draining\"",
        "\"quarantines\": 1", "\"joined_at_s\"", "\"free_at_s\"",
        "\"joins\": 2", "\"drains\": 1", "\"retires\": 0"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
}

// Regression for the cross-layer shared-engine contract: a service built
// without an explicit engine runs on simt::shared_engine(), so the
// cost-cache entries it writes are hits for a bare runner (and vice
// versa) — same cache across serving layer, runners, pipeline, CLI.
TEST(ServeStats, TimingOnlyServiceSharesTheProcessWideCostCache) {
  const auto dataset = small_dataset(41);
  const auto sw_tasks = wsim::workload::sw_all_tasks(dataset);
  ASSERT_FALSE(sw_tasks.empty());

  ServiceConfig cfg = base_config();
  cfg.collect_outputs = false;  // timing-only: shape-cached via engine cache
  cfg.engine = nullptr;         // explicit: the process-wide shared_engine()
  AlignmentService service(cfg);
  double t = 0.0;
  for (const auto& task : sw_tasks) {
    service.advance_to(t);
    ASSERT_TRUE(service.submit(SwRequest{task, Priority::kNormal, {}, {}, {}})
                    .admitted());
    t += 25e-6;
  }
  service.drain();

  auto& shared = wsim::simt::shared_engine();
  const std::size_t after_service = shared.cost_cache_size();
  EXPECT_GT(after_service, 0U);

  // The same task shapes through a bare runner: pure cache hits — no new
  // entries, no blocks executed.
  const wsim::kernels::SwRunner runner(cfg.sw_design);
  wsim::kernels::SwRunOptions opt;
  opt.mode = wsim::simt::ExecMode::kCachedByShape;
  opt.use_engine_cache = true;
  const auto warm = runner.run_batch(cfg.device, sw_tasks, opt);
  EXPECT_EQ(shared.cost_cache_size(), after_service);
  EXPECT_EQ(warm.run.launch.blocks_executed, 0U);
}

}  // namespace
