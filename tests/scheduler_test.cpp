#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "wsim/simt/device.hpp"
#include "wsim/simt/occupancy.hpp"
#include "wsim/simt/scheduler.hpp"
#include "wsim/util/rng.hpp"

namespace {

using wsim::simt::BlockCost;
using wsim::simt::compute_occupancy;
using wsim::simt::DeviceSpec;
using wsim::simt::KernelTiming;
using wsim::simt::schedule_blocks;

const DeviceSpec kDev = wsim::simt::make_k1200();  // 4 SMs

TEST(Scheduler, EmptyGridIsFree) {
  const auto occ = compute_occupancy(kDev, 32, 16, 0);
  const KernelTiming t = schedule_blocks(kDev, occ, {});
  EXPECT_EQ(t.cycles, 0);
}

TEST(Scheduler, SingleBlockLatencyDominates) {
  const auto occ = compute_occupancy(kDev, 32, 16, 0);
  const std::vector<BlockCost> blocks = {{10000, 100, 10}};
  const KernelTiming t = schedule_blocks(kDev, occ, blocks);
  EXPECT_EQ(t.cycles, 10000);
}

TEST(Scheduler, FewBlocksSpreadAcrossSms) {
  // 4 blocks on 4 SMs run fully in parallel.
  const auto occ = compute_occupancy(kDev, 32, 16, 0);
  const std::vector<BlockCost> blocks(4, BlockCost{5000, 100, 10});
  const KernelTiming t = schedule_blocks(kDev, occ, blocks);
  EXPECT_EQ(t.latency_bound_cycles, 5000);
}

TEST(Scheduler, OversubscriptionSerializesWaves) {
  // occupancy 1 block/SM (heavy smem), 8 identical blocks on 4 SMs -> two
  // waves.
  const auto occ = compute_occupancy(kDev, 32, 16, 49152);
  ASSERT_EQ(occ.blocks_per_sm, 1);
  const std::vector<BlockCost> blocks(8, BlockCost{5000, 100, 10});
  const KernelTiming t = schedule_blocks(kDev, occ, blocks);
  EXPECT_EQ(t.latency_bound_cycles, 10000);
}

TEST(Scheduler, HigherOccupancyHidesLatency) {
  const auto occ1 = compute_occupancy(kDev, 32, 16, 49152);  // 1 block/SM
  const auto occ8 = compute_occupancy(kDev, 32, 16, 8192);   // 8 blocks/SM
  ASSERT_GT(occ8.blocks_per_sm, occ1.blocks_per_sm);
  const std::vector<BlockCost> blocks(64, BlockCost{5000, 100, 10});
  const KernelTiming low = schedule_blocks(kDev, occ1, blocks);
  const KernelTiming high = schedule_blocks(kDev, occ8, blocks);
  EXPECT_LT(high.cycles, low.cycles);
}

TEST(Scheduler, ThroughputBoundKicksInWhenSaturated) {
  // Blocks with enormous instruction counts: even fully overlapped, the
  // issue ports serialize them.
  const auto occ = compute_occupancy(kDev, 32, 16, 0);  // 32 blocks/SM
  const std::vector<BlockCost> blocks(128, BlockCost{100, 400000, 0});
  const KernelTiming t = schedule_blocks(kDev, occ, blocks);
  // 128 blocks / 4 SMs = 32 blocks/SM; each needs 400000/4 = 100000 issue
  // cycles -> 3.2M cycles per SM.
  EXPECT_EQ(t.throughput_bound_cycles, 3200000);
  EXPECT_EQ(t.cycles, 3200000);
}

TEST(Scheduler, SmemPortBoundsThroughput) {
  const auto occ = compute_occupancy(kDev, 32, 16, 0);
  // smem transactions dominate the issue count here.
  const std::vector<BlockCost> blocks(4, BlockCost{100, 100, 50000});
  const KernelTiming t = schedule_blocks(kDev, occ, blocks);
  EXPECT_EQ(t.throughput_bound_cycles, 50000);
}

TEST(Scheduler, HeterogeneousBlocksBalanceGreedily) {
  // One long block and many short ones: greedy dispatch must not stack the
  // long one behind shorts on a busy SM when an idle slot exists.
  const auto occ = compute_occupancy(kDev, 32, 16, 49152);  // 1 block/SM
  std::vector<BlockCost> blocks(3, BlockCost{1000, 10, 0});
  blocks.push_back({9000, 10, 0});
  const KernelTiming t = schedule_blocks(kDev, occ, blocks);
  EXPECT_EQ(t.latency_bound_cycles, 9000);
}

TEST(Scheduler, SecondsFollowClock) {
  const auto occ = compute_occupancy(kDev, 32, 16, 0);
  const std::vector<BlockCost> blocks = {{static_cast<long long>(kDev.clock_ghz * 1e9),
                                          100, 0}};
  const KernelTiming t = schedule_blocks(kDev, occ, blocks);
  EXPECT_NEAR(t.seconds, 1.0, 1e-9);
}

TEST(Scheduler, MoreSmsFinishSooner) {
  const DeviceSpec titan = wsim::simt::make_titan_x();  // 24 SMs
  const auto occ_k = compute_occupancy(kDev, 32, 16, 49152);
  const auto occ_t = compute_occupancy(titan, 32, 16, 49152);
  const std::vector<BlockCost> blocks(96, BlockCost{1000, 10, 0});
  EXPECT_LT(schedule_blocks(titan, occ_t, blocks).cycles,
            schedule_blocks(kDev, occ_k, blocks).cycles);
}

}  // namespace

namespace {

class SchedulerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerPropertyTest, MakespanRespectsLowerBounds) {
  wsim::util::Rng rng(GetParam());
  const auto occ = compute_occupancy(
      kDev, 32, 32, static_cast<int>(rng.uniform_int(0, 16384)));
  std::vector<BlockCost> blocks(static_cast<std::size_t>(rng.uniform_int(1, 200)));
  long long max_latency = 0;
  std::uint64_t total_issue = 0;
  std::uint64_t total_smem = 0;
  for (auto& b : blocks) {
    b.latency_cycles = rng.uniform_int(1, 100000);
    b.issue_slots = static_cast<std::uint64_t>(rng.uniform_int(1, 50000));
    b.smem_transactions = static_cast<std::uint64_t>(rng.uniform_int(0, 20000));
    max_latency = std::max(max_latency, b.latency_cycles);
    total_issue += b.issue_slots;
    total_smem += b.smem_transactions;
  }
  const KernelTiming t = schedule_blocks(kDev, occ, blocks);
  // No schedule can beat the longest block...
  EXPECT_GE(t.cycles, max_latency);
  // ...nor the aggregate issue/smem work spread over every SM port.
  const long long issue_floor = static_cast<long long>(
      total_issue / static_cast<std::uint64_t>(kDev.sm_count * kDev.schedulers_per_sm));
  EXPECT_GE(t.cycles, issue_floor);
  const long long smem_floor =
      static_cast<long long>(total_smem / static_cast<std::uint64_t>(kDev.sm_count));
  EXPECT_GE(t.cycles, smem_floor);
  // And the components are consistent.
  EXPECT_EQ(t.cycles, std::max(t.latency_bound_cycles, t.throughput_bound_cycles));
}

TEST_P(SchedulerPropertyTest, MoreConcurrencyNeverHurtsLatencySchedule) {
  wsim::util::Rng rng(GetParam() ^ 0x5EEDULL);
  std::vector<BlockCost> blocks(static_cast<std::size_t>(rng.uniform_int(1, 100)));
  for (auto& b : blocks) {
    b.latency_cycles = rng.uniform_int(1, 50000);
    b.issue_slots = 1;
    b.smem_transactions = 0;
  }
  const auto occ1 = compute_occupancy(kDev, 32, 16, 49152);  // 1 block/SM
  const auto occ8 = compute_occupancy(kDev, 32, 16, 8192);   // 8 blocks/SM
  EXPECT_LE(schedule_blocks(kDev, occ8, blocks).latency_bound_cycles,
            schedule_blocks(kDev, occ1, blocks).latency_bound_cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
