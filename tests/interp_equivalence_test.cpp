// Differential tests pinning the predecoded fast-path interpreter AND the
// lane-vector interpreter to the legacy switch interpreter: for every
// kernel variant, device, and SDC setting all three paths must produce
// bit-identical memory, exactly equal BlockResult counters, identical
// instruction traces and write sets, identical guard fingerprints through
// the runners, and the same error surface. The legacy path stays
// available precisely to keep this contract checkable.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "wsim/guard/guard.hpp"
#include "wsim/kernels/nw_kernels.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/builder.hpp"
#include "wsim/simt/decode.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/interpreter.hpp"
#include "wsim/simt/memory.hpp"
#include "wsim/simt/sdc.hpp"
#include "wsim/simt/trace.hpp"
#include "wsim/simt/watchdog.hpp"
#include "wsim/util/check.hpp"
#include "wsim/workload/batching.hpp"
#include "wsim/workload/generator.hpp"

namespace {

namespace guard = wsim::guard;
using wsim::kernels::CommMode;
using wsim::simt::BlockResult;
using wsim::simt::BlockRunOptions;
using wsim::simt::Cmp;
using wsim::simt::DeviceSpec;
using wsim::simt::DType;
using wsim::simt::GlobalMemory;
using wsim::simt::GmemWriteSet;
using wsim::simt::imm_f32;
using wsim::simt::imm_i64;
using wsim::simt::InterpPath;
using wsim::simt::Kernel;
using wsim::simt::KernelBuilder;
using wsim::simt::LaunchTimeout;
using wsim::simt::MemWidth;
using wsim::simt::SdcPlan;
using wsim::simt::SReg;
using wsim::simt::Trace;
using wsim::simt::VReg;
using wsim::util::CheckError;

/// A kernel touching every opcode, predication polarity, memory width,
/// loop form (nested and zero-trip), and barrier the ISA offers — the
/// per-instruction differential workout.
Kernel build_omnibus() {
  KernelBuilder kb("omnibus", 64);
  const SReg out = kb.param();    // s0: 64*4 + 64*4 + 64 bytes of results
  const SReg in = kb.param();     // s1: 64 f32 inputs (doubles as bytes)
  const SReg trips = kb.param();  // s2: outer loop trip count
  const SReg zero = kb.param();   // s3: zero-trip loop count
  kb.alloc_smem(64 * 4 + 64);     // word tile + byte area

  const VReg t = kb.tid();
  const VReg lane = kb.laneid();
  const VReg w = kb.warpid();

  // Integer chain: every i64 ALU op.
  VReg i1 = kb.iadd(t, imm_i64(3));
  i1 = kb.imul(i1, imm_i64(5));
  i1 = kb.isub(i1, lane);
  i1 = kb.imax(i1, kb.imin(w, imm_i64(100)));
  i1 = kb.iand(kb.ior(i1, imm_i64(0x55)), imm_i64(0xFF));
  i1 = kb.ixor(i1, kb.shl(lane, imm_i64(2)));
  i1 = kb.iadd(i1, kb.shr(t, imm_i64(1)));

  // Float chain from a B4 global load: every f32 ALU op.
  const VReg f = kb.ldg(kb.iadd(in, kb.imul(t, imm_i64(4))));
  VReg f1 = kb.fadd(f, imm_f32(0.5F));
  f1 = kb.fmul(f1, imm_f32(1.25F));
  f1 = kb.ffma(f1, imm_f32(0.75F), f);
  f1 = kb.fmax(f1, kb.fmin(f1, imm_f32(3.0F)));
  f1 = kb.fsub(f1, imm_f32(0.125F));

  // All four shuffle variants, segmented widths, dynamic source lane.
  const VReg s1v = kb.shfl_down(f1, imm_i64(1));
  const VReg s2v = kb.shfl_up(i1, imm_i64(2), 16);
  const VReg s3v = kb.shfl_xor(f1, imm_i64(4), 8);
  const VReg s4v = kb.shfl(i1, lane, 32);

  // Compare/select + both predication polarities.
  const VReg p = kb.setp(Cmp::kLt, DType::kI64, lane, imm_i64(16));
  const VReg pf = kb.setp(Cmp::kGt, DType::kF32, f1, imm_f32(1.0F));
  const VReg sel = kb.selp(p, s1v, s3v);
  VReg acc = kb.mov(imm_i64(0));
  kb.begin_pred(p);
  kb.assign(acc, kb.iadd(acc, s2v));
  kb.end_pred();
  kb.begin_pred(pf, /*negate=*/true);
  kb.assign(acc, kb.iadd(acc, imm_i64(7)));
  kb.end_pred();

  // Scalar pipeline + nested and zero-trip loops.
  const SReg sc = kb.smov(imm_i64(2));
  const SReg sc2 = kb.smax(
      kb.smin(kb.smul(kb.sadd(sc, imm_i64(3)), imm_i64(2)), imm_i64(9)),
      kb.ssub(sc, imm_i64(1)));
  kb.loop(trips);
  kb.assign(acc, kb.iadd(acc, sc2));
  kb.loop(imm_i64(2));
  kb.assign(acc, kb.iadd(acc, imm_i64(1)));
  kb.endloop();
  kb.endloop();
  kb.loop(zero);
  kb.assign(acc, kb.iadd(acc, imm_i64(1000000)));
  kb.endloop();

  // Shared memory: B4 tile exchange across a barrier, B1 bytes, and a
  // deliberate two-way bank conflict ((t&1)*128 maps to one bank).
  kb.sts(kb.imul(t, imm_i64(4)), sel);
  kb.bar();
  const VReg neighbor = kb.lds(kb.imul(kb.ixor(t, imm_i64(1)), imm_i64(4)));
  kb.sts(kb.iadd(t, imm_i64(64 * 4)), i1, 0, MemWidth::kB1);
  kb.bar();
  const VReg nb1 =
      kb.lds(kb.iadd(kb.ixor(t, imm_i64(3)), imm_i64(64 * 4)), 0, MemWidth::kB1);
  const VReg conflict = kb.lds(kb.imul(kb.iand(t, imm_i64(1)), imm_i64(128)));

  // B1 global load; then store every result (B4 and B1).
  const VReg b1 = kb.ldg(kb.iadd(in, t), 0, MemWidth::kB1);
  const VReg slot = kb.iadd(out, kb.imul(t, imm_i64(4)));
  kb.stg(slot, kb.iadd(acc, kb.iadd(neighbor,
                                    kb.iadd(nb1, kb.iadd(conflict,
                                                         kb.iadd(s4v, b1))))));
  kb.stg(kb.iadd(slot, imm_i64(64 * 4)), kb.selp(pf, f1, sel));
  kb.stg(kb.iadd(out, kb.iadd(t, imm_i64(64 * 8))), i1, 0, MemWidth::kB1);
  return kb.build();
}

/// Everything one block execution produced, for field-by-field diffing.
struct RunOutcome {
  bool threw = false;
  std::string error;
  BlockResult result;
  std::vector<std::uint8_t> memory;
  std::vector<wsim::simt::TraceEvent> trace;
  std::map<std::int64_t, std::int64_t> writes;
};

RunOutcome run_omnibus(const Kernel& kernel, const DeviceSpec& device,
                       InterpPath path, const SdcPlan* sdc) {
  GlobalMemory gmem;
  const std::int64_t out = gmem.alloc(64 * 4 + 64 * 4 + 64);
  const std::int64_t in = gmem.alloc(64 * 4);
  std::vector<float> inputs(64);
  for (int i = 0; i < 64; ++i) {
    inputs[static_cast<std::size_t>(i)] = 0.25F * static_cast<float>(i) - 3.5F;
  }
  gmem.write_f32(in, inputs);
  const std::vector<std::uint64_t> args = {
      static_cast<std::uint64_t>(out), static_cast<std::uint64_t>(in), 3, 0};

  RunOutcome outcome;
  Trace trace;
  GmemWriteSet writes;
  BlockRunOptions options;
  options.interp = path;
  options.trace = &trace;
  options.writes = &writes;
  options.sdc = sdc;
  options.sdc_stream = 17;
  try {
    outcome.result = run_block(kernel, device, gmem, args, options);
  } catch (const CheckError& e) {
    outcome.threw = true;
    outcome.error = e.what();
  }
  outcome.memory = gmem.read_u8(0, gmem.size());
  outcome.trace = trace.events();
  outcome.writes = writes.spans();
  return outcome;
}

void expect_equal_results(const BlockResult& legacy, const BlockResult& fast,
                          const std::string& label) {
  EXPECT_EQ(legacy.cycles, fast.cycles) << label;
  EXPECT_EQ(legacy.instructions, fast.instructions) << label;
  EXPECT_EQ(legacy.smem_transactions, fast.smem_transactions) << label;
  EXPECT_EQ(legacy.gmem_transactions, fast.gmem_transactions) << label;
  EXPECT_EQ(legacy.barriers, fast.barriers) << label;
  EXPECT_EQ(legacy.sdc_flips, fast.sdc_flips) << label;
  for (std::size_t op = 0; op < legacy.op_counts.size(); ++op) {
    EXPECT_EQ(legacy.op_counts[op], fast.op_counts[op]) << label << " op " << op;
  }
}

void expect_equal_outcomes(const RunOutcome& legacy, const RunOutcome& fast,
                           const std::string& label) {
  ASSERT_EQ(legacy.threw, fast.threw) << label;
  expect_equal_results(legacy.result, fast.result, label);
  EXPECT_EQ(legacy.memory, fast.memory) << label;
  EXPECT_EQ(legacy.writes, fast.writes) << label;
  ASSERT_EQ(legacy.trace.size(), fast.trace.size()) << label;
  for (std::size_t i = 0; i < legacy.trace.size(); ++i) {
    EXPECT_EQ(legacy.trace[i].name, fast.trace[i].name) << label << " event " << i;
    EXPECT_EQ(legacy.trace[i].warp, fast.trace[i].warp) << label << " event " << i;
    EXPECT_EQ(legacy.trace[i].start, fast.trace[i].start) << label << " event " << i;
    EXPECT_EQ(legacy.trace[i].end, fast.trace[i].end) << label << " event " << i;
  }
}

TEST(InterpEquivalence, OmnibusKernelAllDevicesSdcOnOff) {
  const Kernel kernel = build_omnibus();
  for (const DeviceSpec& device : wsim::simt::all_devices()) {
    // The decoded form must actually contain superinstructions, otherwise
    // the fused handlers are not being exercised here.
    const auto program = wsim::simt::decode_program(kernel, device);
    EXPECT_GT(program->fused_groups, 0U) << device.name;
    // Likewise the decoded form must contain SIMD-eligible instructions,
    // or the vector comparison below degenerates to scalar-vs-scalar.
    EXPECT_GT(program->vec_instrs, 0U) << device.name;

    SdcPlan sdc;
    sdc.seed = 77;
    sdc.flip_prob = 1e-3;
    for (const SdcPlan* plan :
         {static_cast<const SdcPlan*>(nullptr), static_cast<const SdcPlan*>(&sdc)}) {
      const std::string label =
          device.name + (plan != nullptr ? " sdc" : " clean");
      const RunOutcome legacy =
          run_omnibus(kernel, device, InterpPath::kLegacy, plan);
      const RunOutcome fast = run_omnibus(kernel, device, InterpPath::kFast, plan);
      const RunOutcome vec =
          run_omnibus(kernel, device, InterpPath::kVector, plan);
      EXPECT_FALSE(legacy.threw) << label << ": " << legacy.error;
      expect_equal_outcomes(legacy, fast, label + " fast");
      expect_equal_outcomes(legacy, vec, label + " vector");
      if (plan != nullptr) {
        // The plan is hot enough that the run must actually flip bits, or
        // the event-numbering equivalence is vacuous.
        EXPECT_GT(legacy.result.sdc_flips, 0U) << label;
      }
    }
  }
}

wsim::workload::Dataset small_dataset() {
  wsim::workload::GeneratorConfig cfg;
  cfg.seed = 11;
  cfg.regions = 2;
  cfg.ph_tasks_per_region_mean = 5.0;
  cfg.sw_query_len_min = 40;
  cfg.sw_query_len_max = 90;
  cfg.sw_target_len_min = 60;
  cfg.sw_target_len_max = 120;
  return wsim::workload::generate_dataset(cfg);
}

TEST(InterpEquivalence, SwRunnerFingerprintsMatchOnEveryDevice) {
  const auto dataset = small_dataset();
  const auto batches = wsim::workload::sw_rebatch(dataset, 8);
  ASSERT_FALSE(batches.empty());
  for (const CommMode mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
    const wsim::kernels::SwRunner runner(mode);
    for (const DeviceSpec& device : wsim::simt::all_devices()) {
      wsim::kernels::SwRunOptions legacy_opt;
      legacy_opt.collect_outputs = true;
      legacy_opt.interp = InterpPath::kLegacy;
      wsim::kernels::SwRunOptions fast_opt = legacy_opt;
      fast_opt.interp = InterpPath::kFast;
      wsim::kernels::SwRunOptions vec_opt = legacy_opt;
      vec_opt.interp = InterpPath::kVector;
      const auto legacy = runner.run_batch(device, batches.front(), legacy_opt);
      const auto fast = runner.run_batch(device, batches.front(), fast_opt);
      const auto vec = runner.run_batch(device, batches.front(), vec_opt);
      EXPECT_EQ(guard::fingerprint_sw(legacy.outputs),
                guard::fingerprint_sw(fast.outputs))
          << device.name;
      EXPECT_EQ(guard::fingerprint_sw(legacy.outputs),
                guard::fingerprint_sw(vec.outputs))
          << device.name << " vector";
      EXPECT_EQ(legacy.run.launch.instructions, fast.run.launch.instructions)
          << device.name;
      EXPECT_EQ(legacy.run.launch.instructions, vec.run.launch.instructions)
          << device.name << " vector";
      expect_equal_results(legacy.run.launch.representative,
                           fast.run.launch.representative, device.name);
      expect_equal_results(legacy.run.launch.representative,
                           vec.run.launch.representative,
                           device.name + " vector");
    }
  }
}

TEST(InterpEquivalence, PhRunnerFingerprintsMatchOnEveryDevice) {
  const auto dataset = small_dataset();
  const auto batches = wsim::workload::ph_rebatch(dataset, 8);
  ASSERT_FALSE(batches.empty());
  for (const CommMode mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
    const wsim::kernels::PhRunner runner(mode);
    for (const DeviceSpec& device : wsim::simt::all_devices()) {
      wsim::kernels::PhRunOptions legacy_opt;
      legacy_opt.collect_outputs = true;
      legacy_opt.double_fallback = true;
      legacy_opt.interp = InterpPath::kLegacy;
      wsim::kernels::PhRunOptions fast_opt = legacy_opt;
      fast_opt.interp = InterpPath::kFast;
      wsim::kernels::PhRunOptions vec_opt = legacy_opt;
      vec_opt.interp = InterpPath::kVector;
      const auto legacy = runner.run_batch(device, batches.front(), legacy_opt);
      const auto fast = runner.run_batch(device, batches.front(), fast_opt);
      const auto vec = runner.run_batch(device, batches.front(), vec_opt);
      EXPECT_EQ(guard::fingerprint_ph(legacy.log10),
                guard::fingerprint_ph(fast.log10))
          << device.name;
      EXPECT_EQ(guard::fingerprint_ph(legacy.log10),
                guard::fingerprint_ph(vec.log10))
          << device.name << " vector";
      expect_equal_results(legacy.run.launch.representative,
                           fast.run.launch.representative, device.name);
      expect_equal_results(legacy.run.launch.representative,
                           vec.run.launch.representative,
                           device.name + " vector");
    }
  }
}

TEST(InterpEquivalence, NwRunnerFingerprintsMatchOnEveryDevice) {
  const auto dataset = small_dataset();
  const auto batches = wsim::workload::sw_rebatch(dataset, 8);
  ASSERT_FALSE(batches.empty());
  for (const CommMode mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
    const wsim::kernels::NwRunner runner(mode);
    for (const DeviceSpec& device : wsim::simt::all_devices()) {
      wsim::kernels::NwRunOptions legacy_opt;
      legacy_opt.collect_outputs = true;
      legacy_opt.interp = InterpPath::kLegacy;
      wsim::kernels::NwRunOptions fast_opt = legacy_opt;
      fast_opt.interp = InterpPath::kFast;
      wsim::kernels::NwRunOptions vec_opt = legacy_opt;
      vec_opt.interp = InterpPath::kVector;
      const auto legacy = runner.run_batch(device, batches.front(), legacy_opt);
      const auto fast = runner.run_batch(device, batches.front(), fast_opt);
      const auto vec = runner.run_batch(device, batches.front(), vec_opt);
      EXPECT_EQ(guard::fingerprint_nw(legacy.scores),
                guard::fingerprint_nw(fast.scores))
          << device.name;
      EXPECT_EQ(guard::fingerprint_nw(legacy.scores),
                guard::fingerprint_nw(vec.scores))
          << device.name << " vector";
      expect_equal_results(legacy.run.launch.representative,
                           fast.run.launch.representative, device.name);
      expect_equal_results(legacy.run.launch.representative,
                           vec.run.launch.representative,
                           device.name + " vector");
    }
  }
}

TEST(InterpEquivalence, SdcReplayIsIdenticalThroughTheRunner) {
  const auto dataset = small_dataset();
  const auto batches = wsim::workload::sw_rebatch(dataset, 8);
  ASSERT_FALSE(batches.empty());
  const wsim::kernels::SwRunner runner(CommMode::kShuffle);
  const auto device = wsim::simt::make_k1200();

  const auto run_path = [&](InterpPath path)
      -> std::optional<wsim::kernels::SwBatchResult> {
    wsim::kernels::SwRunOptions opt;
    opt.collect_outputs = true;
    opt.interp = path;
    opt.sdc.seed = 9;
    opt.sdc.flip_prob = 1e-4;
    opt.sdc_launch_id = 3;
    try {
      return runner.run_batch(device, batches.front(), opt);
    } catch (const CheckError&) {
      // A flip may land in an address-feeding register; both paths must
      // then crash identically.
      return std::nullopt;
    }
  };
  const auto legacy = run_path(InterpPath::kLegacy);
  const auto fast = run_path(InterpPath::kFast);
  const auto vec = run_path(InterpPath::kVector);
  ASSERT_EQ(legacy.has_value(), fast.has_value());
  ASSERT_EQ(legacy.has_value(), vec.has_value());
  if (legacy.has_value()) {
    EXPECT_EQ(legacy->run.launch.sdc_flips, fast->run.launch.sdc_flips);
    EXPECT_EQ(legacy->run.launch.sdc_flips, vec->run.launch.sdc_flips);
    EXPECT_EQ(guard::fingerprint_sw(legacy->outputs),
              guard::fingerprint_sw(fast->outputs));
    EXPECT_EQ(guard::fingerprint_sw(legacy->outputs),
              guard::fingerprint_sw(vec->outputs));
  }
}

TEST(InterpEquivalence, CycleBudgetTimeoutMatchesExactly) {
  KernelBuilder kb("runaway", 32);
  const VReg t = kb.tid();
  kb.loop(imm_i64(100000));
  kb.emit_to(t, wsim::simt::Op::kIAdd, t, imm_i64(1));
  kb.endloop();
  const Kernel kernel = kb.build();
  const auto device = wsim::simt::make_k1200();

  const auto run_path = [&](InterpPath path) {
    GlobalMemory gmem;
    BlockRunOptions options;
    options.interp = path;
    options.max_cycles = 5000;
    std::optional<LaunchTimeout> caught;
    try {
      run_block(kernel, device, gmem, {}, options);
    } catch (const LaunchTimeout& e) {
      caught = e;
    }
    return caught;
  };
  const auto legacy = run_path(InterpPath::kLegacy);
  const auto fast = run_path(InterpPath::kFast);
  const auto vec = run_path(InterpPath::kVector);
  ASSERT_TRUE(legacy.has_value());
  ASSERT_TRUE(fast.has_value());
  ASSERT_TRUE(vec.has_value());
  EXPECT_EQ(legacy->kind(), fast->kind());
  EXPECT_EQ(legacy->cycles(), fast->cycles());
  EXPECT_EQ(legacy->budget(), fast->budget());
  EXPECT_STREQ(legacy->what(), fast->what());
  EXPECT_EQ(legacy->kind(), vec->kind());
  EXPECT_EQ(legacy->cycles(), vec->cycles());
  EXPECT_EQ(legacy->budget(), vec->budget());
  EXPECT_STREQ(legacy->what(), vec->what());
}

TEST(InterpEquivalence, BarrierDeadlockMatchesExactly) {
  // Warp 1's lanes are all predicated off the barrier, so it finishes
  // while warp 0 waits — both paths must diagnose the identical deadlock.
  KernelBuilder kb("deadlock", 64);
  kb.alloc_smem(4);
  const VReg t = kb.tid();
  const VReg first_warp = kb.setp(Cmp::kLt, DType::kI64, t, imm_i64(32));
  kb.begin_pred(first_warp);
  kb.bar();
  kb.end_pred();
  const Kernel kernel = kb.build();
  const auto device = wsim::simt::make_k40();

  const auto run_path = [&](InterpPath path) {
    GlobalMemory gmem;
    BlockRunOptions options;
    options.interp = path;
    std::optional<LaunchTimeout> caught;
    try {
      run_block(kernel, device, gmem, {}, options);
    } catch (const LaunchTimeout& e) {
      caught = e;
    }
    return caught;
  };
  const auto legacy = run_path(InterpPath::kLegacy);
  const auto fast = run_path(InterpPath::kFast);
  const auto vec = run_path(InterpPath::kVector);
  ASSERT_TRUE(legacy.has_value());
  ASSERT_TRUE(fast.has_value());
  ASSERT_TRUE(vec.has_value());
  EXPECT_EQ(legacy->kind(), fast->kind());
  EXPECT_EQ(legacy->cycles(), fast->cycles());
  EXPECT_STREQ(legacy->what(), fast->what());
  EXPECT_EQ(legacy->kind(), vec->kind());
  EXPECT_EQ(legacy->cycles(), vec->cycles());
  EXPECT_STREQ(legacy->what(), vec->what());
}

TEST(InterpEquivalence, OutOfBoundsAndBadWidthThrowOnBothPaths) {
  const auto device = wsim::simt::make_titan_x();
  {
    KernelBuilder kb("smem_oob", 32);
    kb.alloc_smem(16);
    const VReg t = kb.tid();
    kb.sts(kb.imul(t, imm_i64(4)), t);
    const Kernel kernel = kb.build();
    for (const InterpPath path :
         {InterpPath::kLegacy, InterpPath::kFast, InterpPath::kVector}) {
      GlobalMemory gmem;
      BlockRunOptions options;
      options.interp = path;
      try {
        run_block(kernel, device, gmem, {}, options);
        FAIL() << "smem OOB must throw";
      } catch (const CheckError& e) {
        EXPECT_NE(std::string(e.what()).find(
                      "shared memory access out of bounds in kernel smem_oob"),
                  std::string::npos);
      }
    }
  }
  {
    KernelBuilder kb("bad_width", 32);
    const VReg t = kb.tid();
    kb.stg(kb.imul(t, imm_i64(4)), kb.shfl_down(t, imm_i64(1), 3));
    const Kernel kernel = kb.build();
    for (const InterpPath path :
         {InterpPath::kLegacy, InterpPath::kFast, InterpPath::kVector}) {
      GlobalMemory gmem;
      gmem.alloc(32 * 4);
      BlockRunOptions options;
      options.interp = path;
      try {
        run_block(kernel, device, gmem, {}, options);
        FAIL() << "bad shuffle width must throw";
      } catch (const CheckError& e) {
        EXPECT_NE(std::string(e.what()).find(
                      "shuffle width must be a power of two in [1, 32]"),
                  std::string::npos);
      }
    }
  }
}

/// Single-warp kernel whose accel-eligible loop body mixes predicated
/// simple ops (the masked SIMD blend), predicated shared-memory traffic,
/// an unpredicated shuffle, and a barrier. `threshold` sets how many lanes
/// are active (0..32), `negate` flips the polarity, and `shifting` rewrites
/// the predicate register inside the body so the active set rotates every
/// iteration — the case the vector engine must re-evaluate per iteration
/// instead of baking into its steady-state plan.
Kernel build_divergent_stress(int threshold, bool negate, bool shifting) {
  KernelBuilder kb("divergent_stress", 32);
  const SReg out = kb.param();
  const SReg trips = kb.param();
  kb.alloc_smem(32 * 4);
  const VReg t = kb.tid();
  const VReg p = kb.setp(Cmp::kLt, DType::kI64, t, imm_i64(threshold));
  VReg acc = kb.mov(imm_i64(1));
  VReg f = kb.mov(imm_f32(1.0F));
  const VReg idx = kb.mov(t);
  kb.sts(kb.imul(t, imm_i64(4)), t);
  kb.loop(trips);
  kb.begin_pred(p, negate);
  kb.assign(acc, kb.iadd(acc, imm_i64(3)));
  kb.assign(f, kb.fmul(f, imm_f32(1.0001F)));
  kb.end_pred();
  kb.assign(f, kb.fadd(f, kb.shfl_xor(f, imm_i64(1))));
  if (shifting) {
    kb.assign(idx, kb.iand(kb.iadd(idx, imm_i64(1)), imm_i64(31)));
    kb.assign(p, kb.setp(Cmp::kLt, DType::kI64, idx, imm_i64(threshold)));
  }
  kb.begin_pred(p);
  kb.sts(kb.imul(t, imm_i64(4)), acc);
  kb.end_pred();
  kb.begin_pred(p, /*negate=*/true);
  kb.lds_to(acc, kb.imul(kb.ixor(t, imm_i64(1)), imm_i64(4)));
  kb.end_pred();
  kb.bar();
  kb.endloop();
  const VReg nb = kb.lds(kb.imul(kb.ixor(t, imm_i64(1)), imm_i64(4)));
  kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))), kb.iadd(acc, nb));
  kb.stg(kb.iadd(out, kb.iadd(imm_i64(32 * 4), kb.imul(t, imm_i64(4)))), f);
  return kb.build();
}

RunOutcome run_stress(const Kernel& kernel, const DeviceSpec& device,
                      InterpPath path, std::int64_t trips, bool with_trace) {
  GlobalMemory gmem;
  const std::int64_t out = gmem.alloc(32 * 4 * 2);
  const std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(out),
                                           static_cast<std::uint64_t>(trips)};
  RunOutcome outcome;
  Trace trace;
  GmemWriteSet writes;
  BlockRunOptions options;
  options.interp = path;
  // Tracing pins the instruction-by-instruction schedule but also turns
  // off the vector engine's loop fast-forward, so the stress runs both
  // ways: traced (per-event equality) and untraced (the fast-forward and
  // its precompiled plan actually engage).
  if (with_trace) {
    options.trace = &trace;
    options.writes = &writes;
  }
  try {
    outcome.result = run_block(kernel, device, gmem, args, options);
  } catch (const CheckError& e) {
    outcome.threw = true;
    outcome.error = e.what();
  }
  outcome.memory = gmem.read_u8(0, gmem.size());
  outcome.trace = trace.events();
  outcome.writes = writes.spans();
  return outcome;
}

TEST(InterpEquivalence, DivergentPredicateStress) {
  const auto device = wsim::simt::make_k1200();
  for (const int threshold : {0, 1, 16, 31, 32}) {
    for (const bool negate : {false, true}) {
      for (const bool shifting : {false, true}) {
        const Kernel kernel =
            build_divergent_stress(threshold, negate, shifting);
        for (const std::int64_t trips : {0LL, 1LL, 2LL, 3LL, 400LL}) {
          for (const bool with_trace : {true, false}) {
            const std::string label =
                "threshold=" + std::to_string(threshold) +
                " negate=" + std::to_string(negate) +
                " shifting=" + std::to_string(shifting) +
                " trips=" + std::to_string(trips) +
                (with_trace ? " traced" : " untraced");
            const RunOutcome legacy =
                run_stress(kernel, device, InterpPath::kLegacy, trips, with_trace);
            const RunOutcome fast =
                run_stress(kernel, device, InterpPath::kFast, trips, with_trace);
            const RunOutcome vec =
                run_stress(kernel, device, InterpPath::kVector, trips, with_trace);
            EXPECT_FALSE(legacy.threw) << label << ": " << legacy.error;
            expect_equal_outcomes(legacy, fast, label + " fast");
            expect_equal_outcomes(legacy, vec, label + " vector");
          }
        }
      }
    }
  }
}

TEST(InterpEquivalence, EnvironmentKnobSelectsThePath) {
  // Explicit requests are never overridden.
  EXPECT_EQ(wsim::simt::resolve_interp_path(InterpPath::kFast), InterpPath::kFast);
  EXPECT_EQ(wsim::simt::resolve_interp_path(InterpPath::kLegacy),
            InterpPath::kLegacy);
  // kDefault defers to WSIM_INTERP, resolved per call (not cached).
  ::setenv("WSIM_INTERP", "legacy", 1);
  EXPECT_EQ(wsim::simt::resolve_interp_path(InterpPath::kDefault),
            InterpPath::kLegacy);
  ::setenv("WSIM_INTERP", "fast", 1);
  EXPECT_EQ(wsim::simt::resolve_interp_path(InterpPath::kDefault),
            InterpPath::kFast);
  ::setenv("WSIM_INTERP", "vector", 1);
  EXPECT_EQ(wsim::simt::resolve_interp_path(InterpPath::kDefault),
            InterpPath::kVector);
  ::unsetenv("WSIM_INTERP");
  EXPECT_EQ(wsim::simt::resolve_interp_path(InterpPath::kDefault),
            InterpPath::kFast);
}

}  // namespace
