// Concurrency and reuse contract of the decoded-program cache: each
// (kernel, device) identity is decoded exactly once per process no matter
// how many threads race on first use, engine launches share one decoded
// program across workers, and distinct kernels/devices get distinct
// programs. Built into the ThreadSanitizer CI job — the assertions here
// are the functional half, TSan provides the data-race half.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "wsim/simt/builder.hpp"
#include "wsim/simt/decode.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/engine.hpp"
#include "wsim/simt/memory.hpp"

namespace {

using wsim::simt::DecodedProgram;
using wsim::simt::DecodedProgramCache;
using wsim::simt::DeviceSpec;
using wsim::simt::imm_i64;
using wsim::simt::Kernel;
using wsim::simt::KernelBuilder;
using wsim::simt::VReg;

Kernel build_store_kernel(const std::string& name, int rounds) {
  KernelBuilder kb(name, 32);
  const auto out = kb.param();
  const VReg t = kb.tid();
  VReg acc = kb.mov(imm_i64(0));
  kb.loop(imm_i64(rounds));
  kb.assign(acc, kb.iadd(acc, kb.shfl_down(t, imm_i64(1))));
  kb.endloop();
  kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))), acc);
  return kb.build();
}

TEST(DecodeCache, RacingThreadsDecodeEachIdentityOnce) {
  DecodedProgramCache cache;
  const Kernel kernel = build_store_kernel("race_once", 4);
  const DeviceSpec device = wsim::simt::make_k1200();

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const DecodedProgram>> programs(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back(
          [&, i] { programs[static_cast<std::size_t>(i)] = cache.get(kernel, device); });
    }
    for (auto& t : threads) {
      t.join();
    }
  }
  EXPECT_EQ(cache.decode_count(), 1U);
  EXPECT_EQ(cache.size(), 1U);
  for (int i = 1; i < kThreads; ++i) {
    // Pointer equality: every thread sees the one shared program.
    EXPECT_EQ(programs[static_cast<std::size_t>(i)].get(), programs[0].get());
  }
}

TEST(DecodeCache, DistinctKernelsAndDevicesDecodeSeparately) {
  DecodedProgramCache cache;
  constexpr int kKernels = 6;
  std::vector<Kernel> kernels;
  kernels.reserve(kKernels);
  for (int k = 0; k < kKernels; ++k) {
    kernels.push_back(build_store_kernel("distinct_" + std::to_string(k), k + 1));
  }
  const auto devices = wsim::simt::all_devices();

  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (const Kernel& kernel : kernels) {
        for (const DeviceSpec& device : devices) {
          ASSERT_NE(cache.get(kernel, device), nullptr);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kKernels) * devices.size();
  EXPECT_EQ(cache.decode_count(), expected);
  EXPECT_EQ(cache.size(), expected);

  // Same kernel on different devices is a different identity (latencies
  // are baked in), so no cross-device aliasing is possible.
  const auto k40 = cache.get(kernels[0], wsim::simt::make_k40());
  const auto titan = cache.get(kernels[0], wsim::simt::make_titan_x());
  EXPECT_NE(k40.get(), titan.get());
  EXPECT_NE(k40->identity, titan->identity);
  EXPECT_EQ(cache.decode_count(), expected);  // hits, not re-decodes
}

TEST(DecodeCache, ConcurrentEngineLaunchesShareTheProcessCache) {
  // Multi-threaded launches through two engines stress the shared
  // process-wide cache the way production does; under TSan this is the
  // race check for the fast path's predecode step.
  const Kernel kernel = build_store_kernel("engine_shared", 8);
  const DeviceSpec device = wsim::simt::make_titan_x();
  const std::uint64_t decodes_before =
      wsim::simt::shared_decoded_cache().decode_count();

  wsim::simt::EngineOptions engine_options;
  engine_options.threads = 4;
  wsim::simt::ExecutionEngine engine_a(engine_options);
  wsim::simt::ExecutionEngine engine_b(engine_options);

  const auto launch_many = [&](wsim::simt::ExecutionEngine& engine) {
    wsim::simt::GlobalMemory gmem;
    constexpr int kBlocks = 16;
    const std::int64_t out = gmem.alloc(kBlocks * 32 * 4);
    std::vector<wsim::simt::BlockLaunch> blocks(kBlocks);
    for (int b = 0; b < kBlocks; ++b) {
      blocks[static_cast<std::size_t>(b)].args = {
          static_cast<std::uint64_t>(out + b * 32 * 4)};
    }
    const auto result = engine.launch(kernel, device, gmem, blocks);
    EXPECT_EQ(result.blocks_executed, static_cast<std::uint64_t>(kBlocks));
  };

  std::thread ta([&] { launch_many(engine_a); });
  std::thread tb([&] { launch_many(engine_b); });
  ta.join();
  tb.join();

  // Both engines, all workers: at most one new decode for this identity.
  EXPECT_LE(wsim::simt::shared_decoded_cache().decode_count(),
            decodes_before + 1);
}

}  // namespace
