// Regression fingerprints for the compiled kernels: resource usage and
// structural properties that the paper's analysis depends on. Ranges are
// deliberately loose enough to survive benign compiler-pass changes but
// tight enough to catch a broken register allocator or an accidentally
// quadratic IR.

#include <gtest/gtest.h>

#include "wsim/kernels/nw_kernels.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/isa.hpp"

namespace {

using wsim::kernels::CommMode;
using wsim::simt::Kernel;
using wsim::simt::Op;

std::size_t count_op(const Kernel& k, Op op) {
  std::size_t n = 0;
  for (const auto& ins : k.code) {
    n += ins.op == op ? 1 : 0;
  }
  return n;
}

TEST(KernelFingerprint, Sw1Resources) {
  const Kernel k = wsim::kernels::build_sw_kernel(CommMode::kSharedMemory, {});
  EXPECT_EQ(k.name, "sw1_shared_b32");
  EXPECT_EQ(k.threads_per_block, 32);
  EXPECT_GE(k.vreg_count, 30);
  EXPECT_LE(k.vreg_count, 90);
  // 7 line buffers (32 words) + padded 32x33 tile.
  EXPECT_EQ(k.smem_bytes, 7 * 32 * 4 + 32 * 33 * 4);
  EXPECT_EQ(count_op(k, Op::kBar), 1U);       // one sync in the step loop
  EXPECT_EQ(count_op(k, Op::kLoop), 4U);      // band, tile, step, flush
  EXPECT_LT(k.code.size(), 250U);
}

TEST(KernelFingerprint, Sw2Resources) {
  const Kernel k = wsim::kernels::build_sw_kernel(CommMode::kShuffle, {});
  EXPECT_EQ(k.name, "sw2_shuffle");
  EXPECT_EQ(k.smem_bytes, 0);
  EXPECT_EQ(count_op(k, Op::kBar), 0U);
  EXPECT_EQ(count_op(k, Op::kShflUp), 4U);  // H(-1), H(-2), F, kv
  EXPECT_EQ(count_op(k, Op::kLoop), 3U);    // band, tile, step
  EXPECT_LT(k.vreg_count, wsim::kernels::build_sw_kernel(CommMode::kSharedMemory, {})
                              .vreg_count +
                              16);
}

TEST(KernelFingerprint, PhSharedResources) {
  const Kernel k = wsim::kernels::build_ph_shared_kernel(128);
  EXPECT_EQ(k.threads_per_block, 128);
  EXPECT_EQ(k.smem_bytes, 9 * 128 * 4);
  EXPECT_GE(k.vreg_count, 25);
  EXPECT_LE(k.vreg_count, 70);
  EXPECT_EQ(count_op(k, Op::kLds), 5U);
  EXPECT_EQ(count_op(k, Op::kSts), 3U);
}

TEST(KernelFingerprint, PhShuffleRegisterGrowth) {
  // Register blocking must grow roughly linearly with cells/thread — a
  // broken allocator shows up as superlinear growth or collapse.
  int prev = 0;
  for (int cells = 1; cells <= 4; ++cells) {
    const Kernel k = wsim::kernels::build_ph_shuffle_kernel(cells);
    EXPECT_GT(k.vreg_count, prev);
    EXPECT_LE(k.vreg_count, 40 + cells * 25);
    EXPECT_EQ(k.smem_bytes, 0);
    EXPECT_EQ(count_op(k, Op::kShflUp), 5U);
    prev = k.vreg_count;
  }
}

TEST(KernelFingerprint, AllKernelsStayWithinDeviceLimits) {
  const auto dev = wsim::simt::make_k1200();
  const auto check = [&](const Kernel& k) {
    EXPECT_LE(k.vreg_count, dev.max_registers_per_thread) << k.name;
    EXPECT_LE(k.smem_bytes, dev.shared_mem_per_block) << k.name;
    EXPECT_NO_THROW(wsim::simt::validate(k)) << k.name;
  };
  check(wsim::kernels::build_sw_kernel(CommMode::kSharedMemory, {}));
  check(wsim::kernels::build_sw_kernel(CommMode::kShuffle, {}));
  check(wsim::kernels::build_sw_kernel(CommMode::kSharedMemory, {}, 96));
  check(wsim::kernels::build_nw_kernel(CommMode::kSharedMemory, {}));
  check(wsim::kernels::build_nw_kernel(CommMode::kShuffle, {}));
  for (int v = 1; v <= 4; ++v) {
    check(wsim::kernels::build_ph_shared_kernel(32 * v));
    check(wsim::kernels::build_ph_shuffle_kernel(v));
    check(wsim::kernels::build_ph_hybrid_kernel(32 * v));
  }
}

TEST(KernelFingerprint, DisassemblyIsStableInShape) {
  const Kernel k = wsim::kernels::build_sw_kernel(CommMode::kShuffle, {});
  const std::string text = wsim::simt::disassemble(k);
  EXPECT_NE(text.find(".kernel sw2_shuffle"), std::string::npos);
  EXPECT_NE(text.find("shfl.up"), std::string::npos);
  EXPECT_EQ(text.find("bar.sync"), std::string::npos);
}

}  // namespace
