#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "wsim/align/needleman_wunsch.hpp"
#include "wsim/util/rng.hpp"

namespace {

using wsim::align::NwAlignment;
using wsim::align::SwParams;

SwParams simple_params() {
  SwParams p;
  p.match = 10;
  p.mismatch = -8;
  p.gap_open = -12;
  p.gap_extend = -2;
  return p;
}

/// Consumes the CIGAR against both sequences and recomputes the score.
std::int32_t rescore(const NwAlignment& aln, std::string_view query,
                     std::string_view target, const SwParams& p) {
  std::int32_t score = 0;
  std::size_t qi = 0;
  std::size_t tj = 0;
  std::size_t pos = 0;
  while (pos < aln.cigar.size()) {
    std::size_t run = 0;
    while (pos < aln.cigar.size() && std::isdigit(aln.cigar[pos]) != 0) {
      run = run * 10 + static_cast<std::size_t>(aln.cigar[pos] - '0');
      ++pos;
    }
    const char op = aln.cigar[pos++];
    switch (op) {
      case 'M':
        for (std::size_t k = 0; k < run; ++k) {
          score += wsim::align::substitution_score(p, query[qi++], target[tj++]);
        }
        break;
      case 'I':
        score += p.gap_open + static_cast<std::int32_t>(run - 1) * p.gap_extend;
        qi += run;
        break;
      case 'D':
        score += p.gap_open + static_cast<std::int32_t>(run - 1) * p.gap_extend;
        tj += run;
        break;
      default:
        ADD_FAILURE() << "unexpected CIGAR op " << op;
    }
  }
  EXPECT_EQ(qi, query.size()) << aln.cigar;
  EXPECT_EQ(tj, target.size()) << aln.cigar;
  return score;
}

TEST(NeedlemanWunsch, IdenticalSequences) {
  const auto aln = wsim::align::nw_align("ACGTACGT", "ACGTACGT", simple_params());
  EXPECT_EQ(aln.score, 80);
  EXPECT_EQ(aln.cigar, "8M");
}

TEST(NeedlemanWunsch, GlobalAlignmentPaysForOverhangs) {
  // Unlike SW, NW must pay for the unmatched target prefix/suffix.
  const auto aln = wsim::align::nw_align("CGTA", "AACGTATT", simple_params());
  EXPECT_EQ(aln.score, 4 * 10 + 2 * (-12 - 2));
}

TEST(NeedlemanWunsch, EmptyQueryIsAllDeletes) {
  const auto aln = wsim::align::nw_align("", "ACGT", simple_params());
  EXPECT_EQ(aln.cigar, "4D");
  EXPECT_EQ(aln.score, -12 - 3 * 2);
}

TEST(NeedlemanWunsch, EmptyTargetIsAllInserts) {
  const auto aln = wsim::align::nw_align("ACG", "", simple_params());
  EXPECT_EQ(aln.cigar, "3I");
}

TEST(NeedlemanWunsch, BothEmpty) {
  const auto aln = wsim::align::nw_align("", "", simple_params());
  EXPECT_EQ(aln.score, 0);
  EXPECT_TRUE(aln.cigar.empty());
}

TEST(NeedlemanWunsch, ScoreOnlyAgreesWithFullAlignment) {
  const auto aln = wsim::align::nw_align("ACGTTGCA", "AGGTTACA", simple_params());
  EXPECT_EQ(wsim::align::nw_score("ACGTTGCA", "AGGTTACA", simple_params()), aln.score);
}

TEST(NeedlemanWunsch, AffineGapMergesRuns) {
  const auto aln =
      wsim::align::nw_align("AAAAATTTTT", "AAAAAGGGGTTTTT", simple_params());
  EXPECT_EQ(aln.cigar, "5M4D5M");
}

std::string random_dna(wsim::util::Rng& rng, int len) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = kBases[rng.uniform_int(0, 3)];
  }
  return s;
}

class NwPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NwPropertyTest, CigarRescoresToDpScore) {
  wsim::util::Rng rng(GetParam());
  const SwParams p = simple_params();
  const std::string query = random_dna(rng, static_cast<int>(rng.uniform_int(0, 40)));
  const std::string target = random_dna(rng, static_cast<int>(rng.uniform_int(0, 50)));
  const NwAlignment aln = wsim::align::nw_align(query, target, p);
  EXPECT_EQ(rescore(aln, query, target, p), aln.score)
      << "query=" << query << " target=" << target;
}

TEST_P(NwPropertyTest, ScoreOnlyMatchesAlignment) {
  wsim::util::Rng rng(GetParam() ^ 0x55ULL);
  const SwParams p = simple_params();
  const std::string query = random_dna(rng, static_cast<int>(rng.uniform_int(1, 40)));
  const std::string target = random_dna(rng, static_cast<int>(rng.uniform_int(1, 40)));
  EXPECT_EQ(wsim::align::nw_score(query, target, p),
            wsim::align::nw_align(query, target, p).score);
}

TEST_P(NwPropertyTest, SymmetricUnderSwap) {
  // Swapping query/target flips I<->D but keeps the score (the scoring
  // scheme is symmetric).
  wsim::util::Rng rng(GetParam() ^ 0x99ULL);
  const SwParams p = simple_params();
  const std::string query = random_dna(rng, static_cast<int>(rng.uniform_int(1, 30)));
  const std::string target = random_dna(rng, static_cast<int>(rng.uniform_int(1, 30)));
  EXPECT_EQ(wsim::align::nw_score(query, target, p),
            wsim::align::nw_score(target, query, p));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NwPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
