#include <gtest/gtest.h>

#include "wsim/simt/device.hpp"
#include "wsim/simt/occupancy.hpp"
#include "wsim/util/check.hpp"

namespace {

using wsim::simt::compute_occupancy;
using wsim::simt::DeviceSpec;
using wsim::simt::Occupancy;
using wsim::util::CheckError;

const DeviceSpec kDev = wsim::simt::make_k1200();

TEST(Occupancy, SmallKernelIsBlockSlotLimited) {
  // 32 threads, few registers, no smem: 32-block cap binds first.
  const Occupancy occ = compute_occupancy(kDev, 32, 16, 0);
  EXPECT_EQ(occ.blocks_per_sm, kDev.max_blocks_per_sm);
  EXPECT_EQ(occ.limiter, Occupancy::Limiter::kBlockSlots);
  EXPECT_EQ(occ.active_warps_per_sm, 32);
  EXPECT_DOUBLE_EQ(occ.fraction, 0.5);
}

TEST(Occupancy, ThreadLimitedKernel) {
  const Occupancy occ = compute_occupancy(kDev, 1024, 16, 0);
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.limiter, Occupancy::Limiter::kThreads);
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
}

TEST(Occupancy, RegisterLimitedKernel) {
  // 128 regs/thread -> 4096/warp -> 16 warps per SM.
  const Occupancy occ = compute_occupancy(kDev, 32, 128, 0);
  EXPECT_EQ(occ.limiter, Occupancy::Limiter::kRegisters);
  EXPECT_EQ(occ.active_warps_per_sm, 16);
  EXPECT_DOUBLE_EQ(occ.fraction, 0.25);
}

TEST(Occupancy, SharedMemoryLimitedKernel) {
  // 16 KB smem per block on a 64 KB SM -> 4 blocks.
  const Occupancy occ = compute_occupancy(kDev, 32, 16, 16384);
  EXPECT_EQ(occ.blocks_per_sm, 4);
  EXPECT_EQ(occ.limiter, Occupancy::Limiter::kSharedMemory);
}

TEST(Occupancy, RegisterGranularityRoundsUp) {
  // 33 regs * 32 threads = 1056, rounded to 1280 (granularity 256):
  // 65536 / 1280 = 51 warps; with 1 warp/block the 32-block cap binds first,
  // so compare against a plainly register-limited case instead.
  const Occupancy a = compute_occupancy(kDev, 256, 33, 0);   // 8 warps/block
  const Occupancy b = compute_occupancy(kDev, 256, 32, 0);
  // 32 regs/thread -> 1024/warp -> 64 warps; 33 -> 1280/warp -> 51 -> 6 blocks.
  EXPECT_EQ(b.blocks_per_sm, 8);
  EXPECT_EQ(a.blocks_per_sm, 6);
  EXPECT_EQ(a.limiter, Occupancy::Limiter::kRegisters);
}

TEST(Occupancy, HeavyKernelStillGetsOneBlock) {
  const Occupancy occ = compute_occupancy(kDev, 1024, 255, 49152);
  EXPECT_EQ(occ.blocks_per_sm, 1);
}

TEST(Occupancy, ParallelismScalesWithSmCount) {
  const Occupancy occ = compute_occupancy(kDev, 32, 16, 0);
  EXPECT_EQ(occ.parallelism(kDev), 4LL * occ.active_threads_per_sm);
  const DeviceSpec titan = wsim::simt::make_titan_x();
  const Occupancy occ_t = compute_occupancy(titan, 32, 16, 0);
  EXPECT_EQ(occ_t.parallelism(titan), 24LL * occ_t.active_threads_per_sm);
}

TEST(Occupancy, RejectsIllegalKernels) {
  EXPECT_THROW(compute_occupancy(kDev, 33, 16, 0), CheckError);
  EXPECT_THROW(compute_occupancy(kDev, 32, 300, 0), CheckError);
  EXPECT_THROW(compute_occupancy(kDev, 32, 16, 1 << 20), CheckError);
  EXPECT_THROW(compute_occupancy(kDev, 32, -1, 0), CheckError);
}

// The paper's PairHMM trade-off in miniature: moving from a smem-hungry
// 128-thread kernel to a register-hungry 32-thread kernel drops occupancy
// — the shuffle design's cost side.
TEST(Occupancy, ShuffleTradeOffShape) {
  const Occupancy shared_like = compute_occupancy(kDev, 128, 32, 6144);
  const Occupancy shuffle_like = compute_occupancy(kDev, 32, 112, 0);
  EXPECT_GT(shared_like.fraction, shuffle_like.fraction);
  EXPECT_EQ(shuffle_like.limiter, Occupancy::Limiter::kRegisters);
}

TEST(Occupancy, LimiterToString) {
  EXPECT_EQ(wsim::simt::to_string(Occupancy::Limiter::kRegisters), "registers");
  EXPECT_EQ(wsim::simt::to_string(Occupancy::Limiter::kSharedMemory), "shared memory");
}

}  // namespace
