// Edge-case semantics of the remaining ISA operations: shifts, min/max,
// float compare corner cases, warp id, disassembly of predicated code.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "wsim/simt/builder.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/interpreter.hpp"
#include "wsim/simt/memory.hpp"

namespace {

using wsim::simt::Cmp;
using wsim::simt::DType;
using wsim::simt::GlobalMemory;
using wsim::simt::imm_f32;
using wsim::simt::imm_i64;
using wsim::simt::Kernel;
using wsim::simt::KernelBuilder;
using wsim::simt::Op;
using wsim::simt::SReg;
using wsim::simt::VReg;

const wsim::simt::DeviceSpec kDev = wsim::simt::make_k1200();

template <typename Body>
std::vector<std::int32_t> run_lanes(Body body, int threads = 32) {
  KernelBuilder kb("case", threads);
  const SReg out = kb.param();
  const VReg t = kb.tid();
  const VReg v = body(kb, t);
  kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))), v);
  const Kernel k = kb.build();
  GlobalMemory gmem;
  const auto buf = gmem.alloc(static_cast<std::size_t>(threads) * 4);
  const std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  run_block(k, kDev, gmem, args);
  return gmem.read_i32(buf, static_cast<std::size_t>(threads));
}

TEST(IsaSemantics, ShiftLeftAndRight) {
  const auto left = run_lanes(
      [](KernelBuilder& kb, VReg t) { return kb.shl(t, imm_i64(3)); });
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(left[static_cast<std::size_t>(i)], i << 3);
  }
  const auto right = run_lanes([](KernelBuilder& kb, VReg t) {
    return kb.shr(kb.isub(imm_i64(0), t), imm_i64(1));  // arithmetic shift
  });
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(right[static_cast<std::size_t>(i)], -i >> 1);
  }
}

TEST(IsaSemantics, IntegerMinMaxAreSigned) {
  const auto v = run_lanes([](KernelBuilder& kb, VReg t) {
    const VReg neg = kb.isub(t, imm_i64(16));  // -16..15
    return kb.iadd(kb.imul(kb.imax(neg, imm_i64(0)), imm_i64(100)),
                   kb.imin(neg, imm_i64(0)));
  });
  for (int i = 0; i < 32; ++i) {
    const int neg = i - 16;
    EXPECT_EQ(v[static_cast<std::size_t>(i)],
              std::max(neg, 0) * 100 + std::min(neg, 0));
  }
}

TEST(IsaSemantics, FloatMinMax) {
  const auto v = run_lanes([](KernelBuilder& kb, VReg t) {
    (void)t;
    const VReg a = kb.fmax(imm_f32(-2.5F), imm_f32(1.5F));
    const VReg b = kb.fmin(a, imm_f32(0.5F));
    // 0.5f -> compare against 0.25f to produce an integer flag.
    return kb.setp(Cmp::kEq, DType::kF32, b, imm_f32(0.5F));
  });
  for (const auto flag : v) {
    EXPECT_EQ(flag, 1);
  }
}

TEST(IsaSemantics, FloatCompareOrdering) {
  const auto v = run_lanes([](KernelBuilder& kb, VReg t) {
    (void)t;
    const VReg lt = kb.setp(Cmp::kLt, DType::kF32, imm_f32(-1.0F), imm_f32(2.0F));
    const VReg ge = kb.setp(Cmp::kGe, DType::kF32, imm_f32(2.0F), imm_f32(2.0F));
    const VReg ne = kb.setp(Cmp::kNe, DType::kF32, imm_f32(1.0F), imm_f32(1.0F));
    return kb.iadd(kb.iadd(kb.shl(lt, imm_i64(2)), kb.shl(ge, imm_i64(1))), ne);
  });
  for (const auto flags : v) {
    EXPECT_EQ(flags, 0b110);
  }
}

TEST(IsaSemantics, WarpIdAndLaneIdDecomposeTid) {
  const auto v = run_lanes(
      [](KernelBuilder& kb, VReg t) {
        (void)t;
        return kb.iadd(kb.imul(kb.warpid(), imm_i64(32)), kb.laneid());
      },
      96);
  for (int i = 0; i < 96; ++i) {
    EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  }
}

TEST(IsaSemantics, SelpPicksPerLane) {
  const auto v = run_lanes([](KernelBuilder& kb, VReg t) {
    const VReg odd = kb.iand(t, imm_i64(1));
    return kb.selp(odd, kb.imul(t, imm_i64(-1)), t);
  });
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(v[static_cast<std::size_t>(i)], (i % 2 == 1) ? -i : i);
  }
}

TEST(IsaSemantics, ScalarMinMaxArithmetic) {
  const auto v = run_lanes([](KernelBuilder& kb, VReg t) {
    const SReg a = kb.smov(imm_i64(7));
    const SReg b = kb.smul(a, imm_i64(-3));  // -21
    const SReg lo = kb.smin(a, b);
    const SReg hi = kb.smax(a, b);
    return kb.iadd(kb.iadd(kb.mov(lo), kb.imul(kb.mov(hi), imm_i64(1000))), kb.imul(t, imm_i64(0)));
  });
  for (const auto value : v) {
    EXPECT_EQ(value, 7000 - 21);
  }
}

TEST(IsaSemantics, NegativeIntegerSurvivesGmemRoundTrip) {
  // B4 loads sign-extend: store -123456, read it back through the ISA.
  KernelBuilder kb("roundtrip", 32);
  const SReg out = kb.param();
  const VReg t = kb.tid();
  const VReg addr = kb.iadd(out, kb.imul(t, imm_i64(4)));
  kb.stg(addr, imm_i64(-123456));
  const VReg back = kb.ldg(addr);
  const VReg doubled = kb.imul(back, imm_i64(2));
  kb.stg(addr, doubled);
  const Kernel k = kb.build();
  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  const std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  run_block(k, kDev, gmem, args);
  EXPECT_EQ(gmem.read_i32(buf, 1)[0], -246912);
}

TEST(IsaSemantics, DisassemblyShowsPredicates) {
  KernelBuilder kb("preddump", 32);
  const VReg t = kb.tid();
  const VReg p = kb.setp(Cmp::kLt, DType::kI64, t, imm_i64(4));
  kb.begin_pred(p, /*negate=*/true);
  kb.stg(kb.imul(t, imm_i64(4)), t);
  kb.end_pred();
  const Kernel k = kb.build();
  const std::string text = wsim::simt::disassemble(k);
  EXPECT_NE(text.find("@!p"), std::string::npos);
  EXPECT_NE(text.find("setp"), std::string::npos);
}

TEST(IsaSemantics, NopIsHarmless) {
  KernelBuilder kb("nop", 32);
  const SReg out = kb.param();
  const VReg t = kb.tid();
  kb.emit(Op::kNop, wsim::simt::Operand::none());
  kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))), t);
  const Kernel k = kb.build();
  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  const std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  EXPECT_NO_THROW(run_block(k, kDev, gmem, args));
  EXPECT_EQ(gmem.read_i32(buf, 32)[31], 31);
}

}  // namespace
