// Focused tests of the interpreter's timing features: dual issue,
// warm-segment global-memory caching, and the branch/issue accounting.

#include <gtest/gtest.h>

#include <vector>

#include "wsim/simt/builder.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/interpreter.hpp"
#include "wsim/simt/memory.hpp"

namespace {

using wsim::simt::DeviceSpec;
using wsim::simt::GlobalMemory;
using wsim::simt::imm_i64;
using wsim::simt::Kernel;
using wsim::simt::KernelBuilder;
using wsim::simt::SReg;
using wsim::simt::VReg;

const DeviceSpec kDev = wsim::simt::make_k1200();

long long run_cycles(const Kernel& k, const DeviceSpec& dev,
                     std::size_t gmem_bytes = 256) {
  GlobalMemory gmem;
  gmem.alloc(gmem_bytes);
  return run_block(k, dev, gmem, {}).cycles;
}

TEST(DualIssue, TwoIndependentStreamsShareCycles) {
  // N independent adds: with dual issue the issue floor is N/2 cycles.
  auto build = [](int n) {
    KernelBuilder kb("indep", 32);
    const VReg t = kb.tid();
    std::vector<VReg> vs;
    for (int i = 0; i < n; ++i) {
      vs.push_back(kb.iadd(t, imm_i64(i)));
    }
    // Single consumer at the end keeps everything live without chaining.
    VReg acc = vs[0];
    for (std::size_t i = 1; i < vs.size(); ++i) {
      acc = kb.imax(acc, vs[i]);
    }
    kb.stg(kb.imul(t, imm_i64(4)), acc);
    return kb.build();
  };
  DeviceSpec single = kDev;
  single.lat.issues_per_cycle = 1;
  const Kernel k = build(64);
  const long long dual_cycles = run_cycles(k, kDev);
  const long long single_cycles = run_cycles(k, single);
  EXPECT_LT(dual_cycles, single_cycles);
}

TEST(DualIssue, DependentChainGainsNothing) {
  // A pure dependence chain cannot use the second issue slot.
  KernelBuilder kb("chain", 32);
  const VReg t = kb.tid();
  const VReg acc = kb.mov(t);
  for (int i = 0; i < 50; ++i) {
    kb.assign(acc, kb.iadd(acc, imm_i64(1)));
  }
  kb.stg(kb.imul(t, imm_i64(4)), acc);
  const Kernel k = kb.build();
  DeviceSpec single = kDev;
  single.lat.issues_per_cycle = 1;
  EXPECT_EQ(run_cycles(k, kDev), run_cycles(k, single));
}

TEST(WarmCache, RepeatedSegmentLoadsAreCheap) {
  // First touch pays DRAM latency; repeats within the block pay the
  // cached latency.
  auto loads_of_same_word = [](int n) {
    KernelBuilder kb("warm", 32);
    const VReg t = kb.tid();
    const VReg acc = kb.mov(imm_i64(0));
    kb.loop(imm_i64(n));
    kb.assign(acc, kb.iadd(acc, kb.ldg(kb.imul(acc, imm_i64(0)))));
    kb.endloop();
    kb.stg(kb.iadd(imm_i64(128), kb.imul(t, imm_i64(4))), acc);
    return kb.build();
  };
  const long long c4 = run_cycles(loads_of_same_word(4), kDev, 4096);
  const long long c8 = run_cycles(loads_of_same_word(8), kDev, 4096);
  // Marginal cost per extra load must be near the cached latency, far
  // below the cold latency.
  const double marginal = static_cast<double>(c8 - c4) / 4.0;
  EXPECT_GT(marginal, kDev.lat.gmem_load_cached * 0.8);
  EXPECT_LT(marginal, kDev.lat.gmem_load * 0.6);
}

TEST(WarmCache, DistinctSegmentsStayCold) {
  // Loads striding 128 B touch a fresh segment every time: every load is
  // cold.
  auto strided = [](int n) {
    KernelBuilder kb("cold", 32);
    const VReg t = kb.tid();
    const VReg acc = kb.mov(imm_i64(0));
    const SReg off = kb.smov(imm_i64(0));
    kb.loop(imm_i64(n));
    kb.assign(acc, kb.iadd(acc, kb.ldg(kb.iadd(off, kb.imul(t, imm_i64(0))))));
    kb.sassign(off, kb.sadd(off, imm_i64(128)));
    kb.endloop();
    kb.stg(kb.imul(t, imm_i64(4)), acc);
    return kb.build();
  };
  const long long c4 = run_cycles(strided(4), kDev, 64 * 128);
  const long long c8 = run_cycles(strided(8), kDev, 64 * 128);
  const double marginal = static_cast<double>(c8 - c4) / 4.0;
  EXPECT_GT(marginal, kDev.lat.gmem_load * 0.8);
}

TEST(WarmCache, CacheIsPerBlock) {
  // Two runs of the same block both pay the cold first touch: block
  // results are identical (no leakage across blocks).
  KernelBuilder kb("perblock", 32);
  const VReg t = kb.tid();
  kb.stg(kb.imul(t, imm_i64(4)), kb.ldg(kb.imul(t, imm_i64(4))));
  const Kernel k = kb.build();
  GlobalMemory gmem;
  gmem.alloc(256);
  const auto a = run_block(k, kDev, gmem, {});
  const auto b = run_block(k, kDev, gmem, {});
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(WarmCache, GmemTransactionsCountSegments) {
  // 32 lanes x 4 B consecutive = 128 B = exactly one segment.
  KernelBuilder kb("coalesced", 32);
  const VReg t = kb.tid();
  kb.stg(kb.imul(t, imm_i64(4)), kb.ldg(kb.imul(t, imm_i64(4))));
  const Kernel k = kb.build();
  GlobalMemory gmem;
  gmem.alloc(256);
  const auto res = run_block(k, kDev, gmem, {});
  EXPECT_EQ(res.gmem_transactions, 2U);  // 1 load + 1 store segment

  // Stride-128 scatters every lane into its own segment.
  KernelBuilder kb2("scattered", 32);
  const VReg t2 = kb2.tid();
  kb2.stg(kb2.imul(t2, imm_i64(128)), t2);
  const Kernel k2 = kb2.build();
  GlobalMemory gmem2;
  gmem2.alloc(32 * 128);
  EXPECT_EQ(run_block(k2, kDev, gmem2, {}).gmem_transactions, 32U);
}

TEST(Issue, EmptyLoopCostsOnlyControl) {
  auto looped = [](int n) {
    KernelBuilder kb("empty", 32);
    kb.loop(imm_i64(n));
    kb.endloop();
    const VReg t = kb.tid();
    kb.stg(kb.imul(t, imm_i64(4)), t);
    return kb.build();
  };
  const long long c10 = run_cycles(looped(10), kDev);
  const long long c110 = run_cycles(looped(110), kDev);
  // Each empty iteration costs the branch bubble only (~2 cycles).
  EXPECT_NEAR(static_cast<double>(c110 - c10) / 100.0, 2.0, 1.0);
}

}  // namespace
