// Tests for the double-precision PairHMM fallback (GATK's rescue path
// when the f32 forward underflows).

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "wsim/align/pairhmm.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/util/check.hpp"
#include "wsim/util/rng.hpp"

namespace {

using wsim::align::PairHmmTask;

const wsim::simt::DeviceSpec kDev = wsim::simt::make_k1200();

PairHmmTask make_task(std::string read, std::string hap, std::uint8_t qual = 30,
                      std::uint8_t indel_qual = 45, std::uint8_t gcp = 10) {
  PairHmmTask task;
  task.read = std::move(read);
  task.hap = std::move(hap);
  task.base_quals.assign(task.read.size(), qual);
  task.ins_quals.assign(task.read.size(), indel_qual);
  task.del_quals.assign(task.read.size(), indel_qual);
  task.gcp = gcp;
  return task;
}

PairHmmTask underflow_task() {
  // 50 high-confidence mismatches with indels heavily penalized: the
  // likelihood (~1e-230) is far below f32 range (even with the 2^120
  // scaling) but comfortably inside double range — exactly the regime
  // GATK's double rescue exists for.
  return make_task(std::string(50, 'A'), std::string(50, 'T'), 40, 60, 60);
}

std::string random_dna(wsim::util::Rng& rng, int len) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = "ACGT"[rng.uniform_int(0, 3)];
  }
  return s;
}

TEST(PairHmmDouble, AgreesWithFloatOnNormalTasks) {
  wsim::util::Rng rng(3);
  for (int t = 0; t < 15; ++t) {
    const std::string hap = random_dna(rng, static_cast<int>(rng.uniform_int(10, 120)));
    std::string read = hap.substr(0, std::min<std::size_t>(hap.size(), 60));
    if (read.size() > 8) {
      read[4] = 'A';
    }
    const auto task = make_task(std::move(read), hap);
    const double f32 = wsim::align::pairhmm_log10(task);
    const double f64 = wsim::align::pairhmm_log10_double(task);
    EXPECT_NEAR(f32, f64, 5e-3 + std::abs(f64) * 1e-3);
  }
}

TEST(PairHmmDouble, SafeVariantEqualsFloatWhenNoUnderflow) {
  wsim::util::Rng rng(5);
  const std::string hap = random_dna(rng, 80);
  const auto task = make_task(hap.substr(5, 50), hap);
  EXPECT_DOUBLE_EQ(wsim::align::pairhmm_log10_safe(task),
                   wsim::align::pairhmm_log10(task));
}

TEST(PairHmmDouble, SafeVariantRescuesUnderflow) {
  const auto task = underflow_task();
  EXPECT_THROW(wsim::align::pairhmm_log10(task), wsim::util::CheckError);
  const double rescued = wsim::align::pairhmm_log10_safe(task);
  EXPECT_TRUE(std::isfinite(rescued));
  EXPECT_LT(rescued, -100.0);  // deeply unlikely, but finite
  EXPECT_DOUBLE_EQ(rescued, wsim::align::pairhmm_log10_double(task));
}

TEST(PairHmmDouble, RunnerFallbackRescuesDeviceUnderflow) {
  const wsim::kernels::PhRunner runner(wsim::kernels::CommMode::kShuffle);
  wsim::kernels::PhRunOptions opt;
  opt.collect_outputs = true;
  opt.double_fallback = true;
  const auto result = runner.run_batch(kDev, {underflow_task()}, opt);
  EXPECT_TRUE(std::isfinite(result.log10[0]));
  EXPECT_DOUBLE_EQ(result.log10[0],
                   wsim::align::pairhmm_log10_double(underflow_task()));
}

TEST(PairHmmDouble, RunnerWithoutFallbackStillThrows) {
  const wsim::kernels::PhRunner runner(wsim::kernels::CommMode::kShuffle);
  wsim::kernels::PhRunOptions opt;
  opt.collect_outputs = true;
  EXPECT_THROW(runner.run_batch(kDev, {underflow_task()}, opt),
               wsim::util::CheckError);
}

TEST(PairHmmDouble, MixedBatchOnlyRescuesTheUnderflowedTask) {
  wsim::util::Rng rng(7);
  const std::string hap = random_dna(rng, 60);
  const auto good = make_task(hap.substr(0, 40), hap);
  const wsim::kernels::PhRunner runner(wsim::kernels::CommMode::kShuffle);
  wsim::kernels::PhRunOptions opt;
  opt.collect_outputs = true;
  opt.double_fallback = true;
  const auto result = runner.run_batch(kDev, {good, underflow_task()}, opt);
  EXPECT_NEAR(result.log10[0], wsim::align::pairhmm_log10(good),
              5e-3 + std::abs(result.log10[0]) * 1e-3);
  EXPECT_DOUBLE_EQ(result.log10[1],
                   wsim::align::pairhmm_log10_double(underflow_task()));
}

}  // namespace
