// Divergence-ratio fuzz: the lane-vector interpreter must match the
// fast path bit for bit at every predicate density, not just the fully
// converged warps its SIMD handlers like best. Random active masks from
// 0% to 100% — drawn with per-warp seeds so no two warps in a block
// diverge the same way — drive a kernel mixing masked simple ops,
// predicated shared-memory traffic, and shuffles; and every SW/NW/PairHMM
// runner variant is swept vector-vs-fast on a randomized dataset.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "wsim/guard/guard.hpp"
#include "wsim/kernels/nw_kernels.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/builder.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/interpreter.hpp"
#include "wsim/simt/memory.hpp"
#include "wsim/simt/trace.hpp"
#include "wsim/util/check.hpp"
#include "wsim/util/rng.hpp"
#include "wsim/workload/batching.hpp"
#include "wsim/workload/generator.hpp"

namespace {

namespace guard = wsim::guard;
using wsim::kernels::CommMode;
using wsim::simt::BlockResult;
using wsim::simt::BlockRunOptions;
using wsim::simt::Cmp;
using wsim::simt::DeviceSpec;
using wsim::simt::DType;
using wsim::simt::GlobalMemory;
using wsim::simt::imm_f32;
using wsim::simt::imm_i64;
using wsim::simt::InterpPath;
using wsim::simt::Kernel;
using wsim::simt::KernelBuilder;
using wsim::simt::SReg;
using wsim::simt::VReg;
using wsim::util::CheckError;

constexpr int kThreads = 128;  // four warps per block

/// Four-warp kernel whose active mask comes from a per-lane word of
/// global memory, so the test controls the divergence pattern exactly.
/// The loop body is accel-eligible (no barriers, no global memory), so at
/// high trip counts the vector engine's steady-state fast-forward and its
/// precompiled plan both engage on divergent warps.
Kernel build_fuzz_kernel() {
  KernelBuilder kb("divergence_fuzz", kThreads);
  const SReg out = kb.param();
  const SReg preds = kb.param();  // kThreads B4 words, nonzero = active
  const SReg trips = kb.param();
  kb.alloc_smem(kThreads * 4);
  const VReg t = kb.tid();
  const VReg pword = kb.ldg(kb.iadd(preds, kb.imul(t, imm_i64(4))));
  const VReg p = kb.setp(Cmp::kNe, DType::kI64, pword, imm_i64(0));
  VReg acc = kb.mov(t);
  VReg f = kb.mov(imm_f32(1.5F));
  kb.sts(kb.imul(t, imm_i64(4)), t);
  kb.bar();
  kb.loop(trips);
  kb.begin_pred(p);
  kb.assign(acc, kb.iadd(acc, imm_i64(5)));
  kb.assign(f, kb.ffma(f, imm_f32(1.0002F), imm_f32(0.0001F)));
  kb.sts(kb.imul(t, imm_i64(4)), acc);
  kb.end_pred();
  kb.begin_pred(p, /*negate=*/true);
  kb.lds_to(acc, kb.imul(kb.ixor(t, imm_i64(3)), imm_i64(4)));
  kb.end_pred();
  kb.assign(f, kb.fmax(f, kb.shfl_down(f, imm_i64(2))));
  kb.endloop();
  kb.bar();
  const VReg nb = kb.lds(kb.imul(kb.ixor(t, imm_i64(1)), imm_i64(4)));
  kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))), kb.iadd(acc, nb));
  kb.stg(kb.iadd(out, kb.iadd(imm_i64(kThreads * 4), kb.imul(t, imm_i64(4)))),
         f);
  return kb.build();
}

/// Active-mask words for one block: warp w draws from its own generator
/// seeded (seed, w), so each warp sees an independent pattern at the
/// requested density.
std::vector<std::int32_t> draw_predicates(std::uint64_t seed, double density) {
  std::vector<std::int32_t> words(kThreads, 0);
  for (int warp = 0; warp < kThreads / 32; ++warp) {
    wsim::util::Rng rng(seed * 1315423911ULL +
                        static_cast<std::uint64_t>(warp) * 2654435761ULL + 1);
    for (int lane = 0; lane < 32; ++lane) {
      words[static_cast<std::size_t>(warp * 32 + lane)] =
          rng.uniform01() < density ? 1 : 0;
    }
  }
  return words;
}

struct FuzzOutcome {
  bool threw = false;
  std::string error;
  BlockResult result;
  std::vector<std::uint8_t> memory;
};

FuzzOutcome run_fuzz(const Kernel& kernel, const DeviceSpec& device,
                     InterpPath path, const std::vector<std::int32_t>& preds,
                     std::int64_t trips) {
  GlobalMemory gmem;
  const std::int64_t out = gmem.alloc(kThreads * 4 * 2);
  const std::int64_t pred_buf = gmem.alloc(kThreads * 4);
  gmem.write_i32(pred_buf, preds);
  const std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(out),
                                           static_cast<std::uint64_t>(pred_buf),
                                           static_cast<std::uint64_t>(trips)};
  FuzzOutcome outcome;
  BlockRunOptions options;
  options.interp = path;
  try {
    outcome.result = run_block(kernel, device, gmem, args, options);
  } catch (const CheckError& e) {
    outcome.threw = true;
    outcome.error = e.what();
  }
  outcome.memory = gmem.read_u8(0, gmem.size());
  return outcome;
}

void expect_equal(const FuzzOutcome& a, const FuzzOutcome& b,
                  const std::string& label) {
  ASSERT_EQ(a.threw, b.threw) << label;
  EXPECT_EQ(a.result.cycles, b.result.cycles) << label;
  EXPECT_EQ(a.result.instructions, b.result.instructions) << label;
  EXPECT_EQ(a.result.smem_transactions, b.result.smem_transactions) << label;
  EXPECT_EQ(a.result.gmem_transactions, b.result.gmem_transactions) << label;
  EXPECT_EQ(a.result.barriers, b.result.barriers) << label;
  for (std::size_t op = 0; op < a.result.op_counts.size(); ++op) {
    EXPECT_EQ(a.result.op_counts[op], b.result.op_counts[op])
        << label << " op " << op;
  }
  EXPECT_EQ(a.memory, b.memory) << label;
}

TEST(DivergenceFuzz, VectorMatchesFastAtEveryDensity) {
  const Kernel kernel = build_fuzz_kernel();
  const auto device = wsim::simt::make_k1200();
  for (const double density : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    for (const std::uint64_t seed : {11ULL, 29ULL, 73ULL}) {
      const auto preds = draw_predicates(seed, density);
      for (const std::int64_t trips : {1LL, 3LL, 250LL}) {
        const std::string label = "density=" + std::to_string(density) +
                                  " seed=" + std::to_string(seed) +
                                  " trips=" + std::to_string(trips);
        const FuzzOutcome fast =
            run_fuzz(kernel, device, InterpPath::kFast, preds, trips);
        const FuzzOutcome vec =
            run_fuzz(kernel, device, InterpPath::kVector, preds, trips);
        ASSERT_FALSE(fast.threw) << label << ": " << fast.error;
        expect_equal(fast, vec, label);
      }
    }
  }
}

TEST(DivergenceFuzz, LegacyAnchorsOneSample) {
  // One density anchored to the legacy interpreter so the fast/vector
  // agreement above cannot hide a shared drift.
  const Kernel kernel = build_fuzz_kernel();
  const auto device = wsim::simt::make_titan_x();
  const auto preds = draw_predicates(5, 0.4);
  const FuzzOutcome legacy =
      run_fuzz(kernel, device, InterpPath::kLegacy, preds, 120);
  const FuzzOutcome fast =
      run_fuzz(kernel, device, InterpPath::kFast, preds, 120);
  const FuzzOutcome vec =
      run_fuzz(kernel, device, InterpPath::kVector, preds, 120);
  ASSERT_FALSE(legacy.threw) << legacy.error;
  expect_equal(legacy, fast, "legacy vs fast");
  expect_equal(legacy, vec, "legacy vs vector");
}

wsim::workload::Dataset fuzz_dataset(std::uint64_t seed) {
  wsim::workload::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.regions = 2;
  cfg.ph_tasks_per_region_mean = 4.0;
  cfg.sw_query_len_min = 30;
  cfg.sw_query_len_max = 80;
  cfg.sw_target_len_min = 50;
  cfg.sw_target_len_max = 110;
  return wsim::workload::generate_dataset(cfg);
}

TEST(DivergenceFuzz, SwRunnerVariantsVectorMatchesFast) {
  for (const std::uint64_t seed : {3ULL, 17ULL}) {
    const auto dataset = fuzz_dataset(seed);
    const auto batches = wsim::workload::sw_rebatch(dataset, 8);
    ASSERT_FALSE(batches.empty());
    for (const CommMode mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
      const wsim::kernels::SwRunner runner(mode);
      const auto device = wsim::simt::make_k1200();
      wsim::kernels::SwRunOptions fast_opt;
      fast_opt.collect_outputs = true;
      fast_opt.interp = InterpPath::kFast;
      wsim::kernels::SwRunOptions vec_opt = fast_opt;
      vec_opt.interp = InterpPath::kVector;
      for (const auto& batch : batches) {
        const auto fast = runner.run_batch(device, batch, fast_opt);
        const auto vec = runner.run_batch(device, batch, vec_opt);
        EXPECT_EQ(guard::fingerprint_sw(fast.outputs),
                  guard::fingerprint_sw(vec.outputs))
            << "seed " << seed;
        EXPECT_EQ(fast.run.launch.instructions, vec.run.launch.instructions)
            << "seed " << seed;
      }
    }
  }
}

TEST(DivergenceFuzz, NwRunnerVariantsVectorMatchesFast) {
  for (const std::uint64_t seed : {3ULL, 17ULL}) {
    const auto dataset = fuzz_dataset(seed);
    const auto batches = wsim::workload::sw_rebatch(dataset, 8);
    ASSERT_FALSE(batches.empty());
    for (const CommMode mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
      const wsim::kernels::NwRunner runner(mode);
      const auto device = wsim::simt::make_titan_x();
      wsim::kernels::NwRunOptions fast_opt;
      fast_opt.collect_outputs = true;
      fast_opt.interp = InterpPath::kFast;
      wsim::kernels::NwRunOptions vec_opt = fast_opt;
      vec_opt.interp = InterpPath::kVector;
      for (const auto& batch : batches) {
        const auto fast = runner.run_batch(device, batch, fast_opt);
        const auto vec = runner.run_batch(device, batch, vec_opt);
        EXPECT_EQ(guard::fingerprint_nw(fast.scores),
                  guard::fingerprint_nw(vec.scores))
            << "seed " << seed;
        EXPECT_EQ(fast.run.launch.instructions, vec.run.launch.instructions)
            << "seed " << seed;
      }
    }
  }
}

TEST(DivergenceFuzz, PhRunnerVariantsVectorMatchesFast) {
  for (const std::uint64_t seed : {3ULL, 17ULL}) {
    const auto dataset = fuzz_dataset(seed);
    const auto batches = wsim::workload::ph_rebatch(dataset, 8);
    ASSERT_FALSE(batches.empty());
    for (const CommMode mode : {CommMode::kSharedMemory, CommMode::kShuffle}) {
      const wsim::kernels::PhRunner runner(mode);
      const auto device = wsim::simt::make_k40();
      wsim::kernels::PhRunOptions fast_opt;
      fast_opt.collect_outputs = true;
      fast_opt.double_fallback = true;
      fast_opt.interp = InterpPath::kFast;
      wsim::kernels::PhRunOptions vec_opt = fast_opt;
      vec_opt.interp = InterpPath::kVector;
      for (const auto& batch : batches) {
        const auto fast = runner.run_batch(device, batch, fast_opt);
        const auto vec = runner.run_batch(device, batch, vec_opt);
        EXPECT_EQ(guard::fingerprint_ph(fast.log10),
                  guard::fingerprint_ph(vec.log10))
            << "seed " << seed;
        EXPECT_EQ(fast.run.launch.instructions, vec.run.launch.instructions)
            << "seed " << seed;
      }
    }
  }
}

}  // namespace
