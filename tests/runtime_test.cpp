#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "wsim/simt/builder.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/runtime.hpp"
#include "wsim/util/check.hpp"

namespace {

using wsim::simt::BlockCostCache;
using wsim::simt::BlockLaunch;
using wsim::simt::DeviceSpec;
using wsim::simt::ExecMode;
using wsim::simt::GlobalMemory;
using wsim::simt::imm_i64;
using wsim::simt::Kernel;
using wsim::simt::KernelBuilder;
using wsim::simt::LaunchOptions;
using wsim::simt::LaunchResult;
using wsim::simt::SReg;
using wsim::simt::VReg;

const DeviceSpec kDev = wsim::simt::make_k1200();

/// Kernel writing (block_id * 100 + tid) to its output slot, looping
/// `trips` times over a dummy accumulator so blocks have real cost.
Kernel make_writer_kernel() {
  KernelBuilder kb("writer", 32);
  const SReg out = kb.param();
  const SReg block_id = kb.param();
  const SReg trips = kb.param();
  const VReg t = kb.tid();
  const VReg acc = kb.mov(imm_i64(0));
  kb.loop(trips);
  kb.assign(acc, kb.iadd(acc, imm_i64(1)));
  kb.endloop();
  const VReg v = kb.iadd(kb.imul(kb.mov(block_id), imm_i64(100)), t);
  kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))), kb.iadd(v, kb.imul(acc, imm_i64(0))));
  return kb.build();
}

std::vector<BlockLaunch> make_blocks(GlobalMemory& gmem, int count, int trips,
                                     std::vector<std::int64_t>* outs = nullptr) {
  std::vector<BlockLaunch> blocks(static_cast<std::size_t>(count));
  for (int b = 0; b < count; ++b) {
    const auto out = gmem.alloc(32 * 4);
    if (outs != nullptr) {
      outs->push_back(out);
    }
    blocks[static_cast<std::size_t>(b)].args = {
        static_cast<std::uint64_t>(out), static_cast<std::uint64_t>(b),
        static_cast<std::uint64_t>(trips)};
    blocks[static_cast<std::size_t>(b)].shape_key = static_cast<std::uint64_t>(trips);
  }
  return blocks;
}

TEST(Runtime, FullModeExecutesEveryBlock) {
  const Kernel kernel = make_writer_kernel();
  GlobalMemory gmem;
  std::vector<std::int64_t> outs;
  const auto blocks = make_blocks(gmem, 5, 10, &outs);
  const LaunchResult result = wsim::simt::launch(kernel, kDev, gmem, blocks, {});
  for (int b = 0; b < 5; ++b) {
    const auto data = gmem.read_i32(outs[static_cast<std::size_t>(b)], 32);
    EXPECT_EQ(data[0], b * 100);
    EXPECT_EQ(data[31], b * 100 + 31);
  }
  EXPECT_GT(result.timing.cycles, 0);
}

TEST(Runtime, CachedModeSkipsSameShapeBlocks) {
  const Kernel kernel = make_writer_kernel();
  GlobalMemory gmem;
  std::vector<std::int64_t> outs;
  const auto blocks = make_blocks(gmem, 6, 10, &outs);
  LaunchOptions opt;
  opt.mode = ExecMode::kCachedByShape;
  const LaunchResult result = wsim::simt::launch(kernel, kDev, gmem, blocks, opt);
  // Only the representative (block 0) executed functionally...
  EXPECT_EQ(gmem.read_i32(outs[0], 1)[0], 0);
  EXPECT_EQ(gmem.read_i32(outs[5], 1)[0], 0);  // never written
  // ...but the aggregate instruction count covers all six blocks.
  const LaunchResult full = wsim::simt::launch(kernel, kDev, gmem, blocks, {});
  EXPECT_EQ(result.instructions, full.instructions);
  EXPECT_EQ(result.timing.cycles, full.timing.cycles);
}

TEST(Runtime, CachedModeDistinguishesShapes) {
  const Kernel kernel = make_writer_kernel();
  GlobalMemory gmem;
  auto blocks_a = make_blocks(gmem, 2, 10);
  auto blocks_b = make_blocks(gmem, 2, 500);
  blocks_a.insert(blocks_a.end(), blocks_b.begin(), blocks_b.end());
  LaunchOptions opt;
  opt.mode = ExecMode::kCachedByShape;
  const LaunchResult result = wsim::simt::launch(kernel, kDev, gmem, blocks_a, opt);
  const LaunchResult full = wsim::simt::launch(kernel, kDev, gmem, blocks_a, {});
  EXPECT_EQ(result.timing.cycles, full.timing.cycles);
}

TEST(Runtime, ExternalCachePersistsAcrossLaunches) {
  const Kernel kernel = make_writer_kernel();
  GlobalMemory gmem;
  const auto blocks = make_blocks(gmem, 4, 50);
  BlockCostCache cache;
  LaunchOptions opt;
  opt.mode = ExecMode::kCachedByShape;
  opt.cost_cache = &cache;
  wsim::simt::launch(kernel, kDev, gmem, blocks, opt);
  EXPECT_EQ(cache.size(), 1U);
  const auto cached_cost = cache.begin()->second;
  // Relaunch: cache hit, same timing.
  const LaunchResult again = wsim::simt::launch(kernel, kDev, gmem, blocks, opt);
  EXPECT_EQ(cache.size(), 1U);
  EXPECT_EQ(cache.begin()->second.latency_cycles, cached_cost.latency_cycles);
  EXPECT_GT(again.timing.cycles, 0);
}

TEST(Runtime, TransferTimeFollowsPcieModel) {
  const Kernel kernel = make_writer_kernel();
  GlobalMemory gmem;
  const auto blocks = make_blocks(gmem, 1, 10);
  LaunchOptions opt;
  opt.transfer.h2d_bytes = 11'000'000;  // 1 ms at 11 GB/s
  opt.transfer.d2h_bytes = 0;
  const LaunchResult result = wsim::simt::launch(kernel, kDev, gmem, blocks, opt);
  EXPECT_NEAR(result.transfer_seconds, 1e-3 + kDev.pcie_latency_us * 1e-6, 1e-6);
  EXPECT_NEAR(result.overhead_seconds, kDev.kernel_launch_overhead_us * 1e-6, 1e-12);
  EXPECT_GT(result.total_seconds(), result.kernel_seconds);
}

TEST(Runtime, NoTransferNoLatency) {
  const Kernel kernel = make_writer_kernel();
  GlobalMemory gmem;
  const auto blocks = make_blocks(gmem, 1, 10);
  const LaunchResult result = wsim::simt::launch(kernel, kDev, gmem, blocks, {});
  EXPECT_DOUBLE_EQ(result.transfer_seconds, 0.0);
}

TEST(Runtime, BothDirectionsPayLatency) {
  const Kernel kernel = make_writer_kernel();
  GlobalMemory gmem;
  const auto blocks = make_blocks(gmem, 1, 10);
  LaunchOptions opt;
  opt.transfer.h2d_bytes = 1;
  opt.transfer.d2h_bytes = 1;
  const LaunchResult result = wsim::simt::launch(kernel, kDev, gmem, blocks, opt);
  EXPECT_GT(result.transfer_seconds, 2 * kDev.pcie_latency_us * 1e-6 * 0.99);
}

TEST(Runtime, EmptyGridRejected) {
  const Kernel kernel = make_writer_kernel();
  GlobalMemory gmem;
  EXPECT_THROW(wsim::simt::launch(kernel, kDev, gmem, {}, {}), wsim::util::CheckError);
}

TEST(Runtime, MoreBlocksTakeLonger) {
  const Kernel kernel = make_writer_kernel();
  GlobalMemory gmem;
  const auto few = make_blocks(gmem, 4, 2000);
  const auto many = make_blocks(gmem, 512, 2000);
  LaunchOptions opt;
  opt.mode = ExecMode::kCachedByShape;
  const auto t_few = wsim::simt::launch(kernel, kDev, gmem, few, opt).timing.cycles;
  const auto t_many = wsim::simt::launch(kernel, kDev, gmem, many, opt).timing.cycles;
  EXPECT_GT(t_many, t_few);
}

TEST(Runtime, TitanXBeatsK1200OnBigGrids) {
  const Kernel kernel = make_writer_kernel();
  GlobalMemory gmem;
  const auto blocks = make_blocks(gmem, 512, 2000);
  LaunchOptions opt;
  opt.mode = ExecMode::kCachedByShape;
  const auto titan = wsim::simt::make_titan_x();
  const double k1200_s =
      wsim::simt::launch(kernel, kDev, gmem, blocks, opt).kernel_seconds;
  const double titan_s =
      wsim::simt::launch(kernel, titan, gmem, blocks, opt).kernel_seconds;
  EXPECT_LT(titan_s, k1200_s);
}

}  // namespace
