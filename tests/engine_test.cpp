#include "wsim/simt/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/builder.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/util/check.hpp"
#include "wsim/util/rng.hpp"

namespace {

using wsim::simt::BlockLaunch;
using wsim::simt::DeviceSpec;
using wsim::simt::EngineOptions;
using wsim::simt::ExecMode;
using wsim::simt::ExecutionEngine;
using wsim::simt::GlobalMemory;
using wsim::simt::GmemWriteSet;
using wsim::simt::imm_i64;
using wsim::simt::Kernel;
using wsim::simt::KernelBuilder;
using wsim::simt::LaunchOptions;
using wsim::simt::LaunchResult;
using wsim::simt::SReg;
using wsim::simt::VReg;

const DeviceSpec kDev = wsim::simt::make_k1200();

std::string random_dna(wsim::util::Rng& rng, int len) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = "ACGT"[rng.uniform_int(0, 3)];
  }
  return s;
}

/// Writes (block_id * 100 + tid) to out[tid] after `trips` loop iterations.
Kernel make_writer_kernel() {
  KernelBuilder kb("writer", 32);
  const SReg out = kb.param();
  const SReg block_id = kb.param();
  const SReg trips = kb.param();
  const VReg t = kb.tid();
  const VReg acc = kb.mov(imm_i64(0));
  kb.loop(trips);
  kb.assign(acc, kb.iadd(acc, imm_i64(1)));
  kb.endloop();
  const VReg v = kb.iadd(kb.imul(kb.mov(block_id), imm_i64(100)), t);
  kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))), kb.iadd(v, kb.imul(acc, imm_i64(0))));
  return kb.build();
}

std::vector<BlockLaunch> make_blocks(GlobalMemory& gmem, int count, int trips) {
  std::vector<BlockLaunch> blocks(static_cast<std::size_t>(count));
  for (int b = 0; b < count; ++b) {
    const auto out = gmem.alloc(32 * 4);
    blocks[static_cast<std::size_t>(b)].args = {
        static_cast<std::uint64_t>(out), static_cast<std::uint64_t>(b),
        static_cast<std::uint64_t>(trips)};
    blocks[static_cast<std::size_t>(b)].shape_key =
        static_cast<std::uint64_t>(trips + b % 3);
  }
  return blocks;
}

void expect_identical(const LaunchResult& a, const LaunchResult& b) {
  EXPECT_EQ(a.timing.cycles, b.timing.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.smem_transactions, b.smem_transactions);
  EXPECT_EQ(a.blocks_executed, b.blocks_executed);
  EXPECT_EQ(a.representative.cycles, b.representative.cycles);
  EXPECT_EQ(a.representative.instructions, b.representative.instructions);
  EXPECT_EQ(a.kernel_seconds, b.kernel_seconds);  // bit-identical doubles
  EXPECT_EQ(a.h2d_seconds, b.h2d_seconds);
  EXPECT_EQ(a.d2h_seconds, b.d2h_seconds);
  EXPECT_EQ(a.transfer_seconds, b.transfer_seconds);
  EXPECT_EQ(a.overhead_seconds, b.overhead_seconds);
  EXPECT_EQ(a.total_seconds(), b.total_seconds());
}

TEST(ExecutionEngine, ParallelGridMatchesSequentialBitForBit) {
  const Kernel kernel = make_writer_kernel();
  for (const ExecMode mode : {ExecMode::kFull, ExecMode::kCachedByShape}) {
    LaunchOptions opt;
    opt.mode = mode;
    opt.transfer.h2d_bytes = 4096;
    opt.transfer.d2h_bytes = 1024;

    ExecutionEngine sequential(EngineOptions{.threads = 1});
    GlobalMemory gmem_seq;
    const auto blocks_seq = make_blocks(gmem_seq, 17, 200);
    const LaunchResult base = sequential.launch(kernel, kDev, gmem_seq, blocks_seq, opt);

    for (const int threads : {2, 8}) {
      ExecutionEngine engine(EngineOptions{.threads = threads});
      GlobalMemory gmem;
      const auto blocks = make_blocks(gmem, 17, 200);
      const LaunchResult result = engine.launch(kernel, kDev, gmem, blocks, opt);
      expect_identical(base, result);
      ASSERT_EQ(gmem.size(), gmem_seq.size());
      EXPECT_EQ(gmem.read_u8(0, gmem.size()), gmem_seq.read_u8(0, gmem_seq.size()))
          << threads << " threads, mode " << static_cast<int>(mode);
    }
  }
}

TEST(ExecutionEngine, SwRunnerDeterministicAcrossThreadCounts) {
  wsim::util::Rng rng(7);
  wsim::workload::SwBatch batch;
  for (int t = 0; t < 8; ++t) {
    batch.push_back({random_dna(rng, 40 + 8 * (t % 3)), random_dna(rng, 64)});
  }
  const wsim::kernels::SwRunner runner(wsim::kernels::CommMode::kShuffle);

  ExecutionEngine sequential(EngineOptions{.threads = 1});
  wsim::kernels::SwRunOptions opt;
  opt.collect_outputs = true;
  opt.engine = &sequential;
  const auto base = runner.run_batch(kDev, batch, opt);

  for (const int threads : {2, 8}) {
    ExecutionEngine engine(EngineOptions{.threads = threads});
    opt.engine = &engine;
    const auto result = runner.run_batch(kDev, batch, opt);
    expect_identical(base.run.launch, result.run.launch);
    ASSERT_EQ(result.outputs.size(), base.outputs.size());
    for (std::size_t t = 0; t < base.outputs.size(); ++t) {
      EXPECT_EQ(result.outputs[t].best_score, base.outputs[t].best_score);
      EXPECT_EQ(result.outputs[t].alignment.cigar, base.outputs[t].alignment.cigar);
    }
  }

  // Cached-by-shape timing runs (no outputs) must agree as well.
  wsim::kernels::SwRunOptions cached;
  cached.mode = ExecMode::kCachedByShape;
  cached.engine = &sequential;
  const auto cached_base = runner.run_batch(kDev, batch, cached);
  for (const int threads : {2, 8}) {
    ExecutionEngine engine(EngineOptions{.threads = threads});
    cached.engine = &engine;
    expect_identical(cached_base.run.launch,
                     runner.run_batch(kDev, batch, cached).run.launch);
  }
}

TEST(ExecutionEngine, PhRunnerDeterministicAcrossThreadCounts) {
  wsim::util::Rng rng(11);
  wsim::workload::PhBatch batch;
  for (int t = 0; t < 6; ++t) {
    wsim::align::PairHmmTask task;
    task.hap = random_dna(rng, 90 + 10 * (t % 2));
    task.read = random_dna(rng, 40 + 16 * (t % 3));
    task.base_quals.assign(task.read.size(), 30);
    task.ins_quals.assign(task.read.size(), 45);
    task.del_quals.assign(task.read.size(), 45);
    batch.push_back(std::move(task));
  }
  const wsim::kernels::PhRunner runner(wsim::kernels::PhDesign::kShuffle);

  ExecutionEngine sequential(EngineOptions{.threads = 1});
  wsim::kernels::PhRunOptions opt;
  opt.collect_outputs = true;
  opt.double_fallback = true;
  opt.engine = &sequential;
  const auto base = runner.run_batch(kDev, batch, opt);

  for (const int threads : {2, 8}) {
    ExecutionEngine engine(EngineOptions{.threads = threads});
    opt.engine = &engine;
    const auto result = runner.run_batch(kDev, batch, opt);
    expect_identical(base.run.launch, result.run.launch);
    EXPECT_EQ(result.log10, base.log10);  // bit-identical likelihoods

    wsim::kernels::PhRunOptions cached;
    cached.mode = ExecMode::kCachedByShape;
    cached.engine = &engine;
    wsim::kernels::PhRunOptions cached_seq = cached;
    cached_seq.engine = &sequential;
    expect_identical(runner.run_batch(kDev, batch, cached_seq).run.launch,
                     runner.run_batch(kDev, batch, cached).run.launch);
  }
}

TEST(ExecutionEngine, RepresentativeIsFirstExecutedBlock) {
  const Kernel kernel = make_writer_kernel();
  ExecutionEngine engine(EngineOptions{.threads = 4});
  GlobalMemory gmem;
  auto blocks = make_blocks(gmem, 6, 50);
  const LaunchResult result = engine.launch(kernel, kDev, gmem, blocks, {});
  // Block 0 writes lane values 0..31; its record is the representative.
  EXPECT_EQ(result.representative.instructions,
            result.instructions / 6);
  EXPECT_EQ(result.blocks_executed, 6U);
}

TEST(ExecutionEngine, WriteOverlapCheckerCatchesRacyGrid) {
  const Kernel kernel = make_writer_kernel();
  ExecutionEngine engine(EngineOptions{.threads = 4, .check_write_overlap = true});

  // Disjoint per-block outputs: fine.
  {
    GlobalMemory gmem;
    const auto blocks = make_blocks(gmem, 8, 20);
    EXPECT_NO_THROW(engine.launch(kernel, kDev, gmem, blocks, {}));
  }

  // Deliberately racy: every block writes the same 128-byte output row.
  {
    GlobalMemory gmem;
    const auto out = gmem.alloc(32 * 4);
    std::vector<BlockLaunch> blocks(3);
    for (int b = 0; b < 3; ++b) {
      blocks[static_cast<std::size_t>(b)].args = {
          static_cast<std::uint64_t>(out), static_cast<std::uint64_t>(b),
          std::uint64_t{20}};
    }
    EXPECT_THROW(engine.launch(kernel, kDev, gmem, blocks, {}),
                 wsim::util::CheckError);
  }

  // The same racy grid passes silently when checking is off (the races are
  // benign for timing, which is all non-checking runs promise).
  {
    ExecutionEngine unchecked(EngineOptions{.threads = 4});
    GlobalMemory gmem;
    const auto out = gmem.alloc(32 * 4);
    std::vector<BlockLaunch> blocks(2);
    for (int b = 0; b < 2; ++b) {
      blocks[static_cast<std::size_t>(b)].args = {
          static_cast<std::uint64_t>(out), static_cast<std::uint64_t>(b),
          std::uint64_t{20}};
    }
    EXPECT_NO_THROW(unchecked.launch(kernel, kDev, gmem, blocks, {}));
  }
}

TEST(ExecutionEngine, EngineCacheKeysByKernelAndShape) {
  ExecutionEngine engine(EngineOptions{.threads = 2});
  const Kernel writer = make_writer_kernel();

  LaunchOptions opt;
  opt.mode = ExecMode::kCachedByShape;
  opt.use_engine_cache = true;

  GlobalMemory gmem;
  const auto blocks = make_blocks(gmem, 4, 30);  // shape keys {30, 31, 32}
  engine.launch(writer, kDev, gmem, blocks, opt);
  const std::size_t after_writer = engine.cost_cache_size();
  EXPECT_EQ(after_writer, 3U);

  // Same launch again: every shape hits; the cache does not grow and the
  // timing is reproduced from memoized costs.
  const LaunchResult warm = engine.launch(writer, kDev, gmem, blocks, opt);
  EXPECT_EQ(engine.cost_cache_size(), after_writer);
  EXPECT_EQ(warm.blocks_executed, 0U);

  // A different kernel with colliding shape keys gets its own entries.
  wsim::util::Rng rng(3);
  wsim::workload::SwBatch batch = {{random_dna(rng, 48), random_dna(rng, 48)}};
  const wsim::kernels::SwRunner runner(wsim::kernels::CommMode::kShuffle);
  wsim::kernels::SwRunOptions sw_opt;
  sw_opt.mode = ExecMode::kCachedByShape;
  sw_opt.use_engine_cache = true;
  sw_opt.engine = &engine;
  runner.run_batch(kDev, batch, sw_opt);
  EXPECT_GT(engine.cost_cache_size(), after_writer);

  engine.clear_cost_cache();
  EXPECT_EQ(engine.cost_cache_size(), 0U);
}

TEST(ExecutionEngine, EngineCacheAndExternalCacheAreMutuallyExclusive) {
  ExecutionEngine engine(EngineOptions{.threads = 1});
  const Kernel kernel = make_writer_kernel();
  GlobalMemory gmem;
  const auto blocks = make_blocks(gmem, 2, 10);
  wsim::simt::BlockCostCache cache;
  LaunchOptions opt;
  opt.mode = ExecMode::kCachedByShape;
  opt.cost_cache = &cache;
  opt.use_engine_cache = true;
  EXPECT_THROW(engine.launch(kernel, kDev, gmem, blocks, opt),
               wsim::util::CheckError);
}

TEST(ExecutionEngine, SharedEngineIsASingleton) {
  EXPECT_EQ(&wsim::simt::shared_engine(), &wsim::simt::shared_engine());
  EXPECT_GE(wsim::simt::shared_engine().threads(), 1);
}

// Regression for the process-wide engine contract: every runner built
// without an explicit engine routes through the same shared_engine(), so
// cost-cache entries written by one runner are hits for the next —
// distinct runner instances, one cache.
TEST(ExecutionEngine, SharedEngineCacheIsReusedAcrossRunnerInstances) {
  // Shapes not used by any other test in this binary, so entries are
  // fresh regardless of test order.
  wsim::util::Rng rng(91);
  wsim::workload::SwBatch batch = {{random_dna(rng, 61), random_dna(rng, 67)},
                                   {random_dna(rng, 59), random_dna(rng, 71)}};
  wsim::kernels::SwRunOptions opt;
  opt.mode = ExecMode::kCachedByShape;
  opt.use_engine_cache = true;
  opt.engine = nullptr;  // explicit: fall back to shared_engine()

  auto& shared = wsim::simt::shared_engine();
  const std::size_t before = shared.cost_cache_size();
  const wsim::kernels::SwRunner first(wsim::kernels::CommMode::kShuffle);
  const auto cold = first.run_batch(kDev, batch, opt);
  const std::size_t after = shared.cost_cache_size();
  EXPECT_GT(after, before);
  EXPECT_GT(cold.run.launch.blocks_executed, 0U);

  // A brand-new runner instance: same shared cache, so nothing executes.
  const wsim::kernels::SwRunner second(wsim::kernels::CommMode::kShuffle);
  const auto warm = second.run_batch(kDev, batch, opt);
  EXPECT_EQ(shared.cost_cache_size(), after);
  EXPECT_EQ(warm.run.launch.blocks_executed, 0U);
  // Cached timing is bit-identical to the cold run (no representative
  // block exists on a fully-warm launch, so compare the aggregate).
  EXPECT_EQ(warm.run.launch.total_seconds(), cold.run.launch.total_seconds());
}

TEST(GmemWriteSet, CoalescesAndDetectsOverlap) {
  GmemWriteSet a;
  EXPECT_TRUE(a.empty());
  a.add(0, 4);
  a.add(4, 4);   // adjacent: coalesces
  a.add(100, 4);
  EXPECT_EQ(a.spans().size(), 2U);
  EXPECT_EQ(a.spans().at(0), 8);
  EXPECT_EQ(a.spans().at(100), 104);
  a.add(2, 10);  // overlapping both halves of [0, 8)
  EXPECT_EQ(a.spans().size(), 2U);
  EXPECT_EQ(a.spans().at(0), 12);

  GmemWriteSet b;
  b.add(12, 4);
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_FALSE(b.overlaps(a));
  b.add(11, 1);
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
}

}  // namespace
