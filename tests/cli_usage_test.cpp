#include <gtest/gtest.h>

#include <set>
#include <string>
#include <string_view>

#include "wsim/cli/commands.hpp"

namespace {

namespace cli = wsim::cli;

// Satellite: the CLI help text cannot drift from the dispatch table. The
// binary's main() asserts registry<->handler agreement at startup; this
// test pins the registry<->help side so a new subcommand without usage
// documentation fails CI.

TEST(CliUsage, CommandNamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> seen;
  for (const auto& info : cli::commands()) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.help.empty()) << info.name;
    EXPECT_TRUE(seen.insert(info.name).second) << "duplicate: " << info.name;
  }
  EXPECT_GE(seen.size(), 11U);  // the PR-4 command set; growth is fine
}

TEST(CliUsage, UsageTextCoversEveryRegisteredCommand) {
  const std::string usage = cli::usage_text();
  for (const auto& info : cli::commands()) {
    // Each command's help block starts with the indented command name.
    const std::string anchor = "\n  " + std::string(info.name) + " ";
    EXPECT_NE(("\n" + usage).find(anchor), std::string::npos)
        << "usage text missing help for '" << info.name << "'";
  }
}

TEST(CliUsage, UsageTextKeepsGlobalSections) {
  const std::string usage = cli::usage_text();
  EXPECT_EQ(usage.rfind("usage: wsim <command> [options]", 0), 0U);
  EXPECT_NE(usage.find("commands:"), std::string::npos);
  EXPECT_NE(usage.find("common options:"), std::string::npos);
  EXPECT_NE(usage.find("WSIM_THREADS"), std::string::npos);
}

TEST(CliUsage, HasCommandMatchesRegistry) {
  for (const auto& info : cli::commands()) {
    EXPECT_TRUE(cli::has_command(info.name)) << info.name;
  }
  EXPECT_FALSE(cli::has_command("bogus"));
  EXPECT_FALSE(cli::has_command(""));
  EXPECT_FALSE(cli::has_command("guard"));  // prefix of guard-sim, not a command
}

TEST(CliUsage, InterpreterKnobDocumentsAllThreeEngines) {
  const std::string usage = cli::usage_text();
  EXPECT_NE(usage.find("--interp fast|legacy|vector"), std::string::npos);
  EXPECT_NE(usage.find("WSIM_INTERP=legacy|vector"), std::string::npos);
  EXPECT_NE(usage.find("WSIM_VECTOR_ISA=generic|avx2|avx512"), std::string::npos);
}

TEST(CliUsage, InterpErrorAcceptsKnownEnginesOnly) {
  EXPECT_TRUE(cli::interp_error("fast").empty());
  EXPECT_TRUE(cli::interp_error("legacy").empty());
  EXPECT_TRUE(cli::interp_error("vector").empty());
  // Unknown names produce the one-line error naming the offender and
  // listing every valid engine, exactly as the driver prints it.
  const std::string err = cli::interp_error("turbo");
  EXPECT_EQ(err,
            "error: unknown interpreter 'turbo' for --interp; "
            "valid names: fast, legacy, vector");
  EXPECT_FALSE(cli::interp_error("").empty());
  EXPECT_FALSE(cli::interp_error("FAST").empty());
  EXPECT_FALSE(cli::interp_error("vector ").empty());
}

TEST(CliUsage, ResilienceCommandsAreDocumented) {
  EXPECT_TRUE(cli::has_command("guard-sim"));
  EXPECT_TRUE(cli::has_command("fleet-sim"));
  const std::string usage = cli::usage_text();
  EXPECT_NE(usage.find("--flip-prob"), std::string::npos);
  EXPECT_NE(usage.find("--detect none|abft|dual|all"), std::string::npos);
}

}  // namespace
