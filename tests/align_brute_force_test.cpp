// Independent validation of the DP references against literal
// implementations of the paper's Eq. 5 (SW with explicit gap-scoring
// arrays W_k, O(MN(M+N))) and the equivalent global recurrence for NW.
// These brute-force oracles share no code or algebra (no E/F buffers)
// with the production implementations.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "wsim/align/matrix.hpp"
#include "wsim/align/needleman_wunsch.hpp"
#include "wsim/align/smith_waterman.hpp"
#include "wsim/util/rng.hpp"

namespace {

using wsim::align::Matrix;
using wsim::align::SwParams;

std::int32_t w_gap(const SwParams& p, std::size_t k) {
  return p.gap_open + static_cast<std::int32_t>(k - 1) * p.gap_extend;
}

/// Eq. 5 verbatim: H(i,j) = max{0, H(i-1,j-1)+s(a,b),
/// max_k H(i-k,j)+W_k, max_l H(i,j-l)+W_l}.
Matrix<std::int32_t> sw_brute_force(std::string_view a, std::string_view b,
                                    const SwParams& p) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  Matrix<std::int32_t> h(m + 1, n + 1, 0);
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      std::int32_t best = 0;
      best = std::max(best, h(i - 1, j - 1) +
                                wsim::align::substitution_score(p, a[i - 1], b[j - 1]));
      for (std::size_t k = 1; k <= i; ++k) {
        best = std::max(best, h(i - k, j) + w_gap(p, k));
      }
      for (std::size_t l = 1; l <= j; ++l) {
        best = std::max(best, h(i, j - l) + w_gap(p, l));
      }
      h(i, j) = best;
    }
  }
  return h;
}

/// Global-alignment analogue with explicit gap arrays.
std::int32_t nw_brute_force(std::string_view a, std::string_view b,
                            const SwParams& p) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;
  Matrix<std::int32_t> h(m + 1, n + 1, kNegInf);
  h(0, 0) = 0;
  for (std::size_t j = 1; j <= n; ++j) {
    h(0, j) = w_gap(p, j);
  }
  for (std::size_t i = 1; i <= m; ++i) {
    h(i, 0) = w_gap(p, i);
  }
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      std::int32_t best = h(i - 1, j - 1) +
                          wsim::align::substitution_score(p, a[i - 1], b[j - 1]);
      for (std::size_t k = 1; k <= i; ++k) {
        best = std::max(best, h(i - k, j) + w_gap(p, k));
      }
      for (std::size_t l = 1; l <= j; ++l) {
        best = std::max(best, h(i, j - l) + w_gap(p, l));
      }
      h(i, j) = best;
    }
  }
  return h(m, n);
}

SwParams simple_params() {
  SwParams p;
  p.match = 10;
  p.mismatch = -8;
  p.gap_open = -12;
  p.gap_extend = -2;
  return p;
}

std::string random_dna(wsim::util::Rng& rng, int len) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = "ACGT"[rng.uniform_int(0, 3)];
  }
  return s;
}

class BruteForceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BruteForceTest, SwScoreMatrixMatchesEq5Literal) {
  wsim::util::Rng rng(GetParam());
  const SwParams p = simple_params();
  const std::string a = random_dna(rng, static_cast<int>(rng.uniform_int(1, 25)));
  const std::string b = random_dna(rng, static_cast<int>(rng.uniform_int(1, 25)));
  const auto ref = wsim::align::sw_fill(a, b, p);
  const auto brute = sw_brute_force(a, b, p);
  for (std::size_t i = 0; i <= a.size(); ++i) {
    for (std::size_t j = 0; j <= b.size(); ++j) {
      ASSERT_EQ(ref.h(i, j), brute(i, j))
          << "H(" << i << "," << j << ") a=" << a << " b=" << b;
    }
  }
}

TEST_P(BruteForceTest, SwGatkParametersAgreeToo) {
  wsim::util::Rng rng(GetParam() ^ 0xFEEDULL);
  const SwParams p;  // GATK defaults
  const std::string a = random_dna(rng, static_cast<int>(rng.uniform_int(1, 20)));
  const std::string b = random_dna(rng, static_cast<int>(rng.uniform_int(1, 20)));
  const auto ref = wsim::align::sw_fill(a, b, p);
  const auto brute = sw_brute_force(a, b, p);
  for (std::size_t i = 0; i <= a.size(); ++i) {
    for (std::size_t j = 0; j <= b.size(); ++j) {
      ASSERT_EQ(ref.h(i, j), brute(i, j));
    }
  }
}

TEST_P(BruteForceTest, NwScoreMatchesLiteralRecurrence) {
  wsim::util::Rng rng(GetParam() ^ 0xBEADULL);
  const SwParams p = simple_params();
  const std::string a = random_dna(rng, static_cast<int>(rng.uniform_int(0, 22)));
  const std::string b = random_dna(rng, static_cast<int>(rng.uniform_int(0, 22)));
  if (a.empty() && b.empty()) {
    return;
  }
  EXPECT_EQ(wsim::align::nw_score(a, b, p), nw_brute_force(a, b, p))
      << "a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BruteForceTest,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(BruteForce, MismatchOnlyStringsFloorAtZero) {
  const SwParams p = simple_params();
  const auto brute = sw_brute_force("AAAA", "TTTT", p);
  for (std::size_t i = 0; i <= 4; ++i) {
    for (std::size_t j = 0; j <= 4; ++j) {
      EXPECT_EQ(brute(i, j), 0);
    }
  }
}

}  // namespace
