#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "wsim/align/needleman_wunsch.hpp"
#include "wsim/align/smith_waterman.hpp"
#include "wsim/guard/guard.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/kernels/wavefront_kernels.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/engine.hpp"
#include "wsim/util/check.hpp"
#include "wsim/util/rng.hpp"

namespace {

using wsim::align::SwFill;
using wsim::align::SwParams;
using wsim::kernels::WavefrontNwRunner;
using wsim::kernels::WavefrontSwRunner;
using wsim::kernels::WfRunOptions;
using wsim::kernels::WfSwBatchResult;
using wsim::kernels::WfVariant;
using wsim::workload::SwBatch;
using wsim::workload::SwTask;

const wsim::simt::DeviceSpec kDev = wsim::simt::make_k1200();

SwParams simple_params() {
  SwParams p;
  p.match = 10;
  p.mismatch = -8;
  p.gap_open = -12;
  p.gap_extend = -2;
  return p;
}

WfRunOptions with_outputs() {
  WfRunOptions opt;
  opt.collect_outputs = true;
  return opt;
}

std::string random_dna(wsim::util::Rng& rng, int len, bool with_n = false) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T', 'N'};
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = kBases[rng.uniform_int(0, with_n ? 4 : 3)];
  }
  return s;
}

/// Mutated-substring task: a realistic long-read alignment shape.
SwTask long_read_task(wsim::util::Rng& rng, int m, int n) {
  std::string target = random_dna(rng, n);
  std::string query;
  if (m <= n) {
    const auto start = static_cast<std::size_t>(rng.uniform_int(0, n - m));
    query = target.substr(start, static_cast<std::size_t>(m));
  } else {
    query = random_dna(rng, m);
  }
  for (char& ch : query) {
    if (rng.uniform01() < 0.05) {
      ch = "ACGT"[rng.uniform_int(0, 3)];
    }
  }
  return {std::move(query), std::move(target)};
}

void expect_matches_reference(const SwTask& task, const SwParams& params,
                              const wsim::kernels::SwTaskOutput& out,
                              const std::string& label) {
  const SwFill ref = wsim::align::sw_fill(task.query, task.target, params);
  ASSERT_EQ(out.btrack.rows(), ref.btrack.rows()) << label;
  ASSERT_EQ(out.btrack.cols(), ref.btrack.cols()) << label;
  for (std::size_t i = 1; i < ref.btrack.rows(); ++i) {
    for (std::size_t j = 1; j < ref.btrack.cols(); ++j) {
      ASSERT_EQ(out.btrack(i, j), ref.btrack(i, j))
          << label << " btrack mismatch at (" << i << ", " << j << ")";
    }
  }
  EXPECT_EQ(out.best_score, ref.best_score) << label;
  EXPECT_EQ(out.best_i, ref.best_i) << label;
  EXPECT_EQ(out.best_j, ref.best_j) << label;
  const auto ref_aln =
      wsim::align::sw_backtrace(ref.btrack, ref.best_i, ref.best_j, ref.best_score);
  EXPECT_EQ(out.alignment.cigar, ref_aln.cigar) << label;
  EXPECT_EQ(out.alignment.score, ref_aln.score) << label;
}

class WfTileVariants : public ::testing::TestWithParam<WfVariant> {};

TEST_P(WfTileVariants, SmallShapesMatchHostOracle) {
  const SwParams p = simple_params();
  // tile_rows 48 forces multi-tile grids even on small tasks.
  const WavefrontSwRunner runner(GetParam(), p, /*tile_rows=*/48);
  wsim::util::Rng rng(17);
  const SwBatch batch = {
      {"ACGTACGT", "ACGTACGT"},
      {"CGTA", "AACGTATT"},
      {random_dna(rng, 48), random_dna(rng, 80)},
      {random_dna(rng, 33), random_dna(rng, 31)},
      {random_dna(rng, 1), random_dna(rng, 1)},
      {random_dna(rng, 100, true), random_dna(rng, 95, true)},  // with 'N'
  };
  const WfSwBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  ASSERT_EQ(result.outputs.size(), batch.size());
  for (std::size_t t = 0; t < batch.size(); ++t) {
    expect_matches_reference(batch[t], p, result.outputs[t],
                             "task " + std::to_string(t));
  }
}

TEST_P(WfTileVariants, NonMultipleTileGrid) {
  // 300 x 200 with 48-row tiles: 7 x 7 tiles, short last row tile, short
  // last column tile, interior tiles with all four boundaries live.
  const SwParams p = simple_params();
  const WavefrontSwRunner runner(GetParam(), p, /*tile_rows=*/48);
  wsim::util::Rng rng(19);
  const SwBatch batch = {long_read_task(rng, 300, 200)};
  const WfSwBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  expect_matches_reference(batch[0], p, result.outputs[0], "300x200");
}

TEST_P(WfTileVariants, LongReadMatchesHostOracle) {
  const SwParams p;  // GATK defaults
  const WavefrontSwRunner runner(GetParam(), p);
  wsim::util::Rng rng(23);
  const SwBatch batch = {long_read_task(rng, 512, 1024)};
  const WfSwBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  expect_matches_reference(batch[0], p, result.outputs[0], "512x1024");
}

TEST_P(WfTileVariants, ContigScaleAsymmetricTasks) {
  // 8k on one side exercises the full long-read length range cheaply.
  const SwParams p = simple_params();
  const WavefrontSwRunner runner(GetParam(), p);
  wsim::util::Rng rng(29);
  const SwBatch batch = {
      long_read_task(rng, 8192, 256),
      long_read_task(rng, 256, 8192),
  };
  const WfSwBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  for (std::size_t t = 0; t < batch.size(); ++t) {
    expect_matches_reference(batch[t], p, result.outputs[t],
                             "task " + std::to_string(t));
  }
}

TEST_P(WfTileVariants, MixedLengthBatchAllDevices) {
  const SwParams p = simple_params();
  const WavefrontSwRunner runner(GetParam(), p, /*tile_rows=*/64);
  wsim::util::Rng rng(31);
  const SwBatch batch = {
      long_read_task(rng, 256, 300),
      long_read_task(rng, 512, 400),
      long_read_task(rng, 90, 700),
  };
  for (const auto& dev : {wsim::simt::make_k40(), wsim::simt::make_k1200(),
                          wsim::simt::make_titan_x()}) {
    const WfSwBatchResult result = runner.run_batch(dev, batch, with_outputs());
    for (std::size_t t = 0; t < batch.size(); ++t) {
      expect_matches_reference(batch[t], p, result.outputs[t],
                               dev.name + " task " + std::to_string(t));
    }
  }
}

TEST_P(WfTileVariants, NwScoresMatchHostOracle) {
  const SwParams p = simple_params();
  const WavefrontNwRunner runner(GetParam(), p, /*tile_rows=*/48);
  wsim::util::Rng rng(37);
  const SwBatch batch = {
      {"ACGTACGT", "ACGTACGT"},
      {random_dna(rng, 33), random_dna(rng, 31)},
      {random_dna(rng, 1), random_dna(rng, 60)},
      long_read_task(rng, 300, 200),
      long_read_task(rng, 512, 512),
  };
  const auto result = runner.run_batch(kDev, batch, with_outputs());
  ASSERT_EQ(result.scores.size(), batch.size());
  for (std::size_t t = 0; t < batch.size(); ++t) {
    EXPECT_EQ(result.scores[t],
              wsim::align::nw_score(batch[t].query, batch[t].target, p))
        << "task " << t;
  }
}

TEST_P(WfTileVariants, TileWritesAreDisjoint) {
  // Run the full grid under the engine's write-overlap checker: proves the
  // row/column/corner boundary buffers of concurrently-executing tiles
  // never overlap (the race-freedom argument, checked not trusted).
  wsim::simt::EngineOptions eopt;
  eopt.threads = 2;
  eopt.check_write_overlap = true;
  wsim::simt::ExecutionEngine engine(eopt);
  const SwParams p = simple_params();
  const WavefrontSwRunner runner(GetParam(), p, /*tile_rows=*/48);
  wsim::util::Rng rng(41);
  const SwBatch batch = {long_read_task(rng, 300, 200), long_read_task(rng, 150, 260)};
  WfRunOptions opt = with_outputs();
  opt.engine = &engine;
  const WfSwBatchResult result = runner.run_batch(kDev, batch, opt);
  for (std::size_t t = 0; t < batch.size(); ++t) {
    expect_matches_reference(batch[t], p, result.outputs[t],
                             "overlap-checked task " + std::to_string(t));
  }
}

TEST_P(WfTileVariants, CachedModeExecutesOneBlockPerShape) {
  const WavefrontSwRunner runner(GetParam(), simple_params());
  wsim::util::Rng rng(43);
  SwBatch batch;
  for (int t = 0; t < 8; ++t) {
    batch.push_back(long_read_task(rng, 512, 512));
  }
  WfRunOptions cached;
  cached.mode = wsim::simt::ExecMode::kCachedByShape;
  const WfSwBatchResult result = runner.run_batch(kDev, batch, cached);
  EXPECT_GT(result.blocks, result.run.launch.blocks_executed)
      << "cached mode should reuse representative costs across equal tiles";
  // 512 rows -> 2 tile rows, 512 cols -> 16 tile columns: 17 waves.
  EXPECT_EQ(result.launches, 17U);
}

TEST_P(WfTileVariants, CachedTimingTracksFullTiming) {
  // Cached mode reuses one representative cost per tile shape and rebases
  // scratch into shared slabs; the 128 B warm-segment model makes per-tile
  // cycles phase-dependent, so cached timing is an approximation — pinned
  // here to a few percent (the shape_key contract).
  const WavefrontSwRunner runner(GetParam(), simple_params());
  wsim::util::Rng rng(47);
  const SwBatch batch = {long_read_task(rng, 400, 500),
                         long_read_task(rng, 400, 500)};
  WfRunOptions full;
  WfRunOptions cached;
  cached.mode = wsim::simt::ExecMode::kCachedByShape;
  const auto a = runner.run_batch(kDev, batch, full);
  const auto b = runner.run_batch(kDev, batch, cached);
  const auto fa = static_cast<double>(a.run.launch.timing.cycles);
  const auto fb = static_cast<double>(b.run.launch.timing.cycles);
  EXPECT_LT(std::abs(fa - fb) / fa, 0.05)
      << "full " << fa << " vs cached " << fb;
}

INSTANTIATE_TEST_SUITE_P(Variants, WfTileVariants,
                         ::testing::Values(WfVariant::kShuffle,
                                           WfVariant::kSharedMemory),
                         [](const ::testing::TestParamInfo<WfVariant>& info) {
                           return info.param == WfVariant::kShuffle ? "Shuffle"
                                                                    : "Shared";
                         });

// --- naive anti-pattern variant ---------------------------------------------

TEST(WfNaive, MatchesHostOracle) {
  const SwParams p = simple_params();
  const WavefrontSwRunner runner(WfVariant::kHostSyncNaive, p);
  wsim::util::Rng rng(53);
  const SwBatch batch = {
      {"CGTA", "AACGTATT"},
      long_read_task(rng, 100, 130),
      long_read_task(rng, 256, 192),
  };
  const WfSwBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  for (std::size_t t = 0; t < batch.size(); ++t) {
    expect_matches_reference(batch[t], p, result.outputs[t],
                             "naive task " + std::to_string(t));
  }
  // One launch per cell anti-diagonal: the host-sync loop in person.
  EXPECT_EQ(result.launches, 256U + 192U - 1U);
}

TEST(WfNaive, NwScoreMatchesAndLaunchCountExplodes) {
  const SwParams p = simple_params();
  const WavefrontNwRunner runner(WfVariant::kHostSyncNaive, p);
  wsim::util::Rng rng(59);
  const SwBatch batch = {long_read_task(rng, 120, 150)};
  const auto result = runner.run_batch(kDev, batch, with_outputs());
  EXPECT_EQ(result.scores[0],
            wsim::align::nw_score(batch[0].query, batch[0].target, p));
  EXPECT_EQ(result.launches, 120U + 150U - 1U);
  const WavefrontNwRunner tiled(WfVariant::kShuffle, p);
  const auto tiled_result = tiled.run_batch(kDev, batch, WfRunOptions{});
  EXPECT_GT(result.run.launch.overhead_seconds,
            10.0 * tiled_result.run.launch.overhead_seconds)
      << "per-diagonal host sync should drown in launch overhead";
}

TEST(WfNaive, RejectsOversizedTasks) {
  const WavefrontSwRunner runner(WfVariant::kHostSyncNaive);
  SwBatch batch = {{std::string(8192, 'A'), std::string(8192, 'C')}};
  EXPECT_THROW(runner.run_batch(kDev, batch, WfRunOptions{}),
               wsim::util::CheckError);
}

// --- design-level expectations ----------------------------------------------

TEST(WfDesign, ShuffleVariantUsesNoSharedMemory) {
  const WavefrontSwRunner shuffle(WfVariant::kShuffle);
  const WavefrontSwRunner shared(WfVariant::kSharedMemory);
  EXPECT_EQ(shuffle.kernel().smem_bytes, 0);
  EXPECT_GT(shared.kernel().smem_bytes, 0);
  for (const auto& ins : shuffle.kernel().code) {
    EXPECT_NE(ins.op, wsim::simt::Op::kBar);
    EXPECT_NE(ins.op, wsim::simt::Op::kLds);
    EXPECT_NE(ins.op, wsim::simt::Op::kSts);
  }
  bool has_shfl = false;
  for (const auto& ins : shared.kernel().code) {
    has_shfl = has_shfl || ins.op == wsim::simt::Op::kShflUp;
  }
  EXPECT_FALSE(has_shfl);
}

TEST(WfDesign, GeometryAndIterations) {
  using wsim::kernels::wf_geometry;
  using wsim::kernels::wf_iterations;
  const auto g = wf_geometry(300, 200, 48);
  EXPECT_EQ(g.tile_row_count, 7U);
  EXPECT_EQ(g.tile_col_count, 7U);
  EXPECT_EQ(g.tiles, 49U);
  EXPECT_EQ(g.waves, 13U);
  // 6 full 48-row tiles (48+31 steps) + one 12-row tail (12+31), x 7 cols.
  EXPECT_EQ(wf_iterations(300, 200, 48), (6U * 79U + 43U) * 7U);
  const auto g1 = wf_geometry(8, 8, 256);
  EXPECT_EQ(g1.tiles, 1U);
  EXPECT_EQ(g1.waves, 1U);
}

TEST(WfDesign, KernelNameLookup) {
  using wsim::kernels::sw_kernel_by_name;
  using wsim::kernels::sw_kernel_name;
  for (const std::string& name : wsim::kernels::sw_kernel_names()) {
    EXPECT_EQ(sw_kernel_name(sw_kernel_by_name(name)), name);
  }
  EXPECT_FALSE(sw_kernel_by_name("shuffle").intra);
  EXPECT_TRUE(sw_kernel_by_name("wf-naive").intra);
  try {
    sw_kernel_by_name("warp-zig-zag");
    FAIL() << "expected CheckError";
  } catch (const wsim::util::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("warp-zig-zag"), std::string::npos);
    EXPECT_NE(msg.find("wf-shuffle"), std::string::npos)
        << "error should list the valid kernel names: " << msg;
  }
}

// --- interpreter equivalence and SDC parity ---------------------------------

TEST(WfInterp, FastAndLegacyBitIdenticalAcrossDevices) {
  const SwParams p = simple_params();
  wsim::util::Rng rng(61);
  const SwBatch batch = {long_read_task(rng, 256, 320),
                         long_read_task(rng, 90, 260)};
  for (const WfVariant variant : {WfVariant::kShuffle, WfVariant::kSharedMemory}) {
    const WavefrontSwRunner runner(variant, p, /*tile_rows=*/64);
    for (const auto& dev : {wsim::simt::make_k40(), wsim::simt::make_k1200(),
                            wsim::simt::make_titan_x()}) {
      WfRunOptions fast = with_outputs();
      fast.interp = wsim::simt::InterpPath::kFast;
      WfRunOptions legacy = with_outputs();
      legacy.interp = wsim::simt::InterpPath::kLegacy;
      const auto a = runner.run_batch(dev, batch, fast);
      const auto b = runner.run_batch(dev, batch, legacy);
      EXPECT_EQ(wsim::guard::fingerprint_sw(a.outputs),
                wsim::guard::fingerprint_sw(b.outputs))
          << dev.name;
      EXPECT_EQ(a.run.launch.timing.cycles, b.run.launch.timing.cycles) << dev.name;
      EXPECT_EQ(a.run.launch.instructions, b.run.launch.instructions) << dev.name;
    }
  }
}

TEST(WfInterp, SdcInjectionParity) {
  // The same SdcPlan must flip the same bits on both interpreters: the
  // wavefront launch loop derives per-wave sub-launch ids, so stream
  // selection must line up instruction by instruction.
  const SwParams p = simple_params();
  wsim::util::Rng rng(67);
  const SwBatch batch = {long_read_task(rng, 200, 200)};
  wsim::simt::SdcPlan sdc;
  sdc.flip_prob = 2e-4;
  sdc.seed = 99;
  for (const WfVariant variant : {WfVariant::kShuffle, WfVariant::kSharedMemory}) {
    const WavefrontSwRunner runner(variant, p, /*tile_rows=*/64);
    for (const auto& dev : {wsim::simt::make_k40(), wsim::simt::make_k1200(),
                            wsim::simt::make_titan_x()}) {
      const auto run_path = [&](wsim::simt::InterpPath path)
          -> std::optional<WfSwBatchResult> {
        WfRunOptions opt = with_outputs();
        opt.sdc = sdc;
        opt.sdc_launch_id = 7;
        opt.interp = path;
        try {
          return runner.run_batch(dev, batch, opt);
        } catch (const wsim::util::CheckError&) {
          // A flip can land in an address-feeding register; both paths
          // must then crash identically.
          return std::nullopt;
        }
      };
      const auto a = run_path(wsim::simt::InterpPath::kFast);
      const auto b = run_path(wsim::simt::InterpPath::kLegacy);
      ASSERT_EQ(a.has_value(), b.has_value()) << dev.name;
      if (!a.has_value()) {
        continue;
      }
      EXPECT_EQ(a->run.launch.sdc_flips, b->run.launch.sdc_flips) << dev.name;
      EXPECT_GT(a->run.launch.sdc_flips, 0U) << dev.name;
      EXPECT_EQ(wsim::guard::fingerprint_sw(a->outputs),
                wsim::guard::fingerprint_sw(b->outputs))
          << dev.name;
    }
  }
}

// --- guard ABFT on wavefront outputs ----------------------------------------

TEST(WfGuard, AbftRescoreAcceptsCleanWavefrontCigar) {
  const SwParams p = simple_params();
  const WavefrontSwRunner runner(WfVariant::kShuffle, p);
  wsim::util::Rng rng(71);
  const SwBatch batch = {long_read_task(rng, 300, 400),
                         long_read_task(rng, 256, 256)};
  const auto result = runner.run_batch(kDev, batch, with_outputs());
  EXPECT_EQ(wsim::guard::validate_sw(batch, result.outputs, p), std::nullopt);
}

TEST(WfGuard, AbftRescoreCatchesTamperedOutput) {
  const SwParams p = simple_params();
  const WavefrontSwRunner runner(WfVariant::kShuffle, p);
  wsim::util::Rng rng(73);
  const SwBatch batch = {long_read_task(rng, 300, 400)};
  auto result = runner.run_batch(kDev, batch, with_outputs());
  result.outputs[0].best_score += 2;  // an SDC-style corruption
  result.outputs[0].alignment.score += 2;
  EXPECT_NE(wsim::guard::validate_sw(batch, result.outputs, p), std::nullopt);
}

}  // namespace
