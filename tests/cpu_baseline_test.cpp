#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "wsim/align/pairhmm.hpp"
#include "wsim/align/smith_waterman.hpp"
#include "wsim/cpu/simd_pairhmm.hpp"
#include "wsim/cpu/striped_sw.hpp"
#include "wsim/util/check.hpp"
#include "wsim/util/rng.hpp"

namespace {

using wsim::align::SwParams;

SwParams simple_params() {
  SwParams p;
  p.match = 10;
  p.mismatch = -8;
  p.gap_open = -12;
  p.gap_extend = -2;
  return p;
}

std::string random_dna(wsim::util::Rng& rng, int len) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = "ACGT"[rng.uniform_int(0, 3)];
  }
  return s;
}

/// Classic SW score from the reference fill: max over the whole H matrix.
std::int32_t full_matrix_max(std::string_view q, std::string_view t,
                             const SwParams& p) {
  const auto fill = wsim::align::sw_fill(q, t, p);
  std::int32_t best = 0;
  for (std::size_t i = 0; i < fill.h.rows(); ++i) {
    for (std::size_t j = 0; j < fill.h.cols(); ++j) {
      best = std::max(best, fill.h(i, j));
    }
  }
  return best;
}

TEST(StripedSw, KnownCases) {
  const SwParams p = simple_params();
  EXPECT_EQ(wsim::cpu::striped_sw_score("ACGTACGT", "ACGTACGT", p), 80);
  EXPECT_EQ(wsim::cpu::striped_sw_score("CGTA", "AACGTATT", p), 40);
  EXPECT_EQ(wsim::cpu::striped_sw_score("AAAA", "TTTT", p), 0);
  EXPECT_EQ(wsim::cpu::striped_sw_score("AAAAACCCCC", "AAAAAGGCCCCC", p), 86);
}

TEST(StripedSw, ScalarBaselineMatchesReferenceFill) {
  wsim::util::Rng rng(1);
  const SwParams p = simple_params();
  for (int t = 0; t < 20; ++t) {
    const std::string a = random_dna(rng, static_cast<int>(rng.uniform_int(1, 60)));
    const std::string b = random_dna(rng, static_cast<int>(rng.uniform_int(1, 60)));
    EXPECT_EQ(wsim::cpu::scalar_sw_score(a, b, p), full_matrix_max(a, b, p))
        << "a=" << a << " b=" << b;
  }
}

class StripedSwProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StripedSwProperty, MatchesScalarOnRandomPairs) {
  wsim::util::Rng rng(GetParam());
  const SwParams p = simple_params();
  const std::string a = random_dna(rng, static_cast<int>(rng.uniform_int(1, 150)));
  const std::string b = random_dna(rng, static_cast<int>(rng.uniform_int(1, 150)));
  EXPECT_EQ(wsim::cpu::striped_sw_score(a, b, p),
            wsim::cpu::scalar_sw_score(a, b, p))
      << "a=" << a << " b=" << b;
}

TEST_P(StripedSwProperty, MatchesScalarOnMutatedPairs) {
  // Mutated substrings produce long gapped alignments — the hard case for
  // the lazy-F loop.
  wsim::util::Rng rng(GetParam() ^ 0xF00DULL);
  const SwParams p = simple_params();
  const std::string b = random_dna(rng, 120);
  std::string a = b.substr(10, 90);
  a.insert(40, random_dna(rng, static_cast<int>(rng.uniform_int(1, 8))));
  a.erase(20, static_cast<std::size_t>(rng.uniform_int(0, 6)));
  EXPECT_EQ(wsim::cpu::striped_sw_score(a, b, p),
            wsim::cpu::scalar_sw_score(a, b, p));
}

TEST_P(StripedSwProperty, GatkParameters) {
  wsim::util::Rng rng(GetParam() ^ 0xABCULL);
  const SwParams p;  // large magnitudes exercise 32-bit lanes
  const std::string a = random_dna(rng, static_cast<int>(rng.uniform_int(1, 100)));
  const std::string b = random_dna(rng, static_cast<int>(rng.uniform_int(1, 100)));
  EXPECT_EQ(wsim::cpu::striped_sw_score(a, b, p),
            wsim::cpu::scalar_sw_score(a, b, p));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StripedSwProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(StripedSw, RejectsEmpty) {
  EXPECT_THROW(wsim::cpu::striped_sw_score("", "ACGT", {}), wsim::util::CheckError);
}

// --- SIMD PairHMM -----------------------------------------------------------

wsim::align::PairHmmTask make_task(std::string read, std::string hap,
                                   wsim::util::Rng& rng) {
  wsim::align::PairHmmTask task;
  task.read = std::move(read);
  task.hap = std::move(hap);
  task.base_quals.resize(task.read.size());
  for (auto& q : task.base_quals) {
    q = static_cast<std::uint8_t>(rng.uniform_int(10, 40));
  }
  task.ins_quals.assign(task.read.size(), 45);
  task.del_quals.assign(task.read.size(), 45);
  return task;
}

class SimdPairHmmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimdPairHmmProperty, BitExactAgainstScalarReference) {
  wsim::util::Rng rng(GetParam());
  const int hap_len = static_cast<int>(rng.uniform_int(4, 180));
  const std::string hap = random_dna(rng, hap_len);
  const int read_len =
      static_cast<int>(std::min<std::int64_t>(rng.uniform_int(1, 127), hap_len));
  std::string read = hap.substr(0, static_cast<std::size_t>(read_len));
  for (char& c : read) {
    if (rng.uniform01() < 0.05) {
      c = "ACGT"[rng.uniform_int(0, 3)];
    }
  }
  const auto task = make_task(std::move(read), hap, rng);
  // Identical per-cell operation order -> identical doubles.
  EXPECT_DOUBLE_EQ(wsim::cpu::simd_pairhmm_log10(task),
                   wsim::align::pairhmm_log10(task));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdPairHmmProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(SimdPairHmm, NBasesAndShortTasks) {
  wsim::util::Rng rng(9);
  auto task = make_task("ANGT", "ACGT", rng);
  EXPECT_DOUBLE_EQ(wsim::cpu::simd_pairhmm_log10(task),
                   wsim::align::pairhmm_log10(task));
  auto tiny = make_task("A", "C", rng);
  EXPECT_DOUBLE_EQ(wsim::cpu::simd_pairhmm_log10(tiny),
                   wsim::align::pairhmm_log10(tiny));
}

}  // namespace
