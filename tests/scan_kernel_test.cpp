#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "wsim/kernels/scan_kernels.hpp"
#include "wsim/model/breakdown.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/util/check.hpp"
#include "wsim/util/rng.hpp"

namespace {

using wsim::kernels::build_scan_kernel;
using wsim::kernels::CommMode;
using wsim::kernels::run_scan;

const wsim::simt::DeviceSpec kDev = wsim::simt::make_k1200();

std::vector<std::int32_t> reference_scan(const std::vector<std::int32_t>& in) {
  std::vector<std::int32_t> out(in.size());
  std::inclusive_scan(in.begin(), in.end(), out.begin());
  return out;
}

struct ScanCase {
  CommMode mode;
  int threads;
};

class ScanModes : public ::testing::TestWithParam<ScanCase> {};

TEST_P(ScanModes, MatchesStdInclusiveScan) {
  const auto kernel = build_scan_kernel(GetParam().mode, GetParam().threads);
  wsim::util::Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const auto n = static_cast<std::size_t>(
        rng.uniform_int(1, GetParam().threads));
    std::vector<std::int32_t> in(n);
    for (auto& v : in) {
      v = static_cast<std::int32_t>(rng.uniform_int(-100, 100));
    }
    EXPECT_EQ(run_scan(kernel, kDev, in), reference_scan(in)) << "n=" << n;
  }
}

TEST_P(ScanModes, AllOnesGiveLaneIndexPlusOne) {
  const auto kernel = build_scan_kernel(GetParam().mode, GetParam().threads);
  const std::vector<std::int32_t> in(static_cast<std::size_t>(GetParam().threads), 1);
  const auto out = run_scan(kernel, kDev, in);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<std::int32_t>(i + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Designs, ScanModes,
    ::testing::Values(ScanCase{CommMode::kSharedMemory, 32},
                      ScanCase{CommMode::kSharedMemory, 128},
                      ScanCase{CommMode::kShuffle, 32},
                      ScanCase{CommMode::kShuffle, 128}),
    [](const ::testing::TestParamInfo<ScanCase>& info) {
      return std::string(info.param.mode == CommMode::kSharedMemory ? "shared"
                                                                    : "shuffle") +
             "_t" + std::to_string(info.param.threads);
    });

TEST(ScanDesign, ShuffleScanIsFasterPerBlock) {
  const std::vector<std::int32_t> in(128, 3);
  long long shared_cycles = 0;
  long long shuffle_cycles = 0;
  run_scan(build_scan_kernel(CommMode::kSharedMemory, 128), kDev, in, &shared_cycles);
  run_scan(build_scan_kernel(CommMode::kShuffle, 128), kDev, in, &shuffle_cycles);
  EXPECT_LT(shuffle_cycles, shared_cycles);
}

TEST(ScanDesign, SingleWarpShuffleScanNeedsNoMemoryAtAll) {
  const auto kernel = build_scan_kernel(CommMode::kShuffle, 32);
  EXPECT_EQ(kernel.smem_bytes, 0);
  for (const auto& ins : kernel.code) {
    EXPECT_NE(ins.op, wsim::simt::Op::kBar);
    EXPECT_NE(ins.op, wsim::simt::Op::kLds);
    EXPECT_NE(ins.op, wsim::simt::Op::kSts);
  }
}

TEST(ScanDesign, MultiWarpShuffleCrossesSmemExactlyOnce) {
  // The healthy hybrid: one barrier and one warp-total store per block,
  // versus log2(T) barriers in the shared design.
  const auto shuffle = build_scan_kernel(CommMode::kShuffle, 128);
  const auto shared = build_scan_kernel(CommMode::kSharedMemory, 128);
  auto count = [](const wsim::simt::Kernel& k, wsim::simt::Op op) {
    std::size_t n = 0;
    for (const auto& ins : k.code) {
      n += ins.op == op ? 1 : 0;
    }
    return n;
  };
  EXPECT_EQ(count(shuffle, wsim::simt::Op::kBar), 1U);
  EXPECT_EQ(count(shuffle, wsim::simt::Op::kSts), 1U);
  EXPECT_GE(count(shared, wsim::simt::Op::kBar), 7U);  // log2(128) = 7 stages
}

TEST(ScanDesign, RunScanValidatesInput) {
  const auto kernel = build_scan_kernel(CommMode::kShuffle, 32);
  EXPECT_THROW(run_scan(kernel, kDev, {}), wsim::util::CheckError);
  EXPECT_THROW(run_scan(kernel, kDev, std::vector<std::int32_t>(33, 1)),
               wsim::util::CheckError);
  EXPECT_THROW(build_scan_kernel(CommMode::kShuffle, 33), wsim::util::CheckError);
}

}  // namespace
