// wsim::cluster and the dynamic-membership fleet surface: trace
// generation/IO, the autoscaler control law, the DeviceWorker lifecycle
// (join/drain/retire safe mid-run, bit-identical results under churn and
// faults), and the end-to-end ClusterSim replay determinism.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "wsim/cluster/autoscaler.hpp"
#include "wsim/cluster/cluster.hpp"
#include "wsim/fleet/fleet.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/util/check.hpp"
#include "wsim/workload/batching.hpp"
#include "wsim/workload/generator.hpp"
#include "wsim/workload/trace.hpp"

namespace {

namespace cluster = wsim::cluster;
namespace fleet = wsim::fleet;
namespace workload = wsim::workload;

workload::Dataset small_dataset(std::uint64_t seed = 11) {
  workload::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.regions = 3;
  cfg.ph_tasks_per_region_mean = 6.0;
  cfg.sw_query_len_min = 40;
  cfg.sw_query_len_max = 90;
  cfg.sw_target_len_min = 60;
  cfg.sw_target_len_max = 120;
  return workload::generate_dataset(cfg);
}

workload::TraceConfig two_tenant_trace_config() {
  workload::TraceConfig cfg;
  cfg.seed = 7;
  cfg.duration_seconds = 0.05;
  cfg.shape = workload::TraceShape::kBursty;
  cfg.tenants.push_back({"alpha", 4000.0, 0.1});
  cfg.tenants.push_back({"beta", 4000.0, 0.1});
  return cfg;
}

// ---------------------------------------------------------------------------
// Trace generation.

TEST(TraceGenerate, DeterministicSortedAndWithinDuration) {
  const auto cfg = two_tenant_trace_config();
  const auto a = workload::generate_trace(cfg);
  const auto b = workload::generate_trace(cfg);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_FALSE(a.events.empty());
  EXPECT_EQ(a.tenants, (std::vector<std::string>{"alpha", "beta"}));
  bool saw[2] = {false, false};
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time) << i;
    EXPECT_EQ(a.events[i].tenant, b.events[i].tenant) << i;
    EXPECT_EQ(a.events[i].is_sw, b.events[i].is_sw) << i;
    EXPECT_EQ(a.events[i].task_index, b.events[i].task_index) << i;
    EXPECT_GE(a.events[i].time, 0.0);
    EXPECT_LT(a.events[i].time, cfg.duration_seconds);
    if (i > 0) {
      EXPECT_LE(a.events[i - 1].time, a.events[i].time) << i;
    }
    ASSERT_LT(a.events[i].tenant, 2U);
    saw[a.events[i].tenant] = true;
  }
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);
}

TEST(TraceGenerate, BurstyConcentratesArrivalsInBurstWindows) {
  auto cfg = two_tenant_trace_config();
  cfg.duration_seconds = 0.5;
  cfg.burst_multiplier = 8.0;
  const auto trace = workload::generate_trace(cfg);
  std::size_t in_burst = 0;
  for (const auto& event : trace.events) {
    const double phase =
        event.time - cfg.burst_every_seconds *
                         std::floor(event.time / cfg.burst_every_seconds);
    in_burst += phase < cfg.burst_seconds ? 1 : 0;
  }
  // Burst windows cover 20% of the time; with an 8x multiplier they must
  // carry well over half the arrivals.
  EXPECT_GT(in_burst * 2, trace.events.size());
}

TEST(TraceGenerate, ShapeNamesRoundTrip) {
  for (const auto shape :
       {workload::TraceShape::kSteady, workload::TraceShape::kDiurnal,
        workload::TraceShape::kBursty}) {
    EXPECT_EQ(workload::trace_shape_by_name(workload::to_string(shape)), shape);
  }
  EXPECT_THROW(workload::trace_shape_by_name("sawtooth"),
               wsim::util::CheckError);
}

// ---------------------------------------------------------------------------
// Trace file format.

TEST(TraceIo, RoundTripIsExact) {
  const auto trace = workload::generate_trace(two_tenant_trace_config());
  std::stringstream buffer;
  workload::write_trace(buffer, trace);
  const auto loaded = workload::read_trace(buffer);
  EXPECT_EQ(loaded.tenants, trace.tenants);
  EXPECT_EQ(loaded.duration_seconds, trace.duration_seconds);
  ASSERT_EQ(loaded.events.size(), trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    // max_digits10 precision makes the round trip bit-exact.
    EXPECT_EQ(loaded.events[i].time, trace.events[i].time) << i;
    EXPECT_EQ(loaded.events[i].tenant, trace.events[i].tenant) << i;
    EXPECT_EQ(loaded.events[i].is_sw, trace.events[i].is_sw) << i;
    EXPECT_EQ(loaded.events[i].task_index, trace.events[i].task_index) << i;
  }
}

TEST(TraceIo, RejectsMissingOrUnsupportedVersion) {
  std::istringstream no_header("duration 1\ntenant a\n");
  EXPECT_THROW(workload::read_trace(no_header), wsim::util::CheckError);
  std::istringstream future("WSIM-TRACE 99\nduration 1\n");
  EXPECT_THROW(workload::read_trace(future), wsim::util::CheckError);
}

TEST(TraceIo, RejectsMalformedBodies) {
  std::istringstream bad_tenant(
      "WSIM-TRACE 1\nduration 1\ntenant a\nevent 0.5 7 sw 0\n");
  EXPECT_THROW(workload::read_trace(bad_tenant), wsim::util::CheckError);
  std::istringstream out_of_order(
      "WSIM-TRACE 1\nduration 1\ntenant a\n"
      "event 0.5 0 sw 0\nevent 0.25 0 ph 1\n");
  EXPECT_THROW(workload::read_trace(out_of_order), wsim::util::CheckError);
  std::istringstream unknown_directive(
      "WSIM-TRACE 1\nduration 1\nflavor vanilla\n");
  EXPECT_THROW(workload::read_trace(unknown_directive), wsim::util::CheckError);
}

// ---------------------------------------------------------------------------
// Autoscaler control law.

TEST(Autoscaler, ScaleUpIsSizedByBacklogAndClamped) {
  cluster::AutoscalerConfig cfg;
  cfg.max_workers = 8;
  cfg.target_backlog_seconds = 5e-3;
  // 1 GCUPS device: 1e9 cells/s, so the target backlog is 5e6 cells.
  cluster::Autoscaler scaler(cfg, 1.0);
  const auto up = scaler.decide(0.0, 20'000'000, 1);
  EXPECT_DOUBLE_EQ(up.backlog_seconds, 20e-3);
  EXPECT_EQ(up.delta, 3);  // ceil(20e6 / 5e6) = 4 workers wanted

  // Far beyond capacity the step clamps at max_workers.
  cluster::Autoscaler fresh(cfg, 1.0);
  EXPECT_EQ(fresh.decide(0.0, 1'000'000'000, 1).delta, 7);
}

TEST(Autoscaler, CooldownAndHysteresisPreventFlapping) {
  cluster::AutoscalerConfig cfg;
  cfg.target_backlog_seconds = 5e-3;
  cfg.cooldown_seconds = 20e-3;
  cfg.scale_down_after = 2;
  cluster::Autoscaler scaler(cfg, 1.0);
  EXPECT_GT(scaler.decide(0.0, 20'000'000, 1).delta, 0);
  // Still overloaded, but inside the cooldown: hold.
  EXPECT_EQ(scaler.decide(5e-3, 20'000'000, 4).delta, 0);
  // Backlog in the dead band between low watermark and target (10e6 cells
  // over 4 GCUPS-equivalent workers = 2.5 ms against the [1.25, 5) ms
  // band): hold forever, no matter how many ticks pass.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(scaler.decide(30e-3 + i * 1e-3, 10'000'000, 4).delta, 0);
  }
  // Below the low watermark: the first tick arms the streak, the second
  // (cooled down) drains one worker.
  EXPECT_EQ(scaler.decide(50e-3, 100'000, 4).delta, 0);
  EXPECT_EQ(scaler.decide(51e-3, 100'000, 4).delta, -1);
  // Min workers is a floor for scale-down.
  cluster::Autoscaler floor_scaler(cfg, 1.0);
  EXPECT_EQ(floor_scaler.decide(0.0, 0, 1).delta, 0);
  EXPECT_EQ(floor_scaler.decide(1e-3, 0, 1).delta, 0);
  EXPECT_EQ(floor_scaler.decide(2e-3, 0, 1).delta, 0);
}

TEST(Autoscaler, DisabledReportsTheSignalButNeverActs) {
  cluster::AutoscalerConfig cfg;
  cfg.enabled = false;
  cluster::Autoscaler scaler(cfg, 1.0);
  const auto decision = scaler.decide(0.0, 1'000'000'000, 1);
  EXPECT_EQ(decision.delta, 0);
  EXPECT_GT(decision.backlog_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// DeviceWorker lifecycle.

TEST(FleetMembership, LifecycleStatesDeriveFromTheClock) {
  fleet::FleetConfig cfg;
  fleet::WorkerConfig wc;
  wc.device = wsim::simt::make_k1200();
  cfg.workers = {wc};
  cfg.join_warmup_seconds = 2e-3;
  fleet::FleetExecutor executor(std::move(cfg));

  // The initial fleet is active at t=0, warmup notwithstanding.
  EXPECT_EQ(executor.state(0, 0.0), fleet::WorkerState::kActive);

  const fleet::DeviceId joined = executor.join(wc, 1e-3);
  EXPECT_EQ(joined, 1U);
  EXPECT_EQ(executor.size(), 2U);
  EXPECT_EQ(executor.state(joined, 1.5e-3), fleet::WorkerState::kJoining);
  EXPECT_EQ(executor.state(joined, 3.5e-3), fleet::WorkerState::kActive);

  executor.drain(joined, 4e-3);
  EXPECT_EQ(executor.state(joined, 4e-3), fleet::WorkerState::kDraining);
  executor.drain(joined, 4e-3);  // idempotent

  executor.retire(joined, 5e-3);
  EXPECT_EQ(executor.state(joined, 5e-3), fleet::WorkerState::kRetired);
  EXPECT_THROW(executor.retire(joined, 6e-3), wsim::util::CheckError);
  EXPECT_THROW(executor.drain(joined, 6e-3), wsim::util::CheckError);

  const auto stats = executor.stats();
  EXPECT_EQ(stats.joins, 1U);
  EXPECT_EQ(stats.drains, 1U);
  EXPECT_EQ(stats.retires, 1U);
  ASSERT_EQ(stats.devices.size(), 2U);
  EXPECT_EQ(stats.devices[0].id, 0U);
  EXPECT_EQ(stats.devices[1].id, 1U);
  EXPECT_EQ(stats.devices[1].joined_at, 1e-3);
  EXPECT_EQ(stats.devices[1].state, fleet::WorkerState::kRetired);
}

TEST(FleetMembership, ChurnIsBitIdenticalToStaticFleetUnderFaults) {
  const auto dataset = small_dataset();
  const auto batches = workload::sw_rebatch(dataset, 2);
  ASSERT_GE(batches.size(), 3U);

  // Churn run: start with one K1200, join a Titan X mid-run, then drain
  // and retire it — all while deterministic slowdown faults fire.
  fleet::FleetConfig cfg;
  fleet::WorkerConfig k1200;
  k1200.device = wsim::simt::make_k1200();
  fleet::WorkerConfig titan;
  titan.device = wsim::simt::make_titan_x();
  cfg.workers = {k1200};
  cfg.join_warmup_seconds = 1e-3;
  cfg.faults.seed = 3;
  cfg.faults.slowdown_prob = 0.5;
  fleet::FleetExecutor executor(std::move(cfg));

  // Reference: the same batches on a fixed single device, no fleet.
  const auto device = wsim::simt::make_k1200();
  const wsim::kernels::SwRunner runner(wsim::kernels::CommMode::kSharedMemory);

  double t = 0.0;
  fleet::DeviceId joined = 0;
  for (std::size_t i = 0; i < batches.size(); ++i) {
    if (i == 1) {
      joined = executor.join(titan, t);
    }
    if (i + 1 == batches.size()) {
      executor.drain(joined, t);
      executor.retire(joined, executor.free_at(joined));
    }
    const auto executed = executor.execute_sw(batches[i], t, {});
    wsim::kernels::SwRunOptions opt;
    opt.collect_outputs = true;
    const auto direct = runner.run_batch(device, batches[i], opt);
    ASSERT_EQ(executed.result.outputs.size(), direct.outputs.size());
    for (std::size_t j = 0; j < direct.outputs.size(); ++j) {
      EXPECT_EQ(executed.result.outputs[j].best_score,
                direct.outputs[j].best_score)
          << i << "," << j;
      EXPECT_EQ(executed.result.outputs[j].alignment.cigar,
                direct.outputs[j].alignment.cigar)
          << i << "," << j;
    }
    t += 2e-3;
  }

  const auto stats = executor.stats();
  EXPECT_EQ(stats.joins, 1U);
  EXPECT_EQ(stats.retires, 1U);
  // Nothing dropped, nothing double-executed: per-device batch counts sum
  // to exactly the dispatched batches.
  std::size_t batches_run = 0;
  for (const auto& d : stats.devices) {
    batches_run += d.batches;
  }
  EXPECT_EQ(batches_run, batches.size());
  EXPECT_EQ(stats.dispatches, batches.size());
}

TEST(FleetMembership, DrainStopsNewPlacementsButKeepsQueuedWork) {
  const auto dataset = small_dataset();
  const auto batches = workload::sw_rebatch(dataset, 2);
  ASSERT_GE(batches.size(), 4U);

  fleet::FleetConfig cfg;
  fleet::WorkerConfig wc;
  wc.device = wsim::simt::make_k1200();
  cfg.workers = {wc, wc};
  cfg.policy = fleet::PlacementPolicy::kRoundRobin;
  fleet::FleetExecutor executor(std::move(cfg));
  fleet::ExecOptions opt;
  opt.collect_outputs = false;

  // Two batches land on each worker's timeline.
  (void)executor.execute_sw(batches[0], 0.0, opt);
  (void)executor.execute_sw(batches[1], 0.0, opt);
  const std::size_t on_zero_before = executor.stats().devices[0].batches;
  EXPECT_EQ(on_zero_before, 1U);

  executor.drain(0, 0.0);
  for (std::size_t i = 2; i < batches.size(); ++i) {
    const auto executed = executor.execute_sw(batches[i], 0.0, opt);
    EXPECT_EQ(executed.exec.device_index, 1) << i;
  }

  const auto stats = executor.stats();
  // The drained worker kept (and finished) its queued batch — exactly the
  // one it had — and took nothing new.
  EXPECT_EQ(stats.devices[0].batches, on_zero_before);
  EXPECT_EQ(stats.devices[0].batches + stats.devices[1].batches,
            batches.size());
  EXPECT_GT(executor.free_at(0), 0.0);  // its timeline ran real work
}

TEST(FleetMembership, RetiringAQuarantinedWorkerRequeuesNothing) {
  const auto dataset = small_dataset();
  const auto batches = workload::sw_rebatch(dataset, 6);
  ASSERT_GE(batches.size(), 2U);

  fleet::FleetConfig cfg;
  fleet::WorkerConfig broken;
  broken.device = wsim::simt::make_k1200();
  broken.max_block_cycles = 1;  // every launch blows the watchdog budget
  fleet::WorkerConfig healthy;
  healthy.device = wsim::simt::make_k1200();
  cfg.workers = {broken, healthy};
  cfg.policy = fleet::PlacementPolicy::kRoundRobin;
  cfg.retry.unhealthy_after = 1;  // first timeout quarantines
  fleet::FleetExecutor executor(std::move(cfg));

  const auto first = executor.execute_sw(batches[0], 0.0, {});
  EXPECT_EQ(first.exec.device_index, 1);
  const auto mid = executor.stats();
  EXPECT_GE(mid.devices[0].quarantines, 1U);
  EXPECT_EQ(executor.state(0, 1e-6), fleet::WorkerState::kQuarantined);
  const std::size_t requeues_before = mid.requeues;
  const std::size_t dispatches_before = mid.dispatches;

  // Retiring the quarantined worker is pure bookkeeping: no requeues, no
  // new dispatches, nothing in limbo.
  executor.retire(0, 1e-6);
  const auto after = executor.stats();
  EXPECT_EQ(after.requeues, requeues_before);
  EXPECT_EQ(after.dispatches, dispatches_before);
  EXPECT_EQ(after.devices[0].batches, 0U);
  EXPECT_EQ(after.devices[0].state, fleet::WorkerState::kRetired);

  // The survivor carries the rest.
  const auto second = executor.execute_sw(batches[1], 1e-3, {});
  EXPECT_EQ(second.exec.device_index, 1);
}

TEST(FleetMembership, EveryWorkerRetiredIsAHardError) {
  const auto dataset = small_dataset();
  const auto batches = workload::sw_rebatch(dataset, 6);
  fleet::FleetConfig cfg;
  fleet::WorkerConfig wc;
  wc.device = wsim::simt::make_k1200();
  cfg.workers = {wc};
  fleet::FleetExecutor executor(std::move(cfg));
  executor.retire(0, 0.0);
  fleet::ExecOptions opt;
  opt.collect_outputs = false;
  EXPECT_THROW((void)executor.execute_sw(batches[0], 0.0, opt),
               wsim::util::CheckError);
}

// ---------------------------------------------------------------------------
// ClusterSim end to end.

cluster::ClusterConfig small_cluster_config() {
  cluster::ClusterConfig cfg;
  cfg.worker.device = wsim::simt::make_k1200();
  cfg.autoscaler.max_workers = 4;
  cfg.control_interval_seconds = 1e-3;
  for (const char* name : {"alpha", "beta"}) {
    wsim::serve::TenantConfig tenant;
    tenant.name = name;
    tenant.slo_seconds = 20e-3;
    cfg.tenants.push_back(std::move(tenant));
  }
  return cfg;
}

TEST(ClusterSim, ReplayIsDeterministic) {
  const auto dataset = small_dataset();
  auto trace_cfg = two_tenant_trace_config();
  trace_cfg.tenants[0].rate_hz = 20000.0;
  trace_cfg.tenants[1].rate_hz = 20000.0;
  const auto trace = workload::generate_trace(trace_cfg);
  const auto cfg = small_cluster_config();

  const auto first = cluster::run_cluster(dataset, trace, cfg);
  const auto second = cluster::run_cluster(dataset, trace, cfg);
  std::ostringstream a, b;
  cluster::write_cluster_json(a, first);
  cluster::write_cluster_json(b, second);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(first.service.completed(), first.service.submitted());
  EXPECT_EQ(first.service.completed(), trace.events.size());

  // A trace that round-trips through the file format replays to the very
  // same report — the CI smoke's zero-drift contract.
  std::stringstream file;
  workload::write_trace(file, trace);
  const auto reloaded = workload::read_trace(file);
  const auto third = cluster::run_cluster(dataset, reloaded, cfg);
  std::ostringstream c;
  cluster::write_cluster_json(c, third);
  EXPECT_EQ(a.str(), c.str());
}

TEST(ClusterSim, AutoscalerJoinsOnBurstsAndDrainsAfter) {
  const auto dataset = small_dataset();
  auto trace_cfg = two_tenant_trace_config();
  trace_cfg.duration_seconds = 0.2;
  trace_cfg.tenants[0].rate_hz = 10000.0;
  trace_cfg.tenants[1].rate_hz = 10000.0;
  const auto trace = workload::generate_trace(trace_cfg);
  const auto cfg = small_cluster_config();

  const auto report = cluster::run_cluster(dataset, trace, cfg);
  EXPECT_GT(report.fleet.joins, 0U);
  EXPECT_GT(report.fleet.drains, 0U);
  EXPECT_GT(report.peak_workers, 1U);
  EXPECT_EQ(report.service.completed(), trace.events.size());
  EXPECT_GT(report.goodput_rps, 0.0);
  EXPECT_GT(report.device_hours, 0.0);
  ASSERT_EQ(report.members.size(), 1U + report.fleet.joins);
  // Retired members billed a shorter span than the run.
  for (const auto& member : report.members) {
    if (member.retired) {
      EXPECT_LT(member.retired_at - member.joined_at,
                report.duration_seconds);
    }
  }
  // Every tenant got a breakdown with its own latency sample.
  ASSERT_EQ(report.service.tenants.size(), 2U);
  for (const auto& tenant : report.service.tenants) {
    EXPECT_GT(tenant.completed, 0U);
    EXPECT_GT(tenant.latency.p99, 0.0);
    EXPECT_EQ(tenant.slo_seconds, 20e-3);
  }
}

TEST(ClusterSim, DisabledAutoscalerKeepsTheFixedFleet) {
  const auto dataset = small_dataset();
  const auto trace = workload::generate_trace(two_tenant_trace_config());
  auto cfg = small_cluster_config();
  cfg.autoscaler.enabled = false;
  cfg.initial_workers = 2;

  const auto report = cluster::run_cluster(dataset, trace, cfg);
  EXPECT_EQ(report.fleet.joins, 0U);
  EXPECT_EQ(report.fleet.drains, 0U);
  EXPECT_EQ(report.members.size(), 2U);
  EXPECT_EQ(report.peak_workers, 2U);
  EXPECT_EQ(report.service.completed(), trace.events.size());
}

TEST(ClusterSim, JsonCarriesClusterAndSharedDeviceSchema) {
  const auto dataset = small_dataset();
  const auto trace = workload::generate_trace(two_tenant_trace_config());
  const auto report =
      cluster::run_cluster(dataset, trace, small_cluster_config());
  std::ostringstream os;
  cluster::write_cluster_json(os, report);
  const std::string json = os.str();
  for (const char* key :
       {"\"cluster\"", "\"device_hours\"", "\"peak_workers\"",
        "\"goodput_rps\"", "\"slo_violation_rate\"",
        "\"cost_per_million_requests\"", "\"tenants\"", "\"devices\"",
        "\"state\"", "\"quarantines\"", "\"joined_at_s\"", "\"joins\"",
        "\"drains\"", "\"retires\"", "\"slo_violation_rate\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
  // "tenants" itself contains "nan" — look for numeric NaN/Inf values.
  EXPECT_EQ(json.find(": nan"), std::string::npos);
  EXPECT_EQ(json.find(": -nan"), std::string::npos);
  EXPECT_EQ(json.find(": inf"), std::string::npos);
}

}  // namespace
