#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "wsim/util/check.hpp"
#include "wsim/util/rng.hpp"
#include "wsim/util/stats.hpp"
#include "wsim/util/table.hpp"

namespace {

using wsim::util::CheckError;
using wsim::util::LinearFit;
using wsim::util::Rng;
using wsim::util::Summary;
using wsim::util::Table;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a() == b() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntCoversWholeRange) {
  Rng rng(9);
  std::vector<bool> seen(8, false);
  for (int i = 0; i < 1000; ++i) {
    seen[static_cast<std::size_t>(rng.uniform_int(0, 7))] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), CheckError);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(17);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.categorical(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical(std::vector<double>{}), CheckError);
  EXPECT_THROW(rng.categorical(std::vector<double>{0.0, 0.0}), CheckError);
  EXPECT_THROW(rng.categorical(std::vector<double>{1.0, -1.0}), CheckError);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Stats, SummarizeBasics) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  const Summary s = wsim::util::summarize(values);
  EXPECT_EQ(s.count, 4U);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, SummarizeEmptyIsZero) {
  const Summary s = wsim::util::summarize({});
  EXPECT_EQ(s.count, 0U);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, LinearFitRecoversExactLine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(3.5 * i + 2.0);
  }
  const LinearFit fit = wsim::util::linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.5, 1e-12);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, LinearFitHandlesNoise) {
  Rng rng(23);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(i);
    ys.push_back(7.0 * i + 100.0 + rng.normal(0.0, 0.5));
  }
  const LinearFit fit = wsim::util::linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 7.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(Stats, LinearFitRejectsDegenerateInput) {
  EXPECT_THROW(wsim::util::linear_fit(std::vector<double>{1.0},
                                      std::vector<double>{2.0}),
               CheckError);
  EXPECT_THROW(wsim::util::linear_fit(std::vector<double>{1.0, 1.0},
                                      std::vector<double>{2.0, 3.0}),
               CheckError);
  EXPECT_THROW(wsim::util::linear_fit(std::vector<double>{1.0, 2.0},
                                      std::vector<double>{2.0}),
               CheckError);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> values = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(wsim::util::percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(wsim::util::percentile(values, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(wsim::util::percentile(values, 50.0), 2.5);
}

TEST(Stats, RelativeError) {
  EXPECT_NEAR(wsim::util::relative_error(161.0, 189.0), -0.148, 0.001);
  EXPECT_THROW(wsim::util::relative_error(1.0, 0.0), CheckError);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"kernel", "GCUPs"});
  t.add_row({"SW1", "1.00"});
  t.add_row({"SW2", "1.20"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("kernel"), std::string::npos);
  EXPECT_NE(out.find("SW2"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2U);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, CsvEscapesCommas) {
  Table t({"name", "value"});
  t.add_row({"a,b", "1"});
  std::ostringstream oss;
  t.write_csv(oss);
  EXPECT_NE(oss.str().find("\"a,b\""), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(wsim::util::format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(wsim::util::format_percent(0.562), "56.2%");
}

}  // namespace
