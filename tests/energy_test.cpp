#include <gtest/gtest.h>

#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/energy.hpp"
#include "wsim/util/check.hpp"
#include "wsim/util/rng.hpp"

namespace {

using wsim::kernels::CommMode;
using wsim::simt::BlockResult;
using wsim::simt::EnergyEstimate;
using wsim::simt::EnergyTable;
using wsim::simt::Op;

const wsim::simt::DeviceSpec kDev = wsim::simt::make_k1200();

BlockResult fake_block() {
  BlockResult b;
  b.instructions = 100;
  b.op_counts[static_cast<std::size_t>(Op::kShflUp)] = 10;
  b.op_counts[static_cast<std::size_t>(Op::kLds)] = 5;
  b.op_counts[static_cast<std::size_t>(Op::kSts)] = 5;
  b.op_counts[static_cast<std::size_t>(Op::kBar)] = 2;
  b.smem_transactions = 12;
  b.gmem_transactions = 3;
  b.barriers = 2;
  return b;
}

TEST(Energy, BlockEnergyAddsUpByCategory) {
  EnergyTable t;
  t.alu_pj = 1.0;
  t.shuffle_pj = 10.0;
  t.smem_transaction_pj = 100.0;
  t.gmem_transaction_pj = 1000.0;
  t.sync_pj = 7.0;
  const EnergyEstimate e = wsim::simt::block_energy(fake_block(), t);
  // 100 instrs - 10 shfl - 10 smem - 0 gmem - 2 bar = 78 ALU-like.
  EXPECT_DOUBLE_EQ(e.dynamic_pj, 78 * 1.0 + 10 * 10.0 + 12 * 100.0 + 3 * 1000.0 +
                                     2 * 7.0);
  EXPECT_DOUBLE_EQ(e.static_pj, 0.0);
}

TEST(Energy, LaunchEnergyScalesBlocksAndTime) {
  EnergyTable t;
  const EnergyEstimate one = wsim::simt::launch_energy(fake_block(), 1, 0.0, kDev, t);
  const EnergyEstimate ten = wsim::simt::launch_energy(fake_block(), 10, 0.0, kDev, t);
  EXPECT_DOUBLE_EQ(ten.dynamic_pj, 10 * one.dynamic_pj);
  const EnergyEstimate timed =
      wsim::simt::launch_energy(fake_block(), 1, 1e-3, kDev, t);
  // 0.55 W/SM * 4 SMs * 1 ms = 2.2 mJ.
  EXPECT_NEAR(timed.static_pj * 1e-12, 2.2e-3, 1e-6);
}

TEST(Energy, PerCellHelper) {
  EnergyEstimate e;
  e.dynamic_pj = 500.0;
  e.static_pj = 500.0;
  EXPECT_DOUBLE_EQ(wsim::simt::energy_per_cell_pj(e, 100), 10.0);
  EXPECT_THROW(wsim::simt::energy_per_cell_pj(e, 0), wsim::util::CheckError);
}

TEST(Energy, MemoryHierarchyOrdering) {
  const EnergyTable t;
  EXPECT_LT(t.alu_pj, t.shuffle_pj);
  EXPECT_LT(t.shuffle_pj, t.smem_transaction_pj);
  EXPECT_LT(t.smem_transaction_pj, t.gmem_transaction_pj);
}

std::string random_dna(wsim::util::Rng& rng, int len) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = "ACGT"[rng.uniform_int(0, 3)];
  }
  return s;
}

TEST(Energy, ShuffleDesignsUseLessEnergyPerCell) {
  // The headline energy claim: replacing shared-memory traffic with
  // register shuffles cuts dynamic energy per cell for both algorithms.
  wsim::util::Rng rng(99);
  const std::string target = random_dna(rng, 128);
  const wsim::workload::SwBatch sw_batch = {{target.substr(0, 96), target}};
  const auto sw1 =
      wsim::kernels::SwRunner(CommMode::kSharedMemory).run_batch(kDev, sw_batch);
  const auto sw2 =
      wsim::kernels::SwRunner(CommMode::kShuffle).run_batch(kDev, sw_batch);
  const EnergyTable table;
  const double e1 = wsim::simt::block_energy(sw1.run.launch.representative, table)
                        .dynamic_pj / static_cast<double>(sw1.run.cells);
  const double e2 = wsim::simt::block_energy(sw2.run.launch.representative, table)
                        .dynamic_pj / static_cast<double>(sw2.run.cells);
  EXPECT_LT(e2, e1);

  wsim::align::PairHmmTask task;
  task.hap = target;
  task.read = target.substr(0, 120);
  task.base_quals.assign(120, 30);
  task.ins_quals.assign(120, 45);
  task.del_quals.assign(120, 45);
  const auto ph1 =
      wsim::kernels::PhRunner(CommMode::kSharedMemory).run_batch(kDev, {task});
  const auto ph2 =
      wsim::kernels::PhRunner(CommMode::kShuffle).run_batch(kDev, {task});
  const double p1 = wsim::simt::block_energy(ph1.run.launch.representative, table)
                        .dynamic_pj / static_cast<double>(ph1.run.cells);
  const double p2 = wsim::simt::block_energy(ph2.run.launch.representative, table)
                        .dynamic_pj / static_cast<double>(ph2.run.cells);
  EXPECT_LT(p2, p1);
}

}  // namespace
