// Tests for the two post-paper optimizations the library ships: transfer
// overlap (CUDA-streams-style) and LPT batch sorting.

#include <gtest/gtest.h>

#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/util/rng.hpp"
#include "wsim/workload/batching.hpp"
#include "wsim/workload/generator.hpp"

namespace {

using wsim::kernels::CommMode;
using wsim::kernels::SwRunner;
using wsim::kernels::SwRunOptions;

const wsim::simt::DeviceSpec kDev = wsim::simt::make_k1200();

std::string random_dna(wsim::util::Rng& rng, int len) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = "ACGT"[rng.uniform_int(0, 3)];
  }
  return s;
}

TEST(Streams, OverlapNeverSlower) {
  wsim::util::Rng rng(3);
  wsim::workload::SwBatch batch;
  for (int t = 0; t < 8; ++t) {
    batch.push_back({random_dna(rng, 64), random_dna(rng, 96)});
  }
  const SwRunner runner(CommMode::kShuffle);
  SwRunOptions serial;
  serial.mode = wsim::simt::ExecMode::kCachedByShape;
  SwRunOptions streams = serial;
  streams.overlap_transfers = true;
  const auto a = runner.run_batch(kDev, batch, serial);
  const auto b = runner.run_batch(kDev, batch, streams);
  EXPECT_LE(b.run.launch.total_seconds(), a.run.launch.total_seconds());
  EXPECT_GE(b.run.gcups_total(), a.run.gcups_total());
  // Kernel-only time is identical: overlap only changes wall clock.
  EXPECT_DOUBLE_EQ(a.run.launch.kernel_seconds, b.run.launch.kernel_seconds);
}

TEST(Streams, OverlapHidesTheSmallerPhase) {
  wsim::simt::LaunchResult r;
  r.kernel_seconds = 10e-3;
  r.h2d_seconds = 3e-3;
  r.d2h_seconds = 1e-3;
  r.transfer_seconds = r.h2d_seconds + r.d2h_seconds;
  r.overhead_seconds = 1e-3;
  r.transfers_overlapped = false;
  EXPECT_DOUBLE_EQ(r.total_seconds(), 15e-3);
  // With streams only the h2d copy hides under the kernel; d2h drains after.
  r.transfers_overlapped = true;
  EXPECT_DOUBLE_EQ(r.total_seconds(), 12e-3);
}

TEST(Streams, OverlapBoundByLargerH2d) {
  wsim::simt::LaunchResult r;
  r.kernel_seconds = 2e-3;
  r.h2d_seconds = 8e-3;
  r.d2h_seconds = 1e-3;
  r.transfer_seconds = r.h2d_seconds + r.d2h_seconds;
  r.transfers_overlapped = true;
  // The copy dominates: total = h2d + d2h, the kernel hides entirely.
  EXPECT_DOUBLE_EQ(r.total_seconds(), 9e-3);
}

TEST(Batching, SortByCellsIsDescendingAndStable) {
  wsim::util::Rng rng(5);
  wsim::workload::SwBatch batch;
  for (int t = 0; t < 20; ++t) {
    batch.push_back({random_dna(rng, static_cast<int>(rng.uniform_int(8, 120))),
                     random_dna(rng, static_cast<int>(rng.uniform_int(8, 120)))});
  }
  auto sorted = batch;
  wsim::workload::sort_by_cells_desc(sorted);
  ASSERT_EQ(sorted.size(), batch.size());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_GE(sorted[i - 1].cells(), sorted[i].cells());
  }
  EXPECT_EQ(wsim::workload::batch_cells(sorted), wsim::workload::batch_cells(batch));
}

TEST(Batching, LptOrderNeverSlowerOnHeterogeneousBatch) {
  // A batch with one giant task buried at the end: dispatched last it
  // straggles; LPT order lets short tasks fill in around it.
  wsim::util::Rng rng(7);
  wsim::workload::SwBatch batch;
  for (int t = 0; t < 7; ++t) {
    batch.push_back({random_dna(rng, 40), random_dna(rng, 40)});
  }
  batch.push_back({random_dna(rng, 320), random_dna(rng, 416)});

  const SwRunner runner(CommMode::kShuffle);
  SwRunOptions opt;
  opt.mode = wsim::simt::ExecMode::kCachedByShape;
  const auto unsorted = runner.run_batch(kDev, batch, opt);
  auto sorted_batch = batch;
  wsim::workload::sort_by_cells_desc(sorted_batch);
  const auto sorted = runner.run_batch(kDev, sorted_batch, opt);
  EXPECT_LE(sorted.run.launch.timing.cycles, unsorted.run.launch.timing.cycles);
}

TEST(Batching, PhSortKeepsTaskSetIntact) {
  wsim::workload::GeneratorConfig cfg;
  cfg.regions = 2;
  cfg.ph_tasks_per_region_mean = 20;
  const auto ds = wsim::workload::generate_dataset(cfg);
  auto batch = ds.regions[0].ph_tasks;
  const auto before = wsim::workload::batch_cells(batch);
  wsim::workload::sort_by_cells_desc(batch);
  EXPECT_EQ(wsim::workload::batch_cells(batch), before);
  for (std::size_t i = 1; i < batch.size(); ++i) {
    EXPECT_GE(wsim::workload::cells(batch[i - 1]), wsim::workload::cells(batch[i]));
  }
}

}  // namespace
