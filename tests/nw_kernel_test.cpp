#include <gtest/gtest.h>

#include <string>

#include "wsim/align/needleman_wunsch.hpp"
#include "wsim/kernels/nw_kernels.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/util/rng.hpp"

namespace {

using wsim::align::SwParams;
using wsim::kernels::CommMode;
using wsim::kernels::NwRunner;
using wsim::kernels::NwRunOptions;
using wsim::workload::SwBatch;

const wsim::simt::DeviceSpec kDev = wsim::simt::make_k1200();

SwParams simple_params() {
  SwParams p;
  p.match = 10;
  p.mismatch = -8;
  p.gap_open = -12;
  p.gap_extend = -2;
  return p;
}

NwRunOptions with_outputs() {
  NwRunOptions opt;
  opt.collect_outputs = true;
  return opt;
}

std::string random_dna(wsim::util::Rng& rng, int len) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = "ACGT"[rng.uniform_int(0, 3)];
  }
  return s;
}

class NwKernelModes : public ::testing::TestWithParam<CommMode> {};

TEST_P(NwKernelModes, KnownAlignments) {
  const SwParams p = simple_params();
  const NwRunner runner(GetParam(), p);
  const SwBatch batch = {
      {"ACGTACGT", "ACGTACGT"},
      {"CGTA", "AACGTATT"},
      {"AAAAATTTTT", "AAAAAGGGGTTTTT"},
      {"A", "T"},
  };
  const auto result = runner.run_batch(kDev, batch, with_outputs());
  ASSERT_EQ(result.scores.size(), batch.size());
  for (std::size_t t = 0; t < batch.size(); ++t) {
    EXPECT_EQ(result.scores[t],
              wsim::align::nw_score(batch[t].query, batch[t].target, p))
        << "task " << t;
  }
}

TEST_P(NwKernelModes, MultiBandAndOddLengths) {
  wsim::util::Rng rng(23);
  const SwParams p = simple_params();
  const NwRunner runner(GetParam(), p);
  SwBatch batch;
  const std::pair<int, int> shapes[] = {{33, 31}, {65, 70}, {1, 1},
                                        {100, 40}, {40, 100}, {96, 96}};
  for (const auto& [m, n] : shapes) {
    batch.push_back({random_dna(rng, m), random_dna(rng, n)});
  }
  const auto result = runner.run_batch(kDev, batch, with_outputs());
  for (std::size_t t = 0; t < batch.size(); ++t) {
    EXPECT_EQ(result.scores[t],
              wsim::align::nw_score(batch[t].query, batch[t].target, p))
        << "task " << t << " " << batch[t].query.size() << "x"
        << batch[t].target.size();
  }
}

TEST_P(NwKernelModes, RandomizedMutatedPairs) {
  wsim::util::Rng rng(29);
  const SwParams p = simple_params();
  const NwRunner runner(GetParam(), p);
  SwBatch batch;
  for (int t = 0; t < 10; ++t) {
    const std::string target = random_dna(rng, static_cast<int>(rng.uniform_int(10, 120)));
    std::string query = target;
    for (char& ch : query) {
      if (rng.uniform01() < 0.08) {
        ch = "ACGT"[rng.uniform_int(0, 3)];
      }
    }
    if (query.size() > 6 && rng.uniform01() < 0.5) {
      query.erase(query.size() / 2, 3);  // deletion
    }
    batch.push_back({std::move(query), target});
  }
  const auto result = runner.run_batch(kDev, batch, with_outputs());
  for (std::size_t t = 0; t < batch.size(); ++t) {
    EXPECT_EQ(result.scores[t],
              wsim::align::nw_score(batch[t].query, batch[t].target, p))
        << "task " << t;
  }
}

TEST_P(NwKernelModes, GatkParameters) {
  wsim::util::Rng rng(31);
  const SwParams p;  // defaults
  const NwRunner runner(GetParam(), p);
  const std::string target = random_dna(rng, 80);
  std::string query = target.substr(4, 70);
  const SwBatch batch = {{query, target}};
  const auto result = runner.run_batch(kDev, batch, with_outputs());
  EXPECT_EQ(result.scores[0], wsim::align::nw_score(query, target, p));
}

INSTANTIATE_TEST_SUITE_P(Designs, NwKernelModes,
                         ::testing::Values(CommMode::kSharedMemory,
                                           CommMode::kShuffle),
                         [](const ::testing::TestParamInfo<CommMode>& info) {
                           return info.param == CommMode::kSharedMemory ? "NW1"
                                                                        : "NW2";
                         });

TEST(NwKernelDesign, SameTradeOffAsSw) {
  const NwRunner nw1(CommMode::kSharedMemory);
  const NwRunner nw2(CommMode::kShuffle);
  EXPECT_GT(nw1.kernel().smem_bytes, 0);
  EXPECT_EQ(nw2.kernel().smem_bytes, 0);
  wsim::util::Rng rng(37);
  const SwBatch batch = {{random_dna(rng, 64), random_dna(rng, 64)}};
  const auto r1 = nw1.run_batch(kDev, batch);
  const auto r2 = nw2.run_batch(kDev, batch);
  EXPECT_LT(r2.run.launch.representative.cycles,
            r1.run.launch.representative.cycles);
}

TEST(NwKernelDesign, RunnerValidation) {
  const NwRunner runner(CommMode::kShuffle);
  EXPECT_THROW(runner.run_batch(kDev, {}, {}), wsim::util::CheckError);
  NwRunOptions opt;
  opt.collect_outputs = true;
  opt.mode = wsim::simt::ExecMode::kCachedByShape;
  EXPECT_THROW(runner.run_batch(kDev, {{"AC", "GT"}}, opt), wsim::util::CheckError);
}

}  // namespace
