#include <gtest/gtest.h>

#include <string>

#include "wsim/align/smith_waterman.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/util/check.hpp"
#include "wsim/util/rng.hpp"
#include "wsim/workload/generator.hpp"

namespace {

using wsim::align::SwFill;
using wsim::align::SwParams;
using wsim::kernels::CommMode;
using wsim::kernels::SwBatchResult;
using wsim::kernels::SwRunner;
using wsim::kernels::SwRunOptions;
using wsim::workload::SwBatch;
using wsim::workload::SwTask;

const wsim::simt::DeviceSpec kDev = wsim::simt::make_k1200();

SwParams simple_params() {
  SwParams p;
  p.match = 10;
  p.mismatch = -8;
  p.gap_open = -12;
  p.gap_extend = -2;
  return p;
}

SwRunOptions with_outputs() {
  SwRunOptions opt;
  opt.collect_outputs = true;
  return opt;
}

std::string random_dna(wsim::util::Rng& rng, int len) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = kBases[rng.uniform_int(0, 3)];
  }
  return s;
}

/// Checks one device output against the host reference, cell by cell.
void expect_matches_reference(const SwTask& task, const SwParams& params,
                              const wsim::kernels::SwTaskOutput& out,
                              const std::string& label) {
  const SwFill ref = wsim::align::sw_fill(task.query, task.target, params);
  ASSERT_EQ(out.btrack.rows(), ref.btrack.rows()) << label;
  ASSERT_EQ(out.btrack.cols(), ref.btrack.cols()) << label;
  for (std::size_t i = 1; i < ref.btrack.rows(); ++i) {
    for (std::size_t j = 1; j < ref.btrack.cols(); ++j) {
      ASSERT_EQ(out.btrack(i, j), ref.btrack(i, j))
          << label << " btrack mismatch at (" << i << ", " << j << ")";
    }
  }
  EXPECT_EQ(out.best_score, ref.best_score) << label;
  EXPECT_EQ(out.best_i, ref.best_i) << label;
  EXPECT_EQ(out.best_j, ref.best_j) << label;
  const auto ref_aln =
      wsim::align::sw_backtrace(ref.btrack, ref.best_i, ref.best_j, ref.best_score);
  EXPECT_EQ(out.alignment.cigar, ref_aln.cigar) << label;
  EXPECT_EQ(out.alignment.score, ref_aln.score) << label;
  EXPECT_EQ(out.alignment.query_begin, ref_aln.query_begin) << label;
  EXPECT_EQ(out.alignment.target_begin, ref_aln.target_begin) << label;
}

class SwKernelModes : public ::testing::TestWithParam<CommMode> {};

TEST_P(SwKernelModes, IdenticalShortSequences) {
  const SwParams p = simple_params();
  const SwRunner runner(GetParam(), p);
  const SwBatch batch = {{"ACGTACGT", "ACGTACGT"}};
  const SwBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  ASSERT_EQ(result.outputs.size(), 1U);
  EXPECT_EQ(result.outputs[0].best_score, 80);
  EXPECT_EQ(result.outputs[0].alignment.cigar, "8M");
  expect_matches_reference(batch[0], p, result.outputs[0], "identical");
}

TEST_P(SwKernelModes, SubstringAndGaps) {
  const SwParams p = simple_params();
  const SwRunner runner(GetParam(), p);
  const SwBatch batch = {
      {"CGTA", "AACGTATT"},
      {"AAAAACCCCC", "AAAAAGGCCCCC"},
      {"AAAAAGGCCCCC", "AAAAACCCCC"},
      {"AAAA", "TTTT"},
  };
  const SwBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  ASSERT_EQ(result.outputs.size(), batch.size());
  EXPECT_EQ(result.outputs[0].alignment.cigar, "4M");
  EXPECT_EQ(result.outputs[1].alignment.cigar, "5M2D5M");
  EXPECT_EQ(result.outputs[2].alignment.cigar, "5M2I5M");
  EXPECT_EQ(result.outputs[3].best_score, 0);
  for (std::size_t t = 0; t < batch.size(); ++t) {
    expect_matches_reference(batch[t], p, result.outputs[t],
                             "task " + std::to_string(t));
  }
}

TEST_P(SwKernelModes, MultiBandTallMatrix) {
  // M > BSIZE forces multiple bands and exercises the global-memory
  // boundary carry (coarse tiling).
  wsim::util::Rng rng(11);
  const SwParams p = simple_params();
  const SwRunner runner(GetParam(), p);
  const std::string target = random_dna(rng, 90);
  std::string query = target.substr(10, 70);
  query.insert(30, "GGG");  // force an indel
  const SwBatch batch = {{query, target}};
  const SwBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  ASSERT_EQ(result.outputs.size(), 1U);
  expect_matches_reference(batch[0], p, result.outputs[0], "multiband");
}

TEST_P(SwKernelModes, NonMultipleOf32Lengths) {
  wsim::util::Rng rng(13);
  const SwParams p = simple_params();
  const SwRunner runner(GetParam(), p);
  const SwBatch batch = {
      {random_dna(rng, 33), random_dna(rng, 31)},
      {random_dna(rng, 65), random_dna(rng, 47)},
      {random_dna(rng, 1), random_dna(rng, 1)},
      {random_dna(rng, 40), random_dna(rng, 100)},
  };
  const SwBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  for (std::size_t t = 0; t < batch.size(); ++t) {
    expect_matches_reference(batch[t], p, result.outputs[t],
                             "task " + std::to_string(t));
  }
}

TEST_P(SwKernelModes, RandomizedPropertySweep) {
  wsim::util::Rng rng(0xC0FFEE);
  const SwParams p = simple_params();
  const SwRunner runner(GetParam(), p);
  SwBatch batch;
  for (int t = 0; t < 12; ++t) {
    const int n = static_cast<int>(rng.uniform_int(4, 120));
    const std::string target = random_dna(rng, n);
    std::string query;
    if (rng.uniform01() < 0.5) {
      // Mutated substring: realistic alignment shape.
      const int len = static_cast<int>(rng.uniform_int(3, n));
      const auto start =
          static_cast<std::size_t>(rng.uniform_int(0, n - len));
      query = target.substr(start, static_cast<std::size_t>(len));
      for (char& ch : query) {
        if (rng.uniform01() < 0.05) {
          ch = "ACGT"[rng.uniform_int(0, 3)];
        }
      }
    } else {
      query = random_dna(rng, static_cast<int>(rng.uniform_int(3, 90)));
    }
    batch.push_back({std::move(query), target});
  }
  const SwBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  for (std::size_t t = 0; t < batch.size(); ++t) {
    expect_matches_reference(batch[t], p, result.outputs[t],
                             "task " + std::to_string(t));
  }
}

TEST_P(SwKernelModes, GatkDefaultParameters) {
  wsim::util::Rng rng(21);
  const SwParams p;  // GATK NEW_SW_PARAMETERS
  const SwRunner runner(GetParam(), p);
  const std::string target = random_dna(rng, 80);
  std::string query = target.substr(5, 60);
  query[20] = query[20] == 'A' ? 'C' : 'A';
  const SwBatch batch = {{query, target}};
  const SwBatchResult result = runner.run_batch(kDev, batch, with_outputs());
  expect_matches_reference(batch[0], p, result.outputs[0], "gatk-params");
}

INSTANTIATE_TEST_SUITE_P(Designs, SwKernelModes,
                         ::testing::Values(CommMode::kSharedMemory,
                                           CommMode::kShuffle),
                         [](const ::testing::TestParamInfo<CommMode>& info) {
                           return info.param == CommMode::kSharedMemory ? "SW1"
                                                                        : "SW2";
                         });

// --- design-level expectations --------------------------------------------

TEST(SwKernelDesign, ShuffleFreesSharedMemory) {
  const SwRunner sw1(CommMode::kSharedMemory);
  const SwRunner sw2(CommMode::kShuffle);
  EXPECT_GT(sw1.kernel().smem_bytes, 4096);  // line buffers + btrack tile
  EXPECT_EQ(sw2.kernel().smem_bytes, 0);
}

TEST(SwKernelDesign, ShuffleKernelHasNoBarriers) {
  const SwRunner sw2(CommMode::kShuffle);
  for (const auto& ins : sw2.kernel().code) {
    EXPECT_NE(ins.op, wsim::simt::Op::kBar);
    EXPECT_NE(ins.op, wsim::simt::Op::kLds);
    EXPECT_NE(ins.op, wsim::simt::Op::kSts);
  }
}

TEST(SwKernelDesign, SharedKernelHasNoShuffles) {
  const SwRunner sw1(CommMode::kSharedMemory);
  for (const auto& ins : sw1.kernel().code) {
    EXPECT_NE(ins.op, wsim::simt::Op::kShfl);
    EXPECT_NE(ins.op, wsim::simt::Op::kShflUp);
    EXPECT_NE(ins.op, wsim::simt::Op::kShflDown);
    EXPECT_NE(ins.op, wsim::simt::Op::kShflXor);
  }
}

TEST(SwKernelDesign, ShuffleImprovesOccupancy) {
  const SwRunner sw1(CommMode::kSharedMemory);
  const SwRunner sw2(CommMode::kShuffle);
  const auto occ1 = wsim::simt::compute_occupancy(kDev, sw1.kernel());
  const auto occ2 = wsim::simt::compute_occupancy(kDev, sw2.kernel());
  EXPECT_GT(occ2.fraction, occ1.fraction);
}

TEST(SwKernelDesign, ShuffleReducesIterationLatency) {
  wsim::util::Rng rng(31);
  const SwParams p = simple_params();
  const SwBatch batch = {{random_dna(rng, 64), random_dna(rng, 64)}};
  SwRunOptions opt;
  const auto r1 = SwRunner(CommMode::kSharedMemory, p).run_batch(kDev, batch, opt);
  const auto r2 = SwRunner(CommMode::kShuffle, p).run_batch(kDev, batch, opt);
  EXPECT_LT(r2.run.launch.representative.cycles,
            r1.run.launch.representative.cycles);
}

TEST(SwKernelDesign, CachedTimingMatchesFullTiming) {
  wsim::util::Rng rng(41);
  const SwParams p = simple_params();
  const SwRunner runner(CommMode::kShuffle, p);
  SwBatch batch;
  for (int t = 0; t < 6; ++t) {
    batch.push_back({random_dna(rng, 48), random_dna(rng, 48)});
  }
  SwRunOptions full;
  SwRunOptions cached;
  cached.mode = wsim::simt::ExecMode::kCachedByShape;
  const auto a = runner.run_batch(kDev, batch, full);
  const auto b = runner.run_batch(kDev, batch, cached);
  // Identical shapes -> identical block costs -> identical kernel timing.
  EXPECT_EQ(a.run.launch.timing.cycles, b.run.launch.timing.cycles);
}

TEST(SwKernelDesign, RunnerRejectsBadOptions) {
  const SwRunner runner(CommMode::kShuffle);
  SwRunOptions opt;
  opt.collect_outputs = true;
  opt.mode = wsim::simt::ExecMode::kCachedByShape;
  const SwBatch batch = {{"ACGT", "ACGT"}};
  EXPECT_THROW(runner.run_batch(kDev, batch, opt), wsim::util::CheckError);
  EXPECT_THROW(runner.run_batch(kDev, {}, SwRunOptions{}), wsim::util::CheckError);
}

TEST(SwKernelDesign, WorkloadTasksAlignCorrectly) {
  // End-to-end: generator tasks through both kernels, cross-checked.
  wsim::workload::GeneratorConfig cfg;
  cfg.regions = 1;
  cfg.ph_tasks_per_region_mean = 1.0;
  cfg.sw_query_len_min = 40;
  cfg.sw_query_len_max = 80;
  cfg.sw_target_len_min = 60;
  cfg.sw_target_len_max = 100;
  const auto ds = wsim::workload::generate_dataset(cfg);
  const SwParams p;
  SwBatch batch = ds.regions[0].sw_tasks;
  if (batch.size() > 3) {
    batch.resize(3);
  }
  const auto r1 = SwRunner(CommMode::kSharedMemory, p).run_batch(kDev, batch, with_outputs());
  const auto r2 = SwRunner(CommMode::kShuffle, p).run_batch(kDev, batch, with_outputs());
  for (std::size_t t = 0; t < batch.size(); ++t) {
    expect_matches_reference(batch[t], p, r1.outputs[t], "sw1");
    expect_matches_reference(batch[t], p, r2.outputs[t], "sw2");
    EXPECT_EQ(r1.outputs[t].alignment.cigar, r2.outputs[t].alignment.cigar);
  }
}

}  // namespace

namespace {

TEST(SwKernelBsize, MultiWarpDesignAMatchesReference) {
  // BSIZE 64 and 96 use multi-warp blocks: the cross-warp smem line
  // buffers and the wider bands must still be cell-exact.
  wsim::util::Rng rng(77);
  const SwParams p = simple_params();
  for (const int bsize : {64, 96}) {
    const SwRunner runner(CommMode::kSharedMemory, p, bsize);
    SwBatch batch;
    batch.push_back({random_dna(rng, 70), random_dna(rng, 90)});    // < bsize rows
    batch.push_back({random_dna(rng, 130), random_dna(rng, 100)});  // > bsize rows
    const auto result = runner.run_batch(kDev, batch, with_outputs());
    for (std::size_t t = 0; t < batch.size(); ++t) {
      expect_matches_reference(batch[t], p, result.outputs[t],
                               "bsize " + std::to_string(bsize));
    }
  }
}

TEST(SwKernelBsize, ShuffleDesignRejectsMultiWarp) {
  EXPECT_THROW(wsim::kernels::build_sw_kernel(CommMode::kShuffle, {}, 64),
               wsim::util::CheckError);
  EXPECT_THROW(wsim::kernels::build_sw_kernel(CommMode::kSharedMemory, {}, 128),
               wsim::util::CheckError);
  EXPECT_THROW(wsim::kernels::build_sw_kernel(CommMode::kSharedMemory, {}, 48),
               wsim::util::CheckError);
}

TEST(SwKernelBsize, LargerTilesCostOccupancy) {
  const SwRunner b32(CommMode::kSharedMemory, {}, 32);
  const SwRunner b96(CommMode::kSharedMemory, {}, 96);
  const auto occ32 = wsim::simt::compute_occupancy(kDev, b32.kernel());
  const auto occ96 = wsim::simt::compute_occupancy(kDev, b96.kernel());
  EXPECT_GT(occ32.fraction, occ96.fraction);
  EXPECT_GT(b96.kernel().smem_bytes, 4 * b32.kernel().smem_bytes);
}

}  // namespace
