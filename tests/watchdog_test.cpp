#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "wsim/fleet/fleet.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/serve/service.hpp"
#include "wsim/simt/builder.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/engine.hpp"
#include "wsim/simt/interpreter.hpp"
#include "wsim/simt/memory.hpp"
#include "wsim/simt/runtime.hpp"
#include "wsim/simt/watchdog.hpp"
#include "wsim/workload/batching.hpp"
#include "wsim/workload/generator.hpp"

namespace {

using wsim::simt::BlockLaunch;
using wsim::simt::BlockRunOptions;
using wsim::simt::Cmp;
using wsim::simt::DeviceSpec;
using wsim::simt::DType;
using wsim::simt::GlobalMemory;
using wsim::simt::imm_i64;
using wsim::simt::Kernel;
using wsim::simt::KernelBuilder;
using wsim::simt::LaunchOptions;
using wsim::simt::LaunchTimeout;
using wsim::simt::SReg;
using wsim::simt::VReg;

const DeviceSpec kDev = wsim::simt::make_k1200();

/// A kernel whose makespan scales with `trips`: one warp spinning an
/// integer loop, then a store so the work is not dead.
Kernel spin_kernel(long long trips) {
  KernelBuilder kb("spin", 32);
  const SReg out = kb.param();
  const VReg t = kb.tid();
  kb.loop(imm_i64(trips));
  (void)kb.iadd(t, imm_i64(1));
  kb.endloop();
  kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))), t);
  return kb.build();
}

/// Two warps; only the first executes __syncthreads. The second warp runs
/// to completion, the first waits forever: the "some warps finished"
/// deadlock.
Kernel half_barrier_kernel() {
  KernelBuilder kb("halfbar", 64);
  const SReg out = kb.param();
  const VReg t = kb.tid();
  const VReg p = kb.setp(Cmp::kLt, DType::kI64, t, imm_i64(32));
  kb.begin_pred(p);
  kb.bar();
  kb.end_pred();
  kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))), t);
  return kb.build();
}

/// Two warps waiting at two different __syncthreads: the divergent-barrier
/// deadlock.
Kernel divergent_barrier_kernel() {
  KernelBuilder kb("divbar", 64);
  const SReg out = kb.param();
  const VReg t = kb.tid();
  const VReg p = kb.setp(Cmp::kLt, DType::kI64, t, imm_i64(32));
  kb.begin_pred(p);
  kb.bar();
  kb.end_pred();
  kb.begin_pred(p, /*negate=*/true);
  kb.bar();
  kb.end_pred();
  kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))), t);
  return kb.build();
}

long long measure_cycles(const Kernel& kernel) {
  GlobalMemory gmem;
  const auto buf = gmem.alloc(64 * 4);
  const std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  return run_block(kernel, kDev, gmem, args).cycles;
}

// ---------------------------------------------------------------------------
// Interpreter-level budget semantics.

TEST(Watchdog, BudgetExactlyReachedCompletes) {
  const Kernel kernel = spin_kernel(400);
  const long long cycles = measure_cycles(kernel);
  ASSERT_GT(cycles, 0);

  GlobalMemory gmem;
  const auto buf = gmem.alloc(64 * 4);
  const std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  BlockRunOptions options;
  options.max_cycles = cycles;  // finishing at exactly the budget is legal
  const auto result = run_block(kernel, kDev, gmem, args, options);
  EXPECT_EQ(result.cycles, cycles);
}

TEST(Watchdog, OneCycleUnderBudgetThrowsCycleBudget) {
  const Kernel kernel = spin_kernel(400);
  const long long cycles = measure_cycles(kernel);
  ASSERT_GT(cycles, 1);

  GlobalMemory gmem;
  const auto buf = gmem.alloc(64 * 4);
  const std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  BlockRunOptions options;
  options.max_cycles = cycles - 1;
  try {
    run_block(kernel, kDev, gmem, args, options);
    FAIL() << "expected LaunchTimeout";
  } catch (const LaunchTimeout& e) {
    EXPECT_EQ(e.kind(), LaunchTimeout::Kind::kCycleBudget);
    EXPECT_EQ(e.budget(), cycles - 1);
    EXPECT_GT(e.cycles(), e.budget());
    EXPECT_NE(std::string(e.what()).find("cycle budget"), std::string::npos);
  }
}

TEST(Watchdog, LongButUnderBudgetCompletes) {
  // A kernel that runs long in absolute terms but stays inside a generous
  // budget must not trip the watchdog.
  const Kernel kernel = spin_kernel(20000);
  const long long cycles = measure_cycles(kernel);
  ASSERT_GT(cycles, 20000);  // genuinely long

  GlobalMemory gmem;
  const auto buf = gmem.alloc(64 * 4);
  const std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  BlockRunOptions options;
  options.max_cycles = cycles * 10;
  const auto result = run_block(kernel, kDev, gmem, args, options);
  EXPECT_EQ(result.cycles, cycles);
}

// ---------------------------------------------------------------------------
// Barrier-deadlock detection (no budget needed).

TEST(Watchdog, SomeWarpsFinishedDeadlock) {
  GlobalMemory gmem;
  const auto buf = gmem.alloc(64 * 4);
  const std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  try {
    run_block(half_barrier_kernel(), kDev, gmem, args, BlockRunOptions{});
    FAIL() << "expected LaunchTimeout";
  } catch (const LaunchTimeout& e) {
    EXPECT_EQ(e.kind(), LaunchTimeout::Kind::kBarrierDeadlock);
    EXPECT_NE(std::string(e.what()).find("finished while others wait"),
              std::string::npos);
  }
}

TEST(Watchdog, DivergentBarriersDeadlock) {
  GlobalMemory gmem;
  const auto buf = gmem.alloc(64 * 4);
  const std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  try {
    run_block(divergent_barrier_kernel(), kDev, gmem, args, BlockRunOptions{});
    FAIL() << "expected LaunchTimeout";
  } catch (const LaunchTimeout& e) {
    EXPECT_EQ(e.kind(), LaunchTimeout::Kind::kBarrierDeadlock);
    EXPECT_NE(std::string(e.what()).find("different __syncthreads"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Propagation: the engine's worker pool rethrows LaunchTimeout with its
// type (and therefore kind/budget) intact, at any thread count.

TEST(Watchdog, EnginePropagatesLaunchTimeout) {
  const Kernel kernel = spin_kernel(400);
  const long long cycles = measure_cycles(kernel);

  wsim::simt::ExecutionEngine engine({.threads = 4});
  GlobalMemory gmem;
  const auto buf = gmem.alloc(64 * 4);
  std::vector<BlockLaunch> blocks(8);
  for (auto& b : blocks) {
    b.args = {static_cast<std::uint64_t>(buf)};
  }
  LaunchOptions options;
  options.max_block_cycles = cycles - 1;
  try {
    engine.launch(kernel, kDev, gmem, blocks, options);
    FAIL() << "expected LaunchTimeout";
  } catch (const LaunchTimeout& e) {
    EXPECT_EQ(e.kind(), LaunchTimeout::Kind::kCycleBudget);
    EXPECT_EQ(e.budget(), cycles - 1);
  }
}

// ---------------------------------------------------------------------------
// Fleet: a device whose per-worker budget always fires loses the batch to
// the other device (requeue-on-timeout); the delivered outputs are
// bit-identical to a direct single-device run.

TEST(Watchdog, FleetRequeuesTimedOutBatchOnAnotherDevice) {
  wsim::workload::GeneratorConfig gen;
  gen.seed = 11;
  gen.regions = 2;
  gen.sw_query_len_min = 40;
  gen.sw_query_len_max = 80;
  gen.sw_target_len_min = 60;
  gen.sw_target_len_max = 100;
  const auto dataset = wsim::workload::generate_dataset(gen);
  const auto batches = wsim::workload::sw_rebatch(dataset, 8);
  ASSERT_FALSE(batches.empty());

  wsim::fleet::FleetConfig cfg;
  wsim::fleet::WorkerConfig broken;
  broken.device = wsim::simt::make_k1200();
  broken.max_block_cycles = 1;  // every block blows this budget
  wsim::fleet::WorkerConfig healthy;
  healthy.device = wsim::simt::make_k1200();
  cfg.workers = {broken, healthy};
  cfg.policy = wsim::fleet::PlacementPolicy::kRoundRobin;
  wsim::fleet::FleetExecutor executor(std::move(cfg));

  const auto executed = executor.execute_sw(batches.front(), 0.0, {});
  EXPECT_EQ(executed.exec.device_index, 1);
  EXPECT_GE(executed.exec.attempts, 2);

  const auto stats = executor.stats();
  EXPECT_GE(stats.guard.watchdog_timeouts, 1U);
  EXPECT_GE(stats.requeues, 1U);
  EXPECT_GE(stats.devices[0].timeouts, 1U);
  EXPECT_EQ(stats.devices[0].batches, 0U);

  const wsim::kernels::SwRunner runner(executor.sw_design(1));
  wsim::kernels::SwRunOptions direct_opt;
  direct_opt.collect_outputs = true;
  const auto direct =
      runner.run_batch(executor.device(1), batches.front(), direct_opt);
  ASSERT_EQ(executed.result.outputs.size(), direct.outputs.size());
  for (std::size_t i = 0; i < direct.outputs.size(); ++i) {
    EXPECT_EQ(executed.result.outputs[i].best_score, direct.outputs[i].best_score)
        << i;
    EXPECT_EQ(executed.result.outputs[i].alignment.cigar,
              direct.outputs[i].alignment.cigar)
        << i;
  }
}

// ---------------------------------------------------------------------------
// Serve: on the single-device path a LaunchTimeout cannot be re-placed, so
// the service fails the carrying requests with the watchdog's message in
// the ticket instead of answering them.

TEST(Watchdog, ServeTicketCarriesTimeoutError) {
  wsim::workload::GeneratorConfig gen;
  gen.seed = 5;
  gen.regions = 1;
  gen.sw_query_len_min = 40;
  gen.sw_query_len_max = 60;
  gen.sw_target_len_min = 60;
  gen.sw_target_len_max = 80;
  const auto dataset = wsim::workload::generate_dataset(gen);
  const auto tasks = wsim::workload::sw_all_tasks(dataset);
  ASSERT_FALSE(tasks.empty());

  wsim::serve::ServiceConfig cfg;
  cfg.device = wsim::simt::make_k1200();
  cfg.collect_outputs = true;
  cfg.guard.max_block_cycles = 1;  // every batch times out
  wsim::serve::AlignmentService service(cfg);

  const auto submit = service.submit(
      wsim::serve::SwRequest{tasks.front(), wsim::serve::Priority::kNormal, {}, {}, {}});
  ASSERT_TRUE(submit.admitted());
  service.drain();

  EXPECT_FALSE(submit.ticket.ready());
  ASSERT_TRUE(submit.ticket.failed());
  EXPECT_NE(submit.ticket.error().find("cycle budget"), std::string::npos);

  const auto stats = service.stats();
  EXPECT_EQ(stats.watchdog_timeouts, 1U);
  EXPECT_EQ(stats.failed, 1U);
}

}  // namespace
