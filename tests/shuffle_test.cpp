#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "wsim/simt/builder.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/interpreter.hpp"
#include "wsim/simt/memory.hpp"

namespace {

using wsim::simt::DeviceSpec;
using wsim::simt::GlobalMemory;
using wsim::simt::imm_i64;
using wsim::simt::Kernel;
using wsim::simt::KernelBuilder;
using wsim::simt::Op;
using wsim::simt::SReg;
using wsim::simt::VReg;

const DeviceSpec kDev = wsim::simt::make_k1200();

/// Runs a one-warp kernel that computes `body(kb, tid)` per lane and
/// returns the 32 lane results.
template <typename Body>
std::vector<std::int32_t> run_lanes(Body body) {
  KernelBuilder kb("shuffle_case", 32);
  const SReg out = kb.param();
  const VReg t = kb.tid();
  const VReg v = body(kb, t);
  kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))), v);
  const Kernel k = kb.build();
  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  run_block(k, kDev, gmem, args);
  return gmem.read_i32(buf, 32);
}

// --- Figure 1 of the paper: the four shuffle variants --------------------

TEST(Shuffle, AnyToAnyBroadcast) {
  // shfl(tid, 5): every lane receives lane 5's value.
  const auto lanes = run_lanes(
      [](KernelBuilder& kb, VReg t) { return kb.shfl(t, imm_i64(5)); });
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(lanes[static_cast<std::size_t>(i)], 5);
  }
}

TEST(Shuffle, AnyToAnyPerLaneIndex) {
  // shfl(tid, 31 - tid): lane i reads lane 31-i (full reversal).
  const auto lanes = run_lanes([](KernelBuilder& kb, VReg t) {
    const VReg src = kb.isub(imm_i64(31), t);
    return kb.shfl(t, src);
  });
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(lanes[static_cast<std::size_t>(i)], 31 - i);
  }
}

TEST(Shuffle, AnyToAnyWrapsModuloWidth) {
  // CUDA semantics: source lane is taken modulo width.
  const auto lanes = run_lanes(
      [](KernelBuilder& kb, VReg t) { return kb.shfl(t, imm_i64(35)); });
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(lanes[static_cast<std::size_t>(i)], 3);  // 35 mod 32
  }
}

TEST(Shuffle, UpShiftsToNeighbor) {
  const auto lanes = run_lanes(
      [](KernelBuilder& kb, VReg t) { return kb.shfl_up(t, imm_i64(1)); });
  EXPECT_EQ(lanes[0], 0);  // lane 0 keeps its own value
  for (int i = 1; i < 32; ++i) {
    EXPECT_EQ(lanes[static_cast<std::size_t>(i)], i - 1);
  }
}

TEST(Shuffle, UpWithLargerDelta) {
  const auto lanes = run_lanes(
      [](KernelBuilder& kb, VReg t) { return kb.shfl_up(t, imm_i64(7)); });
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(lanes[static_cast<std::size_t>(i)], i < 7 ? i : i - 7);
  }
}

TEST(Shuffle, DownShiftsToNeighbor) {
  const auto lanes = run_lanes(
      [](KernelBuilder& kb, VReg t) { return kb.shfl_down(t, imm_i64(4)); });
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(lanes[static_cast<std::size_t>(i)], i + 4 < 32 ? i + 4 : i);
  }
}

TEST(Shuffle, XorButterfly) {
  const auto lanes = run_lanes(
      [](KernelBuilder& kb, VReg t) { return kb.shfl_xor(t, imm_i64(1)); });
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(lanes[static_cast<std::size_t>(i)], i ^ 1);
  }
}

TEST(Shuffle, XorLargeMask) {
  const auto lanes = run_lanes(
      [](KernelBuilder& kb, VReg t) { return kb.shfl_xor(t, imm_i64(16)); });
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(lanes[static_cast<std::size_t>(i)], i ^ 16);
  }
}

// --- sub-warp widths -------------------------------------------------------

TEST(Shuffle, WidthSegmentsAnyToAny) {
  // width 8: lane reads (segment base + src % 8).
  const auto lanes = run_lanes(
      [](KernelBuilder& kb, VReg t) { return kb.shfl(t, imm_i64(2), 8); });
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(lanes[static_cast<std::size_t>(i)], (i & ~7) + 2);
  }
}

TEST(Shuffle, WidthSegmentsDown) {
  // width 8: lanes at the segment tail keep their own value.
  const auto lanes = run_lanes(
      [](KernelBuilder& kb, VReg t) { return kb.shfl_down(t, imm_i64(2), 8); });
  for (int i = 0; i < 32; ++i) {
    const int in_seg = i % 8;
    EXPECT_EQ(lanes[static_cast<std::size_t>(i)], in_seg + 2 < 8 ? i + 2 : i);
  }
}

TEST(Shuffle, WidthSegmentsUp) {
  const auto lanes = run_lanes(
      [](KernelBuilder& kb, VReg t) { return kb.shfl_up(t, imm_i64(3), 16); });
  for (int i = 0; i < 32; ++i) {
    const int in_seg = i % 16;
    EXPECT_EQ(lanes[static_cast<std::size_t>(i)], in_seg < 3 ? i : i - 3);
  }
}

// --- Figure 2 of the paper: butterfly reduction ----------------------------

TEST(Shuffle, DownReductionSumsWarp) {
  // v += shfl_down(v, 16); ... v += shfl_down(v, 1); lane 0 holds the sum.
  const auto lanes = run_lanes([](KernelBuilder& kb, VReg t) {
    const VReg v = kb.mov(t);
    for (int delta = 16; delta >= 1; delta /= 2) {
      const VReg other = kb.shfl_down(v, imm_i64(delta));
      kb.assign(v, kb.iadd(v, other));
    }
    return v;
  });
  EXPECT_EQ(lanes[0], 31 * 32 / 2);
}

TEST(Shuffle, XorReductionGivesSumInAllLanes) {
  const auto lanes = run_lanes([](KernelBuilder& kb, VReg t) {
    const VReg v = kb.mov(t);
    for (int mask = 16; mask >= 1; mask /= 2) {
      const VReg other = kb.shfl_xor(v, imm_i64(mask));
      kb.assign(v, kb.iadd(v, other));
    }
    return v;
  });
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(lanes[static_cast<std::size_t>(i)], 31 * 32 / 2);
  }
}

// --- timing: per-variant latency ------------------------------------------

long long chain_cycles(Op variant, const DeviceSpec& dev, int iters) {
  KernelBuilder kb("latency", 32);
  const SReg out = kb.param();
  const VReg t = kb.tid();
  const VReg v = kb.mov(t);
  kb.loop(imm_i64(iters));
  const VReg s = kb.emit(variant, v, imm_i64(1), imm_i64(32));
  kb.assign(v, kb.iadd(v, s));
  kb.endloop();
  kb.stg(kb.iadd(out, kb.imul(t, imm_i64(4))), v);
  const Kernel k = kb.build();
  GlobalMemory gmem;
  const auto buf = gmem.alloc(32 * 4);
  std::vector<std::uint64_t> args = {static_cast<std::uint64_t>(buf)};
  return run_block(k, dev, gmem, args).cycles;
}

TEST(ShuffleTiming, VariantLatenciesFollowDeviceTable) {
  // Difference quotient removes loop overhead; per-iteration delta between
  // variants must equal the latency-table delta exactly.
  const int iters = 64;
  const long long base = chain_cycles(Op::kShfl, kDev, iters);
  const long long xorc = chain_cycles(Op::kShflXor, kDev, iters);
  EXPECT_EQ(xorc - base, static_cast<long long>(iters) *
                             (kDev.lat.shfl_xor - kDev.lat.shfl));
}

TEST(ShuffleTiming, KeplerChainSlowerThanMaxwell) {
  const DeviceSpec k40 = wsim::simt::make_k40();
  EXPECT_GT(chain_cycles(Op::kShflUp, k40, 64), chain_cycles(Op::kShflUp, kDev, 64));
}

}  // namespace
