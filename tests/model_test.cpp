#include <gtest/gtest.h>

#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/model/breakdown.hpp"
#include "wsim/model/perf_model.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/util/check.hpp"

namespace {

using wsim::kernels::CommMode;
using wsim::model::CommBreakdown;
using wsim::model::hot_loop_breakdown;
using wsim::simt::compute_occupancy;
using wsim::simt::DeviceSpec;

const DeviceSpec kDev = wsim::simt::make_k1200();

TEST(PerfModel, PredictionInvertsExactly) {
  const auto occ = compute_occupancy(kDev, 32, 32, 0);
  const double latency = 183.0;
  const double cups = wsim::model::predict_cups(kDev, occ, latency);
  EXPECT_NEAR(wsim::model::effective_latency_cycles(kDev, occ, cups), latency, 1e-9);
}

TEST(PerfModel, LowerLatencyMeansMoreCups) {
  const auto occ = compute_occupancy(kDev, 32, 32, 0);
  EXPECT_GT(wsim::model::predict_cups(kDev, occ, 22.0),
            wsim::model::predict_cups(kDev, occ, 183.0));
}

TEST(PerfModel, ParallelismScalesPrediction) {
  const auto occ_full = compute_occupancy(kDev, 256, 32, 0);
  const auto occ_reg = compute_occupancy(kDev, 256, 128, 0);
  ASSERT_GT(occ_full.parallelism(kDev), occ_reg.parallelism(kDev));
  EXPECT_GT(wsim::model::predict_cups(kDev, occ_full, 100.0),
            wsim::model::predict_cups(kDev, occ_reg, 100.0));
}

TEST(PerfModel, PaperScaleSanity) {
  // Paper Table II: SW-like kernels on K1200 deliver single-digit GCUPS.
  const auto occ = compute_occupancy(kDev, 32, 30, 0);
  const double gcups = wsim::model::predict_gcups(kDev, occ, 183.0);
  EXPECT_GT(gcups, 1.0);
  EXPECT_LT(gcups, 50.0);
}

TEST(PerfModel, RejectsBadInputs) {
  const auto occ = compute_occupancy(kDev, 32, 32, 0);
  EXPECT_THROW(wsim::model::predict_cups(kDev, occ, 0.0), wsim::util::CheckError);
  EXPECT_THROW(wsim::model::effective_latency_cycles(kDev, occ, 0.0),
               wsim::util::CheckError);
}

// --- Table III: instruction breakdown ---------------------------------------

TEST(Breakdown, Sw1HotLoopIsSharedMemoryBound) {
  const auto kernel = wsim::kernels::build_sw_kernel(CommMode::kSharedMemory, {});
  const CommBreakdown b = hot_loop_breakdown(kernel);
  // Listing 2a structure: neighbour loads plus H/F/kv writes and a sync.
  EXPECT_GE(b.smem_loads, 3U);
  EXPECT_GE(b.smem_stores, 3U);
  EXPECT_EQ(b.barriers, 1U);
  EXPECT_EQ(b.shuffle_total(), 0U);
}

TEST(Breakdown, Sw2HotLoopIsShuffleBound) {
  const auto kernel = wsim::kernels::build_sw_kernel(CommMode::kShuffle, {});
  const CommBreakdown b = hot_loop_breakdown(kernel);
  EXPECT_GE(b.shfl_up, 2U);
  EXPECT_EQ(b.smem_total(), 0U);
  EXPECT_EQ(b.barriers, 0U);
  EXPECT_GE(b.reg_moves, 3U);  // reg rotation
}

TEST(Breakdown, PhSharedCountsMatchDesign) {
  const auto kernel = wsim::kernels::build_ph_shared_kernel(128);
  const CommBreakdown b = hot_loop_breakdown(kernel);
  // 5 neighbour loads (3 diag + 2 up) and 3 stores per warp, 4 warps per
  // block (the paper's "32 shared memory instructions each time" scale).
  EXPECT_EQ(b.smem_loads, 20U);
  EXPECT_EQ(b.smem_stores, 12U);
  EXPECT_EQ(b.smem_total(), 32U);
  EXPECT_EQ(b.barriers, 1U);
}

TEST(Breakdown, PhShuffleBoundaryOnlyCommunication) {
  const auto c4 = hot_loop_breakdown(wsim::kernels::build_ph_shuffle_kernel(4));
  const auto c1 = hot_loop_breakdown(wsim::kernels::build_ph_shuffle_kernel(1));
  // Inter-thread communication happens only between boundary cells: the
  // shuffle count does not grow with cells/thread.
  EXPECT_EQ(c4.shfl_up, 5U);
  EXPECT_EQ(c1.shfl_up, 5U);
  EXPECT_EQ(c4.smem_total(), 0U);
  // Register traffic (rotation) does grow with cells/thread.
  EXPECT_GT(c4.reg_moves, c1.reg_moves);
}

TEST(Breakdown, EstimatedReductionPositiveForBothAlgorithms) {
  const auto& lat = kDev.lat;
  const auto sw1 = wsim::kernels::build_sw_kernel(CommMode::kSharedMemory, {});
  const auto sw2 = wsim::kernels::build_sw_kernel(CommMode::kShuffle, {});
  const double sw_reduction = wsim::model::estimated_reduction(sw1, sw2, lat);
  EXPECT_GT(sw_reduction, 0.0);

  const auto ph1 = wsim::kernels::build_ph_shared_kernel(128);
  const auto ph2 = wsim::kernels::build_ph_shuffle_kernel(4);
  const double ph_reduction = wsim::model::estimated_reduction(ph1, ph2, lat);
  EXPECT_GT(ph_reduction, 0.0);
}

TEST(Breakdown, CommCyclesUseLatencyTable) {
  CommBreakdown b;
  b.smem_loads = 3;
  b.smem_stores = 1;
  b.reg_moves = 2;
  b.barriers = 1;
  // Paper's SW1 estimate: 6 smem accesses ~21 cycles + sync 57 = 183,
  // with the two rotations counted as register ops here.
  EXPECT_NEAR(b.comm_cycles(kDev.lat), 4 * 21 + 2 * 1 + 57, 1e-9);
}

TEST(Breakdown, RejectsLooplessKernel) {
  wsim::simt::Kernel kernel;
  kernel.name = "flat";
  kernel.threads_per_block = 32;
  EXPECT_THROW(hot_loop_breakdown(kernel), wsim::util::CheckError);
}

}  // namespace
