#include <gtest/gtest.h>

#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/profile.hpp"
#include "wsim/util/rng.hpp"

namespace {

using wsim::kernels::CommMode;
using wsim::simt::ProfileReport;

const wsim::simt::DeviceSpec kDev = wsim::simt::make_k1200();

std::string random_dna(wsim::util::Rng& rng, int len) {
  std::string s(static_cast<std::size_t>(len), 'A');
  for (char& c : s) {
    c = "ACGT"[rng.uniform_int(0, 3)];
  }
  return s;
}

ProfileReport profile_sw(CommMode mode) {
  wsim::util::Rng rng(3);
  const wsim::kernels::SwRunner runner(mode);
  const wsim::workload::SwBatch batch = {{random_dna(rng, 64), random_dna(rng, 80)}};
  const auto result = runner.run_batch(kDev, batch);
  return wsim::simt::profile_block(runner.kernel(), kDev,
                                   result.run.launch.representative,
                                   result.run.cells);
}

TEST(Profile, CategoriesSumToInstructionCount) {
  const ProfileReport r = profile_sw(CommMode::kSharedMemory);
  EXPECT_EQ(r.alu_ops + r.shuffle_ops + r.smem_ops + r.gmem_ops + r.barriers,
            r.instructions);
}

TEST(Profile, Sw1ShowsSmemTrafficSw2ShowsShuffles) {
  const ProfileReport sw1 = profile_sw(CommMode::kSharedMemory);
  const ProfileReport sw2 = profile_sw(CommMode::kShuffle);
  EXPECT_GT(sw1.smem_ops, 0U);
  EXPECT_GT(sw1.barriers, 0U);
  EXPECT_EQ(sw1.shuffle_ops, 0U);
  EXPECT_EQ(sw2.smem_ops, 0U);
  EXPECT_EQ(sw2.barriers, 0U);
  EXPECT_GT(sw2.shuffle_ops, 0U);
  EXPECT_GT(sw2.occupancy, sw1.occupancy);
}

TEST(Profile, DerivedRatesAreConsistent) {
  const ProfileReport r = profile_sw(CommMode::kShuffle);
  EXPECT_NEAR(r.ipc,
              static_cast<double>(r.instructions) / static_cast<double>(r.cycles),
              1e-12);
  EXPECT_NEAR(r.cycles_per_cell,
              static_cast<double>(r.cycles) / static_cast<double>(r.cells), 1e-12);
  EXPECT_GT(r.cells, 0U);
}

TEST(Profile, LineBuffersAndPaddedTileAreConflictFree) {
  // SW1's line buffers are stride-1 and the btrack tile is padded: at most
  // one transaction per access. Fully-masked accesses at wavefront edges
  // issue without any transaction, so the ratio can dip below 1.
  const ProfileReport r = profile_sw(CommMode::kSharedMemory);
  EXPECT_LE(r.bank_conflict_ratio, 1.0);
  EXPECT_GT(r.bank_conflict_ratio, 0.5);
}

TEST(Profile, FormattedReportMentionsKeyFields) {
  const ProfileReport r = profile_sw(CommMode::kShuffle);
  const std::string text = wsim::simt::format_profile(r);
  EXPECT_NE(text.find("sw2_shuffle"), std::string::npos);
  EXPECT_NE(text.find("IPC"), std::string::npos);
  EXPECT_NE(text.find("occupancy"), std::string::npos);
  EXPECT_NE(text.find("conflict ratio"), std::string::npos);
}

}  // namespace
