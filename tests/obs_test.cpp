// wsim::obs: the observability substrate's core contracts — disabled
// no-op, replay-deterministic event streams, span nesting and per-track
// timestamp monotonicity in the Chrome export, the flight recorder on an
// injected watchdog timeout, and the versioned metrics/stats schema.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "wsim/fleet/fleet.hpp"
#include "wsim/obs/chrome_trace.hpp"
#include "wsim/obs/json.hpp"
#include "wsim/obs/metrics.hpp"
#include "wsim/obs/obs.hpp"
#include "wsim/serve/service.hpp"
#include "wsim/serve/stats.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/workload/batching.hpp"
#include "wsim/workload/generator.hpp"

namespace {

namespace obs = wsim::obs;

/// Restores the global obs state around each test: level back to kOff and
/// buffers cleared, so tests compose regardless of execution order.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::reset();
    obs::set_level(obs::Level::kOff);
  }
  void TearDown() override {
    obs::set_level(obs::Level::kOff);
    obs::reset();
  }
};

wsim::workload::Dataset small_dataset(std::uint64_t seed) {
  wsim::workload::GeneratorConfig gen;
  gen.seed = seed;
  gen.regions = 2;
  gen.sw_query_len_min = 40;
  gen.sw_query_len_max = 80;
  gen.sw_target_len_min = 60;
  gen.sw_target_len_max = 100;
  return wsim::workload::generate_dataset(gen);
}

/// One small serve replay on the single-device path: submit every SW task
/// at a fixed cadence, then drain.
void run_serve_replay(const wsim::workload::Dataset& dataset) {
  wsim::serve::ServiceConfig cfg;
  cfg.device = wsim::simt::make_k1200();
  wsim::serve::AlignmentService service(cfg);
  const auto tasks = wsim::workload::sw_all_tasks(dataset);
  double t = 0.0;
  for (const auto& task : tasks) {
    service.advance_to(t);
    service.submit(wsim::serve::SwRequest{
        task, wsim::serve::Priority::kNormal, {}, {}, {}});
    t += 20e-6;
  }
  service.drain();
}

// --- disabled no-op ---------------------------------------------------------

TEST_F(ObsTest, DisabledLevelRecordsNothing) {
  ASSERT_EQ(obs::level(), obs::Level::kOff);
  obs::instant(1.0, obs::Layer::kServe, "test.instant");
  obs::span_begin(1.0, obs::Layer::kServe, "test.span");
  obs::span_end(2.0, obs::Layer::kServe, "test.span");
  obs::counter(1.0, obs::Layer::kCluster, "test.counter", 42.0);
  { obs::Span scope(obs::Layer::kFleet, "test.scope"); }
  static obs::Counter c_test("test.disabled_counter");
  c_test.add(7);
  EXPECT_TRUE(obs::collect().empty());
  EXPECT_EQ(c_test.value(), 0U);

  run_serve_replay(small_dataset(3));
  EXPECT_TRUE(obs::collect().empty());
}

TEST_F(ObsTest, MetricsLevelCountsButRecordsNoEvents) {
  obs::set_level(obs::Level::kMetrics);
  obs::instant(1.0, obs::Layer::kServe, "test.instant");
  static obs::Counter c_test("test.metrics_counter");
  c_test.add(3);
  EXPECT_TRUE(obs::collect().empty());
  EXPECT_EQ(c_test.value(), 3U);
}

// --- emission and spans -----------------------------------------------------

TEST_F(ObsTest, EventsCarryStructuredFields) {
  obs::set_level(obs::Level::kTrace);
  obs::instant(0.5, obs::Layer::kFleet, "test.dispatch", 2, 7, 3.0, 4.0);
  const auto events = obs::collect();
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].ts, 0.5);
  EXPECT_EQ(events[0].layer, obs::Layer::kFleet);
  EXPECT_EQ(events[0].kind, obs::Kind::kInstant);
  EXPECT_EQ(events[0].device, 2);
  EXPECT_EQ(events[0].id, 7U);
  EXPECT_STREQ(events[0].name, "test.dispatch");
  EXPECT_EQ(events[0].a0, 3.0);
  EXPECT_EQ(events[0].a1, 4.0);
}

TEST_F(ObsTest, SpanScopeEmitsBeginAndEndOnSimClock) {
  obs::set_level(obs::Level::kTrace);
  obs::set_sim_time(1.25);
  { obs::Span scope(obs::Layer::kCluster, "cluster.tick"); }
  const auto events = obs::collect();
  ASSERT_EQ(events.size(), 2U);
  EXPECT_EQ(events[0].kind, obs::Kind::kSpanBegin);
  EXPECT_EQ(events[1].kind, obs::Kind::kSpanEnd);
  EXPECT_EQ(events[0].ts, 1.25);
  EXPECT_EQ(events[1].ts, 1.25);
  EXPECT_LT(events[0].seq, events[1].seq);
}

// --- replay determinism -----------------------------------------------------

TEST_F(ObsTest, SameSeedYieldsByteIdenticalEventStream) {
  obs::set_level(obs::Level::kTrace);
  const auto dataset = small_dataset(11);

  // Warm the process-wide decode cache first: the contract is identical
  // streams from identical starting state, and a cold first run records
  // one extra engine.decode_miss.
  run_serve_replay(dataset);
  obs::reset();

  run_serve_replay(dataset);
  const std::string first = obs::format_events(obs::collect());
  ASSERT_FALSE(first.empty());

  obs::reset();
  run_serve_replay(dataset);
  const std::string second = obs::format_events(obs::collect());

  EXPECT_EQ(first, second);
}

// --- chrome export invariants ----------------------------------------------

TEST_F(ObsTest, ChromeTracksAreMonotoneAndSpansNest) {
  obs::set_level(obs::Level::kTrace);
  wsim::fleet::FleetConfig fleet_cfg;
  wsim::fleet::WorkerConfig wc;
  wc.device = wsim::simt::make_k1200();
  fleet_cfg.workers = {wc, wc};
  // Round-robin alternates devices deterministically, so both device
  // tracks carry spans.
  fleet_cfg.policy = wsim::fleet::PlacementPolicy::kRoundRobin;
  wsim::fleet::FleetExecutor executor(std::move(fleet_cfg));
  const auto dataset = small_dataset(11);
  const auto batches = wsim::workload::sw_rebatch(dataset, 2);
  ASSERT_GE(batches.size(), 2U);
  double t = 0.0;
  for (const auto& batch : batches) {
    obs::set_sim_time(t);
    executor.execute_sw(batch, t, {});
    t += 1e-4;
  }

  const auto sorted = obs::chrome_sorted(obs::collect());
  ASSERT_FALSE(sorted.empty());
  // Per track: non-decreasing ts and stack-balanced begin/end pairs.
  std::map<std::uint32_t, double> last_ts;
  std::map<std::uint32_t, std::vector<std::string>> stacks;
  for (const auto& e : sorted) {
    const std::uint32_t tid = obs::chrome_tid(e);
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(e.ts, it->second) << "track " << tid << " event " << e.name;
    }
    last_ts[tid] = e.ts;
    if (e.kind == obs::Kind::kSpanBegin) {
      stacks[tid].emplace_back(e.name);
    } else if (e.kind == obs::Kind::kSpanEnd) {
      ASSERT_FALSE(stacks[tid].empty()) << "unbalanced span end on " << tid;
      EXPECT_EQ(stacks[tid].back(), e.name);
      stacks[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on track " << tid;
  }
  // Both fleet devices saw work, on distinct tracks.
  EXPECT_TRUE(last_ts.count(100) == 1 && last_ts.count(101) == 1);
}

TEST_F(ObsTest, ChromeWriterEmitsValidShape) {
  obs::set_level(obs::Level::kTrace);
  obs::set_sim_time(0.0);
  obs::span_begin(0.0, obs::Layer::kServe, "serve.batch", 0, 1);
  obs::span_end(1e-3, obs::Layer::kServe, "serve.batch", 0, 1);
  obs::instant(2e-3, obs::Layer::kCluster, "cluster.scale_up", -1, 0, 2.0);
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string trace = os.str();
  EXPECT_EQ(trace.front(), '[');
  EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"device-0\""), std::string::npos);
  EXPECT_NE(trace.find("\"autoscaler\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  // Simulated seconds scale to microseconds in the export.
  EXPECT_NE(trace.find("\"ts\":1000"), std::string::npos);
}

// --- flight recorder --------------------------------------------------------

TEST_F(ObsTest, WatchdogTimeoutDumpsFlightRecorder) {
  obs::set_level(obs::Level::kTrace);
  const auto dataset = small_dataset(5);
  const auto tasks = wsim::workload::sw_all_tasks(dataset);
  ASSERT_FALSE(tasks.empty());

  wsim::serve::ServiceConfig cfg;
  cfg.device = wsim::simt::make_k1200();
  cfg.collect_outputs = true;
  cfg.guard.max_block_cycles = 1;  // every batch times out
  wsim::serve::AlignmentService service(cfg);
  const auto submit = service.submit(wsim::serve::SwRequest{
      tasks.front(), wsim::serve::Priority::kNormal, {}, {}, {}});
  ASSERT_TRUE(submit.admitted());
  service.drain();
  ASSERT_TRUE(submit.ticket.failed());

  const auto dumps = obs::flight_dumps();
  ASSERT_FALSE(dumps.empty());
  const obs::FlightDump& dump = dumps.front();
  // The dump names the failing (device, launch) and carries the final
  // events — including the submit and flush that led to the timeout.
  EXPECT_EQ(dump.device, 0);
  EXPECT_NE(dump.reason.find("cycle budget"), std::string::npos);
  ASSERT_FALSE(dump.events.empty());
  bool saw_flush = false;
  for (const auto& e : dump.events) {
    if (std::string(e.name) == "serve.flush_sw") {
      saw_flush = true;
    }
  }
  EXPECT_TRUE(saw_flush);
  const std::string rendered = obs::format_flight(dump);
  EXPECT_NE(rendered.find("failing device=0"), std::string::npos);
}

TEST_F(ObsTest, FlightDumpCapturesFailingSiteEvenBelowTraceLevel) {
  obs::set_level(obs::Level::kMetrics);
  obs::dump_flight("test failure", 3, 17, 2.5);
  const auto dumps = obs::flight_dumps();
  ASSERT_EQ(dumps.size(), 1U);
  EXPECT_EQ(dumps[0].device, 3);
  EXPECT_EQ(dumps[0].id, 17U);
  EXPECT_TRUE(dumps[0].events.empty());
}

// --- metrics registry -------------------------------------------------------

TEST_F(ObsTest, MetricsJsonIsVersionedAndSorted) {
  obs::set_level(obs::Level::kMetrics);
  static obs::Counter c_b("ztest.b_counter");
  static obs::Counter c_a("ztest.a_counter");
  static obs::Gauge g("ztest.gauge");
  static obs::Histogram h("ztest.hist");
  c_b.add(2);
  c_a.add(1);
  g.set(0.5);
  h.observe(1e-3);
  h.observe(2e-3);
  std::ostringstream os;
  obs::write_metrics_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"ztest.a_counter\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"ztest.b_counter\": 2"), std::string::npos);
  EXPECT_LT(json.find("\"ztest.a_counter\""), json.find("\"ztest.b_counter\""));
  EXPECT_NE(json.find("\"ztest.gauge\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  obs::reset();
  EXPECT_EQ(c_a.value(), 0U);
  EXPECT_EQ(h.count(), 0U);
}

// --- shared stats schema ----------------------------------------------------

TEST_F(ObsTest, StatsJsonCarriesSchemaVersion) {
  wsim::serve::ServiceStats stats;
  std::ostringstream os;
  wsim::serve::write_stats_json(os, stats);
  EXPECT_NE(os.str().find("\"schema_version\": 2"), std::string::npos);
}

TEST_F(ObsTest, JsonHelpersEscapeAndClampNonFinite) {
  EXPECT_EQ(obs::json_number(0.5), "0.5");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(obs::json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
}

}  // namespace
