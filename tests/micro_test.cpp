#include <gtest/gtest.h>

#include "wsim/micro/microbench.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/util/check.hpp"

namespace {

using wsim::micro::build_micro_kernel;
using wsim::micro::measure_latencies;
using wsim::micro::MicroKernel;
using wsim::micro::MicroResults;
using wsim::micro::run_micro;
using wsim::simt::DeviceSpec;

const DeviceSpec kK1200 = wsim::simt::make_k1200();

TEST(Micro, CyclesScaleLinearlyWithIterations) {
  const auto kernel = build_micro_kernel(MicroKernel::kShflDown);
  const long long c256 = run_micro(kernel, kK1200, 256);
  const long long c512 = run_micro(kernel, kK1200, 512);
  const long long c1024 = run_micro(kernel, kK1200, 1024);
  // Perfect linearity: equal increments for equal iteration deltas.
  EXPECT_EQ(c1024 - c512, 2 * (c512 - c256));
}

TEST(Micro, FitIsPerfectlyLinear) {
  const MicroResults r = measure_latencies(kK1200);
  for (const auto* est : {&r.reg, &r.shfl, &r.shfl_up, &r.shfl_down, &r.shfl_xor,
                          &r.sharedmem, &r.sync}) {
    EXPECT_GT(est->r_squared, 0.9999);
    EXPECT_GT(est->slope, 0.0);
  }
}

TEST(Micro, ShuffleLatencyRecoveredWithinTwoCycles) {
  const MicroResults r = measure_latencies(kK1200);
  EXPECT_NEAR(r.shfl.latency, kK1200.lat.shfl, 2.0);
  EXPECT_NEAR(r.shfl_up.latency, kK1200.lat.shfl_up, 2.0);
  EXPECT_NEAR(r.shfl_down.latency, kK1200.lat.shfl_down, 2.0);
  EXPECT_NEAR(r.shfl_xor.latency, kK1200.lat.shfl_xor, 2.0);
}

TEST(Micro, SharedMemAndSyncLatenciesRecovered) {
  const MicroResults r = measure_latencies(kK1200);
  // The chase adds one dependent address add per load; allow that margin.
  EXPECT_NEAR(r.sharedmem.latency, kK1200.lat.smem_load, 8.0);
  // Eq. 4 assumes the chase and the barrier compose serially; in the
  // pipeline they partially overlap, so the derivation under-estimates
  // (the paper's own methodology carries the same bias).
  EXPECT_NEAR(r.sync.latency, kK1200.lat.sync_barrier, 15.0);
}

TEST(Micro, OrderingMatchesPaperFig3) {
  // register < any shuffle < shared memory, on every device.
  for (const DeviceSpec& dev : wsim::simt::all_devices()) {
    const MicroResults r = measure_latencies(dev);
    for (const auto* shfl : {&r.shfl, &r.shfl_up, &r.shfl_down, &r.shfl_xor}) {
      EXPECT_GT(shfl->latency, r.reg.latency) << dev.name;
      EXPECT_LT(shfl->latency, r.sharedmem.latency + 8.0) << dev.name;
    }
  }
}

TEST(Micro, XorInversionAcrossArchitectures) {
  const MicroResults maxwell = measure_latencies(kK1200);
  const MicroResults kepler = measure_latencies(wsim::simt::make_k40());
  // Maxwell: xor slowest of the shuffles; Kepler: xor fastest (Fig. 3).
  EXPECT_GT(maxwell.shfl_xor.latency, maxwell.shfl_up.latency);
  EXPECT_LT(kepler.shfl_xor.latency, kepler.shfl_up.latency);
}

TEST(Micro, MaxwellDevicesAgree) {
  const MicroResults a = measure_latencies(kK1200);
  const MicroResults b = measure_latencies(wsim::simt::make_titan_x());
  EXPECT_NEAR(a.shfl.latency, b.shfl.latency, 0.5);
  EXPECT_NEAR(a.sharedmem.latency, b.sharedmem.latency, 0.5);
}

TEST(Micro, RejectsBadInputs) {
  const auto kernel = build_micro_kernel(MicroKernel::kRegister);
  EXPECT_THROW(run_micro(kernel, kK1200, 0), wsim::util::CheckError);
  const std::vector<int> single = {64};
  EXPECT_THROW(measure_latencies(kK1200, single), wsim::util::CheckError);
}

TEST(Micro, KernelNames) {
  EXPECT_EQ(wsim::micro::to_string(MicroKernel::kShflXor), "shfl_xor");
  EXPECT_EQ(build_micro_kernel(MicroKernel::kSharedMemSync).name, "sharedmem_sync");
}

TEST(Micro, SweepHasTenPoints) {
  EXPECT_EQ(wsim::micro::default_iteration_sweep().size(), 10U);  // "ten runs"
}

}  // namespace
