// Failure-injection tests: every guarded error path in the simulator and
// runners must fire deterministically with a diagnosable exception rather
// than corrupt state.

#include <gtest/gtest.h>

#include "wsim/align/pairhmm.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/builder.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/simt/interpreter.hpp"
#include "wsim/simt/memory.hpp"
#include "wsim/util/check.hpp"

namespace {

using wsim::simt::Cmp;
using wsim::simt::DType;
using wsim::simt::GlobalMemory;
using wsim::simt::imm_i64;
using wsim::simt::Kernel;
using wsim::simt::KernelBuilder;
using wsim::simt::SReg;
using wsim::simt::VReg;
using wsim::util::CheckError;

const wsim::simt::DeviceSpec kDev = wsim::simt::make_k1200();

TEST(Robustness, InvalidShuffleWidthThrows) {
  for (const int width : {0, 3, 33, 64}) {
    KernelBuilder kb("badwidth", 32);
    const VReg t = kb.tid();
    kb.stg(kb.imul(t, imm_i64(4)), kb.shfl_down(t, imm_i64(1), width));
    const Kernel k = kb.build();
    GlobalMemory gmem;
    gmem.alloc(32 * 4);
    EXPECT_THROW(run_block(k, kDev, gmem, {}), CheckError) << "width " << width;
  }
}

TEST(Robustness, NegativeSharedAddressThrows) {
  KernelBuilder kb("negaddr", 32);
  kb.alloc_smem(128);
  const VReg t = kb.tid();
  kb.sts(kb.isub(kb.imul(t, imm_i64(4)), imm_i64(64)), t);
  const Kernel k = kb.build();
  GlobalMemory gmem;
  EXPECT_THROW(run_block(k, kDev, gmem, {}), CheckError);
}

TEST(Robustness, PredicatedOffOutOfBoundsIsFine) {
  // Inactive lanes never dereference: an address that would be OOB for
  // masked lanes must not throw.
  KernelBuilder kb("maskedoob", 32);
  kb.alloc_smem(16);  // room for 4 lanes only
  const VReg t = kb.tid();
  const VReg in_range = kb.setp(Cmp::kLt, DType::kI64, t, imm_i64(4));
  kb.begin_pred(in_range);
  kb.sts(kb.imul(t, imm_i64(4)), t);
  kb.end_pred();
  const Kernel k = kb.build();
  GlobalMemory gmem;
  EXPECT_NO_THROW(run_block(k, kDev, gmem, {}));
}

TEST(Robustness, BarrierDivergenceDetected) {
  // Half the block loops one extra time around a barrier: warp 0 finishes
  // while warp 1 still waits -> the engine must flag it instead of
  // deadlocking.
  KernelBuilder kb("diverge", 64);
  kb.alloc_smem(64);
  const SReg trips_a = kb.param();
  const SReg trips_b = kb.param();
  const VReg w = kb.warpid();
  (void)w;
  // Uniform per-block loops cannot diverge by construction; emulate
  // divergence with two different scalar trip counts is impossible within
  // one block, so use the raw ISA: a block where one warp's code path has
  // more barriers is not constructible through the builder. Instead check
  // the engine's defense directly with mismatched loop trip counts driven
  // from scalar args is equal for all warps — so this test asserts the
  // *absence* of divergence for uniform loops.
  kb.loop(trips_a);
  kb.bar();
  kb.endloop();
  kb.loop(trips_b);
  kb.bar();
  kb.endloop();
  const Kernel k = kb.build();
  GlobalMemory gmem;
  const std::vector<std::uint64_t> args = {3, 2};
  const auto res = run_block(k, kDev, gmem, args);
  EXPECT_EQ(res.barriers, 5U);
}

TEST(Robustness, MissingScalarArgsReadAsZero) {
  KernelBuilder kb("noargs", 32);
  const SReg p0 = kb.param();
  const SReg p1 = kb.param();
  const VReg t = kb.tid();
  const VReg v = kb.iadd(kb.mov(p0), kb.mov(p1));
  kb.stg(kb.imul(t, imm_i64(4)), kb.iadd(v, t));
  const Kernel k = kb.build();
  GlobalMemory gmem;
  gmem.alloc(32 * 4);
  EXPECT_NO_THROW(run_block(k, kDev, gmem, {}));  // zero-filled params
  EXPECT_EQ(gmem.read_i32(0, 1)[0], 0);
}

TEST(Robustness, GlobalMemoryBoundsChecks) {
  GlobalMemory gmem;
  const auto buf = gmem.alloc(8);
  // volatile keeps GCC from const-propagating the deliberately
  // out-of-bounds count into the (never-reached) memcpy.
  volatile std::size_t three = 3;
  EXPECT_THROW(gmem.read_i32(buf, three), CheckError);       // 12 > 8 bytes
  EXPECT_THROW(gmem.read_f32(buf + 8, 1), CheckError);       // past the end
  EXPECT_THROW(gmem.at(-1, 1), CheckError);                  // negative
  EXPECT_NO_THROW(gmem.read_i32(buf, 2));
  EXPECT_THROW(GlobalMemory().alloc(8, 3), CheckError);      // non-pow2 align
}

TEST(Robustness, PairHmmUnderflowIsDiagnosed) {
  // A long read of pure mismatches at extreme quality drives the f32
  // forward sum to zero; both the reference and the device runner must
  // refuse rather than return -inf silently.
  wsim::align::PairHmmTask task;
  task.read = std::string(127, 'A');
  task.hap = std::string(127, 'T');
  task.base_quals.assign(127, 40);
  task.ins_quals.assign(127, 60);
  task.del_quals.assign(127, 60);
  task.gcp = 60;
  EXPECT_THROW(wsim::align::pairhmm_log10(task), CheckError);
  const wsim::kernels::PhRunner runner(wsim::kernels::CommMode::kShuffle);
  wsim::kernels::PhRunOptions opt;
  opt.collect_outputs = true;
  EXPECT_THROW(runner.run_batch(kDev, {task}, opt), CheckError);
}

TEST(Robustness, SwRunnerRejectsEmptySequences) {
  const wsim::kernels::SwRunner runner(wsim::kernels::CommMode::kShuffle);
  EXPECT_THROW(runner.run_batch(kDev, {{"", "ACGT"}}, {}), CheckError);
  EXPECT_THROW(runner.run_batch(kDev, {{"ACGT", ""}}, {}), CheckError);
}

TEST(Robustness, PhRunnerRejectsOverlongReads) {
  wsim::align::PairHmmTask task;
  task.read = std::string(129, 'A');
  task.hap = std::string(129, 'A');
  task.base_quals.assign(129, 30);
  task.ins_quals.assign(129, 45);
  task.del_quals.assign(129, 45);
  const wsim::kernels::PhRunner runner(wsim::kernels::CommMode::kShuffle);
  EXPECT_THROW(runner.run_batch(kDev, {task}, {}), CheckError);
}

TEST(Robustness, CheckErrorMessagesCarryLocation) {
  try {
    wsim::util::require(false, "synthetic failure");
    FAIL() << "require did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("synthetic failure"), std::string::npos);
    EXPECT_NE(what.find("robustness_test.cpp"), std::string::npos);
  }
}

}  // namespace
