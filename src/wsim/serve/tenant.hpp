#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "wsim/serve/request.hpp"

namespace wsim::serve {

/// Maps an SLO class to a priority lane: a tight completion deadline
/// rides the high lane so it joins the earliest batch that forms, a
/// relaxed one yields to everyone else. The thresholds follow the batch
/// former's time constants (max delay defaults to 200 µs, service times
/// are single-digit milliseconds): an SLO of a few ms is tight.
inline Priority priority_for_slo(double slo_seconds) noexcept {
  if (slo_seconds <= 0.0) {
    return Priority::kNormal;  // no SLO: ordinary traffic
  }
  if (slo_seconds <= 10e-3) {
    return Priority::kHigh;
  }
  if (slo_seconds <= 100e-3) {
    return Priority::kNormal;
  }
  return Priority::kLow;
}

/// Admission and SLO contract of one tenant. Quotas bound the tenant's
/// *queued* (not in-flight) work, so a misbehaving high-rate tenant hits
/// its own quota before it can push the shared queue bound into everyone
/// else's face; rejection is per-tenant backpressure
/// (RejectReason::kTenantTasksQuota / kTenantCellsQuota).
struct TenantConfig {
  std::string name;
  /// Max requests this tenant may have queued; 0 = unbounded.
  std::size_t max_queued_tasks = 0;
  /// Max DP cells this tenant may have queued; 0 = unbounded.
  std::size_t max_queued_cells = 0;
  /// SLO deadline class: a request from this tenant that carries no
  /// explicit deadline gets `submit_time + slo_seconds`, and the tenant's
  /// default lane is derived from it (priority_for_slo). 0 = no SLO.
  double slo_seconds = 0.0;
  /// Explicit priority lane override; unset derives from slo_seconds.
  std::optional<Priority> priority;

  Priority effective_priority() const noexcept {
    return priority.has_value() ? *priority : priority_for_slo(slo_seconds);
  }
};

}  // namespace wsim::serve
