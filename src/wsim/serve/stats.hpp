#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace wsim::fleet {
struct FleetStats;
}  // namespace wsim::fleet

namespace wsim::serve {

/// Order statistics over a latency sample, in seconds.
struct LatencySummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Summarizes a sample (takes a copy because percentile computation
/// sorts). Empty input yields a zero summary.
LatencySummary summarize_latency(std::vector<double> seconds);

/// Power-of-two histogram of formed batch sizes: bucket i counts batches
/// of [2^i, 2^(i+1)) tasks. The direct online readout of the Fig. 10
/// trade-off: longer batching delays shift mass toward higher buckets.
struct BatchSizeHistogram {
  std::vector<std::size_t> buckets;
  std::size_t batches = 0;
  std::size_t tasks = 0;

  void record(std::size_t batch_size);
  double mean_size() const noexcept;
  /// e.g. "[1,2):3 [4,8):12" — empty buckets omitted.
  std::string format() const;
};

/// Per-tenant slice of the service counters: admission, progress, SLO
/// outcome, and the tenant's own latency distribution. Tenants with an
/// SLO report violations as deadlines_missed (the service derives the
/// deadline from TenantConfig::slo_seconds when the request carries
/// none).
struct TenantStats {
  std::string name;  ///< empty = the default tenant
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t rejected_quota = 0;  ///< refused by the tenant's own quota
  std::size_t queued_tasks = 0;    ///< as of the snapshot
  std::size_t queued_cells = 0;
  std::size_t deadlines_met = 0;
  std::size_t deadlines_missed = 0;
  double slo_seconds = 0.0;  ///< 0 = no SLO configured
  LatencySummary latency;    ///< submit→completion seconds, this tenant

  /// Fraction of completed requests that missed their deadline/SLO.
  double slo_violation_rate() const noexcept {
    const std::size_t judged = deadlines_met + deadlines_missed;
    return judged > 0
               ? static_cast<double>(deadlines_missed) / static_cast<double>(judged)
               : 0.0;
  }
};

/// Snapshot of service health taken by AlignmentService::stats().
/// Counters cover the whole service lifetime; queue depths are as of the
/// snapshot; latency summaries cover delivered responses.
struct ServiceStats {
  // Admission.
  std::size_t sw_submitted = 0;
  std::size_t ph_submitted = 0;
  std::size_t rejected_tasks_full = 0;
  std::size_t rejected_cells_full = 0;
  std::size_t rejected_stopped = 0;
  std::size_t rejected_tenant_quota = 0;  ///< per-tenant quota rejections

  // Progress.
  std::size_t sw_completed = 0;
  std::size_t ph_completed = 0;
  std::size_t failed = 0;  ///< admitted requests failed with a ticket error
  std::size_t queue_depth = 0;   ///< tasks waiting (both kinds)
  std::size_t queued_cells = 0;
  std::size_t in_flight_batches = 0;

  // Resilience (guard): silent-data-corruption and watchdog accounting.
  // On the single-device path these count this service's own injection
  // and verification; with a fleet backend stats() adds the fleet's
  // lifetime guard counters (the fleet runs the escalation ladder).
  std::uint64_t sdc_flips = 0;         ///< bit flips injected into launches
  std::size_t sdc_detected = 0;        ///< batches flagged by verification
  std::size_t sdc_corrected = 0;       ///< flagged batches fixed by re-execution
  std::size_t cpu_fallbacks = 0;       ///< batches answered by the CPU reference
  std::size_t watchdog_timeouts = 0;   ///< launches killed by the cycle budget/deadlock watchdog

  // Batch forming.
  BatchSizeHistogram batch_sizes;

  // Deadlines (requests that carried one).
  std::size_t deadlines_met = 0;
  std::size_t deadlines_missed = 0;

  // Simulated-time span and work of delivered responses.
  double first_submit_time = 0.0;
  double last_completion_time = 0.0;
  std::size_t completed_cells = 0;
  double device_busy_seconds = 0.0;

  LatencySummary latency;     ///< total submit→completion seconds
  LatencySummary queue_wait;  ///< submit→batch-formed seconds

  /// Per-tenant breakdowns (present when the service saw a non-default
  /// tenant or was configured with TenantConfigs).
  std::vector<TenantStats> tenants;

  std::size_t submitted() const noexcept { return sw_submitted + ph_submitted; }
  std::size_t completed() const noexcept { return sw_completed + ph_completed; }
  std::size_t rejected() const noexcept {
    return rejected_tasks_full + rejected_cells_full + rejected_stopped +
           rejected_tenant_quota;
  }

  /// Simulated seconds from first admission to last delivery.
  double duration_seconds() const noexcept;
  double throughput_tasks_per_second() const noexcept;
  double gcups() const noexcept;
  /// Fraction of the duration the simulated device was executing batches.
  /// With a fleet backend busy seconds sum across devices, so this reads
  /// as busy device-seconds per wall second and can exceed 1.
  double device_utilization() const noexcept;
};

/// Writes the snapshot as one JSON object, mirroring the field names of
/// the bench sweeps' JSON points (BENCH_serve.json) — submitted/completed/
/// rejected counters, throughput_tasks_per_s, gcups, mean_batch_size and
/// the batch-size histogram, latency and queue-wait percentiles, deadline
/// counters, and device_utilization. Non-finite values are written as 0
/// (JSON has no NaN/Inf). Per-tenant breakdowns appear under "tenants"
/// when any exist. No trailing newline.
void write_stats_json(std::ostream& os, const ServiceStats& stats);

/// Same object plus fleet membership accounting and a "devices" array —
/// one record per registry entry with the shared device-record schema
/// ({id, device, state, batches, tasks, cells, busy_s, launch_failures,
/// slowdowns, sdc_detected, timeouts, quarantines, joined_at_s,
/// free_at_s}) that `fleet-sim --json` and `cluster-sim --json` both
/// emit.
void write_stats_json(std::ostream& os, const ServiceStats& stats,
                      const fleet::FleetStats& fleet);

}  // namespace wsim::serve
