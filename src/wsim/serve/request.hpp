#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "wsim/align/pairhmm.hpp"
#include "wsim/align/smith_waterman.hpp"
#include "wsim/util/check.hpp"
#include "wsim/workload/task.hpp"

namespace wsim::serve {

/// Simulated time in seconds. The service keeps its own clock, advanced
/// explicitly by the caller (`AlignmentService::advance_to`), so arrival
/// processes, deadlines, and latency accounting are deterministic and
/// independent of wall-clock speed — the same convention the simulator
/// uses for kernel and transfer seconds.
using SimTime = double;

/// Scheduling class of a request. Within one batch-forming drain the
/// queue is emptied in priority order (FIFO within a priority), so under
/// load high-priority requests ride the earliest batch that forms.
enum class Priority { kLow = 0, kNormal = 1, kHigh = 2 };

inline constexpr int kPriorities = 3;

/// Why a submission was refused admission. The queue is bounded and never
/// blocks: a full queue answers immediately with one of these instead of
/// stalling the submitter (explicit backpressure).
enum class RejectReason {
  kNone,           ///< admitted
  kQueueTasksFull, ///< the per-kind task bound (max_queue_tasks) is reached
  kQueueCellsFull, ///< the queued-cell bound (max_queue_cells) is reached
  kStopped,        ///< the service is stopping; queued work still drains
  kTenantTasksQuota, ///< the tenant's queued-task quota is reached
  kTenantCellsQuota, ///< the tenant's queued-cell quota is reached
};

constexpr std::string_view to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueTasksFull: return "queue-tasks-full";
    case RejectReason::kQueueCellsFull: return "queue-cells-full";
    case RejectReason::kStopped: return "stopped";
    case RejectReason::kTenantTasksQuota: return "tenant-tasks-quota";
    case RejectReason::kTenantCellsQuota: return "tenant-cells-quota";
  }
  return "?";
}

/// Per-request latency decomposition, all in simulated seconds:
/// submit → (queue wait) → batch formed → (device wait) → launch start →
/// (kernel + transfers of its batch) → completion.
struct RequestLatency {
  SimTime submit_time = 0.0;      ///< entered the admission queue
  SimTime batch_time = 0.0;       ///< left the queue (batch formed)
  SimTime start_time = 0.0;       ///< batch reached the device
  SimTime completion_time = 0.0;  ///< batch finished (incl. transfers)

  double queue_seconds() const noexcept { return batch_time - submit_time; }
  double device_wait_seconds() const noexcept { return start_time - batch_time; }
  double service_seconds() const noexcept { return completion_time - start_time; }
  double total_seconds() const noexcept { return completion_time - submit_time; }
};

struct SwResponse {
  align::SwAlignment alignment;  ///< default-valued in timing-only mode
  RequestLatency latency;
  std::size_t batch_tasks = 0;  ///< size of the batch that carried it
  bool deadline_met = true;     ///< true when no deadline was set
};

struct PairHmmResponse {
  double log10 = 0.0;  ///< 0.0 in timing-only mode
  RequestLatency latency;
  std::size_t batch_tasks = 0;
  bool deadline_met = true;
};

namespace detail {

/// Shared state behind a Ticket: filled by the service when the simulated
/// clock reaches the request's completion time, or failed with an error
/// when the batch carrying the request cannot be completed (every retry
/// attempt exhausted, a watchdog timeout, or verification that never
/// passes with CPU fallback disabled).
template <typename Response>
struct ResponseSlot {
  std::optional<Response> response;
  std::string error;  ///< non-empty iff the request failed
  std::function<void(const Response&)> callback;
};

}  // namespace detail

/// Future-like handle to an admitted request. The slot is written during
/// `advance_to`/`drain` on the advancing thread; a submitter polling from
/// another thread must synchronize with the advancer externally.
template <typename Response>
class Ticket {
 public:
  Ticket() = default;
  explicit Ticket(std::shared_ptr<detail::ResponseSlot<Response>> slot)
      : slot_(std::move(slot)) {}

  /// False for default-constructed tickets (e.g. of rejected submissions).
  bool valid() const noexcept { return slot_ != nullptr; }

  bool ready() const noexcept { return slot_ != nullptr && slot_->response.has_value(); }

  /// True when the service failed this request instead of answering it —
  /// the batch exhausted its retries (e.g. a watchdog LaunchTimeout on
  /// every device) or failed verification with recovery disabled. A
  /// failed ticket never becomes ready; `error()` says why.
  bool failed() const noexcept { return slot_ != nullptr && !slot_->error.empty(); }

  const std::string& error() const {
    util::require(failed(), "Ticket::error: no failure recorded");
    return slot_->error;
  }

  const Response& get() const {
    util::require(ready(), "Ticket::get: response not ready");
    return *slot_->response;
  }

 private:
  std::shared_ptr<detail::ResponseSlot<Response>> slot_;
};

/// One Smith-Waterman alignment request.
struct SwRequest {
  workload::SwTask task;
  Priority priority = Priority::kNormal;
  /// Absolute simulated deadline for completion; the batch former flushes
  /// early when a deadline is at risk, and the response reports whether it
  /// was met.
  std::optional<SimTime> deadline;
  /// Invoked on the advancing thread (outside the service lock) when the
  /// response is delivered, after the ticket becomes ready.
  std::function<void(const SwResponse&)> callback;
  /// Tenant submitting the request; empty = the default tenant. Known
  /// tenants (ServiceConfig::tenants) get their quota and SLO class
  /// applied; unknown names are admitted permissively without quotas.
  std::string tenant;
};

/// One PairHMM likelihood request.
struct PairHmmRequest {
  align::PairHmmTask task;
  Priority priority = Priority::kNormal;
  std::optional<SimTime> deadline;
  std::function<void(const PairHmmResponse&)> callback;
  std::string tenant;  ///< empty = the default tenant
};

/// Outcome of a submission: either an admitted ticket or a reject reason.
template <typename Response>
struct Submit {
  Ticket<Response> ticket;  ///< valid iff admitted
  RejectReason rejected = RejectReason::kNone;

  bool admitted() const noexcept { return rejected == RejectReason::kNone; }
};

using SwSubmit = Submit<SwResponse>;
using PairHmmSubmit = Submit<PairHmmResponse>;

}  // namespace wsim::serve
