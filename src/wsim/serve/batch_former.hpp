#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>

#include "wsim/serve/queue.hpp"

namespace wsim::serve {

/// When the batch former flushes the queue into a launch. Three triggers,
/// mirroring the trade-off of the paper's Fig. 10 re-batching experiment
/// run online: a batch should grow until the device would be saturated
/// (`target_batch_cells`), but no request may age in the queue beyond
/// `max_batch_delay`, and a request whose deadline is at risk flushes
/// immediately.
struct BatchPolicy {
  /// Flush as soon as this many DP cells are queued (the occupancy
  /// target); also the cell capacity of one formed batch.
  std::size_t target_batch_cells = 1u << 21;
  /// Hard cap on tasks per batch (one task per block; grids larger than
  /// this see no more occupancy).
  std::size_t max_batch_tasks = 1024;
  /// Longest a request may wait for its batch to fill, in simulated
  /// seconds. Small values favor latency, large values throughput.
  double max_batch_delay = 200e-6;
  /// Safety margin subtracted from deadlines when deciding whether one is
  /// at risk.
  double deadline_slack = 20e-6;
};

/// Online estimate of a batch's simulated service time (kernel +
/// transfers), modeled as fixed overhead + seconds/cell and updated from
/// every completed batch. Used only for deadline-at-risk policy decisions
/// — never for the reported timings, which always come from the simulator
/// itself.
///
/// Warm-up mirrors the fleet Calibrator: the configured prior is served
/// unchanged until `kWarmupWindow` observations have accumulated, then the
/// rate seeds from their mean and tracks by EWMA. Blending the prior with
/// the first noisy observation instead would let a single early outlier
/// steer deadline decisions for many batches.
class ServiceTimeEstimator {
 public:
  /// Observations the warm-up mean is taken over before the prior is
  /// replaced.
  static constexpr int kWarmupWindow = 4;

  explicit ServiceTimeEstimator(double initial_seconds_per_cell = 1e-9,
                                double fixed_seconds = 20e-6);

  double estimate(std::size_t cells) const noexcept;
  void observe(std::size_t cells, double seconds) noexcept;
  double seconds_per_cell() const noexcept { return seconds_per_cell_; }
  /// False until the warm-up mean has replaced the configured prior.
  bool warmed_up() const noexcept { return seeded_; }

 private:
  double seconds_per_cell_;
  double fixed_seconds_;
  double warmup_sum_ = 0.0;
  int warmup_count_ = 0;
  bool seeded_ = false;
};

/// Earliest simulated time at which the queue must flush: the oldest
/// entry's delay expiry, tightened by any queued deadline minus the
/// estimated service time of the batch it will ride and the policy slack.
/// A time in the past means "overdue, flush now". Empty queue: nullopt.
/// (The cell-target trigger is evaluated at submit time, not here.)
template <typename Entry>
std::optional<SimTime> next_flush_time(const AdmissionQueue<Entry>& queue,
                                       const BatchPolicy& policy,
                                       const ServiceTimeEstimator& estimator) {
  const std::optional<SimTime> oldest = queue.oldest_submit_time();
  if (!oldest.has_value()) {
    return std::nullopt;
  }
  SimTime due = *oldest + policy.max_batch_delay;
  const double batch_seconds =
      estimator.estimate(std::min(queue.cells(), policy.target_batch_cells));
  queue.for_each([&](const Entry& entry) {
    if (entry.deadline.has_value()) {
      due = std::min(due, *entry.deadline - batch_seconds - policy.deadline_slack);
    }
  });
  return due;
}

}  // namespace wsim::serve
