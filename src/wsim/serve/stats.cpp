#include "wsim/serve/stats.hpp"

#include <algorithm>

#include "wsim/util/stats.hpp"

namespace wsim::serve {

LatencySummary summarize_latency(std::vector<double> seconds) {
  LatencySummary summary;
  if (seconds.empty()) {
    return summary;
  }
  const auto base = util::summarize(seconds);
  summary.count = base.count;
  summary.mean = base.mean;
  summary.max = base.max;
  summary.p50 = util::percentile(seconds, 50.0);
  summary.p95 = util::percentile(seconds, 95.0);
  summary.p99 = util::percentile(seconds, 99.0);
  return summary;
}

void BatchSizeHistogram::record(std::size_t batch_size) {
  if (batch_size == 0) {
    return;
  }
  std::size_t bucket = 0;
  for (std::size_t s = batch_size; s > 1; s >>= 1U) {
    ++bucket;
  }
  if (buckets.size() <= bucket) {
    buckets.resize(bucket + 1, 0);
  }
  ++buckets[bucket];
  ++batches;
  tasks += batch_size;
}

double BatchSizeHistogram::mean_size() const noexcept {
  return batches > 0 ? static_cast<double>(tasks) / static_cast<double>(batches)
                     : 0.0;
}

std::string BatchSizeHistogram::format() const {
  std::string out;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    if (!out.empty()) {
      out += ' ';
    }
    out += '[' + std::to_string(std::size_t{1} << i) + ',' +
           std::to_string(std::size_t{1} << (i + 1)) + "):" +
           std::to_string(buckets[i]);
  }
  return out;
}

double ServiceStats::duration_seconds() const noexcept {
  return std::max(0.0, last_completion_time - first_submit_time);
}

double ServiceStats::throughput_tasks_per_second() const noexcept {
  const double duration = duration_seconds();
  return duration > 0.0 ? static_cast<double>(completed()) / duration : 0.0;
}

double ServiceStats::gcups() const noexcept {
  const double duration = duration_seconds();
  return duration > 0.0
             ? static_cast<double>(completed_cells) / duration / 1e9
             : 0.0;
}

double ServiceStats::device_utilization() const noexcept {
  const double duration = duration_seconds();
  return duration > 0.0 ? device_busy_seconds / duration : 0.0;
}

}  // namespace wsim::serve
