#include "wsim/serve/stats.hpp"

#include <algorithm>
#include <ostream>

#include "wsim/fleet/fleet.hpp"
#include "wsim/obs/json.hpp"
#include "wsim/util/stats.hpp"

namespace wsim::serve {

LatencySummary summarize_latency(std::vector<double> seconds) {
  LatencySummary summary;
  if (seconds.empty()) {
    return summary;
  }
  const auto base = util::summarize(seconds);
  summary.count = base.count;
  summary.mean = base.mean;
  summary.max = base.max;
  summary.p50 = util::percentile(seconds, 50.0);
  summary.p95 = util::percentile(seconds, 95.0);
  summary.p99 = util::percentile(seconds, 99.0);
  return summary;
}

void BatchSizeHistogram::record(std::size_t batch_size) {
  if (batch_size == 0) {
    return;
  }
  std::size_t bucket = 0;
  for (std::size_t s = batch_size; s > 1; s >>= 1U) {
    ++bucket;
  }
  if (buckets.size() <= bucket) {
    buckets.resize(bucket + 1, 0);
  }
  ++buckets[bucket];
  ++batches;
  tasks += batch_size;
}

double BatchSizeHistogram::mean_size() const noexcept {
  return batches > 0 ? static_cast<double>(tasks) / static_cast<double>(batches)
                     : 0.0;
}

std::string BatchSizeHistogram::format() const {
  std::string out;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    if (!out.empty()) {
      out += ' ';
    }
    out += '[' + std::to_string(std::size_t{1} << i) + ',' +
           std::to_string(std::size_t{1} << (i + 1)) + "):" +
           std::to_string(buckets[i]);
  }
  return out;
}

double ServiceStats::duration_seconds() const noexcept {
  return std::max(0.0, last_completion_time - first_submit_time);
}

double ServiceStats::throughput_tasks_per_second() const noexcept {
  const double duration = duration_seconds();
  return duration > 0.0 ? static_cast<double>(completed()) / duration : 0.0;
}

double ServiceStats::gcups() const noexcept {
  const double duration = duration_seconds();
  return duration > 0.0
             ? static_cast<double>(completed_cells) / duration / 1e9
             : 0.0;
}

double ServiceStats::device_utilization() const noexcept {
  const double duration = duration_seconds();
  return duration > 0.0 ? device_busy_seconds / duration : 0.0;
}

namespace {

using obs::json_number;
using obs::json_quote;

void write_latency_json(std::ostream& os, const LatencySummary& summary) {
  os << "{\"count\": " << summary.count
     << ", \"mean_s\": " << json_number(summary.mean)
     << ", \"p50_s\": " << json_number(summary.p50)
     << ", \"p95_s\": " << json_number(summary.p95)
     << ", \"p99_s\": " << json_number(summary.p99)
     << ", \"max_s\": " << json_number(summary.max) << "}";
}

void write_tenant_json(std::ostream& os, const TenantStats& tenant) {
  os << "{\"name\": " << json_quote(tenant.name)
     << ", \"submitted\": " << tenant.submitted
     << ", \"completed\": " << tenant.completed
     << ", \"rejected_quota\": " << tenant.rejected_quota
     << ", \"queued_tasks\": " << tenant.queued_tasks
     << ", \"queued_cells\": " << tenant.queued_cells
     << ", \"deadlines_met\": " << tenant.deadlines_met
     << ", \"deadlines_missed\": " << tenant.deadlines_missed
     << ", \"slo_s\": " << json_number(tenant.slo_seconds)
     << ", \"slo_violation_rate\": " << json_number(tenant.slo_violation_rate())
     << ", \"latency\": ";
  write_latency_json(os, tenant.latency);
  os << "}";
}

/// The shared device-record schema emitted by both `fleet-sim --json` and
/// `cluster-sim --json`.
void write_device_json(std::ostream& os, const fleet::DeviceStats& d) {
  os << "{\"id\": " << d.id << ", \"device\": " << json_quote(d.name)
     << ", \"state\": \"" << fleet::to_string(d.state) << "\""
     << ", \"wf_variant\": \"" << kernels::to_string(d.wf_variant) << "\""
     << ", \"intra_batches\": " << d.intra_batches
     << ", \"batches\": " << d.batches << ", \"tasks\": " << d.tasks
     << ", \"cells\": " << d.cells
     << ", \"busy_s\": " << json_number(d.busy_seconds)
     << ", \"launch_failures\": " << d.launch_failures
     << ", \"slowdowns\": " << d.slowdowns
     << ", \"sdc_detected\": " << d.sdc_detected
     << ", \"timeouts\": " << d.timeouts
     << ", \"quarantines\": " << d.quarantines
     << ", \"calibration_factor\": " << json_number(d.calibration_factor)
     << ", \"drift_state\": \"" << fleet::to_string(d.drift_state) << "\""
     << ", \"derated\": " << (d.derated ? "true" : "false")
     << ", \"drift_suspects\": " << d.drift_suspects
     << ", \"derates\": " << d.derates
     << ", \"requalifications\": " << d.requalifications
     << ", \"joined_at_s\": " << json_number(d.joined_at)
     << ", \"free_at_s\": " << json_number(d.free_at) << "}";
}

/// Everything except the closing brace, so the fleet overload can append
/// its membership and device records to the same object.
void write_stats_json_body(std::ostream& os, const ServiceStats& stats) {
  os << "{\n"
     << "  \"schema_version\": " << obs::kStatsSchemaVersion << ",\n"
     << "  \"submitted\": " << stats.submitted()
     << ", \"completed\": " << stats.completed()
     << ", \"rejected\": " << stats.rejected() << ",\n"
     << "  \"rejected_tasks_full\": " << stats.rejected_tasks_full
     << ", \"rejected_cells_full\": " << stats.rejected_cells_full
     << ", \"rejected_stopped\": " << stats.rejected_stopped
     << ", \"rejected_tenant_quota\": " << stats.rejected_tenant_quota << ",\n"
     << "  \"throughput_tasks_per_s\": "
     << json_number(stats.throughput_tasks_per_second())
     << ", \"gcups\": " << json_number(stats.gcups())
     << ", \"device_utilization\": " << json_number(stats.device_utilization())
     << ",\n"
     << "  \"duration_s\": " << json_number(stats.duration_seconds())
     << ", \"completed_cells\": " << stats.completed_cells
     << ", \"device_busy_s\": " << json_number(stats.device_busy_seconds)
     << ",\n"
     << "  \"batches\": " << stats.batch_sizes.batches
     << ", \"mean_batch_size\": " << json_number(stats.batch_sizes.mean_size())
     << ", \"batch_size_histogram\": [";
  bool first = true;
  for (std::size_t i = 0; i < stats.batch_sizes.buckets.size(); ++i) {
    if (stats.batch_sizes.buckets[i] == 0) {
      continue;
    }
    if (!first) {
      os << ", ";
    }
    first = false;
    os << "{\"min_tasks\": " << (std::size_t{1} << i)
       << ", \"batches\": " << stats.batch_sizes.buckets[i] << "}";
  }
  os << "],\n"
     << "  \"deadlines_met\": " << stats.deadlines_met
     << ", \"deadlines_missed\": " << stats.deadlines_missed << ",\n"
     << "  \"failed\": " << stats.failed
     << ", \"sdc_flips\": " << stats.sdc_flips
     << ", \"sdc_detected\": " << stats.sdc_detected
     << ", \"sdc_corrected\": " << stats.sdc_corrected
     << ", \"cpu_fallbacks\": " << stats.cpu_fallbacks
     << ", \"watchdog_timeouts\": " << stats.watchdog_timeouts << ",\n"
     << "  \"latency\": ";
  write_latency_json(os, stats.latency);
  os << ",\n  \"queue_wait\": ";
  write_latency_json(os, stats.queue_wait);
  if (!stats.tenants.empty()) {
    os << ",\n  \"tenants\": [";
    for (std::size_t i = 0; i < stats.tenants.size(); ++i) {
      if (i > 0) {
        os << ", ";
      }
      write_tenant_json(os, stats.tenants[i]);
    }
    os << "]";
  }
}

}  // namespace

void write_stats_json(std::ostream& os, const ServiceStats& stats) {
  write_stats_json_body(os, stats);
  os << "\n}";
}

void write_stats_json(std::ostream& os, const ServiceStats& stats,
                      const fleet::FleetStats& fleet) {
  write_stats_json_body(os, stats);
  os << ",\n  \"dispatches\": " << fleet.dispatches
     << ", \"retries\": " << fleet.retries
     << ", \"requeues\": " << fleet.requeues
     << ", \"joins\": " << fleet.joins << ", \"drains\": " << fleet.drains
     << ", \"retires\": " << fleet.retires << ",\n"
     << "  \"devices\": [";
  for (std::size_t i = 0; i < fleet.devices.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    write_device_json(os, fleet.devices[i]);
  }
  os << "]\n}";
}

}  // namespace wsim::serve
