#include "wsim/serve/stats.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "wsim/util/stats.hpp"

namespace wsim::serve {

LatencySummary summarize_latency(std::vector<double> seconds) {
  LatencySummary summary;
  if (seconds.empty()) {
    return summary;
  }
  const auto base = util::summarize(seconds);
  summary.count = base.count;
  summary.mean = base.mean;
  summary.max = base.max;
  summary.p50 = util::percentile(seconds, 50.0);
  summary.p95 = util::percentile(seconds, 95.0);
  summary.p99 = util::percentile(seconds, 99.0);
  return summary;
}

void BatchSizeHistogram::record(std::size_t batch_size) {
  if (batch_size == 0) {
    return;
  }
  std::size_t bucket = 0;
  for (std::size_t s = batch_size; s > 1; s >>= 1U) {
    ++bucket;
  }
  if (buckets.size() <= bucket) {
    buckets.resize(bucket + 1, 0);
  }
  ++buckets[bucket];
  ++batches;
  tasks += batch_size;
}

double BatchSizeHistogram::mean_size() const noexcept {
  return batches > 0 ? static_cast<double>(tasks) / static_cast<double>(batches)
                     : 0.0;
}

std::string BatchSizeHistogram::format() const {
  std::string out;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    if (!out.empty()) {
      out += ' ';
    }
    out += '[' + std::to_string(std::size_t{1} << i) + ',' +
           std::to_string(std::size_t{1} << (i + 1)) + "):" +
           std::to_string(buckets[i]);
  }
  return out;
}

double ServiceStats::duration_seconds() const noexcept {
  return std::max(0.0, last_completion_time - first_submit_time);
}

double ServiceStats::throughput_tasks_per_second() const noexcept {
  const double duration = duration_seconds();
  return duration > 0.0 ? static_cast<double>(completed()) / duration : 0.0;
}

double ServiceStats::gcups() const noexcept {
  const double duration = duration_seconds();
  return duration > 0.0
             ? static_cast<double>(completed_cells) / duration / 1e9
             : 0.0;
}

double ServiceStats::device_utilization() const noexcept {
  const double duration = duration_seconds();
  return duration > 0.0 ? device_busy_seconds / duration : 0.0;
}

namespace {

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  std::ostringstream os;
  os << value;
  return os.str();
}

void write_latency_json(std::ostream& os, const LatencySummary& summary) {
  os << "{\"count\": " << summary.count
     << ", \"mean_s\": " << json_number(summary.mean)
     << ", \"p50_s\": " << json_number(summary.p50)
     << ", \"p95_s\": " << json_number(summary.p95)
     << ", \"p99_s\": " << json_number(summary.p99)
     << ", \"max_s\": " << json_number(summary.max) << "}";
}

}  // namespace

void write_stats_json(std::ostream& os, const ServiceStats& stats) {
  os << "{\n"
     << "  \"submitted\": " << stats.submitted()
     << ", \"completed\": " << stats.completed()
     << ", \"rejected\": " << stats.rejected() << ",\n"
     << "  \"rejected_tasks_full\": " << stats.rejected_tasks_full
     << ", \"rejected_cells_full\": " << stats.rejected_cells_full
     << ", \"rejected_stopped\": " << stats.rejected_stopped << ",\n"
     << "  \"throughput_tasks_per_s\": "
     << json_number(stats.throughput_tasks_per_second())
     << ", \"gcups\": " << json_number(stats.gcups())
     << ", \"device_utilization\": " << json_number(stats.device_utilization())
     << ",\n"
     << "  \"duration_s\": " << json_number(stats.duration_seconds())
     << ", \"completed_cells\": " << stats.completed_cells
     << ", \"device_busy_s\": " << json_number(stats.device_busy_seconds)
     << ",\n"
     << "  \"batches\": " << stats.batch_sizes.batches
     << ", \"mean_batch_size\": " << json_number(stats.batch_sizes.mean_size())
     << ", \"batch_size_histogram\": [";
  bool first = true;
  for (std::size_t i = 0; i < stats.batch_sizes.buckets.size(); ++i) {
    if (stats.batch_sizes.buckets[i] == 0) {
      continue;
    }
    if (!first) {
      os << ", ";
    }
    first = false;
    os << "{\"min_tasks\": " << (std::size_t{1} << i)
       << ", \"batches\": " << stats.batch_sizes.buckets[i] << "}";
  }
  os << "],\n"
     << "  \"deadlines_met\": " << stats.deadlines_met
     << ", \"deadlines_missed\": " << stats.deadlines_missed << ",\n"
     << "  \"failed\": " << stats.failed
     << ", \"sdc_flips\": " << stats.sdc_flips
     << ", \"sdc_detected\": " << stats.sdc_detected
     << ", \"sdc_corrected\": " << stats.sdc_corrected
     << ", \"cpu_fallbacks\": " << stats.cpu_fallbacks
     << ", \"watchdog_timeouts\": " << stats.watchdog_timeouts << ",\n"
     << "  \"latency\": ";
  write_latency_json(os, stats.latency);
  os << ",\n  \"queue_wait\": ";
  write_latency_json(os, stats.queue_wait);
  os << "\n}";
}

}  // namespace wsim::serve
