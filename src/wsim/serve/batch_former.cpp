#include "wsim/serve/batch_former.hpp"

#include "wsim/util/check.hpp"

namespace wsim::serve {

namespace {

/// EWMA weight of the newest observation. Heavy enough to track a
/// workload shift within a few batches, light enough that one outlier
/// batch does not whipsaw the deadline policy.
constexpr double kAlpha = 0.3;

}  // namespace

ServiceTimeEstimator::ServiceTimeEstimator(double initial_seconds_per_cell,
                                           double fixed_seconds)
    : seconds_per_cell_(initial_seconds_per_cell), fixed_seconds_(fixed_seconds) {
  util::require(initial_seconds_per_cell > 0.0,
                "ServiceTimeEstimator: initial_seconds_per_cell must be > 0");
  util::require(fixed_seconds >= 0.0,
                "ServiceTimeEstimator: fixed_seconds must be >= 0");
}

double ServiceTimeEstimator::estimate(std::size_t cells) const noexcept {
  return fixed_seconds_ + seconds_per_cell_ * static_cast<double>(cells);
}

void ServiceTimeEstimator::observe(std::size_t cells, double seconds) noexcept {
  if (cells == 0) {
    return;
  }
  const double variable = seconds > fixed_seconds_ ? seconds - fixed_seconds_ : 0.0;
  const double observed = variable / static_cast<double>(cells);
  if (!seeded_) {
    warmup_sum_ += observed;
    if (++warmup_count_ >= kWarmupWindow) {
      seconds_per_cell_ = warmup_sum_ / static_cast<double>(warmup_count_);
      seeded_ = true;
    }
    return;
  }
  seconds_per_cell_ = (1.0 - kAlpha) * seconds_per_cell_ + kAlpha * observed;
}

}  // namespace wsim::serve
