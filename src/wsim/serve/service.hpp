#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "wsim/guard/guard.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/serve/batch_former.hpp"
#include "wsim/serve/queue.hpp"
#include "wsim/serve/request.hpp"
#include "wsim/serve/stats.hpp"
#include "wsim/serve/tenant.hpp"
#include "wsim/simt/device.hpp"

namespace wsim::fleet {
class FleetExecutor;
}  // namespace wsim::fleet

namespace wsim::serve {

struct ServiceConfig {
  simt::DeviceSpec device = simt::make_titan_x();
  kernels::CommMode sw_design = kernels::CommMode::kShuffle;
  kernels::PhDesign ph_design = kernels::PhDesign::kShuffle;

  /// Flush triggers and batch capacity (see BatchPolicy).
  BatchPolicy policy;

  /// Admission bounds, per request kind (SW and PairHMM queue
  /// independently since they launch different kernels).
  std::size_t max_queue_tasks = 4096;
  std::size_t max_queue_cells = 0;  ///< 0 = unbounded

  /// Quantization of the gpuPairHMM-style length grouping applied to each
  /// formed batch (workload::length_bucket).
  std::size_t length_granularity = 32;

  bool overlap_transfers = false;
  /// GATK-style double-precision rescue of underflowed PairHMM tasks
  /// (full-output mode only).
  bool double_fallback = true;

  /// Collect real per-task outputs (alignments / log10 likelihoods).
  /// When false the service runs timing-only — shape-cached execution
  /// through the engine's cost cache — so load experiments stay cheap;
  /// responses then carry latencies but default payloads.
  bool collect_outputs = true;

  /// SDC injection, detection mode, watchdog budget, and escalation knobs
  /// for the single-device path (output-collecting batches only; the
  /// timing-only path stays clean). Detection escalates on the one
  /// device: re-run up to max_reexecutions, then the CPU reference. With
  /// a fleet backend this field is unused — configure the fleet's own
  /// FleetConfig::guard instead, and the fleet also re-places flagged or
  /// timed-out batches on other devices.
  guard::GuardConfig guard;

  /// Engine that executes the launches; null means the process-wide
  /// simt::shared_engine(), shared with the pipeline and the CLI.
  simt::ExecutionEngine* engine = nullptr;

  /// Optional fleet backend (non-owning). When set, formed batches are
  /// dispatched to this multi-device executor — placement policy, fault
  /// injection, retry-with-backoff — instead of the single `device`;
  /// `device`, `sw_design`, `ph_design`, and `engine` above are then
  /// unused (the fleet brings its own per-device kernel variants and
  /// engine). Results are bit-identical to the single-device path:
  /// placement and faults move time, not values. With several devices
  /// ServiceStats::device_busy_seconds sums across them, so
  /// device_utilization() reads as busy device-seconds per wall second
  /// (it can exceed 1); per-device utilization comes from
  /// fleet::FleetExecutor::stats().
  fleet::FleetExecutor* fleet = nullptr;

  /// Known tenants with quotas and SLO classes. Requests naming a tenant
  /// not listed here (or naming none) fall back to a permissive default
  /// tenant — no quota, no SLO — created on first use, so single-tenant
  /// callers need no configuration.
  std::vector<TenantConfig> tenants;
};

/// Cheap queue-pressure readout for control loops (the cluster
/// autoscaler polls this every tick; unlike stats() it sorts no latency
/// samples).
struct QueueSnapshot {
  std::size_t queued_tasks = 0;
  std::size_t queued_cells = 0;
  std::size_t in_flight_batches = 0;
  /// Earliest submit time still queued (either kind); unset when idle.
  std::optional<SimTime> oldest_submit_time;
};

/// An asynchronous alignment service over the simulator: accepts
/// SwRequest/PairHmmRequest submissions, queues them through a bounded
/// admission queue (reject-with-reason when full, never block), forms
/// batches dynamically — flush at the cell target, when the oldest
/// request's batching delay expires, or when a deadline is at risk —
/// groups each batch by similar task length, and executes it on the
/// shared ExecutionEngine. This is the paper's Fig. 10 re-batching result
/// operated online: many small submissions are merged into launches large
/// enough to occupy the device.
///
/// Time model: the service owns a simulated clock. Submissions are
/// stamped with the current clock; `advance_to(t)` processes every flush
/// and delivery due up to `t` in deterministic event order. Batches
/// execute on a single simulated device timeline (a batch starts when the
/// device frees up), and responses become ready when the clock reaches
/// their batch's completion time. Results are bit-identical to running
/// the same tasks directly through the runners — batching moves time, not
/// values.
///
/// Thread safety: all public methods lock the service; callbacks run on
/// the advancing thread after the lock is released. Ticket state is
/// written while advancing, so polling a ticket from another thread needs
/// external synchronization with the advancer.
class AlignmentService {
 public:
  explicit AlignmentService(ServiceConfig config = {});

  AlignmentService(const AlignmentService&) = delete;
  AlignmentService& operator=(const AlignmentService&) = delete;

  const ServiceConfig& config() const noexcept { return config_; }

  /// Admit a request at the current simulated time, or reject with a
  /// backpressure reason. Never blocks.
  SwSubmit submit(SwRequest request);
  PairHmmSubmit submit(PairHmmRequest request);

  /// Current simulated time.
  SimTime now() const;

  /// Advances the clock to `t`, forming/executing every batch that comes
  /// due and delivering every response that completes on the way. Moving
  /// backwards is a no-op.
  void advance_to(SimTime t);

  /// Runs the clock forward until all queued and in-flight work is
  /// delivered; returns the final simulated time.
  SimTime drain();

  /// Stops admission: subsequent submissions are rejected with kStopped.
  /// Already-admitted work still drains.
  void stop();

  ServiceStats stats() const;

  /// Queue-pressure snapshot without percentile work; see QueueSnapshot.
  QueueSnapshot queue_snapshot() const;

 private:
  template <typename Task, typename Response>
  struct Entry {
    Task task;
    Priority priority = Priority::kNormal;
    std::optional<SimTime> deadline;
    SimTime submit_time = 0.0;
    std::size_t cells = 0;
    std::shared_ptr<detail::ResponseSlot<Response>> slot;
    std::uint32_t tenant = 0;  ///< index into tenants_; 0 = default
  };
  using SwEntry = Entry<workload::SwTask, SwResponse>;
  using PhEntry = Entry<align::PairHmmTask, PairHmmResponse>;

  /// A batch that was formed and executed but whose simulated completion
  /// time has not been reached yet. `deliver` writes the responses into
  /// their slots, updates stats, and returns the user callbacks to invoke
  /// once the service lock is dropped.
  struct InFlight {
    SimTime completion_time = 0.0;
    std::uint64_t order = 0;  ///< formation order, for deterministic ties
    std::function<std::vector<std::function<void()>>()> deliver;
  };

  using Callbacks = std::vector<std::function<void()>>;

  /// Lifetime accounting of one tenant (index 0 is the default tenant).
  /// `queued_*` track work currently in the admission queues and enforce
  /// the tenant's quota.
  struct TenantState {
    TenantConfig cfg;
    std::size_t queued_tasks = 0;
    std::size_t queued_cells = 0;
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t rejected_quota = 0;
    std::size_t deadlines_met = 0;
    std::size_t deadlines_missed = 0;
    std::vector<double> latency_samples;
  };

  /// Index of the tenant named `name`, creating a permissive record for
  /// unknown names (so per-tenant stats exist even without configuration).
  std::uint32_t tenant_index(const std::string& name);

  /// Shared admission logic: quota check, SLO deadline/priority mapping.
  /// Returns kNone and fills the entry's tenant/priority/deadline on
  /// admission.
  template <typename E>
  RejectReason admit_tenant(const std::string& name, E& entry);

  void process_until(SimTime limit, Callbacks& callbacks);
  void flush_sw();
  void flush_ph();
  void flush_while_over_target();
  void deliver_in_flight(std::size_t index, Callbacks& callbacks);

  ServiceConfig config_;
  kernels::SwRunner sw_runner_;
  kernels::PhRunner ph_runner_;
  simt::ExecutionEngine* engine_;  ///< non-null after construction
  fleet::FleetExecutor* fleet_;    ///< null = single-device backend

  mutable std::mutex mu_;
  SimTime clock_ = 0.0;
  SimTime device_free_at_ = 0.0;
  bool stopped_ = false;
  std::uint64_t batch_order_ = 0;
  std::uint64_t guard_launch_seq_ = 0;  ///< fresh SDC launch id per run

  AdmissionQueue<SwEntry> sw_queue_;
  AdmissionQueue<PhEntry> ph_queue_;
  ServiceTimeEstimator estimator_;
  std::vector<InFlight> in_flight_;
  std::vector<TenantState> tenants_;  ///< [0] = default; config order after

  ServiceStats totals_;  ///< counters only; queue depths filled by stats()
  std::vector<double> latency_samples_;
  std::vector<double> queue_wait_samples_;
};

}  // namespace wsim::serve
