#pragma once

#include <array>
#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "wsim/serve/request.hpp"

namespace wsim::serve {

/// Bounded admission-controlled queue: FIFO within each priority,
/// drained highest-priority-first. Admission never blocks — a push that
/// would exceed a bound is answered with a RejectReason immediately, which
/// is the service's backpressure signal.
///
/// `Entry` must expose `priority` (Priority), `cells` (std::size_t),
/// `submit_time` (SimTime), and `deadline` (std::optional<SimTime>).
template <typename Entry>
class AdmissionQueue {
 public:
  /// `max_tasks` bounds queued entries (>= 1); `max_cells` bounds queued
  /// DP cells, 0 meaning unbounded. Cell bounds matter because one huge
  /// task can cost as much as hundreds of small ones.
  AdmissionQueue(std::size_t max_tasks, std::size_t max_cells)
      : max_tasks_(max_tasks), max_cells_(max_cells) {
    util::require(max_tasks_ >= 1, "AdmissionQueue: max_tasks must be >= 1");
  }

  /// Admits the entry or reports why not (the entry is dropped then).
  RejectReason try_push(Entry entry) {
    if (size_ + 1 > max_tasks_) {
      return RejectReason::kQueueTasksFull;
    }
    if (max_cells_ != 0 && cells_ + entry.cells > max_cells_) {
      return RejectReason::kQueueCellsFull;
    }
    cells_ += entry.cells;
    ++size_;
    lanes_[static_cast<std::size_t>(entry.priority)].push_back(std::move(entry));
    return RejectReason::kNone;
  }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t cells() const noexcept { return cells_; }
  std::size_t max_tasks() const noexcept { return max_tasks_; }

  /// Earliest submit time of any queued entry (each lane is FIFO, so the
  /// lane heads are the candidates).
  std::optional<SimTime> oldest_submit_time() const {
    std::optional<SimTime> oldest;
    for (const auto& lane : lanes_) {
      if (!lane.empty() &&
          (!oldest.has_value() || lane.front().submit_time < *oldest)) {
        oldest = lane.front().submit_time;
      }
    }
    return oldest;
  }

  /// Visits every queued entry (order unspecified); used for deadline
  /// scans.
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& lane : lanes_) {
      for (const Entry& entry : lane) {
        f(entry);
      }
    }
  }

  /// Drains up to `max_tasks` entries, stopping before an entry that would
  /// push the drained cell total past `cell_target` (at least one entry is
  /// always taken). Highest priority first, FIFO within a priority — so a
  /// capacity-limited batch is filled with the most urgent work.
  std::vector<Entry> pop_batch(std::size_t max_tasks, std::size_t cell_target) {
    std::vector<Entry> batch;
    std::size_t batch_cells = 0;
    for (std::size_t p = lanes_.size(); p-- > 0;) {
      auto& lane = lanes_[p];
      while (!lane.empty() && batch.size() < max_tasks) {
        Entry& head = lane.front();
        if (!batch.empty() && batch_cells + head.cells > cell_target) {
          return batch;
        }
        batch_cells += head.cells;
        cells_ -= head.cells;
        --size_;
        batch.push_back(std::move(head));
        lane.pop_front();
      }
    }
    return batch;
  }

 private:
  std::size_t max_tasks_;
  std::size_t max_cells_;
  std::array<std::deque<Entry>, kPriorities> lanes_;
  std::size_t size_ = 0;
  std::size_t cells_ = 0;
};

}  // namespace wsim::serve
