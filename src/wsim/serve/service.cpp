#include "wsim/serve/service.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "wsim/fleet/fleet.hpp"
#include "wsim/obs/metrics.hpp"
#include "wsim/obs/obs.hpp"
#include "wsim/simt/engine.hpp"
#include "wsim/simt/watchdog.hpp"
#include "wsim/util/check.hpp"
#include "wsim/workload/batching.hpp"

namespace wsim::serve {

namespace {

constexpr SimTime kForever = std::numeric_limits<SimTime>::infinity();

/// A response waiting for its batch's simulated completion time.
template <typename Response>
struct Delivery {
  std::shared_ptr<detail::ResponseSlot<Response>> slot;
  Response response;
  bool had_deadline = false;
  std::size_t cells = 0;
  std::uint32_t tenant = 0;
};

/// Fails every entry's ticket with `why` and returns how many. No
/// callbacks fire: the response callback carries a Response, which never
/// came to exist.
template <typename Entry>
std::size_t fail_entries(std::vector<Entry>& entries, const std::string& why) {
  for (auto& entry : entries) {
    entry.slot->error = why;
  }
  return entries.size();
}

/// SDC injection can corrupt an address register into an out-of-bounds
/// access — a crash, not a silent error. The caller's `run` draws a fresh
/// SDC launch id per call, so a retry sees an independent corruption
/// stream; without injection (or on a watchdog timeout, which is
/// deterministic for a given kernel and budget) errors propagate.
template <typename Run>
auto run_with_retry(Run&& run, const guard::GuardConfig& cfg) {
  for (int attempt = 0;; ++attempt) {
    try {
      return run();
    } catch (const simt::LaunchTimeout&) {
      throw;
    } catch (const util::CheckError&) {
      if (!cfg.sdc.enabled() || attempt + 1 >= 4) {
        throw;
      }
    }
  }
}

/// Single-device detection + escalation, mirroring the fleet's
/// guarded_execute minus placement: verify the outputs, re-execute on the
/// same device (a fresh launch id draws an independent corruption
/// stream), and as the last step substitute the CPU reference.
/// `run_once` accounts seconds and flips itself.
template <typename Result, typename RunOnce, typename Validate,
          typename FingerprintOf, typename CpuSubstitute>
Result guarded_single(const guard::GuardConfig& cfg, ServiceStats& totals,
                      RunOnce&& run_once, Validate&& validate,
                      FingerprintOf&& fingerprint_of,
                      CpuSubstitute&& cpu_substitute) {
  Result first = run_once();
  if (cfg.detect == guard::DetectMode::kAbft) {
    if (!validate(first)) {
      return first;
    }
    ++totals.sdc_detected;
    for (int redo = 0; redo < cfg.max_reexecutions; ++redo) {
      Result rerun = run_once();
      if (!validate(rerun)) {
        ++totals.sdc_corrected;
        return rerun;
      }
    }
    if (!cfg.cpu_fallback) {
      throw util::CheckError(
          "guard: batch still failing verification after " +
          std::to_string(cfg.max_reexecutions) + " re-executions");
    }
    cpu_substitute(first);
    ++totals.cpu_fallbacks;
    return first;
  }
  // kDual: a second independent run must reproduce the exact bits; on a
  // mismatch a third run breaks the tie two-of-three.
  const std::uint64_t print1 = fingerprint_of(first);
  Result second = run_once();
  if (fingerprint_of(second) == print1) {
    return first;
  }
  ++totals.sdc_detected;
  Result third = run_once();
  const std::uint64_t print3 = fingerprint_of(third);
  if (print3 == print1 || print3 == fingerprint_of(second)) {
    ++totals.sdc_corrected;
    return third;
  }
  if (!cfg.cpu_fallback) {
    throw util::CheckError(
        "guard: three dual-execution runs disagree pairwise; no quorum");
  }
  cpu_substitute(third);
  ++totals.cpu_fallbacks;
  return third;
}

void note_reject(SimTime ts, RejectReason reason) {
  static obs::Counter c_rejected("serve.rejected");
  c_rejected.add();
  obs::instant(ts, obs::Layer::kServe, "serve.reject", -1, 0,
               static_cast<double>(static_cast<int>(reason)));
}

}  // namespace

AlignmentService::AlignmentService(ServiceConfig config)
    : config_(std::move(config)),
      sw_runner_(config_.sw_design),
      ph_runner_(config_.ph_design),
      engine_(config_.engine != nullptr ? config_.engine
                                        : &simt::shared_engine()),
      fleet_(config_.fleet),
      sw_queue_(config_.max_queue_tasks, config_.max_queue_cells),
      ph_queue_(config_.max_queue_tasks, config_.max_queue_cells) {
  util::require(config_.policy.max_batch_tasks >= 1,
                "AlignmentService: max_batch_tasks must be >= 1");
  util::require(config_.policy.target_batch_cells >= 1,
                "AlignmentService: target_batch_cells must be >= 1");
  util::require(config_.policy.max_batch_delay >= 0.0,
                "AlignmentService: max_batch_delay must be >= 0");
  util::require(config_.length_granularity >= 1,
                "AlignmentService: length_granularity must be >= 1");
  // Tenant 0 is the permissive default every unnamed (or unknown)
  // submission lands in; configured tenants follow in config order.
  tenants_.emplace_back();
  for (const TenantConfig& tenant : config_.tenants) {
    util::require(!tenant.name.empty(),
                  "AlignmentService: configured tenants need a name");
    TenantState state;
    state.cfg = tenant;
    tenants_.push_back(std::move(state));
  }
}

std::uint32_t AlignmentService::tenant_index(const std::string& name) {
  if (name.empty()) {
    return 0;
  }
  for (std::size_t i = 1; i < tenants_.size(); ++i) {
    if (tenants_[i].cfg.name == name) {
      return static_cast<std::uint32_t>(i);
    }
  }
  // Unknown tenant: admit permissively but keep its own accounting row.
  TenantState state;
  state.cfg.name = name;
  tenants_.push_back(std::move(state));
  return static_cast<std::uint32_t>(tenants_.size() - 1);
}

template <typename E>
RejectReason AlignmentService::admit_tenant(const std::string& name, E& entry) {
  entry.tenant = tenant_index(name);
  TenantState& tenant = tenants_[entry.tenant];
  if (tenant.cfg.max_queued_tasks != 0 &&
      tenant.queued_tasks + 1 > tenant.cfg.max_queued_tasks) {
    ++tenant.rejected_quota;
    ++totals_.rejected_tenant_quota;
    return RejectReason::kTenantTasksQuota;
  }
  if (tenant.cfg.max_queued_cells != 0 &&
      tenant.queued_cells + entry.cells > tenant.cfg.max_queued_cells) {
    ++tenant.rejected_quota;
    ++totals_.rejected_tenant_quota;
    return RejectReason::kTenantCellsQuota;
  }
  // SLO class: derive the deadline and lane the tenant contracted for
  // unless the request pinned its own.
  if (tenant.cfg.slo_seconds > 0.0 && !entry.deadline.has_value()) {
    entry.deadline = clock_ + tenant.cfg.slo_seconds;
  }
  if (tenant.cfg.priority.has_value() || tenant.cfg.slo_seconds > 0.0) {
    entry.priority = tenant.cfg.effective_priority();
  }
  return RejectReason::kNone;
}

SwSubmit AlignmentService::submit(SwRequest request) {
  util::require(!request.task.query.empty() && !request.task.target.empty(),
                "AlignmentService: SW request needs non-empty sequences");
  SwSubmit result;
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) {
    ++totals_.rejected_stopped;
    note_reject(clock_, RejectReason::kStopped);
    result.rejected = RejectReason::kStopped;
    return result;
  }
  SwEntry entry;
  entry.cells = request.task.cells();
  entry.task = std::move(request.task);
  entry.priority = request.priority;
  entry.deadline = request.deadline;
  entry.submit_time = clock_;
  const RejectReason quota = admit_tenant(request.tenant, entry);
  if (quota != RejectReason::kNone) {
    note_reject(clock_, quota);
    result.rejected = quota;
    return result;
  }
  entry.slot = std::make_shared<detail::ResponseSlot<SwResponse>>();
  entry.slot->callback = std::move(request.callback);
  Ticket<SwResponse> ticket(entry.slot);
  const std::uint32_t tenant_idx = entry.tenant;
  const std::size_t cells = entry.cells;
  const RejectReason reason = sw_queue_.try_push(std::move(entry));
  if (reason != RejectReason::kNone) {
    reason == RejectReason::kQueueTasksFull ? ++totals_.rejected_tasks_full
                                            : ++totals_.rejected_cells_full;
    note_reject(clock_, reason);
    result.rejected = reason;
    return result;
  }
  if (totals_.submitted() == 0) {
    totals_.first_submit_time = clock_;
  }
  ++totals_.sw_submitted;
  static obs::Counter c_submitted("serve.sw_submitted");
  c_submitted.add();
  obs::instant(clock_, obs::Layer::kServe, "serve.submit_sw", -1, 0,
               static_cast<double>(tenant_idx), static_cast<double>(cells));
  TenantState& tenant = tenants_[tenant_idx];
  ++tenant.submitted;
  ++tenant.queued_tasks;
  tenant.queued_cells += cells;
  result.ticket = std::move(ticket);
  flush_while_over_target();
  return result;
}

PairHmmSubmit AlignmentService::submit(PairHmmRequest request) {
  const auto& task = request.task;
  util::require(!task.read.empty() && !task.hap.empty(),
                "AlignmentService: PairHMM request needs non-empty sequences");
  util::require(task.read.size() <= static_cast<std::size_t>(kernels::kPhMaxReadLen),
                "AlignmentService: PairHMM read exceeds kPhMaxReadLen");
  util::require(task.base_quals.size() == task.read.size() &&
                    task.ins_quals.size() == task.read.size() &&
                    task.del_quals.size() == task.read.size(),
                "AlignmentService: PairHMM quality tracks must match read length");
  PairHmmSubmit result;
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) {
    ++totals_.rejected_stopped;
    note_reject(clock_, RejectReason::kStopped);
    result.rejected = RejectReason::kStopped;
    return result;
  }
  PhEntry entry;
  entry.cells = workload::cells(request.task);
  entry.task = std::move(request.task);
  entry.priority = request.priority;
  entry.deadline = request.deadline;
  entry.submit_time = clock_;
  const RejectReason quota = admit_tenant(request.tenant, entry);
  if (quota != RejectReason::kNone) {
    note_reject(clock_, quota);
    result.rejected = quota;
    return result;
  }
  entry.slot = std::make_shared<detail::ResponseSlot<PairHmmResponse>>();
  entry.slot->callback = std::move(request.callback);
  Ticket<PairHmmResponse> ticket(entry.slot);
  const std::uint32_t tenant_idx = entry.tenant;
  const std::size_t cells = entry.cells;
  const RejectReason reason = ph_queue_.try_push(std::move(entry));
  if (reason != RejectReason::kNone) {
    reason == RejectReason::kQueueTasksFull ? ++totals_.rejected_tasks_full
                                            : ++totals_.rejected_cells_full;
    note_reject(clock_, reason);
    result.rejected = reason;
    return result;
  }
  if (totals_.submitted() == 0) {
    totals_.first_submit_time = clock_;
  }
  ++totals_.ph_submitted;
  static obs::Counter c_submitted("serve.ph_submitted");
  c_submitted.add();
  obs::instant(clock_, obs::Layer::kServe, "serve.submit_ph", -1, 0,
               static_cast<double>(tenant_idx), static_cast<double>(cells));
  TenantState& tenant = tenants_[tenant_idx];
  ++tenant.submitted;
  ++tenant.queued_tasks;
  tenant.queued_cells += cells;
  result.ticket = std::move(ticket);
  flush_while_over_target();
  return result;
}

SimTime AlignmentService::now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_;
}

void AlignmentService::advance_to(SimTime t) {
  Callbacks callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    process_until(t, callbacks);
    clock_ = std::max(clock_, t);
    obs::set_sim_time(clock_);
  }
  for (auto& callback : callbacks) {
    callback();
  }
}

SimTime AlignmentService::drain() {
  Callbacks callbacks;
  SimTime end = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    process_until(kForever, callbacks);
    end = clock_;
  }
  for (auto& callback : callbacks) {
    callback();
  }
  return end;
}

void AlignmentService::stop() {
  std::lock_guard<std::mutex> lock(mu_);
  stopped_ = true;
}

ServiceStats AlignmentService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats snapshot = totals_;
  snapshot.queue_depth = sw_queue_.size() + ph_queue_.size();
  snapshot.queued_cells = sw_queue_.cells() + ph_queue_.cells();
  snapshot.in_flight_batches = in_flight_.size();
  if (fleet_ != nullptr) {
    // The fleet runs the guard ladder for batches we dispatch to it; fold
    // its lifetime accounting into the service view.
    const guard::GuardStats fleet_guard = fleet_->stats().guard;
    snapshot.sdc_flips += fleet_guard.sdc_flips;
    snapshot.sdc_detected += fleet_guard.sdc_detected;
    snapshot.sdc_corrected += fleet_guard.sdc_corrected;
    snapshot.cpu_fallbacks += fleet_guard.cpu_fallbacks;
    snapshot.watchdog_timeouts += fleet_guard.watchdog_timeouts;
  }
  snapshot.latency = summarize_latency(latency_samples_);
  snapshot.queue_wait = summarize_latency(queue_wait_samples_);
  for (const TenantState& tenant : tenants_) {
    // The default tenant only reports when it actually carried traffic.
    if (tenant.cfg.name.empty() && tenant.submitted == 0) {
      continue;
    }
    TenantStats row;
    row.name = tenant.cfg.name;
    row.submitted = tenant.submitted;
    row.completed = tenant.completed;
    row.rejected_quota = tenant.rejected_quota;
    row.queued_tasks = tenant.queued_tasks;
    row.queued_cells = tenant.queued_cells;
    row.deadlines_met = tenant.deadlines_met;
    row.deadlines_missed = tenant.deadlines_missed;
    row.slo_seconds = tenant.cfg.slo_seconds;
    row.latency = summarize_latency(tenant.latency_samples);
    snapshot.tenants.push_back(std::move(row));
  }
  return snapshot;
}

QueueSnapshot AlignmentService::queue_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  QueueSnapshot snapshot;
  snapshot.queued_tasks = sw_queue_.size() + ph_queue_.size();
  snapshot.queued_cells = sw_queue_.cells() + ph_queue_.cells();
  snapshot.in_flight_batches = in_flight_.size();
  snapshot.oldest_submit_time = sw_queue_.oldest_submit_time();
  const std::optional<SimTime> ph_oldest = ph_queue_.oldest_submit_time();
  if (ph_oldest.has_value() && (!snapshot.oldest_submit_time.has_value() ||
                                *ph_oldest < *snapshot.oldest_submit_time)) {
    snapshot.oldest_submit_time = ph_oldest;
  }
  return snapshot;
}

/// Deterministic event loop: repeatedly picks the earliest due event —
/// an in-flight completion, an SW flush, or a PH flush, in that order on
/// ties — clamps overdue events to the current clock, and processes it,
/// until nothing is due at or before `limit`.
void AlignmentService::process_until(SimTime limit, Callbacks& callbacks) {
  for (;;) {
    int kind = -1;  // 0 deliver, 1 flush SW, 2 flush PH
    SimTime when = kForever;
    std::size_t flight_index = 0;
    for (std::size_t i = 0; i < in_flight_.size(); ++i) {
      const InFlight& flight = in_flight_[i];
      if (kind != 0 || flight.completion_time < when ||
          (flight.completion_time == when &&
           flight.order < in_flight_[flight_index].order)) {
        kind = 0;
        when = flight.completion_time;
        flight_index = i;
      }
    }
    const auto consider = [&](std::optional<SimTime> due, int flush_kind) {
      if (due.has_value() && std::max(*due, clock_) < std::max(when, clock_)) {
        kind = flush_kind;
        when = *due;
      }
    };
    consider(next_flush_time(sw_queue_, config_.policy, estimator_), 1);
    consider(next_flush_time(ph_queue_, config_.policy, estimator_), 2);
    if (kind < 0) {
      return;
    }
    const SimTime effective = std::max(when, clock_);
    if (effective > limit) {
      return;
    }
    clock_ = effective;
    obs::set_sim_time(clock_);
    switch (kind) {
      case 0: deliver_in_flight(flight_index, callbacks); break;
      case 1: flush_sw(); break;
      default: flush_ph(); break;
    }
  }
}

void AlignmentService::deliver_in_flight(std::size_t index, Callbacks& callbacks) {
  obs::instant(clock_, obs::Layer::kServe, "serve.deliver", -1,
               in_flight_[index].order);
  auto ready = in_flight_[index].deliver();
  callbacks.insert(callbacks.end(), std::make_move_iterator(ready.begin()),
                   std::make_move_iterator(ready.end()));
  in_flight_.erase(in_flight_.begin() + static_cast<std::ptrdiff_t>(index));
}

/// The cell-target and task-cap triggers fire at submit time: a queue
/// that already holds a full batch has nothing left to wait for.
void AlignmentService::flush_while_over_target() {
  while (sw_queue_.cells() >= config_.policy.target_batch_cells ||
         sw_queue_.size() >= config_.policy.max_batch_tasks) {
    flush_sw();
  }
  while (ph_queue_.cells() >= config_.policy.target_batch_cells ||
         ph_queue_.size() >= config_.policy.max_batch_tasks) {
    flush_ph();
  }
}

void AlignmentService::flush_sw() {
  auto entries =
      sw_queue_.pop_batch(config_.policy.max_batch_tasks, config_.policy.target_batch_cells);
  if (entries.empty()) {
    return;
  }
  for (const SwEntry& entry : entries) {
    --tenants_[entry.tenant].queued_tasks;
    tenants_[entry.tenant].queued_cells -= entry.cells;
  }
  // gpuPairHMM-style grouping: similar-length tasks adjacent, so blocks
  // scheduled together have similar cost.
  std::stable_sort(entries.begin(), entries.end(),
                   [&](const SwEntry& x, const SwEntry& y) {
                     return workload::length_bucket(x.task, config_.length_granularity) <
                            workload::length_bucket(y.task, config_.length_granularity);
                   });
  workload::SwBatch batch;
  batch.reserve(entries.size());
  std::size_t batch_cells = 0;
  for (const SwEntry& entry : entries) {
    batch.push_back(entry.task);
    batch_cells += entry.cells;
  }

  kernels::SwBatchResult result;
  const SimTime formed = clock_;
  static obs::Counter c_flushes_sw("serve.sw_batches");
  static obs::Histogram h_batch_cells_sw("serve.sw_batch_cells");
  c_flushes_sw.add();
  h_batch_cells_sw.observe(static_cast<double>(batch_cells));
  obs::instant(formed, obs::Layer::kServe, "serve.flush_sw", -1, batch_order_,
               static_cast<double>(entries.size()),
               static_cast<double>(batch_cells));
  SimTime start = 0.0;
  SimTime completion = 0.0;
  double seconds = 0.0;
  try {
    if (fleet_ != nullptr) {
      fleet::ExecOptions exec_options;
      exec_options.collect_outputs = config_.collect_outputs;
      exec_options.overlap_transfers = config_.overlap_transfers;
      auto executed = fleet_->execute_sw(batch, formed, exec_options);
      result = std::move(executed.result);
      seconds = executed.exec.service_seconds;
      start = executed.exec.start_time;
      completion = executed.exec.completion_time;
    } else {
      kernels::SwRunOptions options;
      options.engine = engine_;
      options.overlap_transfers = config_.overlap_transfers;
      const bool guarded = config_.collect_outputs && config_.guard.enabled();
      if (config_.collect_outputs) {
        options.collect_outputs = true;
      } else {
        options.mode = simt::ExecMode::kCachedByShape;
        options.use_engine_cache = true;
      }
      if (guarded) {
        options.max_block_cycles = config_.guard.max_block_cycles;
      }
      const auto launch_once = [&] {
        if (guarded && config_.guard.sdc.enabled()) {
          options.sdc = config_.guard.sdc;
          options.sdc_launch_id = guard_launch_seq_++;
        }
        return sw_runner_.run_batch(config_.device, batch, options);
      };
      const auto run_once = [&] {
        auto run = run_with_retry(launch_once, config_.guard);
        seconds += run.run.launch.total_seconds();
        totals_.sdc_flips += run.run.launch.sdc_flips;
        return run;
      };
      if (guarded && config_.guard.verifying()) {
        result = guarded_single<kernels::SwBatchResult>(
            config_.guard, totals_, run_once,
            [&](const kernels::SwBatchResult& r) {
              return guard::validate_sw(batch, r.outputs, sw_runner_.params());
            },
            [](const kernels::SwBatchResult& r) {
              return guard::fingerprint_sw(r.outputs);
            },
            [&](kernels::SwBatchResult& r) {
              r.outputs = guard::cpu_sw(batch, sw_runner_.params());
            });
      } else {
        result = run_once();
      }
      start = std::max(formed, device_free_at_);
      completion = start + seconds;
      device_free_at_ = completion;
      obs::span_begin(start, obs::Layer::kServe, "serve.batch", 0, batch_order_,
                      static_cast<double>(entries.size()),
                      static_cast<double>(batch_cells));
      obs::span_end(completion, obs::Layer::kServe, "serve.batch", 0,
                    batch_order_);
    }
  } catch (const simt::LaunchTimeout& e) {
    ++totals_.watchdog_timeouts;
    static obs::Counter c_timeouts("serve.watchdog_timeouts");
    c_timeouts.add();
    obs::instant(formed, obs::Layer::kServe, "serve.watchdog_timeout", -1,
                 batch_order_);
    obs::dump_flight(std::string("serve watchdog timeout: ") + e.what(),
                     fleet_ == nullptr ? 0 : -1, batch_order_, formed);
    totals_.failed += fail_entries(entries, e.what());
    return;
  } catch (const util::CheckError& e) {
    static obs::Counter c_failed("serve.batch_failures");
    c_failed.add();
    obs::instant(formed, obs::Layer::kServe, "serve.batch_failure", -1,
                 batch_order_);
    obs::dump_flight(std::string("serve ticket failure: ") + e.what(),
                     fleet_ == nullptr ? 0 : -1, batch_order_, formed);
    totals_.failed += fail_entries(entries, e.what());
    return;
  }
  estimator_.observe(batch_cells, seconds);
  totals_.batch_sizes.record(entries.size());
  totals_.device_busy_seconds += seconds;

  std::vector<Delivery<SwResponse>> deliveries;
  deliveries.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    Delivery<SwResponse> delivery;
    if (config_.collect_outputs) {
      delivery.response.alignment = result.outputs[i].alignment;
    }
    delivery.response.latency = {entries[i].submit_time, formed, start, completion};
    delivery.response.batch_tasks = entries.size();
    delivery.response.deadline_met =
        !entries[i].deadline.has_value() || completion <= *entries[i].deadline;
    delivery.had_deadline = entries[i].deadline.has_value();
    delivery.cells = entries[i].cells;
    delivery.tenant = entries[i].tenant;
    delivery.slot = std::move(entries[i].slot);
    deliveries.push_back(std::move(delivery));
  }
  InFlight flight;
  flight.completion_time = completion;
  flight.order = batch_order_++;
  flight.deliver = [this, deliveries = std::move(deliveries)]() mutable {
    Callbacks ready;
    for (auto& delivery : deliveries) {
      latency_samples_.push_back(delivery.response.latency.total_seconds());
      queue_wait_samples_.push_back(delivery.response.latency.queue_seconds());
      TenantState& tenant = tenants_[delivery.tenant];
      ++tenant.completed;
      tenant.latency_samples.push_back(delivery.response.latency.total_seconds());
      if (delivery.had_deadline) {
        delivery.response.deadline_met ? ++totals_.deadlines_met
                                       : ++totals_.deadlines_missed;
        delivery.response.deadline_met ? ++tenant.deadlines_met
                                       : ++tenant.deadlines_missed;
      }
      totals_.completed_cells += delivery.cells;
      ++totals_.sw_completed;
      totals_.last_completion_time = std::max(
          totals_.last_completion_time, delivery.response.latency.completion_time);
      auto slot = delivery.slot;
      slot->response = std::move(delivery.response);
      if (slot->callback) {
        ready.push_back([slot]() { slot->callback(*slot->response); });
      }
    }
    return ready;
  };
  in_flight_.push_back(std::move(flight));
}

void AlignmentService::flush_ph() {
  auto entries =
      ph_queue_.pop_batch(config_.policy.max_batch_tasks, config_.policy.target_batch_cells);
  if (entries.empty()) {
    return;
  }
  for (const PhEntry& entry : entries) {
    --tenants_[entry.tenant].queued_tasks;
    tenants_[entry.tenant].queued_cells -= entry.cells;
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [&](const PhEntry& x, const PhEntry& y) {
                     return workload::length_bucket(x.task, config_.length_granularity) <
                            workload::length_bucket(y.task, config_.length_granularity);
                   });
  workload::PhBatch batch;
  batch.reserve(entries.size());
  std::size_t batch_cells = 0;
  for (const PhEntry& entry : entries) {
    batch.push_back(entry.task);
    batch_cells += entry.cells;
  }

  kernels::PhBatchResult result;
  const SimTime formed = clock_;
  static obs::Counter c_flushes_ph("serve.ph_batches");
  static obs::Histogram h_batch_cells_ph("serve.ph_batch_cells");
  c_flushes_ph.add();
  h_batch_cells_ph.observe(static_cast<double>(batch_cells));
  obs::instant(formed, obs::Layer::kServe, "serve.flush_ph", -1, batch_order_,
               static_cast<double>(entries.size()),
               static_cast<double>(batch_cells));
  SimTime start = 0.0;
  SimTime completion = 0.0;
  double seconds = 0.0;
  try {
    if (fleet_ != nullptr) {
      fleet::ExecOptions exec_options;
      exec_options.collect_outputs = config_.collect_outputs;
      exec_options.overlap_transfers = config_.overlap_transfers;
      exec_options.double_fallback = config_.double_fallback;
      auto executed = fleet_->execute_ph(batch, formed, exec_options);
      result = std::move(executed.result);
      seconds = executed.exec.service_seconds;
      start = executed.exec.start_time;
      completion = executed.exec.completion_time;
    } else {
      kernels::PhRunOptions options;
      options.engine = engine_;
      options.overlap_transfers = config_.overlap_transfers;
      const bool guarded = config_.collect_outputs && config_.guard.enabled();
      if (config_.collect_outputs) {
        options.collect_outputs = true;
        options.double_fallback = config_.double_fallback;
      } else {
        options.mode = simt::ExecMode::kCachedByShape;
        options.use_engine_cache = true;
      }
      if (guarded) {
        options.max_block_cycles = config_.guard.max_block_cycles;
      }
      const auto launch_once = [&] {
        if (guarded && config_.guard.sdc.enabled()) {
          options.sdc = config_.guard.sdc;
          options.sdc_launch_id = guard_launch_seq_++;
        }
        return ph_runner_.run_batch(config_.device, batch, options);
      };
      const auto run_once = [&] {
        auto run = run_with_retry(launch_once, config_.guard);
        seconds += run.run.launch.total_seconds();
        totals_.sdc_flips += run.run.launch.sdc_flips;
        return run;
      };
      if (guarded && config_.guard.verifying()) {
        result = guarded_single<kernels::PhBatchResult>(
            config_.guard, totals_, run_once,
            [&](const kernels::PhBatchResult& r) {
              return guard::validate_ph(batch, r.log10);
            },
            [](const kernels::PhBatchResult& r) {
              return guard::fingerprint_ph(r.log10);
            },
            [&](kernels::PhBatchResult& r) {
              r.log10 = guard::cpu_ph(batch);
            });
      } else {
        result = run_once();
      }
      start = std::max(formed, device_free_at_);
      completion = start + seconds;
      device_free_at_ = completion;
      obs::span_begin(start, obs::Layer::kServe, "serve.batch", 0, batch_order_,
                      static_cast<double>(entries.size()),
                      static_cast<double>(batch_cells));
      obs::span_end(completion, obs::Layer::kServe, "serve.batch", 0,
                    batch_order_);
    }
  } catch (const simt::LaunchTimeout& e) {
    ++totals_.watchdog_timeouts;
    static obs::Counter c_timeouts("serve.watchdog_timeouts");
    c_timeouts.add();
    obs::instant(formed, obs::Layer::kServe, "serve.watchdog_timeout", -1,
                 batch_order_);
    obs::dump_flight(std::string("serve watchdog timeout: ") + e.what(),
                     fleet_ == nullptr ? 0 : -1, batch_order_, formed);
    totals_.failed += fail_entries(entries, e.what());
    return;
  } catch (const util::CheckError& e) {
    static obs::Counter c_failed("serve.batch_failures");
    c_failed.add();
    obs::instant(formed, obs::Layer::kServe, "serve.batch_failure", -1,
                 batch_order_);
    obs::dump_flight(std::string("serve ticket failure: ") + e.what(),
                     fleet_ == nullptr ? 0 : -1, batch_order_, formed);
    totals_.failed += fail_entries(entries, e.what());
    return;
  }
  estimator_.observe(batch_cells, seconds);
  totals_.batch_sizes.record(entries.size());
  totals_.device_busy_seconds += seconds;

  std::vector<Delivery<PairHmmResponse>> deliveries;
  deliveries.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    Delivery<PairHmmResponse> delivery;
    if (config_.collect_outputs) {
      delivery.response.log10 = result.log10[i];
    }
    delivery.response.latency = {entries[i].submit_time, formed, start, completion};
    delivery.response.batch_tasks = entries.size();
    delivery.response.deadline_met =
        !entries[i].deadline.has_value() || completion <= *entries[i].deadline;
    delivery.had_deadline = entries[i].deadline.has_value();
    delivery.cells = entries[i].cells;
    delivery.tenant = entries[i].tenant;
    delivery.slot = std::move(entries[i].slot);
    deliveries.push_back(std::move(delivery));
  }
  InFlight flight;
  flight.completion_time = completion;
  flight.order = batch_order_++;
  flight.deliver = [this, deliveries = std::move(deliveries)]() mutable {
    Callbacks ready;
    for (auto& delivery : deliveries) {
      latency_samples_.push_back(delivery.response.latency.total_seconds());
      queue_wait_samples_.push_back(delivery.response.latency.queue_seconds());
      TenantState& tenant = tenants_[delivery.tenant];
      ++tenant.completed;
      tenant.latency_samples.push_back(delivery.response.latency.total_seconds());
      if (delivery.had_deadline) {
        delivery.response.deadline_met ? ++totals_.deadlines_met
                                       : ++totals_.deadlines_missed;
        delivery.response.deadline_met ? ++tenant.deadlines_met
                                       : ++tenant.deadlines_missed;
      }
      totals_.completed_cells += delivery.cells;
      ++totals_.ph_completed;
      totals_.last_completion_time = std::max(
          totals_.last_completion_time, delivery.response.latency.completion_time);
      auto slot = delivery.slot;
      slot->response = std::move(delivery.response);
      if (slot->callback) {
        ready.push_back([slot]() { slot->callback(*slot->response); });
      }
    }
    return ready;
  };
  in_flight_.push_back(std::move(flight));
}

}  // namespace wsim::serve
