#include "wsim/workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "wsim/util/check.hpp"
#include "wsim/util/rng.hpp"

namespace wsim::workload {

std::string_view to_string(TraceShape shape) noexcept {
  switch (shape) {
    case TraceShape::kSteady:
      return "steady";
    case TraceShape::kDiurnal:
      return "diurnal";
    case TraceShape::kBursty:
      return "bursty";
  }
  return "?";
}

TraceShape trace_shape_by_name(std::string_view name) {
  if (name == "steady") {
    return TraceShape::kSteady;
  }
  if (name == "diurnal") {
    return TraceShape::kDiurnal;
  }
  if (name == "bursty") {
    return TraceShape::kBursty;
  }
  throw util::CheckError("unknown trace shape '" + std::string(name) +
                         "' (valid: steady, diurnal, bursty)");
}

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Rate factor of the shape at time t (multiple of the tenant's mean
/// rate) and its peak over the whole trace — the thinning envelope.
double shape_factor(const TraceConfig& cfg, double t) {
  switch (cfg.shape) {
    case TraceShape::kSteady:
      return 1.0;
    case TraceShape::kDiurnal:
      return 1.0 +
             cfg.diurnal_amplitude * std::sin(2.0 * kPi * t / cfg.period_seconds);
    case TraceShape::kBursty:
      return std::fmod(t, cfg.burst_every_seconds) < cfg.burst_seconds
                 ? cfg.burst_multiplier
                 : 1.0;
  }
  return 1.0;
}

double shape_peak(const TraceConfig& cfg) {
  switch (cfg.shape) {
    case TraceShape::kSteady:
      return 1.0;
    case TraceShape::kDiurnal:
      return 1.0 + cfg.diurnal_amplitude;
    case TraceShape::kBursty:
      return cfg.burst_multiplier;
  }
  return 1.0;
}

}  // namespace

Trace generate_trace(const TraceConfig& config) {
  util::require(config.duration_seconds > 0.0,
                "generate_trace: duration must be > 0");
  util::require(config.diurnal_amplitude >= 0.0 && config.diurnal_amplitude <= 1.0,
                "generate_trace: diurnal_amplitude must be in [0, 1]");
  util::require(config.burst_multiplier >= 1.0,
                "generate_trace: burst_multiplier must be >= 1");
  util::require(config.period_seconds > 0.0 && config.burst_every_seconds > 0.0 &&
                    config.burst_seconds > 0.0,
                "generate_trace: shape periods must be > 0");
  std::vector<TenantTraffic> tenants = config.tenants;
  if (tenants.empty()) {
    tenants.push_back(TenantTraffic{});
  }

  Trace trace;
  trace.duration_seconds = config.duration_seconds;
  const double peak = shape_peak(config);
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantTraffic& tenant = tenants[i];
    util::require(tenant.rate_hz > 0.0, "generate_trace: rate_hz must be > 0");
    util::require(tenant.sw_fraction >= 0.0 && tenant.sw_fraction <= 1.0,
                  "generate_trace: sw_fraction must be in [0, 1]");
    trace.tenants.push_back(tenant.name.empty() ? "tenant" + std::to_string(i)
                                                : tenant.name);
    // Thinning: candidates at the peak rate, kept with probability
    // factor(t)/peak. Each tenant gets an independent substream so adding
    // a tenant never perturbs the others' arrivals.
    util::Rng rng(config.seed ^ (0x7454ce5e1ca1f3dbULL * (i + 1)));
    const double envelope = tenant.rate_hz * peak;
    double t = 0.0;
    for (;;) {
      t += -std::log(1.0 - rng.uniform01()) / envelope;
      if (t >= config.duration_seconds) {
        break;
      }
      if (rng.uniform01() * peak > shape_factor(config, t)) {
        continue;  // thinned away
      }
      TraceEvent event;
      event.time = t;
      event.tenant = static_cast<std::uint32_t>(i);
      event.is_sw = rng.uniform01() < tenant.sw_fraction;
      event.task_index = rng();
      trace.events.push_back(event);
    }
  }
  std::sort(trace.events.begin(), trace.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.time != b.time) {
                return a.time < b.time;
              }
              if (a.tenant != b.tenant) {
                return a.tenant < b.tenant;
              }
              return a.task_index < b.task_index;
            });
  return trace;
}

void write_trace(std::ostream& os, const Trace& trace) {
  const auto previous = os.precision(std::numeric_limits<double>::max_digits10);
  os << "WSIM-TRACE 1\n";
  os << "duration " << trace.duration_seconds << '\n';
  for (const std::string& tenant : trace.tenants) {
    util::require(!tenant.empty() &&
                      tenant.find_first_of(" \t\n") == std::string::npos,
                  "write_trace: tenant names must be non-empty and "
                  "whitespace-free");
    os << "tenant " << tenant << '\n';
  }
  for (const TraceEvent& event : trace.events) {
    util::require(event.tenant < trace.tenants.size(),
                  "write_trace: event references an unknown tenant");
    os << "event " << event.time << ' ' << event.tenant << ' '
       << (event.is_sw ? "sw" : "ph") << ' ' << event.task_index << '\n';
  }
  os.precision(previous);
}

Trace read_trace(std::istream& is) {
  Trace trace;
  std::string line;
  int line_no = 0;
  bool versioned = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line.front() == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (!versioned) {
      util::require(kind == "WSIM-TRACE",
                    "read_trace: missing WSIM-TRACE header at line " +
                        std::to_string(line_no));
      int version = 0;
      fields >> version;
      util::require(!fields.fail() && version == 1,
                    "read_trace: unsupported trace version at line " +
                        std::to_string(line_no));
      versioned = true;
      continue;
    }
    if (kind == "duration") {
      fields >> trace.duration_seconds;
      util::require(!fields.fail() && trace.duration_seconds > 0.0,
                    "read_trace: bad duration at line " + std::to_string(line_no));
    } else if (kind == "tenant") {
      std::string name;
      fields >> name;
      util::require(!fields.fail() && !name.empty(),
                    "read_trace: bad tenant at line " + std::to_string(line_no));
      trace.tenants.push_back(std::move(name));
    } else if (kind == "event") {
      TraceEvent event;
      std::string sw_or_ph;
      fields >> event.time >> event.tenant >> sw_or_ph >> event.task_index;
      util::require(!fields.fail() && (sw_or_ph == "sw" || sw_or_ph == "ph"),
                    "read_trace: bad event at line " + std::to_string(line_no));
      util::require(event.tenant < trace.tenants.size(),
                    "read_trace: event references unknown tenant at line " +
                        std::to_string(line_no));
      util::require(trace.events.empty() ||
                        trace.events.back().time <= event.time,
                    "read_trace: events out of order at line " +
                        std::to_string(line_no));
      event.is_sw = sw_or_ph == "sw";
      trace.events.push_back(event);
    } else {
      throw util::CheckError("read_trace: unknown directive '" + kind +
                             "' at line " + std::to_string(line_no));
    }
  }
  util::require(versioned, "read_trace: empty or headerless trace");
  return trace;
}

void save_trace(const std::string& path, const Trace& trace) {
  std::ofstream os(path);
  util::require(os.good(), "save_trace: cannot open '" + path + "'");
  write_trace(os, trace);
  util::require(os.good(), "save_trace: write to '" + path + "' failed");
}

Trace load_trace(const std::string& path) {
  std::ifstream is(path);
  util::require(is.good(), "load_trace: cannot open '" + path + "'");
  return read_trace(is);
}

}  // namespace wsim::workload
