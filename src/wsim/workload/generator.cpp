#include "wsim/workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "wsim/util/check.hpp"
#include "wsim/util/rng.hpp"

namespace wsim::workload {

namespace {

constexpr char kBases[] = {'A', 'C', 'G', 'T'};

std::string random_sequence(util::Rng& rng, int length) {
  std::string seq(static_cast<std::size_t>(length), 'A');
  for (char& base : seq) {
    base = kBases[rng.uniform_int(0, 3)];
  }
  return seq;
}

/// Poisson deviate by inversion of exponentials (Knuth); adequate for the
/// means used here. Always returns at least 1 so no region is empty.
int poisson_at_least_one(util::Rng& rng, double mean) {
  const double limit = std::exp(-mean);
  double product = rng.uniform01();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= rng.uniform01();
  }
  return std::max(count, 1);
}

/// Derives a mutated copy of `source`: SNPs at snp_rate, indels at
/// indel_rate, preserving overall similarity so alignments are meaningful.
std::string mutate(util::Rng& rng, const std::string& source, const GeneratorConfig& cfg) {
  std::string out;
  out.reserve(source.size() + 8);
  for (std::size_t pos = 0; pos < source.size();) {
    const double draw = rng.uniform01();
    if (draw < cfg.indel_rate / 2.0) {
      // Deletion: skip a short run of source bases.
      const auto run = static_cast<std::size_t>(rng.uniform_int(1, cfg.indel_len_max));
      pos += run;
    } else if (draw < cfg.indel_rate) {
      // Insertion: emit a short random run, consume nothing.
      const auto run = rng.uniform_int(1, cfg.indel_len_max);
      for (int k = 0; k < run; ++k) {
        out += kBases[rng.uniform_int(0, 3)];
      }
      ++pos;
      out += source[pos - 1];
    } else if (draw < cfg.indel_rate + cfg.snp_rate) {
      out += kBases[rng.uniform_int(0, 3)];
      ++pos;
    } else {
      out += source[pos];
      ++pos;
    }
  }
  if (out.empty()) {
    out += kBases[rng.uniform_int(0, 3)];
  }
  return out;
}

/// Clips or pads (with fresh random bases) to put `seq` inside
/// [min_len, max_len].
std::string clamp_length(util::Rng& rng, std::string seq, int min_len, int max_len) {
  if (static_cast<int>(seq.size()) > max_len) {
    seq.resize(static_cast<std::size_t>(max_len));
  }
  while (static_cast<int>(seq.size()) < min_len) {
    seq += kBases[rng.uniform_int(0, 3)];
  }
  return seq;
}

std::uint8_t draw_base_qual(util::Rng& rng, const GeneratorConfig& cfg) {
  const double q = rng.normal(cfg.base_qual_mean, cfg.base_qual_stddev);
  return static_cast<std::uint8_t>(std::clamp(q, 2.0, 40.0));
}

}  // namespace

Dataset generate_dataset(const GeneratorConfig& config) {
  util::require(config.regions > 0, "generate_dataset: need at least one region");
  util::require(config.read_len_min > 0 && config.read_len_min <= config.read_len_max,
                "generate_dataset: invalid read length range");
  util::require(config.hap_len_min > 0 && config.hap_len_min <= config.hap_len_max,
                "generate_dataset: invalid haplotype length range");
  util::require(config.sw_query_len_min > 0 &&
                    config.sw_query_len_min <= config.sw_query_len_max,
                "generate_dataset: invalid SW query length range");
  util::require(config.sw_target_len_min > 0 &&
                    config.sw_target_len_min <= config.sw_target_len_max,
                "generate_dataset: invalid SW target length range");

  util::Rng rng(config.seed);
  Dataset dataset;
  dataset.regions.resize(static_cast<std::size_t>(config.regions));

  for (Region& region : dataset.regions) {
    // The region's reference window; everything else derives from it.
    const std::string reference =
        random_sequence(rng, static_cast<int>(rng.uniform_int(
                                 config.sw_target_len_min, config.sw_target_len_max)));

    const int sw_count = poisson_at_least_one(rng, config.sw_tasks_per_region_mean);
    region.sw_tasks.reserve(static_cast<std::size_t>(sw_count));
    for (int t = 0; t < sw_count; ++t) {
      SwTask task;
      task.target = reference;
      task.query = clamp_length(rng, mutate(rng, reference, config),
                                config.sw_query_len_min, config.sw_query_len_max);
      region.sw_tasks.push_back(std::move(task));
    }

    // Candidate haplotypes for the PairHMM stage: mutated reference slices.
    const int hap_count = static_cast<int>(rng.uniform_int(2, 6));
    std::vector<std::string> haplotypes;
    haplotypes.reserve(static_cast<std::size_t>(hap_count));
    for (int h = 0; h < hap_count; ++h) {
      const int len =
          static_cast<int>(rng.uniform_int(config.hap_len_min, config.hap_len_max));
      const auto start = static_cast<std::size_t>(rng.uniform_int(
          0, std::max<std::int64_t>(0, static_cast<std::int64_t>(reference.size()) - len)));
      std::string hap = reference.substr(start, static_cast<std::size_t>(len));
      hap = clamp_length(rng, mutate(rng, hap, config), config.hap_len_min,
                         config.hap_len_max);
      haplotypes.push_back(std::move(hap));
    }

    const int ph_count = poisson_at_least_one(rng, config.ph_tasks_per_region_mean);
    region.ph_tasks.reserve(static_cast<std::size_t>(ph_count));
    for (int t = 0; t < ph_count; ++t) {
      const std::string& hap =
          haplotypes[static_cast<std::size_t>(rng.uniform_int(0, hap_count - 1))];
      const int read_len = static_cast<int>(std::min<std::int64_t>(
          rng.uniform_int(config.read_len_min, config.read_len_max),
          static_cast<std::int64_t>(hap.size())));
      const auto start = static_cast<std::size_t>(rng.uniform_int(
          0, std::max<std::int64_t>(0,
                                    static_cast<std::int64_t>(hap.size()) - read_len)));

      align::PairHmmTask task;
      task.hap = hap;
      task.read = clamp_length(rng, mutate(rng, hap.substr(start, static_cast<std::size_t>(read_len)), config),
                               config.read_len_min,
                               std::min(config.read_len_max, static_cast<int>(hap.size())));
      task.base_quals.resize(task.read.size());
      for (auto& q : task.base_quals) {
        q = draw_base_qual(rng, config);
      }
      task.ins_quals.assign(task.read.size(), config.ins_del_qual);
      task.del_quals.assign(task.read.size(), config.ins_del_qual);
      task.gcp = config.gcp;
      region.ph_tasks.push_back(std::move(task));
    }
  }
  return dataset;
}

std::string_view to_string(LengthProfile profile) noexcept {
  switch (profile) {
    case LengthProfile::kShortRead:
      return "short-read";
    case LengthProfile::kLongRead:
      return "long-read";
    case LengthProfile::kContig:
      return "contig";
  }
  return "?";
}

const std::vector<std::string>& length_profile_names() {
  static const std::vector<std::string> names = {"short-read", "long-read",
                                                 "contig"};
  return names;
}

LengthProfile length_profile_by_name(std::string_view name) {
  if (name == "short-read") {
    return LengthProfile::kShortRead;
  }
  if (name == "long-read") {
    return LengthProfile::kLongRead;
  }
  if (name == "contig") {
    return LengthProfile::kContig;
  }
  std::string valid;
  for (const std::string& n : length_profile_names()) {
    if (!valid.empty()) {
      valid += ", ";
    }
    valid += n;
  }
  throw util::CheckError("unknown length profile '" + std::string(name) +
                         "' (valid profiles: " + valid + ")");
}

GeneratorConfig profile_config(LengthProfile profile, std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.seed = seed;
  switch (profile) {
    case LengthProfile::kShortRead:
      break;  // the defaults ARE the paper's short-read regime
    case LengthProfile::kLongRead:
      cfg.sw_query_len_min = 256;
      cfg.sw_query_len_max = 2048;
      cfg.sw_target_len_min = 320;
      cfg.sw_target_len_max = 2304;
      cfg.sw_tasks_per_region_mean = 2.0;
      break;
    case LengthProfile::kContig:
      cfg.sw_query_len_min = 2048;
      cfg.sw_query_len_max = 8192;
      cfg.sw_target_len_min = 2304;
      cfg.sw_target_len_max = 8448;
      cfg.sw_tasks_per_region_mean = 1.0;
      break;
  }
  return cfg;
}

}  // namespace wsim::workload
