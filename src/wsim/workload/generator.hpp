#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "wsim/workload/task.hpp"

namespace wsim::workload {

/// Parameters of the synthetic HaplotypeCaller-dump generator. Defaults
/// match the shape statistics the paper reports for its HCC1954 datasets:
/// on average 4 SW tasks and 189 PairHMM tasks per region batch, read
/// lengths below 128 (PH1 uses 128 threads/block "because the maximal
/// sequence length is less than 128").
struct GeneratorConfig {
  std::uint64_t seed = 42;
  int regions = 32;

  double sw_tasks_per_region_mean = 4.0;
  double ph_tasks_per_region_mean = 189.0;

  int sw_query_len_min = 96;   ///< candidate haplotype lengths
  int sw_query_len_max = 320;
  int sw_target_len_min = 160;  ///< reference-window lengths
  int sw_target_len_max = 416;

  int read_len_min = 36;  ///< PairHMM read lengths (< 128)
  int read_len_max = 127;
  int hap_len_min = 48;  ///< PairHMM haplotype lengths
  int hap_len_max = 224;

  double snp_rate = 0.01;    ///< per-base substitution rate when deriving pairs
  double indel_rate = 0.002; ///< per-base indel open rate
  int indel_len_max = 6;

  double base_qual_mean = 30.0;
  double base_qual_stddev = 5.0;
  std::uint8_t ins_del_qual = 45;  ///< GATK default insertion/deletion quality
  std::uint8_t gcp = 10;           ///< GATK default gap-continuation penalty
};

/// Generates a deterministic synthetic dataset: per region a reference
/// window is drawn, haplotypes are derived from it by mutation (so SW
/// alignments are biologically shaped, not random-vs-random), and reads
/// are sampled from haplotypes with sequencing errors and quality tracks.
Dataset generate_dataset(const GeneratorConfig& config);

/// Named SW length families. kShortRead is the paper's HaplotypeCaller
/// regime (the GeneratorConfig defaults); the long families open the
/// intra-task wavefront regime (AnySeq/GPU, SaLoBa length scales).
enum class LengthProfile {
  kShortRead,  ///< 96-320 bp queries vs 160-416 bp windows (paper dataset)
  kLongRead,   ///< 256-2048 bp reads vs up to ~2.3 kbp windows
  kContig,     ///< 2048-8192 bp contigs vs up to ~8.4 kbp windows
};

std::string_view to_string(LengthProfile profile) noexcept;

/// {"short-read", "long-read", "contig"}.
const std::vector<std::string>& length_profile_names();

/// Lookup by CLI name; throws util::CheckError listing the valid profile
/// names on anything else.
LengthProfile length_profile_by_name(std::string_view name);

/// GeneratorConfig preset for a profile: the SW length ranges are swapped
/// for the family's, everything else keeps the defaults. Long profiles
/// also thin tasks-per-region so default datasets stay tractable.
GeneratorConfig profile_config(LengthProfile profile, std::uint64_t seed = 42);

}  // namespace wsim::workload
