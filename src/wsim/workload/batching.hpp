#pragma once

#include <cstddef>
#include <vector>

#include "wsim/workload/task.hpp"

namespace wsim::workload {

/// A batch of SW tasks launched as one kernel (one task per block).
using SwBatch = std::vector<SwTask>;

/// A batch of PairHMM tasks launched as one kernel.
using PhBatch = std::vector<align::PairHmmTask>;

/// Original batching: one batch per HaplotypeCaller region (the paper's
/// Fig. 9 configuration, average 4 SW / 189 PairHMM tasks per batch).
std::vector<SwBatch> sw_region_batches(const Dataset& dataset);
std::vector<PhBatch> ph_region_batches(const Dataset& dataset);

/// Re-batching across region boundaries into chunks of `batch_size`
/// (the paper's Fig. 10 experiment). The final chunk may be smaller.
/// Requires batch_size >= 1.
std::vector<SwBatch> sw_rebatch(const Dataset& dataset, std::size_t batch_size);
std::vector<PhBatch> ph_rebatch(const Dataset& dataset, std::size_t batch_size);

/// All tasks flattened into a single batch.
SwBatch sw_all_tasks(const Dataset& dataset);
PhBatch ph_all_tasks(const Dataset& dataset);

/// The batch with the most tasks (the paper's Table II setup uses the
/// biggest original batch so the GPU is fully occupied). Ties are broken
/// first-wins: the batch of the earliest region with the maximal task
/// count is returned. Throws util::CheckError when the dataset has no
/// tasks of the requested kind.
SwBatch sw_biggest_batch(const Dataset& dataset);
PhBatch ph_biggest_batch(const Dataset& dataset);

/// Quantized primary-length bucket of a task — the dimension that picks
/// the kernel cost shape (SW: query rows, i.e. bands; PairHMM: read rows,
/// i.e. the length-specialized variant). The bucket is the *ceil* of
/// length / granularity, matching the kernels' band/tile counts exactly
/// (length g*k+1 occupies k+1 bands, not k). gpuPairHMM groups incoming
/// pairs by this key so blocks launched together stay cost-convergent; the
/// serving layer sorts each dynamic batch by it. Requires granularity >= 1.
std::size_t length_bucket(const SwTask& task, std::size_t granularity);
std::size_t length_bucket(const align::PairHmmTask& task, std::size_t granularity);

/// Length-bucketed batch forming (the gpuPairHMM grouping as a batching
/// strategy): tasks are grouped by ascending length_bucket — original
/// order preserved within a bucket — and each group is chunked into
/// batches of at most `max_batch` tasks. Requires granularity >= 1 and
/// max_batch >= 1.
std::vector<SwBatch> sw_length_grouped(const SwBatch& tasks,
                                       std::size_t granularity,
                                       std::size_t max_batch);
std::vector<PhBatch> ph_length_grouped(const PhBatch& tasks,
                                       std::size_t granularity,
                                       std::size_t max_batch);

/// Total DP cells in a batch (the CUPS numerator).
std::size_t batch_cells(const SwBatch& batch) noexcept;
std::size_t batch_cells(const PhBatch& batch) noexcept;

/// Sorts a batch by descending cell count (longest-processing-time-first).
/// Prior GPU SW work (Manavski et al., cited by the paper) sorts tasks so
/// blocks scheduled together have similar cost; under a greedy block
/// scheduler LPT order tightens the makespan of heterogeneous batches.
void sort_by_cells_desc(SwBatch& batch);
void sort_by_cells_desc(PhBatch& batch);

}  // namespace wsim::workload
