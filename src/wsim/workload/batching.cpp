#include "wsim/workload/batching.hpp"

#include <algorithm>
#include <map>

#include "wsim/util/check.hpp"

namespace wsim::workload {

std::vector<SwBatch> sw_region_batches(const Dataset& dataset) {
  std::vector<SwBatch> batches;
  batches.reserve(dataset.regions.size());
  for (const Region& region : dataset.regions) {
    if (!region.sw_tasks.empty()) {
      batches.push_back(region.sw_tasks);
    }
  }
  return batches;
}

std::vector<PhBatch> ph_region_batches(const Dataset& dataset) {
  std::vector<PhBatch> batches;
  batches.reserve(dataset.regions.size());
  for (const Region& region : dataset.regions) {
    if (!region.ph_tasks.empty()) {
      batches.push_back(region.ph_tasks);
    }
  }
  return batches;
}

SwBatch sw_all_tasks(const Dataset& dataset) {
  SwBatch all;
  for (const Region& region : dataset.regions) {
    all.insert(all.end(), region.sw_tasks.begin(), region.sw_tasks.end());
  }
  return all;
}

PhBatch ph_all_tasks(const Dataset& dataset) {
  PhBatch all;
  for (const Region& region : dataset.regions) {
    all.insert(all.end(), region.ph_tasks.begin(), region.ph_tasks.end());
  }
  return all;
}

namespace {

template <typename Task>
std::vector<std::vector<Task>> chunk(std::vector<Task> tasks, std::size_t batch_size) {
  util::require(batch_size >= 1, "rebatch: batch_size must be at least 1");
  std::vector<std::vector<Task>> batches;
  for (std::size_t begin = 0; begin < tasks.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, tasks.size());
    batches.emplace_back(tasks.begin() + static_cast<std::ptrdiff_t>(begin),
                         tasks.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return batches;
}

}  // namespace

std::vector<SwBatch> sw_rebatch(const Dataset& dataset, std::size_t batch_size) {
  return chunk(sw_all_tasks(dataset), batch_size);
}

std::vector<PhBatch> ph_rebatch(const Dataset& dataset, std::size_t batch_size) {
  return chunk(ph_all_tasks(dataset), batch_size);
}

// Both biggest-batch functions break ties first-wins (std::max_element
// keeps the earliest maximum), so callers see a stable choice no matter
// how many regions share the top task count.
SwBatch sw_biggest_batch(const Dataset& dataset) {
  const auto batches = sw_region_batches(dataset);
  util::require(!batches.empty(), "sw_biggest_batch: dataset has no SW tasks");
  return *std::max_element(batches.begin(), batches.end(),
                           [](const SwBatch& x, const SwBatch& y) {
                             return x.size() < y.size();
                           });
}

PhBatch ph_biggest_batch(const Dataset& dataset) {
  const auto batches = ph_region_batches(dataset);
  util::require(!batches.empty(), "ph_biggest_batch: dataset has no PairHMM tasks");
  return *std::max_element(batches.begin(), batches.end(),
                           [](const PhBatch& x, const PhBatch& y) {
                             return x.size() < y.size();
                           });
}

namespace {

template <typename Task, typename Bucket>
std::vector<std::vector<Task>> group_by_bucket(const std::vector<Task>& tasks,
                                               std::size_t max_batch,
                                               Bucket bucket_of) {
  util::require(max_batch >= 1, "length_grouped: max_batch must be at least 1");
  // Stable bucket sort: ascending bucket, original order within a bucket.
  std::map<std::size_t, std::vector<Task>> groups;
  for (const Task& task : tasks) {
    groups[bucket_of(task)].push_back(task);
  }
  std::vector<std::vector<Task>> batches;
  for (auto& [bucket, group] : groups) {
    (void)bucket;
    for (auto& piece : chunk(std::move(group), max_batch)) {
      batches.push_back(std::move(piece));
    }
  }
  return batches;
}

}  // namespace

std::size_t length_bucket(const SwTask& task, std::size_t granularity) {
  util::require(granularity >= 1, "length_bucket: granularity must be at least 1");
  // Ceil, not floor: the bucket must equal the kernel's band/tile count so
  // grouped tasks share a cost shape. Floor division put a length of g*k+1
  // (k+1 bands) in the same bucket as g*k (k bands) — harmless below the
  // 128-bp PH1 regime where callers used small batches, wrong for the
  // long-read profiles where one extra 32-row band is a real cost step.
  return (task.query.size() + granularity - 1) / granularity;
}

std::size_t length_bucket(const align::PairHmmTask& task, std::size_t granularity) {
  util::require(granularity >= 1, "length_bucket: granularity must be at least 1");
  return (task.read.size() + granularity - 1) / granularity;
}

std::vector<SwBatch> sw_length_grouped(const SwBatch& tasks,
                                       std::size_t granularity,
                                       std::size_t max_batch) {
  return group_by_bucket(tasks, max_batch, [granularity](const SwTask& task) {
    return length_bucket(task, granularity);
  });
}

std::vector<PhBatch> ph_length_grouped(const PhBatch& tasks,
                                       std::size_t granularity,
                                       std::size_t max_batch) {
  return group_by_bucket(tasks, max_batch,
                         [granularity](const align::PairHmmTask& task) {
                           return length_bucket(task, granularity);
                         });
}

std::size_t batch_cells(const SwBatch& batch) noexcept {
  std::size_t total = 0;
  for (const SwTask& task : batch) {
    total += task.cells();
  }
  return total;
}

std::size_t batch_cells(const PhBatch& batch) noexcept {
  std::size_t total = 0;
  for (const align::PairHmmTask& task : batch) {
    total += cells(task);
  }
  return total;
}

void sort_by_cells_desc(SwBatch& batch) {
  std::stable_sort(batch.begin(), batch.end(),
                   [](const SwTask& x, const SwTask& y) { return x.cells() > y.cells(); });
}

void sort_by_cells_desc(PhBatch& batch) {
  std::stable_sort(batch.begin(), batch.end(),
                   [](const align::PairHmmTask& x, const align::PairHmmTask& y) {
                     return cells(x) > cells(y);
                   });
}

}  // namespace wsim::workload
