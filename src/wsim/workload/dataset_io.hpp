#pragma once

#include <iosfwd>
#include <string>

#include "wsim/workload/task.hpp"

namespace wsim::workload {

/// Line-oriented text format for datasets, so real HaplotypeCaller dumps
/// can be fed to the benches/pipeline in place of the synthetic
/// generator:
///
///   # comments and blank lines are ignored
///   region
///   sw <query> <target>
///   ph <gcp> <read> <hap> <base_quals> <ins_quals> <del_quals>
///
/// `region` starts a new active region; `sw`/`ph` lines append tasks to
/// the current region. Sequences use the ACGTN alphabet; quality tracks
/// are FASTQ-style Phred+33 ASCII strings with one character per read
/// base; `gcp` is a decimal Phred value.
void write_dataset(std::ostream& os, const Dataset& dataset);
Dataset read_dataset(std::istream& is);

/// File-path convenience wrappers. Throw util::CheckError when the file
/// cannot be opened or parsed.
void save_dataset(const std::string& path, const Dataset& dataset);
Dataset load_dataset(const std::string& path);

}  // namespace wsim::workload
