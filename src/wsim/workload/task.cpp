#include "wsim/workload/task.hpp"

#include <algorithm>

namespace wsim::workload {

std::size_t cells(const align::PairHmmTask& task) noexcept {
  return task.read.size() * task.hap.size();
}

DatasetStats compute_stats(const Dataset& dataset) noexcept {
  DatasetStats stats;
  stats.regions = dataset.regions.size();
  for (const Region& region : dataset.regions) {
    stats.sw_tasks += region.sw_tasks.size();
    stats.ph_tasks += region.ph_tasks.size();
    for (const SwTask& task : region.sw_tasks) {
      stats.max_sw_query_len = std::max(stats.max_sw_query_len, task.query.size());
      stats.max_sw_target_len = std::max(stats.max_sw_target_len, task.target.size());
      stats.total_sw_cells += task.cells();
    }
    for (const align::PairHmmTask& task : region.ph_tasks) {
      stats.max_read_len = std::max(stats.max_read_len, task.read.size());
      stats.max_hap_len = std::max(stats.max_hap_len, task.hap.size());
      stats.total_ph_cells += cells(task);
    }
  }
  if (stats.regions > 0) {
    stats.avg_sw_tasks_per_region =
        static_cast<double>(stats.sw_tasks) / static_cast<double>(stats.regions);
    stats.avg_ph_tasks_per_region =
        static_cast<double>(stats.ph_tasks) / static_cast<double>(stats.regions);
  }
  return stats;
}

}  // namespace wsim::workload
