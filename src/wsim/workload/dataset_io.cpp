#include "wsim/workload/dataset_io.hpp"

#include <fstream>
#include <sstream>

#include "wsim/util/check.hpp"

namespace wsim::workload {

namespace {

constexpr int kPhredOffset = 33;

std::string encode_quals(const std::vector<std::uint8_t>& quals) {
  std::string out;
  out.reserve(quals.size());
  for (const std::uint8_t q : quals) {
    util::require(q <= 93, "write_dataset: quality exceeds Phred+33 range");
    out.push_back(static_cast<char>(q + kPhredOffset));
  }
  return out;
}

std::vector<std::uint8_t> decode_quals(const std::string& text, std::size_t expect,
                                       int line_no) {
  util::require(text.size() == expect,
                "read_dataset: quality track length mismatch at line " +
                    std::to_string(line_no));
  std::vector<std::uint8_t> out;
  out.reserve(text.size());
  for (const char c : text) {
    util::require(c >= kPhredOffset,
                  "read_dataset: invalid quality character at line " +
                      std::to_string(line_no));
    out.push_back(static_cast<std::uint8_t>(c - kPhredOffset));
  }
  return out;
}

void check_sequence(const std::string& seq, int line_no) {
  util::require(!seq.empty(), "read_dataset: empty sequence at line " +
                                  std::to_string(line_no));
  for (const char c : seq) {
    util::require(c == 'A' || c == 'C' || c == 'G' || c == 'T' || c == 'N',
                  "read_dataset: invalid base '" + std::string(1, c) +
                      "' at line " + std::to_string(line_no));
  }
}

}  // namespace

void write_dataset(std::ostream& os, const Dataset& dataset) {
  os << "# wsim dataset v1\n";
  for (const Region& region : dataset.regions) {
    os << "region\n";
    for (const SwTask& task : region.sw_tasks) {
      os << "sw " << task.query << ' ' << task.target << '\n';
    }
    for (const align::PairHmmTask& task : region.ph_tasks) {
      os << "ph " << static_cast<int>(task.gcp) << ' ' << task.read << ' '
         << task.hap << ' ' << encode_quals(task.base_quals) << ' '
         << encode_quals(task.ins_quals) << ' ' << encode_quals(task.del_quals)
         << '\n';
    }
  }
}

Dataset read_dataset(std::istream& is) {
  Dataset dataset;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line.front() == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "region") {
      dataset.regions.emplace_back();
      continue;
    }
    util::require(!dataset.regions.empty(),
                  "read_dataset: task before any 'region' at line " +
                      std::to_string(line_no));
    if (kind == "sw") {
      SwTask task;
      fields >> task.query >> task.target;
      util::require(static_cast<bool>(fields),
                    "read_dataset: malformed sw line " + std::to_string(line_no));
      check_sequence(task.query, line_no);
      check_sequence(task.target, line_no);
      dataset.regions.back().sw_tasks.push_back(std::move(task));
    } else if (kind == "ph") {
      int gcp = 0;
      std::string read;
      std::string hap;
      std::string bq;
      std::string iq;
      std::string dq;
      fields >> gcp >> read >> hap >> bq >> iq >> dq;
      util::require(static_cast<bool>(fields),
                    "read_dataset: malformed ph line " + std::to_string(line_no));
      util::require(gcp >= 0 && gcp <= 93,
                    "read_dataset: gcp out of range at line " + std::to_string(line_no));
      check_sequence(read, line_no);
      check_sequence(hap, line_no);
      align::PairHmmTask task;
      task.gcp = static_cast<std::uint8_t>(gcp);
      task.read = std::move(read);
      task.hap = std::move(hap);
      task.base_quals = decode_quals(bq, task.read.size(), line_no);
      task.ins_quals = decode_quals(iq, task.read.size(), line_no);
      task.del_quals = decode_quals(dq, task.read.size(), line_no);
      align::validate(task);
      dataset.regions.back().ph_tasks.push_back(std::move(task));
    } else {
      throw util::CheckError("read_dataset: unknown record '" + kind +
                             "' at line " + std::to_string(line_no));
    }
  }
  return dataset;
}

void save_dataset(const std::string& path, const Dataset& dataset) {
  std::ofstream os(path);
  util::require(static_cast<bool>(os), "save_dataset: cannot open " + path);
  write_dataset(os, dataset);
  util::require(static_cast<bool>(os), "save_dataset: write failed for " + path);
}

Dataset load_dataset(const std::string& path) {
  std::ifstream is(path);
  util::require(static_cast<bool>(is), "load_dataset: cannot open " + path);
  return read_dataset(is);
}

}  // namespace wsim::workload
