#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace wsim::workload {

/// One arrival in a traffic trace: at `time` seconds from trace start,
/// tenant `tenant` submits one task. The event references work abstractly
/// (`task_index` into whichever task pool the replayer uses, modulo its
/// size) so one trace replays against any dataset and the file stays
/// small.
struct TraceEvent {
  double time = 0.0;
  std::uint32_t tenant = 0;      ///< index into Trace::tenants
  bool is_sw = false;            ///< Smith-Waterman request (else PairHMM)
  std::uint64_t task_index = 0;  ///< pool index; replayers take it mod pool size
};

/// A generated or loaded traffic trace: tenant names plus time-sorted
/// arrivals. Replaying the same trace yields the same submissions in the
/// same order — the determinism anchor for cluster-sim's replay checks.
struct Trace {
  std::vector<std::string> tenants;
  std::vector<TraceEvent> events;  ///< sorted by (time, tenant, task_index)
  double duration_seconds = 0.0;   ///< nominal span (arrivals stop here)
};

/// Shape of the arrival-rate curve over time.
enum class TraceShape {
  kSteady,   ///< constant rate (plain Poisson)
  kDiurnal,  ///< sinusoidal swing — the day/night load curve, compressed
  kBursty,   ///< periodic bursts of burst_multiplier × the base rate
};

std::string_view to_string(TraceShape shape) noexcept;

/// Lookup by CLI name: "steady" | "diurnal" | "bursty". Throws
/// util::CheckError listing the valid names on anything else.
TraceShape trace_shape_by_name(std::string_view name);

/// One tenant's traffic contract in the generator.
struct TenantTraffic {
  std::string name;
  double rate_hz = 1000.0;    ///< mean arrival rate over the trace
  /// Fraction of arrivals that are SW requests; the rest are PairHMM
  /// (the paper's HaplotypeCaller regions average 4 SW vs 189 PairHMM
  /// tasks, hence the default).
  double sw_fraction = 0.02;
};

struct TraceConfig {
  std::uint64_t seed = 42;
  double duration_seconds = 1.0;
  TraceShape shape = TraceShape::kDiurnal;
  /// Tenants to generate traffic for; empty means one anonymous tenant
  /// with the default TenantTraffic.
  std::vector<TenantTraffic> tenants;
  /// kDiurnal: the rate swings sinusoidally between (1 - amplitude) and
  /// (1 + amplitude) times the mean, one full cycle per period.
  double diurnal_amplitude = 0.8;
  double period_seconds = 1.0;
  /// kBursty: for burst_seconds out of every burst_every_seconds the rate
  /// is burst_multiplier × the base (all tenants burst together — the
  /// worst case for an autoscaler).
  double burst_multiplier = 8.0;
  double burst_seconds = 0.05;
  double burst_every_seconds = 0.25;
};

/// Generates an inhomogeneous-Poisson trace by thinning: per tenant,
/// candidate arrivals are drawn at the shape's peak rate and kept with
/// probability rate(t)/peak. Deterministic in the config (per-tenant
/// substreams are hashed from the seed), so the same config always yields
/// the same trace.
Trace generate_trace(const TraceConfig& config);

/// Line-oriented versioned text format:
///
///   WSIM-TRACE 1
///   duration <seconds>
///   tenant <name>                      (one per tenant, in index order)
///   event <time> <tenant_index> <sw|ph> <task_index>
///
/// Comments (#) and blank lines are ignored. read_trace rejects a missing
/// or unsupported version header, so the format can evolve.
void write_trace(std::ostream& os, const Trace& trace);
Trace read_trace(std::istream& is);

/// File-path convenience wrappers. Throw util::CheckError when the file
/// cannot be opened or parsed.
void save_trace(const std::string& path, const Trace& trace);
Trace load_trace(const std::string& path);

}  // namespace wsim::workload
