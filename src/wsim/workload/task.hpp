#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "wsim/align/pairhmm.hpp"

namespace wsim::workload {

/// One Smith-Waterman alignment task (a pair of sequences). In
/// HaplotypeCaller this is a candidate haplotype aligned against the
/// reference window of the active region.
struct SwTask {
  std::string query;   ///< rows of the DP matrix
  std::string target;  ///< columns of the DP matrix

  std::size_t cells() const noexcept { return query.size() * target.size(); }
};

/// One active region's worth of work: HaplotypeCaller emits a small batch
/// of SW tasks and a large batch of PairHMM tasks per region (the paper
/// measures averages of 4 and 189 tasks per batch respectively).
struct Region {
  std::vector<SwTask> sw_tasks;
  std::vector<align::PairHmmTask> ph_tasks;
};

/// A full synthetic dataset standing in for the HCC1954 HaplotypeCaller
/// dump.
struct Dataset {
  std::vector<Region> regions;
};

/// Number of DP cells in a PairHMM task (one "cell update" covers all
/// three matrices, the paper's CUPS convention).
std::size_t cells(const align::PairHmmTask& task) noexcept;

/// Aggregate shape statistics used by benches and EXPERIMENTS.md.
struct DatasetStats {
  std::size_t regions = 0;
  std::size_t sw_tasks = 0;
  std::size_t ph_tasks = 0;
  double avg_sw_tasks_per_region = 0.0;
  double avg_ph_tasks_per_region = 0.0;
  std::size_t max_read_len = 0;
  std::size_t max_hap_len = 0;
  std::size_t max_sw_query_len = 0;
  std::size_t max_sw_target_len = 0;
  std::size_t total_sw_cells = 0;
  std::size_t total_ph_cells = 0;
};

DatasetStats compute_stats(const Dataset& dataset) noexcept;

}  // namespace wsim::workload
