#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wsim::cli {

/// One registered subcommand of the `wsim` driver: the dispatch name and
/// the preformatted help block (synopsis + description, two-space
/// indented, newline-terminated) that usage_text() prints for it.
struct CommandInfo {
  std::string_view name;
  std::string_view help;
};

/// Every subcommand the driver dispatches, in help order. `wsim` asserts
/// at startup that its dispatch table matches this registry one-to-one,
/// and cli_usage_test asserts the assembled help names every entry — so
/// adding a command without documenting it, or documenting a command that
/// is never dispatched, fails fast instead of drifting.
const std::vector<CommandInfo>& commands();

/// True when `name` names a registered subcommand.
bool has_command(std::string_view name);

/// The full `wsim help` text: header, every command's help block, and the
/// common-options footer.
std::string usage_text();

/// Validates a --interp / WSIM_INTERP interpreter name. Returns the empty
/// string when `name` is a known engine ("fast", "legacy", "vector");
/// otherwise the exact one-line error the driver prints, which lists the
/// valid names. Shared between the binary and cli_usage_test so the error
/// surface cannot drift from the documented set.
std::string interp_error(std::string_view name);

}  // namespace wsim::cli
