#include "wsim/cli/commands.hpp"

#include <algorithm>

namespace wsim::cli {

const std::vector<CommandInfo>& commands() {
  static const std::vector<CommandInfo> registry = {
      {"devices",
       "  devices                      list simulated GPUs\n"},
      {"micro",
       "  micro    [--device D]        Fig. 3 instruction-latency microbenchmarks\n"},
      {"sw",
       "  sw       QUERY TARGET [--profile ''] Smith-Waterman alignment\n"},
      {"nw",
       "  nw       QUERY TARGET        Needleman-Wunsch global score\n"},
      {"pairhmm",
       "  pairhmm  READ HAP [--qual N] PairHMM log10 likelihood\n"},
      {"sw-run",
       "  sw-run   [--kernel shared|shuffle|wf-shared|wf-shuffle|wf-naive]\n"
       "           [--profile short-read|long-read|contig] [--tasks N]\n"
       "           [--verify ''] [--device D] [--seed S]\n"
       "           run one SW batch through a named kernel subsystem: plain\n"
       "           names pick the task-per-block (inter-task) designs, wf-*\n"
       "           the intra-task wavefront tiles (one warp per 256x32 tile,\n"
       "           one launch per tile wave; wf-naive is the host-synchronized\n"
       "           kernel-per-diagonal anti-pattern, kept to be measured);\n"
       "           --verify re-scores every CIGAR against the scoring scheme\n"},
      {"workload",
       "  workload [--regions N] [--in F] [--out F]  dataset stats / convert\n"},
      {"sweep",
       "  sweep    [--batch N] [--in F]    GCUPS of SW1/SW2/PH1/PH2\n"},
      {"pipeline",
       "  pipeline [--in F] [--batch N] [--streams ''] [--lpt ''] [--validate '']\n"
       "           run the two-stage HaplotypeCaller pipeline\n"},
      {"serve-sim",
       "  serve-sim [--in F] [--rate R] [--delay US] [--deadline US] [--queue N]\n"
       "            [--target-cells C] [--max-batch N] [--outputs ''] [--json F]\n"
       "            [--trace-out F] [--metrics-out F]\n"
       "           replay a dataset as an open-loop arrival process (R requests\n"
       "           per simulated second) through the async alignment service\n"},
      {"fleet-sim",
       "  fleet-sim [--fleet \"K40,K1200,Titan X\"]\n"
       "            [--policy model|rr|least-cells|calibrated]\n"
       "            [--parallelism auto|inter|intra] [--kernel NAME]\n"
       "            [--profile short-read|long-read|contig]\n"
       "            [--fail-prob P] [--slow-prob P] [--slow-factor X]\n"
       "            [--degrade \"DEV@FACTOR[:stuck|ramp|flap[:ONSET[:PARAM]]]\"]\n"
       "            [--calibrate on|off]\n"
       "            [--fault-seed S] [--json F] [--trace-out F]\n"
       "            [--metrics-out F] [+ serve-sim options]\n"
       "           the serve-sim replay over a heterogeneous multi-device fleet\n"
       "           with model-guided placement, fault injection, and retry;\n"
       "           prints per-device utilization and dispatch accounting.\n"
       "           --parallelism auto lets the Eq. 7/8 regime model route each\n"
       "           SW batch inter- vs intra-task per device; --kernel pins one\n"
       "           subsystem fleet-wide (wf-* names force the wavefront path).\n"
       "           --degrade silently slows a device (no fault counters) in\n"
       "           per-device dispatch-sequence space; --calibrate (default on\n"
       "           for --policy calibrated) runs the online model calibration\n"
       "           and drift ladder that detects and derates such devices\n"},
      {"cluster-sim",
       "  cluster-sim [--trace F | --shape steady|diurnal|bursty] [--save-trace F]\n"
       "            [--duration S] [--rate R] [--tenants N] [--slo MS]\n"
       "            [--quota N] [--fleet-device D] [--min N] [--max N]\n"
       "            [--autoscaler on|off] [--interval US] [--warmup US]\n"
       "            [--target-backlog US] [--cost-hour C]\n"
       "            [--policy model|rr|least-cells|calibrated]\n"
       "            [--degrade \"DEV@FACTOR[:stuck|ramp|flap[:ONSET[:PARAM]]]\"]\n"
       "            [--calibrate on|off] [--json F]\n"
       "            [--trace-out F] [--metrics-out F]\n"
       "           multi-tenant cluster-scale serving on a dynamically-scaled\n"
       "           fleet: replay (or generate, optionally saving with\n"
       "           --save-trace) a traffic trace through the admission-controlled\n"
       "           service while the queue-depth autoscaler joins and drains\n"
       "           workers; reports per-tenant latency percentiles, SLO\n"
       "           violations, goodput, device-hours, and cost per million\n"
       "           requests. With --calibrate on the autoscaler derates its\n"
       "           Eq. 7/8 capacity by the fleet's calibrated correction, so a\n"
       "           silently degraded (--degrade) pool scales out\n"},
      {"guard-sim",
       "  guard-sim [--flip-prob \"3e-7,3e-6\"] [--detect none|abft|dual|all]\n"
       "            [--regions N] [--batch N] [--fleet \"K1200,Titan X\"]\n"
       "            [--sdc-seed S] [--json F] [--trace-out F] [--metrics-out F]\n"
       "           sweep silent-data-corruption injection rate x detection mode\n"
       "           over an output-collecting fleet run: every delivered batch is\n"
       "           compared bit-for-bit against a fault-free baseline and escaped\n"
       "           corruptions are counted per cell (dual detection must report\n"
       "           0; PairHMM CPU fallbacks are accurate but not bit-identical\n"
       "           and are excluded from the comparison)\n"},
  };
  return registry;
}

bool has_command(std::string_view name) {
  const auto& registry = commands();
  return std::any_of(registry.begin(), registry.end(),
                     [&](const CommandInfo& info) { return info.name == name; });
}

std::string usage_text() {
  std::string text =
      "usage: wsim <command> [options]\n"
      "commands:\n";
  for (const CommandInfo& info : commands()) {
    text += info.help;
  }
  text +=
      "  help | --help | -h           print this usage and exit 0\n"
      "common options: --device \"K40\"|\"K1200\"|\"Titan X\", --mode shared|shuffle,\n"
      "                --seed N, --regions N\n"
      "                --threads N  simulation worker threads for block execution\n"
      "                             (default: one per hardware thread; results\n"
      "                              are identical at any thread count)\n"
      "                --interp fast|legacy|vector  interpreter path: predecoded\n"
      "                             fast dispatch (default), the legacy switch\n"
      "                             interpreter, or the SIMD lane-vector engine\n"
      "                             (results are bit-identical on all three)\n"
      "observability:  --trace-out F   write a Chrome trace-event JSON of the\n"
      "                             run (simulated clock; open in Perfetto or\n"
      "                             chrome://tracing)\n"
      "                --metrics-out F  write the flat obs metrics dump\n"
      "                             (counters/gauges/histograms, versioned\n"
      "                             schema); both flags default the run to the\n"
      "                             otherwise-free disabled level\n"
      "environment:    WSIM_THREADS=N  worker count of the process-wide shared\n"
      "                             engine, used whenever --threads is absent or\n"
      "                             <= 0 (pipeline, benches, library default)\n"
      "                WSIM_INTERP=legacy|vector  select the interpreter when\n"
      "                             --interp is absent (default: fast)\n"
      "                WSIM_VECTOR_ISA=generic|avx2|avx512  clamp the lane-vector\n"
      "                             engine's SIMD tier (downgrade-only; default:\n"
      "                             best the CPU supports)\n";
  return text;
}

std::string interp_error(std::string_view name) {
  if (name == "fast" || name == "legacy" || name == "vector") {
    return {};
  }
  return "error: unknown interpreter '" + std::string(name) +
         "' for --interp; valid names: fast, legacy, vector";
}

}  // namespace wsim::cli
