#include "wsim/model/perf_model.hpp"
#include <algorithm>

#include "wsim/util/check.hpp"

namespace wsim::model {

double predict_cups(const simt::DeviceSpec& device, const simt::Occupancy& occupancy,
                    double latency_cycles_per_iteration) {
  util::require(latency_cycles_per_iteration > 0.0,
                "predict_cups: latency must be positive");
  const double parallelism = static_cast<double>(occupancy.parallelism(device));
  return parallelism * device.clock_ghz * 1e9 / latency_cycles_per_iteration;
}

double predict_gcups(const simt::DeviceSpec& device, const simt::Occupancy& occupancy,
                     double latency_cycles_per_iteration) {
  return predict_cups(device, occupancy, latency_cycles_per_iteration) / 1e9;
}

double effective_latency_cycles(const simt::DeviceSpec& device,
                                const simt::Occupancy& occupancy, double cups) {
  util::require(cups > 0.0, "effective_latency_cycles: CUPS must be positive");
  const double parallelism = static_cast<double>(occupancy.parallelism(device));
  return parallelism * device.clock_ghz * 1e9 / cups;
}

long long effective_parallelism(const simt::DeviceSpec& device,
                                const simt::Occupancy& occupancy,
                                std::size_t blocks, int threads_per_block) {
  util::require(threads_per_block > 0, "effective_parallelism: bad threads/block");
  const long long launched =
      static_cast<long long>(blocks) * threads_per_block;
  return std::min(occupancy.parallelism(device), launched);
}

double effective_latency_cycles(const simt::DeviceSpec& device,
                                const simt::Occupancy& occupancy, double cups,
                                std::size_t blocks, int threads_per_block) {
  util::require(cups > 0.0, "effective_latency_cycles: CUPS must be positive");
  const auto parallelism =
      effective_parallelism(device, occupancy, blocks, threads_per_block);
  return static_cast<double>(parallelism) * device.clock_ghz * 1e9 / cups;
}

}  // namespace wsim::model
