#pragma once

#include "wsim/simt/device.hpp"
#include "wsim/simt/occupancy.hpp"

namespace wsim::model {

/// The paper's performance model (Eq. 7):
///
///   performance(CUPS) = parallelism * frequency / latency
///
/// where `parallelism` comes from the occupancy calculation (Eq. 8),
/// `frequency` from the device specification, and `latency` is the
/// average cycles to finish one anti-diagonal iteration.

/// Predicted cell updates per second for a kernel whose active threads
/// each own one cell.
double predict_cups(const simt::DeviceSpec& device, const simt::Occupancy& occupancy,
                    double latency_cycles_per_iteration);

/// Convenience: prediction in GCUPS.
double predict_gcups(const simt::DeviceSpec& device, const simt::Occupancy& occupancy,
                     double latency_cycles_per_iteration);

/// Model inversion, the paper's Table II methodology: given a measured
/// CUPS rate, derive the effective per-iteration latency
/// latency = parallelism * frequency / CUPS.
double effective_latency_cycles(const simt::DeviceSpec& device,
                                const simt::Occupancy& occupancy, double cups);

/// Parallelism actually available to a launch: the occupancy bound (Eq. 8)
/// clamped by the number of launched threads (a small batch cannot fill
/// every block slot).
long long effective_parallelism(const simt::DeviceSpec& device,
                                const simt::Occupancy& occupancy,
                                std::size_t blocks, int threads_per_block);

/// Effective latency using the clamped parallelism.
double effective_latency_cycles(const simt::DeviceSpec& device,
                                const simt::Occupancy& occupancy, double cups,
                                std::size_t blocks, int threads_per_block);

}  // namespace wsim::model
