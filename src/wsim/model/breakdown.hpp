#pragma once

#include <cstdint>

#include "wsim/simt/device.hpp"
#include "wsim/simt/isa.hpp"

namespace wsim::model {

/// Static instruction mix of one block-level iteration of a kernel's hot
/// loop (its innermost anti-diagonal step), the input to the paper's
/// Table III analysis. Per-warp instruction counts are scaled by the
/// number of warps per block — the paper counts 8 shared-memory
/// instructions per warp x 4 warps = 32 for PH1 — while barriers count
/// once per block iteration.
struct CommBreakdown {
  std::uint64_t smem_loads = 0;
  std::uint64_t smem_stores = 0;
  std::uint64_t gmem_loads = 0;
  std::uint64_t gmem_stores = 0;
  std::uint64_t shfl = 0;
  std::uint64_t shfl_up = 0;
  std::uint64_t shfl_down = 0;
  std::uint64_t shfl_xor = 0;
  std::uint64_t reg_moves = 0;  ///< rotation / state-update register ops
  std::uint64_t barriers = 0;
  std::uint64_t other = 0;  ///< arithmetic, compares, selects, ...

  std::uint64_t shuffle_total() const noexcept {
    return shfl + shfl_up + shfl_down + shfl_xor;
  }
  std::uint64_t smem_total() const noexcept { return smem_loads + smem_stores; }

  /// Communication cycles per iteration in the paper's Table III style:
  /// only inter-thread data movement (shared memory, shuffles, register
  /// rotation) and synchronization are charged; global-memory input and
  /// output traffic is identical across designs and excluded, exactly as
  /// in the paper's LOAD/WRITE/ROTATE/SYNC rows.
  double comm_cycles(const simt::LatencyTable& lat) const noexcept;
};

/// Scans the kernel for its hot loop (the innermost loop region with the
/// most instructions) and tallies the instruction mix of one iteration.
CommBreakdown hot_loop_breakdown(const simt::Kernel& kernel);

/// Estimated per-iteration latency reduction of replacing a shared-memory
/// design with a shuffle design (paper Table III bottom rows):
/// comm_cycles(shared) - comm_cycles(shuffle).
double estimated_reduction(const simt::Kernel& shared_kernel,
                           const simt::Kernel& shuffle_kernel,
                           const simt::LatencyTable& lat);

}  // namespace wsim::model
