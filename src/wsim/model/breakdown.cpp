#include "wsim/model/breakdown.hpp"

#include <vector>

#include "wsim/util/check.hpp"

namespace wsim::model {

using simt::Instr;
using simt::Kernel;
using simt::Op;

double CommBreakdown::comm_cycles(const simt::LatencyTable& lat) const noexcept {
  double cycles = 0.0;
  cycles += static_cast<double>(smem_loads) * lat.smem_load;
  cycles += static_cast<double>(smem_stores) * lat.smem_store;
  cycles += static_cast<double>(shfl) * lat.shfl;
  cycles += static_cast<double>(shfl_up) * lat.shfl_up;
  cycles += static_cast<double>(shfl_down) * lat.shfl_down;
  cycles += static_cast<double>(shfl_xor) * lat.shfl_xor;
  cycles += static_cast<double>(reg_moves) * lat.reg_access;
  cycles += static_cast<double>(barriers) * lat.sync_barrier;
  return cycles;
}

namespace {

struct LoopRegion {
  std::size_t begin = 0;  ///< index of kLoop
  std::size_t end = 0;    ///< index of kEndLoop
  bool innermost = true;
};

std::vector<LoopRegion> loop_regions(const Kernel& kernel) {
  std::vector<LoopRegion> regions;
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < kernel.code.size(); ++i) {
    if (kernel.code[i].op == Op::kLoop) {
      stack.push_back(i);
    } else if (kernel.code[i].op == Op::kEndLoop) {
      util::ensure(!stack.empty(), "hot_loop_breakdown: unbalanced loops");
      regions.push_back({stack.back(), i, true});
      stack.pop_back();
    }
  }
  // A region is innermost if no other region nests strictly inside it.
  for (auto& outer : regions) {
    for (const auto& inner : regions) {
      if (&outer != &inner && inner.begin > outer.begin && inner.end < outer.end) {
        outer.innermost = false;
        break;
      }
    }
  }
  return regions;
}

}  // namespace

CommBreakdown hot_loop_breakdown(const Kernel& kernel) {
  const auto regions = loop_regions(kernel);
  util::require(!regions.empty(), "hot_loop_breakdown: kernel has no loops");

  const LoopRegion* hot = nullptr;
  std::size_t hot_size = 0;
  for (const auto& region : regions) {
    if (!region.innermost) {
      continue;
    }
    const std::size_t size = region.end - region.begin;
    if (size > hot_size) {
      hot_size = size;
      hot = &region;
    }
  }
  util::ensure(hot != nullptr, "hot_loop_breakdown: no innermost loop found");

  CommBreakdown breakdown;
  const auto warps = static_cast<std::uint64_t>(kernel.warps_per_block());
  for (std::size_t i = hot->begin + 1; i < hot->end; ++i) {
    const Instr& ins = kernel.code[i];
    switch (ins.op) {
      case Op::kLds:
        breakdown.smem_loads += warps;
        break;
      case Op::kSts:
        breakdown.smem_stores += warps;
        break;
      case Op::kLdg:
        breakdown.gmem_loads += warps;
        break;
      case Op::kStg:
        breakdown.gmem_stores += warps;
        break;
      case Op::kShfl:
        breakdown.shfl += warps;
        break;
      case Op::kShflUp:
        breakdown.shfl_up += warps;
        break;
      case Op::kShflDown:
        breakdown.shfl_down += warps;
        break;
      case Op::kShflXor:
        breakdown.shfl_xor += warps;
        break;
      case Op::kMov:
      case Op::kSMov:
        breakdown.reg_moves += warps;
        break;
      case Op::kBar:
        ++breakdown.barriers;  // one barrier event per block iteration
        break;
      default:
        breakdown.other += warps;
        break;
    }
  }
  return breakdown;
}

double estimated_reduction(const Kernel& shared_kernel, const Kernel& shuffle_kernel,
                           const simt::LatencyTable& lat) {
  return hot_loop_breakdown(shared_kernel).comm_cycles(lat) -
         hot_loop_breakdown(shuffle_kernel).comm_cycles(lat);
}

}  // namespace wsim::model
