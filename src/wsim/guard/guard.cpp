#include "wsim/guard/guard.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "wsim/align/needleman_wunsch.hpp"
#include "wsim/align/pairhmm.hpp"
#include "wsim/align/smith_waterman.hpp"
#include "wsim/cpu/simd_pairhmm.hpp"
#include "wsim/util/check.hpp"

namespace wsim::guard {

namespace {

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h = (h ^ p[i]) * 0x100000001B3ULL;
  }
  return h;
}

template <typename T>
std::uint64_t fnv_value(std::uint64_t h, T value) noexcept {
  return fnv_bytes(h, &value, sizeof(value));
}

constexpr std::uint64_t kFnvBasis = 0xCBF29CE484222325ULL;

std::string task_prefix(std::string_view kind, std::size_t index) {
  return std::string(kind) + " task " + std::to_string(index) + ": ";
}

/// Gap of length `run` under GATK affine scoring: open covers the first
/// base, every further base extends.
long long gap_score(const align::SwParams& params, std::size_t run) noexcept {
  return static_cast<long long>(params.gap_open) +
         static_cast<long long>(run - 1) * params.gap_extend;
}

}  // namespace

std::string_view to_string(DetectMode mode) noexcept {
  switch (mode) {
    case DetectMode::kNone: return "none";
    case DetectMode::kAbft: return "abft";
    case DetectMode::kDual: return "dual";
  }
  return "?";
}

DetectMode detect_mode_by_name(std::string_view name) {
  if (name == "none") {
    return DetectMode::kNone;
  }
  if (name == "abft") {
    return DetectMode::kAbft;
  }
  if (name == "dual") {
    return DetectMode::kDual;
  }
  throw util::CheckError("unknown detect mode '" + std::string(name) +
                         "' (expected none, abft, or dual)");
}

void GuardStats::merge(const GuardStats& other) noexcept {
  verified_batches += other.verified_batches;
  sdc_flips += other.sdc_flips;
  sdc_detected += other.sdc_detected;
  sdc_corrected += other.sdc_corrected;
  sdc_masked += other.sdc_masked;
  reexecutions += other.reexecutions;
  cpu_fallbacks += other.cpu_fallbacks;
  watchdog_timeouts += other.watchdog_timeouts;
}

std::optional<std::string> validate_sw(const workload::SwBatch& batch,
                                       const std::vector<kernels::SwTaskOutput>& outputs,
                                       const align::SwParams& params) {
  if (outputs.size() != batch.size()) {
    return "SW output count " + std::to_string(outputs.size()) +
           " != batch size " + std::to_string(batch.size());
  }
  for (std::size_t t = 0; t < batch.size(); ++t) {
    const workload::SwTask& task = batch[t];
    const kernels::SwTaskOutput& out = outputs[t];
    const std::size_t m = task.query.size();
    const std::size_t n = task.target.size();
    const auto prefix = [&] { return task_prefix("SW", t); };

    const long long max_score =
        static_cast<long long>(std::min(m, n)) * params.match;
    if (out.best_score < 0 || out.best_score > max_score) {
      return prefix() + "best score " + std::to_string(out.best_score) +
             " outside [0, " + std::to_string(max_score) + "]";
    }
    if (out.best_i > m || out.best_j > n) {
      return prefix() + "best cell (" + std::to_string(out.best_i) + ", " +
             std::to_string(out.best_j) + ") outside the DP matrix";
    }
    if (out.best_score > 0 && out.best_i != m && out.best_j != n) {
      return prefix() + "best cell off the last row/column "
             "(HaplotypeCaller search space)";
    }
    const align::SwAlignment& aln = out.alignment;
    if (aln.score != out.best_score) {
      return prefix() + "alignment score disagrees with best score";
    }
    if (aln.query_end != out.best_i || aln.target_end != out.best_j) {
      return prefix() + "alignment does not end at the best cell";
    }
    if (aln.query_begin > aln.query_end || aln.target_begin > aln.target_end) {
      return prefix() + "alignment span is inverted";
    }

    // Traceback-cell consistency: re-score the CIGAR against the
    // sequences; a corrupted backtrace almost surely traces a path whose
    // score sum no longer equals the claimed best score.
    std::size_t qi = aln.query_begin;
    std::size_t ti = aln.target_begin;
    long long rescored = 0;
    std::size_t run = 0;
    for (const char c : aln.cigar) {
      if (c >= '0' && c <= '9') {
        run = run * 10 + static_cast<std::size_t>(c - '0');
        continue;
      }
      if (run == 0) {
        return prefix() + "zero-length CIGAR run";
      }
      switch (c) {
        case 'M':
          if (qi + run > m || ti + run > n) {
            return prefix() + "CIGAR overruns the sequences";
          }
          for (std::size_t k = 0; k < run; ++k) {
            rescored += substitution_score(params, task.query[qi++], task.target[ti++]);
          }
          break;
        case 'I':
          if (qi + run > m) {
            return prefix() + "CIGAR overruns the query";
          }
          qi += run;
          rescored += gap_score(params, run);
          break;
        case 'D':
          if (ti + run > n) {
            return prefix() + "CIGAR overruns the target";
          }
          ti += run;
          rescored += gap_score(params, run);
          break;
        default:
          return prefix() + "unexpected CIGAR operation '" + std::string(1, c) + "'";
      }
      run = 0;
    }
    if (run != 0) {
      return prefix() + "CIGAR ends mid-run";
    }
    if (qi != aln.query_end || ti != aln.target_end) {
      return prefix() + "CIGAR length disagrees with the aligned span";
    }
    if (rescored != out.best_score) {
      return prefix() + "re-scored CIGAR gives " + std::to_string(rescored) +
             ", best score claims " + std::to_string(out.best_score);
    }
  }
  return std::nullopt;
}

std::optional<std::string> validate_ph(const workload::PhBatch& batch,
                                       const std::vector<double>& log10) {
  if (log10.size() != batch.size()) {
    return "PairHMM output count " + std::to_string(log10.size()) +
           " != batch size " + std::to_string(batch.size());
  }
  for (std::size_t t = 0; t < batch.size(); ++t) {
    const double value = log10[t];
    if (!std::isfinite(value)) {
      return task_prefix("PairHMM", t) + "log10 likelihood is not finite";
    }
    // A likelihood is a probability: log10 <= 0, with a little slack for
    // f32 rounding of near-perfect matches.
    if (value > 0.5) {
      return task_prefix("PairHMM", t) + "log10 likelihood " +
             std::to_string(value) + " above the probability ceiling";
    }
    // Every path factor (emissions and transitions, both derived from
    // 8-bit Phred quals) is >= ~1e-26, and a path has at most ~2(r+h)
    // factors — anything below this is numeric garbage, not a likelihood.
    const double floor = -52.0 * static_cast<double>(batch[t].read.size() +
                                                     batch[t].hap.size() + 2);
    if (value < floor) {
      return task_prefix("PairHMM", t) + "log10 likelihood " +
             std::to_string(value) + " below the reachable floor " +
             std::to_string(floor);
    }
  }
  return std::nullopt;
}

std::optional<std::string> validate_nw(const workload::SwBatch& batch,
                                       const std::vector<std::int32_t>& scores,
                                       const align::SwParams& params) {
  if (scores.size() != batch.size()) {
    return "NW output count " + std::to_string(scores.size()) +
           " != batch size " + std::to_string(batch.size());
  }
  for (std::size_t t = 0; t < batch.size(); ++t) {
    const std::size_t m = batch[t].query.size();
    const std::size_t n = batch[t].target.size();
    // Global alignment consumes both sequences: at best min(m, n) matches
    // plus one unavoidable gap covering the length difference; at worst
    // every consumed base pays the most negative per-base penalty.
    long long upper = static_cast<long long>(std::min(m, n)) * params.match;
    if (m != n) {
      upper += gap_score(params, m > n ? m - n : n - m);
    }
    const long long worst_step =
        std::min<long long>(params.mismatch, std::min(params.gap_open, params.gap_extend));
    const long long lower = static_cast<long long>(m + n) * worst_step;
    if (scores[t] < lower || scores[t] > upper) {
      return task_prefix("NW", t) + "score " + std::to_string(scores[t]) +
             " outside [" + std::to_string(lower) + ", " + std::to_string(upper) + "]";
    }
  }
  return std::nullopt;
}

std::uint64_t fingerprint_sw(const std::vector<kernels::SwTaskOutput>& outputs) noexcept {
  std::uint64_t h = kFnvBasis;
  for (const kernels::SwTaskOutput& out : outputs) {
    h = fnv_value(h, out.best_score);
    h = fnv_value(h, static_cast<std::uint64_t>(out.best_i));
    h = fnv_value(h, static_cast<std::uint64_t>(out.best_j));
    h = fnv_value(h, out.alignment.score);
    h = fnv_bytes(h, out.alignment.cigar.data(), out.alignment.cigar.size());
    h = fnv_value(h, static_cast<std::uint64_t>(out.alignment.query_begin));
    h = fnv_value(h, static_cast<std::uint64_t>(out.alignment.query_end));
    h = fnv_value(h, static_cast<std::uint64_t>(out.alignment.target_begin));
    h = fnv_value(h, static_cast<std::uint64_t>(out.alignment.target_end));
    h = fnv_value(h, static_cast<std::uint64_t>(out.btrack.rows()));
    h = fnv_value(h, static_cast<std::uint64_t>(out.btrack.cols()));
    h = fnv_bytes(h, out.btrack.data().data(),
                  out.btrack.data().size() * sizeof(std::int32_t));
  }
  return h;
}

std::uint64_t fingerprint_ph(const std::vector<double>& log10) noexcept {
  std::uint64_t h = kFnvBasis;
  return fnv_bytes(h, log10.data(), log10.size() * sizeof(double));
}

std::uint64_t fingerprint_nw(const std::vector<std::int32_t>& scores) noexcept {
  std::uint64_t h = kFnvBasis;
  return fnv_bytes(h, scores.data(), scores.size() * sizeof(std::int32_t));
}

std::vector<kernels::SwTaskOutput> cpu_sw(const workload::SwBatch& batch,
                                          const align::SwParams& params) {
  std::vector<kernels::SwTaskOutput> outputs(batch.size());
  for (std::size_t t = 0; t < batch.size(); ++t) {
    align::SwFill fill = align::sw_fill(batch[t].query, batch[t].target, params);
    kernels::SwTaskOutput& out = outputs[t];
    out.best_score = fill.best_score;
    out.best_i = fill.best_i;
    out.best_j = fill.best_j;
    out.alignment =
        align::sw_backtrace(fill.btrack, fill.best_i, fill.best_j, fill.best_score);
    out.btrack = std::move(fill.btrack);
  }
  return outputs;
}

std::vector<double> cpu_ph(const workload::PhBatch& batch) {
  std::vector<double> log10(batch.size());
  for (std::size_t t = 0; t < batch.size(); ++t) {
    try {
      log10[t] = cpu::simd_pairhmm_log10(batch[t]);
    } catch (const util::CheckError&) {
      // f32 underflow: GATK's double-precision rescue.
      log10[t] = align::pairhmm_log10_double(batch[t]);
    }
  }
  return log10;
}

std::vector<std::int32_t> cpu_nw(const workload::SwBatch& batch,
                                 const align::SwParams& params) {
  std::vector<std::int32_t> scores(batch.size());
  for (std::size_t t = 0; t < batch.size(); ++t) {
    scores[t] = align::nw_score(batch[t].query, batch[t].target, params);
  }
  return scores;
}

}  // namespace wsim::guard
