#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "wsim/align/scoring.hpp"
#include "wsim/kernels/nw_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/sdc.hpp"
#include "wsim/workload/batching.hpp"

namespace wsim::guard {

/// How a batch's outputs are screened before delivery.
///
/// kAbft runs the cheap per-kernel validators below — O(output) algebraic
/// invariants in the ABFT tradition, which catch gross corruptions (NaNs,
/// sign/exponent flips, broken tracebacks) but can miss a flip that lands
/// inside the valid range. kDual re-executes the batch and compares
/// output fingerprints exactly; two runs draw disjoint SDC streams, so a
/// mismatch pinpoints corruption and agreement certifies the result (two
/// independent corruptions producing identical outputs would have to
/// collide bit-for-bit). kDual subsumes kAbft's checks.
enum class DetectMode { kNone, kAbft, kDual };

std::string_view to_string(DetectMode mode) noexcept;

/// Parses "none" | "abft" | "dual"; throws util::CheckError otherwise.
DetectMode detect_mode_by_name(std::string_view name);

/// Resilience knobs shared by the fleet and the serving layer.
struct GuardConfig {
  DetectMode detect = DetectMode::kNone;
  /// Deterministic corruption injection applied to output-collecting
  /// launches (timing-only shape-cached launches are never injected).
  simt::SdcPlan sdc;
  /// Watchdog cycle budget per block; 0 disables (see simt/watchdog.hpp).
  long long max_block_cycles = 0;
  /// Re-executions attempted for a flagged batch before falling back to
  /// the CPU reference (first retry prefers the same device, the next one
  /// another device).
  int max_reexecutions = 2;
  /// Allow the CPU reference implementations as the final escalation
  /// step; when false an unrecoverable batch throws util::CheckError.
  bool cpu_fallback = true;

  bool verifying() const noexcept { return detect != DetectMode::kNone; }
  bool enabled() const noexcept {
    return verifying() || sdc.enabled() || max_block_cycles > 0;
  }
};

/// Corruption/watchdog accounting, merged into FleetStats and
/// ServiceStats. "Detected" counts flagged verifications, "corrected"
/// the flagged batches whose re-execution (or vote) produced a clean
/// result, "masked" delivered batches whose run absorbed flips without
/// the verifier objecting — under kDual that certifies the flips did not
/// reach the outputs; under kAbft it may hide an in-range escape.
struct GuardStats {
  std::uint64_t verified_batches = 0;   ///< batches screened by a detector
  std::uint64_t sdc_flips = 0;          ///< injected flips across all runs
  std::uint64_t sdc_detected = 0;       ///< verifications that flagged a batch
  std::uint64_t sdc_corrected = 0;      ///< flagged batches recovered on device
  std::uint64_t sdc_masked = 0;         ///< delivered batches with unflagged flips
  std::uint64_t reexecutions = 0;       ///< extra device runs for verification/recovery
  std::uint64_t cpu_fallbacks = 0;      ///< batches answered by the CPU reference
  std::uint64_t watchdog_timeouts = 0;  ///< LaunchTimeout errors absorbed

  void merge(const GuardStats& other) noexcept;
};

// --- ABFT validators --------------------------------------------------------
// Each returns std::nullopt when the outputs satisfy the kernel's
// invariants, or a description of the first violation. They read only the
// batch inputs and the device outputs — no DP recomputation.

/// Smith-Waterman (HaplotypeCaller variant): per task, the best score is
/// within [0, min(m, n) * match], the best cell lies on the last row or
/// column, and re-scoring the traced CIGAR against the sequences
/// reproduces the best score exactly (traceback-cell consistency).
std::optional<std::string> validate_sw(const workload::SwBatch& batch,
                                       const std::vector<kernels::SwTaskOutput>& outputs,
                                       const align::SwParams& params);

/// PairHMM: per task, the log10 likelihood is finite and inside the range
/// a probability with bounded-Phred emissions can reach.
std::optional<std::string> validate_ph(const workload::PhBatch& batch,
                                       const std::vector<double>& log10);

/// Needleman-Wunsch: per task, the global score respects the bounds from
/// the match/gap extremes of any path through the anti-diagonal band.
std::optional<std::string> validate_nw(const workload::SwBatch& batch,
                                       const std::vector<std::int32_t>& scores,
                                       const align::SwParams& params);

// --- fingerprints -----------------------------------------------------------
// FNV-1a over every output bit (scores, coordinates, CIGARs, backtrace
// matrices); dual-execution agreement means bit-identical outputs.

std::uint64_t fingerprint_sw(const std::vector<kernels::SwTaskOutput>& outputs) noexcept;
std::uint64_t fingerprint_ph(const std::vector<double>& log10) noexcept;
std::uint64_t fingerprint_nw(const std::vector<std::int32_t>& scores) noexcept;

// --- CPU references ---------------------------------------------------------

/// Host ground truth for the SW kernels: align::sw_fill + sw_backtrace,
/// bit-identical to an uncorrupted device run (pinned by sw_kernel_test).
std::vector<kernels::SwTaskOutput> cpu_sw(const workload::SwBatch& batch,
                                          const align::SwParams& params);

/// Host ground truth for PairHMM: the wsim::cpu SIMD forward algorithm,
/// with the double-precision rescue for tasks whose f32 sum underflows.
/// Accurate, but not bit-identical to the device kernel (which sums in a
/// different order) — hence counted separately as cpu_fallbacks.
std::vector<double> cpu_ph(const workload::PhBatch& batch);

/// Host ground truth for NW: align::nw_score per task.
std::vector<std::int32_t> cpu_nw(const workload::SwBatch& batch,
                                 const align::SwParams& params);

}  // namespace wsim::guard
