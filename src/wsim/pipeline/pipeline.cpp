#include "wsim/pipeline/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "wsim/align/pairhmm.hpp"
#include "wsim/simt/energy.hpp"
#include "wsim/simt/engine.hpp"
#include "wsim/util/check.hpp"

namespace wsim::pipeline {

namespace {

/// Index-preserving batching: batches are lists of indices into the
/// flattened task vector, so re-batching and LPT ordering never lose the
/// dataset order of the outputs.
template <typename Task, typename CellsOf>
std::vector<std::vector<std::size_t>> plan_batches(
    const std::vector<std::vector<Task>>& per_region, std::size_t rebatch_size,
    bool lpt, CellsOf cells_of) {
  std::vector<std::vector<std::size_t>> batches;
  std::size_t base = 0;
  if (rebatch_size == 0) {
    for (const auto& region : per_region) {
      if (!region.empty()) {
        std::vector<std::size_t> batch(region.size());
        std::iota(batch.begin(), batch.end(), base);
        batches.push_back(std::move(batch));
      }
      base += region.size();
    }
  } else {
    std::size_t total = 0;
    for (const auto& region : per_region) {
      total += region.size();
    }
    for (std::size_t begin = 0; begin < total; begin += rebatch_size) {
      const std::size_t end = std::min(begin + rebatch_size, total);
      std::vector<std::size_t> batch(end - begin);
      std::iota(batch.begin(), batch.end(), begin);
      batches.push_back(std::move(batch));
    }
  }
  if (lpt) {
    for (auto& batch : batches) {
      std::stable_sort(batch.begin(), batch.end(),
                       [&](std::size_t x, std::size_t y) {
                         return cells_of(x) > cells_of(y);
                       });
    }
  }
  return batches;
}

}  // namespace

PipelineReport run_pipeline(const workload::Dataset& dataset,
                            const PipelineConfig& config) {
  util::require(!dataset.regions.empty(), "run_pipeline: dataset has no regions");

  PipelineReport report;

  // One engine serves both stages, so its worker pool (and, with
  // use_engine_cache, its cost cache) is shared across every batch. The
  // default thread count uses the process-wide engine — pipeline, serving
  // layer, and CLI then share one worker pool and one cost cache; an
  // explicit positive count builds a private engine for this run only.
  std::optional<simt::ExecutionEngine> private_engine;
  simt::ExecutionEngine* engine = nullptr;
  if (config.threads <= 0) {
    engine = &simt::shared_engine();
  } else {
    private_engine.emplace(simt::EngineOptions{.threads = config.threads});
    engine = &*private_engine;
  }
  report.engine_used = engine;

  // ---------------- stage 1: Smith-Waterman -------------------------------
  {
    std::vector<workload::SwTask> tasks;
    std::vector<std::vector<workload::SwTask>> per_region;
    per_region.reserve(dataset.regions.size());
    for (const auto& region : dataset.regions) {
      per_region.push_back(region.sw_tasks);
      tasks.insert(tasks.end(), region.sw_tasks.begin(), region.sw_tasks.end());
    }
    util::require(!tasks.empty(), "run_pipeline: dataset has no SW tasks");
    const auto batches = plan_batches(
        per_region, config.rebatch_size, config.lpt_order,
        [&](std::size_t i) { return tasks[i].cells(); });

    const kernels::SwRunner runner(config.sw_design);
    kernels::SwRunOptions options;
    options.collect_outputs = true;
    options.overlap_transfers = config.overlap_transfers;
    options.engine = engine;

    report.sw_alignments.resize(tasks.size());
    for (const auto& batch_indices : batches) {
      workload::SwBatch batch;
      batch.reserve(batch_indices.size());
      for (const std::size_t i : batch_indices) {
        batch.push_back(tasks[i]);
      }
      const auto result = runner.run_batch(config.device, batch, options);
      report.sw.seconds += result.run.launch.total_seconds();
      report.sw.cells += result.run.cells;
      report.sw.joules += simt::launch_energy(result.run.launch.representative,
                                              batch.size(),
                                              result.run.launch.kernel_seconds,
                                              config.device)
                              .total_joules();
      for (std::size_t b = 0; b < batch_indices.size(); ++b) {
        report.sw_alignments[batch_indices[b]] = result.outputs[b].alignment;
      }
    }
    report.sw.tasks = tasks.size();
    report.sw.batches = batches.size();
    report.sw.gcups = report.sw.seconds > 0.0
                          ? static_cast<double>(report.sw.cells) / report.sw.seconds / 1e9
                          : 0.0;

    if (config.validate_sample) {
      util::require(config.validate_every > 0, "run_pipeline: validate_every must be > 0");
      for (std::size_t i = 0; i < tasks.size(); i += config.validate_every) {
        const auto ref = align::sw_align(tasks[i].query, tasks[i].target, {});
        ++report.validated;
        if (ref.score != report.sw_alignments[i].score ||
            ref.cigar != report.sw_alignments[i].cigar) {
          ++report.mismatches;
        }
      }
    }
  }

  // ---------------- stage 2: PairHMM --------------------------------------
  {
    std::vector<align::PairHmmTask> tasks;
    std::vector<std::vector<align::PairHmmTask>> per_region;
    per_region.reserve(dataset.regions.size());
    for (const auto& region : dataset.regions) {
      per_region.push_back(region.ph_tasks);
      tasks.insert(tasks.end(), region.ph_tasks.begin(), region.ph_tasks.end());
    }
    util::require(!tasks.empty(), "run_pipeline: dataset has no PairHMM tasks");
    const auto batches = plan_batches(
        per_region, config.rebatch_size, config.lpt_order,
        [&](std::size_t i) { return workload::cells(tasks[i]); });

    const kernels::PhRunner runner(config.ph_design);
    kernels::PhRunOptions options;
    options.collect_outputs = true;
    options.overlap_transfers = config.overlap_transfers;
    options.double_fallback = config.double_fallback;
    options.engine = engine;

    report.ph_log10.resize(tasks.size());
    for (const auto& batch_indices : batches) {
      workload::PhBatch batch;
      batch.reserve(batch_indices.size());
      for (const std::size_t i : batch_indices) {
        batch.push_back(tasks[i]);
      }
      const auto result = runner.run_batch(config.device, batch, options);
      report.ph.seconds += result.run.launch.total_seconds();
      report.ph.cells += result.run.cells;
      report.ph.joules += simt::launch_energy(result.run.launch.representative,
                                              batch.size(),
                                              result.run.launch.kernel_seconds,
                                              config.device)
                              .total_joules();
      for (std::size_t b = 0; b < batch_indices.size(); ++b) {
        report.ph_log10[batch_indices[b]] = result.log10[b];
      }
    }
    report.ph.tasks = tasks.size();
    report.ph.batches = batches.size();
    report.ph.gcups = report.ph.seconds > 0.0
                          ? static_cast<double>(report.ph.cells) / report.ph.seconds / 1e9
                          : 0.0;

    if (config.validate_sample) {
      for (std::size_t i = 0; i < tasks.size(); i += config.validate_every) {
        const double ref = align::pairhmm_log10_safe(tasks[i]);
        ++report.validated;
        if (std::abs(ref - report.ph_log10[i]) > 5e-3 + std::abs(ref) * 1e-3) {
          ++report.mismatches;
        }
      }
    }
  }

  return report;
}

}  // namespace wsim::pipeline
