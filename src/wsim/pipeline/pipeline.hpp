#pragma once

#include <cstddef>
#include <vector>

#include "wsim/align/smith_waterman.hpp"
#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/device.hpp"
#include "wsim/workload/task.hpp"

namespace wsim::simt {
class ExecutionEngine;
}  // namespace wsim::simt

namespace wsim::pipeline {

/// End-to-end HaplotypeCaller-style pipeline over a dataset: stage 1
/// aligns every region's candidate haplotypes with Smith-Waterman,
/// stage 2 scores every read/haplotype pair with PairHMM — the two
/// GPU-offloaded stages of the paper — with the paper's optimizations
/// (kernel design choice, re-batching) and this library's extensions
/// (transfer overlap, LPT ordering, double fallback) as configuration.
struct PipelineConfig {
  simt::DeviceSpec device = simt::make_titan_x();
  kernels::CommMode sw_design = kernels::CommMode::kShuffle;
  kernels::PhDesign ph_design = kernels::PhDesign::kShuffle;

  /// 0 keeps the per-region batching of the paper's Fig. 9; a positive
  /// value re-batches tasks across regions (Fig. 10).
  std::size_t rebatch_size = 0;
  /// Simulation worker threads for block execution. <= 0 (the default)
  /// routes both stages through the process-wide simt::shared_engine() —
  /// one worker pool and one cost cache shared with the serving layer and
  /// the CLI (thread count from WSIM_THREADS when set, else one per
  /// hardware thread). A positive value builds a private engine with that
  /// many workers for this run. Results are identical at any thread count.
  int threads = 0;
  bool overlap_transfers = false;
  bool lpt_order = false;
  /// GATK-style double-precision rescue of underflowed PairHMM tasks.
  bool double_fallback = true;

  /// Cross-check every `validate_every`-th task against the host
  /// reference implementations while running.
  bool validate_sample = false;
  std::size_t validate_every = 37;
};

struct StageReport {
  std::size_t tasks = 0;
  std::size_t cells = 0;
  std::size_t batches = 0;
  double seconds = 0.0;  ///< simulated wall time incl. transfers/overheads
  double gcups = 0.0;
  /// Estimated device energy (dynamic + static) in joules, extrapolated
  /// from each batch's representative block (see simt::launch_energy).
  double joules = 0.0;
  double pj_per_cell() const noexcept {
    return cells > 0 ? joules * 1e12 / static_cast<double>(cells) : 0.0;
  }
};

struct PipelineReport {
  StageReport sw;
  StageReport ph;
  std::size_t validated = 0;
  std::size_t mismatches = 0;

  /// The engine both stages actually ran on. With threads <= 0 this is
  /// &simt::shared_engine() — the routing contract the engine tests pin.
  /// Dangles once a private engine's run returns; identity checks only.
  const simt::ExecutionEngine* engine_used = nullptr;

  /// Stage outputs in dataset order (regions flattened).
  std::vector<align::SwAlignment> sw_alignments;
  std::vector<double> ph_log10;
};

/// Runs both stages. Throws util::CheckError on invalid configuration or
/// dataset (e.g. no tasks).
PipelineReport run_pipeline(const workload::Dataset& dataset,
                            const PipelineConfig& config = {});

}  // namespace wsim::pipeline
