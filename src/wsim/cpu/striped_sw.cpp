#include "wsim/cpu/striped_sw.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <limits>
#include <vector>

#include "wsim/util/check.hpp"

namespace wsim::cpu {

namespace {

/// Four 32-bit lanes via compiler vector extensions (SSE/NEON codegen
/// without intrinsics headers).
using Vec = std::int32_t __attribute__((vector_size(16)));
constexpr int kLanes = 4;
constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;

Vec splat(std::int32_t value) noexcept { return Vec{value, value, value, value}; }

Vec vmax(Vec a, Vec b) noexcept { return (a > b) ? a : b; }

std::int32_t hmax(Vec v) noexcept {
  return std::max(std::max(v[0], v[1]), std::max(v[2], v[3]));
}

bool any_gt(Vec a, Vec b) noexcept {
  const Vec cmp = a > b;
  return (cmp[0] | cmp[1] | cmp[2] | cmp[3]) != 0;
}

/// {a0,a1,a2,a3} -> {fill,a0,a1,a2}: moves values to the next lane, i.e.
/// from one query stripe to the following one.
Vec shift_in(Vec v, std::int32_t fill) noexcept {
  return Vec{fill, v[0], v[1], v[2]};
}

}  // namespace

std::int32_t scalar_sw_score(std::string_view query, std::string_view target,
                             const align::SwParams& params) {
  const std::size_t m = query.size();
  const std::size_t n = target.size();
  std::vector<std::int32_t> h(m + 1, 0);       // H(*, j-1), updated in place
  std::vector<std::int32_t> e(m + 1, kNegInf); // per-row horizontal gap
  std::int32_t best = 0;
  for (std::size_t j = 1; j <= n; ++j) {
    std::int32_t diag = 0;        // H(i-1, j-1)
    std::int32_t f = kNegInf;     // vertical-gap chain down the column
    for (std::size_t i = 1; i <= m; ++i) {
      e[i] = std::max(h[i] + params.gap_open, e[i] + params.gap_extend);
      // h[i-1] already holds H(i-1, j) (updated this column).
      f = std::max(h[i - 1] + params.gap_open, f + params.gap_extend);
      const std::int32_t sub =
          align::substitution_score(params, query[i - 1], target[j - 1]);
      const std::int32_t cell = std::max({0, diag + sub, e[i], f});
      diag = h[i];
      h[i] = cell;
      best = std::max(best, cell);
    }
  }
  return best;
}

std::int32_t striped_sw_score(std::string_view query, std::string_view target,
                              const align::SwParams& params) {
  util::require(!query.empty() && !target.empty(),
                "striped_sw_score: sequences must be non-empty");
  const auto m = query.size();
  const std::size_t seg_len = (m + kLanes - 1) / kLanes;

  // Striped query profile: lane l, segment s covers query row l*seg_len+s.
  // Padding rows get a prohibitive mismatch so they clamp to the zero
  // floor and never contaminate real cells.
  std::array<std::vector<Vec>, 256> profile;
  std::vector<bool> profiled(256, false);
  auto profile_for = [&](unsigned char c) -> const std::vector<Vec>& {
    if (!profiled[c]) {
      auto& rows = profile[c];
      rows.resize(seg_len);
      for (std::size_t s = 0; s < seg_len; ++s) {
        Vec v = splat(kNegInf / 2);
        for (int l = 0; l < kLanes; ++l) {
          const std::size_t i = static_cast<std::size_t>(l) * seg_len + s;
          if (i < m) {
            v[l] = align::substitution_score(params, query[i],
                                             static_cast<char>(c));
          }
        }
        rows[s] = v;
      }
      profiled[c] = true;
    }
    return profile[c];
  };

  const Vec zero = splat(0);
  const Vec open = splat(params.gap_open);
  const Vec extend = splat(params.gap_extend);
  std::vector<Vec> h_store(seg_len, zero);
  std::vector<Vec> h_load(seg_len, zero);
  std::vector<Vec> e(seg_len, splat(kNegInf));
  Vec v_max = zero;

  for (const char tc : target) {
    const auto& prof = profile_for(static_cast<unsigned char>(tc));
    std::swap(h_store, h_load);

    // Diagonal entering stripe row 0: the previous column's last stripe,
    // shifted one lane (row -1 contributes the zero boundary).
    Vec h = shift_in(h_load[seg_len - 1], 0);
    Vec f = splat(kNegInf);
    for (std::size_t s = 0; s < seg_len; ++s) {
      h += prof[s];          // diag + s(a, b)
      h = vmax(h, e[s]);     // horizontal gap
      h = vmax(h, f);        // lane-local vertical gap
      h = vmax(h, zero);     // Eq. 5 floor
      h_store[s] = h;
      f = vmax(h + open, f + extend);
      h = h_load[s];
    }

    // Lazy-F fixpoint: propagate the vertical gap across stripe (lane)
    // boundaries until a full sweep changes nothing. Each sweep crosses
    // one lane boundary, so it terminates within kLanes sweeps.
    for (int sweep = 0; sweep < kLanes; ++sweep) {
      f = shift_in(f, kNegInf);
      bool changed = false;
      for (std::size_t s = 0; s < seg_len; ++s) {
        const Vec improved = vmax(h_store[s], f);
        if (any_gt(improved, h_store[s])) {
          changed = true;
          h_store[s] = improved;
        }
        f = vmax(h_store[s] + open, f + extend);
      }
      if (!changed) {
        break;
      }
    }

    // E for the next column uses the corrected H of this column.
    for (std::size_t s = 0; s < seg_len; ++s) {
      e[s] = vmax(h_store[s] + open, e[s] + extend);
      v_max = vmax(v_max, h_store[s]);
    }
  }
  return hmax(v_max);
}

}  // namespace wsim::cpu
