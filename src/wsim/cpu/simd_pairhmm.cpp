#include "wsim/cpu/simd_pairhmm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "wsim/util/check.hpp"

namespace wsim::cpu {

namespace {

using VecF = float __attribute__((vector_size(16)));
using VecI = std::int32_t __attribute__((vector_size(16)));
constexpr std::size_t kLanes = 4;

VecF load(const float* p) noexcept {
  VecF v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void store(float* p, VecF v) noexcept { std::memcpy(p, &v, sizeof(v)); }

VecI splat_int(std::int32_t x) noexcept { return VecI{x, x, x, x}; }

}  // namespace

double simd_pairhmm_log10(const align::PairHmmTask& task) {
  align::validate(task);
  const std::size_t rows = task.read.size();
  const std::size_t cols = task.hap.size();

  // Per-row constants (the data reuse the paper highlights).
  std::vector<float> prior_match(rows + 1, 0.0F);
  std::vector<float> prior_mismatch(rows + 1, 0.0F);
  std::vector<float> t_mm(rows + 1, 0.0F);
  std::vector<float> t_im(rows + 1, 0.0F);
  std::vector<float> t_mi(rows + 1, 0.0F);
  std::vector<float> t_ii(rows + 1, 0.0F);
  std::vector<float> t_md(rows + 1, 0.0F);
  std::vector<float> t_dd(rows + 1, 0.0F);
  std::vector<std::int32_t> read_char(rows + 1, 0);
  for (std::size_t i = 1; i <= rows; ++i) {
    const float err = align::qual_to_error_prob(task.base_quals[i - 1]);
    const align::Transitions tr = align::transitions_for(
        task.ins_quals[i - 1], task.del_quals[i - 1], task.gcp);
    prior_match[i] = 1.0F - err;
    prior_mismatch[i] = err / 3.0F;
    t_mm[i] = tr.mm;
    t_im[i] = tr.im;
    t_mi[i] = tr.mi;
    t_ii[i] = tr.ii;
    t_md[i] = tr.md;
    t_dd[i] = tr.dd;
    read_char[i] = task.read[i - 1];
  }

  // Rolling anti-diagonal state indexed by row: values at s-1 and s-2.
  // Row 0 is the DP boundary (M = I = 0, D = IC / |hap|) on every
  // diagonal and is never overwritten.
  const float initial =
      align::pairhmm_initial_condition() / static_cast<float>(cols);
  std::vector<float> m_p(rows + 1, 0.0F), m_pp(rows + 1, 0.0F), m_cur(rows + 1, 0.0F);
  std::vector<float> i_p(rows + 1, 0.0F), i_pp(rows + 1, 0.0F), i_cur(rows + 1, 0.0F);
  std::vector<float> d_p(rows + 1, 0.0F), d_pp(rows + 1, 0.0F), d_cur(rows + 1, 0.0F);
  d_p[0] = initial;
  d_pp[0] = initial;
  d_cur[0] = initial;

  double last_row_sum = 0.0;  // accumulated in f32 like the reference
  float last_row_acc = 0.0F;

  const std::size_t diagonals = rows + cols;  // s = i + j, s in [2, rows+cols]
  for (std::size_t s = 2; s <= diagonals; ++s) {
    const std::size_t i_lo = s > cols ? s - cols : 1;
    const std::size_t i_hi = std::min(rows, s - 1);
    std::size_t i = i_lo;

    // Vector body: four rows at a time.
    for (; i + kLanes <= i_hi + 1; i += kLanes) {
      // Emission prior: lane-wise read-vs-hap comparison.
      VecI rc;
      VecI hc;
      for (std::size_t l = 0; l < kLanes; ++l) {
        rc[l] = read_char[i + l];
        hc[l] = task.hap[s - (i + l) - 1];
      }
      const VecI is_match =
          (rc == hc) | (rc == splat_int('N')) | (hc == splat_int('N'));
      const VecF prior =
          is_match ? load(&prior_match[i]) : load(&prior_mismatch[i]);

      const VecF m_diag = load(&m_pp[i - 1]);
      const VecF i_diag = load(&i_pp[i - 1]);
      const VecF d_diag = load(&d_pp[i - 1]);
      const VecF m_up = load(&m_p[i - 1]);
      const VecF i_up = load(&i_p[i - 1]);
      const VecF m_left = load(&m_p[i]);
      const VecF d_left = load(&d_p[i]);

      const VecF m_new =
          prior * (m_diag * load(&t_mm[i]) + (i_diag + d_diag) * load(&t_im[i]));
      const VecF i_new = m_up * load(&t_mi[i]) + i_up * load(&t_ii[i]);
      const VecF d_new = m_left * load(&t_md[i]) + d_left * load(&t_dd[i]);
      store(&m_cur[i], m_new);
      store(&i_cur[i], i_new);
      store(&d_cur[i], d_new);
    }

    // Scalar tail.
    for (; i <= i_hi; ++i) {
      const char hap_base = task.hap[s - i - 1];
      const bool match = read_char[i] == hap_base || read_char[i] == 'N' ||
                         hap_base == 'N';
      const float prior = match ? prior_match[i] : prior_mismatch[i];
      m_cur[i] = prior * (m_pp[i - 1] * t_mm[i] + (i_pp[i - 1] + d_pp[i - 1]) * t_im[i]);
      i_cur[i] = m_p[i - 1] * t_mi[i] + i_p[i - 1] * t_ii[i];
      d_cur[i] = m_p[i] * t_md[i] + d_p[i] * t_dd[i];
    }

    if (i_hi == rows && i_lo <= rows) {
      last_row_acc += m_cur[rows] + i_cur[rows];
    }

    std::swap(m_pp, m_p);
    std::swap(m_p, m_cur);
    std::swap(i_pp, i_p);
    std::swap(i_p, i_cur);
    std::swap(d_pp, d_p);
    std::swap(d_p, d_cur);
    // Row-0 boundary survives the rotation by construction (index 0 is
    // never written by the body loops).
  }

  last_row_sum = static_cast<double>(last_row_acc);
  util::ensure(last_row_sum > 0.0, "simd_pairhmm: likelihood underflowed to zero");
  return std::log10(last_row_sum) -
         std::log10(static_cast<double>(align::pairhmm_initial_condition()));
}

}  // namespace wsim::cpu
