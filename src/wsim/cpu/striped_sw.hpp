#pragma once

#include <cstdint>
#include <string_view>

#include "wsim/align/scoring.hpp"

namespace wsim::cpu {

/// CPU baseline: Farrar's striped SIMD Smith-Waterman (the algorithm
/// behind SSW and the CPU comparators in the paper's related work),
/// implemented with 4 x i32 vector lanes via compiler vector extensions.
/// Computes the classic local-alignment score: the maximum of Eq. 5's H
/// over the whole matrix (unlike the HaplotypeCaller variant, which
/// restricts the search to the last row/column — see sw_fill).
std::int32_t striped_sw_score(std::string_view query, std::string_view target,
                              const align::SwParams& params);

/// Scalar reference for the same definition (max over the full matrix),
/// used to validate the striped kernel and as the no-SIMD baseline.
std::int32_t scalar_sw_score(std::string_view query, std::string_view target,
                             const align::SwParams& params);

}  // namespace wsim::cpu
