#pragma once

#include "wsim/align/pairhmm.hpp"

namespace wsim::cpu {

/// CPU baseline: anti-diagonal SIMD PairHMM forward algorithm in the
/// style of Intel's Genomics Kernel Library (the paper's CPU comparator):
/// cells on one anti-diagonal are independent, so four read rows are
/// updated per vector step with 4 x f32 lanes. Per-cell arithmetic uses
/// the exact operation order of align::pairhmm_fill, so results are
/// bit-identical to the scalar reference.
double simd_pairhmm_log10(const align::PairHmmTask& task);

}  // namespace wsim::cpu
