#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "wsim/kernels/wavefront_kernels.hpp"
#include "wsim/simt/engine.hpp"
#include "wsim/util/check.hpp"

namespace wsim::kernels {

namespace {

/// Same device->host result record as the task-per-block runner: score +
/// compact alignment per task; the btrack matrix stays on the device.
constexpr std::size_t kSwResultBytesPerTask = 64;

/// Naive-variant guard: the anti-pattern materializes six full M x N
/// matrices per task, so keep it to measurement-sized tasks.
constexpr std::size_t kNaiveMaxCells = std::size_t{16} * 1024 * 1024;

std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

/// Shape key of one wavefront tile. Tile control flow is decided by the
/// scalar geometry arguments alone (rows, live columns, the four boundary
/// flags); the target length is folded in quantized because it strides the
/// btrack row addressing.
std::uint64_t tile_shape_key(std::size_t rows, std::size_t cols_in, bool has_up,
                             bool has_left, bool last_row_tile, bool last_col_tile,
                             std::size_t n, std::size_t granularity) noexcept {
  const std::uint64_t nq = granularity == 0 ? n : ceil_div(n, granularity);
  std::uint64_t key = rows & 0x3FFFU;
  key |= (cols_in & 0x3FU) << 14;
  key |= static_cast<std::uint64_t>(has_up) << 20;
  key |= static_cast<std::uint64_t>(has_left) << 21;
  key |= static_cast<std::uint64_t>(last_row_tile) << 22;
  key |= static_cast<std::uint64_t>(last_col_tile) << 23;
  key |= nq << 24;
  return key;
}

/// Shape key of one naive-diagonal segment block (no loops in the kernel;
/// only the lane-validity pattern and DP-border predicates vary).
std::uint64_t naive_shape_key(std::size_t active, bool has_c0, bool has_r0,
                              bool has_lastc, bool has_lastr, std::size_t n,
                              std::size_t granularity) noexcept {
  const std::uint64_t nq = granularity == 0 ? n : ceil_div(n, granularity);
  std::uint64_t key = active & 0x3FU;
  key |= static_cast<std::uint64_t>(has_c0) << 6;
  key |= static_cast<std::uint64_t>(has_r0) << 7;
  key |= static_cast<std::uint64_t>(has_lastc) << 8;
  key |= static_cast<std::uint64_t>(has_lastr) << 9;
  key |= nq << 10;
  return key;
}

void validate_batch(const workload::SwBatch& batch, const WfRunOptions& options,
                    const char* who) {
  util::require(!batch.empty(), std::string(who) + ": batch must be non-empty");
  util::require(!options.collect_outputs || options.mode == simt::ExecMode::kFull,
                std::string(who) + ": collect_outputs requires ExecMode::kFull");
  for (const workload::SwTask& task : batch) {
    util::require(!task.query.empty() && !task.target.empty(),
                  std::string(who) + ": sequences must be non-empty");
  }
}

/// Aggregates one wave launch into the batch result (the PhRunner
/// multi-launch convention: sums everywhere, occupancy + representative
/// from the biggest launch).
struct LaunchAggregator {
  KernelRunResult* run;
  std::size_t best_blocks = 0;

  void add(const simt::LaunchResult& launch, std::size_t wave_blocks,
           std::uint64_t wave_representative_iterations,
           std::uint64_t* representative_iterations) {
    run->launch.kernel_seconds += launch.kernel_seconds;
    run->launch.h2d_seconds += launch.h2d_seconds;
    run->launch.d2h_seconds += launch.d2h_seconds;
    run->launch.transfer_seconds += launch.transfer_seconds;
    run->launch.overhead_seconds += launch.overhead_seconds;
    run->launch.instructions += launch.instructions;
    run->launch.smem_transactions += launch.smem_transactions;
    run->launch.blocks_executed += launch.blocks_executed;
    run->launch.sdc_flips += launch.sdc_flips;
    run->launch.timing.cycles += launch.timing.cycles;
    run->launch.timing.seconds += launch.timing.seconds;
    if (wave_blocks > best_blocks) {
      best_blocks = wave_blocks;
      run->launch.occupancy = launch.occupancy;
      run->launch.representative = launch.representative;
      *representative_iterations = wave_representative_iterations;
    }
  }
};

/// Per-task device buffers of the tile path. In kCachedByShape they are
/// per-*shape* scratch slabs instead, with the block arguments rebased by
/// the tile's own (row_base, col_base) so every generated address lands
/// inside the slab — identical addressing arithmetic, bounded memory.
struct TileTaskBufs {
  std::int64_t query = 0;
  std::int64_t target = 0;
  std::int64_t out = 0;  // SW: btrack matrix; NW: score cell
  std::int64_t lastcol = 0;
  std::int64_t lastrow = 0;
  std::int64_t rb_h = 0;
  std::int64_t rb_f = 0;
  std::int64_t rb_kv = 0;
  std::int64_t cb_h = 0;
  std::int64_t cb_e = 0;
  std::int64_t cb_lh = 0;
  std::int64_t corner = 0;  // 3 x tile_col_count parity-rotated cells
};

struct TileShapeSlab {
  std::int64_t query = 0;
  std::int64_t target = 0;
  std::int64_t out = 0;
  std::int64_t lastcol = 0;
  std::int64_t lastrow = 0;
  std::int64_t rb_h = 0;
  std::int64_t rb_f = 0;
  std::int64_t rb_kv = 0;
  std::int64_t cb_h = 0;
  std::int64_t cb_e = 0;
  std::int64_t cb_lh = 0;
  std::int64_t corner_rd = 0;
  std::int64_t corner_wr = 0;
};

struct TileRunOutput {
  KernelRunResult run;
  std::size_t launches = 0;
  std::size_t blocks = 0;
  std::uint64_t representative_iterations = 0;
  std::vector<TileTaskBufs> bufs;  // kFull only
};

TileRunOutput run_tile_waves(bool is_sw, const simt::Kernel& kernel,
                             const simt::DeviceSpec& device,
                             const workload::SwBatch& batch, int tile_rows,
                             const WfRunOptions& options, simt::GlobalMemory& gmem) {
  const bool cached = options.mode == simt::ExecMode::kCachedByShape;
  const auto trows = static_cast<std::size_t>(tile_rows);

  std::vector<WfGeometry> geoms(batch.size());
  std::size_t max_waves = 0;
  std::size_t max_n = 0;
  std::size_t h2d_bytes = 0;
  std::size_t cells = 0;
  for (std::size_t t = 0; t < batch.size(); ++t) {
    const std::size_t m = batch[t].query.size();
    const std::size_t n = batch[t].target.size();
    geoms[t] = wf_geometry(m, n, tile_rows);
    max_waves = std::max(max_waves, geoms[t].waves);
    max_n = std::max(max_n, n);
    h2d_bytes += m + n;
    cells += m * n;
  }

  TileRunOutput out;
  out.run.cells = cells;
  out.run.launch.transfers_overlapped = options.overlap_transfers;

  // kFull: real per-task buffers (boundary buffers are shared by all tiles
  // of a task — within one wave the tiles touch disjoint row/column
  // ranges, so concurrent block execution stays write-disjoint).
  if (!cached) {
    out.bufs.resize(batch.size());
    for (std::size_t t = 0; t < batch.size(); ++t) {
      const workload::SwTask& task = batch[t];
      const std::size_t m = task.query.size();
      const std::size_t n = task.target.size();
      TileTaskBufs& b = out.bufs[t];
      b.query = gmem.alloc(m);
      b.target = gmem.alloc(n);
      gmem.write_u8(b.query,
                    {reinterpret_cast<const std::uint8_t*>(task.query.data()), m});
      gmem.write_u8(b.target,
                    {reinterpret_cast<const std::uint8_t*>(task.target.data()), n});
      if (is_sw) {
        b.out = gmem.alloc(m * n * 4);
        b.lastcol = gmem.alloc(m * 4);
        b.lastrow = gmem.alloc(n * 4);
      } else {
        b.out = gmem.alloc(4);
      }
      b.rb_h = gmem.alloc(n * 4);
      b.rb_f = gmem.alloc(n * 4);
      b.rb_kv = is_sw ? gmem.alloc(n * 4) : 0;
      b.cb_h = gmem.alloc(m * 4);
      b.cb_e = gmem.alloc(m * 4);
      b.cb_lh = is_sw ? gmem.alloc(m * 4) : 0;
      b.corner = gmem.alloc(3 * geoms[t].tile_col_count * 4);
    }
  }

  // kCachedByShape: one scratch slab per distinct tile shape, allocated
  // lazily, 128-byte aligned like the task-per-block runner's replicas.
  std::unordered_map<std::uint64_t, TileShapeSlab> slabs;
  const auto slab_for = [&](std::uint64_t key) -> const TileShapeSlab& {
    const auto it = slabs.find(key);
    if (it != slabs.end()) {
      return it->second;
    }
    TileShapeSlab s;
    s.query = gmem.alloc(trows, 128);
    s.target = gmem.alloc(kSwBsize);
    s.out = gmem.alloc(trows * std::max<std::size_t>(max_n, kSwBsize) * 4);
    s.lastcol = gmem.alloc(trows * 4);
    s.lastrow = gmem.alloc(kSwBsize * 4);
    s.rb_h = gmem.alloc(kSwBsize * 4);
    s.rb_f = gmem.alloc(kSwBsize * 4);
    s.rb_kv = gmem.alloc(kSwBsize * 4);
    s.cb_h = gmem.alloc(trows * 4);
    s.cb_e = gmem.alloc(trows * 4);
    s.cb_lh = gmem.alloc(trows * 4);
    s.corner_rd = gmem.alloc(4);
    s.corner_wr = gmem.alloc(4);
    return slabs.emplace(key, s).first->second;
  };

  simt::ExecutionEngine& engine =
      options.engine != nullptr ? *options.engine : simt::shared_engine();
  LaunchAggregator agg{&out.run};
  std::vector<simt::BlockLaunch> blocks;

  for (std::size_t w = 0; w < max_waves; ++w) {
    blocks.clear();
    std::uint64_t wave_rep_iterations = 0;
    for (std::size_t t = 0; t < batch.size(); ++t) {
      const WfGeometry& g = geoms[t];
      if (w >= g.waves) {
        continue;
      }
      const std::size_t m = batch[t].query.size();
      const std::size_t n = batch[t].target.size();
      const std::size_t tr_lo =
          w >= g.tile_col_count ? w - (g.tile_col_count - 1) : 0;
      const std::size_t tr_hi = std::min(g.tile_row_count - 1, w);
      for (std::size_t tr = tr_lo; tr <= tr_hi; ++tr) {
        const std::size_t tc = w - tr;
        const std::size_t row_base = tr * trows;
        const std::size_t col_base = tc * kSwBsize;
        const std::size_t rows = std::min(trows, m - row_base);
        const std::size_t cols_in = std::min<std::size_t>(kSwBsize, n - col_base);
        const bool has_up = tr > 0;
        const bool has_left = tc > 0;
        const bool last_row_tile = tr + 1 == g.tile_row_count;
        const bool last_col_tile = tc + 1 == g.tile_col_count;
        const std::uint64_t key =
            tile_shape_key(rows, cols_in, has_up, has_left, last_row_tile,
                           last_col_tile, n, options.shape_granularity);
        if (wave_rep_iterations == 0) {
          wave_rep_iterations = rows + (kSwBsize - 1);
        }

        std::int64_t a_query = 0;
        std::int64_t a_target = 0;
        std::int64_t a_out = 0;
        std::int64_t a_lastcol = 0;
        std::int64_t a_lastrow = 0;
        std::int64_t a_rb_h = 0;
        std::int64_t a_rb_f = 0;
        std::int64_t a_rb_kv = 0;
        std::int64_t a_cb_h = 0;
        std::int64_t a_cb_e = 0;
        std::int64_t a_cb_lh = 0;
        std::int64_t a_corner_rd = 0;
        std::int64_t a_corner_wr = 0;
        if (cached) {
          // Rebase every buffer argument by this tile's own position: the
          // kernel indexes with global (r, c), so subtracting the base
          // puts all of this tile's accesses inside the shared slab.
          const TileShapeSlab& s = slab_for(key);
          const auto rb = static_cast<std::int64_t>(row_base);
          const auto cb = static_cast<std::int64_t>(col_base);
          const auto nn = static_cast<std::int64_t>(n);
          a_query = s.query - rb;
          a_target = s.target - cb;
          a_out = is_sw ? s.out - (rb * nn + cb) * 4 : s.out;
          a_lastcol = s.lastcol - rb * 4;
          a_lastrow = s.lastrow - cb * 4;
          a_rb_h = s.rb_h - cb * 4;
          a_rb_f = s.rb_f - cb * 4;
          a_rb_kv = s.rb_kv - cb * 4;
          a_cb_h = s.cb_h - rb * 4;
          a_cb_e = s.cb_e - rb * 4;
          a_cb_lh = s.cb_lh - rb * 4;
          a_corner_rd = s.corner_rd;
          a_corner_wr = s.corner_wr;
        } else {
          const TileTaskBufs& b = out.bufs[t];
          a_query = b.query;
          a_target = b.target;
          a_out = b.out;
          a_lastcol = b.lastcol;
          a_lastrow = b.lastrow;
          a_rb_h = b.rb_h;
          a_rb_f = b.rb_f;
          a_rb_kv = b.rb_kv;
          a_cb_h = b.cb_h;
          a_cb_e = b.cb_e;
          a_cb_lh = b.cb_lh;
          // 3-slot parity rotation: the corner this tile reads was written
          // by (tr-1, tc-1) two waves ago into slot (tr-1) mod 3; the tile
          // publishes its own into slot tr mod 3 for (tr+1, tc+1). Three
          // slots keep the intervening wave's writer off the slot still
          // being read.
          const std::size_t tcc = g.tile_col_count;
          a_corner_rd =
              has_up && has_left
                  ? b.corner +
                        static_cast<std::int64_t>((((tr + 2) % 3) * tcc + (tc - 1)) * 4)
                  : b.corner;
          a_corner_wr =
              b.corner + static_cast<std::int64_t>(((tr % 3) * tcc + tc) * 4);
        }

        simt::BlockLaunch block;
        block.args = {
            static_cast<std::uint64_t>(a_query),
            static_cast<std::uint64_t>(a_target),
            static_cast<std::uint64_t>(m),
            static_cast<std::uint64_t>(n),
            static_cast<std::uint64_t>(a_out),
            static_cast<std::uint64_t>(a_rb_h),
            static_cast<std::uint64_t>(a_rb_f),
            static_cast<std::uint64_t>(a_rb_kv),
            static_cast<std::uint64_t>(a_cb_h),
            static_cast<std::uint64_t>(a_cb_e),
            static_cast<std::uint64_t>(a_cb_lh),
            static_cast<std::uint64_t>(a_corner_rd),
            static_cast<std::uint64_t>(a_corner_wr),
            static_cast<std::uint64_t>(a_lastcol),
            static_cast<std::uint64_t>(a_lastrow),
            static_cast<std::uint64_t>(row_base),
            static_cast<std::uint64_t>(col_base),
            static_cast<std::uint64_t>(rows),
            static_cast<std::uint64_t>(rows + (kSwBsize - 1)),
            static_cast<std::uint64_t>(has_up ? 1 : 0),
            static_cast<std::uint64_t>(has_left ? 1 : 0),
        };
        block.shape_key = key;
        blocks.push_back(std::move(block));
      }
    }

    simt::LaunchOptions launch_options;
    launch_options.mode = options.mode;
    launch_options.use_engine_cache = options.use_engine_cache;
    launch_options.overlap_transfers = options.overlap_transfers;
    if (w == 0) {
      launch_options.transfer.h2d_bytes = h2d_bytes;
    }
    if (w + 1 == max_waves) {
      launch_options.transfer.d2h_bytes =
          batch.size() * (is_sw ? kSwResultBytesPerTask : std::size_t{4});
    }
    launch_options.sdc = options.sdc;
    // Every wave is its own sub-launch in SDC stream derivation, so block
    // ids repeat across waves without reusing flip streams.
    launch_options.sdc_launch_id =
        simt::sdc_sub_launch(options.sdc_launch_id, static_cast<std::uint64_t>(w));
    launch_options.max_block_cycles = options.max_block_cycles;
    launch_options.interp = options.interp;

    const simt::LaunchResult launch =
        engine.launch(kernel, device, gmem, blocks, launch_options);
    out.launches += 1;
    out.blocks += blocks.size();
    agg.add(launch, blocks.size(), wave_rep_iterations,
            &out.representative_iterations);
  }
  return out;
}

/// Naive path buffers: full M x N DP-state matrices per task, in both exec
/// modes (the whole point of the anti-pattern is that all state lives in
/// global memory; segments of one diagonal write disjoint rows, so sharing
/// them across a launch's blocks is safe).
struct NaiveTaskBufs {
  std::int64_t query = 0;
  std::int64_t target = 0;
  std::int64_t h = 0;
  std::int64_t e = 0;
  std::int64_t f = 0;
  std::int64_t kv = 0;
  std::int64_t lh = 0;
  std::int64_t out = 0;
  std::int64_t lastcol = 0;
  std::int64_t lastrow = 0;
};

TileRunOutput run_naive_diagonals(bool is_sw, const simt::Kernel& kernel,
                                  const simt::DeviceSpec& device,
                                  const workload::SwBatch& batch,
                                  const WfRunOptions& options,
                                  simt::GlobalMemory& gmem,
                                  std::vector<NaiveTaskBufs>* bufs_out) {
  std::size_t max_diags = 0;
  std::size_t h2d_bytes = 0;
  std::size_t cells = 0;
  for (const workload::SwTask& task : batch) {
    const std::size_t m = task.query.size();
    const std::size_t n = task.target.size();
    util::require(m * n <= kNaiveMaxCells,
                  "wf-naive: task exceeds the naive-variant cell cap (the "
                  "anti-pattern keeps six full matrices per task)");
    max_diags = std::max(max_diags, m + n - 1);
    h2d_bytes += m + n;
    cells += m * n;
  }

  std::vector<NaiveTaskBufs> bufs(batch.size());
  for (std::size_t t = 0; t < batch.size(); ++t) {
    const workload::SwTask& task = batch[t];
    const std::size_t m = task.query.size();
    const std::size_t n = task.target.size();
    NaiveTaskBufs& b = bufs[t];
    b.query = gmem.alloc(m);
    b.target = gmem.alloc(n);
    gmem.write_u8(b.query,
                  {reinterpret_cast<const std::uint8_t*>(task.query.data()), m});
    gmem.write_u8(b.target,
                  {reinterpret_cast<const std::uint8_t*>(task.target.data()), n});
    b.h = gmem.alloc(m * n * 4);
    b.e = gmem.alloc(m * n * 4);
    b.f = gmem.alloc(m * n * 4);
    if (is_sw) {
      b.kv = gmem.alloc(m * n * 4);
      b.lh = gmem.alloc(m * n * 4);
      b.out = gmem.alloc(m * n * 4);
      b.lastcol = gmem.alloc(m * 4);
      b.lastrow = gmem.alloc(n * 4);
    } else {
      b.out = gmem.alloc(4);
    }
  }

  TileRunOutput out;
  out.run.cells = cells;
  out.run.launch.transfers_overlapped = options.overlap_transfers;
  out.representative_iterations = 1;  // one anti-diagonal step per launch

  simt::ExecutionEngine& engine =
      options.engine != nullptr ? *options.engine : simt::shared_engine();
  LaunchAggregator agg{&out.run};
  std::vector<simt::BlockLaunch> blocks;

  for (std::size_t d = 0; d < max_diags; ++d) {
    blocks.clear();
    for (std::size_t t = 0; t < batch.size(); ++t) {
      const workload::SwTask& task = batch[t];
      const std::size_t m = task.query.size();
      const std::size_t n = task.target.size();
      if (d >= m + n - 1) {
        continue;
      }
      const std::size_t r_lo = d >= n ? d - n + 1 : 0;
      const std::size_t r_hi = std::min(m - 1, d);
      const NaiveTaskBufs& b = bufs[t];
      for (std::size_t seg = (r_lo / kSwBsize) * kSwBsize; seg <= r_hi;
           seg += kSwBsize) {
        const std::size_t lane_lo = std::max(seg, r_lo);
        const std::size_t lane_hi = std::min(seg + kSwBsize - 1, r_hi);
        const std::size_t active = lane_hi - lane_lo + 1;
        const bool has_c0 = d >= lane_lo && d <= lane_hi;  // c == 0 at r == d
        const bool has_r0 = lane_lo == 0;
        const bool has_lastc = d - lane_lo >= n - 1 && d - lane_hi <= n - 1;
        const bool has_lastr = lane_hi == m - 1;
        simt::BlockLaunch block;
        block.args = {
            static_cast<std::uint64_t>(b.query),
            static_cast<std::uint64_t>(b.target),
            static_cast<std::uint64_t>(m),
            static_cast<std::uint64_t>(n),
            static_cast<std::uint64_t>(b.h),
            static_cast<std::uint64_t>(b.e),
            static_cast<std::uint64_t>(b.f),
            static_cast<std::uint64_t>(b.kv),
            static_cast<std::uint64_t>(b.lh),
            static_cast<std::uint64_t>(b.out),
            static_cast<std::uint64_t>(b.lastcol),
            static_cast<std::uint64_t>(b.lastrow),
            static_cast<std::uint64_t>(d),
            static_cast<std::uint64_t>(seg),
        };
        block.shape_key = naive_shape_key(active, has_c0, has_r0, has_lastc,
                                          has_lastr, n, options.shape_granularity);
        blocks.push_back(std::move(block));
      }
    }

    simt::LaunchOptions launch_options;
    launch_options.mode = options.mode;
    launch_options.use_engine_cache = options.use_engine_cache;
    launch_options.overlap_transfers = options.overlap_transfers;
    if (d == 0) {
      launch_options.transfer.h2d_bytes = h2d_bytes;
    }
    if (d + 1 == max_diags) {
      launch_options.transfer.d2h_bytes =
          batch.size() * (is_sw ? kSwResultBytesPerTask : std::size_t{4});
    }
    launch_options.sdc = options.sdc;
    launch_options.sdc_launch_id =
        simt::sdc_sub_launch(options.sdc_launch_id, static_cast<std::uint64_t>(d));
    launch_options.max_block_cycles = options.max_block_cycles;
    launch_options.interp = options.interp;

    const simt::LaunchResult launch =
        engine.launch(kernel, device, gmem, blocks, launch_options);
    out.launches += 1;
    out.blocks += blocks.size();
    agg.add(launch, blocks.size(), 1, &out.representative_iterations);
  }
  if (bufs_out != nullptr) {
    *bufs_out = std::move(bufs);
  }
  return out;
}

SwTaskOutput collect_sw_output(simt::GlobalMemory& gmem, const workload::SwTask& task,
                               std::int64_t btrack_addr, std::int64_t lastcol_addr,
                               std::int64_t lastrow_addr) {
  const std::size_t m = task.query.size();
  const std::size_t n = task.target.size();
  SwTaskOutput out;
  // HaplotypeCaller max search: last column top-to-bottom, then last row
  // left-to-right, strictly greater wins — as in the reference.
  const auto lastcol = gmem.read_i32(lastcol_addr, m);
  const auto lastrow = gmem.read_i32(lastrow_addr, n);
  out.best_score = 0;
  out.best_i = m;
  out.best_j = n;
  for (std::size_t i = 1; i <= m; ++i) {
    if (lastcol[i - 1] > out.best_score) {
      out.best_score = lastcol[i - 1];
      out.best_i = i;
      out.best_j = n;
    }
  }
  for (std::size_t j = 1; j <= n; ++j) {
    if (lastrow[j - 1] > out.best_score) {
      out.best_score = lastrow[j - 1];
      out.best_i = m;
      out.best_j = j;
    }
  }
  const auto device_btrack = gmem.read_i32(btrack_addr, m * n);
  out.btrack = align::Matrix<std::int32_t>(m + 1, n + 1, align::kBtrackStop);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out.btrack(i + 1, j + 1) = device_btrack[i * n + j];
    }
  }
  out.alignment =
      align::sw_backtrace(out.btrack, out.best_i, out.best_j, out.best_score);
  return out;
}

}  // namespace

WfGeometry wf_geometry(std::size_t m, std::size_t n, int tile_rows) noexcept {
  WfGeometry g;
  g.tile_rows = static_cast<std::size_t>(tile_rows);
  g.tile_row_count = ceil_div(m, g.tile_rows);
  g.tile_col_count = ceil_div(n, static_cast<std::size_t>(kSwBsize));
  g.tiles = g.tile_row_count * g.tile_col_count;
  g.waves = g.tile_row_count + g.tile_col_count - 1;
  return g;
}

std::size_t wf_iterations(std::size_t m, std::size_t n, int tile_rows) noexcept {
  const WfGeometry g = wf_geometry(m, n, tile_rows);
  // Each tile runs rows_in_tile + 31 steps; full tile rows dominate, the
  // last tile row may be short.
  const std::size_t full_rows = m / g.tile_rows;
  const std::size_t tail = m % g.tile_rows;
  std::size_t per_col = full_rows * (g.tile_rows + kSwBsize - 1);
  if (tail != 0) {
    per_col += tail + kSwBsize - 1;
  }
  return per_col * g.tile_col_count;
}

WavefrontSwRunner::WavefrontSwRunner(WfVariant variant, const align::SwParams& params,
                                     int tile_rows)
    : variant_(variant),
      params_(params),
      tile_rows_(tile_rows),
      kernel_(build_wf_sw_kernel(variant, params)) {
  util::require(tile_rows >= 1, "WavefrontSwRunner: tile_rows must be >= 1");
}

WfSwBatchResult WavefrontSwRunner::run_batch(const simt::DeviceSpec& device,
                                             const workload::SwBatch& batch,
                                             const WfRunOptions& options) const {
  validate_batch(batch, options, "WavefrontSwRunner");
  simt::GlobalMemory gmem;
  WfSwBatchResult result;
  if (variant_ == WfVariant::kHostSyncNaive) {
    std::vector<NaiveTaskBufs> bufs;
    TileRunOutput out = run_naive_diagonals(/*is_sw=*/true, kernel_, device, batch,
                                            options, gmem, &bufs);
    result.run = out.run;
    result.launches = out.launches;
    result.blocks = out.blocks;
    result.representative_iterations = out.representative_iterations;
    if (options.collect_outputs) {
      result.outputs.reserve(batch.size());
      for (std::size_t t = 0; t < batch.size(); ++t) {
        result.outputs.push_back(collect_sw_output(
            gmem, batch[t], bufs[t].out, bufs[t].lastcol, bufs[t].lastrow));
      }
    }
    return result;
  }

  TileRunOutput out = run_tile_waves(/*is_sw=*/true, kernel_, device, batch,
                                     tile_rows_, options, gmem);
  result.run = out.run;
  result.launches = out.launches;
  result.blocks = out.blocks;
  result.representative_iterations = out.representative_iterations;
  if (options.collect_outputs) {
    result.outputs.reserve(batch.size());
    for (std::size_t t = 0; t < batch.size(); ++t) {
      result.outputs.push_back(collect_sw_output(gmem, batch[t], out.bufs[t].out,
                                                 out.bufs[t].lastcol,
                                                 out.bufs[t].lastrow));
    }
  }
  return result;
}

WavefrontNwRunner::WavefrontNwRunner(WfVariant variant, const align::SwParams& params,
                                     int tile_rows)
    : variant_(variant),
      params_(params),
      tile_rows_(tile_rows),
      kernel_(build_wf_nw_kernel(variant, params)) {
  util::require(tile_rows >= 1, "WavefrontNwRunner: tile_rows must be >= 1");
}

WfNwBatchResult WavefrontNwRunner::run_batch(const simt::DeviceSpec& device,
                                             const workload::SwBatch& batch,
                                             const WfRunOptions& options) const {
  validate_batch(batch, options, "WavefrontNwRunner");
  simt::GlobalMemory gmem;
  WfNwBatchResult result;
  if (variant_ == WfVariant::kHostSyncNaive) {
    std::vector<NaiveTaskBufs> bufs;
    TileRunOutput out = run_naive_diagonals(/*is_sw=*/false, kernel_, device, batch,
                                            options, gmem, &bufs);
    result.run = out.run;
    result.launches = out.launches;
    result.blocks = out.blocks;
    result.representative_iterations = out.representative_iterations;
    if (options.collect_outputs) {
      result.scores.reserve(batch.size());
      for (std::size_t t = 0; t < batch.size(); ++t) {
        result.scores.push_back(gmem.read_i32(bufs[t].out, 1)[0]);
      }
    }
    return result;
  }

  TileRunOutput out = run_tile_waves(/*is_sw=*/false, kernel_, device, batch,
                                     tile_rows_, options, gmem);
  result.run = out.run;
  result.launches = out.launches;
  result.blocks = out.blocks;
  result.representative_iterations = out.representative_iterations;
  if (options.collect_outputs) {
    result.scores.reserve(batch.size());
    for (std::size_t t = 0; t < batch.size(); ++t) {
      result.scores.push_back(gmem.read_i32(out.bufs[t].out, 1)[0]);
    }
  }
  return result;
}

const std::vector<std::string>& sw_kernel_names() {
  static const std::vector<std::string> names = {"shared", "shuffle", "wf-shared",
                                                 "wf-shuffle", "wf-naive"};
  return names;
}

SwKernelChoice sw_kernel_by_name(std::string_view name) {
  SwKernelChoice choice;
  if (name == "shared") {
    choice.intra = false;
    choice.inter_mode = CommMode::kSharedMemory;
    return choice;
  }
  if (name == "shuffle") {
    choice.intra = false;
    choice.inter_mode = CommMode::kShuffle;
    return choice;
  }
  if (name == "wf-shared") {
    choice.intra = true;
    choice.wf_variant = WfVariant::kSharedMemory;
    return choice;
  }
  if (name == "wf-shuffle") {
    choice.intra = true;
    choice.wf_variant = WfVariant::kShuffle;
    return choice;
  }
  if (name == "wf-naive") {
    choice.intra = true;
    choice.wf_variant = WfVariant::kHostSyncNaive;
    return choice;
  }
  std::string valid;
  for (const std::string& n : sw_kernel_names()) {
    if (!valid.empty()) {
      valid += ", ";
    }
    valid += n;
  }
  throw util::CheckError("unknown SW kernel '" + std::string(name) +
                         "' (valid kernels: " + valid + ")");
}

std::string sw_kernel_name(const SwKernelChoice& choice) {
  if (choice.intra) {
    return std::string(to_string(choice.wf_variant));
  }
  return choice.inter_mode == CommMode::kSharedMemory ? "shared" : "shuffle";
}

}  // namespace wsim::kernels
