#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "wsim/align/pairhmm.hpp"
#include "wsim/kernels/common.hpp"
#include "wsim/simt/isa.hpp"
#include "wsim/simt/runtime.hpp"
#include "wsim/workload/batching.hpp"

namespace wsim::simt {
class ExecutionEngine;
}  // namespace wsim::simt

namespace wsim::kernels {

/// Maximum supported read length: the paper uses 128 threads/block for
/// PH1 "because the maximal sequence length is less than 128".
inline constexpr int kPhMaxReadLen = 128;

/// Number of length-specialized kernel variants (reads bucketed by 32
/// rows, the paper's "duplicate the kernels with several copies" and
/// "subfunctions with different numbers of cells" heuristics).
inline constexpr int kPhVariants = kPhMaxReadLen / 32;

/// PH1: anti-diagonal PairHMM with shared-memory line buffers — nine
/// rotating buffers (three per DP matrix M/I/D), one thread per read row,
/// `threads_per_block` in {32, 64, 96, 128}, a __syncthreads per
/// anti-diagonal.
///
/// Scalar parameters, in order: row-constants base (8 f32 per read row:
/// prior_match, prior_mismatch, mm, im, mi, ii, md, dd), read chars, hap
/// chars, R, H, step count (R + H - 1), result address, IC/|hap| bits.
simt::Kernel build_ph_shared_kernel(int threads_per_block);

/// PH2: warp-shuffle PairHMM — one warp per task, `cells_per_thread`
/// contiguous read rows per lane held entirely in registers (six state
/// registers per cell, Fig. 8); inter-thread communication only between
/// boundary cells via __shfl_up; no shared memory, no barriers.
/// Same scalar parameters as PH1.
simt::Kernel build_ph_shuffle_kernel(int cells_per_thread);

/// The design the paper rejects (Section IV-C2): multiple warps on the
/// anti-diagonal with shuffles inside each warp and shared memory at warp
/// boundaries. Every step then needs a __syncthreads and warp-boundary
/// lanes diverge, which "cancels the benefits of using shuffle" — this
/// kernel exists so the claim can be measured (bench_ablate_hybrid).
/// Same scalar parameters as PH1.
simt::Kernel build_ph_hybrid_kernel(int threads_per_block);

/// The three PairHMM designs (PH1 / PH2 / the rejected hybrid).
enum class PhDesign { kShared, kShuffle, kHybrid };

/// Anti-diagonal iterations one block executes for an R x H task.
inline std::size_t ph_iterations(std::size_t r, std::size_t h) noexcept {
  return r + h - 1;
}

/// Per-variant block-cost caches (kernel variants must not share a cache).
struct PhCostCaches {
  std::array<simt::BlockCostCache, kPhVariants> per_variant;
};

struct PhRunOptions {
  bool collect_outputs = false;  ///< read back per-task log10 likelihoods
  simt::ExecMode mode = simt::ExecMode::kFull;
  std::size_t shape_granularity = 16;
  PhCostCaches* cost_caches = nullptr;
  /// Memoize block costs in the executing engine's persistent cache
  /// instead of `cost_caches`; the engine keys by kernel variant, so one
  /// cache serves all variants (see simt::LaunchOptions::use_engine_cache).
  bool use_engine_cache = false;
  /// Overlap PCIe copies with kernel execution (CUDA streams).
  bool overlap_transfers = false;
  /// GATK semantics: when the device's f32 likelihood underflows to zero,
  /// recompute that task on the host in double precision instead of
  /// throwing (collect_outputs only).
  bool double_fallback = false;
  /// Engine that executes the launches; null means the process-wide
  /// simt::shared_engine().
  simt::ExecutionEngine* engine = nullptr;
  /// Deterministic SDC injection (requires kFull; see simt/sdc.hpp). Each
  /// per-variant launch derives its own sub-launch id from sdc_launch_id.
  simt::SdcPlan sdc;
  std::uint64_t sdc_launch_id = 0;
  /// Watchdog cycle budget per block (simt::LaunchOptions::max_block_cycles).
  long long max_block_cycles = 0;
  /// Interpreter selection (simt::LaunchOptions::interp).
  simt::InterpPath interp = simt::InterpPath::kDefault;
};

struct PhBatchResult {
  /// Aggregate over the per-variant launches (kernel/transfer/overhead
  /// seconds and instruction counts summed; occupancy and representative
  /// block from the variant covering the most cells).
  KernelRunResult run;
  std::vector<double> log10;  ///< per task, original order (collect_outputs)
  int primary_variant = 0;    ///< variant index covering the most cells
  /// Iterations and cells of the primary variant's representative block
  /// (its first task), for per-iteration latency accounting.
  std::size_t representative_iterations = 0;
  std::size_t representative_cells = 0;
};

/// Host-side driver: buckets tasks by read length, launches one kernel
/// variant per bucket (the paper's launch-time routing), and aggregates.
class PhRunner {
 public:
  explicit PhRunner(CommMode mode);
  explicit PhRunner(PhDesign design);

  PhDesign design() const noexcept { return design_; }

  /// The kernel variant used for reads of the given length.
  const simt::Kernel& kernel_for_read_len(std::size_t read_len) const;

  static int variant_for_read_len(std::size_t read_len);

  PhBatchResult run_batch(const simt::DeviceSpec& device,
                          const workload::PhBatch& batch,
                          const PhRunOptions& options = {}) const;

 private:
  PhDesign design_;
  std::array<simt::Kernel, kPhVariants> kernels_;
};

}  // namespace wsim::kernels
