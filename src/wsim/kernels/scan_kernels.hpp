#pragma once

#include <cstdint>
#include <vector>

#include "wsim/kernels/common.hpp"
#include "wsim/simt/isa.hpp"
#include "wsim/simt/runtime.hpp"

namespace wsim::kernels {

/// Generality case study (the paper's closing claim: the shuffle insights
/// apply to "a wider class of applications"): block-level inclusive
/// prefix scan, the canonical inter-thread-communication kernel.
///
/// * design A (kSharedMemory): Hillis-Steele in shared memory — log2(T)
///   stages, each a load + store + __syncthreads.
/// * design B (kShuffle): intra-warp scan with shfl_up; for multi-warp
///   blocks, one warp total per warp crosses through shared memory ONCE
///   (the CUB pattern). Unlike PairHMM's rejected hybrid, the cross-warp
///   traffic here is O(1) per element rather than per iteration, which is
///   why this mix wins — the boundary the paper's trade-off analysis
///   predicts.
///
/// Scalar parameters: input base (i32[n]), output base (i32[n]), n.
/// One block scans up to threads_per_block elements (grid-level scans
/// would chain block sums; out of scope here).
simt::Kernel build_scan_kernel(CommMode mode, int threads_per_block);

/// Host-side helper: runs one block over `values` (size <= threads) and
/// returns the inclusive scan read back from device memory, plus the
/// block's cycle cost via `cycles`.
std::vector<std::int32_t> run_scan(const simt::Kernel& kernel,
                                   const simt::DeviceSpec& device,
                                   const std::vector<std::int32_t>& values,
                                   long long* cycles = nullptr);

}  // namespace wsim::kernels
