#include "wsim/kernels/scan_kernels.hpp"

#include "wsim/simt/builder.hpp"
#include "wsim/simt/memory.hpp"
#include "wsim/simt/runtime.hpp"
#include "wsim/util/check.hpp"

namespace wsim::kernels {

using simt::Cmp;
using simt::DType;
using simt::imm_i64;
using simt::KernelBuilder;
using simt::Op;
using simt::SReg;
using simt::VReg;

simt::Kernel build_scan_kernel(CommMode mode, int threads_per_block) {
  util::require(threads_per_block > 0 && threads_per_block % 32 == 0 &&
                    threads_per_block <= 1024,
                "build_scan_kernel: threads must be a positive multiple of 32");
  const bool shared = mode == CommMode::kSharedMemory;
  const int warps = threads_per_block / 32;
  KernelBuilder kb(std::string(shared ? "scan_shared_t" : "scan_shuffle_t") +
                       std::to_string(threads_per_block),
                   threads_per_block);

  const SReg p_in = kb.param();
  const SReg p_out = kb.param();
  const SReg p_n = kb.param();

  const VReg tid = kb.tid();
  const VReg in_range = kb.setp(Cmp::kLt, DType::kI64, tid, p_n);
  const VReg addr = kb.imul(tid, imm_i64(4));
  const VReg x = kb.mov(imm_i64(0));  // identity for out-of-range lanes
  kb.begin_pred(in_range);
  kb.ldg_to(x, kb.iadd(p_in, addr));
  kb.end_pred();

  if (shared) {
    // Hillis-Steele with double-buffered shared memory; every stage pays a
    // load, a store and a barrier — design A's cost structure.
    const int buf_a = kb.alloc_smem(threads_per_block * 4);
    const int buf_b = kb.alloc_smem(threads_per_block * 4);
    SReg cur = kb.smov(imm_i64(buf_a));
    SReg nxt = kb.smov(imm_i64(buf_b));
    kb.sts(kb.iadd(cur, addr), x);
    kb.bar();
    for (int d = 1; d < threads_per_block; d *= 2) {
      const VReg has_left = kb.setp(Cmp::kGe, DType::kI64, tid, imm_i64(d));
      const VReg left = kb.mov(imm_i64(0));
      kb.begin_pred(has_left);
      kb.lds_to(left, kb.iadd(cur, kb.imul(kb.isub(tid, imm_i64(d)), imm_i64(4))));
      kb.end_pred();
      const VReg own = kb.lds(kb.iadd(cur, addr));
      kb.sts(kb.iadd(nxt, addr), kb.iadd(own, left));
      kb.bar();
      const SReg tmp = kb.smov(cur);
      kb.sassign(cur, nxt);
      kb.sassign(nxt, tmp);
    }
    const VReg result = kb.lds(kb.iadd(cur, addr));
    kb.begin_pred(in_range);
    kb.stg(kb.iadd(p_out, addr), result);
    kb.end_pred();
    return kb.build();
  }

  // Design B: warp-local shuffle scan (5 stages, no memory, no barriers).
  const VReg lane = kb.laneid();
  for (int d = 1; d < 32; d *= 2) {
    const VReg y = kb.shfl_up(x, imm_i64(d));
    const VReg has_left = kb.setp(Cmp::kGe, DType::kI64, lane, imm_i64(d));
    kb.emit_to(x, Op::kSelp, kb.iadd(x, y), x, has_left);
  }

  if (warps > 1) {
    // Cross-warp fix-up: one total per warp through shared memory, once —
    // not per stage. Lane 31 publishes, a single barrier, then every
    // thread adds the totals of the warps before it.
    const int totals = kb.alloc_smem(warps * 4);
    const VReg wid = kb.warpid();
    const VReg is_last_lane = kb.setp(Cmp::kEq, DType::kI64, lane, imm_i64(31));
    kb.begin_pred(is_last_lane);
    kb.sts(kb.iadd(imm_i64(totals), kb.imul(wid, imm_i64(4))), x);
    kb.end_pred();
    kb.bar();
    for (int w = 0; w + 1 < warps; ++w) {
      const VReg after = kb.setp(Cmp::kGt, DType::kI64, wid, imm_i64(w));
      const VReg total = kb.mov(imm_i64(0));
      kb.begin_pred(after);
      kb.lds_to(total, imm_i64(totals + w * 4));
      kb.end_pred();
      kb.assign(x, kb.iadd(x, total));
    }
  }

  kb.begin_pred(in_range);
  kb.stg(kb.iadd(p_out, addr), x);
  kb.end_pred();
  return kb.build();
}

std::vector<std::int32_t> run_scan(const simt::Kernel& kernel,
                                   const simt::DeviceSpec& device,
                                   const std::vector<std::int32_t>& values,
                                   long long* cycles) {
  util::require(!values.empty(), "run_scan: input must be non-empty");
  util::require(values.size() <= static_cast<std::size_t>(kernel.threads_per_block),
                "run_scan: input exceeds one block");
  simt::GlobalMemory gmem;
  const auto in = gmem.alloc(static_cast<std::size_t>(kernel.threads_per_block) * 4);
  const auto out = gmem.alloc(static_cast<std::size_t>(kernel.threads_per_block) * 4);
  gmem.write_i32(in, values);
  std::vector<simt::BlockLaunch> blocks(1);
  blocks[0].args = {static_cast<std::uint64_t>(in), static_cast<std::uint64_t>(out),
                    values.size()};
  const auto result = simt::launch(kernel, device, gmem, blocks);
  if (cycles != nullptr) {
    *cycles = result.representative.cycles;
  }
  return gmem.read_i32(out, values.size());
}

}  // namespace wsim::kernels
