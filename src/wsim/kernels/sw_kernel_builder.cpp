#include <string>

#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/util/check.hpp"
#include "wsim/simt/builder.hpp"

namespace wsim::kernels {

using simt::Cmp;
using simt::DType;
using simt::imm_i64;
using simt::KernelBuilder;
using simt::MemWidth;
using simt::Op;
using simt::Operand;
using simt::SReg;
using simt::VReg;

namespace {

/// Backtrace sentinel as a 64-bit immediate whose low 32 bits equal
/// align::kBtrackStop.
constexpr std::int64_t kStop = align::kBtrackStop;

}  // namespace

simt::Kernel build_sw_kernel(CommMode mode, const align::SwParams& params,
                             int bsize) {
  const bool shared = mode == CommMode::kSharedMemory;
  util::require(bsize >= 32 && bsize % 32 == 0 && bsize <= 96,
                "build_sw_kernel: BSIZE must be a multiple of 32 in [32, 96] "
                "(the btrack tile exceeds shared memory beyond 96)");
  util::require(shared || bsize == 32,
                "build_sw_kernel: the shuffle design is limited to one warp "
                "(shuffle cannot cross warp boundaries — the paper's core "
                "limitation)");
  KernelBuilder kb(shared ? "sw1_shared_b" + std::to_string(bsize) : "sw2_shuffle",
                   bsize);

  // --- scalar launch parameters (one task per block) ----------------------
  const SReg p_query = kb.param();    // s0: query chars (u8)
  const SReg p_target = kb.param();   // s1: target chars (u8)
  const SReg p_m = kb.param();        // s2: M = |query|
  const SReg p_n = kb.param();        // s3: N = |target|
  const SReg p_btrack = kb.param();   // s4: btrack out, M*N i32 row-major
  const SReg p_bound_h = kb.param();  // s5: band-boundary H, N i32
  const SReg p_bound_f = kb.param();  // s6: band-boundary F, N i32
  const SReg p_bound_kv = kb.param(); // s7: band-boundary kv, N i32
  const SReg p_lastcol = kb.param();  // s8: H of last column, M i32
  const SReg p_lastrow = kb.param();  // s9: H of last row, N i32
  const SReg p_bands = kb.param();    // s10: ceil(M / BSIZE)
  const SReg p_tiles = kb.param();    // s11: ceil((N + BSIZE - 1) / BSIZE)

  // --- shared memory (design A only) --------------------------------------
  // Three rotating H line buffers, double-buffered F and kv, and the
  // BSIZE x BSIZE btrack staging tile of the paper's fine-grained tiling.
  int h1_off = 0;
  int h2_off = 0;
  int h3_off = 0;
  int f1_off = 0;
  int f2_off = 0;
  int k1_off = 0;
  int k2_off = 0;
  int tile_off = 0;
  if (shared) {
    h1_off = kb.alloc_smem(bsize * 4);
    h2_off = kb.alloc_smem(bsize * 4);
    h3_off = kb.alloc_smem(bsize * 4);
    f1_off = kb.alloc_smem(bsize * 4);
    f2_off = kb.alloc_smem(bsize * 4);
    k1_off = kb.alloc_smem(bsize * 4);
    k2_off = kb.alloc_smem(bsize * 4);
    // Tile rows are padded by one word so that lanes writing the same
    // step slot hit distinct banks — the classic anti-conflict padding.
    tile_off = kb.alloc_smem(bsize * (bsize + 1) * 4);
  }

  // --- block-invariant values ---------------------------------------------
  const VReg tid = kb.tid();
  const VReg own_off = kb.imul(tid, imm_i64(4));            // this lane's line-buffer slot
  const VReg nb_off = kb.imul(kb.isub(tid, imm_i64(1)), imm_i64(4));  // neighbour's slot
  const VReg is_t0 = kb.setp(Cmp::kEq, DType::kI64, tid, imm_i64(0));
  const VReg not_t0 = kb.setp(Cmp::kGt, DType::kI64, tid, imm_i64(0));
  const VReg is_t31 = kb.setp(Cmp::kEq, DType::kI64, tid, imm_i64(bsize - 1));
  const SReg m1 = kb.ssub(p_m, imm_i64(1));
  const SReg n1 = kb.ssub(p_n, imm_i64(1));
  VReg tile_row{};  // base address of this lane's padded tile row (design A)
  if (shared) {
    tile_row =
        kb.iadd(imm_i64(tile_off), kb.imul(tid, imm_i64((bsize + 1) * 4)));
  }

  // Rotating line-buffer base offsets (design A): scalar registers swapped
  // once per anti-diagonal ("rotate" of Listing 2a).
  SReg sh1{};
  SReg sh2{};
  SReg sh3{};
  SReg sf1{};
  SReg sf2{};
  SReg sk1{};
  SReg sk2{};
  if (shared) {
    sh1 = kb.smov(imm_i64(h1_off));
    sh2 = kb.smov(imm_i64(h2_off));
    sh3 = kb.smov(imm_i64(h3_off));
    sf1 = kb.smov(imm_i64(f1_off));
    sf2 = kb.smov(imm_i64(f2_off));
    sk1 = kb.smov(imm_i64(k1_off));
    sk2 = kb.smov(imm_i64(k2_off));
  }

  const SReg band_base = kb.smov(imm_i64(0));

  // =========================== band loop ===================================
  kb.loop(p_bands);
  {
    const VReg i = kb.iadd(band_base, tid);  // this lane's row for the band
    const VReg row_valid = kb.setp(Cmp::kLt, DType::kI64, i, p_m);
    const VReg is_lastrow = kb.setp(Cmp::kEq, DType::kI64, i, m1);
    const VReg nb0 = kb.setp(Cmp::kGt, DType::kI64, band_base, imm_i64(0));

    // Query character for the whole band: data reuse along the row.
    const VReg qchar = kb.mov(imm_i64(0));
    kb.begin_pred(row_valid);
    kb.ldg_to(qchar, kb.iadd(p_query, i), 0, MemWidth::kB1);
    kb.end_pred();
    const VReg q_is_n = kb.setp(Cmp::kEq, DType::kI64, qchar, imm_i64('N'));

    // Per-row horizontal-gap state (registers in both designs).
    const VReg e = kb.mov(imm_i64(kNegInf));
    const VReg lh = kb.mov(imm_i64(0));

    // Design B per-lane anti-diagonal state: reg2/reg3 of Fig. 6b plus the
    // vertical-gap pair.
    VReg h_prev{};
    VReg h_pprev{};
    VReg f_prev{};
    VReg kv_prev{};
    if (!shared) {
      h_prev = kb.mov(imm_i64(0));
      h_pprev = kb.mov(imm_i64(0));
      f_prev = kb.mov(imm_i64(kNegInf));
      kv_prev = kb.mov(imm_i64(0));
    }

    const SReg step = kb.smov(imm_i64(0));
    const SReg tile_base = kb.smov(imm_i64(0));

    // ========================= tile loop ===================================
    kb.loop(p_tiles);
    {
      // ---------------- anti-diagonal steps (fine tiling) ------------------
      kb.loop(imm_i64(bsize));
      {
        const VReg c = kb.isub(step, tid);
        const VReg c4 = kb.imul(c, imm_i64(4));
        const VReg c_ge0 = kb.setp(Cmp::kGe, DType::kI64, c, imm_i64(0));
        const VReg c_lt_n = kb.setp(Cmp::kLt, DType::kI64, c, p_n);
        const VReg valid = kb.iand(kb.iand(c_ge0, c_lt_n), row_valid);
        const VReg is_c0 = kb.setp(Cmp::kEq, DType::kI64, c, imm_i64(0));
        const VReg not_c0 = kb.setp(Cmp::kNe, DType::kI64, c, imm_i64(0));

        // Target character and substitution score s(a, b).
        const VReg tchar = kb.mov(imm_i64(0));
        kb.begin_pred(valid);
        kb.ldg_to(tchar, kb.iadd(p_target, c), 0, MemWidth::kB1);
        kb.end_pred();
        const VReg t_is_n = kb.setp(Cmp::kEq, DType::kI64, tchar, imm_i64('N'));
        const VReg no_n = kb.setp(Cmp::kEq, DType::kI64, kb.ior(q_is_n, t_is_n),
                                  imm_i64(0));
        const VReg chars_eq = kb.setp(Cmp::kEq, DType::kI64, qchar, tchar);
        const VReg sub = kb.selp(kb.iand(chars_eq, no_n), imm_i64(params.match),
                                 imm_i64(params.mismatch));

        // ------- neighbour values: LOAD phase of Listing 2 -----------------
        VReg left_raw{};
        VReg up_raw{};
        VReg diag_raw{};
        VReg f_raw{};
        VReg kv_raw{};
        if (shared) {
          // Design A: everything comes from the shared-memory line buffers.
          left_raw = kb.mov(imm_i64(0));
          up_raw = kb.mov(imm_i64(0));
          diag_raw = kb.mov(imm_i64(0));
          f_raw = kb.mov(imm_i64(kNegInf));
          kv_raw = kb.mov(imm_i64(0));
          kb.begin_pred(valid);
          kb.lds_to(left_raw, kb.iadd(sh2, own_off));
          kb.end_pred();
          const VReg valid_nb = kb.iand(valid, not_t0);
          kb.begin_pred(valid_nb);
          kb.lds_to(up_raw, kb.iadd(sh2, nb_off));
          kb.lds_to(diag_raw, kb.iadd(sh3, nb_off));
          kb.lds_to(f_raw, kb.iadd(sf2, nb_off));
          kb.lds_to(kv_raw, kb.iadd(sk2, nb_off));
          kb.end_pred();
        } else {
          // Design B: own registers + warp shuffles from lane-1.
          left_raw = h_prev;
          up_raw = kb.shfl_up(h_prev, imm_i64(1));
          diag_raw = kb.shfl_up(h_pprev, imm_i64(1));
          f_raw = kb.shfl_up(f_prev, imm_i64(1));
          kv_raw = kb.shfl_up(kv_prev, imm_i64(1));
        }

        // ------- DP boundaries ---------------------------------------------
        // Lane 0's upper row lives in the previous band, carried through
        // global memory (coarse tiling); band 0 uses the DP init values.
        const VReg vt0 = kb.iand(valid, kb.iand(is_t0, nb0));
        const VReg up_b = kb.mov(imm_i64(0));
        const VReg diag_b = kb.mov(imm_i64(0));
        const VReg f_b = kb.mov(imm_i64(kNegInf));
        const VReg kv_b = kb.mov(imm_i64(0));
        kb.begin_pred(vt0);
        kb.ldg_to(up_b, kb.iadd(p_bound_h, c4));
        kb.ldg_to(f_b, kb.iadd(p_bound_f, c4));
        kb.ldg_to(kv_b, kb.iadd(p_bound_kv, c4));
        kb.end_pred();
        const VReg vt0_nc0 = kb.iand(vt0, not_c0);
        kb.begin_pred(vt0_nc0);
        kb.ldg_to(diag_b, kb.iadd(p_bound_h, kb.imul(kb.isub(c, imm_i64(1)),
                                                     imm_i64(4))));
        kb.end_pred();

        const VReg left = kb.selp(is_c0, imm_i64(0), left_raw);
        const VReg up = kb.selp(is_t0, up_b, up_raw);
        const VReg diag =
            kb.selp(is_t0, diag_b, kb.selp(is_c0, imm_i64(0), diag_raw));
        const VReg f_up = kb.selp(is_t0, f_b, f_raw);
        const VReg kv_up = kb.selp(is_t0, kv_b, kv_raw);

        // ------- COMPUTE phase: affine-gap Eq. 5 cell update ----------------
        // Horizontal gap (E) stays lane-local; forced to the open case at
        // column 0 where no prior column exists.
        const VReg open_h = kb.iadd(left, imm_i64(params.gap_open));
        const VReg ext_h = kb.iadd(e, imm_i64(params.gap_extend));
        const VReg pe = kb.setp(Cmp::kGt, DType::kI64, ext_h, open_h);
        const VReg e_cand = kb.selp(pe, ext_h, open_h);
        kb.emit_to(e, Op::kSelp, open_h, e_cand, is_c0);
        const VReg lh_cand = kb.selp(pe, kb.iadd(lh, imm_i64(1)), imm_i64(1));
        kb.emit_to(lh, Op::kSelp, imm_i64(1), lh_cand, is_c0);

        // Vertical gap (F) from the upper neighbour.
        const VReg open_v = kb.iadd(up, imm_i64(params.gap_open));
        const VReg ext_v = kb.iadd(f_up, imm_i64(params.gap_extend));
        const VReg pv = kb.setp(Cmp::kGt, DType::kI64, ext_v, open_v);
        const VReg f_cur = kb.selp(pv, ext_v, open_v);
        const VReg kv_cur = kb.selp(pv, kb.iadd(kv_up, imm_i64(1)), imm_i64(1));

        // H = max(0, diag + s, E, F); ties prefer diag > vertical >
        // horizontal, matching the host reference exactly.
        const VReg diag_score = kb.iadd(diag, sub);
        const VReg p1 = kb.setp(Cmp::kGt, DType::kI64, f_cur, diag_score);
        const VReg best1 = kb.selp(p1, f_cur, diag_score);
        const VReg bt1 = kb.selp(p1, kv_cur, imm_i64(0));
        const VReg p2 = kb.setp(Cmp::kGt, DType::kI64, e, best1);
        const VReg best2 = kb.selp(p2, e, best1);
        const VReg bt2 = kb.selp(p2, kb.isub(imm_i64(0), lh), bt1);
        const VReg p3 = kb.setp(Cmp::kLe, DType::kI64, best2, imm_i64(0));
        const VReg h_cur = kb.selp(p3, imm_i64(0), best2);
        const VReg bt = kb.selp(p3, imm_i64(kStop), bt2);

        // ------- WRITE phase -------------------------------------------------
        if (shared) {
          // Stage btrack in the BSIZE x BSIZE tile (flushed coalesced below).
          const SReg slot4 = kb.smul(kb.ssub(step, tile_base), imm_i64(4));
          kb.begin_pred(valid);
          kb.sts(kb.iadd(tile_row, slot4), bt);
          kb.end_pred();
        } else {
          const VReg baddr =
              kb.iadd(p_btrack, kb.imul(kb.iadd(kb.imul(i, p_n), c), imm_i64(4)));
          kb.begin_pred(valid);
          kb.stg(baddr, bt);
          kb.end_pred();
        }

        // Last column / last row H values for the HaplotypeCaller max search.
        const VReg at_lastcol = kb.iand(valid, kb.setp(Cmp::kEq, DType::kI64, c, n1));
        kb.begin_pred(at_lastcol);
        kb.stg(kb.iadd(p_lastcol, kb.imul(i, imm_i64(4))), h_cur);
        kb.end_pred();
        const VReg at_lastrow = kb.iand(valid, is_lastrow);
        kb.begin_pred(at_lastrow);
        kb.stg(kb.iadd(p_lastrow, c4), h_cur);
        kb.end_pred();

        // Band boundary for the next band (coarse tiling of Fig. 7a).
        const VReg at_boundary = kb.iand(valid, is_t31);
        kb.begin_pred(at_boundary);
        kb.stg(kb.iadd(p_bound_h, c4), h_cur);
        kb.stg(kb.iadd(p_bound_f, c4), f_cur);
        kb.stg(kb.iadd(p_bound_kv, c4), kv_cur);
        kb.end_pred();

        // ------- state update / ROTATE / SYNC --------------------------------
        if (shared) {
          kb.begin_pred(valid);
          kb.sts(kb.iadd(sh1, own_off), h_cur);
          kb.sts(kb.iadd(sf1, own_off), f_cur);
          kb.sts(kb.iadd(sk1, own_off), kv_cur);
          kb.end_pred();
          // rotate(buf1, buf2, buf3) — base-offset swap in scalar registers.
          const SReg tmp_h = kb.smov(sh3);
          kb.sassign(sh3, sh2);
          kb.sassign(sh2, sh1);
          kb.sassign(sh1, tmp_h);
          const SReg tmp_f = kb.smov(sf2);
          kb.sassign(sf2, sf1);
          kb.sassign(sf1, tmp_f);
          const SReg tmp_k = kb.smov(sk2);
          kb.sassign(sk2, sk1);
          kb.sassign(sk1, tmp_k);
          kb.bar();
        } else {
          kb.assign(h_pprev, h_prev);
          kb.assign(h_prev, h_cur);
          kb.assign(f_prev, f_cur);
          kb.assign(kv_prev, kv_cur);
        }
        kb.sassign(step, kb.sadd(step, imm_i64(1)));
      }
      kb.endloop();

      // ------- tile flush: btrack tile to global memory (design A) ---------
      if (shared) {
        const SReg k = kb.smov(imm_i64(0));
        kb.loop(imm_i64(bsize));
        {
          const VReg c_f = kb.isub(kb.sadd(tile_base, k), tid);
          const VReg vf = kb.iand(
              kb.iand(kb.setp(Cmp::kGe, DType::kI64, c_f, imm_i64(0)),
                      kb.setp(Cmp::kLt, DType::kI64, c_f, p_n)),
              row_valid);
          const VReg val = kb.mov(imm_i64(0));
          kb.begin_pred(vf);
          kb.lds_to(val, kb.iadd(tile_row, kb.smul(k, imm_i64(4))));
          kb.stg(kb.iadd(p_btrack,
                         kb.imul(kb.iadd(kb.imul(i, p_n), c_f), imm_i64(4))),
                 val);
          kb.end_pred();
          kb.sassign(k, kb.sadd(k, imm_i64(1)));
        }
        kb.endloop();
        kb.sassign(tile_base, kb.sadd(tile_base, imm_i64(bsize)));
      }
    }
    kb.endloop();

    kb.sassign(band_base, kb.sadd(band_base, imm_i64(bsize)));
  }
  kb.endloop();

  return kb.build();
}

}  // namespace wsim::kernels
