#include <string>

#include "wsim/kernels/wavefront_kernels.hpp"
#include "wsim/simt/builder.hpp"
#include "wsim/util/check.hpp"

namespace wsim::kernels {

using simt::Cmp;
using simt::DType;
using simt::imm_i64;
using simt::KernelBuilder;
using simt::MemWidth;
using simt::Op;
using simt::SReg;
using simt::VReg;

namespace {

constexpr std::int64_t kStop = align::kBtrackStop;

/// gap_cost(len) = 0 when len <= 0 else open + (len - 1) * extend — the
/// global-alignment boundary of the NW reference.
VReg emit_gap_cost(KernelBuilder& kb, simt::Operand len, const align::SwParams& p) {
  const VReg cost = kb.iadd(imm_i64(p.gap_open),
                            kb.imul(kb.isub(len, imm_i64(1)), imm_i64(p.gap_extend)));
  const VReg zero = kb.setp(Cmp::kLe, DType::kI64, len, imm_i64(0));
  return kb.selp(zero, imm_i64(0), cost);
}

/// Substitution score s(query[r], target[c]) with the reference's 'N'
/// handling (any 'N' scores as a mismatch).
VReg emit_sub_score(KernelBuilder& kb, VReg qchar, VReg tchar,
                    const align::SwParams& params) {
  const VReg q_is_n = kb.setp(Cmp::kEq, DType::kI64, qchar, imm_i64('N'));
  const VReg t_is_n = kb.setp(Cmp::kEq, DType::kI64, tchar, imm_i64('N'));
  const VReg no_n =
      kb.setp(Cmp::kEq, DType::kI64, kb.ior(q_is_n, t_is_n), imm_i64(0));
  const VReg chars_eq = kb.setp(Cmp::kEq, DType::kI64, qchar, tchar);
  return kb.selp(kb.iand(chars_eq, no_n), imm_i64(params.match),
                 imm_i64(params.mismatch));
}

}  // namespace

std::string_view to_string(WfVariant variant) noexcept {
  switch (variant) {
    case WfVariant::kShuffle:
      return "wf-shuffle";
    case WfVariant::kSharedMemory:
      return "wf-shared";
    case WfVariant::kHostSyncNaive:
      return "wf-naive";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Tile kernels (kShuffle / kSharedMemory)
//
// One warp per (tile_rows x 32) tile; lane i owns tile column i. At step s
// lane i computes row s - i of the tile, so the 32 lanes march one cell
// anti-diagonal of the moving front. This is the transpose of the
// task-per-block kernels: the target character is loop-invariant per lane
// (column reuse), the query character streams; the horizontal gap state E
// crosses lanes while the vertical state F stays lane-local.
//
// Inter-lane communication per step (the H/E dependencies of lane i-1):
//   * kShuffle: shfl_up of the previous-step registers — lane i-1's h_last
//     is H(r, c-1), its h_prev is H(r-1, c-1), giving left and diagonal in
//     two shuffles, plus E/len in two more.
//   * kSharedMemory: rotating line buffers exactly like design A — three H
//     buffers (left = buf2, diag = buf3) and double-buffered E/len, one
//     barrier per step.
//
// Tile boundaries travel through global memory between waves: the bottom
// row into a per-task row-boundary buffer (read by the tile below, next
// wave), the right column into a column-boundary buffer (read by the right
// neighbour), and the bottom-right H into a 3-slot parity-rotated corner
// buffer (read by the diagonal neighbour TWO waves later — three slots so
// the wave in between, which writes the same tile column, never touches
// the slot still being read).
// ---------------------------------------------------------------------------

namespace {

simt::Kernel build_wf_tile_kernel(bool is_sw, WfVariant variant,
                                  const align::SwParams& params) {
  util::require(variant != WfVariant::kHostSyncNaive,
                "build_wf_tile_kernel: the naive variant has its own builder");
  const bool shared = variant == WfVariant::kSharedMemory;
  const std::string name = std::string(is_sw ? "wf_sw_" : "wf_nw_") +
                           (shared ? "shared" : "shuffle");
  KernelBuilder kb(name, kSwBsize);

  // --- scalar launch parameters (one tile per block) ----------------------
  const SReg p_query = kb.param();      // s0: query chars (u8), M rows
  const SReg p_target = kb.param();     // s1: target chars (u8), N cols
  const SReg p_m = kb.param();          // s2: M
  const SReg p_n = kb.param();          // s3: N
  const SReg p_out = kb.param();        // s4: SW: btrack (M*N i32); NW: score cell
  const SReg p_rb_h = kb.param();       // s5: row-boundary H, indexed by column
  const SReg p_rb_f = kb.param();       // s6: row-boundary F
  const SReg p_rb_kv = kb.param();      // s7: row-boundary kv (SW) / unused (NW)
  const SReg p_cb_h = kb.param();       // s8: column-boundary H, indexed by row
  const SReg p_cb_e = kb.param();       // s9: column-boundary E
  const SReg p_cb_lh = kb.param();      // s10: column-boundary len-h (SW) / unused
  const SReg p_corner_rd = kb.param();  // s11: exact address of the corner H
  const SReg p_corner_wr = kb.param();  // s12: exact address to publish ours
  const SReg p_lastcol = kb.param();    // s13: H of last column (SW) / unused
  const SReg p_lastrow = kb.param();    // s14: H of last row (SW) / unused
  const SReg p_row_base = kb.param();   // s15: first row of this tile
  const SReg p_col_base = kb.param();   // s16: first column of this tile
  const SReg p_rows = kb.param();       // s17: rows in this tile
  const SReg p_steps = kb.param();      // s18: rows + 31 (fill + drain)
  const SReg p_has_up = kb.param();     // s19: 1 when a tile row sits above
  const SReg p_has_left = kb.param();   // s20: 1 when a tile column sits left

  // --- shared memory (kSharedMemory only) ---------------------------------
  int h1_off = 0;
  int h2_off = 0;
  int h3_off = 0;
  int e1_off = 0;
  int e2_off = 0;
  int l1_off = 0;
  int l2_off = 0;
  if (shared) {
    h1_off = kb.alloc_smem(kSwBsize * 4);
    h2_off = kb.alloc_smem(kSwBsize * 4);
    h3_off = kb.alloc_smem(kSwBsize * 4);
    e1_off = kb.alloc_smem(kSwBsize * 4);
    e2_off = kb.alloc_smem(kSwBsize * 4);
    if (is_sw) {
      l1_off = kb.alloc_smem(kSwBsize * 4);
      l2_off = kb.alloc_smem(kSwBsize * 4);
    }
  }

  // --- block-invariant values ---------------------------------------------
  const VReg tid = kb.tid();
  const VReg own_off = kb.imul(tid, imm_i64(4));
  const VReg nb_off = kb.imul(kb.isub(tid, imm_i64(1)), imm_i64(4));
  const VReg is_t0 = kb.setp(Cmp::kEq, DType::kI64, tid, imm_i64(0));
  const VReg not_t0 = kb.setp(Cmp::kGt, DType::kI64, tid, imm_i64(0));
  const VReg is_t31 = kb.setp(Cmp::kEq, DType::kI64, tid, imm_i64(kSwBsize - 1));
  const VReg c = kb.iadd(p_col_base, tid);  // this lane's (global) column
  const VReg c4 = kb.imul(c, imm_i64(4));
  const VReg col_valid = kb.setp(Cmp::kLt, DType::kI64, c, p_n);
  const VReg is_c0 = kb.setp(Cmp::kEq, DType::kI64, c, imm_i64(0));
  const VReg has_up = kb.setp(Cmp::kGt, DType::kI64, p_has_up, imm_i64(0));
  const VReg has_left = kb.setp(Cmp::kGt, DType::kI64, p_has_left, imm_i64(0));
  const SReg m1 = kb.ssub(p_m, imm_i64(1));
  const SReg n1 = kb.ssub(p_n, imm_i64(1));
  const SReg rows1 = kb.ssub(p_rows, imm_i64(1));

  // Target character: loop-invariant per lane (the column-reuse dual of the
  // task-per-block kernels' per-band query reuse).
  const VReg tchar = kb.mov(imm_i64(0));
  kb.begin_pred(col_valid);
  kb.ldg_to(tchar, kb.iadd(p_target, c), 0, MemWidth::kB1);
  kb.end_pred();

  // Vertical state enters from the tile above through the row boundary; the
  // top tile row uses the DP init (SW: 0 / NW: gap_cost of the top row).
  VReg h_last{};
  VReg f_last{};
  if (is_sw) {
    h_last = kb.mov(imm_i64(0));
    f_last = kb.mov(imm_i64(kNegInf));
  } else {
    h_last = kb.mov(emit_gap_cost(kb, kb.iadd(c, imm_i64(1)), params));
    f_last = kb.mov(imm_i64(kNegInf));
  }
  VReg kv_last{};
  if (is_sw) {
    kv_last = kb.mov(imm_i64(0));
  }
  const VReg init_p = kb.iand(col_valid, has_up);
  kb.begin_pred(init_p);
  kb.ldg_to(h_last, kb.iadd(p_rb_h, c4));
  kb.ldg_to(f_last, kb.iadd(p_rb_f, c4));
  if (is_sw) {
    kb.ldg_to(kv_last, kb.iadd(p_rb_kv, c4));
  }
  kb.end_pred();

  // Pipeline registers. h_prev only matters after a lane's first rotation
  // (the neighbour's first diagonal read sees the *rotated* init h_last),
  // so its init value is never consumed.
  VReg h_prev{};
  if (!shared) {
    h_prev = kb.mov(imm_i64(0));
  }
  VReg e_last{};
  VReg lh_last{};
  if (!shared) {
    e_last = kb.mov(imm_i64(kNegInf));
    if (is_sw) {
      lh_last = kb.mov(imm_i64(0));
    }
  }

  SReg sh1{};
  SReg sh2{};
  SReg sh3{};
  SReg se1{};
  SReg se2{};
  SReg sl1{};
  SReg sl2{};
  if (shared) {
    sh1 = kb.smov(imm_i64(h1_off));
    sh2 = kb.smov(imm_i64(h2_off));
    sh3 = kb.smov(imm_i64(h3_off));
    se1 = kb.smov(imm_i64(e1_off));
    se2 = kb.smov(imm_i64(e2_off));
    if (is_sw) {
      sl1 = kb.smov(imm_i64(l1_off));
      sl2 = kb.smov(imm_i64(l2_off));
    }
    // Seed every H buffer with the boundary init: a lane's first diagonal
    // read (buf3 of the left neighbour) lands on a slot that neighbour has
    // not written yet — it must read H(row_base - 1, c - 1), i.e. the init.
    kb.begin_pred(col_valid);
    kb.sts(kb.iadd(sh1, own_off), h_last);
    kb.sts(kb.iadd(sh2, own_off), h_last);
    kb.sts(kb.iadd(sh3, own_off), h_last);
    kb.end_pred();
    kb.bar();
  }

  const SReg step = kb.smov(imm_i64(0));

  // =========================== anti-diagonal steps =========================
  kb.loop(p_steps);
  {
    const VReg local_r = kb.isub(step, tid);  // this lane's tile row at this step
    const VReg r = kb.iadd(p_row_base, local_r);
    const VReg r4 = kb.imul(r, imm_i64(4));
    const VReg r_ok = kb.iand(kb.setp(Cmp::kGe, DType::kI64, local_r, imm_i64(0)),
                              kb.setp(Cmp::kLt, DType::kI64, local_r, p_rows));
    const VReg valid = kb.iand(r_ok, col_valid);
    const VReg first_r = kb.setp(Cmp::kEq, DType::kI64, local_r, imm_i64(0));

    const VReg qchar = kb.mov(imm_i64(0));
    kb.begin_pred(valid);
    kb.ldg_to(qchar, kb.iadd(p_query, r), 0, MemWidth::kB1);
    kb.end_pred();
    const VReg sub = emit_sub_score(kb, qchar, tchar, params);

    // ------- LOAD phase: left / diagonal / E (and len-h) from lane - 1 ----
    VReg left_raw{};
    VReg diag_raw{};
    VReg e_raw{};
    VReg lh_raw{};
    if (shared) {
      left_raw = kb.mov(imm_i64(0));
      diag_raw = kb.mov(imm_i64(0));
      e_raw = kb.mov(imm_i64(kNegInf));
      if (is_sw) {
        lh_raw = kb.mov(imm_i64(0));
      }
      const VReg valid_nb = kb.iand(valid, not_t0);
      kb.begin_pred(valid_nb);
      kb.lds_to(left_raw, kb.iadd(sh2, nb_off));
      kb.lds_to(diag_raw, kb.iadd(sh3, nb_off));
      kb.lds_to(e_raw, kb.iadd(se2, nb_off));
      if (is_sw) {
        kb.lds_to(lh_raw, kb.iadd(sl2, nb_off));
      }
      kb.end_pred();
    } else {
      left_raw = kb.shfl_up(h_last, imm_i64(1));
      diag_raw = kb.shfl_up(h_prev, imm_i64(1));
      e_raw = kb.shfl_up(e_last, imm_i64(1));
      if (is_sw) {
        lh_raw = kb.shfl_up(lh_last, imm_i64(1));
      }
    }

    // ------- lane-0 boundary: the left tile's right column ----------------
    // Carried through the per-task column-boundary buffer; the diagonal of
    // the tile's FIRST row is the corner published by the upper-left
    // neighbour two waves ago.
    const VReg vt0 = kb.iand(valid, kb.iand(is_t0, has_left));
    const VReg left_b = kb.mov(imm_i64(0));
    const VReg e_b = kb.mov(imm_i64(kNegInf));
    VReg lh_b{};
    if (is_sw) {
      lh_b = kb.mov(imm_i64(0));
    }
    VReg diag_b{};
    if (is_sw) {
      diag_b = kb.mov(imm_i64(0));
    } else {
      // NW top tile row: H(-1, col_base - 1) = gap_cost(col_base).
      diag_b = kb.mov(emit_gap_cost(kb, c, params));
    }
    kb.begin_pred(vt0);
    kb.ldg_to(left_b, kb.iadd(p_cb_h, r4));
    kb.ldg_to(e_b, kb.iadd(p_cb_e, r4));
    if (is_sw) {
      kb.ldg_to(lh_b, kb.iadd(p_cb_lh, r4));
    }
    kb.end_pred();
    const VReg vt0_first = kb.iand(vt0, kb.iand(first_r, has_up));
    kb.begin_pred(vt0_first);
    kb.ldg_to(diag_b, p_corner_rd);
    kb.end_pred();
    const VReg vt0_rest =
        kb.iand(vt0, kb.setp(Cmp::kGt, DType::kI64, local_r, imm_i64(0)));
    kb.begin_pred(vt0_rest);
    kb.ldg_to(diag_b, kb.iadd(p_cb_h, kb.imul(kb.isub(r, imm_i64(1)), imm_i64(4))));
    kb.end_pred();

    VReg left = kb.selp(is_t0, left_b, left_raw);
    VReg diag = kb.selp(is_t0, diag_b, diag_raw);
    const VReg e_in = kb.selp(is_t0, e_b, e_raw);
    VReg lh_in{};
    if (is_sw) {
      lh_in = kb.selp(is_t0, lh_b, lh_raw);
    }
    if (!is_sw) {
      // NW DP column 0: left and diagonal come from the global-alignment
      // row boundary (only reachable for lane 0 of the leftmost tiles).
      const VReg row_bound = emit_gap_cost(kb, kb.iadd(r, imm_i64(1)), params);
      const VReg diag_row_bound = emit_gap_cost(kb, r, params);
      left = kb.selp(is_c0, row_bound, left);
      diag = kb.selp(is_c0, diag_row_bound, diag);
    }

    // up / F / kv are this lane's own previous-row state.
    const VReg up = h_last;
    const VReg f_up = f_last;

    // ------- COMPUTE phase: identical formulas and tie-breaks to the
    // task-per-block kernels (and therefore to the host references) -------
    const VReg open_h = kb.iadd(left, imm_i64(params.gap_open));
    const VReg ext_h = kb.iadd(e_in, imm_i64(params.gap_extend));
    const VReg pe = kb.setp(Cmp::kGt, DType::kI64, ext_h, open_h);
    const VReg e_cand = kb.selp(pe, ext_h, open_h);
    const VReg e_cur = kb.selp(is_c0, open_h, e_cand);

    const VReg open_v = kb.iadd(up, imm_i64(params.gap_open));
    const VReg ext_v = kb.iadd(f_up, imm_i64(params.gap_extend));

    VReg h_cur{};
    VReg f_cur{};
    VReg kv_cur{};
    VReg lh_cur{};
    VReg bt{};
    if (is_sw) {
      const VReg lh_cand = kb.selp(pe, kb.iadd(lh_in, imm_i64(1)), imm_i64(1));
      lh_cur = kb.selp(is_c0, imm_i64(1), lh_cand);
      const VReg pv = kb.setp(Cmp::kGt, DType::kI64, ext_v, open_v);
      f_cur = kb.selp(pv, ext_v, open_v);
      kv_cur = kb.selp(pv, kb.iadd(kv_last, imm_i64(1)), imm_i64(1));

      const VReg diag_score = kb.iadd(diag, sub);
      const VReg p1 = kb.setp(Cmp::kGt, DType::kI64, f_cur, diag_score);
      const VReg best1 = kb.selp(p1, f_cur, diag_score);
      const VReg bt1 = kb.selp(p1, kv_cur, imm_i64(0));
      const VReg p2 = kb.setp(Cmp::kGt, DType::kI64, e_cur, best1);
      const VReg best2 = kb.selp(p2, e_cur, best1);
      const VReg bt2 = kb.selp(p2, kb.isub(imm_i64(0), lh_cur), bt1);
      const VReg p3 = kb.setp(Cmp::kLe, DType::kI64, best2, imm_i64(0));
      h_cur = kb.selp(p3, imm_i64(0), best2);
      bt = kb.selp(p3, imm_i64(kStop), bt2);
    } else {
      f_cur = kb.imax(open_v, ext_v);
      const VReg diag_score = kb.iadd(diag, sub);
      h_cur = kb.imax(kb.imax(diag_score, f_cur), e_cur);
    }

    // ------- WRITE phase ---------------------------------------------------
    if (is_sw) {
      const VReg baddr = kb.iadd(
          p_out, kb.imul(kb.iadd(kb.imul(r, p_n), c), imm_i64(4)));
      kb.begin_pred(valid);
      kb.stg(baddr, bt);
      kb.end_pred();
      const VReg at_lastcol =
          kb.iand(valid, kb.setp(Cmp::kEq, DType::kI64, c, n1));
      kb.begin_pred(at_lastcol);
      kb.stg(kb.iadd(p_lastcol, r4), h_cur);
      kb.end_pred();
      const VReg at_lastrow =
          kb.iand(valid, kb.setp(Cmp::kEq, DType::kI64, r, m1));
      kb.begin_pred(at_lastrow);
      kb.stg(kb.iadd(p_lastrow, c4), h_cur);
      kb.end_pred();
    } else {
      const VReg at_result = kb.iand(
          kb.iand(valid, kb.setp(Cmp::kEq, DType::kI64, r, m1)),
          kb.setp(Cmp::kEq, DType::kI64, c, n1));
      kb.begin_pred(at_result);
      kb.stg(p_out, h_cur);
      kb.end_pred();
    }

    // Boundaries for the tiles of later waves.
    const VReg at_bottom =
        kb.iand(valid, kb.setp(Cmp::kEq, DType::kI64, local_r, rows1));
    kb.begin_pred(at_bottom);
    kb.stg(kb.iadd(p_rb_h, c4), h_cur);
    kb.stg(kb.iadd(p_rb_f, c4), f_cur);
    if (is_sw) {
      kb.stg(kb.iadd(p_rb_kv, c4), kv_cur);
    }
    kb.end_pred();
    const VReg at_right = kb.iand(valid, is_t31);
    kb.begin_pred(at_right);
    kb.stg(kb.iadd(p_cb_h, r4), h_cur);
    kb.stg(kb.iadd(p_cb_e, r4), e_cur);
    if (is_sw) {
      kb.stg(kb.iadd(p_cb_lh, r4), lh_cur);
    }
    kb.end_pred();
    const VReg at_corner = kb.iand(at_bottom, is_t31);
    kb.begin_pred(at_corner);
    kb.stg(p_corner_wr, h_cur);
    kb.end_pred();

    // ------- ROTATE / SYNC -------------------------------------------------
    if (shared) {
      kb.begin_pred(valid);
      kb.sts(kb.iadd(sh1, own_off), h_cur);
      kb.sts(kb.iadd(se1, own_off), e_cur);
      if (is_sw) {
        kb.sts(kb.iadd(sl1, own_off), lh_cur);
      }
      kb.assign(h_last, h_cur);
      kb.assign(f_last, f_cur);
      if (is_sw) {
        kb.assign(kv_last, kv_cur);
      }
      kb.end_pred();
      const SReg tmp_h = kb.smov(sh3);
      kb.sassign(sh3, sh2);
      kb.sassign(sh2, sh1);
      kb.sassign(sh1, tmp_h);
      const SReg tmp_e = kb.smov(se2);
      kb.sassign(se2, se1);
      kb.sassign(se1, tmp_e);
      if (is_sw) {
        const SReg tmp_l = kb.smov(sl2);
        kb.sassign(sl2, sl1);
        kb.sassign(sl1, tmp_l);
      }
      kb.bar();
    } else {
      kb.begin_pred(valid);
      kb.assign(h_prev, h_last);
      kb.assign(h_last, h_cur);
      kb.assign(f_last, f_cur);
      kb.assign(e_last, e_cur);
      if (is_sw) {
        kb.assign(kv_last, kv_cur);
        kb.assign(lh_last, lh_cur);
      }
      kb.end_pred();
    }
    kb.sassign(step, kb.sadd(step, imm_i64(1)));
  }
  kb.endloop();

  return kb.build();
}

// ---------------------------------------------------------------------------
// Naive per-diagonal kernels (kHostSyncNaive)
//
// Every launch computes ONE cell anti-diagonal d: block lanes cover 32
// consecutive rows of the diagonal (r = seg_base + tid, c = d - r), and
// every dependency is read from full M x N global-memory matrices written
// by the two previous launches. The host loop synchronizes M + N - 1
// times — the anti-pattern the wavefront tiles exist to beat.
// ---------------------------------------------------------------------------

simt::Kernel build_wf_naive_kernel(bool is_sw, const align::SwParams& params) {
  KernelBuilder kb(is_sw ? "wf_sw_naive" : "wf_nw_naive", kSwBsize);

  const SReg p_query = kb.param();     // s0
  const SReg p_target = kb.param();    // s1
  const SReg p_m = kb.param();         // s2
  const SReg p_n = kb.param();         // s3
  const SReg p_h = kb.param();         // s4: H matrix, M*N i32
  const SReg p_e = kb.param();         // s5: E matrix
  const SReg p_f = kb.param();         // s6: F matrix
  const SReg p_kv = kb.param();        // s7: kv matrix (SW) / unused
  const SReg p_lh = kb.param();        // s8: lh matrix (SW) / unused
  const SReg p_out = kb.param();       // s9: SW: btrack; NW: score cell
  const SReg p_lastcol = kb.param();   // s10 (SW) / unused
  const SReg p_lastrow = kb.param();   // s11 (SW) / unused
  const SReg p_d = kb.param();         // s12: the cell anti-diagonal
  const SReg p_seg_base = kb.param();  // s13: first row of this block

  const VReg tid = kb.tid();
  const VReg r = kb.iadd(p_seg_base, tid);
  const VReg c = kb.isub(p_d, r);
  const VReg valid = kb.iand(
      kb.iand(kb.setp(Cmp::kLt, DType::kI64, r, p_m),
              kb.setp(Cmp::kGe, DType::kI64, c, imm_i64(0))),
      kb.setp(Cmp::kLt, DType::kI64, c, p_n));
  const VReg is_c0 = kb.setp(Cmp::kEq, DType::kI64, c, imm_i64(0));
  const SReg m1 = kb.ssub(p_m, imm_i64(1));
  const SReg n1 = kb.ssub(p_n, imm_i64(1));

  const VReg idx = kb.iadd(kb.imul(r, p_n), c);
  const VReg idx4 = kb.imul(idx, imm_i64(4));
  const VReg up_idx4 = kb.imul(kb.isub(idx, p_n), imm_i64(4));
  const VReg left_idx4 = kb.imul(kb.isub(idx, imm_i64(1)), imm_i64(4));
  const VReg diag_idx4 =
      kb.imul(kb.isub(idx, kb.sadd(p_n, imm_i64(1))), imm_i64(4));

  const VReg qchar = kb.mov(imm_i64(0));
  const VReg tchar = kb.mov(imm_i64(0));
  kb.begin_pred(valid);
  kb.ldg_to(qchar, kb.iadd(p_query, r), 0, MemWidth::kB1);
  kb.ldg_to(tchar, kb.iadd(p_target, c), 0, MemWidth::kB1);
  kb.end_pred();
  const VReg sub = emit_sub_score(kb, qchar, tchar, params);

  // Neighbour loads, all from global memory. DP-boundary defaults: SW uses
  // zeros, NW the gap-cost borders.
  VReg left{};
  VReg up{};
  VReg diag{};
  if (is_sw) {
    left = kb.mov(imm_i64(0));
    up = kb.mov(imm_i64(0));
    diag = kb.mov(imm_i64(0));
  } else {
    left = kb.mov(emit_gap_cost(kb, kb.iadd(r, imm_i64(1)), params));
    up = kb.mov(emit_gap_cost(kb, kb.iadd(c, imm_i64(1)), params));
    const VReg diag_r = emit_gap_cost(kb, r, params);
    const VReg diag_c = emit_gap_cost(kb, c, params);
    diag = kb.mov(kb.selp(is_c0, diag_r, diag_c));
  }
  const VReg e_in = kb.mov(imm_i64(kNegInf));
  const VReg f_up = kb.mov(imm_i64(kNegInf));
  VReg kv_up{};
  VReg lh_in{};
  if (is_sw) {
    kv_up = kb.mov(imm_i64(0));
    lh_in = kb.mov(imm_i64(0));
  }

  const VReg not_c0 = kb.setp(Cmp::kNe, DType::kI64, c, imm_i64(0));
  const VReg not_r0 = kb.setp(Cmp::kNe, DType::kI64, r, imm_i64(0));
  const VReg v_nc0 = kb.iand(valid, not_c0);
  kb.begin_pred(v_nc0);
  kb.ldg_to(left, kb.iadd(p_h, left_idx4));
  kb.ldg_to(e_in, kb.iadd(p_e, left_idx4));
  if (is_sw) {
    kb.ldg_to(lh_in, kb.iadd(p_lh, left_idx4));
  }
  kb.end_pred();
  const VReg v_nr0 = kb.iand(valid, not_r0);
  kb.begin_pred(v_nr0);
  kb.ldg_to(up, kb.iadd(p_h, up_idx4));
  kb.ldg_to(f_up, kb.iadd(p_f, up_idx4));
  if (is_sw) {
    kb.ldg_to(kv_up, kb.iadd(p_kv, up_idx4));
  }
  kb.end_pred();
  const VReg v_interior = kb.iand(v_nc0, not_r0);
  kb.begin_pred(v_interior);
  kb.ldg_to(diag, kb.iadd(p_h, diag_idx4));
  kb.end_pred();

  // Cell update — same formulas/tie-breaks as everywhere else.
  const VReg open_h = kb.iadd(left, imm_i64(params.gap_open));
  const VReg ext_h = kb.iadd(e_in, imm_i64(params.gap_extend));
  const VReg pe = kb.setp(Cmp::kGt, DType::kI64, ext_h, open_h);
  const VReg e_cur = kb.selp(is_c0, open_h, kb.selp(pe, ext_h, open_h));
  const VReg open_v = kb.iadd(up, imm_i64(params.gap_open));
  const VReg ext_v = kb.iadd(f_up, imm_i64(params.gap_extend));

  VReg h_cur{};
  VReg f_cur{};
  VReg kv_cur{};
  VReg lh_cur{};
  VReg bt{};
  if (is_sw) {
    lh_cur = kb.selp(is_c0, imm_i64(1),
                     kb.selp(pe, kb.iadd(lh_in, imm_i64(1)), imm_i64(1)));
    const VReg pv = kb.setp(Cmp::kGt, DType::kI64, ext_v, open_v);
    f_cur = kb.selp(pv, ext_v, open_v);
    kv_cur = kb.selp(pv, kb.iadd(kv_up, imm_i64(1)), imm_i64(1));
    const VReg diag_score = kb.iadd(diag, sub);
    const VReg p1 = kb.setp(Cmp::kGt, DType::kI64, f_cur, diag_score);
    const VReg best1 = kb.selp(p1, f_cur, diag_score);
    const VReg bt1 = kb.selp(p1, kv_cur, imm_i64(0));
    const VReg p2 = kb.setp(Cmp::kGt, DType::kI64, e_cur, best1);
    const VReg best2 = kb.selp(p2, e_cur, best1);
    const VReg bt2 = kb.selp(p2, kb.isub(imm_i64(0), lh_cur), bt1);
    const VReg p3 = kb.setp(Cmp::kLe, DType::kI64, best2, imm_i64(0));
    h_cur = kb.selp(p3, imm_i64(0), best2);
    bt = kb.selp(p3, imm_i64(kStop), bt2);
  } else {
    f_cur = kb.imax(open_v, ext_v);
    const VReg diag_score = kb.iadd(diag, sub);
    h_cur = kb.imax(kb.imax(diag_score, f_cur), e_cur);
  }

  kb.begin_pred(valid);
  kb.stg(kb.iadd(p_h, idx4), h_cur);
  kb.stg(kb.iadd(p_e, idx4), e_cur);
  kb.stg(kb.iadd(p_f, idx4), f_cur);
  if (is_sw) {
    kb.stg(kb.iadd(p_kv, idx4), kv_cur);
    kb.stg(kb.iadd(p_lh, idx4), lh_cur);
    kb.stg(kb.iadd(p_out, idx4), bt);
  }
  kb.end_pred();
  if (is_sw) {
    const VReg at_lastcol = kb.iand(valid, kb.setp(Cmp::kEq, DType::kI64, c, n1));
    kb.begin_pred(at_lastcol);
    kb.stg(kb.iadd(p_lastcol, kb.imul(r, imm_i64(4))), h_cur);
    kb.end_pred();
    const VReg at_lastrow = kb.iand(valid, kb.setp(Cmp::kEq, DType::kI64, r, m1));
    kb.begin_pred(at_lastrow);
    kb.stg(kb.iadd(p_lastrow, kb.imul(c, imm_i64(4))), h_cur);
    kb.end_pred();
  } else {
    const VReg at_result = kb.iand(
        kb.iand(valid, kb.setp(Cmp::kEq, DType::kI64, r, m1)),
        kb.setp(Cmp::kEq, DType::kI64, c, n1));
    kb.begin_pred(at_result);
    kb.stg(p_out, h_cur);
    kb.end_pred();
  }

  return kb.build();
}

}  // namespace

simt::Kernel build_wf_sw_kernel(WfVariant variant, const align::SwParams& params) {
  if (variant == WfVariant::kHostSyncNaive) {
    return build_wf_naive_kernel(/*is_sw=*/true, params);
  }
  return build_wf_tile_kernel(/*is_sw=*/true, variant, params);
}

simt::Kernel build_wf_nw_kernel(WfVariant variant, const align::SwParams& params) {
  if (variant == WfVariant::kHostSyncNaive) {
    return build_wf_naive_kernel(/*is_sw=*/false, params);
  }
  return build_wf_tile_kernel(/*is_sw=*/false, variant, params);
}

simt::Kernel build_wf_naive_sw_kernel(const align::SwParams& params) {
  return build_wf_naive_kernel(/*is_sw=*/true, params);
}

simt::Kernel build_wf_naive_nw_kernel(const align::SwParams& params) {
  return build_wf_naive_kernel(/*is_sw=*/false, params);
}

}  // namespace wsim::kernels
