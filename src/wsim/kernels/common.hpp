#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

#include "wsim/simt/runtime.hpp"

namespace wsim::kernels {

/// The two inter-thread communication designs the paper contrasts
/// (Fig. 6): design A stages anti-diagonal values in shared-memory line
/// buffers; design B keeps them in registers and exchanges them with warp
/// shuffles.
enum class CommMode {
  kSharedMemory,  ///< design A (SW1 / PH1)
  kShuffle,       ///< design B (SW2 / PH2)
};

std::string_view to_string(CommMode mode) noexcept;

/// Result of running one batch through a kernel, with CUPS accounting.
/// `cells` counts DP cells in the paper's convention (PairHMM's three
/// matrix updates count as one cell).
struct KernelRunResult {
  simt::LaunchResult launch;
  std::size_t cells = 0;

  /// GCUPS including host-device transfer and launch overhead (the
  /// paper's Fig. 9 / Fig. 10 convention).
  double gcups_total() const noexcept;

  /// GCUPS over device execution only (the paper's Table II convention).
  double gcups_kernel() const noexcept;

  /// Average cycles per anti-diagonal iteration given the total number of
  /// wavefront iterations executed by the representative block — the
  /// `latency` of the paper's performance model (Eq. 7).
  double cycles_per_iteration(std::uint64_t iterations) const noexcept;
};

/// Shape key for block-cost caching: quantizes (rows, cols) to
/// `granularity` so the timing cache stays small while per-block cycles
/// stay within a few percent of exact. Granularity 1 gives exact caching.
std::uint64_t shape_key(std::size_t rows, std::size_t cols,
                        std::size_t granularity) noexcept;

/// Large negative sentinel for integer DP (matches the host reference).
inline constexpr std::int64_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;

}  // namespace wsim::kernels
