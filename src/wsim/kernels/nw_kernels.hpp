#pragma once

#include <cstdint>
#include <vector>

#include "wsim/align/needleman_wunsch.hpp"
#include "wsim/kernels/common.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/isa.hpp"
#include "wsim/simt/runtime.hpp"
#include "wsim/workload/batching.hpp"

namespace wsim::kernels {

/// Extension case study: global alignment (Needleman-Wunsch with affine
/// gaps). The paper lists NW alongside SW/PairHMM as an algorithm with
/// the same anti-diagonal dependence graph (Fig. 4); these kernels apply
/// the identical design-A/design-B treatment — shared-memory line buffers
/// vs register + shuffle — to the global recurrence. Score-only (the DP
/// value at (M, N)); backtrace stays a host concern.
///
/// Scalar parameters: query base, target base, M, N, result address,
/// boundary-H base, boundary-F base, number of bands, tiles per band.
simt::Kernel build_nw_kernel(CommMode mode, const align::SwParams& params);

struct NwBatchResult {
  KernelRunResult run;
  std::vector<std::int32_t> scores;  ///< per task (collect_outputs)
};

struct NwRunOptions {
  bool collect_outputs = false;
  simt::ExecMode mode = simt::ExecMode::kFull;
  std::size_t shape_granularity = kSwBsize;
  simt::BlockCostCache* cost_cache = nullptr;
  /// Memoize block costs in the executing engine's persistent cache
  /// instead of `cost_cache` (see simt::LaunchOptions::use_engine_cache).
  bool use_engine_cache = false;
  /// Overlap PCIe copies with kernel execution (CUDA streams).
  bool overlap_transfers = false;
  /// Engine that executes the launch; null means the process-wide
  /// simt::shared_engine().
  simt::ExecutionEngine* engine = nullptr;
  /// Deterministic SDC injection (requires kFull; see simt/sdc.hpp).
  simt::SdcPlan sdc;
  std::uint64_t sdc_launch_id = 0;
  /// Watchdog cycle budget per block (simt::LaunchOptions::max_block_cycles).
  long long max_block_cycles = 0;
  /// Interpreter selection (simt::LaunchOptions::interp).
  simt::InterpPath interp = simt::InterpPath::kDefault;
};

class NwRunner {
 public:
  explicit NwRunner(CommMode mode, const align::SwParams& params = {});

  const simt::Kernel& kernel() const noexcept { return kernel_; }
  CommMode comm_mode() const noexcept { return mode_; }

  NwBatchResult run_batch(const simt::DeviceSpec& device,
                          const workload::SwBatch& batch,
                          const NwRunOptions& options = {}) const;

 private:
  CommMode mode_;
  align::SwParams params_;
  simt::Kernel kernel_;
};

}  // namespace wsim::kernels
