#include <string>
#include <vector>

#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/simt/builder.hpp"
#include "wsim/util/check.hpp"

namespace wsim::kernels {

using simt::Cmp;
using simt::DType;
using simt::imm_f32;
using simt::imm_i64;
using simt::KernelBuilder;
using simt::MemWidth;
using simt::Op;
using simt::SReg;
using simt::VReg;

namespace {

/// Per-row transition/prior values derived in the kernel prologue.
enum RowField {
  kPriorMatch = 0,
  kPriorMismatch,
  kTransMM,
  kTransIM,
  kTransMI,
  kTransII,
  kTransMD,
  kTransDD,
  kRowFields,
};

struct PhParams {
  SReg quals;      ///< per-row quality triples [base, ins, del, pad], 4 B/row
  SReg reads;
  SReg haps;
  SReg r;
  SReg h;
  SReg steps;
  SReg result;
  SReg ic_over_h;  ///< f32 bits: IC / |hap|
  SReg err_lut;    ///< f32[kQualLutSize]: qual -> 10^(-q/10)
  SReg err3_lut;   ///< f32[kQualLutSize]: qual -> 10^(-q/10) / 3
  SReg gcp_prob;   ///< f32 bits: gap-continuation probability
  SReg gcp_comp;   ///< f32 bits: 1 - gap-continuation probability
};

PhParams declare_params(KernelBuilder& kb) {
  PhParams p;
  p.quals = kb.param();
  p.reads = kb.param();
  p.haps = kb.param();
  p.r = kb.param();
  p.h = kb.param();
  p.steps = kb.param();
  p.result = kb.param();
  p.ic_over_h = kb.param();
  p.err_lut = kb.param();
  p.err3_lut = kb.param();
  p.gcp_prob = kb.param();
  p.gcp_comp = kb.param();
  return p;
}

/// Per-row constants: read character plus priors and Eq. 6 transition
/// probabilities, derived from the row's quality bytes through the
/// device-resident lookup tables (as production PairHMM kernels do — only
/// raw quality bytes cross PCIe).
struct RowState {
  VReg row_valid;
  VReg is_lastrow;
  VReg read_is_n;
  VReg rchar;
  std::array<VReg, kRowFields> fields;
};

RowState load_row(KernelBuilder& kb, const PhParams& p, VReg row_index, SReg r_minus1) {
  RowState row;
  row.row_valid = kb.setp(Cmp::kLt, DType::kI64, row_index, p.r);
  row.is_lastrow = kb.setp(Cmp::kEq, DType::kI64, row_index, r_minus1);
  row.rchar = kb.mov(imm_i64(0));
  const VReg base_q = kb.mov(imm_i64(0));
  const VReg ins_q = kb.mov(imm_i64(0));
  const VReg del_q = kb.mov(imm_i64(0));
  const VReg qbase = kb.iadd(p.quals, kb.imul(row_index, imm_i64(4)));
  kb.begin_pred(row.row_valid);
  kb.ldg_to(row.rchar, kb.iadd(p.reads, row_index), 0, MemWidth::kB1);
  kb.ldg_to(base_q, qbase, 0, MemWidth::kB1);
  kb.ldg_to(ins_q, qbase, 1, MemWidth::kB1);
  kb.ldg_to(del_q, qbase, 2, MemWidth::kB1);
  kb.end_pred();
  row.read_is_n = kb.setp(Cmp::kEq, DType::kI64, row.rchar, imm_i64('N'));

  // LUT lookups (predicated on the row existing).
  const VReg err = kb.mov(imm_f32(0.0F));
  const VReg err3 = kb.mov(imm_f32(0.0F));
  const VReg ins_p = kb.mov(imm_f32(0.0F));
  const VReg del_p = kb.mov(imm_f32(0.0F));
  kb.begin_pred(row.row_valid);
  kb.ldg_to(err, kb.iadd(p.err_lut, kb.imul(base_q, imm_i64(4))));
  kb.ldg_to(err3, kb.iadd(p.err3_lut, kb.imul(base_q, imm_i64(4))));
  kb.ldg_to(ins_p, kb.iadd(p.err_lut, kb.imul(ins_q, imm_i64(4))));
  kb.ldg_to(del_p, kb.iadd(p.err_lut, kb.imul(del_q, imm_i64(4))));
  kb.end_pred();

  // Same f32 operations as align::transitions_for so cells match the
  // host reference exactly.
  row.fields[kPriorMatch] = kb.fsub(imm_f32(1.0F), err);
  row.fields[kPriorMismatch] = err3;
  row.fields[kTransMM] = kb.fsub(
      imm_f32(1.0F), kb.fmin(kb.fadd(ins_p, del_p), imm_f32(1.0F)));
  row.fields[kTransIM] = kb.mov(p.gcp_comp);
  row.fields[kTransMI] = ins_p;
  row.fields[kTransII] = kb.mov(p.gcp_prob);
  row.fields[kTransMD] = del_p;
  row.fields[kTransDD] = kb.mov(p.gcp_prob);
  return row;
}

/// Loads one haplotype character under `valid` (pre-initialized for
/// inactive lanes).
VReg emit_hap_load(KernelBuilder& kb, const PhParams& p, VReg j, VReg valid) {
  const VReg hchar = kb.mov(imm_i64(0));
  kb.begin_pred(valid);
  kb.ldg_to(hchar, kb.iadd(p.haps, j), 0, MemWidth::kB1);
  kb.end_pred();
  return hchar;
}

/// Emission prior for one cell given its already-loaded hap character.
VReg emit_prior(KernelBuilder& kb, const RowState& row, VReg hchar) {
  const VReg h_is_n = kb.setp(Cmp::kEq, DType::kI64, hchar, imm_i64('N'));
  const VReg eq = kb.setp(Cmp::kEq, DType::kI64, row.rchar, hchar);
  const VReg match = kb.ior(eq, kb.ior(row.read_is_n, h_is_n));
  return kb.selp(match, row.fields[kPriorMatch], row.fields[kPriorMismatch]);
}

/// Emits the Eq. 6 cell update given resolved neighbour values; returns
/// (m_cur, i_cur, d_cur). Multiplications and additions are kept separate
/// (no FMA contraction) to track the host reference's f32 rounding.
struct CellValues {
  VReg m;
  VReg i;
  VReg d;
};

CellValues emit_cell(KernelBuilder& kb, const RowState& row, VReg prior, VReg m_diag,
                     VReg i_diag, VReg d_diag, VReg m_up, VReg i_up, VReg m_left,
                     VReg d_left) {
  CellValues out;
  const VReg id_sum = kb.fadd(i_diag, d_diag);
  const VReg m_term = kb.fadd(kb.fmul(m_diag, row.fields[kTransMM]),
                              kb.fmul(id_sum, row.fields[kTransIM]));
  out.m = kb.fmul(prior, m_term);
  out.i = kb.fadd(kb.fmul(m_up, row.fields[kTransMI]),
                  kb.fmul(i_up, row.fields[kTransII]));
  out.d = kb.fadd(kb.fmul(m_left, row.fields[kTransMD]),
                  kb.fmul(d_left, row.fields[kTransDD]));
  return out;
}

}  // namespace

simt::Kernel build_ph_shared_kernel(int threads_per_block) {
  util::require(threads_per_block > 0 && threads_per_block % 32 == 0 &&
                    threads_per_block <= kPhMaxReadLen,
                "build_ph_shared_kernel: threads must be a multiple of 32 in [32, 128]");
  KernelBuilder kb("ph1_shared_t" + std::to_string(threads_per_block),
                   threads_per_block);
  const PhParams p = declare_params(kb);

  // Nine rotating line buffers: {current, -1, -2} per DP matrix.
  std::array<int, 9> buf_off{};
  for (auto& off : buf_off) {
    off = kb.alloc_smem(threads_per_block * 4);
  }
  std::array<SReg, 3> smb{};  // M buffers: [0]=current, [1]=s-1, [2]=s-2
  std::array<SReg, 3> sib{};
  std::array<SReg, 3> sdb{};
  for (int r = 0; r < 3; ++r) {
    smb[static_cast<std::size_t>(r)] = kb.smov(imm_i64(buf_off[static_cast<std::size_t>(r)]));
    sib[static_cast<std::size_t>(r)] = kb.smov(imm_i64(buf_off[static_cast<std::size_t>(3 + r)]));
    sdb[static_cast<std::size_t>(r)] = kb.smov(imm_i64(buf_off[static_cast<std::size_t>(6 + r)]));
  }

  const VReg tid = kb.tid();
  const VReg own_off = kb.imul(tid, imm_i64(4));
  const VReg nb_off = kb.imul(kb.isub(tid, imm_i64(1)), imm_i64(4));
  const VReg is_t0 = kb.setp(Cmp::kEq, DType::kI64, tid, imm_i64(0));
  const VReg not_t0 = kb.setp(Cmp::kGt, DType::kI64, tid, imm_i64(0));
  const SReg r1 = kb.ssub(p.r, imm_i64(1));
  const VReg ic_over_h = kb.mov(p.ic_over_h);

  const RowState row = load_row(kb, p, tid, r1);

  // Lane-local left-neighbour state (M(i, j-1), D(i, j-1)) and the
  // last-row accumulator.
  const VReg m_left = kb.mov(imm_f32(0.0F));
  const VReg d_left = kb.mov(imm_f32(0.0F));
  const VReg acc = kb.mov(imm_f32(0.0F));

  const SReg step = kb.smov(imm_i64(0));
  kb.loop(p.steps);
  {
    const VReg j = kb.isub(step, tid);
    const VReg valid = kb.iand(
        kb.iand(kb.setp(Cmp::kGe, DType::kI64, j, imm_i64(0)),
                kb.setp(Cmp::kLt, DType::kI64, j, p.h)),
        row.row_valid);
    const VReg is_c0 = kb.setp(Cmp::kEq, DType::kI64, j, imm_i64(0));

    const VReg prior = emit_prior(kb, row, emit_hap_load(kb, p, j, valid));

    // LOAD phase: neighbour values from the s-1 / s-2 line buffers.
    const VReg m_diag_raw = kb.mov(imm_f32(0.0F));
    const VReg i_diag_raw = kb.mov(imm_f32(0.0F));
    const VReg d_diag_raw = kb.mov(imm_f32(0.0F));
    const VReg m_up_raw = kb.mov(imm_f32(0.0F));
    const VReg i_up_raw = kb.mov(imm_f32(0.0F));
    const VReg valid_nb = kb.iand(valid, not_t0);
    kb.begin_pred(valid_nb);
    kb.lds_to(m_diag_raw, kb.iadd(smb[2], nb_off));
    kb.lds_to(i_diag_raw, kb.iadd(sib[2], nb_off));
    kb.lds_to(d_diag_raw, kb.iadd(sdb[2], nb_off));
    kb.lds_to(m_up_raw, kb.iadd(smb[1], nb_off));
    kb.lds_to(i_up_raw, kb.iadd(sib[1], nb_off));
    kb.end_pred();

    // DP boundaries: row 0 has M = I = 0 and D = IC/|hap|; column 0 is
    // all zeros.
    const VReg zero_mi = kb.ior(is_t0, is_c0);
    const VReg m_diag = kb.selp(zero_mi, imm_f32(0.0F), m_diag_raw);
    const VReg i_diag = kb.selp(zero_mi, imm_f32(0.0F), i_diag_raw);
    const VReg d_diag =
        kb.selp(is_t0, ic_over_h, kb.selp(is_c0, imm_f32(0.0F), d_diag_raw));
    const VReg m_up = kb.selp(is_t0, imm_f32(0.0F), m_up_raw);
    const VReg i_up = kb.selp(is_t0, imm_f32(0.0F), i_up_raw);
    const VReg m_left_v = kb.selp(is_c0, imm_f32(0.0F), m_left);
    const VReg d_left_v = kb.selp(is_c0, imm_f32(0.0F), d_left);

    const CellValues cur = emit_cell(kb, row, prior, m_diag, i_diag, d_diag, m_up,
                                     i_up, m_left_v, d_left_v);

    // Last-row accumulation of M + I (the likelihood numerator).
    const VReg at_lastrow = kb.iand(valid, row.is_lastrow);
    kb.begin_pred(at_lastrow);
    kb.emit_to(acc, Op::kFAdd, acc, kb.fadd(cur.m, cur.i));
    kb.end_pred();

    // WRITE phase: current anti-diagonal into the `current` buffers.
    kb.begin_pred(valid);
    kb.sts(kb.iadd(smb[0], own_off), cur.m);
    kb.sts(kb.iadd(sib[0], own_off), cur.i);
    kb.sts(kb.iadd(sdb[0], own_off), cur.d);
    kb.end_pred();

    kb.assign(m_left, cur.m);
    kb.assign(d_left, cur.d);

    // ROTATE: cur -> s-1 -> s-2 for all three matrices, then SYNC.
    for (auto* bufs : {&smb, &sib, &sdb}) {
      const SReg tmp = kb.smov((*bufs)[2]);
      kb.sassign((*bufs)[2], (*bufs)[1]);
      kb.sassign((*bufs)[1], (*bufs)[0]);
      kb.sassign((*bufs)[0], tmp);
    }
    kb.bar();

    kb.sassign(step, kb.sadd(step, imm_i64(1)));
  }
  kb.endloop();

  kb.begin_pred(row.is_lastrow);
  kb.stg(p.result, acc);
  kb.end_pred();

  return kb.build();
}

simt::Kernel build_ph_hybrid_kernel(int threads_per_block) {
  util::require(threads_per_block > 0 && threads_per_block % 32 == 0 &&
                    threads_per_block <= kPhMaxReadLen,
                "build_ph_hybrid_kernel: threads must be a multiple of 32 in [32, 128]");
  KernelBuilder kb("ph_hybrid_t" + std::to_string(threads_per_block),
                   threads_per_block);
  const PhParams p = declare_params(kb);
  const int warps = threads_per_block / 32;

  // Warp-boundary exchange buffers: lane 31 of each warp publishes its
  // M/I/D so the next warp's lane 0 can read them. Three-deep rotation
  // (current, s-1, s-2) per matrix.
  std::array<SReg, 3> smb{};
  std::array<SReg, 3> sib{};
  std::array<SReg, 3> sdb{};
  for (int r = 0; r < 3; ++r) {
    smb[static_cast<std::size_t>(r)] = kb.smov(imm_i64(kb.alloc_smem(warps * 4)));
    sib[static_cast<std::size_t>(r)] = kb.smov(imm_i64(kb.alloc_smem(warps * 4)));
    sdb[static_cast<std::size_t>(r)] = kb.smov(imm_i64(kb.alloc_smem(warps * 4)));
  }

  const VReg tid = kb.tid();
  const VReg lane = kb.laneid();
  const VReg wid = kb.warpid();
  const VReg is_t0 = kb.setp(Cmp::kEq, DType::kI64, tid, imm_i64(0));
  const VReg is_lane0 = kb.setp(Cmp::kEq, DType::kI64, lane, imm_i64(0));
  const VReg is_lane31 = kb.setp(Cmp::kEq, DType::kI64, lane, imm_i64(31));
  const VReg lane0_interior = kb.iand(is_lane0, kb.setp(Cmp::kGt, DType::kI64, tid,
                                                        imm_i64(0)));
  const VReg own_slot = kb.imul(wid, imm_i64(4));
  const VReg nb_slot = kb.imul(kb.isub(wid, imm_i64(1)), imm_i64(4));
  const SReg r1 = kb.ssub(p.r, imm_i64(1));
  const VReg ic_over_h = kb.mov(p.ic_over_h);
  const VReg acc = kb.mov(imm_f32(0.0F));

  const RowState row = load_row(kb, p, tid, r1);

  const VReg m_prev = kb.mov(imm_f32(0.0F));
  const VReg m_pprev = kb.mov(imm_f32(0.0F));
  const VReg i_prev = kb.mov(imm_f32(0.0F));
  const VReg i_pprev = kb.mov(imm_f32(0.0F));
  const VReg d_prev = kb.mov(imm_f32(0.0F));
  const VReg d_pprev = kb.mov(imm_f32(0.0F));

  const SReg step = kb.smov(imm_i64(0));
  kb.loop(p.steps);
  {
    const VReg j = kb.isub(step, tid);
    const VReg valid = kb.iand(
        kb.iand(kb.setp(Cmp::kGe, DType::kI64, j, imm_i64(0)),
                kb.setp(Cmp::kLt, DType::kI64, j, p.h)),
        row.row_valid);
    const VReg is_c0 = kb.setp(Cmp::kEq, DType::kI64, j, imm_i64(0));

    const VReg prior = emit_prior(kb, row, emit_hap_load(kb, p, j, valid));

    // Intra-warp communication: shuffles, exactly as in PH2.
    const VReg m_diag_raw = kb.shfl_up(m_pprev, imm_i64(1));
    const VReg i_diag_raw = kb.shfl_up(i_pprev, imm_i64(1));
    const VReg d_diag_raw = kb.shfl_up(d_pprev, imm_i64(1));
    const VReg m_up_raw = kb.shfl_up(m_prev, imm_i64(1));
    const VReg i_up_raw = kb.shfl_up(i_prev, imm_i64(1));

    // Cross-warp communication: lane 0 of interior warps reads the
    // previous warp's published boundary values — the extra shared-memory
    // traffic the paper warns about.
    const VReg m_diag_s = kb.mov(imm_f32(0.0F));
    const VReg i_diag_s = kb.mov(imm_f32(0.0F));
    const VReg d_diag_s = kb.mov(imm_f32(0.0F));
    const VReg m_up_s = kb.mov(imm_f32(0.0F));
    const VReg i_up_s = kb.mov(imm_f32(0.0F));
    const VReg cross = kb.iand(valid, lane0_interior);
    kb.begin_pred(cross);
    kb.lds_to(m_diag_s, kb.iadd(smb[2], nb_slot));
    kb.lds_to(i_diag_s, kb.iadd(sib[2], nb_slot));
    kb.lds_to(d_diag_s, kb.iadd(sdb[2], nb_slot));
    kb.lds_to(m_up_s, kb.iadd(smb[1], nb_slot));
    kb.lds_to(i_up_s, kb.iadd(sib[1], nb_slot));
    kb.end_pred();

    const VReg m_diag_m = kb.selp(is_lane0, m_diag_s, m_diag_raw);
    const VReg i_diag_m = kb.selp(is_lane0, i_diag_s, i_diag_raw);
    const VReg d_diag_m = kb.selp(is_lane0, d_diag_s, d_diag_raw);
    const VReg m_up_m = kb.selp(is_lane0, m_up_s, m_up_raw);
    const VReg i_up_m = kb.selp(is_lane0, i_up_s, i_up_raw);

    // Row-0 / column-0 DP boundaries (as in PH1/PH2).
    const VReg zero_mi = kb.ior(is_t0, is_c0);
    const VReg m_diag = kb.selp(zero_mi, imm_f32(0.0F), m_diag_m);
    const VReg i_diag = kb.selp(zero_mi, imm_f32(0.0F), i_diag_m);
    const VReg d_diag =
        kb.selp(is_t0, ic_over_h, kb.selp(is_c0, imm_f32(0.0F), d_diag_m));
    const VReg m_up = kb.selp(is_t0, imm_f32(0.0F), m_up_m);
    const VReg i_up = kb.selp(is_t0, imm_f32(0.0F), i_up_m);
    const VReg m_left_v = kb.selp(is_c0, imm_f32(0.0F), m_prev);
    const VReg d_left_v = kb.selp(is_c0, imm_f32(0.0F), d_prev);

    const CellValues cur = emit_cell(kb, row, prior, m_diag, i_diag, d_diag, m_up,
                                     i_up, m_left_v, d_left_v);

    const VReg at_lastrow = kb.iand(valid, row.is_lastrow);
    kb.begin_pred(at_lastrow);
    kb.emit_to(acc, Op::kFAdd, acc, kb.fadd(cur.m, cur.i));
    kb.end_pred();

    // Publish this warp's boundary row (lane 31) for the next warp.
    const VReg publish = kb.iand(valid, is_lane31);
    kb.begin_pred(publish);
    kb.sts(kb.iadd(smb[0], own_slot), cur.m);
    kb.sts(kb.iadd(sib[0], own_slot), cur.i);
    kb.sts(kb.iadd(sdb[0], own_slot), cur.d);
    kb.end_pred();

    // Register rotation (PH2-style) ...
    kb.assign(m_pprev, m_prev);
    kb.assign(m_prev, cur.m);
    kb.assign(i_pprev, i_prev);
    kb.assign(i_prev, cur.i);
    kb.assign(d_pprev, d_prev);
    kb.assign(d_prev, cur.d);

    // ... plus the buffer rotation AND a barrier every step — the costs
    // that make this design lose to the one-warp compromise.
    for (auto* bufs : {&smb, &sib, &sdb}) {
      const SReg tmp = kb.smov((*bufs)[2]);
      kb.sassign((*bufs)[2], (*bufs)[1]);
      kb.sassign((*bufs)[1], (*bufs)[0]);
      kb.sassign((*bufs)[0], tmp);
    }
    kb.bar();

    kb.sassign(step, kb.sadd(step, imm_i64(1)));
  }
  kb.endloop();

  kb.begin_pred(row.is_lastrow);
  kb.stg(p.result, acc);
  kb.end_pred();

  return kb.build();
}

simt::Kernel build_ph_shuffle_kernel(int cells_per_thread) {
  util::require(cells_per_thread >= 1 && cells_per_thread <= kPhVariants,
                "build_ph_shuffle_kernel: cells_per_thread must be in [1, 4]");
  const int cells = cells_per_thread;
  KernelBuilder kb("ph2_shuffle_c" + std::to_string(cells), 32);
  const PhParams p = declare_params(kb);

  const VReg tid = kb.tid();
  const VReg is_t0 = kb.setp(Cmp::kEq, DType::kI64, tid, imm_i64(0));
  const SReg r1 = kb.ssub(p.r, imm_i64(1));
  const VReg ic_over_h = kb.mov(p.ic_over_h);
  const VReg acc = kb.mov(imm_f32(0.0F));

  // Per-cell row state and DP registers: the register blocking of Fig. 8.
  std::vector<RowState> rows;
  std::vector<VReg> m_prev(static_cast<std::size_t>(cells));
  std::vector<VReg> m_pprev(static_cast<std::size_t>(cells));
  std::vector<VReg> i_prev(static_cast<std::size_t>(cells));
  std::vector<VReg> i_pprev(static_cast<std::size_t>(cells));
  std::vector<VReg> d_prev(static_cast<std::size_t>(cells));
  std::vector<VReg> d_pprev(static_cast<std::size_t>(cells));
  const VReg first_row = kb.imul(tid, imm_i64(cells));
  for (int k = 0; k < cells; ++k) {
    const VReg row_index = kb.iadd(first_row, imm_i64(k));
    rows.push_back(load_row(kb, p, row_index, r1));
    const auto ks = static_cast<std::size_t>(k);
    m_prev[ks] = kb.mov(imm_f32(0.0F));
    m_pprev[ks] = kb.mov(imm_f32(0.0F));
    i_prev[ks] = kb.mov(imm_f32(0.0F));
    i_pprev[ks] = kb.mov(imm_f32(0.0F));
    d_prev[ks] = kb.mov(imm_f32(0.0F));
    d_pprev[ks] = kb.mov(imm_f32(0.0F));
  }

  const SReg step = kb.smov(imm_i64(0));
  kb.loop(p.steps);
  {
    std::vector<CellValues> cur(static_cast<std::size_t>(cells));

    // LOAD phase first: issue every cell's haplotype load before any
    // dependent compute so the loads pipeline instead of serializing.
    std::vector<VReg> js(static_cast<std::size_t>(cells));
    std::vector<VReg> valids(static_cast<std::size_t>(cells));
    std::vector<VReg> hchars(static_cast<std::size_t>(cells));
    for (int k = 0; k < cells; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      const VReg row_index = kb.iadd(first_row, imm_i64(k));
      js[ks] = kb.isub(step, row_index);
      valids[ks] = kb.iand(
          kb.iand(kb.setp(Cmp::kGe, DType::kI64, js[ks], imm_i64(0)),
                  kb.setp(Cmp::kLt, DType::kI64, js[ks], p.h)),
          rows[ks].row_valid);
      hchars[ks] = emit_hap_load(kb, p, js[ks], valids[ks]);
    }

    // COMPUTE phase: all cells read old state (including the shuffled
    // boundary values) before any state is rotated.
    for (int k = 0; k < cells; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      const RowState& row = rows[ks];
      const VReg row_index = kb.iadd(first_row, imm_i64(k));
      const VReg j = js[ks];
      const VReg valid = valids[ks];
      const VReg is_c0 = kb.setp(Cmp::kEq, DType::kI64, j, imm_i64(0));

      const VReg prior = emit_prior(kb, row, hchars[ks]);

      VReg m_diag_raw{};
      VReg i_diag_raw{};
      VReg d_diag_raw{};
      VReg m_up_raw{};
      VReg i_up_raw{};
      VReg boundary_pred{};  // lanes whose upper row is outside this thread
      if (k == 0) {
        // Inter-thread communication between boundary cells only: the
        // upper row lives in lane-1's last cell.
        const auto last = static_cast<std::size_t>(cells - 1);
        m_diag_raw = kb.shfl_up(m_pprev[last], imm_i64(1));
        i_diag_raw = kb.shfl_up(i_pprev[last], imm_i64(1));
        d_diag_raw = kb.shfl_up(d_pprev[last], imm_i64(1));
        m_up_raw = kb.shfl_up(m_prev[last], imm_i64(1));
        i_up_raw = kb.shfl_up(i_prev[last], imm_i64(1));
        boundary_pred = is_t0;
      } else {
        // Direct register access: the upper row is this thread's cell k-1.
        const auto up = static_cast<std::size_t>(k - 1);
        m_diag_raw = m_pprev[up];
        i_diag_raw = i_pprev[up];
        d_diag_raw = d_pprev[up];
        m_up_raw = m_prev[up];
        i_up_raw = i_prev[up];
        boundary_pred = kb.setp(Cmp::kEq, DType::kI64, row_index, imm_i64(0));
      }

      // Row-0 / column-0 boundaries (row 0 exists only above lane 0's
      // first cell; for k > 0 boundary_pred is never true since
      // row_index > 0, but the select keeps the IR uniform).
      const VReg zero_mi = kb.ior(boundary_pred, is_c0);
      const VReg m_diag = kb.selp(zero_mi, imm_f32(0.0F), m_diag_raw);
      const VReg i_diag = kb.selp(zero_mi, imm_f32(0.0F), i_diag_raw);
      const VReg d_diag = kb.selp(boundary_pred, ic_over_h,
                                  kb.selp(is_c0, imm_f32(0.0F), d_diag_raw));
      const VReg m_up = kb.selp(boundary_pred, imm_f32(0.0F), m_up_raw);
      const VReg i_up = kb.selp(boundary_pred, imm_f32(0.0F), i_up_raw);
      const VReg m_left_v = kb.selp(is_c0, imm_f32(0.0F), m_prev[ks]);
      const VReg d_left_v = kb.selp(is_c0, imm_f32(0.0F), d_prev[ks]);

      cur[ks] = emit_cell(kb, row, prior, m_diag, i_diag, d_diag, m_up, i_up,
                          m_left_v, d_left_v);

      const VReg at_lastrow = kb.iand(valid, row.is_lastrow);
      kb.begin_pred(at_lastrow);
      kb.emit_to(acc, Op::kFAdd, acc, kb.fadd(cur[ks].m, cur[ks].i));
      kb.end_pred();
    }

    // ROTATE phase: registers only — the paper's design B state update.
    for (int k = 0; k < cells; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      kb.assign(m_pprev[ks], m_prev[ks]);
      kb.assign(m_prev[ks], cur[ks].m);
      kb.assign(i_pprev[ks], i_prev[ks]);
      kb.assign(i_prev[ks], cur[ks].i);
      kb.assign(d_pprev[ks], d_prev[ks]);
      kb.assign(d_prev[ks], cur[ks].d);
    }

    kb.sassign(step, kb.sadd(step, imm_i64(1)));
  }
  kb.endloop();

  // Exactly one (lane, cell) pair owns the last row; it writes the result.
  for (int k = 0; k < cells; ++k) {
    kb.begin_pred(rows[static_cast<std::size_t>(k)].is_lastrow);
    kb.stg(p.result, acc);
    kb.end_pred();
  }

  return kb.build();
}

}  // namespace wsim::kernels
