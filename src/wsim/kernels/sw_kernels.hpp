#pragma once

#include <cstdint>
#include <vector>

#include "wsim/align/smith_waterman.hpp"
#include "wsim/kernels/common.hpp"
#include "wsim/simt/isa.hpp"
#include "wsim/simt/runtime.hpp"
#include "wsim/workload/batching.hpp"

namespace wsim::simt {
class ExecutionEngine;
}  // namespace wsim::simt

namespace wsim::kernels {

/// BSIZE of the paper's two-level tiling: rows per band, threads per
/// block, and the side of the shared-memory btrack tile. The paper finds
/// 32 to perform best and we fix it (one warp per block).
inline constexpr int kSwBsize = 32;

/// Builds the Smith-Waterman kernel for one communication design:
///
/// * design A (kSharedMemory, "SW1"): three rotating H line buffers plus
///   vertical-gap (F) and gap-length (kv) double buffers in shared memory,
///   a BSIZE x BSIZE shared-memory staging tile for the backtrace matrix,
///   and a __syncthreads per anti-diagonal (paper Listing 2a / Fig. 7).
/// * design B (kShuffle, "SW2"): anti-diagonal state lives in registers
///   (reg1-reg3 of Fig. 6b plus F/kv), neighbours are read with
///   __shfl_up, no barriers, no shared memory.
///
/// One block processes one alignment task: the row dimension is tiled
/// into BSIZE-row bands processed sequentially; band-boundary rows are
/// carried through global memory (coarse tiling of Fig. 7a). Outputs per
/// task: the full btrack matrix, the H values of the last row and last
/// column (for the HaplotypeCaller max search), written to global memory.
///
/// Scalar parameters, in order: query base, target base, M, N, btrack
/// base, boundary-H base, boundary-F base, boundary-kv base, last-column
/// base, last-row base, number of bands, tiles per band.
/// `bsize` is the tiling/block size: design A accepts multiples of 32 up
/// to 96 (multi-warp blocks, one __syncthreads per step); design B is
/// structurally limited to 32 because shuffle cannot cross warps.
simt::Kernel build_sw_kernel(CommMode mode, const align::SwParams& params,
                             int bsize = kSwBsize);

/// Wavefront iterations one block executes for an M x N task:
/// ceil(M/BSIZE) bands x ceil((N+BSIZE-1)/BSIZE) tiles x BSIZE steps.
/// The denominator of the paper's per-iteration latency (Table II).
std::size_t sw_iterations(std::size_t m, std::size_t n,
                          int bsize = kSwBsize) noexcept;

/// Everything read back from the device for one task.
struct SwTaskOutput {
  std::int32_t best_score = 0;
  std::size_t best_i = 0;
  std::size_t best_j = 0;
  align::SwAlignment alignment;
  align::Matrix<std::int32_t> btrack;  ///< (M+1) x (N+1), reference layout
};

struct SwBatchResult {
  KernelRunResult run;
  std::vector<SwTaskOutput> outputs;  ///< filled only when collect_outputs
};

struct SwRunOptions {
  /// Read device results back and backtrace on the host. Requires
  /// ExecMode::kFull.
  bool collect_outputs = false;
  simt::ExecMode mode = simt::ExecMode::kFull;
  /// Shape-cache quantization for kCachedByShape (see kernels::shape_key).
  std::size_t shape_granularity = kSwBsize;
  simt::BlockCostCache* cost_cache = nullptr;
  /// Memoize block costs in the executing engine's persistent cache
  /// instead of `cost_cache` (see simt::LaunchOptions::use_engine_cache).
  bool use_engine_cache = false;
  /// Overlap PCIe copies with kernel execution (CUDA streams).
  bool overlap_transfers = false;
  /// Record the first block's instruction timeline (simt::Trace).
  simt::Trace* trace_representative = nullptr;
  /// Engine that executes the launch; null means the process-wide
  /// simt::shared_engine().
  simt::ExecutionEngine* engine = nullptr;
  /// Deterministic SDC injection (requires kFull; see simt/sdc.hpp).
  simt::SdcPlan sdc;
  /// Launch id for SDC stream derivation; re-executions pass a fresh id.
  std::uint64_t sdc_launch_id = 0;
  /// Watchdog cycle budget per block (simt::LaunchOptions::max_block_cycles).
  long long max_block_cycles = 0;
  /// Interpreter selection (simt::LaunchOptions::interp).
  simt::InterpPath interp = simt::InterpPath::kDefault;
};

/// Host-side driver: packs a batch into device memory (one task per
/// block), launches, and optionally reads back/backtraces.
class SwRunner {
 public:
  explicit SwRunner(CommMode mode, const align::SwParams& params = {},
                    int bsize = kSwBsize);

  const simt::Kernel& kernel() const noexcept { return kernel_; }
  CommMode comm_mode() const noexcept { return mode_; }
  const align::SwParams& params() const noexcept { return params_; }

  SwBatchResult run_batch(const simt::DeviceSpec& device,
                          const workload::SwBatch& batch,
                          const SwRunOptions& options = {}) const;

  int bsize() const noexcept { return bsize_; }

 private:
  CommMode mode_;
  align::SwParams params_;
  int bsize_;
  simt::Kernel kernel_;
};

}  // namespace wsim::kernels
