#include <bit>
#include <cmath>

#include "wsim/kernels/ph_kernels.hpp"
#include "wsim/simt/engine.hpp"
#include "wsim/util/check.hpp"

namespace wsim::kernels {

PhRunner::PhRunner(CommMode mode)
    : PhRunner(mode == CommMode::kSharedMemory ? PhDesign::kShared
                                               : PhDesign::kShuffle) {}

PhRunner::PhRunner(PhDesign design) : design_(design) {
  for (int v = 0; v < kPhVariants; ++v) {
    simt::Kernel kernel;
    switch (design) {
      case PhDesign::kShared:
        kernel = build_ph_shared_kernel(32 * (v + 1));
        break;
      case PhDesign::kShuffle:
        kernel = build_ph_shuffle_kernel(v + 1);
        break;
      case PhDesign::kHybrid:
        kernel = build_ph_hybrid_kernel(32 * (v + 1));
        break;
    }
    kernels_[static_cast<std::size_t>(v)] = std::move(kernel);
  }
}

int PhRunner::variant_for_read_len(std::size_t read_len) {
  util::require(read_len >= 1 && read_len <= kPhMaxReadLen,
                "PhRunner: read length must be in [1, 128]");
  return static_cast<int>((read_len - 1) / 32);
}

const simt::Kernel& PhRunner::kernel_for_read_len(std::size_t read_len) const {
  return kernels_[static_cast<std::size_t>(variant_for_read_len(read_len))];
}

PhBatchResult PhRunner::run_batch(const simt::DeviceSpec& device,
                                  const workload::PhBatch& batch,
                                  const PhRunOptions& options) const {
  util::require(!batch.empty(), "PhRunner: batch must be non-empty");
  util::require(!options.collect_outputs || options.mode == simt::ExecMode::kFull,
                "PhRunner: collect_outputs requires ExecMode::kFull");

  // Launch-time routing: bucket tasks by read length (the paper's
  // length-specialized kernel copies / subfunctions).
  std::array<std::vector<std::size_t>, kPhVariants> groups;
  for (std::size_t t = 0; t < batch.size(); ++t) {
    align::validate(batch[t]);
    groups[static_cast<std::size_t>(variant_for_read_len(batch[t].read.size()))]
        .push_back(t);
  }

  simt::GlobalMemory gmem;
  std::vector<std::int64_t> result_addr(batch.size(), 0);

  // Device-resident quality lookup tables (transferred once per launch):
  // err[q] = 10^(-q/10) and err3[q] = err[q] / 3, exactly the values the
  // host reference derives per row.
  constexpr int kQualLutSize = 256;
  std::vector<float> err_lut(kQualLutSize);
  std::vector<float> err3_lut(kQualLutSize);
  for (int q = 0; q < kQualLutSize; ++q) {
    err_lut[static_cast<std::size_t>(q)] =
        align::qual_to_error_prob(static_cast<std::uint8_t>(q));
    err3_lut[static_cast<std::size_t>(q)] =
        err_lut[static_cast<std::size_t>(q)] / 3.0F;
  }
  const auto err_lut_addr = gmem.alloc(kQualLutSize * 4);
  const auto err3_lut_addr = gmem.alloc(kQualLutSize * 4);
  gmem.write_f32(err_lut_addr, err_lut);
  gmem.write_f32(err3_lut_addr, err3_lut);
  const std::size_t lut_bytes = 2 * kQualLutSize * 4;

  simt::ExecutionEngine& engine =
      options.engine != nullptr ? *options.engine : simt::shared_engine();
  PhBatchResult result;
  result.run.cells = 0;
  result.run.launch.transfers_overlapped = options.overlap_transfers;
  std::size_t primary_cells = 0;
  bool luts_counted = false;

  for (int v = 0; v < kPhVariants; ++v) {
    const auto& group = groups[static_cast<std::size_t>(v)];
    if (group.empty()) {
      continue;
    }
    const simt::Kernel& kernel = kernels_[static_cast<std::size_t>(v)];

    std::vector<simt::BlockLaunch> blocks;
    blocks.reserve(group.size());
    std::size_t h2d_bytes = 0;
    std::size_t group_cells = 0;

    for (const std::size_t t : group) {
      const align::PairHmmTask& task = batch[t];
      const std::size_t r = task.read.size();
      const std::size_t h = task.hap.size();
      group_cells += r * h;

      // Pack the raw quality bytes (4 B/row: base, ins, del, padding);
      // the kernel prologue derives priors and transitions through the
      // LUTs, so only quality bytes cross PCIe.
      std::vector<std::uint8_t> quals(r * 4, 0);
      for (std::size_t i = 0; i < r; ++i) {
        quals[i * 4 + 0] = task.base_quals[i];
        quals[i * 4 + 1] = task.ins_quals[i];
        quals[i * 4 + 2] = task.del_quals[i];
      }
      const auto quals_addr = gmem.alloc(quals.size());
      gmem.write_u8(quals_addr, quals);
      const auto read_addr = gmem.alloc(r);
      gmem.write_u8(read_addr,
                    {reinterpret_cast<const std::uint8_t*>(task.read.data()), r});
      const auto hap_addr = gmem.alloc(h);
      gmem.write_u8(hap_addr,
                    {reinterpret_cast<const std::uint8_t*>(task.hap.data()), h});
      result_addr[t] = gmem.alloc(4);
      h2d_bytes += quals.size() + r + h;

      const float ic_over_h =
          align::pairhmm_initial_condition() / static_cast<float>(h);
      const float gcp_prob = align::qual_to_error_prob(task.gcp);

      simt::BlockLaunch block;
      block.args = {
          static_cast<std::uint64_t>(quals_addr),
          static_cast<std::uint64_t>(read_addr),
          static_cast<std::uint64_t>(hap_addr),
          static_cast<std::uint64_t>(r),
          static_cast<std::uint64_t>(h),
          static_cast<std::uint64_t>(r + h - 1),
          static_cast<std::uint64_t>(result_addr[t]),
          std::bit_cast<std::uint32_t>(ic_over_h),
          static_cast<std::uint64_t>(err_lut_addr),
          static_cast<std::uint64_t>(err3_lut_addr),
          std::bit_cast<std::uint32_t>(gcp_prob),
          std::bit_cast<std::uint32_t>(1.0F - gcp_prob),
      };
      block.shape_key = shape_key(r, h, options.shape_granularity);
      blocks.push_back(std::move(block));
    }

    simt::LaunchOptions launch_options;
    launch_options.mode = options.mode;
    launch_options.use_engine_cache = options.use_engine_cache;
    launch_options.overlap_transfers = options.overlap_transfers;
    if (options.cost_caches != nullptr && !options.use_engine_cache) {
      launch_options.cost_cache =
          &options.cost_caches->per_variant[static_cast<std::size_t>(v)];
    }
    if (!luts_counted) {
      h2d_bytes += lut_bytes;
      luts_counted = true;
    }
    launch_options.transfer.h2d_bytes = h2d_bytes;
    launch_options.transfer.d2h_bytes = group.size() * 4;
    launch_options.sdc = options.sdc;
    // Each variant launch gets its own sub-launch id so its blocks draw
    // from SDC streams disjoint from the other variants'.
    launch_options.sdc_launch_id =
        simt::sdc_sub_launch(options.sdc_launch_id, static_cast<std::uint64_t>(v));
    launch_options.max_block_cycles = options.max_block_cycles;
    launch_options.interp = options.interp;

    const simt::LaunchResult launch =
        engine.launch(kernel, device, gmem, blocks, launch_options);

    // Aggregate across variant launches.
    result.run.cells += group_cells;
    result.run.launch.kernel_seconds += launch.kernel_seconds;
    result.run.launch.h2d_seconds += launch.h2d_seconds;
    result.run.launch.d2h_seconds += launch.d2h_seconds;
    result.run.launch.transfer_seconds += launch.transfer_seconds;
    result.run.launch.overhead_seconds += launch.overhead_seconds;
    result.run.launch.instructions += launch.instructions;
    result.run.launch.smem_transactions += launch.smem_transactions;
    result.run.launch.blocks_executed += launch.blocks_executed;
    result.run.launch.sdc_flips += launch.sdc_flips;
    result.run.launch.timing.cycles += launch.timing.cycles;
    result.run.launch.timing.seconds += launch.timing.seconds;
    if (group_cells > primary_cells) {
      primary_cells = group_cells;
      result.primary_variant = v;
      result.run.launch.occupancy = launch.occupancy;
      result.run.launch.representative = launch.representative;
      const align::PairHmmTask& first = batch[group.front()];
      result.representative_iterations = ph_iterations(first.read.size(), first.hap.size());
      result.representative_cells = first.read.size() * first.hap.size();
    }
  }

  if (options.collect_outputs) {
    result.log10.resize(batch.size());
    const double log10_ic =
        std::log10(static_cast<double>(align::pairhmm_initial_condition()));
    for (std::size_t t = 0; t < batch.size(); ++t) {
      const float sum = gmem.read_f32_one(result_addr[t]);
      if (sum > 0.0F) {
        result.log10[t] = std::log10(static_cast<double>(sum)) - log10_ic;
      } else if (options.double_fallback) {
        // GATK's rescue path: redo the underflowed task in double on the
        // host.
        result.log10[t] = align::pairhmm_log10_double(batch[t]);
      } else {
        throw util::CheckError(
            "PhRunner: device likelihood underflowed to zero (enable "
            "double_fallback for GATK-style rescue)");
      }
    }
  }
  return result;
}

}  // namespace wsim::kernels
