#include "wsim/kernels/common.hpp"

namespace wsim::kernels {

std::string_view to_string(CommMode mode) noexcept {
  switch (mode) {
    case CommMode::kSharedMemory:
      return "shared";
    case CommMode::kShuffle:
      return "shuffle";
  }
  return "unknown";
}

double KernelRunResult::gcups_total() const noexcept {
  const double seconds = launch.total_seconds();
  return seconds > 0.0 ? static_cast<double>(cells) / seconds / 1e9 : 0.0;
}

double KernelRunResult::gcups_kernel() const noexcept {
  return launch.kernel_seconds > 0.0
             ? static_cast<double>(cells) / launch.kernel_seconds / 1e9
             : 0.0;
}

double KernelRunResult::cycles_per_iteration(std::uint64_t iterations) const noexcept {
  return iterations > 0
             ? static_cast<double>(launch.representative.cycles) /
                   static_cast<double>(iterations)
             : 0.0;
}

std::uint64_t shape_key(std::size_t rows, std::size_t cols,
                        std::size_t granularity) noexcept {
  const std::uint64_t g = granularity == 0 ? 1 : granularity;
  const std::uint64_t r = (rows + g - 1) / g;
  const std::uint64_t c = (cols + g - 1) / g;
  return (r << 32) | (c & 0xffffffffULL);
}

}  // namespace wsim::kernels
