#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/engine.hpp"
#include "wsim/util/check.hpp"

namespace wsim::kernels {

namespace {

/// Device result record transferred back per task (score + compact
/// alignment): what a production integration would copy instead of the
/// full btrack matrix, which stays on the device.
constexpr std::size_t kSwResultBytesPerTask = 64;

std::size_t bands_for(std::size_t m, int bsize) noexcept {
  const auto b = static_cast<std::size_t>(bsize);
  return (m + b - 1) / b;
}

std::size_t tiles_for(std::size_t n, int bsize) noexcept {
  const auto b = static_cast<std::size_t>(bsize);
  return (n + 2 * (b - 1)) / b;  // ceil((N + BSIZE - 1) / BSIZE)
}

}  // namespace

std::size_t sw_iterations(std::size_t m, std::size_t n, int bsize) noexcept {
  return bands_for(m, bsize) * tiles_for(n, bsize) * static_cast<std::size_t>(bsize);
}

SwRunner::SwRunner(CommMode mode, const align::SwParams& params, int bsize)
    : mode_(mode),
      params_(params),
      bsize_(bsize),
      kernel_(build_sw_kernel(mode, params, bsize)) {}

SwBatchResult SwRunner::run_batch(const simt::DeviceSpec& device,
                                  const workload::SwBatch& batch,
                                  const SwRunOptions& options) const {
  util::require(!batch.empty(), "SwRunner: batch must be non-empty");
  util::require(!options.collect_outputs || options.mode == simt::ExecMode::kFull,
                "SwRunner: collect_outputs requires ExecMode::kFull");
  for (const workload::SwTask& task : batch) {
    util::require(!task.query.empty() && !task.target.empty(),
                  "SwRunner: sequences must be non-empty");
  }

  simt::GlobalMemory gmem;
  std::size_t max_m = 0;
  std::size_t max_n = 0;
  for (const workload::SwTask& task : batch) {
    max_m = std::max(max_m, task.query.size());
    max_n = std::max(max_n, task.target.size());
  }

  // Band-boundary carry buffers are block-internal temporaries. Blocks may
  // execute concurrently on the engine's workers, so every block that can
  // execute gets its own set: the first task (or first distinct shape)
  // uses this head set, the rest get replicas allocated at the arena tail
  // below — after the per-task buffers, so all seed addresses are
  // preserved.
  const auto bound_h = gmem.alloc(max_n * 4);
  const auto bound_f = gmem.alloc(max_n * 4);
  const auto bound_kv = gmem.alloc(max_n * 4);

  std::int64_t scratch_btrack = 0;
  std::int64_t scratch_lastcol = 0;
  std::int64_t scratch_lastrow = 0;
  if (!options.collect_outputs) {
    scratch_btrack = gmem.alloc(max_m * max_n * 4);
    scratch_lastcol = gmem.alloc(max_m * 4);
    scratch_lastrow = gmem.alloc(max_n * 4);
  }

  struct TaskBuffers {
    std::int64_t btrack = 0;
    std::int64_t lastcol = 0;
    std::int64_t lastrow = 0;
  };
  std::vector<TaskBuffers> buffers(batch.size());
  std::vector<simt::BlockLaunch> blocks(batch.size());
  std::size_t h2d_bytes = 0;
  std::size_t cells = 0;

  for (std::size_t t = 0; t < batch.size(); ++t) {
    const workload::SwTask& task = batch[t];
    const std::size_t m = task.query.size();
    const std::size_t n = task.target.size();
    cells += m * n;
    h2d_bytes += m + n;

    const auto query = gmem.alloc(m);
    const auto target = gmem.alloc(n);
    gmem.write_u8(query, {reinterpret_cast<const std::uint8_t*>(task.query.data()), m});
    gmem.write_u8(target,
                  {reinterpret_cast<const std::uint8_t*>(task.target.data()), n});

    TaskBuffers& buf = buffers[t];
    if (options.collect_outputs) {
      buf.btrack = gmem.alloc(m * n * 4);
      buf.lastcol = gmem.alloc(m * 4);
      buf.lastrow = gmem.alloc(n * 4);
    } else {
      buf.btrack = scratch_btrack;
      buf.lastcol = scratch_lastcol;
      buf.lastrow = scratch_lastrow;
    }

    simt::BlockLaunch& block = blocks[t];
    block.args = {
        static_cast<std::uint64_t>(query),
        static_cast<std::uint64_t>(target),
        static_cast<std::uint64_t>(m),
        static_cast<std::uint64_t>(n),
        static_cast<std::uint64_t>(buf.btrack),
        static_cast<std::uint64_t>(bound_h),
        static_cast<std::uint64_t>(bound_f),
        static_cast<std::uint64_t>(bound_kv),
        static_cast<std::uint64_t>(buf.lastcol),
        static_cast<std::uint64_t>(buf.lastrow),
        static_cast<std::uint64_t>(bands_for(m, bsize_)),
        static_cast<std::uint64_t>(tiles_for(n, bsize_)),
    };
    block.shape_key = shape_key(m, n, options.shape_granularity);
  }

  // Tail carry/scratch replicas for every potentially-concurrent executor
  // beyond the first: per task in kFull mode, per distinct shape in
  // kCachedByShape (the engine executes at most one block per shape).
  // Each replica starts 128-byte aligned and mirrors the head layout, so a
  // block's global-memory segment geometry — and therefore its cycle
  // count — is identical to sequential execution with the shared head set.
  struct CarrySet {
    std::int64_t bound_h = 0;
    std::int64_t bound_f = 0;
    std::int64_t bound_kv = 0;
    std::int64_t btrack = 0;
    std::int64_t lastcol = 0;
    std::int64_t lastrow = 0;
  };
  const auto alloc_carry_set = [&]() {
    CarrySet set;
    set.bound_h = gmem.alloc(max_n * 4, 128);
    set.bound_f = gmem.alloc(max_n * 4);
    set.bound_kv = gmem.alloc(max_n * 4);
    if (!options.collect_outputs) {
      set.btrack = gmem.alloc(max_m * max_n * 4);
      set.lastcol = gmem.alloc(max_m * 4);
      set.lastrow = gmem.alloc(max_n * 4);
    }
    return set;
  };
  const bool cached_mode = options.mode == simt::ExecMode::kCachedByShape;
  std::unordered_map<std::uint64_t, std::ptrdiff_t> shape_set;  // -1 = head set
  bool head_taken = false;
  for (std::size_t t = 0; t < batch.size(); ++t) {
    std::ptrdiff_t set_index = -1;
    if (cached_mode) {
      const auto it = shape_set.find(blocks[t].shape_key);
      if (it != shape_set.end()) {
        set_index = it->second;
      } else {
        if (head_taken) {
          set_index = static_cast<std::ptrdiff_t>(t);
        }
        head_taken = true;
        shape_set.emplace(blocks[t].shape_key, set_index);
      }
    } else if (head_taken) {
      set_index = static_cast<std::ptrdiff_t>(t);
    } else {
      head_taken = true;
    }
    if (set_index < 0 || set_index != static_cast<std::ptrdiff_t>(t)) {
      continue;  // head set, or shares an already-allocated replica
    }
    const CarrySet set = alloc_carry_set();
    auto& args = blocks[t].args;
    args[5] = static_cast<std::uint64_t>(set.bound_h);
    args[6] = static_cast<std::uint64_t>(set.bound_f);
    args[7] = static_cast<std::uint64_t>(set.bound_kv);
    if (!options.collect_outputs) {
      args[4] = static_cast<std::uint64_t>(set.btrack);
      args[8] = static_cast<std::uint64_t>(set.lastcol);
      args[9] = static_cast<std::uint64_t>(set.lastrow);
    }
  }

  simt::LaunchOptions launch_options;
  launch_options.mode = options.mode;
  launch_options.cost_cache = options.cost_cache;
  launch_options.use_engine_cache = options.use_engine_cache;
  launch_options.overlap_transfers = options.overlap_transfers;
  launch_options.trace_representative = options.trace_representative;
  launch_options.transfer.h2d_bytes = h2d_bytes;
  launch_options.transfer.d2h_bytes = batch.size() * kSwResultBytesPerTask;
  launch_options.sdc = options.sdc;
  launch_options.sdc_launch_id = options.sdc_launch_id;
  launch_options.max_block_cycles = options.max_block_cycles;
  launch_options.interp = options.interp;

  simt::ExecutionEngine& engine =
      options.engine != nullptr ? *options.engine : simt::shared_engine();
  SwBatchResult result;
  result.run.launch = engine.launch(kernel_, device, gmem, blocks, launch_options);
  result.run.cells = cells;

  if (options.collect_outputs) {
    result.outputs.reserve(batch.size());
    for (std::size_t t = 0; t < batch.size(); ++t) {
      const workload::SwTask& task = batch[t];
      const std::size_t m = task.query.size();
      const std::size_t n = task.target.size();
      const TaskBuffers& buf = buffers[t];

      SwTaskOutput out;
      // HaplotypeCaller max search: last column (top to bottom) then last
      // row (left to right), strictly greater wins — as in the reference.
      const auto lastcol = gmem.read_i32(buf.lastcol, m);
      const auto lastrow = gmem.read_i32(buf.lastrow, n);
      out.best_score = 0;
      out.best_i = m;
      out.best_j = n;
      for (std::size_t i = 1; i <= m; ++i) {
        if (lastcol[i - 1] > out.best_score) {
          out.best_score = lastcol[i - 1];
          out.best_i = i;
          out.best_j = n;
        }
      }
      for (std::size_t j = 1; j <= n; ++j) {
        if (lastrow[j - 1] > out.best_score) {
          out.best_score = lastrow[j - 1];
          out.best_i = m;
          out.best_j = j;
        }
      }

      const auto device_btrack = gmem.read_i32(buf.btrack, m * n);
      out.btrack = align::Matrix<std::int32_t>(m + 1, n + 1, align::kBtrackStop);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          out.btrack(i + 1, j + 1) = device_btrack[i * n + j];
        }
      }
      out.alignment =
          align::sw_backtrace(out.btrack, out.best_i, out.best_j, out.best_score);
      result.outputs.push_back(std::move(out));
    }
  }
  return result;
}

}  // namespace wsim::kernels
