#include "wsim/kernels/nw_kernels.hpp"

#include <algorithm>
#include <unordered_map>

#include "wsim/simt/builder.hpp"
#include "wsim/simt/engine.hpp"
#include "wsim/util/check.hpp"

namespace wsim::kernels {

using simt::Cmp;
using simt::DType;
using simt::imm_i64;
using simt::KernelBuilder;
using simt::MemWidth;
using simt::Op;
using simt::SReg;
using simt::VReg;

namespace {

std::size_t bands_for(std::size_t m) noexcept {
  return (m + kSwBsize - 1) / kSwBsize;
}

std::size_t tiles_for(std::size_t n) noexcept {
  return (n + 2 * (kSwBsize - 1)) / kSwBsize;  // ceil((N + 31) / 32)
}

/// Emits gap_cost(len) = 0 when len == 0 else open + (len - 1) * extend.
VReg emit_gap_cost(KernelBuilder& kb, simt::Operand len, const align::SwParams& p) {
  const VReg cost = kb.iadd(imm_i64(p.gap_open),
                            kb.imul(kb.isub(len, imm_i64(1)), imm_i64(p.gap_extend)));
  const VReg zero = kb.setp(Cmp::kLe, DType::kI64, len, imm_i64(0));
  return kb.selp(zero, imm_i64(0), cost);
}

}  // namespace

simt::Kernel build_nw_kernel(CommMode mode, const align::SwParams& params) {
  const bool shared = mode == CommMode::kSharedMemory;
  KernelBuilder kb(shared ? "nw1_shared" : "nw2_shuffle", kSwBsize);

  const SReg p_query = kb.param();   // s0
  const SReg p_target = kb.param();  // s1
  const SReg p_m = kb.param();       // s2
  const SReg p_n = kb.param();       // s3
  const SReg p_result = kb.param();  // s4
  const SReg p_bound_h = kb.param(); // s5
  const SReg p_bound_f = kb.param(); // s6
  const SReg p_bands = kb.param();   // s7
  const SReg p_tiles = kb.param();   // s8

  int h1 = 0;
  int h2 = 0;
  int h3 = 0;
  int f1 = 0;
  int f2 = 0;
  if (shared) {
    h1 = kb.alloc_smem(kSwBsize * 4);
    h2 = kb.alloc_smem(kSwBsize * 4);
    h3 = kb.alloc_smem(kSwBsize * 4);
    f1 = kb.alloc_smem(kSwBsize * 4);
    f2 = kb.alloc_smem(kSwBsize * 4);
  }

  const VReg tid = kb.tid();
  const VReg own_off = kb.imul(tid, imm_i64(4));
  const VReg nb_off = kb.imul(kb.isub(tid, imm_i64(1)), imm_i64(4));
  const VReg is_t0 = kb.setp(Cmp::kEq, DType::kI64, tid, imm_i64(0));
  const VReg not_t0 = kb.setp(Cmp::kGt, DType::kI64, tid, imm_i64(0));
  const VReg is_t31 = kb.setp(Cmp::kEq, DType::kI64, tid, imm_i64(kSwBsize - 1));
  const SReg m1 = kb.ssub(p_m, imm_i64(1));
  const SReg n1 = kb.ssub(p_n, imm_i64(1));

  SReg sh1{};
  SReg sh2{};
  SReg sh3{};
  SReg sf1{};
  SReg sf2{};
  if (shared) {
    sh1 = kb.smov(imm_i64(h1));
    sh2 = kb.smov(imm_i64(h2));
    sh3 = kb.smov(imm_i64(h3));
    sf1 = kb.smov(imm_i64(f1));
    sf2 = kb.smov(imm_i64(f2));
  }

  const SReg band_base = kb.smov(imm_i64(0));
  kb.loop(p_bands);
  {
    const VReg i = kb.iadd(band_base, tid);  // 0-based row; DP row i+1
    const VReg row_valid = kb.setp(Cmp::kLt, DType::kI64, i, p_m);
    const VReg is_lastrow = kb.setp(Cmp::kEq, DType::kI64, i, m1);
    const VReg nb0 = kb.setp(Cmp::kGt, DType::kI64, band_base, imm_i64(0));

    const VReg qchar = kb.mov(imm_i64(0));
    kb.begin_pred(row_valid);
    kb.ldg_to(qchar, kb.iadd(p_query, i), 0, MemWidth::kB1);
    kb.end_pred();
    const VReg q_is_n = kb.setp(Cmp::kEq, DType::kI64, qchar, imm_i64('N'));

    // Global-alignment row boundary: H(I, 0) = gap_cost(I) with I = i + 1.
    const VReg row_bound = emit_gap_cost(kb, kb.iadd(i, imm_i64(1)), params);
    const VReg diag_row_bound = emit_gap_cost(kb, i, params);  // H(I-1, 0)

    const VReg e = kb.mov(imm_i64(kNegInf));
    VReg h_prev{};
    VReg h_pprev{};
    VReg f_prev{};
    if (!shared) {
      h_prev = kb.mov(imm_i64(0));
      h_pprev = kb.mov(imm_i64(0));
      f_prev = kb.mov(imm_i64(kNegInf));
    }

    const SReg step = kb.smov(imm_i64(0));
    kb.loop(p_tiles);
    {
      kb.loop(imm_i64(kSwBsize));
      {
        const VReg c = kb.isub(step, tid);  // 0-based column; DP col c + 1
        const VReg c4 = kb.imul(c, imm_i64(4));
        const VReg valid = kb.iand(
            kb.iand(kb.setp(Cmp::kGe, DType::kI64, c, imm_i64(0)),
                    kb.setp(Cmp::kLt, DType::kI64, c, p_n)),
            row_valid);
        const VReg is_c0 = kb.setp(Cmp::kEq, DType::kI64, c, imm_i64(0));
        const VReg not_c0 = kb.setp(Cmp::kNe, DType::kI64, c, imm_i64(0));

        const VReg tchar = kb.mov(imm_i64(0));
        kb.begin_pred(valid);
        kb.ldg_to(tchar, kb.iadd(p_target, c), 0, MemWidth::kB1);
        kb.end_pred();
        const VReg t_is_n = kb.setp(Cmp::kEq, DType::kI64, tchar, imm_i64('N'));
        const VReg no_n = kb.setp(Cmp::kEq, DType::kI64, kb.ior(q_is_n, t_is_n),
                                  imm_i64(0));
        const VReg chars_eq = kb.setp(Cmp::kEq, DType::kI64, qchar, tchar);
        const VReg sub = kb.selp(kb.iand(chars_eq, no_n), imm_i64(params.match),
                                 imm_i64(params.mismatch));

        // Neighbour fetch (LOAD phase).
        VReg left_raw{};
        VReg up_raw{};
        VReg diag_raw{};
        VReg f_raw{};
        if (shared) {
          left_raw = kb.mov(imm_i64(0));
          up_raw = kb.mov(imm_i64(0));
          diag_raw = kb.mov(imm_i64(0));
          f_raw = kb.mov(imm_i64(kNegInf));
          kb.begin_pred(valid);
          kb.lds_to(left_raw, kb.iadd(sh2, own_off));
          kb.end_pred();
          const VReg valid_nb = kb.iand(valid, not_t0);
          kb.begin_pred(valid_nb);
          kb.lds_to(up_raw, kb.iadd(sh2, nb_off));
          kb.lds_to(diag_raw, kb.iadd(sh3, nb_off));
          kb.lds_to(f_raw, kb.iadd(sf2, nb_off));
          kb.end_pred();
        } else {
          left_raw = h_prev;
          up_raw = kb.shfl_up(h_prev, imm_i64(1));
          diag_raw = kb.shfl_up(h_pprev, imm_i64(1));
          f_raw = kb.shfl_up(f_prev, imm_i64(1));
        }

        // Lane-0 boundary: the row above is the previous band's last row,
        // carried through global memory; band 0 uses the DP top row
        // H(0, J) = gap_cost(J) with J = c + 1.
        const VReg top_up = emit_gap_cost(kb, kb.iadd(c, imm_i64(1)), params);
        const VReg top_diag = emit_gap_cost(kb, c, params);
        const VReg vt0 = kb.iand(valid, kb.iand(is_t0, nb0));
        const VReg up_b = kb.mov(top_up);
        const VReg diag_b = kb.mov(top_diag);
        const VReg f_b = kb.mov(imm_i64(kNegInf));
        kb.begin_pred(vt0);
        kb.ldg_to(up_b, kb.iadd(p_bound_h, c4));
        kb.ldg_to(f_b, kb.iadd(p_bound_f, c4));
        kb.end_pred();
        const VReg vt0_nc0 = kb.iand(vt0, not_c0);
        kb.begin_pred(vt0_nc0);
        kb.ldg_to(diag_b, kb.iadd(p_bound_h,
                                  kb.imul(kb.isub(c, imm_i64(1)), imm_i64(4))));
        kb.end_pred();
        // For lane 0 in band > 0, the c == 0 diagonal is the previous
        // band's row boundary H(I-1, 0).
        const VReg diag_b2 = kb.selp(kb.iand(is_c0, nb0), diag_row_bound, diag_b);

        const VReg left = kb.selp(is_c0, row_bound, left_raw);
        const VReg up = kb.selp(is_t0, up_b, up_raw);
        const VReg diag =
            kb.selp(is_t0, diag_b2, kb.selp(is_c0, diag_row_bound, diag_raw));
        const VReg f_up = kb.selp(is_t0, f_b, f_raw);

        // Affine-gap global cell update (Gotoh).
        const VReg open_h = kb.iadd(left, imm_i64(params.gap_open));
        const VReg ext_h = kb.iadd(e, imm_i64(params.gap_extend));
        const VReg pe = kb.setp(Cmp::kGt, DType::kI64, ext_h, open_h);
        kb.emit_to(e, Op::kSelp, open_h, kb.selp(pe, ext_h, open_h), is_c0);

        const VReg open_v = kb.iadd(up, imm_i64(params.gap_open));
        const VReg ext_v = kb.iadd(f_up, imm_i64(params.gap_extend));
        const VReg f_cur = kb.imax(open_v, ext_v);

        const VReg diag_score = kb.iadd(diag, sub);
        const VReg h_cur = kb.imax(kb.imax(diag_score, f_cur), e);

        // The final DP cell (M, N) is the global score.
        const VReg at_result = kb.iand(
            kb.iand(valid, is_lastrow), kb.setp(Cmp::kEq, DType::kI64, c, n1));
        kb.begin_pred(at_result);
        kb.stg(p_result, h_cur);
        kb.end_pred();

        // Band boundary for the next band.
        const VReg at_boundary = kb.iand(valid, is_t31);
        kb.begin_pred(at_boundary);
        kb.stg(kb.iadd(p_bound_h, c4), h_cur);
        kb.stg(kb.iadd(p_bound_f, c4), f_cur);
        kb.end_pred();

        if (shared) {
          kb.begin_pred(valid);
          kb.sts(kb.iadd(sh1, own_off), h_cur);
          kb.sts(kb.iadd(sf1, own_off), f_cur);
          kb.end_pred();
          const SReg tmp_h = kb.smov(sh3);
          kb.sassign(sh3, sh2);
          kb.sassign(sh2, sh1);
          kb.sassign(sh1, tmp_h);
          const SReg tmp_f = kb.smov(sf2);
          kb.sassign(sf2, sf1);
          kb.sassign(sf1, tmp_f);
          kb.bar();
        } else {
          kb.assign(h_pprev, h_prev);
          kb.assign(h_prev, h_cur);
          kb.assign(f_prev, f_cur);
        }
        kb.sassign(step, kb.sadd(step, imm_i64(1)));
      }
      kb.endloop();
    }
    kb.endloop();
    kb.sassign(band_base, kb.sadd(band_base, imm_i64(kSwBsize)));
  }
  kb.endloop();

  return kb.build();
}

NwRunner::NwRunner(CommMode mode, const align::SwParams& params)
    : mode_(mode), params_(params), kernel_(build_nw_kernel(mode, params)) {}

NwBatchResult NwRunner::run_batch(const simt::DeviceSpec& device,
                                  const workload::SwBatch& batch,
                                  const NwRunOptions& options) const {
  util::require(!batch.empty(), "NwRunner: batch must be non-empty");
  util::require(!options.collect_outputs || options.mode == simt::ExecMode::kFull,
                "NwRunner: collect_outputs requires ExecMode::kFull");
  for (const workload::SwTask& task : batch) {
    util::require(!task.query.empty() && !task.target.empty(),
                  "NwRunner: sequences must be non-empty");
  }

  simt::GlobalMemory gmem;
  std::size_t max_n = 0;
  for (const workload::SwTask& task : batch) {
    max_n = std::max(max_n, task.target.size());
  }
  const auto bound_h = gmem.alloc(max_n * 4);
  const auto bound_f = gmem.alloc(max_n * 4);

  std::vector<std::int64_t> result_addr(batch.size());
  std::vector<simt::BlockLaunch> blocks(batch.size());
  std::size_t h2d_bytes = 0;
  std::size_t cells = 0;
  for (std::size_t t = 0; t < batch.size(); ++t) {
    const workload::SwTask& task = batch[t];
    const std::size_t m = task.query.size();
    const std::size_t n = task.target.size();
    cells += m * n;
    h2d_bytes += m + n;
    const auto query = gmem.alloc(m);
    const auto target = gmem.alloc(n);
    gmem.write_u8(query, {reinterpret_cast<const std::uint8_t*>(task.query.data()), m});
    gmem.write_u8(target,
                  {reinterpret_cast<const std::uint8_t*>(task.target.data()), n});
    result_addr[t] = gmem.alloc(4);
    blocks[t].args = {
        static_cast<std::uint64_t>(query),
        static_cast<std::uint64_t>(target),
        static_cast<std::uint64_t>(m),
        static_cast<std::uint64_t>(n),
        static_cast<std::uint64_t>(result_addr[t]),
        static_cast<std::uint64_t>(bound_h),
        static_cast<std::uint64_t>(bound_f),
        static_cast<std::uint64_t>(bands_for(m)),
        static_cast<std::uint64_t>(tiles_for(n)),
    };
    blocks[t].shape_key = shape_key(m, n, options.shape_granularity);
  }

  // Per-executor boundary-carry replicas (see SwRunner::run_batch): the
  // first task or first distinct shape keeps the head bound_h/bound_f
  // pair; every other potential executor gets a 128-byte-aligned tail
  // replica so concurrent blocks never share carry buffers and each
  // block's segment geometry matches sequential execution.
  const bool cached_mode = options.mode == simt::ExecMode::kCachedByShape;
  std::unordered_map<std::uint64_t, bool> shape_seen;
  bool head_taken = false;
  for (std::size_t t = 0; t < batch.size(); ++t) {
    if (cached_mode && !shape_seen.emplace(blocks[t].shape_key, true).second) {
      continue;  // never executed: the shape's first block is its executor
    }
    if (!head_taken) {
      head_taken = true;
      continue;
    }
    const auto own_h = gmem.alloc(max_n * 4, 128);
    const auto own_f = gmem.alloc(max_n * 4);
    blocks[t].args[5] = static_cast<std::uint64_t>(own_h);
    blocks[t].args[6] = static_cast<std::uint64_t>(own_f);
  }

  simt::LaunchOptions launch_options;
  launch_options.mode = options.mode;
  launch_options.cost_cache = options.cost_cache;
  launch_options.use_engine_cache = options.use_engine_cache;
  launch_options.overlap_transfers = options.overlap_transfers;
  launch_options.transfer.h2d_bytes = h2d_bytes;
  launch_options.transfer.d2h_bytes = batch.size() * 4;
  launch_options.sdc = options.sdc;
  launch_options.sdc_launch_id = options.sdc_launch_id;
  launch_options.max_block_cycles = options.max_block_cycles;
  launch_options.interp = options.interp;

  simt::ExecutionEngine& engine =
      options.engine != nullptr ? *options.engine : simt::shared_engine();
  NwBatchResult result;
  result.run.launch = engine.launch(kernel_, device, gmem, blocks, launch_options);
  result.run.cells = cells;
  if (options.collect_outputs) {
    result.scores.reserve(batch.size());
    for (std::size_t t = 0; t < batch.size(); ++t) {
      result.scores.push_back(gmem.read_i32_one(result_addr[t]));
    }
  }
  return result;
}

}  // namespace wsim::kernels
