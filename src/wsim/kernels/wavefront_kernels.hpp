#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "wsim/align/smith_waterman.hpp"
#include "wsim/kernels/common.hpp"
#include "wsim/kernels/sw_kernels.hpp"
#include "wsim/simt/isa.hpp"
#include "wsim/simt/runtime.hpp"
#include "wsim/workload/batching.hpp"

namespace wsim::simt {
class ExecutionEngine;
}  // namespace wsim::simt

namespace wsim::kernels {

/// Intra-task (wavefront) execution variants. The task-per-block kernels
/// (sw_kernels.hpp) give each alignment one block and stream columns; the
/// wavefront kernels tile the DP matrix into (tile_rows x 32) tiles and
/// launch every tile on one tile-anti-diagonal *wave* as its own block, so
/// a single long alignment spreads across SMs — the AnySeq/GPU / SaLoBa
/// shape for long sequences.
enum class WfVariant {
  kShuffle,       ///< lane i owns column i; shfl_up pipelines the diagonal
  kSharedMemory,  ///< same decomposition, line buffers + barrier per step
  /// The anti-pattern: one kernel launch per *cell* anti-diagonal with all
  /// DP state in global-memory matrices (the classic naive NW-on-GPU loop).
  /// Implemented to be measured and beaten, never to be chosen.
  kHostSyncNaive,
};

std::string_view to_string(WfVariant variant) noexcept;

/// Rows per wavefront tile (columns are fixed at one warp = 32). Larger
/// tiles amortize the 31-step pipeline fill/drain; smaller tiles expose
/// more concurrent blocks per task.
inline constexpr int kWfTileRows = 256;

/// Tile-grid geometry of one M x N task under a given tile height.
struct WfGeometry {
  std::size_t tile_rows = 0;       ///< rows per tile (last row tile may be short)
  std::size_t tile_row_count = 0;  ///< ceil(M / tile_rows)
  std::size_t tile_col_count = 0;  ///< ceil(N / 32)
  std::size_t tiles = 0;           ///< tile_row_count * tile_col_count
  std::size_t waves = 0;           ///< tile anti-diagonals: rows + cols - 1

  /// Mean independent tiles per wave — the intra-task block-level
  /// parallelism a single task contributes.
  double avg_wave_tiles() const noexcept {
    return waves == 0 ? 0.0
                      : static_cast<double>(tiles) / static_cast<double>(waves);
  }
};

WfGeometry wf_geometry(std::size_t m, std::size_t n,
                       int tile_rows = kWfTileRows) noexcept;

/// Anti-diagonal steps summed over all tiles of an M x N task: each tile
/// runs rows_in_tile + 31 steps (pipeline fill/drain included) — the
/// iteration count of the Eq. 7 latency denominator for this subsystem.
std::size_t wf_iterations(std::size_t m, std::size_t n,
                          int tile_rows = kWfTileRows) noexcept;

/// Builds one wavefront *tile* kernel (kShuffle or kSharedMemory): one
/// warp per tile, lane i owns tile column i, rows stream down the tile
/// pipelined along the anti-diagonal. Left/diagonal H and the horizontal
/// gap state arrive from lane i-1 via shfl_up (or via rotating
/// shared-memory line buffers in the kSharedMemory variant); the vertical
/// gap state is lane-local. Tile boundaries are carried through global
/// memory: a row-boundary buffer (bottom row -> tile below), a
/// column-boundary buffer (right column -> tile to the right), and a
/// parity-rotated corner cell (bottom-right -> diagonal neighbour).
simt::Kernel build_wf_sw_kernel(WfVariant variant, const align::SwParams& params);
simt::Kernel build_wf_nw_kernel(WfVariant variant, const align::SwParams& params);

/// Builds the naive per-diagonal kernel (kHostSyncNaive): each launch
/// computes the cells of ONE anti-diagonal, 32 rows per block, every
/// H/E/F (and SW backtrace-length) value read from and written to full
/// M x N global-memory matrices. The host loop launches M + N - 1 times.
simt::Kernel build_wf_naive_sw_kernel(const align::SwParams& params);
simt::Kernel build_wf_naive_nw_kernel(const align::SwParams& params);

struct WfRunOptions {
  /// Read device results back and backtrace on the host. Requires
  /// ExecMode::kFull.
  bool collect_outputs = false;
  simt::ExecMode mode = simt::ExecMode::kFull;
  /// Quantization of the target length inside the tile shape key.
  std::size_t shape_granularity = kSwBsize;
  /// Memoize block costs in the executing engine's persistent cache —
  /// strongly recommended for kCachedByShape sweeps: tiles repeat the same
  /// few shapes across every wave of every launch.
  bool use_engine_cache = false;
  bool overlap_transfers = false;
  simt::ExecutionEngine* engine = nullptr;
  /// Deterministic SDC injection (requires kFull); every wave derives its
  /// own sub-launch id from sdc_launch_id.
  simt::SdcPlan sdc;
  std::uint64_t sdc_launch_id = 0;
  long long max_block_cycles = 0;
  simt::InterpPath interp = simt::InterpPath::kDefault;
};

/// Result of one wavefront batch: aggregated timing over all wave
/// launches plus the per-task outputs (kFull + collect_outputs only).
struct WfSwBatchResult {
  KernelRunResult run;
  std::vector<SwTaskOutput> outputs;
  std::size_t launches = 0;  ///< wave (or diagonal) kernel launches issued
  std::size_t blocks = 0;    ///< tile/segment blocks across all launches
  /// Steps of the representative block, for cycles_per_iteration().
  std::uint64_t representative_iterations = 0;
};

struct WfNwBatchResult {
  KernelRunResult run;
  std::vector<std::int32_t> scores;
  std::size_t launches = 0;
  std::size_t blocks = 0;
  std::uint64_t representative_iterations = 0;
};

/// Host-side driver for the intra-task subsystem: decomposes every task of
/// the batch into tiles, then issues one engine launch per *global* wave —
/// wave w carries the (tr, tc: tr + tc == w) tiles of EVERY task, so a
/// batch of long reads fills the device even when the batch is small. The
/// kHostSyncNaive variant instead launches once per cell anti-diagonal.
class WavefrontSwRunner {
 public:
  explicit WavefrontSwRunner(WfVariant variant, const align::SwParams& params = {},
                             int tile_rows = kWfTileRows);

  const simt::Kernel& kernel() const noexcept { return kernel_; }
  WfVariant variant() const noexcept { return variant_; }
  const align::SwParams& params() const noexcept { return params_; }
  int tile_rows() const noexcept { return tile_rows_; }

  WfSwBatchResult run_batch(const simt::DeviceSpec& device,
                            const workload::SwBatch& batch,
                            const WfRunOptions& options = {}) const;

 private:
  WfVariant variant_;
  align::SwParams params_;
  int tile_rows_;
  simt::Kernel kernel_;
};

class WavefrontNwRunner {
 public:
  explicit WavefrontNwRunner(WfVariant variant, const align::SwParams& params = {},
                             int tile_rows = kWfTileRows);

  const simt::Kernel& kernel() const noexcept { return kernel_; }
  WfVariant variant() const noexcept { return variant_; }
  int tile_rows() const noexcept { return tile_rows_; }

  WfNwBatchResult run_batch(const simt::DeviceSpec& device,
                            const workload::SwBatch& batch,
                            const WfRunOptions& options = {}) const;

 private:
  WfVariant variant_;
  align::SwParams params_;
  int tile_rows_;
  simt::Kernel kernel_;
};

/// One name per selectable SW kernel across both subsystems — the
/// vocabulary of the CLI `--kernel` flag.
struct SwKernelChoice {
  bool intra = false;  ///< wavefront subsystem (vs task-per-block)
  CommMode inter_mode = CommMode::kShuffle;  ///< when !intra
  WfVariant wf_variant = WfVariant::kShuffle;  ///< when intra
};

/// {"shared", "shuffle", "wf-shared", "wf-shuffle", "wf-naive"}.
const std::vector<std::string>& sw_kernel_names();

/// Lookup by CLI name; throws util::CheckError listing the valid names on
/// anything else (same contract as simt::device_by_name).
SwKernelChoice sw_kernel_by_name(std::string_view name);

/// Canonical name of a choice ("wf-shuffle", "shared", ...).
std::string sw_kernel_name(const SwKernelChoice& choice);

}  // namespace wsim::kernels
