#include "wsim/cluster/autoscaler.hpp"

#include <algorithm>
#include <cmath>

#include "wsim/util/check.hpp"

namespace wsim::cluster {

Autoscaler::Autoscaler(const AutoscalerConfig& config, double device_gcups)
    : config_(config), device_gcups_(device_gcups) {
  util::require(config_.min_workers >= 1,
                "Autoscaler: min_workers must be >= 1");
  util::require(config_.max_workers >= config_.min_workers,
                "Autoscaler: max_workers must be >= min_workers");
  util::require(config_.target_backlog_seconds > 0.0,
                "Autoscaler: target_backlog_seconds must be > 0");
  util::require(config_.low_watermark > 0.0 && config_.low_watermark < 1.0,
                "Autoscaler: low_watermark must be in (0, 1)");
  util::require(config_.scale_down_after >= 1,
                "Autoscaler: scale_down_after must be >= 1");
  util::require(device_gcups_ > 0.0, "Autoscaler: device_gcups must be > 0");
}

ScaleDecision Autoscaler::decide(double now, std::size_t outstanding_cells,
                                 std::size_t serving_workers,
                                 double capacity_scale) {
  ScaleDecision decision;
  const double scale = capacity_scale > 0.0 ? capacity_scale : 1.0;
  const double cells_per_second = device_gcups_ * 1e9 * scale;
  const std::size_t serving = std::max<std::size_t>(serving_workers, 1);
  decision.backlog_seconds = static_cast<double>(outstanding_cells) /
                             (cells_per_second * static_cast<double>(serving));
  if (!config_.enabled) {
    return decision;
  }
  const bool cooled =
      !changed_once_ || now - last_change_ >= config_.cooldown_seconds;

  if (decision.backlog_seconds > config_.target_backlog_seconds) {
    low_streak_ = 0;
    if (!cooled || serving_workers >= config_.max_workers) {
      return decision;
    }
    // Size the join step from the model: enough members that the queued
    // cells clear within the target at Eq. 7/8 predicted capacity.
    const double needed = std::ceil(
        static_cast<double>(outstanding_cells) /
        (cells_per_second * config_.target_backlog_seconds));
    const std::size_t want = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::max(needed, 1.0)),
        serving_workers + 1, config_.max_workers);
    decision.delta = static_cast<int>(want - serving_workers);
    last_change_ = now;
    changed_once_ = true;
    return decision;
  }

  if (decision.backlog_seconds <
      config_.low_watermark * config_.target_backlog_seconds) {
    ++low_streak_;
    if (low_streak_ >= config_.scale_down_after && cooled &&
        serving_workers > config_.min_workers) {
      decision.delta = -1;  // conservative: one member per cooldown
      low_streak_ = 0;
      last_change_ = now;
      changed_once_ = true;
    }
    return decision;
  }

  low_streak_ = 0;
  return decision;
}

}  // namespace wsim::cluster
