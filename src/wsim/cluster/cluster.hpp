#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "wsim/cluster/autoscaler.hpp"
#include "wsim/fleet/fleet.hpp"
#include "wsim/serve/service.hpp"
#include "wsim/workload/task.hpp"
#include "wsim/workload/trace.hpp"

namespace wsim::cluster {

/// Configuration of one cluster simulation: a homogeneous scaling pool
/// (every join adds a copy of `worker`), the serving-layer policies, the
/// tenants' contracts, and the autoscaler's control law.
struct ClusterConfig {
  /// Scale-unit device template; every member is one of these.
  fleet::WorkerConfig worker;
  std::size_t initial_workers = 1;
  fleet::PlacementPolicy policy = fleet::PlacementPolicy::kModelGuided;
  fleet::FaultPlan faults;
  fleet::RetryPolicy retry;
  /// Online model calibration and drift detection (off by default). When
  /// enabled, the autoscaler's Eq. 7/8 capacity is derated by the fleet's
  /// mean calibrated correction every control tick, so a silently
  /// degraded pool scales out instead of trusting spec-sheet throughput.
  fleet::CalibrationConfig calibration;
  /// Simulated seconds a joining member spends warming up before it takes
  /// placements — the "cost" of elasticity the autoscaler must overcome.
  double join_warmup_seconds = 2e-3;

  /// Batch-forming policy of the front-end service.
  serve::BatchPolicy batch;
  std::size_t max_queue_tasks = 1 << 16;
  std::size_t max_queue_cells = 0;  ///< 0 = unbounded
  /// Tenant contracts (quota + SLO). Trace tenants not listed here are
  /// admitted permissively without quotas or SLOs.
  std::vector<serve::TenantConfig> tenants;
  /// Collect real outputs during replay. Off by default: load experiments
  /// run timing-only through the shape cache, which is what makes
  /// million-request traces cheap.
  bool collect_outputs = false;

  AutoscalerConfig autoscaler;
  /// Control-loop tick: the autoscaler observes queue depth and applies
  /// join/drain decisions every this many simulated seconds.
  double control_interval_seconds = 2e-3;
  /// Billing rate used for the cost-per-million-requests readout.
  double cost_per_device_hour = 2.5;
};

/// Membership record of one worker over the run, for device-hour billing.
struct MemberRecord {
  fleet::DeviceId id = 0;
  double joined_at = 0.0;
  double retired_at = 0.0;  ///< = run end when never retired
  bool retired = false;
};

/// Result of a cluster simulation. Latency percentiles, SLO outcome, and
/// quota rejections are per tenant inside `service.tenants`; the fleet
/// snapshot carries the per-device lifecycle/quarantine records.
struct ClusterReport {
  serve::ServiceStats service;
  fleet::FleetStats fleet;
  std::vector<MemberRecord> members;
  double duration_seconds = 0.0;  ///< trace start to last delivery
  double device_hours = 0.0;      ///< billed member-seconds / 3600
  std::size_t peak_workers = 0;   ///< max simultaneously serving members
  /// Requests per simulated second that completed *and* met their
  /// deadline/SLO (completions without a deadline all count).
  double goodput_rps = 0.0;
  /// deadlines_missed / (deadlines_met + deadlines_missed).
  double slo_violation_rate = 0.0;
  /// device_hours × cost_per_device_hour, normalized per 1e6 completed.
  double cost_per_million = 0.0;
};

/// Replays `trace` against a dynamically-scaled fleet serving `dataset`'s
/// task pools (TraceEvent::task_index picks tasks modulo pool size).
/// Everything runs on the deterministic simulated clock: the same trace,
/// dataset, and config always produce the same report — including under
/// fleet fault injection, since FaultPlan draws are keyed by dispatch
/// sequence, not wall time.
ClusterReport run_cluster(const workload::Dataset& dataset,
                          const workload::Trace& trace,
                          const ClusterConfig& config);

/// JSON dump: the serve/fleet shared schema (write_stats_json with the
/// "devices" array) wrapped with the cluster-level readouts
/// (device_hours, peak_workers, goodput_rps, slo_violation_rate,
/// cost_per_million_requests). No trailing newline.
void write_cluster_json(std::ostream& os, const ClusterReport& report);

}  // namespace wsim::cluster
