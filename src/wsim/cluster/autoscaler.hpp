#pragma once

#include <cstddef>

namespace wsim::cluster {

/// Knobs of the queue-depth/SLO-driven autoscaler. The control signal is
/// *backlog seconds*: outstanding DP cells (queued plus in-flight on
/// device timelines) divided by the fleet's predicted aggregate capacity
/// (the paper's Eq. 7/8 per-device GCUPS times the member count). Backlog above the target adds capacity; backlog that
/// stays far below it for long enough removes capacity. Hysteresis (the
/// low-watermark streak) and a cooldown keep the loop from flapping on a
/// bursty arrival process.
struct AutoscalerConfig {
  bool enabled = true;
  std::size_t min_workers = 1;
  std::size_t max_workers = 8;
  /// Queued work should clear within this many seconds at predicted
  /// capacity; above it the fleet scales up, sized to restore it.
  double target_backlog_seconds = 5e-3;
  /// Scale-down arm: backlog must sit below low_watermark × target ...
  double low_watermark = 0.25;
  /// ... for this many consecutive decisions before one worker drains.
  int scale_down_after = 4;
  /// Minimum simulated seconds between membership changes.
  double cooldown_seconds = 20e-3;
};

/// One control decision: join `delta` workers (> 0), drain `-delta`
/// (< 0), or hold (0). `backlog_seconds` is the measured signal that
/// produced it, for logging.
struct ScaleDecision {
  int delta = 0;
  double backlog_seconds = 0.0;
};

/// Pure decision logic — the caller (ClusterSim) owns the fleet and
/// applies join/drain, so the policy is unit-testable without devices.
/// Deterministic: decisions are a function of the observation sequence.
class Autoscaler {
 public:
  /// `device_gcups` is the Eq. 7/8 predicted throughput of one scale-unit
  /// device on the dominant kernel; it converts queued cells to backlog
  /// seconds and sizes join steps.
  Autoscaler(const AutoscalerConfig& config, double device_gcups);

  const AutoscalerConfig& config() const noexcept { return config_; }

  /// One control tick at simulated time `now`, observing the outstanding
  /// cell count (admission queues + in-flight device backlog) and the
  /// number of serving (non-draining, non-retired) workers.
  /// `capacity_scale` derates the Eq. 7/8 capacity by the fleet's mean
  /// calibrated correction (FleetExecutor::calibrated_capacity_scale): a
  /// silently degraded fleet then sees a proportionally larger backlog in
  /// seconds and scales out instead of trusting spec-sheet throughput.
  ScaleDecision decide(double now, std::size_t outstanding_cells,
                       std::size_t serving_workers,
                       double capacity_scale = 1.0);

 private:
  AutoscalerConfig config_;
  double device_gcups_;
  double last_change_ = 0.0;
  bool changed_once_ = false;  ///< cooldown only applies after a change
  int low_streak_ = 0;
};

}  // namespace wsim::cluster
