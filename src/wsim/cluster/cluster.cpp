#include "wsim/cluster/cluster.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

#include "wsim/fleet/router.hpp"
#include "wsim/obs/json.hpp"
#include "wsim/obs/metrics.hpp"
#include "wsim/obs/obs.hpp"
#include "wsim/util/check.hpp"

namespace wsim::cluster {

namespace {

/// Flattened task pools the trace's task_index draws from.
struct TaskPools {
  std::vector<const workload::SwTask*> sw;
  std::vector<const align::PairHmmTask*> ph;
};

TaskPools flatten(const workload::Dataset& dataset) {
  TaskPools pools;
  for (const workload::Region& region : dataset.regions) {
    for (const workload::SwTask& task : region.sw_tasks) {
      pools.sw.push_back(&task);
    }
    for (const align::PairHmmTask& task : region.ph_tasks) {
      pools.ph.push_back(&task);
    }
  }
  return pools;
}

using obs::json_number;

}  // namespace

ClusterReport run_cluster(const workload::Dataset& dataset,
                          const workload::Trace& trace,
                          const ClusterConfig& config) {
  util::require(config.initial_workers >= 1,
                "run_cluster: initial_workers must be >= 1");
  util::require(config.control_interval_seconds > 0.0,
                "run_cluster: control_interval_seconds must be > 0");
  const TaskPools pools = flatten(dataset);
  util::require(!pools.sw.empty() && !pools.ph.empty(),
                "run_cluster: dataset needs SW and PairHMM tasks");

  fleet::FleetConfig fleet_config;
  fleet_config.workers.assign(config.initial_workers, config.worker);
  fleet_config.policy = config.policy;
  fleet_config.faults = config.faults;
  fleet_config.retry = config.retry;
  fleet_config.calibration = config.calibration;
  fleet_config.join_warmup_seconds = config.join_warmup_seconds;
  fleet::FleetExecutor fleet(fleet_config);

  serve::ServiceConfig service_config;
  service_config.policy = config.batch;
  service_config.max_queue_tasks = config.max_queue_tasks;
  service_config.max_queue_cells = config.max_queue_cells;
  service_config.collect_outputs = config.collect_outputs;
  service_config.fleet = &fleet;
  service_config.tenants = config.tenants;
  serve::AlignmentService service(service_config);

  // Eq. 7/8 capacity of one scale-unit device on the dominant kernel
  // (PairHMM carries ~98% of HaplotypeCaller's cells) converts queue
  // depth into backlog seconds and sizes join steps.
  const fleet::VariantChoice choice = fleet::pick_variants(config.worker.device);
  const double device_gcups =
      config.worker.ph_design.has_value()
          ? fleet::predicted_ph_gcups(config.worker.device,
                                      *config.worker.ph_design)
          : choice.ph_gcups;
  Autoscaler autoscaler(config.autoscaler, device_gcups);

  ClusterReport report;
  report.members.reserve(config.initial_workers);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    MemberRecord member;
    member.id = static_cast<fleet::DeviceId>(i);
    report.members.push_back(member);
  }
  report.peak_workers = fleet.size();

  const auto serving_count = [&](double t) {
    std::size_t serving = 0;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      const fleet::WorkerState s =
          fleet.state(static_cast<fleet::DeviceId>(i), t);
      if (s != fleet::WorkerState::kDraining &&
          s != fleet::WorkerState::kRetired) {
        ++serving;
      }
    }
    return serving;
  };

  const auto control_tick = [&](double t) {
    obs::set_sim_time(t);
    obs::Span tick_span(obs::Layer::kCluster, "cluster.tick");
    static obs::Counter c_ticks("cluster.ticks");
    c_ticks.add();
    // Retire draining members whose timelines have drained: nothing is
    // queued on them (dispatches resolve against the timeline, so
    // free_at <= t means every batch placed there has completed).
    for (MemberRecord& member : report.members) {
      if (member.retired ||
          fleet.state(member.id, t) != fleet::WorkerState::kDraining) {
        continue;
      }
      if (fleet.free_at(member.id) <= t) {
        fleet.retire(member.id, t);
        member.retired = true;
        member.retired_at = t;
      }
    }
    const serve::QueueSnapshot queue = service.queue_snapshot();
    const std::size_t serving = serving_count(t);
    // The control signal counts *outstanding* work: cells still in the
    // admission queues plus the in-flight backlog already placed on
    // device timelines (residual busy seconds converted back to cells at
    // predicted capacity). Queue depth alone misses saturation — the
    // batch former drains the queue into device timelines within one
    // batching delay, so a hopelessly backlogged single worker can show
    // an empty queue at every tick.
    double outstanding = static_cast<double>(queue.queued_cells);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      const fleet::DeviceId id = static_cast<fleet::DeviceId>(i);
      const double residual = fleet.free_at(id) - t;
      if (residual > 0.0) {
        outstanding += residual * device_gcups * 1e9;
      }
    }
    static obs::Gauge g_workers("cluster.serving_workers");
    static obs::Gauge g_backlog("cluster.outstanding_cells");
    g_workers.set(static_cast<double>(serving));
    g_backlog.set(outstanding);
    obs::counter(t, obs::Layer::kCluster, "cluster.serving_workers",
                 static_cast<double>(serving));
    obs::counter(t, obs::Layer::kCluster, "cluster.outstanding_cells",
                 outstanding);
    const ScaleDecision decision =
        autoscaler.decide(t, static_cast<std::size_t>(outstanding), serving,
                          fleet.calibrated_capacity_scale(t));
    if (decision.delta > 0) {
      static obs::Counter c_up("cluster.scale_ups");
      c_up.add();
      obs::instant(t, obs::Layer::kCluster, "cluster.scale_up", -1, 0,
                   static_cast<double>(decision.delta));
      for (int i = 0; i < decision.delta; ++i) {
        MemberRecord member;
        member.id = fleet.join(config.worker, t);
        member.joined_at = t;
        report.members.push_back(member);
      }
      report.peak_workers = std::max(report.peak_workers, serving_count(t));
    } else if (decision.delta < 0) {
      static obs::Counter c_down("cluster.scale_downs");
      c_down.add();
      obs::instant(t, obs::Layer::kCluster, "cluster.scale_down", -1, 0,
                   static_cast<double>(-decision.delta));
      // Drain newest-first so the longest-lived members stay — their
      // dispatch history (and so the fault plan's draws) is stable.
      int to_drain = -decision.delta;
      for (auto it = report.members.rbegin();
           it != report.members.rend() && to_drain > 0; ++it) {
        const fleet::WorkerState s = fleet.state(it->id, t);
        if (s == fleet::WorkerState::kDraining ||
            s == fleet::WorkerState::kRetired) {
          continue;
        }
        fleet.drain(it->id, t);
        --to_drain;
      }
    }
  };

  // Replay: interleave control ticks with trace arrivals in time order
  // (tick first on ties), all on the service's simulated clock.
  double next_tick = 0.0;
  for (const workload::TraceEvent& event : trace.events) {
    while (next_tick <= event.time) {
      service.advance_to(next_tick);
      control_tick(next_tick);
      next_tick += config.control_interval_seconds;
    }
    service.advance_to(event.time);
    const std::string& tenant = trace.tenants[event.tenant];
    if (event.is_sw) {
      serve::SwRequest request;
      request.task = *pools.sw[event.task_index % pools.sw.size()];
      request.tenant = tenant;
      service.submit(std::move(request));
    } else {
      serve::PairHmmRequest request;
      request.task = *pools.ph[event.task_index % pools.ph.size()];
      request.tenant = tenant;
      service.submit(std::move(request));
    }
  }
  // Arrivals are over; keep ticking until the queues and in-flight work
  // drain, then let the service deliver the tail.
  for (;;) {
    service.advance_to(next_tick);
    control_tick(next_tick);
    const serve::QueueSnapshot queue = service.queue_snapshot();
    if (queue.queued_tasks == 0 && queue.in_flight_batches == 0) {
      break;
    }
    next_tick += config.control_interval_seconds;
  }
  const double end = std::max(service.drain(), trace.duration_seconds);

  report.service = service.stats();
  report.fleet = fleet.stats();
  report.duration_seconds =
      std::max(end, report.service.last_completion_time);
  double member_seconds = 0.0;
  for (MemberRecord& member : report.members) {
    if (!member.retired) {
      member.retired_at = report.duration_seconds;
    }
    member_seconds += member.retired_at - member.joined_at;
  }
  report.device_hours = member_seconds / 3600.0;
  const double duration = report.duration_seconds;
  const std::size_t good =
      report.service.completed() >= report.service.deadlines_missed
          ? report.service.completed() - report.service.deadlines_missed
          : 0;
  report.goodput_rps =
      duration > 0.0 ? static_cast<double>(good) / duration : 0.0;
  const std::size_t judged =
      report.service.deadlines_met + report.service.deadlines_missed;
  report.slo_violation_rate =
      judged > 0 ? static_cast<double>(report.service.deadlines_missed) /
                       static_cast<double>(judged)
                 : 0.0;
  report.cost_per_million =
      report.service.completed() > 0
          ? report.device_hours * config.cost_per_device_hour /
                static_cast<double>(report.service.completed()) * 1e6
          : 0.0;
  return report;
}

void write_cluster_json(std::ostream& os, const ClusterReport& report) {
  os << "{\n  \"schema_version\": " << obs::kStatsSchemaVersion
     << ",\n  \"cluster\": {"
     << "\"duration_s\": " << json_number(report.duration_seconds)
     << ", \"device_hours\": " << json_number(report.device_hours)
     << ", \"peak_workers\": " << report.peak_workers
     << ", \"members\": " << report.members.size()
     << ", \"goodput_rps\": " << json_number(report.goodput_rps)
     << ", \"slo_violation_rate\": " << json_number(report.slo_violation_rate)
     << ", \"cost_per_million_requests\": "
     << json_number(report.cost_per_million) << "},\n  \"service\": ";
  serve::write_stats_json(os, report.service, report.fleet);
  os << "\n}";
}

}  // namespace wsim::cluster
