#pragma once

// Online calibration of the Eq. 7/8 performance model, plus drift
// detection and the derate/probe/requalify recovery ladder.
//
// The static model predicts each batch's service seconds from occupancy
// and critical-path latency; the simulator (like real hardware) disagrees
// by a systematic per-(device, kernel-class) factor — and a silently
// degraded device disagrees by much more, without tripping any fault
// counter. The Calibrator regresses observed service seconds against the
// prediction into one EWMA correction factor per (device, kernel class),
// with deterministic warm-up (the factor stays exactly 1.0 until
// `min_samples` observations, then seeds from their mean), and watches the
// prediction residuals for drift:
//
//   * a one-sided CUSUM on log(observed / (factor x predicted)) catches
//     step changes (a card dropping to half clock mid-run);
//   * a relative-drift check — this device's factor vs its own warm-up
//     baseline, normalized by the fleet-median drift of its warmed peers —
//     catches slow ramps, which never present a step for the CUSUM to see.
//     Judging against the device's *own* baseline matters: the healthy
//     per-(device, class) model biases spread wider across a heterogeneous
//     fleet than the drift being hunted, so comparing raw factors across
//     devices would false-fire on every healthy fleet. The peer-median
//     normalization keeps common-mode shifts (a workload change biasing
//     every device's predictions together) from tripping anyone. The price
//     is honest: a device degraded *before* its warm-up completes bakes
//     the slowness into its baseline and is never flagged — but its factor
//     still learns the true speed, so calibrated routing and autoscaling
//     treat it correctly; only the drift label is missed.
//
// Either detector moves the device kNominal -> kSuspect. A suspect whose
// windowed residual confirms persistent degradation is *derated*: its
// factor snaps to the recent-window mean (so calibrated placement
// immediately treats it at its true speed) instead of being hard
// quarantined — capacity is reduced, not discarded. Placement keeps
// probing a derated device; `requalify_after` consecutive in-band
// observations requalify it back to kNominal. Only a windowed residual
// beyond `quarantine_ratio` escalates to the executor's existing
// quarantine channel.
//
// Determinism: observations are applied in per-device dispatch-sequence
// order regardless of the order threads deliver them (late arrivals are
// buffered, gaps left by failed attempts are closed with skip()), so the
// factors — and every placement decision downstream of them — are a pure
// function of the dispatch history.

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string_view>
#include <vector>

namespace wsim::fleet {

using SimTime = double;

/// The calibration key's kernel dimension: the three (kernel, regime)
/// classes whose predictions the fleet places by. Per-class factors keep a
/// device's wavefront bias from polluting its task-per-block correction.
enum class KernelClass : std::uint8_t {
  kSwInter = 0,  ///< task-per-block Smith-Waterman
  kSwIntra = 1,  ///< wavefront-tile Smith-Waterman
  kPairHmm = 2,
};

inline constexpr std::size_t kKernelClasses = 3;

std::string_view to_string(KernelClass cls) noexcept;

/// Drift status of one device, derived from its prediction residuals.
enum class DriftState : std::uint8_t {
  kNominal,      ///< residuals in band
  kDriftSuspect, ///< a detector fired; awaiting windowed confirmation
  kDerated,      ///< persistent drift confirmed; serving at calibrated capacity
};

std::string_view to_string(DriftState state) noexcept;

struct CalibrationConfig {
  /// Master switch. Off: factors stay 1.0, no drift detection, zero cost.
  bool enabled = false;
  /// Calibrate-once-at-deploy: factors seed from the warm-up mean and then
  /// freeze — no EWMA tracking, no drift detection. This is the static
  /// calibration real deployments ship with, and the baseline the online
  /// mode is benchmarked against: a frozen factor keeps routing a silently
  /// degraded device at its healthy rate forever.
  bool freeze_after_warmup = false;
  /// EWMA weight of the newest observed/predicted ratio after warm-up.
  double alpha = 0.2;
  /// Warm-up: the *applied* factor stays exactly 1.0 until this many
  /// observations, then seeds from their mean — so short replays are
  /// bit-identical whether calibration is on or off, and the first noisy
  /// batches never whipsaw placement.
  int min_samples = 8;
  /// CUSUM allowance: per-sample log-residual slack absorbed before the
  /// statistic accumulates (drift below this rate is the EWMA's job).
  double cusum_slack = 0.10;
  /// CUSUM threshold raising kDriftSuspect.
  double cusum_threshold = 1.0;
  /// Relative-drift check: suspect a device whose factor exceeds
  /// peer_ratio x its own warm-up baseline x the peer-median drift
  /// (catches slow ramps the CUSUM cannot see).
  double peer_ratio = 1.5;
  /// Residual window (observations) used to confirm suspicion and to snap
  /// the derated factor to the device's current true speed.
  int window = 8;
  /// Windowed ratio vs the reference confirming kSuspect -> kDerated.
  double derate_ratio = 1.3;
  /// A suspect whose CUSUM decays below threshold x this fraction without
  /// windowed confirmation returns to kNominal (transient noise).
  double suspect_decay = 0.5;
  /// Calibrated placement force-places a batch on a derated device that
  /// has not been observed for this many fleet dispatches, so a starved
  /// device can still prove recovery.
  int probe_interval = 32;
  /// Consecutive in-band observations that requalify a derated device.
  int requalify_after = 6;
  /// An observation within band x reference counts toward requalification.
  double requalify_band = 1.15;
  /// Windowed ratio vs the reference escalating a derated device to the
  /// executor's hard quarantine channel (a device this sick is not worth
  /// its residual capacity).
  double quarantine_ratio = 6.0;
};

/// One drift-state transition, returned by observe() so the executor can
/// emit events, flight-recorder dumps, and quarantine escalations at the
/// layer that owns them. `ratio` is the windowed residual (observed over
/// factor-corrected prediction vs the reference) that drove the move.
struct DriftTransition {
  int device = -1;
  KernelClass cls = KernelClass::kSwInter;
  DriftState from = DriftState::kNominal;
  DriftState to = DriftState::kNominal;
  double ratio = 1.0;
  int window = 0;           ///< observations behind `ratio`
  SimTime time = 0.0;
  bool escalate_quarantine = false;
};

/// Thread-safe, order-deterministic calibration store. The FleetExecutor
/// owns one; tests drive it directly.
class Calibrator {
 public:
  explicit Calibrator(CalibrationConfig config);

  const CalibrationConfig& config() const noexcept { return config_; }

  /// Registers device ids [0, count). Growing is fine; shrinking is not.
  void resize(std::size_t devices);
  std::size_t devices() const;

  /// Records that dispatch `seq` on `device` (class `cls`) was predicted
  /// at `predicted_seconds` and actually took `observed_seconds`.
  /// Observations are applied in per-device seq order: a call arriving
  /// before its predecessors is buffered and applied when the gap closes,
  /// so concurrent delivery cannot change the factors. Returns the drift
  /// transitions the (re)ordered applications produced.
  std::vector<DriftTransition> observe(int device, KernelClass cls,
                                       std::uint64_t seq,
                                       double predicted_seconds,
                                       double observed_seconds, SimTime t);

  /// Closes the seq gap left by a dispatch attempt that consumed `seq`
  /// but never ran (launch failure, watchdog timeout). Returns any
  /// transitions produced by buffered observations the gap was holding up.
  std::vector<DriftTransition> skip(int device, std::uint64_t seq);

  /// The correction factor calibrated placement multiplies into the
  /// static prediction: exactly 1.0 while disabled or warming up.
  double factor(int device, KernelClass cls) const;

  /// The factor of the device's most-observed class — the single number
  /// the stats/JSON schema reports per device.
  double dominant_factor(int device) const;

  DriftState drift_state(int device) const;
  bool derated(int device) const;

  /// Mean calibrated capacity (spec capacity x 1/factor, dominant class)
  /// across `serving` device ids — the scale the autoscaler applies to its
  /// Eq. 7/8 capacity model so a degraded fleet scales out.
  double capacity_scale(const std::vector<int>& serving) const;

  /// True when calibrated placement should force-place this batch on
  /// `device` as a probe: the device is derated and has not produced an
  /// observation within the last `probe_interval` fleet-wide applied
  /// observations — a starved device must still get chances to prove
  /// recovery.
  bool probe_due(int device) const;

  /// Observation count of one (device, class) — warm-up introspection.
  std::uint64_t samples(int device, KernelClass cls) const;

 private:
  struct Track {
    std::uint64_t count = 0;
    double warmup_sum = 0.0;
    double factor = 1.0;      ///< EWMA of observed/predicted, post warm-up
    double baseline = 1.0;    ///< the factor at warm-up end: "healthy" bias
    double cusum = 0.0;       ///< one-sided positive CUSUM on log residuals
    std::vector<double> recent;  ///< ring of the last `window` ratios
    std::size_t recent_next = 0;
    bool warmed() const noexcept { return factor_seeded; }
    bool factor_seeded = false;
  };

  struct PendingObs {
    bool skipped = false;
    KernelClass cls = KernelClass::kSwInter;
    double predicted = 0.0;
    double observed = 0.0;
    SimTime time = 0.0;
  };

  struct DeviceCal {
    std::array<Track, kKernelClasses> tracks;
    DriftState state = DriftState::kNominal;
    int suspect_class = -1;   ///< class whose detector fired
    int inband_streak = 0;    ///< consecutive in-band obs while derated
    /// Suspect-class ratios observed since the suspicion was raised — the
    /// post-onset evidence the derate snaps the factor to. Snapping to the
    /// window mean instead would blend in pre-onset ratios and under-derate.
    std::vector<double> suspect_evidence;
    std::uint64_t next_seq = 0;            ///< next dispatch seq to apply
    std::map<std::uint64_t, PendingObs> pending;  ///< out-of-order arrivals
    std::uint64_t last_observed_dispatch = 0;  ///< fleet dispatch counter
  };

  /// Applies one in-order observation; appends any transitions.
  void apply(int device, const PendingObs& obs,
             std::vector<DriftTransition>& out);

  double windowed_ratio(const Track& track) const;
  /// The healthy level a residual is judged against: the device's own
  /// warm-up baseline scaled by the median drift (factor / baseline) of
  /// its warmed peers for the class — 1.0-ish medians on a healthy fleet,
  /// so this is effectively "what this device used to run at, adjusted
  /// for fleet-wide shifts". Falls back to the bare baseline (or the
  /// current factor pre-warm-up) when no peer has warmed.
  double reference_factor(int device, KernelClass cls) const;
  double factor_locked(const DeviceCal& cal, KernelClass cls) const;

  CalibrationConfig config_;
  mutable std::mutex mu_;
  std::vector<DeviceCal> devices_;
  std::uint64_t total_applied_ = 0;  ///< fleet-wide applied observations
};

}  // namespace wsim::fleet
